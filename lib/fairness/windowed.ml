(* Time-windowed fairness over cumulative-delivery series. All
   functions consume nondecreasing cumulative series (packets delivered
   by time t, as sampled by the runners) so per-window throughput is a
   telescoping difference: window sums equal end-to-end totals by
   construction, which is the invariant the property tests pin down. *)

let check_window window =
  if not (Float.is_finite window && window > 0.) then
    invalid_arg "Windowed: window must be positive and finite"

let check_span ~from ~until =
  if not (Float.is_finite from && Float.is_finite until && until > from) then
    invalid_arg "Windowed: need finite until > from"

(* Window boundaries [from, from+w, ...; until]. The final window is
   partial when the span is not a multiple of [w]; a sliver shorter
   than [w * 1e-9] is merged into the previous window so float
   accumulation noise cannot mint an empty extra window. *)
let boundaries ~from ~until ~window =
  check_window window;
  check_span ~from ~until;
  let eps = window *. 1e-9 in
  let rec go acc t =
    let next = t +. window in
    if next >= until -. eps then List.rev (until :: acc)
    else go (next :: acc) next
  in
  Array.of_list (go [ from ] from)

let cumulative_at ts t = Option.value ~default:0. (Sim.Timeseries.value_at ts t)

let throughput ts ~from ~until ~window =
  let bounds = boundaries ~from ~until ~window in
  Array.init
    (Array.length bounds - 1)
    (fun i ->
      let t0 = bounds.(i) and t1 = bounds.(i + 1) in
      (t0, (cumulative_at ts t1 -. cumulative_at ts t0) /. (t1 -. t0)))

let normalized ts ~weight ~from ~until ~window =
  if weight <= 0. then invalid_arg "Windowed.normalized: non-positive weight";
  Array.map (fun (t, r) -> (t, r /. weight)) (throughput ts ~from ~until ~window)

(* Per-window weighted Jain. A flow participates in a window only if it
   delivered anything there: under churn most flows are absent from
   most windows, and counting them as zero-rate participants would
   measure lifetime overlap, not fairness among the flows actually
   competing. Windows with fewer than two participants are vacuously
   fair (Jain of a singleton is 1). *)
let jain_series ~flows ~from ~until ~window =
  let bounds = boundaries ~from ~until ~window in
  let flows = Array.of_list flows in
  Array.init
    (Array.length bounds - 1)
    (fun i ->
      let t0 = bounds.(i) and t1 = bounds.(i + 1) in
      let active =
        Array.to_list flows
        |> List.filter_map (fun (weight, ts) ->
               let d = cumulative_at ts t1 -. cumulative_at ts t0 in
               if d > 0. then Some (d /. (t1 -. t0), weight) else None)
      in
      let rates = Array.of_list (List.map fst active) in
      let weights = Array.of_list (List.map snd active) in
      (t0, Metrics.jain_index ~rates ~weights, Array.length rates))

(* Mean per-window Jain over the windows where fairness is actually at
   stake (at least two concurrent flows); 1 if no window is contended. *)
let mean_jain ~flows ~from ~until ~window =
  let series = jain_series ~flows ~from ~until ~window in
  let sum = ref 0. and n = ref 0 in
  Array.iter
    (fun (_, j, active) ->
      if active >= 2 then begin
        sum := !sum +. j;
        incr n
      end)
    series;
  if !n = 0 then 1. else !sum /. float_of_int !n

(* Multi-timescale bandwidth profile (after Nádas et al.): for each
   timescale, the peak average rate the flow sustained over any aligned
   window of that length. A compliant flow's profile is flat; a bursty
   heavy hitter shows peaks at short timescales well above its
   long-timescale average — the burst-aware view that catches
   adversaries whose mean rate stays under the detection threshold. *)
let bandwidth_profile ts ~from ~until ~timescales =
  List.map
    (fun window ->
      let per = throughput ts ~from ~until ~window in
      let peak = Array.fold_left (fun acc (_, r) -> Float.max acc r) 0. per in
      (window, peak))
    timescales
