let jain_index ~rates ~weights =
  let n = Array.length rates in
  if n <> Array.length weights then
    invalid_arg "Metrics.jain_index: length mismatch";
  if n = 0 then 1.
  else begin
    let sum = ref 0. and sum_sq = ref 0. in
    for i = 0 to n - 1 do
      if weights.(i) <= 0. then invalid_arg "Metrics.jain_index: non-positive weight";
      let z = rates.(i) /. weights.(i) in
      sum := !sum +. z;
      sum_sq := !sum_sq +. (z *. z)
    done;
    if Sim.Floats.is_zero !sum_sq then 1.
    else !sum *. !sum /. (float_of_int n *. !sum_sq)
  end

let mean_relative_error ~measured ~expected =
  let n = Array.length measured in
  if n <> Array.length expected then
    invalid_arg "Metrics.mean_relative_error: length mismatch";
  let sum = ref 0. and count = ref 0 in
  for i = 0 to n - 1 do
    if not (Sim.Floats.is_zero expected.(i)) then begin
      sum := !sum +. (Float.abs (measured.(i) -. expected.(i)) /. Float.abs expected.(i));
      incr count
    end
  done;
  if !count = 0 then 0. else !sum /. float_of_int !count

let converged ~tolerance ~measured ~expected =
  let n = Array.length measured in
  if n <> Array.length expected then invalid_arg "Metrics.converged: length mismatch";
  let ok = ref true in
  for i = 0 to n - 1 do
    let bound = tolerance *. Float.abs expected.(i) in
    if Float.abs (measured.(i) -. expected.(i)) > bound then ok := false
  done;
  !ok

let convergence_time ~tolerance ~hold series =
  match series with
  | [] -> Some 0.
  | (first, _) :: _ ->
    let samples = Sim.Timeseries.to_array first in
    let n = Array.length samples in
    if n = 0 then None
    else begin
      let all = List.map (fun (ts, exp) -> (Sim.Timeseries.to_array ts, exp)) series in
      let within i =
        List.for_all
          (fun (points, expected) ->
            i < Array.length points
            &&
            let _, v = points.(i) in
            Float.abs (v -. expected) <= tolerance *. Float.abs expected)
          all
      in
      (* Earliest index from which [within] holds for [hold] seconds. *)
      let result = ref None in
      let run_start = ref None in
      let i = ref 0 in
      while !result = None && !i < n do
        let t, _ = samples.(!i) in
        if within !i then begin
          (match !run_start with None -> run_start := Some t | Some _ -> ());
          match !run_start with
          | Some t0 when t -. t0 >= hold -> result := Some t0
          | _ -> ()
        end
        else run_start := None;
        incr i
      done;
      (* A run reaching the end of the series with insufficient length
         still counts if it lasts until the final sample and the series
         simply ends; we require the full hold window, so it does not. *)
      !result
    end

let utilization ~rates ~capacity =
  if capacity <= 0. then invalid_arg "Metrics.utilization: non-positive capacity";
  Array.fold_left ( +. ) 0. rates /. capacity
