(** Time-windowed fairness metrics over cumulative-delivery series.

    Convergence-window Jain ({!Metrics.jain_index} over a steady-state
    mean) judges a static workload; under churn there is no steady
    state, so fairness must be judged {e per time window} among the
    flows actually competing in each window. All functions here consume
    nondecreasing cumulative series — packets delivered by time [t], as
    sampled by the runners — which makes every windowed throughput a
    telescoping difference: summed across windows it equals the
    end-to-end total exactly (the invariant the QCheck properties pin
    down).

    Windows tile [[from, until]] left to right; the last window is
    partial when the span is not a multiple of [window]. A time before
    a series' first sample reads as cumulative 0. *)

(** Window boundaries: [from; from + window; ...; until].
    @raise Invalid_argument unless [window > 0] and [until > from]
    (all finite). *)
val boundaries : from:float -> until:float -> window:float -> float array

(** Per-window mean throughput of one flow: [(window start, rate)] per
    window, rate in units of the cumulative series per second. *)
val throughput :
  Sim.Timeseries.t -> from:float -> until:float -> window:float -> (float * float) array

(** {!throughput} divided by the flow's weight — the per-epoch
    normalized throughput the paper's fairness claim is stated in.
    @raise Invalid_argument on a non-positive weight. *)
val normalized :
  Sim.Timeseries.t ->
  weight:float ->
  from:float ->
  until:float ->
  window:float ->
  (float * float) array

(** Per-window weighted Jain index across flows, given [(weight,
    cumulative series)] per flow: [(window start, jain, active)] where
    [active] counts the flows that delivered anything in the window —
    only those participate (under churn, zero-rate absentees would
    measure lifetime overlap, not fairness). A window with fewer than
    two active flows is vacuously fair (Jain 1). *)
val jain_series :
  flows:(float * Sim.Timeseries.t) list ->
  from:float ->
  until:float ->
  window:float ->
  (float * float * int) array

(** Mean of {!jain_series} over the contended windows (at least two
    active flows); [1.] if no window is contended. In (0, 1] — the
    churn battery's gated fairness number. *)
val mean_jain :
  flows:(float * Sim.Timeseries.t) list ->
  from:float ->
  until:float ->
  window:float ->
  float

(** Multi-timescale bandwidth profile (after Nádas et al., PAPERS.md):
    for each timescale, the peak average rate sustained over any
    aligned window of that length. Flat for a compliant flow; a bursty
    heavy hitter peaks at short timescales far above its long-timescale
    average even when its mean stays under a detection threshold. *)
val bandwidth_profile :
  Sim.Timeseries.t ->
  from:float ->
  until:float ->
  timescales:float list ->
  (float * float) list
