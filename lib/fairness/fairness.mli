(** Fairness references and metrics.

    Three independent ways to know what the network {e should} do:

    - {!Maxmin}: the exact weighted max-min allocation (water-filling),
      with minimum-rate floors — the paper's "expected rates";
    - {!Fluid}: a deterministic ODE abstraction of the Corelite control
      loop whose fixed points are the max-min allocations — the
      "analysis" side of the paper's claims;
    - {!Metrics}: Jain's fairness index on normalized rates, relative
      errors, and convergence-time detection on sampled series.

    The packet simulation, the fluid model and the solver are checked
    against each other in the test suite. *)

module Maxmin = Maxmin
module Fluid = Fluid
module Metrics = Metrics

module Windowed = Windowed
(** Time-windowed fairness (windowed Jain, per-epoch normalized
    throughput, multi-timescale bandwidth profiles) for dynamic
    workloads where no steady state exists. *)
