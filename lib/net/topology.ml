type t = {
  engine : Sim.Engine.t;
  mutable nodes_rev : Node.t list;
  mutable links_rev : Link.t list;
  by_name : (string, Node.t) Hashtbl.t;
  link_index : (int * int, Link.t) Hashtbl.t;
  mutable next_node_id : int;
  mutable next_link_id : int;
  (* Flat flow-id-indexed delivery table for FIB-routed (generated)
     topologies: host nodes dispatch arrived packets through here, so
     egress delivery is one array read instead of per-node sink
     Hashtbls. Hand-built topologies never touch it. *)
  mutable flow_sinks : (Packet.t -> unit) option array;
}

let create engine =
  {
    engine;
    nodes_rev = [];
    links_rev = [];
    by_name = Hashtbl.create 16;
    link_index = Hashtbl.create 16;
    next_node_id = 0;
    next_link_id = 0;
    flow_sinks = [||];
  }

let engine t = t.engine

let add_node t ~kind name =
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Topology.add_node: duplicate node " ^ name);
  let node = Node.create ~id:t.next_node_id ~name ~kind in
  t.next_node_id <- t.next_node_id + 1;
  t.nodes_rev <- node :: t.nodes_rev;
  Hashtbl.add t.by_name name node;
  node

let add_link t ~src ~dst ~bandwidth ~delay ~qdisc =
  let key = (src.Node.id, dst.Node.id) in
  if Hashtbl.mem t.link_index key then
    invalid_arg
      (Printf.sprintf "Topology.add_link: duplicate link %s->%s" src.Node.name
         dst.Node.name);
  let name = src.Node.name ^ "->" ^ dst.Node.name in
  let link =
    Link.create ~engine:t.engine ~id:t.next_link_id ~name ~src:src.Node.id
      ~dst:dst.Node.id ~bandwidth ~delay ~qdisc ()
  in
  t.next_link_id <- t.next_link_id + 1;
  link.Link.deliver <- (fun pkt -> Node.receive dst pkt);
  t.links_rev <- link :: t.links_rev;
  Hashtbl.add t.link_index key link;
  link

let nodes t = List.rev t.nodes_rev

let links t = List.rev t.links_rev

let find_node t name = Hashtbl.find_opt t.by_name name

let find_link t ~src ~dst = Hashtbl.find_opt t.link_index (src.Node.id, dst.Node.id)

let path_links t path =
  let rec hops = function
    | a :: (b :: _ as rest) ->
      let link =
        match find_link t ~src:a ~dst:b with
        | Some link -> link
        | None ->
          failwith
            (Printf.sprintf "Topology.path_links: no link %s->%s" a.Node.name
               b.Node.name)
      in
      link :: hops rest
    | [ _ ] | [] -> []
  in
  hops path

let path_delay t path =
  List.fold_left (fun acc link -> acc +. link.Link.delay) 0. (path_links t path)

let install_path t ~flow path ~sink =
  let hops = path_links t path in
  List.iter2
    (fun node link -> Node.set_route node ~flow link)
    (List.filteri (fun i _ -> i < List.length hops) path)
    hops;
  match List.rev path with
  | last :: _ -> Node.set_sink last ~flow sink
  | [] -> invalid_arg "Topology.install_path: empty path"

let set_flow_sink t ~flow sink =
  if flow < 0 then invalid_arg "Topology.set_flow_sink: negative flow id";
  let n = Array.length t.flow_sinks in
  if flow >= n then begin
    let n' = ref (Stdlib.max 64 (2 * n)) in
    while flow >= !n' do
      n' := 2 * !n'
    done;
    let grown = Array.make !n' None in
    Array.blit t.flow_sinks 0 grown 0 n;
    t.flow_sinks <- grown
  end;
  t.flow_sinks.(flow) <- Some sink

let[@corelite.hot] deliver_to_sink t pkt =
  let flow = pkt.Packet.flow in
  let sinks = t.flow_sinks in
  if flow >= 0 && flow < Array.length sinks then
    match Array.unsafe_get sinks flow with
    | Some consume -> consume pkt
    | None ->
      failwith (Printf.sprintf "Topology: no sink installed for flow %d" flow)
  else failwith (Printf.sprintf "Topology: no sink installed for flow %d" flow)

let sink_dispatcher t = fun pkt -> deliver_to_sink t pkt

let uninstall_flow _t ~flow path =
  List.iter
    (fun node ->
      Hashtbl.remove node.Node.routes flow;
      Hashtbl.remove node.Node.sinks flow)
    path
