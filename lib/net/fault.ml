(* The one module allowed to put random loss on the data path (lint
   rule L7): everything here draws from plan-derived Rng.scenario
   substreams, so a chaos run replays byte-identically from
   (plan seed, plan label) alone, and never perturbs the workload's own
   RNG streams. *)

type link_state = {
  link : Link.t;
  spec : Sim.Faultplan.link_fault;
  loss_rng : Sim.Rng.t;
  feedback_rng : Sim.Rng.t;
  mutable ge_bad : bool;  (* Gilbert–Elliott channel state, starts good *)
}

type t = {
  plan : Sim.Faultplan.t;
  by_link : (int, link_state) Hashtbl.t;
  mutable injected_drops : int;
  mutable stripped_markers : int;
  mutable feedback_losses : int;
  mutable flaps_fired : int;
}

let plan t = t.plan

let injected_drops t = t.injected_drops

let stripped_markers t = t.stripped_markers

let feedback_losses t = t.feedback_losses

let flaps_fired t = t.flaps_fired

let draw_loss st =
  match st.spec.Sim.Faultplan.loss with
  | None -> false
  | Some (Sim.Faultplan.Bernoulli p) -> Sim.Rng.bernoulli st.loss_rng p
  | Some (Sim.Faultplan.Gilbert_elliott { p_good_bad; p_bad_good; loss_good; loss_bad })
    ->
    (* Per-packet channel-state transition, then a loss draw in the
       resulting state — the standard discrete-time formulation. *)
    let p_flip = if st.ge_bad then p_bad_good else p_good_bad in
    if Sim.Rng.bernoulli st.loss_rng p_flip then st.ge_bad <- not st.ge_bad;
    Sim.Rng.bernoulli st.loss_rng (if st.ge_bad then loss_bad else loss_good)

(* The per-packet verdict. Loss draws advance the stream only for
   packets the target covers, so e.g. a marker-only fault's replay is
   a function of the marker sequence alone. Every destroyed marker is
   declared to the Sim.Invariant ledger so conservation-style checks
   can account for injected loss. *)
let action t st pkt =
  match st.spec.Sim.Faultplan.target with
  | Sim.Faultplan.All_packets ->
    if draw_loss st then begin
      t.injected_drops <- t.injected_drops + 1;
      if Packet.has_marker pkt then Sim.Invariant.note_marker_loss ();
      Link.Lose
    end
    else Link.Forward
  | Sim.Faultplan.Markers_only ->
    if Packet.has_marker pkt && draw_loss st then begin
      t.stripped_markers <- t.stripped_markers + 1;
      Sim.Invariant.note_marker_loss ();
      Link.Strip
    end
    else Link.Forward
  | Sim.Faultplan.Data_only ->
    if (not (Packet.has_marker pkt)) && draw_loss st then begin
      t.injected_drops <- t.injected_drops + 1;
      Link.Lose
    end
    else Link.Forward

let feedback_lost t link =
  match Hashtbl.find_opt t.by_link link.Link.id with
  | None -> false
  | Some st ->
    if Sim.Rng.bernoulli st.feedback_rng st.spec.Sim.Faultplan.feedback_loss then begin
      t.feedback_losses <- t.feedback_losses + 1;
      Sim.Invariant.note_feedback_loss ();
      true
    end
    else false

let install t engine st =
  let spec = st.spec in
  Hashtbl.replace t.by_link st.link.Link.id st;
  if spec.Sim.Faultplan.loss <> None then
    Link.set_fault st.link (Some (fun pkt -> action t st pkt));
  List.iter
    (fun { Sim.Faultplan.down_at; up_at } ->
      ignore
        (Sim.Engine.schedule_at engine ~time:down_at (fun () ->
             t.flaps_fired <- t.flaps_fired + 1;
             Link.set_up st.link false));
      ignore
        (Sim.Engine.schedule_at engine ~time:up_at (fun () ->
             Link.set_up st.link true)))
    spec.Sim.Faultplan.flaps

let apply ~topology plan =
  let t =
    {
      plan;
      by_link = Hashtbl.create 16;
      injected_drops = 0;
      stripped_markers = 0;
      feedback_losses = 0;
      flaps_fired = 0;
    }
  in
  let engine = Topology.engine topology in
  let links = Topology.links topology in
  List.iter
    (fun (spec : Sim.Faultplan.link_fault) ->
      let targets =
        if String.equal spec.Sim.Faultplan.link "*" then links
        else
          match
            List.filter
              (fun l -> String.equal l.Link.name spec.Sim.Faultplan.link)
              links
          with
          | [] -> invalid_arg ("Fault.apply: unknown link " ^ spec.Sim.Faultplan.link)
          | ls -> ls
      in
      List.iter
        (fun link ->
          if Hashtbl.mem t.by_link link.Link.id then
            invalid_arg
              ("Fault.apply: link " ^ link.Link.name
             ^ " matched by two fault specs (merge them)");
          let stream channel =
            Sim.Rng.scenario ~seed:plan.Sim.Faultplan.seed
              ~id:(Sim.Faultplan.stream_id plan ~link:link.Link.name ~channel)
          in
          install t engine
            {
              link;
              spec;
              loss_rng = stream "loss";
              feedback_rng = stream "feedback";
              ge_bad = false;
            })
        targets)
    plan.Sim.Faultplan.link_faults;
  t
