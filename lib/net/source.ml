type params = {
  initial_rate : float;
  min_rate : float;
  alpha : float;
  beta : float;
  epoch : float;
  ss_thresh : float;
  ss_period : float;
  floor : float;
  silence_epochs : int;
  restore : float;
}

let default_params =
  {
    initial_rate = 1.;
    min_rate = 0.5;
    alpha = 1.;
    beta = 1.;
    epoch = 0.5;
    ss_thresh = 32.;
    ss_period = 1.;
    floor = 0.;
    silence_epochs = 0;
    restore = 2.;
  }

type phase = Slow_start | Linear

type t = {
  engine : Sim.Engine.t;
  id : int;
  trace : Sim.Trace.t;
  params : params;
  epoch_offset : float;
  emit : now:float -> rate:float -> unit;
  collect : unit -> int;
  mutable rate : float;
  mutable phase : phase;
  mutable silent : int;  (* consecutive feedback-free epochs (Linear) *)
  mutable running : bool;
  mutable active : bool;  (* application has data to send *)
  mutable emitted : int;
  (* Pacing events are scheduled with [Engine.schedule_unit] through
     one persistent closure ([pace_ev]) instead of a fresh closure and
     cancellation handle per packet. [pacing_pending] counts pacing
     events in flight; only the most recently scheduled one continues
     the chain, so events left over from a stop/start cycle drain as
     no-ops exactly like the cancelled handles they replace. *)
  mutable pacing_pending : int;
  mutable pace_ev : unit -> unit;
  mutable epoch_timer : Sim.Engine.handle option;
  mutable ss_timer : Sim.Engine.handle option;
}

(* Every point where [rate] changes records a [Rate_update] — the
   shaping oracle replays these against the packets actually enqueued
   to check conformance. Rate changes happen at epoch granularity, so
   the guard-and-record costs nothing measurable. *)
let[@corelite.hot] note_rate t =
  if Sim.Trace.want t.trace Sim.Trace.Rate_update then
    Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine)
      Sim.Trace.Rate_update ~a:t.id ~b:0 ~x:t.rate
      ~y:(match t.phase with Slow_start -> 0. | Linear -> 1.)

let[@corelite.hot] emit_one t =
  if t.active then begin
    t.emitted <- t.emitted + 1;
    t.emit ~now:(Sim.Engine.now t.engine) ~rate:t.rate
  end

let[@corelite.hot] schedule_pace t =
  let interval = 1. /. Float.max t.rate 1e-6 in
  t.pacing_pending <- t.pacing_pending + 1;
  Sim.Engine.schedule_unit t.engine ~delay:interval t.pace_ev

let[@corelite.hot] pace t =
  t.pacing_pending <- t.pacing_pending - 1;
  if t.running && t.pacing_pending = 0 then begin
    emit_one t;
    schedule_pace t
  end

let create ~engine ?(id = -1) ?(epoch_offset = 0.) ~params ~emit ~collect () =
  (* Every rate, period and start offset is validated up front: a nan or
     non-positive value would not fail here but silently produce a nan
     pacing schedule (nan compares false against every guard), and the
     first visible symptom would be an engine that never fires. *)
  let positive what v =
    if not (Float.is_finite v && v > 0.) then
      invalid_arg (Printf.sprintf "Source.create: %s must be positive" what)
  in
  let non_negative what v =
    if not (Float.is_finite v && v >= 0.) then
      invalid_arg (Printf.sprintf "Source.create: %s must be non-negative" what)
  in
  positive "initial_rate" params.initial_rate;
  positive "epoch" params.epoch;
  positive "alpha" params.alpha;
  positive "beta" params.beta;
  positive "ss_thresh" params.ss_thresh;
  positive "ss_period" params.ss_period;
  non_negative "min_rate" params.min_rate;
  non_negative "floor" params.floor;
  if params.silence_epochs < 0 then
    invalid_arg "Source.create: silence_epochs must be non-negative";
  if
    params.silence_epochs > 0
    && not (Float.is_finite params.restore && params.restore > 1.)
  then invalid_arg "Source.create: restore must be a finite factor > 1";
  if not (Float.is_finite epoch_offset && epoch_offset >= 0.)
     || epoch_offset >= params.epoch
  then invalid_arg "Source.create: epoch_offset out of [0, epoch)";
  let t =
    {
      engine;
      id;
      trace = Sim.Engine.trace engine;
      params;
      epoch_offset;
      emit;
      collect;
      rate = params.initial_rate;
      phase = Slow_start;
      silent = 0;
      running = false;
      active = true;
      emitted = 0;
      pacing_pending = 0;
      pace_ev = ignore;
      epoch_timer = None;
      ss_timer = None;
    }
  in
  t.pace_ev <- (fun () -> pace t);
  t

let rate t = t.rate

let phase t = t.phase

let running t = t.running

let emitted t = t.emitted

let rate_floor t = Float.max t.params.min_rate t.params.floor

let exit_slow_start t =
  if t.phase = Slow_start then begin
    (* The halving is the response to any indication received so far;
       flush the pending count so it is not charged again at epoch end. *)
    ignore (t.collect ());
    t.rate <- Float.max (rate_floor t) (t.rate /. 2.);
    t.phase <- Linear;
    note_rate t;
    match t.ss_timer with
    | Some h ->
      Sim.Engine.cancel h;
      t.ss_timer <- None
    | None -> ()
  end

let signal_congestion t = if t.running then exit_slow_start t

let on_epoch t () =
  let m = t.collect () in
  (* An application-limited (idle) source neither probes for more rate
     nor reacts: there is nothing to pace. *)
  if t.active then
    match t.phase with
    | Slow_start ->
      (* Feedback during slow-start already triggered
         [signal_congestion] via the agent; a residual count here means
         the agent relies on epoch collection only, so honor it. *)
      if m > 0 then exit_slow_start t
    | Linear ->
      if m = 0 then begin
        t.silent <- t.silent + 1;
        (* Feedback-silence recovery (robustness extension, off by
           default): after [silence_epochs] feedback-free epochs the
           additive probe turns multiplicative. A long silence after
           sustained throttling usually means the feedback channel
           itself failed (marker loss, a core reset) and the flow is
           parked far below its share — restoring at [+alpha] per epoch
           would take minutes of simulated time that slow-start covered
           in seconds. Ordinary uncongested operation is unaffected:
           feedback arrives well before the threshold and resets the
           count. *)
        if t.params.silence_epochs > 0 && t.silent >= t.params.silence_epochs then
          t.rate <- t.rate *. t.params.restore
        else t.rate <- t.rate +. t.params.alpha;
        note_rate t
      end
      else begin
        t.silent <- 0;
        t.rate <- Float.max (rate_floor t) (t.rate -. (t.params.beta *. float_of_int m));
        note_rate t
      end

let on_ss_tick t () =
  if t.phase = Slow_start then begin
    t.rate <- t.rate *. 2.;
    note_rate t;
    if t.rate > t.params.ss_thresh then exit_slow_start t
  end

let set_active t active = t.active <- active

let active t = t.active

let stop t =
  if t.running then begin
    t.running <- false;
    let cancel = function Some h -> Sim.Engine.cancel h | None -> () in
    cancel t.epoch_timer;
    cancel t.ss_timer;
    t.epoch_timer <- None;
    t.ss_timer <- None
  end

let start t =
  stop t;
  ignore (t.collect ());
  (* A contracted floor is reserved capacity: the flow starts there. *)
  t.rate <- Float.max t.params.initial_rate t.params.floor;
  t.phase <- (if t.rate >= t.params.ss_thresh then Linear else Slow_start);
  t.silent <- 0;
  t.running <- true;
  note_rate t;
  let now = Sim.Engine.now t.engine in
  t.epoch_timer <-
    Some
      (Sim.Engine.every t.engine
         ~start:(now +. t.params.epoch +. t.epoch_offset)
         ~period:t.params.epoch (on_epoch t));
  if t.phase = Slow_start then
    t.ss_timer <-
      Some
        (Sim.Engine.every t.engine
           ~start:(now +. t.params.ss_period +. t.epoch_offset)
           ~period:t.params.ss_period (on_ss_tick t));
  emit_one t;
  schedule_pace t
