(** Rate-adaptive paced packet source.

    Implements the adaptation scheme both evaluated agents share (paper
    Section 4): an always-backlogged source paced at the allowed rate
    [bg]. After startup the source is in slow-start, doubling its rate
    every [ss_period] seconds until either the first congestion
    indication arrives or the rate would exceed [ss_thresh]; both exits
    halve the rate and switch to linear increase. From then on, once per
    [epoch]: with [m] congestion indications collected during the epoch,

    - [m = 0]: [bg <- bg + alpha] (probe for spare rate);
    - [m > 0]: [bg <- max (floor, bg - beta * m)] (throttle
      proportionally to the feedback).

    What counts as a congestion indication is scheme-specific (Corelite:
    max over core links of marker feedbacks; CSFQ: packet losses), so the
    caller supplies [collect], which returns and clears the epoch's
    count. *)

type params = {
  initial_rate : float;  (** pkts/s at (re)start *)
  min_rate : float;  (** global throttling floor, pkts/s *)
  alpha : float;  (** linear increase per epoch, pkts/s *)
  beta : float;  (** decrease per congestion indication, pkts/s *)
  epoch : float;  (** adaptation period, seconds *)
  ss_thresh : float;  (** slow-start exit rate, pkts/s *)
  ss_period : float;  (** slow-start doubling period, seconds *)
  floor : float;  (** contracted minimum rate (extension); [0.] = none *)
  silence_epochs : int;
      (** feedback-silence recovery (robustness extension): after this
          many consecutive feedback-free linear epochs, switch the
          additive [+alpha] probe to multiplying by [restore] until
          feedback resumes. A long silence after sustained throttling
          means the feedback channel itself failed (marker loss, a core
          reset) and the flow is parked far below its share; additive
          restoration would take minutes of simulated time slow-start
          covered in seconds. [0] (the default) disables recovery. *)
  restore : float;
      (** multiplicative restoration factor; must be a finite value
          [> 1] when [silence_epochs > 0]. Default 2 (doubling, like
          slow-start). *)
}

val default_params : params
(** Paper Section 4 settings: initial 1 pkt/s, alpha = 1, beta = 1,
    ss_thresh 32 pkt/s, doubling every second. The paper fixes the
    {e core} epoch at 100 ms but leaves the edge adaptation epoch
    unspecified; the default of 500 ms exceeds the largest round-trip
    time of the evaluation (400 ms), the usual stability condition for
    a delayed control loop — shorter epochs make the sources probe
    faster than feedback can arrive and cause queue overshoot. *)

type phase = Slow_start | Linear

type t

(** [create ~engine ~params ~emit ~collect] builds a stopped source.
    [emit ~now ~rate] must inject exactly one packet; [collect ()] must
    return the number of congestion indications accumulated since the
    previous call and reset its counter.

    [id] (default [-1]) labels this source's [Sim.Trace.Rate_update]
    events; schemes pass the flow id so traces can be joined against
    per-flow enqueues.

    [epoch_offset] (default 0, must be in [0, epoch)) phase-shifts the
    agent's adaptation and slow-start timers. Deployments draw it at
    random per flow: edge routers are not clock-synchronized, and
    phase-locked timers would make all flows raise their rates in the
    same instant — an artifact a packet-level simulator must avoid.

    @raise Invalid_argument when any rate or period parameter
    ([initial_rate], [epoch], [alpha], [beta], [ss_thresh],
    [ss_period]) is non-positive or non-finite, when [min_rate] or
    [floor] is negative or non-finite, when [silence_epochs] is
    negative or its [restore] factor is not a finite value [> 1], or
    when [epoch_offset] falls outside [0, epoch) — a nan here would
    otherwise pass every sign check and silently produce a nan pacing
    schedule. *)
val create :
  engine:Sim.Engine.t ->
  ?id:int ->
  ?epoch_offset:float ->
  params:params ->
  emit:(now:float -> rate:float -> unit) ->
  collect:(unit -> int) ->
  unit ->
  t

(** (Re)start the source now with fresh adaptation state. A contracted
    [floor] is treated as reserved capacity: the source starts at
    [max initial_rate floor] (skipping slow-start if that already
    exceeds [ss_thresh]) and never throttles below it. *)
val start : t -> unit

(** Stop pacing and adaptation. Idempotent. *)
val stop : t -> unit

val running : t -> bool

(** Current allowed rate [bg], pkts/s. *)
val rate : t -> float

val phase : t -> phase

(** Signal a congestion indication outside [collect]'s accounting only
    in the sense that it immediately terminates slow-start (paper: the
    first congestion notification halves the rate and switches to linear
    increase). Safe to call on every indication; after slow-start it does
    nothing. *)
val signal_congestion : t -> unit

(** Packets emitted since creation (across restarts). *)
val emitted : t -> int

(** Application backlog control (bursty / on-off sources, an extension
    the paper lists as ongoing work). While inactive the source emits
    nothing and freezes rate adaptation — an idle application must not
    probe for bandwidth it will not use. Default: active. *)
val set_active : t -> bool -> unit

val active : t -> bool
