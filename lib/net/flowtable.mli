(** Dense flow-id-indexed tables — the flat-array replacement for
    per-flow Hashtbls.

    Flow ids are small dense integers handed out sequentially, so a
    growable option array gives O(1) unhashed lookup and — crucially
    for replay determinism — iteration in ascending flow-id order with
    no sort step. {!find} returns the stored option and allocates
    nothing. Tables are per-instance state (safe under
    {!Workload.Pool}). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Initial capacity defaults to 64 slots; the table doubles on demand.
    @raise Invalid_argument on a non-positive capacity. *)

(** [set t id v] inserts or replaces. Grows as needed.
    @raise Invalid_argument on a negative id. *)
val set : 'a t -> int -> 'a -> unit

(** Like {!set} but
    @raise Invalid_argument if [id] is already live. *)
val add : 'a t -> int -> 'a -> unit

(** Allocation-free lookup (returns the stored option). *)
val find : 'a t -> int -> 'a option

(** Absent ids are a no-op. *)
val remove : 'a t -> int -> unit

val mem : 'a t -> int -> bool

(** Number of live entries. *)
val live : 'a t -> int

(** Current slot capacity (for the growth tests). *)
val capacity : 'a t -> int

(** Iterate live entries in ascending flow-id order. *)
val iter : 'a t -> (int -> 'a -> unit) -> unit

val fold : 'a t -> (int -> 'a -> 'b -> 'b) -> 'b -> 'b

(** Empty every slot (capacity retained). *)
val clear : 'a t -> unit

(** Flat per-flow event counters (drop accounting): zero-default,
    growth on demand, reads never allocate. *)
module Count : sig
  type t

  val create : ?capacity:int -> unit -> t

  val incr : t -> int -> unit
  (** @raise Invalid_argument on a negative id. *)

  (** 0 for ids never incremented. *)
  val get : t -> int -> int
end
