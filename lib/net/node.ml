type kind = Edge | Core

type t = {
  id : int;
  name : string;
  kind : kind;
  routes : (int, Link.t) Hashtbl.t;
  sinks : (int, Packet.t -> unit) Hashtbl.t;
}

let create ~id ~name ~kind =
  { id; name; kind; routes = Hashtbl.create 16; sinks = Hashtbl.create 16 }

let set_route t ~flow link = Hashtbl.replace t.routes flow link

let set_sink t ~flow consume = Hashtbl.replace t.sinks flow consume

(* Exception-style lookups: [Hashtbl.find_opt] would allocate a [Some]
   per hop on the forwarding path. *)
let[@corelite.hot] receive t pkt =
  let flow = pkt.Packet.flow in
  match Hashtbl.find t.routes flow with
  | link -> Link.send link pkt
  | exception Not_found -> (
    match Hashtbl.find t.sinks flow with
    | consume -> consume pkt
    | exception Not_found ->
      failwith
        (Printf.sprintf "Node %s: no route or sink for flow %d" t.name flow))

let is_edge t = t.kind = Edge
