type kind = Edge | Core

type t = {
  id : int;
  name : string;
  kind : kind;
  routes : (int, Link.t) Hashtbl.t;
  sinks : (int, Packet.t -> unit) Hashtbl.t;
  mutable fib : Link.t option array;
  mutable host : int;
  mutable host_sink : Packet.t -> unit;
}

let no_host_sink (pkt : Packet.t) =
  failwith
    (Printf.sprintf "Node: no host sink installed (flow %d, dst %d)"
       pkt.Packet.flow pkt.Packet.dst)

let create ~id ~name ~kind =
  {
    id;
    name;
    kind;
    routes = Hashtbl.create 16;
    sinks = Hashtbl.create 16;
    fib = [||];
    host = -1;
    host_sink = no_host_sink;
  }

let set_route t ~flow link = Hashtbl.replace t.routes flow link

let set_sink t ~flow consume = Hashtbl.replace t.sinks flow consume

let set_fib t ~host ~fib ~host_sink =
  t.host <- host;
  t.fib <- fib;
  match host_sink with Some consume -> t.host_sink <- consume | None -> ()

(* Two forwarding planes share one function. Generated (scale)
   topologies stamp a destination host index into every packet and
   forward through the flat per-destination [fib] — no per-flow state
   on the path. Hand-built figure topologies leave [dst] at -1 and keep
   the original per-flow route/sink tables, so their behavior (and the
   committed goldens) is untouched. Exception-style lookups on the
   legacy path: [Hashtbl.find_opt] would allocate a [Some] per hop. *)
let[@corelite.hot] receive t pkt =
  let dst = pkt.Packet.dst in
  if dst >= 0 then
    if dst = t.host then t.host_sink pkt
    else begin
      match t.fib.(dst) with
      | Some link -> Link.send link pkt
      | None ->
        failwith
          (Printf.sprintf "Node %s: no FIB entry for host %d" t.name dst)
    end
  else
    let flow = pkt.Packet.flow in
    match Hashtbl.find t.routes flow with
    | link -> Link.send link pkt
    | exception Not_found -> (
      match Hashtbl.find t.sinks flow with
      | consume -> consume pkt
      | exception Not_found ->
        failwith
          (Printf.sprintf "Node %s: no route or sink for flow %d" t.name flow))

let is_edge t = t.kind = Edge
