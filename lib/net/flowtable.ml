(* Dense flow-id-indexed tables: the flat-array replacement for the
   per-flow Hashtbls on the deployments' control path. Flow ids are
   small dense integers (the generators hand them out sequentially from
   1), so an option array beats hashing on both lookup cost and memory,
   and iteration is naturally in ascending id order — the order the
   replay-determinism contract requires (no sort step, no bucket
   order). Slots are per-instance state; growth doubles. *)

type 'a t = { mutable slots : 'a option array; mutable live : int }

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Flowtable.create: capacity must be positive";
  { slots = Array.make capacity None; live = 0 }

let ensure t id =
  let n = Array.length t.slots in
  if id >= n then begin
    let n' = ref (2 * n) in
    while id >= !n' do
      n' := 2 * !n'
    done;
    let grown = Array.make !n' None in
    Array.blit t.slots 0 grown 0 n;
    t.slots <- grown
  end

let check_id id = if id < 0 then invalid_arg "Flowtable: negative flow id"

let mem t id = id >= 0 && id < Array.length t.slots && Option.is_some t.slots.(id)

let set t id v =
  check_id id;
  ensure t id;
  if Option.is_none t.slots.(id) then t.live <- t.live + 1;
  t.slots.(id) <- Some v

let add t id v =
  check_id id;
  if mem t id then
    invalid_arg (Printf.sprintf "Flowtable.add: duplicate flow %d" id);
  set t id v

(* Allocation-free on the hit path: returns the stored option. *)
let find t id =
  if id < 0 || id >= Array.length t.slots then None else t.slots.(id)

let remove t id =
  if mem t id then begin
    t.slots.(id) <- None;
    t.live <- t.live - 1
  end

let live t = t.live

let capacity t = Array.length t.slots

(* Ascending flow-id order — deterministic by construction. *)
let iter t f =
  Array.iteri (fun id slot -> match slot with Some v -> f id v | None -> ()) t.slots

let fold t f acc =
  let acc = ref acc in
  iter t (fun id v -> acc := f id v !acc);
  !acc

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.live <- 0

(* Flat per-flow counters (drop accounting): zero-default, growth on
   demand, reads never allocate. *)
module Count = struct
  type t = { mutable counts : int array }

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Flowtable.Count.create: capacity must be positive";
    { counts = Array.make capacity 0 }

  let ensure t id =
    let n = Array.length t.counts in
    if id >= n then begin
      let n' = ref (2 * n) in
      while id >= !n' do
        n' := 2 * !n'
      done;
      let grown = Array.make !n' 0 in
      Array.blit t.counts 0 grown 0 n;
      t.counts <- grown
    end

  let incr t id =
    if id < 0 then invalid_arg "Flowtable.Count.incr: negative flow id";
    ensure t id;
    t.counts.(id) <- t.counts.(id) + 1

  let get t id =
    if id < 0 || id >= Array.length t.counts then 0 else t.counts.(id)
end
