(** Unidirectional store-and-forward link.

    A link serializes packets at [bandwidth] bits/s out of its queue
    discipline, then delays each packet by [delay] seconds of propagation
    before handing it to the downstream node. Hooks let per-link router
    logic (Corelite core, CSFQ core) observe arrivals and queue changes
    and veto admission.

    Links also carry the failure surface the chaos experiments inject
    through: an up/down state ({!set_up}), a buffer purge for router
    resets ({!reset}), and a pre-admission fault hook ({!set_fault})
    that only [Net.Fault] may drive with random draws (lint rule L7). *)

type verdict = Pass | Drop

(** Why a packet was lost: rejected by the admission hooks (e.g. a CSFQ
    probabilistic drop), refused by the queue discipline (buffer
    overflow or an early AQM drop), destroyed by fault injection
    ([Injected]), or lost to a link outage / router reset ([Down] —
    covers both packets arriving while the link is down and packets
    purged from the buffer and wire when it goes down). *)
type drop_reason = Filtered | Queue_full | Injected | Down

(** Verdict of the fault hook, evaluated before the admission hooks:
    [Forward] passes the packet untouched, [Lose] drops it
    ([Injected]), [Strip] removes its piggybacked marker but forwards
    the payload — pure control-plane loss. *)
type fault_action = Forward | Lose | Strip

type hooks = {
  on_arrival : Packet.t -> verdict;
      (** Runs before the queue discipline; may mutate the packet
          (e.g. CSFQ relabelling) or reject it. *)
  on_queue_change : int -> unit;
      (** Called with the new number of waiting packets after every
          enqueue or dequeue. *)
}

type t = {
  id : int;
  name : string;
  src : int;  (** upstream node id *)
  dst : int;  (** downstream node id *)
  bandwidth : float;  (** bits/s *)
  delay : float;  (** propagation, seconds *)
  qdisc : Qdisc.t;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
      (** the engine's tracer, cached so drop/fault recording sites
          need no indirection *)
  mutable busy : bool;
  mutable in_service : Packet.t;
      (** the packet being serialized; a placeholder (id [-1]) while
          not [busy] — never read then *)
  wire : Packet.t Sim.Ring.t;
      (** packets in flight; constant propagation delay keeps them
          FIFO, so one ring per link suffices *)
  mutable tx_done_ev : unit -> unit;
  mutable deliver_ev : unit -> unit;
      (** the two persistent event closures reused for every packet —
          scheduled via {!Sim.Engine.schedule_unit}, so transmitting
          and delivering allocate nothing per packet. Generation-
          guarded: {!set_up}/{!reset} re-arm them so events already in
          the heap for purged packets die as no-ops. *)
  mutable up : bool;  (** read via {!is_up}; write via {!set_up} *)
  mutable generation : int;
      (** bumped by every purge; stale heap events check it *)
  mutable fault : (Packet.t -> fault_action) option;
      (** pre-admission fault hook; set via {!set_fault} *)
  mutable hooks : hooks option;
  mutable on_drop : (drop_reason -> Packet.t -> unit) option;
      (** Fires for every packet lost on this link, whatever the
          {!drop_reason}. *)
  mutable deliver : Packet.t -> unit;  (** set when the topology is wired *)
  mutable arrivals : int;
  mutable departures : int;
  mutable drops : int;
  mutable bytes_sent : int;
  check : bool;  (** audit packet conservation on every send/tx-done *)
}

(** [check_invariants] (default {!Sim.Invariant.default}) wraps the
    queue discipline with {!Qdisc.with_invariants} and audits per-link
    packet conservation — arrivals = departures + drops + queued +
    in-service — at every stable point, raising
    {!Sim.Invariant.Violation} on the first broken account.

    @raise Invalid_argument when [bandwidth] is not finite and
    positive, or [delay] not finite and non-negative (NaN included). *)
val create :
  ?check_invariants:bool ->
  engine:Sim.Engine.t ->
  id:int ->
  name:string ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  delay:float ->
  qdisc:Qdisc.t ->
  unit ->
  t

(** Submit a packet for transmission. Runs the fault hook, then the
    admission hooks, enqueues (or drops), and starts the transmitter if
    idle. While the link is down every packet is dropped with [Down]. *)
val send : t -> Packet.t -> unit

(** Service rate in packets/s for [Packet.default_size] packets. *)
val capacity_pps : t -> float

(** Packets currently waiting (excluding the one being serialized). *)
val queue_length : t -> int

val is_up : t -> bool

(** [set_up t false] takes the link down: the queue, the packet in
    service and everything in flight on the wire are lost (each counted
    as a [Down] drop, so packet conservation still balances) and
    subsequent sends drop until [set_up t true]. Idempotent. *)
val set_up : t -> bool -> unit

(** Router-reset buffer purge: lose the queue, the in-service packet
    and the wire exactly as an outage does ([Down] drops), but leave
    the link up. Models the downstream router rebooting and losing its
    RAM while the fibre stays lit. *)
val reset : t -> unit

(** Install or clear the fault hook. Only [Net.Fault] may install hooks
    that make random draws (lint rule L7 keeps ad-hoc loss draws out of
    the data path). *)
val set_fault : t -> (Packet.t -> fault_action) option -> unit
