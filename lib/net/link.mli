(** Unidirectional store-and-forward link.

    A link serializes packets at [bandwidth] bits/s out of its queue
    discipline, then delays each packet by [delay] seconds of propagation
    before handing it to the downstream node. Hooks let per-link router
    logic (Corelite core, CSFQ core) observe arrivals and queue changes
    and veto admission. *)

type verdict = Pass | Drop

(** Why a packet was lost: rejected by the admission hooks (e.g. a CSFQ
    probabilistic drop) or refused by the queue discipline (buffer
    overflow or an early AQM drop). *)
type drop_reason = Filtered | Queue_full

type hooks = {
  on_arrival : Packet.t -> verdict;
      (** Runs before the queue discipline; may mutate the packet
          (e.g. CSFQ relabelling) or reject it. *)
  on_queue_change : int -> unit;
      (** Called with the new number of waiting packets after every
          enqueue or dequeue. *)
}

type t = {
  id : int;
  name : string;
  src : int;  (** upstream node id *)
  dst : int;  (** downstream node id *)
  bandwidth : float;  (** bits/s *)
  delay : float;  (** propagation, seconds *)
  qdisc : Qdisc.t;
  engine : Sim.Engine.t;
  mutable busy : bool;
  mutable in_service : Packet.t;
      (** the packet being serialized; a placeholder (id [-1]) while
          not [busy] — never read then *)
  wire : Packet.t Sim.Ring.t;
      (** packets in flight; constant propagation delay keeps them
          FIFO, so one ring per link suffices *)
  mutable tx_done_ev : unit -> unit;
  mutable deliver_ev : unit -> unit;
      (** the two persistent event closures reused for every packet —
          scheduled via {!Sim.Engine.schedule_unit}, so transmitting
          and delivering allocate nothing per packet *)
  mutable hooks : hooks option;
  mutable on_drop : (drop_reason -> Packet.t -> unit) option;
      (** Fires for every packet lost on this link, whether rejected by
          the hooks ([Filtered]) or by the queue discipline
          ([Queue_full]). *)
  mutable deliver : Packet.t -> unit;  (** set when the topology is wired *)
  mutable arrivals : int;
  mutable departures : int;
  mutable drops : int;
  mutable bytes_sent : int;
  check : bool;  (** audit packet conservation on every send/tx-done *)
}

(** [check_invariants] (default {!Sim.Invariant.default}) wraps the
    queue discipline with {!Qdisc.with_invariants} and audits per-link
    packet conservation — arrivals = departures + drops + queued +
    in-service — at every stable point, raising
    {!Sim.Invariant.Violation} on the first broken account. *)
val create :
  ?check_invariants:bool ->
  engine:Sim.Engine.t ->
  id:int ->
  name:string ->
  src:int ->
  dst:int ->
  bandwidth:float ->
  delay:float ->
  qdisc:Qdisc.t ->
  unit ->
  t

(** Submit a packet for transmission. Runs hooks, enqueues (or drops),
    and starts the transmitter if idle. *)
val send : t -> Packet.t -> unit

(** Service rate in packets/s for [Packet.default_size] packets. *)
val capacity_pps : t -> float

(** Packets currently waiting (excluding the one being serialized). *)
val queue_length : t -> int
