(** Runtime fault injector: interprets a {!Sim.Faultplan.t} against a
    wired topology.

    [apply] resolves each plan entry to concrete links (by exact name,
    or every link for ["*"]), installs a {!Link.set_fault} hook for the
    loss model, and schedules the down/up flap events. Router resets
    are scheme state and are interpreted by the scheme deployments
    (e.g. [Corelite.Deployment.schedule_resets]), not here.

    Every random draw comes from an [Rng.scenario] substream derived
    from the plan's [(seed, label, link, channel)] alone — never from
    the workload's own streams — so a chaos run replays byte-identically
    serially or under [Workload.Pool], and turning the plan off leaves
    the fault-free run untouched. This module is the only one permitted
    to drive random loss on the data path (lint rule L7). *)

type t

(** Resolve and install [plan] on [topology]'s links. Flap events are
    scheduled on the topology's engine at the plan's absolute times, so
    call this before running the simulation.

    @raise Invalid_argument if a named link does not exist, or two
    entries resolve to the same link. *)
val apply : topology:Topology.t -> Sim.Faultplan.t -> t

val plan : t -> Sim.Faultplan.t

(** Draw from [link]'s feedback-loss channel: [true] means this
    feedback marker is lost in transit and must not reach the edge.
    Corelite feedback is delivered by direct callback rather than
    through the packet path, so deployments consult this at each
    feedback send. Links the plan doesn't cover never lose feedback
    (and consume no draws). Increments the loss counters (including
    {!Sim.Invariant.note_feedback_loss}) when it fires. *)
val feedback_lost : t -> Link.t -> bool

(** Packets destroyed by injected loss ([Lose] verdicts). *)
val injected_drops : t -> int

(** Markers removed from forwarded packets ([Strip] verdicts);
    marked packets destroyed whole count under {!injected_drops}. *)
val stripped_markers : t -> int

(** Feedback markers suppressed via {!feedback_lost}. *)
val feedback_losses : t -> int

(** Link-down flap events that have fired so far. *)
val flaps_fired : t -> int
