(** Topology container: nodes, links, and per-flow path installation. *)

type t

val create : Sim.Engine.t -> t

val engine : t -> Sim.Engine.t

(** [add_node t ~kind name] creates a node with a fresh id.
    @raise Invalid_argument if [name] is already taken. *)
val add_node : t -> kind:Node.kind -> string -> Node.t

(** [add_link t ~src ~dst ~bandwidth ~delay ~qdisc] creates the
    unidirectional link [src -> dst] and wires its delivery to [dst].
    @raise Invalid_argument if that directed link already exists. *)
val add_link :
  t ->
  src:Node.t ->
  dst:Node.t ->
  bandwidth:float ->
  delay:float ->
  qdisc:Qdisc.t ->
  Link.t

val nodes : t -> Node.t list

val links : t -> Link.t list

val find_node : t -> string -> Node.t option

val find_link : t -> src:Node.t -> dst:Node.t -> Link.t option

(** Links traversed by a path of nodes, in order.
    @raise Failure if two consecutive nodes are not connected. *)
val path_links : t -> Node.t list -> Link.t list

(** Sum of propagation delays along a node path (the control-plane
    latency used for feedback travelling back to the edge). *)
val path_delay : t -> Node.t list -> float

(** [install_path t ~flow path ~sink] installs route entries for [flow]
    along [path] and registers [sink] at the last node. *)
val install_path : t -> flow:int -> Node.t list -> sink:(Packet.t -> unit) -> unit

(** Remove the routing and sink state of a flow (used when a flow leaves
    the network). *)
val uninstall_flow : t -> flow:int -> Node.t list -> unit

(** {1 FIB-routed delivery (generated topologies)}

    On generated scale topologies packets carry a destination host
    index and are forwarded by per-node FIB arrays ({!Node.set_fib});
    egress delivery goes through one topology-wide flow-id-indexed sink
    table instead of per-node sink Hashtbls. Sinks stay installed on
    flow retirement so in-flight packets still deliver (the same
    contract as {!install_path} routes). *)

(** [set_flow_sink t ~flow sink] installs (or replaces) the delivery
    callback for a flow. The table grows on demand.
    @raise Invalid_argument on a negative flow id. *)
val set_flow_sink : t -> flow:int -> (Packet.t -> unit) -> unit

(** One shared closure delivering a packet to its flow's registered
    sink — what builders install as every host node's [host_sink].
    @raise Failure for a flow with no sink installed. *)
val sink_dispatcher : t -> Packet.t -> unit
