type action = Enqueued | Dropped

type t = {
  enqueue : Packet.t -> action;
  dequeue : unit -> Packet.t option;
  length : unit -> int;
  bytes : unit -> int;
  kind : string;
}

(* A plain FIFO buffer shared by every discipline — a growable ring
   ([Sim.Ring]) rather than [Stdlib.Queue], so steady-state enqueues
   allocate nothing (a Queue cell per push is pure minor-GC pressure on
   the per-packet path; lint rule L6 enforces the choice). *)
module Fifo = struct
  type nonrec t = { q : Packet.t Sim.Ring.t; mutable bytes : int }

  let create () = { q = Sim.Ring.create (); bytes = 0 }

  let[@corelite.hot] push t pkt =
    Sim.Ring.push t.q pkt;
    t.bytes <- t.bytes + pkt.Packet.size

  (* The option result is the one allocation this API keeps: callers
     need the atomic empty-test-and-pop. The timer-wheel/packet-pool
     PR (ROADMAP) replaces it with an exception-style or sentinel
     dequeue; until then the Some per dequeue is a known, waived cost
     inside the 36-words budget. *)
  let[@corelite.hot] pop t =
    if Sim.Ring.is_empty t.q then None
    else begin
      let pkt = Sim.Ring.pop_exn t.q in
      t.bytes <- t.bytes - pkt.Packet.size;
      Some pkt (* lint: alloc-ok -- option dequeue API, see above *)
    end

  let[@corelite.hot] peek t =
    if Sim.Ring.is_empty t.q then None
    else Some (Sim.Ring.peek_exn t.q) (* lint: alloc-ok -- option API *)

  let[@corelite.hot] length t = Sim.Ring.length t.q
  let[@corelite.hot] bytes t = t.bytes
end

let droptail ~capacity =
  if capacity <= 0 then invalid_arg "Qdisc.droptail: capacity must be positive";
  let fifo = Fifo.create () in
  let enqueue pkt =
    if Fifo.length fifo >= capacity then Dropped
    else begin
      Fifo.push fifo pkt;
      Enqueued
    end
  in
  {
    enqueue;
    dequeue = (fun () -> Fifo.pop fifo);
    length = (fun () -> Fifo.length fifo);
    bytes = (fun () -> Fifo.bytes fifo);
    kind = "droptail";
  }

type red_params = {
  capacity : int;
  min_thresh : float;
  max_thresh : float;
  max_p : float;
  queue_weight : float;
  mean_pkt_time : float;
}

let default_red_params =
  {
    capacity = 40;
    min_thresh = 5.;
    max_thresh = 15.;
    max_p = 0.1;
    queue_weight = 0.002;
    mean_pkt_time = 0.002;
  }

(* Shared RED average-queue machinery; [fred] reuses it with its own
   per-flow admission rule. *)
module Red_state = struct
  (* The EWMA average lives in its own all-float record: OCaml stores
     such records flat, so the per-enqueue [update_avg] write is an
     unboxed store. As a [mutable avg : float] field of the mixed
     record below, every write would box a fresh float (typelint T1
     flags exactly that pattern). *)
  type avg_cell = { mutable v : float }

  type nonrec t = {
    p : red_params;
    avg : avg_cell;
    mutable count : int;  (* packets since last marked/dropped *)
    mutable idle_since : float option;
  }

  let create p = { p; avg = { v = 0. }; count = -1; idle_since = None }

  let[@corelite.hot] update_avg t ~now ~qlen =
    (match t.idle_since with
    | Some t0 when qlen = 0 ->
      (* Decay the average as if [m] small packets had been transmitted
         during the idle period. *)
      let m = (now -. t0) /. t.p.mean_pkt_time in
      t.avg.v <- t.avg.v *. ((1. -. t.p.queue_weight) ** m);
      t.idle_since <- None
    | Some _ -> t.idle_since <- None
    | None -> ());
    t.avg.v <- t.avg.v +. (t.p.queue_weight *. (float_of_int qlen -. t.avg.v))

  let note_idle t ~now = if t.idle_since = None then t.idle_since <- Some now

  (* Early-drop verdict for the standard RED profile. *)
  let[@corelite.hot] early_drop t rng =
    if t.avg.v < t.p.min_thresh then begin
      t.count <- -1;
      false
    end
    else if t.avg.v >= t.p.max_thresh then begin
      t.count <- 0;
      true
    end
    else begin
      t.count <- t.count + 1;
      let pb = t.p.max_p *. (t.avg.v -. t.p.min_thresh) /. (t.p.max_thresh -. t.p.min_thresh) in
      let denom = 1. -. (float_of_int t.count *. pb) in
      let pa = if denom <= 0. then 1. else pb /. denom in
      (* lint: fault-ok -- RED's own early-drop coin, not fault injection *)
      if Sim.Rng.bernoulli rng pa then begin
        t.count <- 0;
        true
      end
      else false
    end
end

let red ?(params = default_red_params) ~rng ~now () =
  let fifo = Fifo.create () in
  let state = Red_state.create params in
  let enqueue pkt =
    Red_state.update_avg state ~now:(now ()) ~qlen:(Fifo.length fifo);
    if Fifo.length fifo >= params.capacity then Dropped
    else if Red_state.early_drop state rng then Dropped
    else begin
      Fifo.push fifo pkt;
      Enqueued
    end
  in
  let dequeue () =
    let pkt = Fifo.pop fifo in
    if Fifo.length fifo = 0 then Red_state.note_idle state ~now:(now ());
    pkt
  in
  {
    enqueue;
    dequeue;
    length = (fun () -> Fifo.length fifo);
    bytes = (fun () -> Fifo.bytes fifo);
    kind = "red";
  }

let fred ?(params = default_red_params) ?(minq = 2) ~rng ~now () =
  let fifo = Fifo.create () in
  let state = Red_state.create params in
  (* Per-flow state exists only while the flow has packets buffered. *)
  let qlen : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let strikes : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let flow_qlen f = Option.value ~default:0 (Hashtbl.find_opt qlen f) in
  let flow_strikes f = Option.value ~default:0 (Hashtbl.find_opt strikes f) in
  let active () = Hashtbl.length qlen in
  let enqueue pkt =
    let flow = pkt.Packet.flow in
    Red_state.update_avg state ~now:(now ()) ~qlen:(Fifo.length fifo);
    let avgcq = if active () = 0 then state.Red_state.avg.Red_state.v else state.Red_state.avg.Red_state.v /. float_of_int (active ()) in
    let avgcq = Float.max avgcq 1. in
    let fq = float_of_int (flow_qlen flow) in
    let maxq =
      if state.Red_state.avg.Red_state.v >= params.max_thresh then Float.max (float_of_int minq) avgcq
      else params.max_thresh
    in
    if Fifo.length fifo >= params.capacity then Dropped
    else if fq >= maxq || (flow_strikes flow > 1 && fq >= 2. *. avgcq) then begin
      Hashtbl.replace strikes flow (flow_strikes flow + 1);
      Dropped
    end
    else if fq >= Float.max (float_of_int minq) avgcq && Red_state.early_drop state rng then Dropped
    else begin
      Fifo.push fifo pkt;
      Hashtbl.replace qlen flow (flow_qlen flow + 1);
      Enqueued
    end
  in
  let dequeue () =
    match Fifo.pop fifo with
    | None -> None
    | Some pkt ->
      let flow = pkt.Packet.flow in
      let n = flow_qlen flow - 1 in
      if n <= 0 then begin
        Hashtbl.remove qlen flow;
        Hashtbl.remove strikes flow
      end
      else Hashtbl.replace qlen flow n;
      if Fifo.length fifo = 0 then Red_state.note_idle state ~now:(now ());
      Some pkt
  in
  {
    enqueue;
    dequeue;
    length = (fun () -> Fifo.length fifo);
    bytes = (fun () -> Fifo.bytes fifo);
    kind = "fred";
  }

type scheduler = Priority | Weighted_round_robin of int array

let classful ~classes ~classify ~scheduler ~capacity () =
  if classes <= 0 then invalid_arg "Qdisc.classful: classes must be positive";
  if capacity <= 0 then invalid_arg "Qdisc.classful: capacity must be positive";
  (match scheduler with
  | Weighted_round_robin quanta ->
    if Array.length quanta <> classes then
      invalid_arg "Qdisc.classful: one quantum per class";
    Array.iter
      (fun q -> if q <= 0 then invalid_arg "Qdisc.classful: quanta must be positive")
      quanta
  | Priority -> ());
  let queues = Array.init classes (fun _ -> Fifo.create ()) in
  (* WRR state: the class currently holding the token and its remaining
     quantum. *)
  let current = ref 0 in
  let remaining =
    ref (match scheduler with Weighted_round_robin q -> q.(0) | Priority -> 0)
  in
  let enqueue pkt =
    let cls = classify pkt in
    if cls < 0 || cls >= classes then
      invalid_arg "Qdisc.classful: classify out of range";
    if Fifo.length queues.(cls) >= capacity then Dropped
    else begin
      Fifo.push queues.(cls) pkt;
      Enqueued
    end
  in
  let dequeue_priority () =
    let rec scan cls =
      if cls >= classes then None
      else
        match Fifo.pop queues.(cls) with
        | Some pkt -> Some pkt
        | None -> scan (cls + 1)
    in
    scan 0
  in
  let dequeue_wrr quanta =
    (* Visit at most [classes] queues: move the token when the current
       class is empty or its quantum is spent. *)
    let rec scan visited =
      if visited >= classes then None
      else if Fifo.length queues.(!current) = 0 || !remaining <= 0 then begin
        current := (!current + 1) mod classes;
        remaining := quanta.(!current);
        scan (visited + 1)
      end
      else begin
        decr remaining;
        Fifo.pop queues.(!current)
      end
    in
    scan 0
  in
  let dequeue () =
    match scheduler with
    | Priority -> dequeue_priority ()
    | Weighted_round_robin quanta -> dequeue_wrr quanta
  in
  let total f = Array.fold_left (fun acc q -> acc + f q) 0 queues in
  {
    enqueue;
    dequeue;
    length = (fun () -> total Fifo.length);
    bytes = (fun () -> total Fifo.bytes);
    kind = "classful";
  }

let drr ~weight ?(quantum_unit = Packet.default_size) ~capacity () =
  if capacity <= 0 then invalid_arg "Qdisc.drr: capacity must be positive";
  if quantum_unit <= 0 then invalid_arg "Qdisc.drr: quantum must be positive";
  (* Per-flow state (that is the point of this comparator): queue,
     banked deficit, and membership in the active round-robin ring. *)
  let queues : (int, Fifo.t) Hashtbl.t = Hashtbl.create 16 in
  let banked : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let ring : int Sim.Ring.t = Sim.Ring.create () in
  (* The flow currently holding the service token and its remaining
     deficit for this round. *)
  let current = ref None in
  let total_len = ref 0 in
  let total_bytes = ref 0 in
  let quantum flow =
    let w = weight flow in
    if not (Float.is_finite w) || w <= 0. then
      invalid_arg
        (Printf.sprintf "Qdisc.drr: weight of flow %d must be finite and positive (got %h)"
           flow w);
    Stdlib.max 1 (int_of_float (w *. float_of_int quantum_unit))
  in
  let retire flow =
    Hashtbl.remove queues flow;
    Hashtbl.remove banked flow
  in
  let enqueue pkt =
    let flow = pkt.Packet.flow in
    let q =
      match Hashtbl.find_opt queues flow with
      | Some q -> q
      | None ->
        let q = Fifo.create () in
        Hashtbl.add queues flow q;
        q
    in
    if Fifo.length q >= capacity then Dropped
    else begin
      (* Newly backlogged: join the ring. An empty queue can never hold
         the service token (it is retired on drain), so no clash. *)
      if Fifo.length q = 0 then begin
        Sim.Ring.push ring flow;
        Hashtbl.replace banked flow 0
      end;
      Fifo.push q pkt;
      incr total_len;
      total_bytes := !total_bytes + pkt.Packet.size;
      Enqueued
    end
  in
  (* Serve under the token: a flow keeps it until its quantum for the
     round is spent or its queue drains (classic DRR). One packet is
     emitted per [dequeue] call; the token persists across calls. *)
  let rec dequeue () =
    match !current with
    | Some (flow, deficit) -> (
      match Hashtbl.find_opt queues flow with
      | None ->
        current := None;
        dequeue ()
      | Some q -> (
        match Fifo.peek q with
        | None ->
          retire flow;
          current := None;
          dequeue ()
        | Some pkt when pkt.Packet.size <= deficit ->
          ignore (Fifo.pop q);
          decr total_len;
          total_bytes := !total_bytes - pkt.Packet.size;
          if Fifo.length q = 0 then begin
            (* Emptied within its round: state vanishes entirely. *)
            retire flow;
            current := None
          end
          else current := Some (flow, deficit - pkt.Packet.size);
          Some pkt
        | Some _ ->
          (* Quantum spent: bank the remainder, go to the ring tail. *)
          Hashtbl.replace banked flow deficit;
          Sim.Ring.push ring flow;
          current := None;
          dequeue ()))
    | None ->
      if Sim.Ring.is_empty ring then None
      else begin
        let flow = Sim.Ring.pop_exn ring in
        if Hashtbl.mem queues flow then begin
          let carried = Option.value ~default:0 (Hashtbl.find_opt banked flow) in
          current := Some (flow, carried + quantum flow);
          dequeue ()
        end
        else dequeue ()
      end
  in
  {
    enqueue;
    dequeue;
    length = (fun () -> !total_len);
    bytes = (fun () -> !total_bytes);
    kind = "drr";
  }

(* ------------------------------------------------------------------ *)
(* Invariant auditing *)

let with_invariants t =
  let nonneg after =
    Sim.Invariant.requiref
      ~what:(fun () ->
        Printf.sprintf "Qdisc(%s): negative occupancy (%d packets, %d bytes)"
          t.kind after (t.bytes ()))
      (after >= 0 && t.bytes () >= 0)
  in
  let enqueue pkt =
    let before = t.length () in
    let action = t.enqueue pkt in
    let after = t.length () in
    (match action with
    | Enqueued ->
      Sim.Invariant.require
        ~what:("Qdisc(" ^ t.kind ^ "): Enqueued must grow the queue by exactly one")
        (after = before + 1)
    | Dropped ->
      Sim.Invariant.require
        ~what:("Qdisc(" ^ t.kind ^ "): Dropped must leave the queue unchanged")
        (after = before));
    nonneg after;
    action
  in
  let dequeue () =
    let before = t.length () in
    let pkt = t.dequeue () in
    let after = t.length () in
    (match pkt with
    | Some _ ->
      Sim.Invariant.require
        ~what:("Qdisc(" ^ t.kind ^ "): dequeue must shrink the queue by exactly one")
        (after = before - 1)
    | None ->
      Sim.Invariant.require
        ~what:("Qdisc(" ^ t.kind ^ "): empty dequeue must leave the queue unchanged")
        (after = before));
    nonneg after;
    pkt
  in
  { t with enqueue; dequeue }

(* Trace wrapping composes under [with_invariants] (Link applies trace
   first, invariants on top), so the audited view includes the traced
   closures. The [want] guards make the wrapped closures cost two loads
   and a branch over the bare discipline while tracing is off — nothing
   is allocated either way, keeping the §7 hot-path budget intact. *)
let with_trace ~trace ~now ~link t =
  let enqueue pkt =
    let action = t.enqueue pkt in
    (match action with
    | Enqueued ->
      if Sim.Trace.want trace Sim.Trace.Enqueue then
        Sim.Trace.record trace ~time:(now ()) Sim.Trace.Enqueue
          ~a:link ~b:pkt.Packet.flow
          ~x:(float_of_int (t.length ()))
          ~y:0.
    | Dropped -> ());
    action
  in
  let dequeue () =
    let pkt = t.dequeue () in
    (match pkt with
    | Some p ->
      if Sim.Trace.want trace Sim.Trace.Dequeue then
        Sim.Trace.record trace ~time:(now ()) Sim.Trace.Dequeue
          ~a:link ~b:p.Packet.flow
          ~x:(float_of_int (t.length ()))
          ~y:0.
    | None -> ());
    pkt
  in
  { t with enqueue; dequeue }
