(** Network nodes (edge routers, core routers).

    Two forwarding planes coexist:

    - {e per-flow static routing} (the paper's figure topologies):
      every node on a flow's path holds a route entry mapping the flow
      id to an output link, and the egress node holds a sink callback;
    - {e destination-indexed FIB forwarding} (generated scale
      topologies): packets carry a destination host index
      ({!Packet.dst} [>= 0]) and nodes forward through a flat
      per-destination link array shared by all flows — core routers
      hold no per-flow state no matter how many flows cross them.

    A packet with [dst = -1] always takes the per-flow plane, so
    hand-built topologies are byte-for-byte unaffected by the FIB. *)

type kind = Edge | Core

type t = {
  id : int;
  name : string;
  kind : kind;
  routes : (int, Link.t) Hashtbl.t;  (** flow id -> output link *)
  sinks : (int, Packet.t -> unit) Hashtbl.t;  (** flow id -> egress consumer *)
  mutable fib : Link.t option array;
      (** destination host index -> output link; [[||]] when the node
          is not FIB-routed *)
  mutable host : int;  (** own host index; [-1] for non-hosts *)
  mutable host_sink : Packet.t -> unit;
      (** consumes FIB-routed packets addressed to this host *)
}

val create : id:int -> name:string -> kind:kind -> t

val set_route : t -> flow:int -> Link.t -> unit

val set_sink : t -> flow:int -> (Packet.t -> unit) -> unit

(** [set_fib t ~host ~fib ~host_sink] installs the destination-indexed
    forwarding state: the node's own host index ([-1] for switches),
    its per-destination link array, and — for hosts — the local
    delivery callback. *)
val set_fib :
  t -> host:int -> fib:Link.t option array -> host_sink:(Packet.t -> unit) option -> unit

(** Forward a packet: FIB plane when [Packet.dst >= 0], else route
    entry if present, else sink entry.
    @raise Failure if the node knows nothing about the packet. *)
val receive : t -> Packet.t -> unit

val is_edge : t -> bool
