(** Network packets.

    All evaluation scenarios use fixed-size 1 KB data packets (paper
    Section 4). A Corelite marker is carried piggybacked on a data packet
    ("logically distinct though it may be physically piggybacked"), so it
    consumes no extra link bandwidth. The [label] field is the CSFQ
    normalized-rate label; it is negative when the packet is unlabelled. *)

(** Corelite marker: identifies the generating edge router and flow, and
    carries the flow's normalized rate [bg/w] for the stateless
    selector. *)
type marker = {
  edge_id : int;  (** node id of the ingress edge router *)
  flow_id : int;
  normalized_rate : float;  (** [bg(f) / w(f)] at injection time *)
}

type t = {
  id : int;  (** per-flow sequence number (TCP uses it as the segment
                 sequence) *)
  flow : int;
  micro : int;  (** end-to-end micro-flow id within an edge-to-edge
                    aggregate; 0 when the flow is not an aggregate *)
  size : int;  (** bytes *)
  dst : int;  (** destination host index for FIB-routed (generated)
                  topologies; [-1] on per-flow-routed paths *)
  created : float;  (** injection time at the ingress edge *)
  mutable marker : marker option;
  mutable label : float;  (** CSFQ label; negative when unlabelled *)
}

val default_size : int
(** 1000 bytes, the paper's fixed packet size. *)

val make :
  id:int ->
  flow:int ->
  ?micro:int ->
  ?size:int ->
  ?dst:int ->
  ?marker:marker ->
  created:float ->
  unit ->
  t

val has_marker : t -> bool
