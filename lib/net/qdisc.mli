(** Queue disciplines for link output queues.

    A queue discipline owns the buffer of packets waiting for
    transmission (the packet currently being serialized on the link is
    not counted). The Corelite and CSFQ experiments use {!droptail} with
    a 40-packet buffer (paper Section 4); {!red} and {!fred} implement
    the related-work comparators of Section 5 for the ablation benches. *)

type action = Enqueued | Dropped

type t = {
  enqueue : Packet.t -> action;
  dequeue : unit -> Packet.t option;
  length : unit -> int;  (** packets waiting *)
  bytes : unit -> int;  (** bytes waiting *)
  kind : string;
}

(** The FIFO packet buffer every discipline builds on: a growable ring
    ({!Sim.Ring}) with a running byte count, so steady-state pushes
    allocate nothing. Exposed for the model tests that check it against
    a [Stdlib.Queue] reference. *)
module Fifo : sig
  type t

  val create : unit -> t

  val push : t -> Packet.t -> unit

  (** FIFO removal; [None] when empty. *)
  val pop : t -> Packet.t option

  val peek : t -> Packet.t option

  val length : t -> int

  (** Sum of the buffered packets' sizes. *)
  val bytes : t -> int
end

(** FIFO with tail drop when more than [capacity] packets wait. *)
val droptail : capacity:int -> t

type red_params = {
  capacity : int;  (** hard buffer limit, packets *)
  min_thresh : float;  (** packets *)
  max_thresh : float;  (** packets *)
  max_p : float;  (** drop probability at [max_thresh] *)
  queue_weight : float;  (** EWMA gain for the average queue size *)
  mean_pkt_time : float;  (** typical transmission time, for the idle
                              correction (seconds) *)
}

val default_red_params : red_params

(** Random Early Detection (Floyd & Jacobson 1993): drops arriving
    packets with a probability that grows with the EWMA of the queue
    length. [now] supplies the current time for the idle-period
    correction of the average. *)
val red : ?params:red_params -> rng:Sim.Rng.t -> now:(unit -> float) -> unit -> t

(** Flow Random Early Drop (Lin & Morris 1997): RED plus per-flow
    accounting for flows that have packets buffered, bounding each
    flow's buffer occupancy around the per-flow fair share. *)
val fred : ?params:red_params -> ?minq:int -> rng:Sim.Rng.t -> now:(unit -> float) -> unit -> t

(** Deficit Round Robin (Shreedhar & Varghese 1995) with per-flow
    queues and weighted quanta — the state-intensive scheduler that
    achieves weighted fair queueing approximately; the comparison
    baseline for what Corelite approximates {e without} per-flow
    state. [weight] maps a flow id to its rate weight (quantum =
    [weight * quantum_unit] bytes); each flow's queue holds at most
    [capacity] packets.
    @raise Invalid_argument on non-positive capacity or quantum. *)
val drr :
  weight:(int -> float) ->
  ?quantum_unit:int ->
  capacity:int ->
  unit ->
  t

(** How a multi-queue (classful) discipline picks the next class. *)
type scheduler =
  | Priority  (** strict priority: lowest class index first *)
  | Weighted_round_robin of int array
      (** per-class quantum in packets; classes are visited cyclically *)

(** Multi-queue link discipline — the paper notes core routers "may
    have multiple packet queues depending on [their] forwarding
    behavior" while congestion detection uses only the aggregate
    backlog, which is what [length]/[bytes] report. [classify] maps a
    packet to its class in [0, classes); each class has its own
    [capacity]-packet DropTail buffer.
    @raise Invalid_argument on nonsensical class counts, capacities or
    quanta, and when a WRR quantum array length differs from
    [classes]. *)
val classful :
  classes:int ->
  classify:(Packet.t -> int) ->
  scheduler:scheduler ->
  capacity:int ->
  unit ->
  t

(** [with_invariants t] wraps [t] so every enqueue/dequeue audits the
    occupancy accounting (non-negative length and bytes; [Enqueued]
    grows the queue by exactly one, a successful dequeue shrinks it by
    exactly one) and raises {!Sim.Invariant.Violation} on the first
    inconsistency. {!Link.create} applies this automatically when its
    [check_invariants] flag is on. *)
val with_invariants : t -> t

(** [with_trace ~trace ~now ~link t] wraps [t] so every successful
    enqueue and dequeue records a [Sim.Trace.Enqueue]/[Dequeue] event
    (link id [link], the packet's flow, queue length after the
    operation) when the tracer wants those kinds. Failed enqueues are
    not recorded here — {!Link} records the authoritative [Drop] event
    with its reason. Costs two loads and a branch per operation while
    tracing is off; allocates nothing either way. {!Link.create}
    applies this automatically. *)
val with_trace :
  trace:Sim.Trace.t -> now:(unit -> float) -> link:int -> t -> t
