(** Packet-level network substrate — the ns-2 replacement.

    Store-and-forward links with transmission and propagation delay,
    pluggable queue disciplines, per-flow static routing over explicit
    topologies, shortest-path routing for generated ones, and the
    traffic endpoints the evaluation needs: rate-adaptive paced sources
    (the edge agents' engine), on/off burst drivers, unresponsive
    blasters (see {!Workload.Blaster}) and a Reno-style TCP.

    Scheme logic (Corelite, CSFQ) stays out of this layer: links expose
    {!Link.hooks} for admission/observation and [on_drop] for loss
    notification, and the schemes plug in from above. *)

(** Packets: fixed-size data units carrying optional Corelite markers,
    CSFQ labels and micro-flow ids. *)
module Packet = Packet

(** Queue disciplines: DropTail, RED, FRED, classful multi-queue,
    per-flow DRR. *)
module Qdisc = Qdisc

(** Unidirectional store-and-forward links with scheme hooks. *)
module Link = Link

(** Deterministic fault injection: interprets {!Sim.Faultplan} plans
    (loss, marker corruption, flaps) on a wired topology. *)
module Fault = Fault

(** Forwarding nodes (edge and core routers). *)
module Node = Node

(** Topology container and per-flow path installation. *)
module Topology = Topology

(** Edge-to-edge flows (id, weight, node path). *)
module Flow = Flow

(** Delay-shortest paths over a topology. *)
module Routing = Routing

(** The shared rate-adaptive paced source (slow-start + LIMD). *)
module Source = Source

(** Exponential/Pareto on-off drivers for bursty traffic. *)
module Onoff = Onoff

(** Reno-style TCP sender and receiver. *)
module Tcp = Tcp

(** Per-link observation: queue/throughput/drop series. *)
module Probe = Probe

(** Dense flow-id-indexed tables: the flat-array replacement for
    per-flow Hashtbls on deployment control paths. *)
module Flowtable = Flowtable
