type verdict = Pass | Drop

type drop_reason = Filtered | Queue_full | Injected | Down

type fault_action = Forward | Lose | Strip

type hooks = {
  on_arrival : Packet.t -> verdict;
  on_queue_change : int -> unit;
}

(* Hot-path layout: the packet being serialized sits in [in_service]
   (valid only while [busy]), packets in flight sit in the [wire] ring,
   and the two persistent closures [tx_done_ev]/[deliver_ev] are pushed
   with [Engine.schedule_unit] — so a transmission costs zero heap
   allocations where it used to cost two fresh closures plus two
   cancellation handles per packet. Propagation delay is constant per
   link, so in-flight packets leave the wire in FIFO order and one ring
   suffices.

   Outages and router resets invalidate events already in the heap
   (a tx-done for a purged transmission, deliveries for a cleared
   wire). [schedule_unit] events cannot be cancelled, so the closures
   are generation-guarded: [purge] bumps [generation] and re-arms them,
   turning every stale event into a no-op while costing nothing on the
   per-packet path. *)
type t = {
  id : int;
  name : string;
  src : int;
  dst : int;
  bandwidth : float;
  delay : float;
  qdisc : Qdisc.t;
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  mutable busy : bool;
  mutable in_service : Packet.t;
  wire : Packet.t Sim.Ring.t;
  mutable tx_done_ev : unit -> unit;
  mutable deliver_ev : unit -> unit;
  mutable up : bool;
  mutable generation : int;
  mutable fault : (Packet.t -> fault_action) option;
  mutable hooks : hooks option;
  mutable on_drop : (drop_reason -> Packet.t -> unit) option;
  mutable deliver : Packet.t -> unit;
  mutable arrivals : int;
  mutable departures : int;
  mutable drops : int;
  mutable bytes_sent : int;
  check : bool;
}

let capacity_pps t = t.bandwidth /. float_of_int (8 * Packet.default_size)

let[@corelite.hot] queue_length t = t.qdisc.Qdisc.length ()

let is_up t = t.up

let[@corelite.hot] notify_queue_change t =
  match t.hooks with
  | Some h -> h.on_queue_change (queue_length t)
  | None -> ()

let reason_code = function Filtered -> 0 | Queue_full -> 1 | Injected -> 2 | Down -> 3

let[@corelite.hot] drop t reason pkt =
  t.drops <- t.drops + 1;
  if Sim.Trace.want t.trace Sim.Trace.Drop then
    Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) Sim.Trace.Drop
      ~a:t.id ~b:pkt.Packet.flow
      ~x:(float_of_int (reason_code reason))
      ~y:0.;
  match t.on_drop with Some f -> f reason pkt | None -> ()

(* Packet conservation: every arrival is accounted for exactly once —
   transmitted (delivered or on the wire), dropped, still queued, or in
   service right now. *)
let check_conservation t =
  let queued = queue_length t in
  let in_service = if t.busy then 1 else 0 in
  Sim.Invariant.requiref
    ~what:(fun () ->
      Printf.sprintf
        "Link %s: packet conservation broken (%d arrived <> %d departed + %d \
         dropped + %d queued + %d in service)"
        t.name t.arrivals t.departures t.drops queued in_service)
    (t.arrivals = t.departures + t.drops + queued + in_service)

let[@corelite.hot] rec start_transmission t =
  match t.qdisc.Qdisc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    t.in_service <- pkt;
    notify_queue_change t;
    let tx_time = float_of_int (8 * pkt.Packet.size) /. t.bandwidth in
    Sim.Engine.schedule_unit t.engine ~delay:tx_time t.tx_done_ev

and[@corelite.hot] tx_done t =
  let pkt = t.in_service in
  t.departures <- t.departures + 1;
  t.bytes_sent <- t.bytes_sent + pkt.Packet.size;
  (* One delivery event per packet, scheduled now (at serialization
     end) exactly as the old per-packet closure was — keeping the
     event-heap seq assignment, and with it every FIFO tie-break among
     simultaneous events, byte-identical to the pre-ring behaviour. *)
  Sim.Ring.push t.wire pkt;
  Sim.Engine.schedule_unit t.engine ~delay:t.delay t.deliver_ev;
  start_transmission t;
  if t.check then check_conservation t

let[@corelite.hot] deliver_head t = t.deliver (Sim.Ring.pop_exn t.wire)

(* (Re-)install the generation-guarded event closures. Events pushed
   under an older generation find the guard false and die silently. *)
let arm t =
  let gen = t.generation in
  t.tx_done_ev <- (fun () -> if t.generation = gen then tx_done t);
  t.deliver_ev <- (fun () -> if t.generation = gen then deliver_head t)

(* Lose every packet this link currently holds — the in-service one,
   the queue, and everything in flight on the wire — counting each as a
   drop so conservation still balances, then invalidate the stale
   heap events. Shared by link-down and router-reset paths. *)
let purge t reason =
  if t.busy then begin
    t.busy <- false;
    drop t reason t.in_service
  end;
  let rec drain () =
    match t.qdisc.Qdisc.dequeue () with
    | Some pkt ->
      drop t reason pkt;
      drain ()
    | None -> ()
  in
  drain ();
  while not (Sim.Ring.is_empty t.wire) do
    (* In-flight packets were counted as departures at tx-done; they
       never reach the far end, so reclassify them as drops to keep
       per-link conservation balanced. *)
    t.departures <- t.departures - 1;
    drop t reason (Sim.Ring.pop_exn t.wire)
  done;
  (* Release the ring's storage too: a reset must not pin a previous
     epoch's packets alive (see Sim.Ring.clear). *)
  Sim.Ring.clear t.wire;
  t.generation <- t.generation + 1;
  arm t;
  notify_queue_change t;
  if t.check then check_conservation t

let set_up t up =
  if up <> t.up then begin
    t.up <- up;
    if Sim.Trace.want t.trace Sim.Trace.Fault then
      Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine) Sim.Trace.Fault
        ~a:t.id ~b:(-1)
        ~x:(if up then 3. else 2.)
        ~y:0.;
    if up then begin
      if not t.busy then start_transmission t
    end
    else purge t Down
  end

let reset t = purge t Down

let set_fault t f = t.fault <- f

let create ?check_invariants ~engine ~id ~name ~src ~dst ~bandwidth ~delay ~qdisc () =
  if not (Float.is_finite bandwidth) then
    invalid_arg "Link.create: bandwidth must be finite";
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if not (Float.is_finite delay) then invalid_arg "Link.create: delay must be finite";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  let check =
    match check_invariants with Some b -> b | None -> Sim.Invariant.default ()
  in
  let trace = Sim.Engine.trace engine in
  (* Trace first, invariants on top: the audit then covers the traced
     closures, and both wrappers are allocated once per link. *)
  let qdisc =
    Qdisc.with_trace ~trace ~now:(fun () -> Sim.Engine.now engine) ~link:id qdisc
  in
  let qdisc = if check then Qdisc.with_invariants qdisc else qdisc in
  let t =
    {
      id;
      name;
      src;
      dst;
      bandwidth;
      delay;
      qdisc;
      engine;
      trace;
      busy = false;
      (* Placeholder occupying [in_service] while idle; never read
         ([busy] gates every access). *)
      in_service = Packet.make ~id:(-1) ~flow:(-1) ~created:0. ();
      wire = Sim.Ring.create ();
      tx_done_ev = ignore;
      deliver_ev = ignore;
      up = true;
      generation = 0;
      fault = None;
      hooks = None;
      on_drop = None;
      deliver = (fun _ -> failwith ("Link " ^ name ^ ": deliver not wired"));
      arrivals = 0;
      departures = 0;
      drops = 0;
      bytes_sent = 0;
      check;
    }
  in
  arm t;
  (* Pull probes: sampled only when the registry exports, so they add
     nothing to the per-packet path. *)
  let m = Sim.Engine.metrics engine in
  let pfx = "link." ^ name ^ "." in
  Sim.Metrics.probe m (pfx ^ "arrivals")
    ~help:"packets that arrived, including those later dropped"
    (fun () -> float_of_int t.arrivals);
  Sim.Metrics.probe m (pfx ^ "departures")
    ~help:"packets fully serialized onto the wire"
    (fun () -> float_of_int t.departures);
  Sim.Metrics.probe m (pfx ^ "drops")
    ~help:"packets lost: filtered, queue-full, injected, or down"
    (fun () -> float_of_int t.drops);
  Sim.Metrics.probe m (pfx ^ "bytes_sent")
    ~help:"payload bytes serialized"
    (fun () -> float_of_int t.bytes_sent);
  Sim.Metrics.probe m (pfx ^ "queue")
    ~help:"packets waiting right now, excluding the one in service"
    (fun () -> float_of_int (queue_length t));
  t

let[@corelite.hot] send t pkt =
  t.arrivals <- t.arrivals + 1;
  (if not t.up then drop t Down pkt
   else
     let admitted =
       (* Fault injection runs before the router's admission hooks:
          a packet lost (or a marker corrupted) on the upstream wire is
          never observed by the core logic attached to this link. *)
       match t.fault with
       | None -> true
       | Some f -> (
         match f pkt with
         | Forward -> true
         | Strip ->
           pkt.Packet.marker <- None;
           if Sim.Trace.want t.trace Sim.Trace.Fault then
             Sim.Trace.record t.trace ~time:(Sim.Engine.now t.engine)
               Sim.Trace.Fault ~a:t.id ~b:pkt.Packet.flow ~x:1. ~y:0.;
           true
         | Lose ->
           drop t Injected pkt;
           false)
     in
     if admitted then
       (* A plain match: the [|> function] spelling builds a function
          value per packet just to apply it once. *)
       match (match t.hooks with Some h -> h.on_arrival pkt | None -> Pass) with
       | Drop -> drop t Filtered pkt
       | Pass -> (
         match t.qdisc.Qdisc.enqueue pkt with
         | Qdisc.Dropped -> drop t Queue_full pkt
         | Qdisc.Enqueued ->
           notify_queue_change t;
           if not t.busy then start_transmission t));
  if t.check then check_conservation t
