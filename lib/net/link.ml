type verdict = Pass | Drop

type drop_reason = Filtered | Queue_full

type hooks = {
  on_arrival : Packet.t -> verdict;
  on_queue_change : int -> unit;
}

type t = {
  id : int;
  name : string;
  src : int;
  dst : int;
  bandwidth : float;
  delay : float;
  qdisc : Qdisc.t;
  engine : Sim.Engine.t;
  mutable busy : bool;
  mutable hooks : hooks option;
  mutable on_drop : (drop_reason -> Packet.t -> unit) option;
  mutable deliver : Packet.t -> unit;
  mutable arrivals : int;
  mutable departures : int;
  mutable drops : int;
  mutable bytes_sent : int;
  check : bool;
}

let create ?check_invariants ~engine ~id ~name ~src ~dst ~bandwidth ~delay ~qdisc () =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  let check =
    match check_invariants with Some b -> b | None -> Sim.Invariant.default ()
  in
  let qdisc = if check then Qdisc.with_invariants qdisc else qdisc in
  {
    id;
    name;
    src;
    dst;
    bandwidth;
    delay;
    qdisc;
    engine;
    busy = false;
    hooks = None;
    on_drop = None;
    deliver = (fun _ -> failwith ("Link " ^ name ^ ": deliver not wired"));
    arrivals = 0;
    departures = 0;
    drops = 0;
    bytes_sent = 0;
    check;
  }

let capacity_pps t = t.bandwidth /. float_of_int (8 * Packet.default_size)

let queue_length t = t.qdisc.Qdisc.length ()

let notify_queue_change t =
  match t.hooks with
  | Some h -> h.on_queue_change (queue_length t)
  | None -> ()

let drop t reason pkt =
  t.drops <- t.drops + 1;
  match t.on_drop with Some f -> f reason pkt | None -> ()

(* Packet conservation: every arrival is accounted for exactly once —
   transmitted, dropped, still queued, or on the wire right now. *)
let check_conservation t =
  let queued = queue_length t in
  let in_service = if t.busy then 1 else 0 in
  Sim.Invariant.requiref
    ~what:(fun () ->
      Printf.sprintf
        "Link %s: packet conservation broken (%d arrived <> %d departed + %d \
         dropped + %d queued + %d in service)"
        t.name t.arrivals t.departures t.drops queued in_service)
    (t.arrivals = t.departures + t.drops + queued + in_service)

let rec start_transmission t =
  match t.qdisc.Qdisc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    notify_queue_change t;
    let tx_time = float_of_int (8 * pkt.Packet.size) /. t.bandwidth in
    let on_tx_done () =
      t.departures <- t.departures + 1;
      t.bytes_sent <- t.bytes_sent + pkt.Packet.size;
      let arrive () = t.deliver pkt in
      ignore (Sim.Engine.schedule t.engine ~delay:t.delay arrive);
      start_transmission t;
      if t.check then check_conservation t
    in
    ignore (Sim.Engine.schedule t.engine ~delay:tx_time on_tx_done)

let send t pkt =
  t.arrivals <- t.arrivals + 1;
  (match t.hooks with Some h -> h.on_arrival pkt | None -> Pass)
  |> (function
       | Drop -> drop t Filtered pkt
       | Pass -> (
         match t.qdisc.Qdisc.enqueue pkt with
         | Qdisc.Dropped -> drop t Queue_full pkt
         | Qdisc.Enqueued ->
           notify_queue_change t;
           if not t.busy then start_transmission t));
  if t.check then check_conservation t
