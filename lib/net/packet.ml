type marker = { edge_id : int; flow_id : int; normalized_rate : float }

type t = {
  id : int;
  flow : int;
  micro : int;
  size : int;
  dst : int;
  created : float;
  mutable marker : marker option;
  mutable label : float;
}

let default_size = 1000

let make ~id ~flow ?(micro = 0) ?(size = default_size) ?(dst = -1) ?marker ~created () =
  { id; flow; micro; size; dst; created; marker; label = -1. }

let has_marker t = Option.is_some t.marker
