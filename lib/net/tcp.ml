type params = {
  initial_cwnd : float;
  initial_ssthresh : float;
  max_cwnd : float;
  rto_min : float;
  rto_max : float;
  dupack_threshold : int;
}

let default_params =
  {
    initial_cwnd = 2.;
    initial_ssthresh = 32.;
    max_cwnd = 256.;
    rto_min = 0.2;
    rto_max = 10.;
    dupack_threshold = 3;
  }

module Sender = struct
  type t = {
    engine : Sim.Engine.t;
    params : params;
    flow : int;
    micro : int;
    transmit : Packet.t -> unit;
    mutable running : bool;
    mutable next_seq : int;  (* next new sequence to send *)
    mutable acked : int;  (* highest cumulative ack *)
    mutable cwnd : float;
    mutable ssthresh : float;
    mutable dup_acks : int;
    mutable recover : int;  (* fast-recovery exit point *)
    mutable srtt : float;
    mutable rttvar : float;
    mutable rto : float;
    mutable backoff : float;
    mutable rto_timer : Sim.Engine.handle option;
    (* Karn's rule: RTT-sample one un-retransmitted segment at a time. *)
    mutable sample_seq : int;
    mutable sample_time : float;
    mutable transmitted : int;
    mutable retransmits : int;
    mutable timeouts : int;
  }

  let create ~engine ?(params = default_params) ~flow ~micro ~transmit () =
    {
      engine;
      params;
      flow;
      micro;
      transmit;
      running = false;
      next_seq = 1;
      acked = 0;
      cwnd = params.initial_cwnd;
      ssthresh = params.initial_ssthresh;
      dup_acks = 0;
      recover = 0;
      srtt = 0.;
      rttvar = 0.;
      rto = 1.;
      backoff = 1.;
      rto_timer = None;
      sample_seq = 0;
      sample_time = 0.;
      transmitted = 0;
      retransmits = 0;
      timeouts = 0;
    }

  let cwnd t = t.cwnd

  let ssthresh t = t.ssthresh

  let transmitted t = t.transmitted

  let retransmits t = t.retransmits

  let timeouts t = t.timeouts

  let acked t = t.acked

  let srtt t = t.srtt

  let in_flight t = t.next_seq - 1 - t.acked

  let cancel_rto t =
    match t.rto_timer with
    | Some h ->
      Sim.Engine.cancel h;
      t.rto_timer <- None
    | None -> ()

  let emit t ~seq ~retransmission =
    let now = Sim.Engine.now t.engine in
    let pkt = Packet.make ~id:seq ~flow:t.flow ~micro:t.micro ~created:now () in
    t.transmitted <- t.transmitted + 1;
    if retransmission then t.retransmits <- t.retransmits + 1
    else if t.sample_seq = 0 then begin
      t.sample_seq <- seq;
      t.sample_time <- now
    end;
    t.transmit pkt

  let update_rtt t ~now =
    if t.sample_seq > 0 && t.acked >= t.sample_seq then begin
      let sample = now -. t.sample_time in
      (* lint: float-eq-ok — 0. is the exact "no RTT sample yet" sentinel *)
      if t.srtt = 0. then begin
        t.srtt <- sample;
        t.rttvar <- sample /. 2.
      end
      else begin
        t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
        t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
      end;
      t.rto <-
        Float.min t.params.rto_max
          (Float.max t.params.rto_min (t.srtt +. (4. *. t.rttvar)));
      t.sample_seq <- 0
    end

  let rec arm_rto t =
    cancel_rto t;
    t.rto_timer <-
      Some (Sim.Engine.schedule t.engine ~delay:(t.rto *. t.backoff) (fun () -> on_rto t))

  and on_rto t =
    if t.running && in_flight t > 0 then begin
      t.timeouts <- t.timeouts + 1;
      t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
      t.cwnd <- 1.;
      t.dup_acks <- 0;
      t.recover <- t.next_seq - 1;
      t.backoff <- Float.min 64. (t.backoff *. 2.);
      t.sample_seq <- 0 (* Karn: no sample across a retransmission *);
      emit t ~seq:(t.acked + 1) ~retransmission:true;
      arm_rto t
    end

  let rec fill_window t =
    if t.running && float_of_int (in_flight t) < Float.min t.cwnd t.params.max_cwnd
    then begin
      let seq = t.next_seq in
      t.next_seq <- t.next_seq + 1;
      emit t ~seq ~retransmission:false;
      if t.rto_timer = None then arm_rto t;
      fill_window t
    end

  let start t =
    if not t.running then begin
      t.running <- true;
      fill_window t
    end

  let stop t =
    t.running <- false;
    cancel_rto t

  let ack t ackno =
    if t.running then begin
      let now = Sim.Engine.now t.engine in
      if ackno > t.acked then begin
        (* New data acknowledged. *)
        let newly = ackno - t.acked in
        t.acked <- ackno;
        t.backoff <- 1.;
        update_rtt t ~now;
        if t.dup_acks >= t.params.dupack_threshold then begin
          (* Leaving fast recovery. *)
          if ackno >= t.recover then begin
            t.dup_acks <- 0;
            t.cwnd <- t.ssthresh
          end
          else
            (* Partial ACK (NewReno): retransmit the next hole. *)
            emit t ~seq:(ackno + 1) ~retransmission:true
        end
        else begin
          t.dup_acks <- 0;
          for _ = 1 to newly do
            if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
            else t.cwnd <- t.cwnd +. (1. /. t.cwnd)
          done;
          t.cwnd <- Float.min t.cwnd t.params.max_cwnd
        end;
        if in_flight t > 0 then arm_rto t else cancel_rto t;
        fill_window t
      end
      else if ackno = t.acked && in_flight t > 0 then begin
        (* Duplicate ACK. *)
        t.dup_acks <- t.dup_acks + 1;
        if t.dup_acks = t.params.dupack_threshold then begin
          t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
          t.cwnd <- t.ssthresh +. float_of_int t.params.dupack_threshold;
          t.recover <- t.next_seq - 1;
          t.sample_seq <- 0;
          emit t ~seq:(t.acked + 1) ~retransmission:true;
          arm_rto t
        end
        else if t.dup_acks > t.params.dupack_threshold then begin
          (* Window inflation lets new data trickle during recovery. *)
          t.cwnd <- Float.min (t.cwnd +. 1.) t.params.max_cwnd;
          fill_window t
        end
      end
    end
end

module Receiver = struct
  type t = {
    send_ack : int -> unit;
    mutable expected : int;  (* next in-order sequence *)
    out_of_order : (int, unit) Hashtbl.t;
  }

  let create ~send_ack = { send_ack; expected = 1; out_of_order = Hashtbl.create 32 }

  let delivered t = t.expected - 1

  let receive t pkt =
    let seq = pkt.Packet.id in
    if seq >= t.expected then begin
      Hashtbl.replace t.out_of_order seq ();
      while Hashtbl.mem t.out_of_order t.expected do
        Hashtbl.remove t.out_of_order t.expected;
        t.expected <- t.expected + 1
      done
    end;
    t.send_ack (t.expected - 1)
end
