type distribution = Exponential | Pareto of float

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  distribution : distribution;
  on_mean : float;
  off_mean : float;
  set : bool -> unit;
  mutable stopped : bool;
  mutable transitions : int;
}

let rec flip t state () =
  if not t.stopped then begin
    t.set state;
    t.transitions <- t.transitions + 1;
    let mean = if state then t.on_mean else t.off_mean in
    let hold =
      (* Not arrival-process sampling: these draw the on/off hold times
         of one already-arrived source, from the caller's RNG, under a
         plan Workload.Arrivals produced. *)
      match t.distribution with
      | Exponential -> Sim.Rng.exponential t.rng ~mean (* lint: churn-ok *)
      | Pareto shape -> Sim.Rng.pareto t.rng ~shape ~mean (* lint: churn-ok *)
    in
    ignore (Sim.Engine.schedule t.engine ~delay:hold (flip t (not state)))
  end

let start ~engine ~rng ?(distribution = Exponential) ~on_mean ~off_mean set =
  (* Finiteness matters as much as sign: a nan mean passes [<= 0.] and
     turns every hold time into nan, scheduling the flip at a nan
     timestamp. *)
  if
    not
      (Float.is_finite on_mean && on_mean > 0. && Float.is_finite off_mean
     && off_mean > 0.)
  then invalid_arg "Onoff.start: means must be positive";
  (match distribution with
  | Pareto shape when not (Float.is_finite shape && shape > 1.) ->
    invalid_arg "Onoff.start: Pareto shape must exceed 1"
  | Pareto _ | Exponential -> ());
  let t =
    {
      engine;
      rng;
      distribution;
      on_mean;
      off_mean;
      set;
      stopped = false;
      transitions = -1;
    }
  in
  flip t true ();
  t

let stop t = t.stopped <- true

let transitions t = t.transitions
