(** Exponential on/off driver for bursty (application-limited) traffic.

    Toggles a boolean control — typically {!Source.set_active} — between
    "on" periods of mean [on_mean] seconds and "off" periods of mean
    [off_mean] seconds, both exponentially distributed. The evaluation
    uses it to reproduce the paper's claim that marker feedback is
    "fairly insensitive to bursty flows". *)

type t

(** Period length distribution: exponential (Markovian bursts) or
    Pareto with the given tail index (heavy-tailed, long-range
    dependent aggregate — the classic ns-2 on/off model). *)
type distribution = Exponential | Pareto of float

(** [start ~engine ~rng ~on_mean ~off_mean set] begins in the "on"
    state (calls [set true] immediately). [distribution] defaults to
    {!Exponential}.
    @raise Invalid_argument on non-positive or non-finite means or a
    Pareto shape of at most 1 (or non-finite) — a nan mean would
    otherwise schedule the next flip at a nan timestamp. *)
val start :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  ?distribution:distribution ->
  on_mean:float ->
  off_mean:float ->
  (bool -> unit) ->
  t

(** Stop toggling (leaves the control in its current state). *)
val stop : t -> unit

(** Number of completed on/off transitions. *)
val transitions : t -> int
