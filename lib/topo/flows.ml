(* Deterministic flow population: (src, dst, weight) triples sampled
   from the (seed, label) scenario stream. Flow [i] (0-based here; the
   simulation uses [i + 1] as the Net flow id) is fully determined by
   the stream position, so regenerating with equal parameters is
   byte-identical — the property the determinism tests pin down. *)

type t = { src : int array; dst : int array; weight : float array }

let count t = Array.length t.src

let generate ~seed ~label ~graph ~n ?(max_weight = 4) () =
  if n < 1 then invalid_arg "Flows.generate: need at least one flow";
  if max_weight < 1 then invalid_arg "Flows.generate: max_weight must be >= 1";
  let nh = Graph.n_hosts graph in
  if nh < 2 then invalid_arg "Flows.generate: graph needs at least two hosts";
  let rng = Sim.Rng.scenario ~seed ~id:label in
  let src = Array.make n 0 and dst = Array.make n 0 in
  let weight = Array.make n 1. in
  for i = 0 to n - 1 do
    let s = Sim.Rng.int rng nh in
    let d =
      let rec draw () =
        let candidate = Sim.Rng.int rng nh in
        if candidate = s then draw () else candidate
      in
      draw ()
    in
    src.(i) <- s;
    dst.(i) <- d;
    weight.(i) <- float_of_int (1 + Sim.Rng.int rng max_weight)
  done;
  { src; dst; weight }

let equal a b =
  count a = count b
  && a.src = b.src && a.dst = b.dst
  (* lint: float-eq-ok — bit-exact regeneration check, not a tolerance
     comparison: the generators promise byte-identical replay. *)
  && Array.for_all2 Float.equal a.weight b.weight
