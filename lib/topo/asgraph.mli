(** Random AS-like graphs (Barabási–Albert preferential attachment).

    [build ~seed ~label ~nodes ~m ()] grows a connected graph from an
    (m+1)-clique; each new node attaches to [m] distinct existing nodes
    drawn proportionally to degree, giving the heavy-tailed degree
    distribution of inter-domain topologies. Every node terminates
    traffic ({!Graph.Router}), so [n_hosts = nodes]. Randomness comes
    only from the [(seed, label)] scenario stream
    ({!Sim.Rng.scenario}): equal parameters regenerate the identical
    graph, serial or pooled. *)

val build : seed:int -> label:string -> nodes:int -> m:int -> unit -> Graph.t
(** @raise Invalid_argument if [m < 1] or [nodes < m + 2]. *)
