(** Flat-array topology graphs.

    A graph is a fixed set of nodes and {e directed} links; every
    undirected edge the builders declare expands into two directed
    links, so link ids map one-to-one onto the unidirectional
    {!Net.Link}s a simulation instantiates. Link ids are assigned in
    sorted [(src, dst)] order — a pure function of the edge set — so
    regenerating a graph from the same parameters is byte-identical.

    {e Hosts} are the traffic-terminating nodes ({!Host} in a fat-tree,
    every {!Router} in an AS graph), indexed densely [0 .. n_hosts-1];
    the host index is what {!Fib} routes on and what {!Net.Packet.dst}
    carries. *)

type kind = Host | Edge_switch | Agg_switch | Core_switch | Router

type t

(** [make ~kinds ~edges] builds a graph over nodes [0 .. n-1] (kinds)
    from an undirected edge list. Edge order is irrelevant.
    @raise Invalid_argument on out-of-range endpoints, self-loops,
    duplicate edges, or fewer than two traffic-terminating nodes. *)
val make : kinds:kind array -> edges:(int * int) list -> t

val n_nodes : t -> int

(** Directed link count (twice the undirected edge count). *)
val n_links : t -> int

val n_hosts : t -> int

val kind : t -> int -> kind

(** Node id of host index [h]. *)
val host : t -> int -> int

(** Host index of a node, [-1] for a pure switch. *)
val host_of_node : t -> int -> int

val link_src : t -> int -> int

val link_dst : t -> int -> int

val out_degree : t -> int -> int

(** Iterate the out-link ids of a node, ascending destination order. *)
val iter_out : t -> int -> (int -> unit) -> unit

(** The directed link [src -> dst], if present. *)
val find_link : t -> src:int -> dst:int -> int option

(** Unique printable node name ("h12", "e129", "c1340", "r7"). *)
val label : t -> int -> string

(** Number of nodes reachable from [v] (including [v]) — connectivity
    witness for the property tests. *)
val reachable : t -> int -> int
