(** Deterministic topology generation for the scale evaluation.

    {!Graph} is the flat-array graph representation (directed links,
    CSR adjacency, dense host indexing); {!Fattree} and {!Asgraph}
    build k-ary fat-trees and preferential-attachment AS-like graphs;
    {!Fib} computes shared shortest-path forwarding tables once per
    topology; {!Flows} samples (src, dst, weight) populations from
    [(seed, label)] substreams. Everything is a pure function of its
    parameters: equal inputs regenerate byte-identical structures,
    serial or pooled. *)

module Graph = Graph
module Fattree = Fattree
module Asgraph = Asgraph
module Fib = Fib
module Flows = Flows
