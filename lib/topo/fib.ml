(* Shared shortest-path forwarding tables, computed once per topology.

   One BFS per destination host over the (symmetric) directed graph
   yields hop distances from every node; the next hop at [v] toward
   host [h] is one of [v]'s out-neighbours strictly closer to [h].
   Among equal-cost candidates the choice is a deterministic hash of
   (v, h) — ECMP-like spreading without any RNG, so the table is a pure
   function of the graph and regeneration is byte-identical.

   Layout: both tables are host-major flat arrays ([h * n + v]), so a
   destination's slice is contiguous during its BFS and when a builder
   converts it into per-node link arrays. *)

type t = {
  n_nodes : int;
  n_hosts : int;
  next : int array;  (* h * n + v -> directed link id, -1 at the host itself *)
  dist : int array;  (* h * n + v -> hops from v to host h *)
}

let n_hosts t = t.n_hosts

(* SplitMix-style avalanche on the (node, host) pair; only used to pick
   among equal-cost next hops, so quality requirements are mild. *)
let mix v h =
  let x = (v * 0x9e3779b1) lxor (h * 0x85ebca6b) in
  let x = (x lxor (x lsr 16)) * 0x27d4eb2f in
  (x lxor (x lsr 13)) land max_int

let compute g =
  let n = Graph.n_nodes g and nh = Graph.n_hosts g in
  let next = Array.make (n * nh) (-1) in
  let dist = Array.make (n * nh) max_int in
  let queue = Array.make n 0 in
  for h = 0 to nh - 1 do
    let base = h * n in
    let root = Graph.host g h in
    dist.(base + root) <- 0;
    queue.(0) <- root;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(base + u) in
      Graph.iter_out g u (fun l ->
          let w = Graph.link_dst g l in
          if dist.(base + w) = max_int then begin
            dist.(base + w) <- du + 1;
            queue.(!tail) <- w;
            incr tail
          end)
    done;
    (* Next-hop selection: count the equal-cost candidates, then pick
       the [mix (v, h)]-th one in CSR (ascending link id) order. *)
    for v = 0 to n - 1 do
      let dv = dist.(base + v) in
      if dv > 0 && dv < max_int then begin
        let candidates = ref 0 in
        Graph.iter_out g v (fun l ->
            if dist.(base + Graph.link_dst g l) = dv - 1 then incr candidates);
        let pick = mix v h mod !candidates in
        let seen = ref 0 in
        Graph.iter_out g v (fun l ->
            if dist.(base + Graph.link_dst g l) = dv - 1 then begin
              if !seen = pick then next.(base + v) <- l;
              incr seen
            end)
      end
    done
  done;
  { n_nodes = n; n_hosts = nh; next; dist }

let next_hop t ~node ~host = t.next.((host * t.n_nodes) + node)

let hops t ~node ~host =
  let d = t.dist.((host * t.n_nodes) + node) in
  if d = max_int then -1 else d

let reachable t ~node ~host = t.dist.((host * t.n_nodes) + node) <> max_int

(* Node path from one host to another by following [next]; the step
   bound turns a routing loop (impossible for BFS tables, but the
   property tests prove it rather than assume it) into an exception. *)
let route g t ~src_host ~dst_host =
  if src_host = dst_host then invalid_arg "Fib.route: src and dst coincide";
  let dst_node = Graph.host g dst_host in
  let rec walk v steps acc =
    if steps > t.n_nodes then failwith "Fib.route: routing loop"
    else if v = dst_node then List.rev (v :: acc)
    else
      let l = next_hop t ~node:v ~host:dst_host in
      if l < 0 then failwith "Fib.route: unreachable destination"
      else walk (Graph.link_dst g l) (steps + 1) (v :: acc)
  in
  walk (Graph.host g src_host) 0 []
