(* k-ary fat-tree (Al-Fahad et al. / the classic Clos instance the
   SNIPPETS exemplars build): k pods, each with k/2 edge and k/2
   aggregation switches; k/2 hosts per edge switch; (k/2)^2 core
   switches in k/2 groups of k/2. Totals: k^3/4 hosts, 5k^2/4 switches,
   3k^3/4 undirected links; any host pair is at most 6 hops apart. *)

let n_hosts k = k * k * k / 4

let n_switches k = 5 * k * k / 4

let n_edges k = 3 * k * k * k / 4

let build k =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Fattree.build: k must be even and >= 2";
  let half = k / 2 in
  let hosts = n_hosts k in
  let edge_base = hosts in
  let agg_base = edge_base + (k * half) in
  let core_base = agg_base + (k * half) in
  let n = core_base + (half * half) in
  let kinds = Array.make n Graph.Host in
  Array.fill kinds edge_base (k * half) Graph.Edge_switch;
  Array.fill kinds agg_base (k * half) Graph.Agg_switch;
  Array.fill kinds core_base (half * half) Graph.Core_switch;
  let edges = ref [] in
  for p = 0 to k - 1 do
    for s = 0 to half - 1 do
      let esw = edge_base + (p * half) + s in
      let asw = agg_base + (p * half) + s in
      (* k/2 hosts under each edge switch. *)
      for i = 0 to half - 1 do
        edges := (esw, (p * half * half) + (s * half) + i) :: !edges
      done;
      (* Full bipartite edge-agg wiring inside the pod. *)
      for a = 0 to half - 1 do
        edges := (esw, agg_base + (p * half) + a) :: !edges
      done;
      (* Aggregation switch s of every pod connects to core group s. *)
      for j = 0 to half - 1 do
        edges := (asw, core_base + (s * half) + j) :: !edges
      done
    done
  done;
  Graph.make ~kinds ~edges:!edges
