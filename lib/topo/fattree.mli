(** Deterministic k-ary fat-tree builder.

    [build k] (even [k >= 2]) produces k^3/4 hosts, 5k^2/4 switches
    (k^2/2 edge, k^2/2 aggregation, k^2/4 core) and 3k^3/4 undirected
    links; every host pair is at most 6 hops apart. The node numbering
    is fixed — hosts first, then edge, aggregation and core switches —
    so equal [k] always yields the identical graph. *)

val build : int -> Graph.t
(** @raise Invalid_argument unless [k] is even and at least 2. *)

(** Closed-form size helpers (the structural invariants the property
    tests pin down). *)

val n_hosts : int -> int

val n_switches : int -> int

val n_edges : int -> int
