(* Random AS-like graphs: Barabási–Albert preferential attachment.
   Growth starts from an (m+1)-clique; each subsequent node attaches to
   [m] distinct existing nodes drawn proportionally to degree (the
   repeated-endpoint-array trick: every node appears in [targets] once
   per incident edge, so a uniform draw from it is degree-biased).
   The resulting degree distribution is heavy-tailed, every node is
   reachable from every other, and the minimum degree is [m].

   All randomness comes from the (seed, label) scenario stream, so the
   same parameters regenerate the identical graph on any worker. *)

let build ~seed ~label ~nodes ~m () =
  if m < 1 then invalid_arg "Asgraph.build: m must be >= 1";
  if nodes < m + 2 then invalid_arg "Asgraph.build: need at least m + 2 nodes";
  let rng = Sim.Rng.scenario ~seed ~id:label in
  let edges = ref [] in
  (* Degree-weighted endpoint pool: 2 entries per edge. *)
  let cap = ref (4 * m * nodes) in
  let targets = ref (Array.make !cap 0) in
  let filled = ref 0 in
  let push v =
    if !filled = !cap then begin
      cap := 2 * !cap;
      let grown = Array.make !cap 0 in
      Array.blit !targets 0 grown 0 !filled;
      targets := grown
    end;
    !targets.(!filled) <- v;
    incr filled
  in
  let add_edge a b =
    edges := (a, b) :: !edges;
    push a;
    push b
  in
  for a = 0 to m do
    for b = a + 1 to m do
      add_edge a b
    done
  done;
  let chosen = Array.make m (-1) in
  for v = m + 1 to nodes - 1 do
    let picked = ref 0 in
    while !picked < m do
      let candidate = !targets.(Sim.Rng.int rng !filled) in
      let duplicate = ref (candidate = v) in
      for i = 0 to !picked - 1 do
        if chosen.(i) = candidate then duplicate := true
      done;
      if not !duplicate then begin
        chosen.(!picked) <- candidate;
        incr picked
      end
    done;
    (* Attach in draw order; the pool only grows after all m draws so
       one node's attachments are sampled from the same distribution. *)
    for i = 0 to m - 1 do
      add_edge v chosen.(i)
    done
  done;
  Graph.make ~kinds:(Array.make nodes Graph.Router) ~edges:!edges
