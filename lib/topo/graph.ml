type kind = Host | Edge_switch | Agg_switch | Core_switch | Router

type t = {
  n : int;
  kinds : kind array;
  link_src : int array;
  link_dst : int array;
  out_off : int array;
  out_links : int array;
  hosts : int array;
  host_of_node : int array;
}

let terminates = function Host | Router -> true | Edge_switch | Agg_switch | Core_switch -> false

let make ~kinds ~edges =
  let n = Array.length kinds in
  if n = 0 then invalid_arg "Graph.make: empty node set";
  (* Expand each undirected edge into its two directed links, then sort
     by (src, dst): directed link ids are a pure function of the edge
     set, never of the order the builder emitted it in. *)
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg (Printf.sprintf "Graph.make: edge (%d,%d) out of range" a b);
      if a = b then invalid_arg (Printf.sprintf "Graph.make: self-loop at %d" a))
    edges;
  let directed =
    List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) edges
    |> List.sort_uniq compare
  in
  let m = List.length directed in
  if m <> 2 * List.length edges then
    invalid_arg "Graph.make: duplicate undirected edge";
  let link_src = Array.make m 0 and link_dst = Array.make m 0 in
  List.iteri
    (fun l (s, d) ->
      link_src.(l) <- s;
      link_dst.(l) <- d)
    directed;
  (* CSR out-adjacency: links are already grouped by src (ascending)
     and sorted by dst within a group. *)
  let out_off = Array.make (n + 1) 0 in
  Array.iter (fun s -> out_off.(s + 1) <- out_off.(s + 1) + 1) link_src;
  for v = 1 to n do
    out_off.(v) <- out_off.(v) + out_off.(v - 1)
  done;
  let out_links = Array.init m (fun l -> l) in
  let host_of_node = Array.make n (-1) in
  let hosts = ref [] in
  for v = n - 1 downto 0 do
    if terminates kinds.(v) then hosts := v :: !hosts
  done;
  let hosts = Array.of_list !hosts in
  Array.iteri (fun h v -> host_of_node.(v) <- h) hosts;
  if Array.length hosts < 2 then
    invalid_arg "Graph.make: need at least two traffic-terminating nodes";
  { n; kinds = Array.copy kinds; link_src; link_dst; out_off; out_links; hosts; host_of_node }

let n_nodes t = t.n

let n_links t = Array.length t.link_src

let n_hosts t = Array.length t.hosts

let kind t v = t.kinds.(v)

let host t h = t.hosts.(h)

let host_of_node t v = t.host_of_node.(v)

let link_src t l = t.link_src.(l)

let link_dst t l = t.link_dst.(l)

let out_degree t v = t.out_off.(v + 1) - t.out_off.(v)

(* Out-links of [v] in ascending destination order. *)
let iter_out t v f =
  for i = t.out_off.(v) to t.out_off.(v + 1) - 1 do
    f t.out_links.(i)
  done

let find_link t ~src ~dst =
  (* Binary search within [src]'s CSR segment (sorted by dst). *)
  let lo = ref t.out_off.(src) and hi = ref (t.out_off.(src + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let l = t.out_links.(mid) in
    let d = t.link_dst.(l) in
    if d = dst then found := l else if d < dst then lo := mid + 1 else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let label t v =
  let prefix =
    match t.kinds.(v) with
    | Host -> "h"
    | Edge_switch -> "e"
    | Agg_switch -> "a"
    | Core_switch -> "c"
    | Router -> "r"
  in
  prefix ^ string_of_int v

(* BFS reachable-node count from [v] — the connectivity witness the
   QCheck properties assert. Flat int-array frontier, no Stdlib.Queue. *)
let reachable t v =
  let seen = Array.make t.n false in
  let queue = Array.make t.n 0 in
  seen.(v) <- true;
  queue.(0) <- v;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    iter_out t u (fun l ->
        let w = t.link_dst.(l) in
        if not seen.(w) then begin
          seen.(w) <- true;
          queue.(!tail) <- w;
          incr tail
        end)
  done;
  !tail
