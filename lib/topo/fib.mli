(** Shared shortest-path forwarding tables (one BFS per destination
    host, computed once per topology).

    The table answers "at node [v], which directed link leads toward
    host [h]?" — the destination-indexed forwarding state that replaces
    per-flow route entries at scale. Equal-cost next hops are broken by
    a deterministic hash of [(v, h)], spreading load ECMP-style while
    keeping the table a pure function of the graph. *)

type t

val compute : Graph.t -> t

val n_hosts : t -> int

(** Directed link id to take at [node] toward [host]; [-1] at the
    host's own node (deliver locally) and for unreachable pairs. *)
val next_hop : t -> node:int -> host:int -> int

(** Hop distance from [node] to [host]; [-1] when unreachable. *)
val hops : t -> node:int -> host:int -> int

val reachable : t -> node:int -> host:int -> bool

(** Node-id path from one host to another by following the table.
    @raise Invalid_argument if the hosts coincide.
    @raise Failure on an unreachable pair or a routing loop. *)
val route : Graph.t -> t -> src_host:int -> dst_host:int -> int list
