(** Deterministic flow populations over a generated graph.

    [generate ~seed ~label ~graph ~n ()] samples [n] (src, dst, weight)
    triples from the [(seed, label)] scenario stream: source and
    destination are distinct uniform host indices, weights uniform
    integers in [1, max_weight] (default 4). Equal parameters always
    regenerate the identical population. Flow [i] maps to Net flow id
    [i + 1] when instantiated. *)

type t = {
  src : int array;  (** host index per flow *)
  dst : int array;  (** host index per flow, distinct from [src] *)
  weight : float array;  (** rate weight per flow *)
}

val count : t -> int

val generate :
  seed:int -> label:string -> graph:Graph.t -> n:int -> ?max_weight:int -> unit -> t
(** @raise Invalid_argument if [n < 1], [max_weight < 1], or the graph
    has fewer than two hosts. *)

(** Bit-exact equality — the regeneration-determinism witness. *)
val equal : t -> t -> bool
