type handle = { mutable cancelled : bool }

type event = { action : unit -> unit; handle : handle }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
  queue : event Event_queue.t;
  mutable check : bool;
}

let create ?check_invariants () =
  let check =
    match check_invariants with Some b -> b | None -> Invariant.default ()
  in
  { clock = 0.; seq = 0; executed = 0; queue = Event_queue.create (); check }

let reset ?check_invariants t =
  t.clock <- 0.;
  (* The seq counter must restart from 0: it breaks ties among
     simultaneous events, so a reused engine that kept counting would
     order a replayed scenario identically only by luck. *)
  t.seq <- 0;
  t.executed <- 0;
  Event_queue.clear t.queue;
  t.check <-
    (match check_invariants with Some b -> b | None -> Invariant.default ())

let now t = t.clock

let executed t = t.executed

let events_scheduled t = t.seq

let pending t = Event_queue.length t.queue

let check_time label x =
  if not (Float.is_finite x) then invalid_arg (label ^ ": time not finite")

let push t ~time action handle =
  t.seq <- t.seq + 1;
  Event_queue.add t.queue ~key:time ~seq:t.seq { action; handle }

let schedule_at t ~time action =
  check_time "Engine.schedule_at" time;
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let handle = { cancelled = false } in
  push t ~time action handle;
  handle

let schedule t ~delay action =
  check_time "Engine.schedule" delay;
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let every t ?start ~period action =
  if period <= 0. then invalid_arg "Engine.every: period must be positive";
  let start = match start with Some s -> s | None -> t.clock +. period in
  let handle = { cancelled = false } in
  let rec fire () =
    action ();
    if not handle.cancelled then push t ~time:(t.clock +. period) fire handle
  in
  push t ~time:start fire handle;
  handle

let cancel handle = handle.cancelled <- true

let is_cancelled handle = handle.cancelled

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, _, event) ->
    if t.check then
      Invariant.require ~what:"Engine: event time behind the clock (time must be monotone)"
        (time >= t.clock);
    t.clock <- time;
    t.executed <- t.executed + 1;
    if not event.handle.cancelled then event.action ();
    true

let run t = while step t do () done

let run_until t limit =
  let rec loop () =
    match Event_queue.peek_key t.queue with
    | Some (time, _) when time <= limit ->
      ignore (step t);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  if limit > t.clock then t.clock <- limit
