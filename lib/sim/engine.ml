type handle = { mutable cancelled : bool }

(* The queue payload is the bare action thunk. Cancellation is layered
   on top only where requested: [schedule]/[schedule_at] wrap the
   action in a closure that consults its handle, while [schedule_unit]
   pushes the caller's closure directly — the zero-allocation path the
   per-packet machinery (link transmissions and deliveries) runs on. *)
(* The clock lives in its own all-float record: OCaml stores such
   records flat, so advancing the clock on every step is an unboxed
   store, where a [mutable clock : float] field in the mixed record
   below would allocate a fresh box per write. *)
type clock = { mutable time : float }

type t = {
  clock : clock;
  mutable seq : int;
  mutable executed : int;
  queue : (unit -> unit) Event_queue.t;
  mutable check : bool;
  trace : Trace.t;
  metrics : Metrics.t;
}

let create ?check_invariants () =
  let check =
    match check_invariants with Some b -> b | None -> Invariant.default ()
  in
  {
    clock = { time = 0. };
    seq = 0;
    executed = 0;
    queue = Event_queue.create ();
    check;
    trace = Trace.create ();
    metrics = Metrics.create ();
  }

let reset ?check_invariants t =
  t.clock.time <- 0.;
  (* The seq counter must restart from 0: it breaks ties among
     simultaneous events, so a reused engine that kept counting would
     order a replayed scenario identically only by luck. *)
  t.seq <- 0;
  t.executed <- 0;
  Event_queue.clear t.queue;
  (* Observability state is per-scenario: a pooled worker reusing this
     engine must start the next job with a pristine tracer and an empty
     metrics registry, or traces would leak across scenarios. *)
  Trace.reset t.trace;
  Metrics.reset t.metrics;
  t.check <-
    (match check_invariants with Some b -> b | None -> Invariant.default ())

let now t = t.clock.time

let trace t = t.trace

let metrics t = t.metrics

let executed t = t.executed

let events_scheduled t = t.seq

let pending t = Event_queue.length t.queue

let check_time label x =
  if not (Float.is_finite x) then invalid_arg (label ^ ": time not finite")

let[@inline] [@corelite.hot] push t ~time action =
  t.seq <- t.seq + 1;
  Event_queue.add t.queue ~key:time ~seq:t.seq action

let schedule_at t ~time action =
  check_time "Engine.schedule_at" time;
  if time < t.clock.time then invalid_arg "Engine.schedule_at: time in the past";
  let handle = { cancelled = false } in
  push t ~time (fun () -> if not handle.cancelled then action ());
  handle

let schedule t ~delay action =
  check_time "Engine.schedule" delay;
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock.time +. delay) action

let[@inline] [@corelite.hot] schedule_unit t ~delay action =
  check_time "Engine.schedule_unit" delay;
  if delay < 0. then invalid_arg "Engine.schedule_unit: negative delay";
  push t ~time:(t.clock.time +. delay) action

let every t ?start ~period action =
  check_time "Engine.every" period;
  if period <= 0. then invalid_arg "Engine.every: period must be positive";
  let start =
    match start with
    | None -> t.clock.time +. period
    | Some s ->
      check_time "Engine.every" s;
      if s < t.clock.time then invalid_arg "Engine.every: start in the past";
      s
  in
  let handle = { cancelled = false } in
  (* One closure for the whole recurrence: re-pushing [fire] allocates
     nothing, so a periodic sampler costs zero heap per period. *)
  let rec fire () =
    if not handle.cancelled then begin
      action ();
      if not handle.cancelled then push t ~time:(t.clock.time +. period) fire
    end
  in
  push t ~time:start fire;
  handle

let cancel handle = handle.cancelled <- true

let is_cancelled handle = handle.cancelled

let[@corelite.hot] step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let time = Event_queue.next_time t.queue in
    let action = Event_queue.pop_exn t.queue in
    if t.check then
      Invariant.require
        ~what:"Engine: event time behind the clock (time must be monotone)"
        (time >= t.clock.time);
    t.clock.time <- time;
    t.executed <- t.executed + 1;
    action ();
    true
  end

let[@corelite.hot] run t = while step t do () done

(* [next_time] is [infinity] on an empty queue, so the comparison
   doubles as the emptiness test; the [&& step t] keeps
   [run_until t infinity] draining instead of spinning. Top-level so
   [run_until] allocates nothing — a nested [let rec loop] capturing
   [t] and [limit] would build a closure per call. *)
let[@corelite.hot] rec drain_until t limit =
  if Event_queue.next_time t.queue <= limit && step t then drain_until t limit

let[@corelite.hot] run_until t limit =
  drain_until t limit;
  if limit > t.clock.time then t.clock.time <- limit
