(** Name-keyed metrics registry: counters, gauges, histograms, probes.

    Every engine owns one registry (see {!Engine.metrics}). Components
    register {e probes} — pull closures over their own counters — at
    construction time; probes cost nothing until {!rows} samples them
    at export, so the hot path is never touched. Push-style instruments
    ({!counter}/{!gauge}/{!histogram}) are for code that already runs
    at a low rate (samplers, epoch handlers); callers gate optional
    push-side work on {!enabled}.

    Registration is get-or-create: asking for an existing name of the
    same kind returns the existing instrument (tests build several
    same-shaped components on one engine), re-registering a probe
    replaces it, and a name collision across kinds raises.

    Exports ({!rows}, {!to_jsonl}) are sorted by name and printed with
    fixed formats, so they are byte-deterministic; CSV rendering —
    which needs quoting — lives in [Workload.Csv.of_metrics]. *)

type t

type counter

type gauge

type histogram

val create : unit -> t

(** Whether push-side consumers should bother: {!Workload.Runner} and
    friends skip optional instrumentation work when [false] (the
    default). Instruments themselves always accept updates. *)
val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Whether {!probe} registrations are accepted (the default). Scale
    runs with 10^5+ flows and links switch this off before building, so
    components' per-flow/per-link construction-time probes — megabytes
    of names and closures at that scale — are skipped wholesale; the
    instruments' own counters are untouched. *)
val auto_probes : t -> bool

val set_auto_probes : t -> bool -> unit

(** Drop every registered instrument, disable, and restore
    {!auto_probes}. Called by {!Engine.reset} for per-scenario
    isolation in pooled runs. *)
val reset : t -> unit

(** [counter t name] registers (or finds) a monotone integer counter. *)
val counter : ?help:string -> t -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** [gauge t name] registers (or finds) a last-value-wins float gauge. *)
val gauge : ?help:string -> t -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** [histogram t name] registers (or finds) a fixed-bucket histogram.
    [buckets] are strictly increasing upper bounds (default
    [1,2,5,...,1000]); an implicit +inf overflow bucket is added, so
    bucket counts always sum to the observation count.
    @raise Invalid_argument on non-increasing buckets. *)
val histogram : ?help:string -> ?buckets:float array -> t -> string -> histogram

val observe : histogram -> float -> unit

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

(** [(upper_bound, count)] per bucket, in bound order; the last bound
    is [infinity]. Counts are per-bucket, not cumulative. *)
val bucket_counts : histogram -> (float * int) list

(** [probe t name f] registers a pull gauge sampled only by {!rows}.
    Re-registering a name replaces the closure (component rebuilt on a
    reused engine). *)
val probe : ?help:string -> t -> string -> (unit -> float) -> unit

type row = { name : string; kind : string; value : float; help : string }

(** Flat, name-sorted snapshot. Histograms expand to [name.count],
    [name.sum] and one [name.le_<bound>] row per bucket; probes are
    sampled here. *)
val rows : t -> row list

(** JSON Lines export of {!rows} with escaped strings. *)
val to_jsonl : t -> string
