(** Runtime invariant auditing — the dynamic complement of the static
    lint pass ([tools/lint]).

    Components that maintain accounting the paper's results depend on
    (the engine's clock, link packet conservation, core feedback
    budgets) take a [?check_invariants] flag. When it is on they call
    {!require} at their stable points; a failed check raises
    {!Violation} immediately, naming the broken property, instead of
    silently corrupting a figure.

    The flag everywhere defaults to {!default}, so a test suite turns
    every check on globally with [Sim.Invariant.set_default true] and
    production runs pay nothing.

    All auditor state is atomic, so checks may run concurrently from
    every {!Workload.Pool} worker domain without losing counts. *)

exception Violation of string

(** Default value of every [?check_invariants] flag. Starts [false]. *)
val default : unit -> bool

val set_default : bool -> unit

(** [require ~what cond] raises [Violation what] when [cond] is false.
    Callers guard the call (and any expensive condition) behind their
    [check_invariants] flag. *)
val require : what:string -> bool -> unit

(** Like {!require} with a lazily built message, for conditions cheap
    to test but expensive to describe. *)
val requiref : what:(unit -> string) -> bool -> unit

(** Number of invariant checks executed so far in this process — lets
    tests assert that auditing actually ran. *)
val checks_run : unit -> int

(** {1 Injected-fault ledger}

    Fault injection deliberately destroys markers (with their packet,
    by stripping them in flight, or on the feedback channel). So that
    marker-conservation checks hold under injected loss — attached =
    observed + accounted — the injector declares every such loss here.
    [Net.Fault] is the only intended writer. Counters are process-wide
    and atomic, mirroring {!checks_run}. *)

(** Record one forward marker destroyed by fault injection. *)
val note_marker_loss : unit -> unit

(** Record one feedback marker destroyed by fault injection. *)
val note_feedback_loss : unit -> unit

val marker_losses_noted : unit -> int

val feedback_losses_noted : unit -> int

(** {1 Flow-table ledger}

    Dynamic (churn) deployments create per-flow edge state on a flow's
    first packet and retire it when the flow completes or its soft
    state expires idle. Every creation and retirement is declared here
    so churn oracles can prove the edge flow table never leaks:
    [flows_created () = flows_retired () + live] at any stable point,
    and [flows_expired () <= flows_retired ()]. Writers are the
    corelite/csfq dynamic deployments. Counters are process-wide and
    atomic, mirroring the fault ledger. *)

(** Record one per-flow edge state created. *)
val note_flow_created : unit -> unit

(** Record one per-flow edge state retired (explicit flow end). *)
val note_flow_retired : unit -> unit

(** Record one per-flow edge state retired by idle soft-state expiry.
    Counts toward both [flows_expired] and [flows_retired]. *)
val note_flow_expired : unit -> unit

val flows_created : unit -> int

val flows_retired : unit -> int

val flows_expired : unit -> int
