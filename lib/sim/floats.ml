let default_tolerance = 1e-9

let near ?(tolerance = default_tolerance) a b = Float.abs (a -. b) <= tolerance

let is_zero ?tolerance x = near ?tolerance x 0.
