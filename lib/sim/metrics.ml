type counter = { mutable c_value : int }

type gauge = { mutable g_value : float }

(* Per-bucket (non-cumulative) counts; [h_counts] has one more slot
   than [h_bounds] for the overflow (+inf) bucket, so the sum of bucket
   counts always equals the observation count — the property the QCheck
   suite pins down. *)
type histogram = {
  h_bounds : float array;
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Probe of (unit -> float)

type entry = { help : string; inst : instrument }

type t = { mutable on : bool; mutable auto : bool; tbl : (string, entry) Hashtbl.t }

let create () = { on = false; auto = true; tbl = Hashtbl.create 64 }

let enabled t = t.on

let set_enabled t on = t.on <- on

let auto_probes t = t.auto

let set_auto_probes t auto = t.auto <- auto

let reset t =
  t.on <- false;
  t.auto <- true;
  Hashtbl.reset t.tbl

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Probe _ -> "probe"

let register t name help inst = Hashtbl.replace t.tbl name { help; inst }

(* Get-or-create: components register instruments at construction time,
   and tests routinely build several same-shaped components on one
   engine, so a same-name same-kind registration returns the existing
   instrument instead of erroring. A same-name different-kind
   registration is a real bug and raises. *)
let counter ?(help = "") t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { inst = Counter c; _ } -> c
  | Some { inst; _ } ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s already registered as a %s" name
         (kind_label inst))
  | None ->
    let c = { c_value = 0 } in
    register t name help (Counter c);
    c

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let counter_value c = c.c_value

let gauge ?(help = "") t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { inst = Gauge g; _ } -> g
  | Some { inst; _ } ->
    invalid_arg
      (Printf.sprintf "Metrics.gauge: %s already registered as a %s" name
         (kind_label inst))
  | None ->
    let g = { g_value = 0. } in
    register t name help (Gauge g);
    g

let set g v = g.g_value <- v

let gauge_value g = g.g_value

let default_buckets =
  (* lint: domain-ok — read-only default, always Array.copy'd before use *)
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let histogram ?(help = "") ?buckets t name =
  match Hashtbl.find_opt t.tbl name with
  | Some { inst = Histogram h; _ } -> h
  | Some { inst; _ } ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s already registered as a %s" name
         (kind_label inst))
  | None ->
    let bounds =
      match buckets with None -> Array.copy default_buckets | Some b -> Array.copy b
    in
    let n = Array.length bounds in
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing"
    done;
    let h =
      { h_bounds = bounds; h_counts = Array.make (n + 1) 0; h_count = 0; h_sum = 0. }
    in
    register t name help (Histogram h);
    h

let observe h v =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && v > h.h_bounds.(!i) do
    i := !i + 1
  done;
  h.h_counts.(!i) <- h.h_counts.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let histogram_count h = h.h_count

let histogram_sum h = h.h_sum

let bucket_counts h =
  let n = Array.length h.h_bounds in
  List.init (n + 1) (fun i ->
      let bound = if i = n then infinity else h.h_bounds.(i) in
      (bound, h.h_counts.(i)))

let probe ?(help = "") t name f = if t.auto then register t name help (Probe f)

type row = { name : string; kind : string; value : float; help : string }

let pp_bound b = if Float.is_integer b then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b

let rows t =
  (* Sorted by name: Hashtbl iteration order is an implementation
     detail, and exports must be byte-deterministic. *)
  let names =
    List.sort_uniq compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
  in
  List.concat_map
    (fun name ->
      match Hashtbl.find_opt t.tbl name with
      | None -> []
      | Some { help; inst } -> (
        match inst with
        | Counter c -> [ { name; kind = "counter"; value = float_of_int c.c_value; help } ]
        | Gauge g -> [ { name; kind = "gauge"; value = g.g_value; help } ]
        | Probe f -> [ { name; kind = "probe"; value = f (); help } ]
        | Histogram h ->
          { name = name ^ ".count"; kind = "histogram";
            value = float_of_int h.h_count; help }
          :: { name = name ^ ".sum"; kind = "histogram"; value = h.h_sum; help }
          :: List.map
               (fun (bound, c) ->
                 { name = Printf.sprintf "%s.le_%s" name
                     (if Float.is_finite bound then pp_bound bound else "inf");
                   kind = "histogram"; value = float_of_int c; help })
               (bucket_counts h)))
    names

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let to_jsonl t =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%s,\"help\":\"%s\"}\n"
           (json_escape r.name) (json_escape r.kind) (pp_value r.value)
           (json_escape r.help)))
    (rows t);
  Buffer.contents b
