(** Declarative, deterministic fault plans.

    A plan is pure data: which links lose packets (and how), when links
    flap down and up, and when routers lose their soft state. The plan
    carries its own [seed]; every random draw an injector makes is
    derived from [(seed, stream_id)] via {!Rng.scenario}, so a chaos
    run replays byte-identically from the plan alone — serially or
    under [Workload.Pool] — and is independent of every other RNG
    stream in the run.

    Plans are interpreted by [Net.Fault] (link loss and flaps) and by
    the scheme deployments (router resets); this module only describes
    and validates them. *)

(** Per-packet loss process. [Bernoulli p] drops each packet i.i.d.
    with probability [p]. [Gilbert_elliott] is the classic two-state
    bursty model: the channel moves good->bad with [p_good_bad] and
    bad->good with [p_bad_good] (evaluated per packet), losing packets
    with [loss_good] / [loss_bad] in the respective state. *)
type loss_model =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_bad : float;
      p_bad_good : float;
      loss_good : float;
      loss_bad : float;
    }

(** What the loss process may touch. [Markers_only] corrupts the
    in-band control plane: the packet survives but its piggybacked
    forward marker is stripped. [Data_only] drops only unmarked
    packets. [All_packets] drops anything. *)
type target = All_packets | Markers_only | Data_only

(** One scheduled outage: the link goes down at [down_at] (losing its
    queue and everything in flight) and comes back at [up_at]. *)
type flap = private { down_at : float; up_at : float }

(** @raise Invalid_argument unless [0 <= down_at < up_at], both finite. *)
val flap : down_at:float -> up_at:float -> flap

(** [flap_train ~first ~period ~down_for ~count] builds [count] outages
    of length [down_for] every [period] seconds starting at [first]. *)
val flap_train : first:float -> period:float -> down_for:float -> count:int -> flap list

type link_fault = private {
  link : string;  (** link name as in [Net.Link.name], or ["*"] for every link *)
  loss : loss_model option;
  target : target;
  feedback_loss : float;
      (** probability that a feedback marker selected at this link is
          lost on its way back to the edge *)
  flaps : flap list;  (** kept sorted by [down_at] *)
}

(** @raise Invalid_argument on out-of-range probabilities or
    overlapping flaps. *)
val link_fault :
  ?loss:loss_model ->
  ?target:target ->
  ?feedback_loss:float ->
  ?flaps:flap list ->
  string ->
  link_fault

(** Router reset targets: a core router identified by the link it
    polices, or the edge agent of a flow. A reset wipes soft state
    (marker cache, running averages, feedback tables) and the router's
    buffered packets — never configuration. *)
type reset_target = Core_router of string | Edge_agent of int

type reset = private { reset_target : reset_target; at : float }

val reset : at:float -> reset_target -> reset

type t = private {
  label : string;  (** names the plan's RNG substreams; see {!stream_id} *)
  seed : int;
  link_faults : link_fault list;
  resets : reset list;
}

(** @raise Invalid_argument on duplicate per-link fault specs. *)
val make :
  label:string -> seed:int -> ?link_faults:link_fault list -> ?resets:reset list ->
  unit -> t

(** The empty plan: no injectors at all. *)
val none : t

(** [is_passive t] is true when the plan configures no loss, no flaps
    and no resets — applying such a plan must leave any run
    byte-identical to a fault-free one. *)
val is_passive : t -> bool

(** [stream_id t ~link ~channel] is the stable substream identity for
    one injector channel (e.g. ["loss"], ["feedback"]) of one link; feed
    it to {!Rng.scenario} with the plan's [seed]. *)
val stream_id : t -> link:string -> channel:string -> string
