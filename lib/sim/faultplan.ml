let check_prob label p =
  if not (Float.is_finite p) || p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Faultplan.%s: probability %g outside [0, 1]" label p)

let check_time label x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg (Printf.sprintf "Faultplan.%s: time %g must be finite and >= 0" label x)

type loss_model =
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_bad : float;
      p_bad_good : float;
      loss_good : float;
      loss_bad : float;
    }

let validate_loss = function
  | Bernoulli p -> check_prob "bernoulli" p
  | Gilbert_elliott { p_good_bad; p_bad_good; loss_good; loss_bad } ->
    check_prob "gilbert_elliott.p_good_bad" p_good_bad;
    check_prob "gilbert_elliott.p_bad_good" p_bad_good;
    check_prob "gilbert_elliott.loss_good" loss_good;
    check_prob "gilbert_elliott.loss_bad" loss_bad

type target = All_packets | Markers_only | Data_only

type flap = { down_at : float; up_at : float }

let flap ~down_at ~up_at =
  check_time "flap.down_at" down_at;
  check_time "flap.up_at" up_at;
  if up_at <= down_at then
    invalid_arg
      (Printf.sprintf "Faultplan.flap: up_at %g must follow down_at %g" up_at down_at);
  { down_at; up_at }

(* A periodic square-wave outage: down for [down_for] seconds every
   [period], first outage starting at [first]. *)
let flap_train ~first ~period ~down_for ~count =
  if count < 0 then invalid_arg "Faultplan.flap_train: negative count";
  check_time "flap_train.first" first;
  check_time "flap_train.period" period;
  check_time "flap_train.down_for" down_for;
  if down_for >= period then
    invalid_arg "Faultplan.flap_train: down_for must be shorter than the period";
  List.init count (fun i ->
      let t0 = first +. (float_of_int i *. period) in
      flap ~down_at:t0 ~up_at:(t0 +. down_for))

type link_fault = {
  link : string;
  loss : loss_model option;
  target : target;
  feedback_loss : float;
  flaps : flap list;
}

let link_fault ?loss ?(target = All_packets) ?(feedback_loss = 0.) ?(flaps = []) link
    =
  Option.iter validate_loss loss;
  check_prob "link_fault.feedback_loss" feedback_loss;
  (* Flaps may be given in any order, but they must not overlap: a link
     cannot go down while already down. *)
  let sorted = List.sort (fun a b -> compare a.down_at b.down_at) flaps in
  let rec disjoint = function
    | a :: (b :: _ as rest) ->
      if b.down_at < a.up_at then
        invalid_arg
          (Printf.sprintf
             "Faultplan.link_fault: flaps overlap on %s (down at %g before up at %g)"
             link b.down_at a.up_at);
      disjoint rest
    | [ _ ] | [] -> ()
  in
  disjoint sorted;
  { link; loss; target; feedback_loss; flaps = sorted }

type reset_target = Core_router of string | Edge_agent of int

type reset = { reset_target : reset_target; at : float }

let reset ~at reset_target =
  check_time "reset.at" at;
  { reset_target; at }

type t = {
  label : string;
  seed : int;
  link_faults : link_fault list;
  resets : reset list;
}

let make ~label ~seed ?(link_faults = []) ?(resets = []) () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun lf ->
      if Hashtbl.mem seen lf.link then
        invalid_arg
          ("Faultplan.make: duplicate link fault for " ^ lf.link
         ^ " (merge the specs; each link owns one RNG substream)");
      Hashtbl.replace seen lf.link ())
    link_faults;
  { label; seed; link_faults; resets }

let none = make ~label:"none" ~seed:0 ()

(* A passive plan configures no injector at all: applying it must leave
   every run byte-identical to a fault-free one. *)
let is_passive t =
  t.resets = []
  && List.for_all
       (fun lf ->
         lf.loss = None
         && Floats.is_zero ~tolerance:0. lf.feedback_loss
         && lf.flaps = [])
       t.link_faults

(* Stable substream identities: every draw a fault makes descends from
   (plan seed, this string), so a chaos run replays byte-identically
   from the plan alone, serial or pooled. *)
let stream_id t ~link ~channel =
  Printf.sprintf "fault/%s/%s/%s" t.label link channel
