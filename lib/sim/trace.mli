(** Preallocated ring-buffer structured event tracer.

    Every engine owns one tracer (see {!Engine.trace}), disabled by
    default. Instrumented components record compact fixed-shape events
    — a timestamp, a {!kind}, two integer slots [a]/[b] and two float
    slots [x]/[y] — into struct-of-arrays ring storage preallocated by
    {!enable}. Recording allocates nothing; when the tracer is
    disabled, {!want} answers [false] from two field reads, so the
    instrumentation contract for hot-path call sites is

    {[
      if Sim.Trace.want tr Sim.Trace.Drop then
        Sim.Trace.record tr ~time kind ~a ~b ~x ~y
    ]}

    (the [want] guard keeps float arguments from being boxed when
    tracing is off, preserving the §7 allocation budget).

    Determinism: events are recorded in engine event order and exported
    with fixed-format number printing, so two runs of the same seeded
    scenario — serial or pooled — export byte-identical traces.

    Per-kind payload schema ([a], [b], [x], [y]):
    - [Enqueue]/[Dequeue]: link id, flow id, queue length after, 0
    - [Drop]: link id, flow id, drop-reason code
      (0 filtered, 1 queue-full, 2 injected, 3 down), 0
    - [Marker_attach]: flow id, edge id, normalized rate, 0
    - [Marker_seen]: link id, flow id, normalized rate, 0
    - [Feedback_emit]: link id, flow id, normalized rate, 0
    - [Feedback_recv]: flow id, link id (-1 = local loss signal), 0, 0
    - [Epoch]: link id, 0, average queue [qavg], marker budget [Fn]
    - [Selector]: link id, 0 = stateless / 1 = cache, then
      stateless: [pw], running-average threshold [rav];
      cache: occupancy, 0
    - [Rate_update]: source/flow id, 0, new rate (pkt/s),
      phase (0 slow-start, 1 linear)
    - [Alpha_update]: link id, 0, fair-share estimate [alpha], 0
    - [Fault]: link id, flow id (-1 = none), fault code
      (0 lose, 1 strip, 2 link-down, 3 link-up), 0
    - [Flow_start]: flow id, ingress node id, weight, arrival size
      (packets; 0 = open-ended)
    - [Flow_end]: flow id, 0, packets sent, packets delivered
    - [Flow_expire]: flow id, 0, idle seconds at expiry, 0 *)

type kind =
  | Enqueue
  | Dequeue
  | Drop
  | Marker_attach
  | Marker_seen
  | Feedback_emit
  | Feedback_recv
  | Epoch
  | Selector
  | Rate_update
  | Alpha_update
  | Fault
  | Flow_start
  | Flow_end
  | Flow_expire

type t

(** A decoded event, as exposed by {!iter}/{!get}. *)
type event = { time : float; kind : kind; a : int; b : int; x : float; y : float }

(** Stable lowercase name used in exports ("enqueue", "epoch", ...). *)
val kind_name : kind -> string

(** All kinds, in export order: the twelve historic kinds followed by
    the flow-lifecycle kinds. *)
val all_kinds : kind list

(** The flow-lifecycle kinds ([Flow_start]/[Flow_end]/[Flow_expire]),
    recorded only by dynamic (churn) deployments. {!digest} prints them
    only when nonzero, so static-run digests match historic goldens. *)
val lifecycle_kinds : kind list

(** The sparse control-plane kinds (everything except the per-packet
    [Enqueue]/[Dequeue]/[Marker_attach]/[Marker_seen]) — the default
    diet for long workloads where per-packet events would overflow any
    reasonable ring. *)
val control_kinds : kind list

(** A tracer configuration, for plumbing through runner layers. *)
type spec = { capacity : int; kinds : kind list }

(** [spec ()] defaults to capacity [65536] and {!all_kinds}.
    @raise Invalid_argument if [capacity <= 0]. *)
val spec : ?capacity:int -> ?kinds:kind list -> unit -> spec

(** A fresh tracer, disabled, holding no storage. *)
val create : unit -> t

val enabled : t -> bool

(** [enable t] arms the tracer: preallocates ring storage for
    [capacity] events (default [65536]) and selects which [kinds] are
    recorded (default {!all_kinds}). Any previously recorded events and
    counts are discarded. @raise Invalid_argument on [capacity <= 0]. *)
val enable : ?capacity:int -> ?kinds:kind list -> t -> unit

(** [apply t spec] = [enable] with the spec's settings. *)
val apply : t -> spec -> unit

(** Stop recording; retained events remain available for export. *)
val disable : t -> unit

(** Return to the freshly-created state: disabled, storage released,
    counts zeroed. Called by {!Engine.reset} so pooled workers start
    every scenario with a pristine tracer. *)
val reset : t -> unit

(** [want t kind] is [true] iff the tracer is enabled and [kind] is
    selected. Call-site guard: cheap enough for per-packet paths, and
    it keeps [record]'s float arguments unboxed when tracing is off. *)
val want : t -> kind -> bool

(** Record one event (no-op unless [want t kind]). Field meaning is
    per-kind; see the schema above. Allocates nothing. *)
val record : t -> time:float -> kind -> a:int -> b:int -> x:float -> y:float -> unit

(** Events recorded since {!enable} (including any that have since been
    overwritten by ring wrap-around). *)
val recorded : t -> int

(** Events recorded of one kind since {!enable}. *)
val count : t -> kind -> int

(** Events currently retained in the ring ([min recorded capacity]). *)
val length : t -> int

(** [recorded - length]: events lost to wrap-around. Oracles assert
    this is [0] before reasoning about completeness. *)
val dropped_events : t -> int

(** [get t i] is the [i]-th retained event, oldest first.
    @raise Invalid_argument if [i] is out of bounds. *)
val get : t -> int -> event

(** Iterate retained events, oldest first. *)
val iter : t -> (event -> unit) -> unit

(** Export retained events as JSON Lines, one object per event:
    [{"t":...,"kind":"...","a":...,"b":...,"x":...,"y":...}].
    Byte-deterministic for a given event sequence. *)
val to_jsonl : t -> string

(** Export retained events as CSV with header [time,kind,a,b,x,y]. *)
val to_csv : t -> string

(** Compact text summary — per-kind counts, recorded/retained totals
    and an MD5 of the JSONL export — suitable for golden-file
    comparison without committing the raw trace. *)
val digest : t -> string
