(** Growable circular FIFO buffer — the zero-allocation replacement for
    [Stdlib.Queue] on the per-packet hot path (lint rule L6 confines
    [Queue] out of [lib/net] and [lib/sim] accordingly).

    Unlike [Stdlib.Queue], whose every [push] allocates a cell, steady-
    state [push]/[pop_exn] here touch only the backing array: the ring
    allocates solely when it doubles its capacity. Popped slots are not
    overwritten, so up to one array's worth of stale elements can stay
    reachable until they are overwritten by later pushes — call
    {!clear} between runs when payload lifetime matters (engine-reuse
    in pool workers does). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push t x] appends [x] at the tail. Amortized O(1); allocates only
    when the backing array doubles. *)
val push : 'a t -> 'a -> unit

(** [pop_exn t] removes and returns the oldest element.
    @raise Invalid_argument when empty — guard with {!is_empty}. *)
val pop_exn : 'a t -> 'a

(** [peek_exn t] returns the oldest element without removing it.
    @raise Invalid_argument when empty — guard with {!is_empty}. *)
val peek_exn : 'a t -> 'a

(** [clear t] empties the ring and releases its storage (and with it
    any stale popped payloads), returning it to the freshly-created
    state. *)
val clear : 'a t -> unit
