module Time_weighted = struct
  type t = {
    mutable window_start : float;
    mutable last_update : float;
    mutable current : float;
    mutable integral : float;
  }

  let create ~now ~init =
    { window_start = now; last_update = now; current = init; integral = 0. }

  let[@corelite.hot] accumulate t ~now =
    if now < t.last_update then invalid_arg "Time_weighted.set: time went backwards";
    t.integral <- t.integral +. ((now -. t.last_update) *. t.current);
    t.last_update <- now

  let[@corelite.hot] set t ~now v =
    accumulate t ~now;
    t.current <- v

  let value t = t.current

  let average t ~now =
    accumulate t ~now;
    let span = now -. t.window_start in
    if span <= 0. then t.current else t.integral /. span

  let reset t ~now =
    accumulate t ~now;
    t.window_start <- now;
    t.integral <- 0.
end

module Ewma = struct
  (* All-float record: OCaml stores it flat, so [update]'s stores are
     unboxed. [initialized] is encoded as 0. / 1. on purpose — a bool
     field would demote the record to mixed representation, and then
     every [avg] write would box a fresh float (typelint T1 flags that
     pattern; [update] runs per feedback sample). *)
  type t = { gain : float; mutable avg : float; mutable initialized : float }

  let create ~gain =
    if gain <= 0. || gain > 1. then invalid_arg "Ewma.create: gain out of (0, 1]";
    { gain; avg = 0.; initialized = 0. }

  let[@corelite.hot] update t x =
    if t.initialized > 0. then t.avg <- t.avg +. (t.gain *. (x -. t.avg))
    else begin
      t.avg <- x;
      t.initialized <- 1.
    end

  let value t = t.avg

  let is_initialized t = t.initialized > 0.

  let reset t =
    t.avg <- 0.;
    t.initialized <- 0.
end

module Welford = struct
  (* All-float on purpose, [n] included: a [mutable n : int] field
     would make the record mixed and box every [mean]/[m2] store (see
     Ewma above). A float count is exact up to 2^53 observations. *)
  type t = { mutable n : float; mutable mean : float; mutable m2 : float }

  let create () = { n = 0.; mean = 0.; m2 = 0. }

  let[@corelite.hot] add t x =
    t.n <- t.n +. 1.;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = int_of_float t.n

  let mean t = t.mean

  let variance t = if t.n < 2. then 0. else t.m2 /. (t.n -. 1.)

  let stddev t = sqrt (variance t)
end

module Quantile = struct
  type t = {
    q : float;
    heights : float array;  (* marker heights (5) *)
    positions : float array;  (* actual marker positions (1-based) *)
    desired : float array;  (* desired marker positions *)
    increments : float array;  (* desired-position increments per obs *)
    mutable n : int;
  }

  let create ~q =
    if q <= 0. || q >= 1. then invalid_arg "Quantile.create: q out of (0, 1)";
    {
      q;
      heights = Array.make 5 0.;
      positions = [| 1.; 2.; 3.; 4.; 5. |];
      desired = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
      increments = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
      n = 0;
    }

  let count t = t.n

  (* Piecewise-parabolic (P2) height adjustment of marker [i] by
     direction [d] (+1 or -1). *)
  let parabolic t i d =
    let h = t.heights and p = t.positions in
    h.(i)
    +. d
       /. (p.(i + 1) -. p.(i - 1))
       *. (((p.(i) -. p.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (p.(i + 1) -. p.(i)))
          +. ((p.(i + 1) -. p.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (p.(i) -. p.(i - 1))))

  let linear t i d =
    let h = t.heights and p = t.positions in
    h.(i) +. (d *. (h.(i + int_of_float d) -. h.(i)) /. (p.(i + int_of_float d) -. p.(i)))

  let add t x =
    t.n <- t.n + 1;
    if t.n <= 5 then begin
      (* Initialization: keep the first five observations sorted. *)
      t.heights.(t.n - 1) <- x;
      let sorted = Array.sub t.heights 0 t.n in
      Array.sort compare sorted;
      Array.blit sorted 0 t.heights 0 t.n
    end
    else begin
      let h = t.heights and p = t.positions in
      (* Locate the cell containing x and bump marker positions. *)
      let k =
        if x < h.(0) then begin
          h.(0) <- x;
          0
        end
        else if x >= h.(4) then begin
          h.(4) <- x;
          3
        end
        else begin
          let rec find i = if x < h.(i + 1) then i else find (i + 1) in
          find 0
        end
      in
      for i = k + 1 to 4 do
        p.(i) <- p.(i) +. 1.
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.increments.(i)
      done;
      (* Adjust the interior markers towards their desired positions. *)
      for i = 1 to 3 do
        let d = t.desired.(i) -. p.(i) in
        if
          (d >= 1. && p.(i + 1) -. p.(i) > 1.)
          || (d <= -1. && p.(i - 1) -. p.(i) < -1.)
        then begin
          let d = if d >= 0. then 1. else -1. in
          let candidate = parabolic t i d in
          let candidate =
            if h.(i - 1) < candidate && candidate < h.(i + 1) then candidate
            else linear t i d
          in
          h.(i) <- candidate;
          p.(i) <- p.(i) +. d
        end
      done
    end

  let estimate t =
    if t.n = 0 then 0.
    else if t.n < 5 then begin
      (* Exact small-sample quantile over the sorted prefix. *)
      let sorted = Array.sub t.heights 0 t.n in
      Array.sort compare sorted;
      let index =
        Stdlib.min (t.n - 1)
          (int_of_float (Float.round (t.q *. float_of_int (t.n - 1))))
      in
      sorted.(index)
    end
    else t.heights.(2)
end
