(** Deterministic pseudo-random number generator (splitmix64).

    Each simulation component owns its own generator (obtained by
    {!split}), so adding or removing one component never perturbs the
    random sequence seen by the others. *)

type t

(** [create seed] builds a generator from a seed. Equal seeds produce
    equal streams. *)
val create : int -> t

(** A statistically independent generator derived from [t]'s stream. *)
val split : t -> t

(** [stream t index] is the [index]-th derived substream of [t]: a pure
    function of [t]'s current state and [index] that neither draws from
    nor advances [t]. Equal states and equal indices always yield the
    same stream, regardless of what any other substream drew — the
    derivation rule that makes parallel scenario execution bit-identical
    to serial execution. [index] must be non-negative in practice
    (negative indices work but may collide with [split]'s continuation). *)
val stream : t -> int -> t

(** [scenario ~seed ~id] is the canonical per-scenario stream:
    [stream (create seed) (fnv1a id)], where [fnv1a] is a stable,
    compiler-independent 64-bit FNV-1a hash of the scenario id. Every
    run labelled [id] under root [seed] sees this stream, whether it
    executes serially or on any pool worker. *)
val scenario : seed:int -> id:string -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] draws uniformly from [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] draws from Exp(1/mean). *)
val exponential : t -> mean:float -> float

(** [pareto t ~shape ~mean] draws from a Pareto distribution with tail
    index [shape] scaled to the given mean — the heavy-tailed on/off
    period model of classic ns-2 traffic generators.
    @raise Invalid_argument unless [shape > 1] (the mean must exist). *)
val pareto : t -> shape:float -> mean:float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
