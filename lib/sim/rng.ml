type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let stream t index =
  (* Pure function of (state, index): unlike [split] it neither draws
     from nor advances [t], so the derived stream is independent of how
     many draws other substreams made — the property parallel scenario
     execution relies on. [index + 1] keeps substream 0 distinct from
     the parent's own continuation. *)
  let jump = Int64.mul golden_gamma (Int64.of_int (index + 1)) in
  { state = mix64 (Int64.add t.state jump) }

(* FNV-1a, the stable 64-bit string hash behind scenario-id streams.
   Hashtbl.hash is deterministic only within one compiler version, so
   spell the hash out. *)
let fnv1a label =
  let offset_basis = 0xCBF29CE484222325L and prime = 0x00000100000001B3L in
  let h = ref offset_basis in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    label;
  Int64.to_int !h land max_int

let scenario ~seed ~id = stream (create seed) (fnv1a id)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let candidate = Int64.rem raw bound64 in
    if Int64.sub raw candidate > Int64.sub Int64.max_int (Int64.sub bound64 1L)
    then draw ()
    else Int64.to_int candidate
  in
  draw ()

let float t bound =
  (* 53 uniform bits mapped to [0, 1). *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float raw *. 0x1p-53 in
  unit *. bound

let bernoulli t p = if p >= 1. then true else if p <= 0. then false else float t 1. < p

let exponential t ~mean =
  let u = 1. -. float t 1. in
  -.mean *. log u

let pareto t ~shape ~mean =
  if shape <= 1. then invalid_arg "Rng.pareto: shape must exceed 1";
  let scale = mean *. (shape -. 1.) /. shape in
  let u = 1. -. float t 1. in
  scale /. (u ** (1. /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
