type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let initial_capacity = 64

let create () = { data = [||]; size = 0 }

let clear q =
  (* Drop the storage too: a cleared queue must not pin the payloads of
     a previous run alive (pool workers keep queues across scenarios). *)
  q.data <- [||];
  q.size <- 0

let length q = q.size

let is_empty q = q.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q entry =
  let capacity = Array.length q.data in
  if q.size = capacity then begin
    let capacity' = if capacity = 0 then initial_capacity else 2 * capacity in
    let data' = Array.make capacity' entry in
    Array.blit q.data 0 data' 0 q.size;
    q.data <- data'
  end

let sift_up q i =
  let entry = q.data.(i) in
  let rec loop i =
    if i = 0 then i
    else
      let parent = (i - 1) / 2 in
      if less entry q.data.(parent) then begin
        q.data.(i) <- q.data.(parent);
        loop parent
      end
      else i
  in
  q.data.(loop i) <- entry

let sift_down q i =
  let entry = q.data.(i) in
  let rec loop i =
    let left = (2 * i) + 1 in
    if left >= q.size then i
    else
      let right = left + 1 in
      let child =
        if right < q.size && less q.data.(right) q.data.(left) then right
        else left
      in
      if less q.data.(child) entry then begin
        q.data.(i) <- q.data.(child);
        loop child
      end
      else i
  in
  q.data.(loop i) <- entry

let add q ~key ~seq value =
  let entry = { key; seq; value } in
  grow q entry;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q 0
    end;
    Some (top.key, top.seq, top.value)
  end

let peek_key q = if q.size = 0 then None else Some (q.data.(0).key, q.data.(0).seq)
