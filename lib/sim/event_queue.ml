(* Parallel-array binary min-heap: keys (times) live in an unboxed
   [float array], tie-break sequence numbers in an [int array], and
   payloads in an ['a array]. Compared to an array of records this
   keeps the push/pop path allocation-free — no entry record, no boxed
   key float, no option on the unboxed accessors — which matters
   because every simulated packet crosses this structure twice per
   hop.

   Implementation notes for the allocation contract (vanilla ocamlopt,
   no flambda): the sift loops are top-level recursive functions over
   [(q, index)] that compare and swap array slots directly, never
   binding a closure or carrying a float argument, because a nested
   [let rec] capturing the in-hand key would allocate a closure (and
   box the float) on every push and pop. The swap variant does a few
   more stores than the hole-carrying variant; stores are cheap, minor
   allocations are the thing being optimized away. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let initial_capacity = 64

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0 }

let clear q =
  (* Drop the storage too: a cleared queue must not pin the payloads of
     a previous run alive (pool workers keep queues across scenarios). *)
  q.keys <- [||];
  q.seqs <- [||];
  q.vals <- [||];
  q.size <- 0

let length q = q.size

let is_empty q = q.size = 0

(* (key, seq) lexicographic order between two slots; seq values are
   unique, so the heap order is total and the pop sequence is
   independent of the internal layout. Float [=] on keys is exact on
   purpose: equal simulation times must compare equal for FIFO
   tie-breaking. *)
let[@inline] [@corelite.hot] slot_lt q i j =
  q.keys.(i) < q.keys.(j) || (q.keys.(i) = q.keys.(j) && q.seqs.(i) < q.seqs.(j))

let[@inline] [@corelite.hot] swap q i j =
  let k = q.keys.(i) in
  q.keys.(i) <- q.keys.(j);
  q.keys.(j) <- k;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let v = q.vals.(i) in
  q.vals.(i) <- q.vals.(j);
  q.vals.(j) <- v

let[@corelite.hot] rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if slot_lt q i parent then begin
      swap q i parent;
      sift_up q parent
    end
  end

let[@corelite.hot] rec sift_down q i =
  let left = (2 * i) + 1 in
  if left < q.size then begin
    let right = left + 1 in
    let child =
      if right < q.size && slot_lt q right left then right else left
    in
    if slot_lt q child i then begin
      swap q i child;
      sift_down q child
    end
  end

let grow q value =
  let capacity = Array.length q.vals in
  let capacity' = if capacity = 0 then initial_capacity else 2 * capacity in
  (* The inserted element doubles as the fill so no dummy ['a] is
     needed; the key/seq fills are plain scalars. *)
  let keys' = Array.make capacity' 0. in
  let seqs' = Array.make capacity' 0 in
  let vals' = Array.make capacity' value in
  Array.blit q.keys 0 keys' 0 q.size;
  Array.blit q.seqs 0 seqs' 0 q.size;
  Array.blit q.vals 0 vals' 0 q.size;
  q.keys <- keys';
  q.seqs <- seqs';
  q.vals <- vals'

let[@inline] [@corelite.hot] add q ~key ~seq value =
  if q.size = Array.length q.vals then grow q value;
  let i = q.size in
  q.keys.(i) <- key;
  q.seqs.(i) <- seq;
  q.vals.(i) <- value;
  q.size <- i + 1;
  sift_up q i

let[@inline] [@corelite.hot] next_time q = if q.size = 0 then infinity else q.keys.(0)

let[@corelite.hot] pop_exn q =
  if q.size = 0 then invalid_arg "Event_queue.pop_exn: empty";
  let top = q.vals.(0) in
  let last = q.size - 1 in
  q.size <- last;
  if last > 0 then begin
    q.keys.(0) <- q.keys.(last);
    q.seqs.(0) <- q.seqs.(last);
    q.vals.(0) <- q.vals.(last);
    sift_down q 0
  end;
  (* Popped slots are not blanked (no dummy ['a] exists): at most one
     array's worth of stale payloads stays reachable until overwritten
     or [clear]ed — same bounded-pinning contract as [Ring]. *)
  top

let pop q =
  if q.size = 0 then None
  else begin
    let key = q.keys.(0) and seq = q.seqs.(0) in
    Some (key, seq, pop_exn q)
  end

let peek_key q = if q.size = 0 then None else Some (q.keys.(0), q.seqs.(0))
