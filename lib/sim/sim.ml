(** Deterministic discrete-event simulation core.

    The foundation everything else runs on: a virtual clock with an
    event heap ({!Engine}), a splittable deterministic PRNG ({!Rng}),
    statistics accumulators ({!Stats}), and time series ({!Timeseries}).

    Determinism is a design contract, not an accident: simultaneous
    events fire in FIFO order, every random draw descends from the
    run's root seed via {!Rng.split}, and wall-clock time never enters
    the simulation. Re-running any experiment with the same seed
    reproduces it bit for bit.

    {1 Typical use}

    {[
      let engine = Sim.Engine.create () in
      ignore (Sim.Engine.every engine ~period:0.1 (fun () -> sample ()));
      Sim.Engine.run_until engine 100.
    ]} *)

(** Binary min-heap of timestamped entries (also usable as a plain
    priority queue, e.g. inside Dijkstra). *)
module Event_queue = Event_queue

(** Growable circular FIFO buffer — the allocation-free [Stdlib.Queue]
    replacement for hot-path packet buffers. *)
module Ring = Ring

(** The virtual clock and scheduler. *)
module Engine = Engine

(** Splitmix64 pseudo-random numbers with stream splitting. *)
module Rng = Rng

(** Tolerance-based float comparison (lint rule L2's helpers). *)
module Floats = Floats

(** Runtime invariant auditing behind [?check_invariants] flags. *)
module Invariant = Invariant

(** Declarative, seed-deterministic fault plans (interpreted by
    [Net.Fault] and the scheme deployments). *)
module Faultplan = Faultplan

(** Time-weighted averages, EWMA, Welford, P² quantiles. *)
module Stats = Stats

(** Append-only (time, value) series with windows and smoothing. *)
module Timeseries = Timeseries

(** Structured ring-buffer event tracing (one tracer per {!Engine}). *)
module Trace = Trace

(** Counter/gauge/histogram/probe registry (one per {!Engine}). *)
module Metrics = Metrics
