(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue. Events are thunks
    scheduled at absolute or relative virtual times; they fire in time
    order (FIFO among simultaneous events) and may schedule further
    events. Every run of the same event program is deterministic.

    Scheduling comes in two flavours: the cancellable
    {!schedule}/{!schedule_at}/{!every} return a {!handle} (costing a
    handle record plus a guard closure per call), while
    {!schedule_unit} pushes the caller's closure straight onto the
    event heap with no allocation at all — the contract the per-packet
    hot path ({!Net.Link}) is built on. *)

type t

(** Cancellation token for a scheduled (possibly recurring) event. *)
type handle

(** [create ()] builds an engine with its clock at [0.].
    [check_invariants] (default {!Invariant.default}) audits clock
    monotonicity on every step and raises {!Invariant.Violation} when
    it breaks. *)
val create : ?check_invariants:bool -> unit -> t

(** [reset t] returns the engine to the freshly-created state: clock at
    [0.], event queue empty, sequence and executed-event counters at
    zero, and the invariant-auditing flag re-resolved ([check_invariants]
    defaulting to {!Invariant.default} again). A reset engine replays
    any event program bit-for-bit identically to a brand-new one — the
    contract {!Workload.Pool} workers rely on when reusing one engine
    across scenario jobs. *)
val reset : ?check_invariants:bool -> t -> unit

(** Current virtual time in seconds. *)
val now : t -> float

(** The engine's event tracer — one per engine, disabled until
    [Sim.Trace.enable]; components grab it at construction and guard
    every recording site with [Sim.Trace.want]. {!reset} returns it to
    the disabled, empty state. *)
val trace : t -> Trace.t

(** The engine's metrics registry — one per engine; components register
    probes at construction. {!reset} empties it. *)
val metrics : t -> Metrics.t

(** Number of events still pending. *)
val pending : t -> int

(** Events executed since creation (or the last {!reset}) — the
    events/sec denominator the bench harness reports. *)
val executed : t -> int

(** Events scheduled since creation (or the last {!reset}). *)
val events_scheduled : t -> int

(** [schedule t ~delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule : t -> delay:float -> (unit -> unit) -> handle

(** [schedule_at t ~time f] fires [f] at absolute time [time].
    @raise Invalid_argument if [time] is in the past or not finite. *)
val schedule_at : t -> time:float -> (unit -> unit) -> handle

(** [schedule_unit t ~delay f] fires [f] at [now t +. delay] with no
    cancellation handle and {e no heap allocation} (the closure is
    pushed directly onto the event heap). Use it with a persistent,
    reused closure for events that are never cancelled — per-packet
    transmission completions and deliveries.
    @raise Invalid_argument if [delay] is negative or not finite. *)
val schedule_unit : t -> delay:float -> (unit -> unit) -> unit

(** [every t ~start ~period f] fires [f] at [start], [start +. period],
    [start +. 2 *. period], ... until the handle is cancelled. [start]
    defaults to [now t +. period]. After the first firing, the
    recurrence allocates nothing per period (one closure is re-pushed).
    @raise Invalid_argument if [period <= 0.] or not finite, or if
    [start] is in the past or not finite. *)
val every : t -> ?start:float -> period:float -> (unit -> unit) -> handle

(** Cancel a pending event. Cancelling an already-fired or already-
    cancelled event is a no-op. *)
val cancel : handle -> unit

val is_cancelled : handle -> bool

(** Execute the next pending event; returns [false] if none remain. *)
val step : t -> bool

(** Run until the event queue drains. *)
val run : t -> unit

(** [run_until t limit] executes every event with time [<= limit], then
    advances the clock to [limit]. Recurring events keep the queue
    non-empty, so simulations normally terminate through [run_until]. *)
val run_until : t -> float -> unit
