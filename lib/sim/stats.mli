(** Statistics accumulators used across the simulator. *)

(** Time-weighted average of a piecewise-constant signal (e.g. queue
    length). The signal takes value [v] from the instant of [set] until
    the next [set]. *)
module Time_weighted : sig
  type t

  val create : now:float -> init:float -> t

  (** Record that the signal changed to [v] at time [now]. [now] must not
      go backwards. *)
  val set : t -> now:float -> float -> unit

  (** Current value of the signal. *)
  val value : t -> float

  (** Average of the signal over [window start, now]. Returns [value] if
      the window is empty. *)
  val average : t -> now:float -> float

  (** Start a new averaging window at [now]. The signal value carries
      over. *)
  val reset : t -> now:float -> unit
end

(** Fixed-gain exponentially weighted moving average. *)
module Ewma : sig
  type t

  (** [create ~gain] with [0 < gain <= 1]. The first observation
      initializes the average. *)
  val create : gain:float -> t

  val update : t -> float -> unit

  (** Current average; [0.] before any observation. *)
  val value : t -> float

  val is_initialized : t -> bool

  (** Forget all history: back to the just-created state, where the next
      observation (re)initializes the average. Used by soft-state
      recovery paths (router resets). *)
  val reset : t -> unit
end

(** Streaming quantile estimation without storing samples — the P²
    algorithm (Jain & Chlamtac, CACM 1985): five markers whose heights
    are adjusted with a piecewise-parabolic fit as observations
    arrive. Accurate to a few percent for the tail quantiles the
    delay metrics report. *)
module Quantile : sig
  type t

  (** [create ~q] estimates the [q]-quantile, [0 < q < 1]. *)
  val create : q:float -> t

  val add : t -> float -> unit

  val count : t -> int

  (** Current estimate. Exact while fewer than five observations have
      arrived (falls back to the sorted sample); [0.] when empty. *)
  val estimate : t -> float
end

(** Streaming mean/variance (Welford's algorithm). *)
module Welford : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
end
