type kind =
  | Enqueue
  | Dequeue
  | Drop
  | Marker_attach
  | Marker_seen
  | Feedback_emit
  | Feedback_recv
  | Epoch
  | Selector
  | Rate_update
  | Alpha_update
  | Fault
  | Flow_start
  | Flow_end
  | Flow_expire

let n_kinds = 15

let kind_index = function
  | Enqueue -> 0
  | Dequeue -> 1
  | Drop -> 2
  | Marker_attach -> 3
  | Marker_seen -> 4
  | Feedback_emit -> 5
  | Feedback_recv -> 6
  | Epoch -> 7
  | Selector -> 8
  | Rate_update -> 9
  | Alpha_update -> 10
  | Fault -> 11
  | Flow_start -> 12
  | Flow_end -> 13
  | Flow_expire -> 14

let kind_of_index = function
  | 0 -> Enqueue
  | 1 -> Dequeue
  | 2 -> Drop
  | 3 -> Marker_attach
  | 4 -> Marker_seen
  | 5 -> Feedback_emit
  | 6 -> Feedback_recv
  | 7 -> Epoch
  | 8 -> Selector
  | 9 -> Rate_update
  | 10 -> Alpha_update
  | 11 -> Fault
  | 12 -> Flow_start
  | 13 -> Flow_end
  | 14 -> Flow_expire
  | i -> invalid_arg (Printf.sprintf "Trace.kind_of_index: %d" i)

let kind_name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Drop -> "drop"
  | Marker_attach -> "marker_attach"
  | Marker_seen -> "marker_seen"
  | Feedback_emit -> "feedback_emit"
  | Feedback_recv -> "feedback_recv"
  | Epoch -> "epoch"
  | Selector -> "selector"
  | Rate_update -> "rate_update"
  | Alpha_update -> "alpha_update"
  | Fault -> "fault"
  | Flow_start -> "flow_start"
  | Flow_end -> "flow_end"
  | Flow_expire -> "flow_expire"

(* The twelve kinds that predate dynamic flow lifecycle. [digest]
   prints these unconditionally (historic golden format) and the
   lifecycle kinds only when they actually fired, so static-workload
   digests are byte-identical to those produced before churn existed. *)
let legacy_kinds =
  [
    Enqueue;
    Dequeue;
    Drop;
    Marker_attach;
    Marker_seen;
    Feedback_emit;
    Feedback_recv;
    Epoch;
    Selector;
    Rate_update;
    Alpha_update;
    Fault;
  ]

let lifecycle_kinds = [ Flow_start; Flow_end; Flow_expire ]

let all_kinds = legacy_kinds @ lifecycle_kinds

let control_kinds =
  [
    Drop;
    Feedback_emit;
    Feedback_recv;
    Epoch;
    Selector;
    Rate_update;
    Alpha_update;
    Fault;
    Flow_start;
    Flow_end;
    Flow_expire;
  ]

type spec = { capacity : int; kinds : kind list }

let spec ?(capacity = 1 lsl 16) ?(kinds = all_kinds) () =
  if capacity <= 0 then invalid_arg "Trace.spec: capacity must be positive";
  { capacity; kinds }

(* Struct-of-arrays ring: one flat array per event field, so recording
   an event is six unboxed stores plus two counter bumps — no record or
   closure is ever allocated on the recording path, and the float
   arrays are unboxed float storage. The [a]/[b]/[x]/[y] payload slots
   are generic; each kind documents its own field meaning (see the
   interface). When the tracer is disabled the arrays are empty and
   [want] answers [false] from two loads, so instrumented call sites
   guarded by [want] cost a couple of reads and a branch. *)
type t = {
  mutable on : bool;
  mutable mask : int;
  mutable times : float array;
  mutable ks : int array;
  mutable aa : int array;
  mutable bb : int array;
  mutable xx : float array;
  mutable yy : float array;
  mutable next : int;
  mutable recorded : int;
  counts : int array;
}

let create () =
  {
    on = false;
    mask = 0;
    times = [||];
    ks = [||];
    aa = [||];
    bb = [||];
    xx = [||];
    yy = [||];
    next = 0;
    recorded = 0;
    counts = Array.make n_kinds 0;
  }

let enabled t = t.on

let mask_of_kinds kinds =
  List.fold_left (fun m k -> m lor (1 lsl kind_index k)) 0 kinds

let enable ?(capacity = 1 lsl 16) ?(kinds = all_kinds) t =
  if capacity <= 0 then invalid_arg "Trace.enable: capacity must be positive";
  t.on <- true;
  t.mask <- mask_of_kinds kinds;
  t.times <- Array.make capacity 0.;
  t.ks <- Array.make capacity 0;
  t.aa <- Array.make capacity 0;
  t.bb <- Array.make capacity 0;
  t.xx <- Array.make capacity 0.;
  t.yy <- Array.make capacity 0.;
  t.next <- 0;
  t.recorded <- 0;
  Array.fill t.counts 0 n_kinds 0

let apply t s = enable ~capacity:s.capacity ~kinds:s.kinds t

let disable t = t.on <- false

let reset t =
  t.on <- false;
  t.mask <- 0;
  t.times <- [||];
  t.ks <- [||];
  t.aa <- [||];
  t.bb <- [||];
  t.xx <- [||];
  t.yy <- [||];
  t.next <- 0;
  t.recorded <- 0;
  Array.fill t.counts 0 n_kinds 0

let[@inline] want t kind = t.on && t.mask land (1 lsl kind_index kind) <> 0

let record t ~time kind ~a ~b ~x ~y =
  if want t kind then begin
    let i = kind_index kind in
    t.counts.(i) <- t.counts.(i) + 1;
    t.recorded <- t.recorded + 1;
    let cap = Array.length t.times in
    if cap > 0 then begin
      let n = t.next in
      t.times.(n) <- time;
      t.ks.(n) <- i;
      t.aa.(n) <- a;
      t.bb.(n) <- b;
      t.xx.(n) <- x;
      t.yy.(n) <- y;
      t.next <- if n + 1 = cap then 0 else n + 1
    end
  end

let recorded t = t.recorded

let count t kind = t.counts.(kind_index kind)

let length t = min t.recorded (Array.length t.times)

let dropped_events t = t.recorded - length t

type event = { time : float; kind : kind; a : int; b : int; x : float; y : float }

let get t i =
  let len = length t in
  if i < 0 || i >= len then invalid_arg "Trace.get: index out of bounds";
  let cap = Array.length t.times in
  (* Oldest retained event sits [len] slots behind the write cursor. *)
  let j = (t.next - len + i + cap) mod cap in
  {
    time = t.times.(j);
    kind = kind_of_index t.ks.(j);
    a = t.aa.(j);
    b = t.bb.(j);
    x = t.xx.(j);
    y = t.yy.(j);
  }

let iter t f =
  for i = 0 to length t - 1 do
    f (get t i)
  done

(* Fixed-format float printing keeps exports byte-deterministic across
   runs and domains: the same double always prints the same bytes. *)
let pp_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" v)
  else Buffer.add_string b (Printf.sprintf "%.9g" v)

let to_jsonl t =
  let b = Buffer.create 4096 in
  iter t (fun e ->
      Buffer.add_string b "{\"t\":";
      pp_float b e.time;
      Buffer.add_string b ",\"kind\":\"";
      Buffer.add_string b (kind_name e.kind);
      Buffer.add_string b "\",\"a\":";
      Buffer.add_string b (string_of_int e.a);
      Buffer.add_string b ",\"b\":";
      Buffer.add_string b (string_of_int e.b);
      Buffer.add_string b ",\"x\":";
      pp_float b e.x;
      Buffer.add_string b ",\"y\":";
      pp_float b e.y;
      Buffer.add_string b "}\n");
  Buffer.contents b

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time,kind,a,b,x,y\n";
  iter t (fun e ->
      pp_float b e.time;
      Buffer.add_char b ',';
      Buffer.add_string b (kind_name e.kind);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int e.a);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int e.b);
      Buffer.add_char b ',';
      pp_float b e.x;
      Buffer.add_char b ',';
      pp_float b e.y;
      Buffer.add_char b '\n');
  Buffer.contents b

let digest t =
  let b = Buffer.create 256 in
  List.iter
    (fun k ->
      Buffer.add_string b
        (Printf.sprintf "%-14s %d\n" (kind_name k) (count t k)))
    legacy_kinds;
  List.iter
    (fun k ->
      let n = count t k in
      if n > 0 then
        Buffer.add_string b (Printf.sprintf "%-14s %d\n" (kind_name k) n))
    lifecycle_kinds;
  Buffer.add_string b (Printf.sprintf "recorded       %d\n" t.recorded);
  Buffer.add_string b (Printf.sprintf "retained       %d\n" (length t));
  Buffer.add_string b
    (Printf.sprintf "md5            %s\n" (Digest.to_hex (Digest.string (to_jsonl t))));
  Buffer.contents b
