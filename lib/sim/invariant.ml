exception Violation of string

(* Both cells are read and written from every pool worker domain, so
   they must be atomic: a plain [ref] would race (and the check counter
   would drop increments) the moment scenarios run in parallel. *)
let enabled_by_default = Atomic.make false

let set_default b = Atomic.set enabled_by_default b

let default () = Atomic.get enabled_by_default

let checks = Atomic.make 0

let checks_run () = Atomic.get checks

let require ~what cond =
  Atomic.incr checks;
  if not cond then raise (Violation what)

let requiref ~what cond =
  Atomic.incr checks;
  if not cond then raise (Violation (what ()))
