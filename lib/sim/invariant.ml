exception Violation of string

(* Both cells are read and written from every pool worker domain, so
   they must be atomic: a plain [ref] would race (and the check counter
   would drop increments) the moment scenarios run in parallel. *)
let enabled_by_default = Atomic.make false

let set_default b = Atomic.set enabled_by_default b

let default () = Atomic.get enabled_by_default

let checks = Atomic.make 0

let checks_run () = Atomic.get checks

let require ~what cond =
  Atomic.incr checks;
  if not cond then raise (Violation what)

let requiref ~what cond =
  Atomic.incr checks;
  if not cond then raise (Violation (what ()))

(* Injected-fault ledger. Under a fault plan, markers vanish from the
   data path on purpose (dropped with their packet, stripped in flight,
   or lost on the feedback channel). Conservation-style checks — "every
   marker an edge attached was seen or accounted" — would fire
   spuriously under injected loss unless the injector declares each
   loss here. [Net.Fault] is the only writer; the counters are global
   (atomic, like [checks]) because markers cross module boundaries that
   share no state. *)
let marker_losses = Atomic.make 0

let feedback_losses = Atomic.make 0

let note_marker_loss () = Atomic.incr marker_losses

let note_feedback_loss () = Atomic.incr feedback_losses

let marker_losses_noted () = Atomic.get marker_losses

let feedback_losses_noted () = Atomic.get feedback_losses

(* Flow-table ledger. Dynamic (churn) deployments create per-flow edge
   state on first packet and retire it on completion or soft-state
   expiry. The ledger counts both sides so a churn oracle can prove the
   table never leaks: created = retired + live at every stable point.
   Writers are the corelite/csfq dynamic deployments; counters are
   process-wide and atomic for the same reason as the fault ledger. *)
let flow_creations = Atomic.make 0

let flow_retirements = Atomic.make 0

let flow_expiries = Atomic.make 0

let note_flow_created () = Atomic.incr flow_creations

let note_flow_retired () = Atomic.incr flow_retirements

let note_flow_expired () =
  Atomic.incr flow_expiries;
  Atomic.incr flow_retirements

let flows_created () = Atomic.get flow_creations

let flows_retired () = Atomic.get flow_retirements

let flows_expired () = Atomic.get flow_expiries
