exception Violation of string

let enabled_by_default = ref false

let set_default b = enabled_by_default := b

let default () = !enabled_by_default

let checks = ref 0

let checks_run () = !checks

let require ~what cond =
  incr checks;
  if not cond then raise (Violation what)

let requiref ~what cond =
  incr checks;
  if not cond then raise (Violation (what ()))
