(** Binary min-heap of timestamped entries.

    Entries are ordered by [key] (simulation time) and, for equal keys,
    by [seq] (insertion order), so simultaneous events fire in FIFO
    order.

    Two access styles coexist: the boxed {!pop}/{!peek_key} return
    options (convenient in tests and cold paths), while the unboxed
    {!next_time}/{!pop_exn} pair serves the engine's hot loop without
    allocating — internally the heap stores keys in a flat [float
    array] alongside parallel seq/payload arrays, so neither style
    allocates per entry beyond the payload itself. *)

type 'a t

val create : unit -> 'a t

(** [clear q] empties the queue and releases its storage, returning it
    to the freshly-created state (used when an engine is reset between
    pooled scenario runs). *)
val clear : 'a t -> unit

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [add q ~key ~seq v] inserts [v] with priority [(key, seq)].
    Allocation-free except when the backing arrays double. *)
val add : 'a t -> key:float -> seq:int -> 'a -> unit

(** [next_time q] is the minimum key, or [infinity] when the queue is
    empty — the unboxed replacement for {!peek_key} on the hot loop
    (finite keys are enforced by the engine, so [infinity] is an
    unambiguous sentinel). *)
val next_time : 'a t -> float

(** [pop_exn q] removes and returns the minimum entry's payload without
    boxing.
    @raise Invalid_argument when empty — guard with {!is_empty}. *)
val pop_exn : 'a t -> 'a

(** [pop q] removes and returns the minimum entry, or [None] if empty. *)
val pop : 'a t -> (float * int * 'a) option

(** [peek_key q] returns the minimum [(key, seq)] without removing it. *)
val peek_key : 'a t -> (float * int) option
