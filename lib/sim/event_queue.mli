(** Binary min-heap of timestamped entries.

    Entries are ordered by [key] (simulation time) and, for equal keys, by
    [seq] (insertion order), so simultaneous events fire in FIFO order. *)

type 'a t

val create : unit -> 'a t

(** [clear q] empties the queue and releases its storage, returning it
    to the freshly-created state (used when an engine is reset between
    pooled scenario runs). *)
val clear : 'a t -> unit

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [add q ~key ~seq v] inserts [v] with priority [(key, seq)]. *)
val add : 'a t -> key:float -> seq:int -> 'a -> unit

(** [pop q] removes and returns the minimum entry, or [None] if empty. *)
val pop : 'a t -> (float * int * 'a) option

(** [peek_key q] returns the minimum [(key, seq)] without removing it. *)
val peek_key : 'a t -> (float * int) option
