type 'a t = {
  mutable data : 'a array;
  mutable head : int;  (* index of the oldest element when len > 0 *)
  mutable len : int;
}

let initial_capacity = 16

let create () = { data = [||]; head = 0; len = 0 }

let[@corelite.hot] length t = t.len

let[@corelite.hot] is_empty t = t.len = 0

let clear t =
  (* Drop the storage too: a cleared ring must not pin the payloads of
     a previous run alive (pool workers reuse engines across runs). *)
  t.data <- [||];
  t.head <- 0;
  t.len <- 0

(* Grow by doubling, rebasing the live window to index 0. The pushed
   element doubles as the [Array.make] fill so no dummy value is ever
   needed for an arbitrary ['a] (same idiom as [Event_queue]); stale
   slots between [len] and [capacity] can pin at most one generation
   of old elements, which [clear] releases wholesale. *)
let grow t x =
  let capacity = Array.length t.data in
  let capacity' = if capacity = 0 then initial_capacity else 2 * capacity in
  let data' = Array.make capacity' x in
  let tail = capacity - t.head in
  let first = Stdlib.min t.len tail in
  Array.blit t.data t.head data' 0 first;
  if t.len > first then Array.blit t.data 0 data' first (t.len - first);
  t.data <- data';
  t.head <- 0

let[@corelite.hot] push t x =
  if t.len = Array.length t.data then grow t x;
  let i = t.head + t.len in
  let capacity = Array.length t.data in
  t.data.(if i >= capacity then i - capacity else i) <- x;
  t.len <- t.len + 1

let[@corelite.hot] peek_exn t =
  if t.len = 0 then invalid_arg "Ring.peek_exn: empty";
  t.data.(t.head)

let[@corelite.hot] pop_exn t =
  if t.len = 0 then invalid_arg "Ring.pop_exn: empty";
  let x = t.data.(t.head) in
  let head' = t.head + 1 in
  t.head <- (if head' = Array.length t.data then 0 else head');
  t.len <- t.len - 1;
  if t.len = 0 then t.head <- 0;
  x
