(** Tolerance-based float comparison.

    The lint pass (rule L2) bans [=], [<>] and [==] on float operands:
    exact float equality silently breaks under reordering or
    refactoring of arithmetic. Code that really means "equal up to
    rounding" says so with these helpers; code that really means exact
    bit equality (e.g. a [0.] sentinel never touched by arithmetic)
    carries an explicit [(* lint: float-eq-ok *)] waiver instead. *)

(** Absolute tolerance used by default: [1e-9]. *)
val default_tolerance : float

(** [near a b] is [|a - b| <= tolerance]. *)
val near : ?tolerance:float -> float -> float -> bool

(** [is_zero x] is [near x 0.]. *)
val is_zero : ?tolerance:float -> float -> bool
