let mm1_arrival_rate ~mu ~q =
  if mu < 0. || q < 0. then invalid_arg "Congestion.mm1_arrival_rate: negative input";
  mu *. q /. (1. +. q)

let markers_needed ~mu ~qavg ~qthresh ~k =
  if mu < 0. || qavg < 0. || qthresh < 0. || k < 0. then
    invalid_arg "Congestion.markers_needed: negative input";
  if qavg <= qthresh then 0.
  else begin
    let excess = mm1_arrival_rate ~mu ~q:qavg -. mm1_arrival_rate ~mu ~q:qthresh in
    let correction = k *. ((qavg -. qthresh) ** 3.) in
    excess +. correction
  end

type spec =
  | Mm1_cubic of float
  | Linear_excess of float
  | Ewma_threshold of { gain : float; scale : float }

type t = { spec : spec; smoothed : Sim.Stats.Ewma.t option }

let make spec =
  let smoothed =
    match spec with
    | Ewma_threshold { gain; _ } -> Some (Sim.Stats.Ewma.create ~gain)
    | Mm1_cubic _ | Linear_excess _ -> None
  in
  { spec; smoothed }

(* The qavg input is computed from accumulated router soft state, which
   faults can corrupt (a reset mid-window, a pathological estimator
   update). Rather than let a NaN or negative average poison the
   feedback budget — and through it every edge rate downstream — clamp
   it to the harmless 0 here, and in debug builds (invariant auditing
   on) fail loudly instead so the corruption is found at its source. *)
let sanitize_qavg qavg =
  if Float.is_finite qavg && qavg >= 0. then qavg
  else begin
    if Sim.Invariant.default () then
      Sim.Invariant.requiref
        ~what:(fun () ->
          Printf.sprintf "Congestion.budget: qavg %h is not finite and non-negative"
            qavg)
        false;
    0.
  end

let budget t ~mu ~qavg ~qthresh =
  if mu < 0. || qthresh < 0. then invalid_arg "Congestion.budget: negative input";
  let qavg = sanitize_qavg qavg in
  match (t.spec, t.smoothed) with
  | Mm1_cubic k, _ -> markers_needed ~mu ~qavg ~qthresh ~k
  | Linear_excess gain, _ -> Float.max 0. (gain *. (qavg -. qthresh))
  | Ewma_threshold { scale; _ }, Some smoothed ->
    Sim.Stats.Ewma.update smoothed qavg;
    Float.max 0. (scale *. (Sim.Stats.Ewma.value smoothed -. qthresh))
  | Ewma_threshold _, None -> assert false

(* Router-reset support: drop the smoothed-queue history (the only soft
   state an estimator carries). *)
let reset t = match t.smoothed with Some s -> Sim.Stats.Ewma.reset s | None -> ()
