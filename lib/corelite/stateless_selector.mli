(** Stateless selective marker feedback (paper Section 3.2).

    The truly flow-stateless selector: instead of caching markers, the
    core keeps only a running average [rav] of the normalized rates
    labelled on passing markers and a running average [wav] of markers
    seen per epoch. When an epoch ends congested with budget [Fn], each
    marker of the following epoch is selected with probability
    [pw = Fn / wav]; a selected marker is returned as feedback only if
    its labelled rate [rn >= rav] — flows at or below the average
    normalized rate receive no feedback. A selected-but-ineligible
    marker increments a deficit that is repaid by feeding back the next
    unselected marker with [rn >= rav].

    [rav] overestimates the true mean normalized rate because faster
    flows contribute proportionally more markers, which is exactly why
    comparing against it isolates flows exceeding their share. *)

type t

val create : rav_gain:float -> wav_gain:float -> pw_cap:float -> rng:Sim.Rng.t -> t

(** Process a marker passing through the link; returns how many
    feedback copies of it must be sent back (0 = none). Also updates
    [rav] and the epoch marker count.

    When the budget exceeds the marker arrival rate ([pw > 1]) a
    selected marker is fed back [floor pw] times plus one more with
    probability [frac pw]. The paper leaves this case open ("there is
    no guarantee that the required number of markers will in fact be
    selected"); emitting multiple copies preserves the weighted-fair
    expectation and restores equivalence with the cache selector, which
    samples with replacement and is not limited by the marker rate. *)
val observe : t -> Net.Packet.marker -> int

(** Close the current epoch: fold its marker count into [wav], reset the
    deficit, and arm the selection probability for the next epoch with
    budget [fn] ([0.] when the link is not congested). *)
val on_epoch : t -> fn:float -> unit

(** Running average of labelled normalized rates. *)
val rav : t -> float

(** Current selection probability. *)
val pw : t -> float

(** Current deficit counter (observable for tests). *)
val deficit : t -> int

(** Router-reset support: back to the just-created state ([pw = 0],
    uninitialized averages, zero deficit). A freshly reset core selects
    nothing until {!on_epoch} rebuilds a budget from new observations —
    no feedback burst from stale soft state. *)
val reset : t -> unit
