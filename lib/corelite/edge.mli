(** Corelite edge-router agent for one flow (paper Section 2, steps 1
    and 3).

    The agent shapes the flow to its allowed rate [bg(f)] (paced
    always-backlogged source), piggybacks a marker carrying
    [rn = bg/w] on every [Nw = K1 * w]-th data packet, and adapts
    [bg(f)] per epoch: linear increase when no feedback arrived,
    decrease by [beta] per feedback marker otherwise, reacting to the
    {e maximum} of the marker counts received from any single core link
    (the bottleneck), not their sum. *)

type t

(** [create ~params ~topology ~flow ?floor ()] builds a stopped agent.
    [floor] is the contracted minimum rate (extension; default none).
    The flow's path must already be installable in [topology]; [start]
    installs it.

    Without [supply] the agent models an always-backlogged flow and
    synthesizes its packets. With [supply] it shapes externally queued
    traffic instead (micro-flow aggregation, see {!Aggregate}): each
    pacing slot takes one packet from [supply]; [None] leaves the slot
    unused. [deliver] is invoked for every packet arriving at the
    egress (e.g. to demultiplex micro-flows to their receivers). *)
val create :
  params:Params.t ->
  topology:Net.Topology.t ->
  flow:Net.Flow.t ->
  ?floor:float ->
  ?epoch_offset:float ->
  ?supply:(unit -> Net.Packet.t option) ->
  ?deliver:(Net.Packet.t -> unit) ->
  unit ->
  t

val flow : t -> Net.Flow.t

(** The scheme parameters this agent was built with. *)
val params : t -> Params.t

(** Install the flow's route and start shaping at the initial rate with
    fresh adaptation state. Restarting after [stop] begins a new flow
    lifetime (slow-start again). *)
val start : t -> unit

(** Stop shaping. Routes stay installed so in-flight packets still
    reach the sink and the agent can be restarted. *)
val stop : t -> unit

(** Edge-router reset: lose the soft state in edge RAM — the adapted
    rate [bg(f)], the per-link feedback counters and the marker spacing
    phase. A running agent restarts its source from the initial rate
    (fresh slow-start); a stopped one just forgets the counters. The
    soft-state recovery the paper's design implies: no resynchronization
    protocol, the control loop relearns the rate. *)
val reset : t -> unit

(** Application backlog control for bursty sources (see
    {!Net.Source.set_active}). *)
val set_backlogged : t -> bool -> unit

val running : t -> bool

(** Current allowed transmission rate [bg(f)], pkts/s. *)
val rate : t -> float

(** Deliver a feedback marker from the core link with id [link_id]. *)
val receive_feedback : t -> link_id:int -> Net.Packet.marker -> unit

(** Data packets delivered end-to-end to this flow's egress. *)
val delivered : t -> int

(** Mean end-to-end delay of delivered packets, seconds ([0.] before
    any delivery). Corelite's early feedback keeps queues short, so
    this stays close to the propagation delay. *)
val mean_delay : t -> float

(** 99th-percentile end-to-end delay (P2 streaming estimate). *)
val p99_delay : t -> float

(** Data packets sent, markers attached, feedback markers received. *)
val sent : t -> int

(** Simulation time of this agent's most recent packet emission
    (creation time before any packet). Drives soft-state expiry: a
    dynamic deployment ages out agents idle past a timeout. *)
val last_activity : t -> float

val markers_attached : t -> int

val feedback_received : t -> int
