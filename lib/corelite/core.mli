(** Corelite core-router logic for one outgoing link.

    The core router's whole job (paper Sections 2-3): forward packets
    normally, watch markers go by, monitor the time-averaged queue size
    once per congestion epoch, and on incipient congestion send weighted
    fair marker feedback to the edges that generated the markers. No
    per-flow state is kept — only the selector's aggregate variables.

    [send_feedback] is the control-plane path back to the edge; the
    deployment wires it with the reverse propagation delay. *)

type t

val attach :
  ?check_invariants:bool ->
  params:Params.t ->
  rng:Sim.Rng.t ->
  send_feedback:(Net.Packet.marker -> unit) ->
  Net.Link.t ->
  t
(** Installs hooks on the link and starts the congestion-epoch timer.
    [check_invariants] (default {!Sim.Invariant.default}) audits the
    feedback budgets — per epoch the cache selector may return at most
    [ceil Fn] markers, per marker the stateless selector at most
    [ceil pw] copies — and non-negativity of [qavg] and [Fn], raising
    {!Sim.Invariant.Violation} on the first breach.
    @raise Invalid_argument if the link already has hooks. *)

val link : t -> Net.Link.t

(** Average queue size measured in the last completed epoch. *)
val last_qavg : t -> float

(** Marker budget [Fn] computed at the last epoch boundary. *)
val last_fn : t -> float

(** Total feedback markers sent. *)
val feedback_sent : t -> int

(** Epochs that ended congested. *)
val congested_epochs : t -> int

(** Markers observed in total. *)
val markers_seen : t -> int

(** Router reset: wipe the core's soft state — selector cache or
    stateless averages, estimator history, and the queue average
    accumulating for the current epoch — as a crash/reboot would. The
    epoch timer keeps ticking (it models the router's clock, not its
    RAM); subsequent epochs rebuild [qavg] and the feedback budget from
    zero, and the emptied selector guarantees no feedback burst from
    stale state. Pair with {!Net.Link.reset} when the reset should also
    lose the packets buffered at the router. *)
val reset : t -> unit

(** Stop the epoch timer and remove the link hooks. *)
val detach : t -> unit
