type t = {
  rng : Sim.Rng.t;
  pw_cap : float;
  rav : Sim.Stats.Ewma.t;
  wav : Sim.Stats.Ewma.t;
  mutable pw : float;
  mutable deficit : int;
  mutable epoch_markers : int;
}

let create ~rav_gain ~wav_gain ~pw_cap ~rng =
  if pw_cap <= 0. then invalid_arg "Stateless_selector.create: pw_cap must be positive";
  {
    rng;
    pw_cap;
    rav = Sim.Stats.Ewma.create ~gain:rav_gain;
    wav = Sim.Stats.Ewma.create ~gain:wav_gain;
    pw = 0.;
    deficit = 0;
    epoch_markers = 0;
  }

let rav t = Sim.Stats.Ewma.value t.rav

let pw t = t.pw

let deficit t = t.deficit

let[@corelite.hot] observe t marker =
  t.epoch_markers <- t.epoch_markers + 1;
  Sim.Stats.Ewma.update t.rav marker.Net.Packet.normalized_rate;
  if t.pw <= 0. then 0
  else begin
    let eligible = marker.Net.Packet.normalized_rate >= rav t in
    let selections =
      int_of_float t.pw
      (* lint: fault-ok -- the paper's probabilistic rounding, not loss *)
      + (if Sim.Rng.bernoulli t.rng (t.pw -. Float.of_int (int_of_float t.pw)) then 1 else 0)
    in
    if selections > 0 then
      if eligible then selections
      else begin
        (* Swap these selections for future above-average markers. *)
        t.deficit <- t.deficit + selections;
        0
      end
    else if t.deficit > 0 && eligible then begin
      t.deficit <- t.deficit - 1;
      1
    end
    else 0
  end

(* Router-reset support: back to the just-created state. With [pw = 0]
   and an uninitialized running average, a freshly reset core selects
   nothing until [on_epoch] rebuilds a budget from new observations —
   no feedback burst from stale soft state. *)
let reset t =
  Sim.Stats.Ewma.reset t.rav;
  Sim.Stats.Ewma.reset t.wav;
  t.pw <- 0.;
  t.deficit <- 0;
  t.epoch_markers <- 0

let on_epoch t ~fn =
  if fn < 0. then invalid_arg "Stateless_selector.on_epoch: negative budget";
  Sim.Stats.Ewma.update t.wav (float_of_int t.epoch_markers);
  t.epoch_markers <- 0;
  t.deficit <- 0;
  let wav = Sim.Stats.Ewma.value t.wav in
  (* [pw] may exceed 1 (multiple feedback copies per marker); the cap
     bounds over-actuation of the delayed control loop and keeps a
     mis-estimated [wav] from triggering a feedback storm. *)
  t.pw <- (if Sim.Floats.is_zero fn || wav <= 0. then 0. else Float.min t.pw_cap (fn /. wav))
