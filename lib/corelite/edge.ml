let log = Logs.Src.create "corelite.edge" ~doc:"Corelite edge agents"

module Log = (val Logs.src_log log : Logs.LOG)

(* Flat all-float record: the timestamp store in [emit] is an unboxed
   in-place write, keeping activity stamping off the hot path's
   allocation budget (a mutable float field of the mixed record [t]
   would box on every assignment). *)
type clock = { mutable at : float }

type t = {
  params : Params.t;
  topology : Net.Topology.t;
  flow : Net.Flow.t;
  trace : Sim.Trace.t;
  floor : float;
  supply : (unit -> Net.Packet.t option) option;
  deliver : (Net.Packet.t -> unit) option;
  mutable source : Net.Source.t option;  (* set once in [create] *)
  (* Destination host index on FIB-routed (generated) topologies,
     stamped into every emitted packet; -1 on per-flow-routed paths,
     where packets keep using the route/sink tables. *)
  dst_host : int;
  marker_spacing : int;
  feedback_by_link : (int, int) Hashtbl.t;  (* core link id -> markers this epoch *)
  mutable data_since_marker : int;
  mutable next_packet_id : int;
  mutable sent : int;
  mutable markers_attached : int;
  mutable feedback_received : int;
  mutable delivered : int;
  activity : clock;  (* time of the last packet this agent emitted *)
  delay : Sim.Stats.Welford.t;  (* end-to-end delay of delivered packets *)
  delay_p99 : Sim.Stats.Quantile.t;
}

let source t = match t.source with Some s -> s | None -> assert false

let flow t = t.flow

let params t = t.params

let rate t = Net.Source.rate (source t)

let running t = Net.Source.running (source t)

let delivered t = t.delivered

let mean_delay t = Sim.Stats.Welford.mean t.delay

let p99_delay t = Sim.Stats.Quantile.estimate t.delay_p99

let sent t = t.sent

let last_activity t = t.activity.at

let markers_attached t = t.markers_attached

let feedback_received t = t.feedback_received

(* The bottleneck link dominates: react to the max feedback count from
   any single core link, then clear the epoch's counters. *)
let collect_max t () =
  let m = Hashtbl.fold (fun _ count acc -> Stdlib.max count acc) t.feedback_by_link 0 in
  Hashtbl.reset t.feedback_by_link;
  m

let[@corelite.hot] emit t ~now ~rate =
  (* The supply match is inlined into the binding (a [let next_packet ()
     = ...] helper would close over [t] and [now], one closure per
     packet). Packet and marker construction below are the two
     allocations this path keeps until the packet-pool PR (ROADMAP). *)
  let pkt =
    match t.supply with
    | None ->
      t.next_packet_id <- t.next_packet_id + 1;
      (* lint: alloc-ok -- fresh packet per emission until the packet pool *)
      Some
        (Net.Packet.make ~id:t.next_packet_id ~flow:t.flow.Net.Flow.id
           (* lint: alloc-ok -- same finding, end-line anchor *)
           ~dst:t.dst_host ~created:now ())
    | Some take -> take ()
  in
  match pkt with
  | None -> () (* application-limited aggregate: nothing to shape *)
  | Some pkt ->
    let weight = t.flow.Net.Flow.weight in
    t.data_since_marker <- t.data_since_marker + 1;
    if t.data_since_marker >= t.marker_spacing then begin
      t.data_since_marker <- 0;
      t.markers_attached <- t.markers_attached + 1;
      (* The advertised normalized rate covers only the contended part
         of the flow's rate: traffic under a contracted floor is
         reserved capacity and must not attract selective feedback. *)
      let edge_id = (Net.Flow.ingress t.flow).Net.Node.id in
      let normalized_rate = Float.max 0. (rate -. t.floor) /. weight in
      pkt.Net.Packet.marker <- (* lint: alloc-ok -- one marker per marker_spacing packets *)
        Some { Net.Packet.edge_id; flow_id = t.flow.Net.Flow.id; normalized_rate };
      if Sim.Trace.want t.trace Sim.Trace.Marker_attach then
        Sim.Trace.record t.trace ~time:now Sim.Trace.Marker_attach
          ~a:t.flow.Net.Flow.id ~b:edge_id ~x:normalized_rate ~y:0.
    end;
    t.sent <- t.sent + 1;
    t.activity.at <- now;
    Net.Node.receive (Net.Flow.ingress t.flow) pkt

let create ~params ~topology ~flow ?(floor = 0.) ?(epoch_offset = 0.) ?supply
    ?deliver () =
  let source_params = { params.Params.source with Net.Source.floor } in
  let engine = Net.Topology.engine topology in
  let t =
    {
      params;
      topology;
      flow;
      trace = Sim.Engine.trace engine;
      floor;
      supply;
      deliver;
      source = None;
      dst_host = (Net.Flow.egress flow).Net.Node.host;
      marker_spacing = Params.marker_spacing params ~weight:flow.Net.Flow.weight;
      feedback_by_link = Hashtbl.create 4;
      data_since_marker = 0;
      next_packet_id = 0;
      sent = 0;
      markers_attached = 0;
      feedback_received = 0;
      delivered = 0;
      activity = { at = Sim.Engine.now engine };
      delay = Sim.Stats.Welford.create ();
      delay_p99 = Sim.Stats.Quantile.create ~q:0.99;
    }
  in
  t.source <-
    Some
      (Net.Source.create ~engine ~id:flow.Net.Flow.id ~epoch_offset
         ~params:source_params
         ~emit:(fun ~now ~rate -> emit t ~now ~rate)
         ~collect:(collect_max t) ());
  let m = Sim.Engine.metrics engine in
  let pfx = Printf.sprintf "corelite.flow.%d." flow.Net.Flow.id in
  Sim.Metrics.probe m (pfx ^ "sent") ~help:"packets injected at the ingress"
    (fun () -> float_of_int t.sent);
  Sim.Metrics.probe m (pfx ^ "delivered") ~help:"packets that reached the sink"
    (fun () -> float_of_int t.delivered);
  Sim.Metrics.probe m (pfx ^ "markers_attached")
    ~help:"packets carrying a marker, one per marker_spacing"
    (fun () -> float_of_int t.markers_attached);
  Sim.Metrics.probe m (pfx ^ "feedback_received")
    ~help:"feedback markers returned to this edge"
    (fun () -> float_of_int t.feedback_received);
  Sim.Metrics.probe m (pfx ^ "rate") ~help:"current allowed rate bg, pkt/s"
    (fun () -> rate t);
  t

let start t =
  let engine = Net.Topology.engine t.topology in
  let sink pkt =
    t.delivered <- t.delivered + 1;
    let delay = Sim.Engine.now engine -. pkt.Net.Packet.created in
    Sim.Stats.Welford.add t.delay delay;
    Sim.Stats.Quantile.add t.delay_p99 delay;
    match t.deliver with Some consume -> consume pkt | None -> ()
  in
  (* FIB-routed topologies need no per-node route entries — only the
     flow's delivery callback in the topology-wide sink table. *)
  if t.dst_host >= 0 then
    Net.Topology.set_flow_sink t.topology ~flow:t.flow.Net.Flow.id sink
  else
    Net.Topology.install_path t.topology ~flow:t.flow.Net.Flow.id
      t.flow.Net.Flow.path ~sink;
  t.data_since_marker <- 0;
  Hashtbl.reset t.feedback_by_link;
  Net.Source.start (source t)

(* Routes stay installed so that in-flight packets (and restarts) keep
   working; only the source stops. *)
let stop t = Net.Source.stop (source t)

(* Edge-router reset: the bg(f) table, the per-link feedback counters
   and the marker spacing phase live in edge RAM and are lost. A
   running agent restarts its source, which begins a fresh adaptation
   lifetime (slow-start from the initial rate) — the paper's soft-state
   property: nothing needs to be resynchronized, the control loop
   simply relearns the rate. A stopped agent just loses the counters. *)
let reset t =
  Hashtbl.reset t.feedback_by_link;
  t.data_since_marker <- 0;
  if running t then Net.Source.start (source t)

let set_backlogged t backlogged = Net.Source.set_active (source t) backlogged

let receive_feedback t ~link_id _marker =
  if running t then begin
    t.feedback_received <- t.feedback_received + 1;
    if Sim.Trace.want t.trace Sim.Trace.Feedback_recv then
      Sim.Trace.record t.trace
        ~time:(Sim.Engine.now (Net.Topology.engine t.topology))
        Sim.Trace.Feedback_recv ~a:t.flow.Net.Flow.id ~b:link_id ~x:0. ~y:0.;
    Log.debug (fun m ->
        m "flow %d: feedback from link %d (bg=%.1f)" t.flow.Net.Flow.id link_id
          (rate t));
    let count = Option.value ~default:0 (Hashtbl.find_opt t.feedback_by_link link_id) in
    Hashtbl.replace t.feedback_by_link link_id (count + 1);
    Net.Source.signal_congestion (source t)
  end
