(** Incipient congestion estimation (paper Section 3.1).

    The default estimator computes, when the epoch-averaged queue size
    [qavg] exceeds [qthresh], the number of marker feedbacks

    [Fn = mu * (qavg/(1+qavg) - qthresh/(1+qthresh))
          + k * (qavg - qthresh)^3]

    with [mu] the link service rate in packets per congestion epoch.
    The first term is the M/M/1 estimate of the arrival-rate excess
    corresponding to driving the average queue from [qavg] down to
    [qthresh]; the cubic term is the self-correcting factor that takes
    over when the traffic is not Poisson and queues keep building.

    The paper notes that "the congestion estimation module can be
    replaced with no impact on the rest of the Corelite mechanisms";
    {!spec} captures that pluggability and the ablation benches compare
    the variants. *)

(** Which budget function a core link runs.

    - [Mm1_cubic k]: the paper's estimator (above).
    - [Linear_excess gain]: [Fn = gain * (qavg - qthresh)] — the
      simplest proportional controller.
    - [Ewma_threshold { gain; scale }]: RED-flavoured — an EWMA of the
      per-epoch [qavg] (smoothing across epochs) drives
      [Fn = scale * (ewma - qthresh)] once it crosses the threshold. *)
type spec =
  | Mm1_cubic of float
  | Linear_excess of float
  | Ewma_threshold of { gain : float; scale : float }

(** Per-link estimator instance (the EWMA variant carries state). *)
type t

val make : spec -> t

(** [budget t ~mu ~qavg ~qthresh] is the number of feedback markers for
    the epoch that just ended; [0.] when not congested.

    [qavg] comes from accumulated router soft state that faults can
    corrupt, so a non-finite or negative value is clamped to [0.]
    (uncongested) rather than propagated into edge rates — except in
    debug builds ({!Sim.Invariant.default} on), where it raises
    {!Sim.Invariant.Violation} so the corruption is found at its source.
    @raise Invalid_argument on negative [mu] or [qthresh]. *)
val budget : t -> mu:float -> qavg:float -> qthresh:float -> float

(** Router-reset support: forget the smoothed-queue history (only the
    [Ewma_threshold] variant carries any). *)
val reset : t -> unit

(** The paper's closed-form budget (exposed for tests and docs). *)
val markers_needed : mu:float -> qavg:float -> qthresh:float -> k:float -> float

(** Expected M/M/1 arrival rate (packets/epoch) that sustains an average
    queue of [q] at service rate [mu]: [mu * q / (1 + q)]. *)
val mm1_arrival_rate : mu:float -> q:float -> float
