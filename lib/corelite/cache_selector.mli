(** Marker-cache feedback selection (paper Section 2).

    The cache is a circular queue holding the most recent markers that
    traversed the link. Because edges inject markers at the flow's
    normalized rate, a flow's share of cache entries is proportional to
    [bg/w], so drawing uniformly at random yields weighted fair
    feedback without inspecting marker contents. *)

type t

val create : capacity:int -> rng:Sim.Rng.t -> t

(** Record a marker passing through the link (overwrites the oldest
    entry when full). *)
val observe : t -> Net.Packet.marker -> unit

(** [select t ~fn] draws markers for one congested epoch: [floor fn]
    draws plus one more with probability [frac fn], each uniform over
    the cache (with replacement). Returns [[]] when the cache is
    empty. *)
val select : t -> fn:float -> Net.Packet.marker list

(** [select_iter t ~fn f] is [select] without building the list: [f]
    receives each drawn marker in draw order and the number of draws is
    returned (at most [floor fn + 1], [0] when the cache is empty) —
    the feedback path uses this to emit markers with no list churn.
    The RNG stream consumed is identical to {!select}'s. *)
val select_iter : t -> fn:float -> (Net.Packet.marker -> unit) -> int

(** Markers currently cached. *)
val occupancy : t -> int

(** Router-reset support: wipe the cache. With an empty cache every
    subsequent selection returns no markers (and consumes no RNG
    draws), so a freshly reset core cannot emit a feedback burst from
    stale entries. *)
val clear : t -> unit
