let log = Logs.Src.create "corelite.core" ~doc:"Corelite core-router logic"

module Log = (val Logs.src_log log : Logs.LOG)

type selector_state =
  | Cache of Cache_selector.t
  | Stateless of Stateless_selector.t

type t = {
  params : Params.t;
  estimator : Congestion.t;
  link : Net.Link.t;
  trace : Sim.Trace.t;
  send_feedback : Net.Packet.marker -> unit;
  selector : selector_state;
  qlen : Sim.Stats.Time_weighted.t;
  mutable timer : Sim.Engine.handle option;
  mutable last_qavg : float;
  mutable last_fn : float;
  mutable feedback_sent : int;
  mutable congested_epochs : int;
  mutable markers_seen : int;
  check : bool;
}

let link t = t.link

let last_qavg t = t.last_qavg

let last_fn t = t.last_fn

let feedback_sent t = t.feedback_sent

let congested_epochs t = t.congested_epochs

let markers_seen t = t.markers_seen

let[@corelite.hot] emit t marker =
  t.feedback_sent <- t.feedback_sent + 1;
  if Sim.Trace.want t.trace Sim.Trace.Feedback_emit then
    Sim.Trace.record t.trace
      ~time:(Sim.Engine.now t.link.Net.Link.engine)
      Sim.Trace.Feedback_emit ~a:t.link.Net.Link.id
      ~b:marker.Net.Packet.flow_id ~x:marker.Net.Packet.normalized_rate ~y:0.;
  t.send_feedback marker

let[@corelite.hot] on_marker t marker =
  t.markers_seen <- t.markers_seen + 1;
  if Sim.Trace.want t.trace Sim.Trace.Marker_seen then
    Sim.Trace.record t.trace
      ~time:(Sim.Engine.now t.link.Net.Link.engine)
      Sim.Trace.Marker_seen ~a:t.link.Net.Link.id
      ~b:marker.Net.Packet.flow_id ~x:marker.Net.Packet.normalized_rate ~y:0.;
  match t.selector with
  | Cache cache -> Cache_selector.observe cache marker
  | Stateless sel ->
    let copies = Stateless_selector.observe sel marker in
    if t.check then
      (* Per-marker feedback budget: at most ceil(pw) copies, whether
         they come from this marker's own draw or the swap deficit. *)
      Sim.Invariant.requiref (* lint: alloc-ok -- diagnostic closure, gated by t.check *)
        ~what:(fun () ->
          Printf.sprintf
            "Core %s: stateless selector returned %d copies for one marker \
             (pw=%.3f allows at most %d)"
            t.link.Net.Link.name copies
            (Stateless_selector.pw sel)
            (int_of_float (Stateless_selector.pw sel) + 1))
        (copies >= 0 && copies <= int_of_float (Stateless_selector.pw sel) + 1);
    for _ = 1 to copies do
      emit t marker
    done

let on_epoch t engine () =
  let now = Sim.Engine.now engine in
  let qavg = Sim.Stats.Time_weighted.average t.qlen ~now in
  Sim.Stats.Time_weighted.reset t.qlen ~now;
  let mu = Net.Link.capacity_pps t.link *. t.params.Params.core_epoch in
  let fn = Congestion.budget t.estimator ~mu ~qavg ~qthresh:t.params.Params.qthresh in
  if t.check then begin
    Sim.Invariant.require
      ~what:("Core " ^ t.link.Net.Link.name ^ ": negative average queue length")
      (qavg >= 0.);
    Sim.Invariant.require
      ~what:("Core " ^ t.link.Net.Link.name ^ ": negative feedback budget Fn")
      (fn >= 0.)
  end;
  t.last_qavg <- qavg;
  t.last_fn <- fn;
  (* Exactly one budget computation per core epoch per link — recorded
     before the selector acts, so the oracle can check both the 100 ms
     cadence and that every feedback burst follows a positive budget. *)
  if Sim.Trace.want t.trace Sim.Trace.Epoch then
    Sim.Trace.record t.trace ~time:now Sim.Trace.Epoch ~a:t.link.Net.Link.id
      ~b:0 ~x:qavg ~y:fn;
  if fn > 0. then begin
    t.congested_epochs <- t.congested_epochs + 1;
    Log.debug (fun m ->
        m "t=%.3f link %s congested: qavg=%.2f fn=%.2f" now t.link.Net.Link.name qavg
          fn)
  end;
  (match t.selector with
  | Cache cache ->
    if fn > 0. then begin
      let count = Cache_selector.select_iter cache ~fn (emit t) in
      if t.check then
        (* Epoch feedback budget: the cache returns at most ceil(Fn)
           markers for the epoch. *)
        Sim.Invariant.requiref
          ~what:(fun () ->
            Printf.sprintf
              "Core %s: cache selector returned %d markers for budget Fn=%.3f \
               (at most %d allowed)"
              t.link.Net.Link.name count fn
              (int_of_float fn + 1))
          (count <= int_of_float fn + 1)
    end
  | Stateless sel -> Stateless_selector.on_epoch sel ~fn);
  if Sim.Trace.want t.trace Sim.Trace.Selector then
    match t.selector with
    | Cache cache ->
      Sim.Trace.record t.trace ~time:now Sim.Trace.Selector
        ~a:t.link.Net.Link.id ~b:1
        ~x:(float_of_int (Cache_selector.occupancy cache))
        ~y:0.
    | Stateless sel ->
      Sim.Trace.record t.trace ~time:now Sim.Trace.Selector
        ~a:t.link.Net.Link.id ~b:0 ~x:(Stateless_selector.pw sel)
        ~y:(Stateless_selector.rav sel)

(* Router reset: wipe every piece of soft state the core logic keeps —
   the marker cache (or stateless running averages and selection
   probability), the estimator's smoothed history, and the queue
   average accumulating for the current epoch. The epoch timer keeps
   ticking (it models the router's clock, not its RAM); with the
   selector emptied the next epochs rebuild qavg and the budget from
   zero without emitting a feedback burst. The caller resets the
   underlying link's buffers separately ({!Net.Link.reset}) if the
   reset is meant to lose queued packets too. *)
let reset t =
  (match t.selector with
  | Cache cache -> Cache_selector.clear cache
  | Stateless sel -> Stateless_selector.reset sel);
  Congestion.reset t.estimator;
  let now = Sim.Engine.now t.link.Net.Link.engine in
  Sim.Stats.Time_weighted.set t.qlen ~now
    (float_of_int (Net.Link.queue_length t.link));
  Sim.Stats.Time_weighted.reset t.qlen ~now;
  t.last_qavg <- 0.;
  t.last_fn <- 0.

let attach ?check_invariants ~params ~rng ~send_feedback link =
  let check =
    match check_invariants with Some b -> b | None -> Sim.Invariant.default ()
  in
  if link.Net.Link.hooks <> None then
    invalid_arg ("Core.attach: link " ^ link.Net.Link.name ^ " already has hooks");
  let engine = link.Net.Link.engine in
  let now = Sim.Engine.now engine in
  let selector =
    match params.Params.selector with
    | Params.Cache ->
      Cache (Cache_selector.create ~capacity:params.Params.cache_size ~rng)
    | Params.Stateless ->
      Stateless
        (Stateless_selector.create ~rav_gain:params.Params.rav_gain
           ~wav_gain:params.Params.wav_gain ~pw_cap:params.Params.pw_cap ~rng)
  in
  let qlen =
    Sim.Stats.Time_weighted.create ~now
      ~init:(float_of_int (Net.Link.queue_length link))
  in
  let t =
    {
      params;
      estimator = Congestion.make params.Params.estimator;
      link;
      trace = Sim.Engine.trace engine;
      send_feedback;
      selector;
      qlen;
      timer = None;
      last_qavg = 0.;
      last_fn = 0.;
      feedback_sent = 0;
      congested_epochs = 0;
      markers_seen = 0;
      check;
    }
  in
  t.timer <-
    Some (Sim.Engine.every engine ~period:params.Params.core_epoch (on_epoch t engine));
  let hooks =
    {
      Net.Link.on_arrival =
        (fun pkt ->
          (match pkt.Net.Packet.marker with
          | Some marker -> on_marker t marker
          | None -> ());
          Net.Link.Pass);
      on_queue_change =
        (fun qlen_now ->
          Sim.Stats.Time_weighted.set t.qlen ~now:(Sim.Engine.now engine)
            (float_of_int qlen_now));
    }
  in
  link.Net.Link.hooks <- Some hooks;
  let m = Sim.Engine.metrics engine in
  let pfx = "corelite.core." ^ link.Net.Link.name ^ "." in
  Sim.Metrics.probe m (pfx ^ "feedback_sent")
    ~help:"feedback markers returned upstream"
    (fun () -> float_of_int t.feedback_sent);
  Sim.Metrics.probe m (pfx ^ "markers_seen")
    ~help:"markers observed on arriving packets"
    (fun () -> float_of_int t.markers_seen);
  Sim.Metrics.probe m (pfx ^ "congested_epochs")
    ~help:"epochs with a positive budget, i.e. qavg above qthresh"
    (fun () -> float_of_int t.congested_epochs);
  Sim.Metrics.probe m (pfx ^ "qavg") ~help:"last epoch's average queue"
    (fun () -> t.last_qavg);
  Sim.Metrics.probe m (pfx ^ "fn") ~help:"last epoch's marker budget Fn"
    (fun () -> t.last_fn);
  t

let detach t =
  (match t.timer with Some h -> Sim.Engine.cancel h | None -> ());
  t.timer <- None;
  t.link.Net.Link.hooks <- None
