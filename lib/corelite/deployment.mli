(** Wires a full Corelite deployment onto a topology.

    Creates one {!Edge} agent per flow, attaches {!Core} logic to the
    given core links, and connects the control plane: feedback selected
    at a core link travels back to the marker's generating edge with the
    reverse-path propagation delay, then lands in the flow's agent. *)

type t

(** A flow plus its contracted minimum rate (0 = no contract). *)
type flow_spec = { flow : Net.Flow.t; floor : float }

val spec : ?floor:float -> Net.Flow.t -> flow_spec

(** [build ~params ~rng ~topology ~flows ~core_links] constructs all
    agents and core logic. Flows are not started.
    @raise Invalid_argument on duplicate flow ids or a core link not on
    any flow path when delay lookup is needed later. *)
val build :
  params:Params.t ->
  rng:Sim.Rng.t ->
  topology:Net.Topology.t ->
  flows:flow_spec list ->
  core_links:Net.Link.t list ->
  t

(** Like {!build}, but for agents constructed by the caller (e.g. the
    edges underlying {!Aggregate}s): only attaches the core logic and
    wires the feedback control plane. *)
val of_agents :
  params:Params.t ->
  rng:Sim.Rng.t ->
  topology:Net.Topology.t ->
  agents:(int, Edge.t) Hashtbl.t ->
  core_links:Net.Link.t list ->
  t

val agent : t -> int -> Edge.t
(** @raise Not_found for an unknown flow id. *)

val agents : t -> (int * Edge.t) list
(** Sorted by flow id. *)

val cores : t -> Core.t list

(** The topology the deployment was wired over. *)
val topology : t -> Net.Topology.t

val start_flow : t -> int -> unit

val stop_flow : t -> int -> unit

val start_all : t -> unit

(** Total feedback markers sent by all core links. *)
val total_feedback : t -> int

(** Total packets dropped on the core links (Corelite aims for zero). *)
val total_drops : t -> int

(** Core-link packet losses of one flow (an evaluation metric; the
    Corelite agents themselves never react to losses). *)
val drops_of_flow : t -> int -> int
