(** Wires a full Corelite deployment onto a topology.

    Creates one {!Edge} agent per flow, attaches {!Core} logic to the
    given core links, and connects the control plane: feedback selected
    at a core link travels back to the marker's generating edge with the
    reverse-path propagation delay, then lands in the flow's agent. *)

type t

(** A flow plus its contracted minimum rate (0 = no contract). *)
type flow_spec = { flow : Net.Flow.t; floor : float }

val spec : ?floor:float -> Net.Flow.t -> flow_spec

(** [build ~params ~rng ~topology ~flows ~core_links] constructs all
    agents and core logic. Flows are not started.

    [fault] connects the control plane to a fault injector: each
    feedback marker a core sends first consults the injector's
    per-link feedback-loss channel ({!Net.Fault.feedback_lost}) and is
    suppressed when it fires. Feedback travels as direct callbacks, not
    packets, so the data-path loss models cannot reach it — this is the
    deterministic stand-in. Omitted (or with links the plan does not
    cover), feedback delivery is untouched and no draws are consumed.
    @raise Invalid_argument on duplicate flow ids or a core link not on
    any flow path when delay lookup is needed later. *)
val build :
  ?fault:Net.Fault.t ->
  params:Params.t ->
  rng:Sim.Rng.t ->
  topology:Net.Topology.t ->
  flows:flow_spec list ->
  core_links:Net.Link.t list ->
  unit ->
  t

(** Like {!build}, but for agents constructed by the caller (e.g. the
    edges underlying {!Aggregate}s): only attaches the core logic and
    wires the feedback control plane. *)
val of_agents :
  ?fault:Net.Fault.t ->
  params:Params.t ->
  rng:Sim.Rng.t ->
  topology:Net.Topology.t ->
  agents:(int, Edge.t) Hashtbl.t ->
  core_links:Net.Link.t list ->
  unit ->
  t

val agent : t -> int -> Edge.t
(** @raise Not_found for an unknown flow id. *)

val agents : t -> (int * Edge.t) list
(** Sorted by flow id. *)

val cores : t -> Core.t list

(** The topology the deployment was wired over. *)
val topology : t -> Net.Topology.t

val start_flow : t -> int -> unit

val stop_flow : t -> int -> unit

val start_all : t -> unit

(** {1 Dynamic flow lifecycle (churn)}

    Edges create per-flow soft state when a flow first appears and age
    it out when the flow goes silent; cores hold no per-flow state, so
    arrivals and departures need no core-side signalling. Each
    transition is declared to the {!Sim.Invariant} flow ledger
    ([note_flow_created] / [note_flow_retired] / [note_flow_expired])
    and recorded as a [Flow_start] / [Flow_end] / [Flow_expire] trace
    event, so churn oracles can prove the edge flow table never leaks:
    created = retired + {!live_flows}. *)

(** [add_flow t flow] creates and starts an agent for a flow arriving
    mid-run: the per-(core link, flow) feedback delay entries are
    registered and the agent becomes reachable by the already-wired
    core feedback closures. [size] (packets; 0 = open-ended) only
    annotates the [Flow_start] trace event.
    @raise Invalid_argument on a duplicate live flow id. *)
val add_flow : t -> ?floor:float -> ?size:int -> Net.Flow.t -> Edge.t

(** [end_flow t id] retires a flow that completed: stops its source and
    discards the edge's per-flow state. Routes stay installed so
    in-flight packets still reach their sink; feedback already in
    flight is dropped by the agent's [running] guard, so no feedback is
    attributed to the flow after its [Flow_end] event.
    @raise Invalid_argument for an unknown (or already retired) id. *)
val end_flow : t -> int -> unit

(** [expire_idle t ~timeout] sweeps the soft-state table: every agent
    whose last packet emission is at least [timeout] seconds old is
    retired as expired (ledger [note_flow_expired], trace
    [Flow_expire], in flow-id order). Returns the number expired.
    Schedule periodically for the paper's soft-state expiry semantics.
    @raise Invalid_argument on a non-positive [timeout]. *)
val expire_idle : t -> timeout:float -> int

(** Whether a flow currently holds edge state. *)
val has_flow : t -> int -> bool

(** Number of flows currently holding edge state. *)
val live_flows : t -> int

(** Total feedback markers sent by all core links. *)
val total_feedback : t -> int

(** Total packets dropped on the core links (Corelite aims for zero). *)
val total_drops : t -> int

(** Core-link packet losses of one flow (an evaluation metric; the
    Corelite agents themselves never react to losses). *)
val drops_of_flow : t -> int -> int

(** Schedule the plan's router resets on the simulation clock. Router
    resets are scheme state, so the deployment interprets them (the
    injector handles the scheme-agnostic faults): [Core_router name]
    purges that core link's buffers ({!Net.Link.reset}) and wipes its
    Corelite soft state ({!Core.reset}); [Edge_agent flow] wipes the
    agent's adaptation state ({!Edge.reset}). Call after [build], before
    running.
    @raise Invalid_argument for a reset naming a link without a core or
    an unknown flow id. *)
val schedule_resets : t -> Sim.Faultplan.t -> unit
