type flow_spec = { flow : Net.Flow.t; floor : float }

let spec ?(floor = 0.) flow = { flow; floor }

type t = {
  topology : Net.Topology.t;
  agents : (int, Edge.t) Hashtbl.t;
  cores : Core.t list;
  core_links : Net.Link.t list;
  drops_by_flow : (int, int) Hashtbl.t;
  (* The feedback control plane reads [agents] and [delays] through the
     per-core [send_feedback] closures, so flows added after wiring
     (churn) become reachable by mutating these two tables; [params] and
     [rng] are kept to build mid-run agents the same way [build] does. *)
  delays : (int * int, float) Hashtbl.t;
  params : Params.t;
  rng : Sim.Rng.t;
}

(* Wire core-router logic for a set of pre-built agents: feedback
   selected at a core link travels back to the generating edge with the
   reverse-path propagation delay, then lands in the flow's agent. *)
let of_agents ?fault ~params ~rng ~topology ~agents ~core_links () =
  (* Feedback latency per (link, flow), precomputed from the paths. *)
  let delays : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ agent ->
      let flow = Edge.flow agent in
      List.iter
        (fun link ->
          match Net.Flow.upstream_delay flow topology link with
          | Some d -> Hashtbl.replace delays (link.Net.Link.id, flow.Net.Flow.id) d
          | None -> ())
        core_links)
    agents;
  let engine = Net.Topology.engine topology in
  (* Corelite edges do not react to losses (feedback markers carry the
     signal), but per-flow loss accounting is an evaluation metric. *)
  let drops_by_flow : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun link ->
      link.Net.Link.on_drop <-
        Some
          (fun _reason pkt ->
            let flow = pkt.Net.Packet.flow in
            Hashtbl.replace drops_by_flow flow
              (1 + Option.value ~default:0 (Hashtbl.find_opt drops_by_flow flow))))
    core_links;
  let cores =
    List.map
      (fun link ->
        let send_feedback marker =
          (* Feedback markers travel the reverse path as control-plane
             callbacks, not packets, so link loss cannot touch them;
             the fault injector's per-link feedback channel models
             their loss instead. The draw happens at send time (not
             delivery), matching a marker corrupted on the wire. *)
          let lost =
            match fault with
            | Some f -> Net.Fault.feedback_lost f link
            | None -> false
          in
          if not lost then
            let flow_id = marker.Net.Packet.flow_id in
            match Hashtbl.find_opt agents flow_id with
            | None -> ()
            | Some agent ->
              let delay =
                Option.value ~default:0.
                  (Hashtbl.find_opt delays (link.Net.Link.id, flow_id))
              in
              ignore
                (Sim.Engine.schedule engine ~delay (fun () ->
                     Edge.receive_feedback agent ~link_id:link.Net.Link.id marker))
        in
        Core.attach ~params ~rng:(Sim.Rng.split rng) ~send_feedback link)
      core_links
  in
  { topology; agents; cores; core_links; drops_by_flow; delays; params; rng }

let build ?fault ~params ~rng ~topology ~flows ~core_links () =
  let agents = Hashtbl.create 32 in
  let epoch = params.Params.source.Net.Source.epoch in
  List.iter
    (fun { flow; floor } ->
      let id = flow.Net.Flow.id in
      if Hashtbl.mem agents id then
        invalid_arg (Printf.sprintf "Deployment.build: duplicate flow %d" id);
      (* Edge routers are not clock-synchronized: give each agent a
         random timer phase so adaptation steps do not align. *)
      let epoch_offset = Sim.Rng.float rng epoch in
      Hashtbl.add agents id (Edge.create ~params ~topology ~flow ~floor ~epoch_offset ()))
    flows;
  of_agents ?fault ~params ~rng ~topology ~agents ~core_links ()

let agent t id =
  match Hashtbl.find_opt t.agents id with
  | Some a -> a
  | None -> raise Not_found

let agents t =
  Hashtbl.fold (fun id a acc -> (id, a) :: acc) t.agents []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cores t = t.cores

let topology t = t.topology

let start_flow t id = Edge.start (agent t id)

let stop_flow t id = Edge.stop (agent t id)

let start_all t = List.iter (fun (_, a) -> Edge.start a) (agents t)

(* Dynamic flow lifecycle (churn). The paper's soft-state story: edges
   create per-flow state when a flow first appears and age it out when
   the flow goes silent; cores never hold per-flow state, so nothing
   else in the deployment needs to learn about arrivals or departures —
   the feedback closures simply stop finding retired flows. Every
   transition is declared to the [Sim.Invariant] flow ledger and traced
   so churn oracles can prove the flow table never leaks. *)

let has_flow t id = Hashtbl.mem t.agents id

let live_flows t = Hashtbl.length t.agents

let add_flow t ?(floor = 0.) ?(size = 0) flow =
  let id = flow.Net.Flow.id in
  if Hashtbl.mem t.agents id then
    invalid_arg (Printf.sprintf "Deployment.add_flow: duplicate flow %d" id);
  let epoch = t.params.Params.source.Net.Source.epoch in
  let epoch_offset = Sim.Rng.float t.rng epoch in
  let agent = Edge.create ~params:t.params ~topology:t.topology ~flow ~floor ~epoch_offset () in
  Hashtbl.add t.agents id agent;
  List.iter
    (fun link ->
      match Net.Flow.upstream_delay flow t.topology link with
      | Some d -> Hashtbl.replace t.delays (link.Net.Link.id, id) d
      | None -> ())
    t.core_links;
  Sim.Invariant.note_flow_created ();
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  if Sim.Trace.want trace Sim.Trace.Flow_start then
    Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_start
      ~a:id
      ~b:(Net.Flow.ingress flow).Net.Node.id
      ~x:flow.Net.Flow.weight ~y:(float_of_int size);
  Edge.start agent;
  agent

(* Routes stay installed on retirement (in-flight packets must still
   reach their sink; see [Edge.stop]); what is reclaimed is the edge's
   per-flow soft state. Feedback already scheduled toward a retired
   agent lands in [Edge.receive_feedback]'s [running] guard and is
   dropped without trace, so no feedback is ever attributed to a flow
   after its end or expiry event. *)
let retire t id agent ~kind ~idle =
  Edge.stop agent;
  Hashtbl.remove t.agents id;
  List.iter
    (fun link -> Hashtbl.remove t.delays (link.Net.Link.id, id))
    t.core_links;
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  match kind with
  | `End ->
    Sim.Invariant.note_flow_retired ();
    if Sim.Trace.want trace Sim.Trace.Flow_end then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_end
        ~a:id ~b:0
        ~x:(float_of_int (Edge.sent agent))
        ~y:(float_of_int (Edge.delivered agent))
  | `Expire ->
    Sim.Invariant.note_flow_expired ();
    if Sim.Trace.want trace Sim.Trace.Flow_expire then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_expire
        ~a:id ~b:0 ~x:idle ~y:0.

let end_flow t id =
  match Hashtbl.find_opt t.agents id with
  | None -> invalid_arg (Printf.sprintf "Deployment.end_flow: unknown flow %d" id)
  | Some agent -> retire t id agent ~kind:`End ~idle:0.

let expire_idle t ~timeout =
  if timeout <= 0. then
    invalid_arg "Deployment.expire_idle: timeout must be positive";
  let now = Sim.Engine.now (Net.Topology.engine t.topology) in
  let stale =
    Hashtbl.fold
      (fun id agent acc ->
        let idle = now -. Edge.last_activity agent in
        if idle >= timeout then (id, agent, idle) :: acc else acc)
      t.agents []
    (* Sorted so expiry events appear in flow-id order regardless of
       hash-bucket iteration order: replay byte-determinism. *)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iter (fun (id, agent, idle) -> retire t id agent ~kind:`Expire ~idle) stale;
  List.length stale

let total_feedback t =
  List.fold_left (fun acc core -> acc + Core.feedback_sent core) 0 t.cores

let total_drops t =
  List.fold_left (fun acc link -> acc + link.Net.Link.drops) 0 t.core_links

let drops_of_flow t id = Option.value ~default:0 (Hashtbl.find_opt t.drops_by_flow id)

(* Router resets are scheme state, so the deployment (not Net.Fault)
   interprets them: a core reset loses both the router's packet buffers
   (Link.reset) and its Corelite soft state (Core.reset); an edge reset
   wipes the agent's bg(f) table and restarts its adaptation. Targets
   are validated at schedule time so a typo in a plan fails the run
   immediately rather than silently resetting nothing. *)
let schedule_resets t plan =
  let engine = Net.Topology.engine t.topology in
  List.iter
    (fun { Sim.Faultplan.reset_target; at } ->
      let fire =
        match reset_target with
        | Sim.Faultplan.Core_router name -> (
          match
            List.find_opt
              (fun core -> String.equal (Core.link core).Net.Link.name name)
              t.cores
          with
          | None ->
            invalid_arg ("Deployment.schedule_resets: no core on link " ^ name)
          | Some core ->
            fun () ->
              Net.Link.reset (Core.link core);
              Core.reset core)
        | Sim.Faultplan.Edge_agent id -> (
          match Hashtbl.find_opt t.agents id with
          | None ->
            invalid_arg
              (Printf.sprintf "Deployment.schedule_resets: no agent for flow %d" id)
          | Some agent -> fun () -> Edge.reset agent)
      in
      ignore (Sim.Engine.schedule_at engine ~time:at fire))
    plan.Sim.Faultplan.resets
