type flow_spec = { flow : Net.Flow.t; floor : float }

let spec ?(floor = 0.) flow = { flow; floor }

type t = {
  topology : Net.Topology.t;
  agents : Edge.t Net.Flowtable.t;
  cores : Core.t list;
  core_links : Net.Link.t list;
  is_core : bool array;  (* link id -> policed by a core *)
  drops_by_flow : Net.Flowtable.Count.t;
  (* The feedback control plane reads [agents] and [delays] through the
     per-core [send_feedback] closures, so flows added after wiring
     (churn) become reachable by mutating these two tables; [params] and
     [rng] are kept to build mid-run agents the same way [build] does. *)
  delays : (int * int, float) Hashtbl.t;
  params : Params.t;
  rng : Sim.Rng.t;
}

let core_membership core_links =
  let top = List.fold_left (fun acc l -> Stdlib.max acc l.Net.Link.id) (-1) core_links in
  let is_core = Array.make (top + 1) false in
  List.iter (fun l -> is_core.(l.Net.Link.id) <- true) core_links;
  is_core

(* Feedback latency per (core link, flow): one walk down the flow's own
   path accumulates upstream delay — O(path length), not
   O(core links), which is what keeps churn affordable on generated
   topologies with tens of thousands of policed links. *)
let register_delays ~topology ~is_core ~delays flow =
  let acc = ref 0. in
  List.iter
    (fun link ->
      let lid = link.Net.Link.id in
      if lid < Array.length is_core && is_core.(lid) then
        Hashtbl.replace delays (lid, flow.Net.Flow.id) !acc;
      acc := !acc +. link.Net.Link.delay)
    (Net.Flow.links flow topology)

let unregister_delays ~topology ~is_core ~delays flow =
  List.iter
    (fun link ->
      let lid = link.Net.Link.id in
      if lid < Array.length is_core && is_core.(lid) then
        Hashtbl.remove delays (lid, flow.Net.Flow.id))
    (Net.Flow.links flow topology)

(* Wire core-router logic for a set of pre-built agents: feedback
   selected at a core link travels back to the generating edge with the
   reverse-path propagation delay, then lands in the flow's agent. *)
let of_table ?fault ~params ~rng ~topology ~agents ~core_links () =
  let is_core = core_membership core_links in
  let delays : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  Net.Flowtable.iter agents (fun _ agent ->
      register_delays ~topology ~is_core ~delays (Edge.flow agent));
  let engine = Net.Topology.engine topology in
  (* Corelite edges do not react to losses (feedback markers carry the
     signal), but per-flow loss accounting is an evaluation metric. *)
  let drops_by_flow = Net.Flowtable.Count.create () in
  List.iter
    (fun link ->
      link.Net.Link.on_drop <-
        Some
          (fun _reason pkt ->
            Net.Flowtable.Count.incr drops_by_flow pkt.Net.Packet.flow))
    core_links;
  let cores =
    List.map
      (fun link ->
        let send_feedback marker =
          (* Feedback markers travel the reverse path as control-plane
             callbacks, not packets, so link loss cannot touch them;
             the fault injector's per-link feedback channel models
             their loss instead. The draw happens at send time (not
             delivery), matching a marker corrupted on the wire. *)
          let lost =
            match fault with
            | Some f -> Net.Fault.feedback_lost f link
            | None -> false
          in
          if not lost then
            let flow_id = marker.Net.Packet.flow_id in
            match Net.Flowtable.find agents flow_id with
            | None -> ()
            | Some agent ->
              let delay =
                Option.value ~default:0.
                  (Hashtbl.find_opt delays (link.Net.Link.id, flow_id))
              in
              ignore
                (Sim.Engine.schedule engine ~delay (fun () ->
                     Edge.receive_feedback agent ~link_id:link.Net.Link.id marker))
        in
        Core.attach ~params ~rng:(Sim.Rng.split rng) ~send_feedback link)
      core_links
  in
  { topology; agents; cores; core_links; is_core; drops_by_flow; delays; params; rng }

let of_agents ?fault ~params ~rng ~topology ~agents ~core_links () =
  let table = Net.Flowtable.create () in
  Hashtbl.iter (fun id agent -> Net.Flowtable.set table id agent) agents;
  of_table ?fault ~params ~rng ~topology ~agents:table ~core_links ()

let build ?fault ~params ~rng ~topology ~flows ~core_links () =
  let agents = Net.Flowtable.create () in
  let epoch = params.Params.source.Net.Source.epoch in
  List.iter
    (fun { flow; floor } ->
      let id = flow.Net.Flow.id in
      if Net.Flowtable.mem agents id then
        invalid_arg (Printf.sprintf "Deployment.build: duplicate flow %d" id);
      (* Edge routers are not clock-synchronized: give each agent a
         random timer phase so adaptation steps do not align. *)
      let epoch_offset = Sim.Rng.float rng epoch in
      Net.Flowtable.add agents id
        (Edge.create ~params ~topology ~flow ~floor ~epoch_offset ()))
    flows;
  of_table ?fault ~params ~rng ~topology ~agents ~core_links ()

let agent t id =
  match Net.Flowtable.find t.agents id with
  | Some a -> a
  | None -> raise Not_found

let agents t = List.rev (Net.Flowtable.fold t.agents (fun id a acc -> (id, a) :: acc) [])

let cores t = t.cores

let topology t = t.topology

let start_flow t id = Edge.start (agent t id)

let stop_flow t id = Edge.stop (agent t id)

let start_all t = Net.Flowtable.iter t.agents (fun _ a -> Edge.start a)

(* Dynamic flow lifecycle (churn). The paper's soft-state story: edges
   create per-flow state when a flow first appears and age it out when
   the flow goes silent; cores never hold per-flow state, so nothing
   else in the deployment needs to learn about arrivals or departures —
   the feedback closures simply stop finding retired flows. Every
   transition is declared to the [Sim.Invariant] flow ledger and traced
   so churn oracles can prove the flow table never leaks. *)

let has_flow t id = Net.Flowtable.mem t.agents id

let live_flows t = Net.Flowtable.live t.agents

let add_flow t ?(floor = 0.) ?(size = 0) flow =
  let id = flow.Net.Flow.id in
  if Net.Flowtable.mem t.agents id then
    invalid_arg (Printf.sprintf "Deployment.add_flow: duplicate flow %d" id);
  let epoch = t.params.Params.source.Net.Source.epoch in
  let epoch_offset = Sim.Rng.float t.rng epoch in
  let agent = Edge.create ~params:t.params ~topology:t.topology ~flow ~floor ~epoch_offset () in
  Net.Flowtable.add t.agents id agent;
  register_delays ~topology:t.topology ~is_core:t.is_core ~delays:t.delays flow;
  Sim.Invariant.note_flow_created ();
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  if Sim.Trace.want trace Sim.Trace.Flow_start then
    Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_start
      ~a:id
      ~b:(Net.Flow.ingress flow).Net.Node.id
      ~x:flow.Net.Flow.weight ~y:(float_of_int size);
  Edge.start agent;
  agent

(* Routes stay installed on retirement (in-flight packets must still
   reach their sink; see [Edge.stop]); what is reclaimed is the edge's
   per-flow soft state. Feedback already scheduled toward a retired
   agent lands in [Edge.receive_feedback]'s [running] guard and is
   dropped without trace, so no feedback is ever attributed to a flow
   after its end or expiry event. *)
let retire t id agent ~kind ~idle =
  Edge.stop agent;
  Net.Flowtable.remove t.agents id;
  unregister_delays ~topology:t.topology ~is_core:t.is_core ~delays:t.delays
    (Edge.flow agent);
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  match kind with
  | `End ->
    Sim.Invariant.note_flow_retired ();
    if Sim.Trace.want trace Sim.Trace.Flow_end then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_end
        ~a:id ~b:0
        ~x:(float_of_int (Edge.sent agent))
        ~y:(float_of_int (Edge.delivered agent))
  | `Expire ->
    Sim.Invariant.note_flow_expired ();
    if Sim.Trace.want trace Sim.Trace.Flow_expire then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_expire
        ~a:id ~b:0 ~x:idle ~y:0.

let end_flow t id =
  match Net.Flowtable.find t.agents id with
  | None -> invalid_arg (Printf.sprintf "Deployment.end_flow: unknown flow %d" id)
  | Some agent -> retire t id agent ~kind:`End ~idle:0.

let expire_idle t ~timeout =
  if timeout <= 0. then
    invalid_arg "Deployment.expire_idle: timeout must be positive";
  let now = Sim.Engine.now (Net.Topology.engine t.topology) in
  (* Flowtable iteration is already in ascending flow-id order, so
     expiry events replay byte-identically with no sort step. *)
  let stale =
    List.rev
      (Net.Flowtable.fold t.agents
         (fun id agent acc ->
           let idle = now -. Edge.last_activity agent in
           if idle >= timeout then (id, agent, idle) :: acc else acc)
         [])
  in
  List.iter (fun (id, agent, idle) -> retire t id agent ~kind:`Expire ~idle) stale;
  List.length stale

let total_feedback t =
  List.fold_left (fun acc core -> acc + Core.feedback_sent core) 0 t.cores

let total_drops t =
  List.fold_left (fun acc link -> acc + link.Net.Link.drops) 0 t.core_links

let drops_of_flow t id = Net.Flowtable.Count.get t.drops_by_flow id

(* Router resets are scheme state, so the deployment (not Net.Fault)
   interprets them: a core reset loses both the router's packet buffers
   (Link.reset) and its Corelite soft state (Core.reset); an edge reset
   wipes the agent's bg(f) table and restarts its adaptation. Targets
   are validated at schedule time so a typo in a plan fails the run
   immediately rather than silently resetting nothing. *)
let schedule_resets t plan =
  let engine = Net.Topology.engine t.topology in
  List.iter
    (fun { Sim.Faultplan.reset_target; at } ->
      let fire =
        match reset_target with
        | Sim.Faultplan.Core_router name -> (
          match
            List.find_opt
              (fun core -> String.equal (Core.link core).Net.Link.name name)
              t.cores
          with
          | None ->
            invalid_arg ("Deployment.schedule_resets: no core on link " ^ name)
          | Some core ->
            fun () ->
              Net.Link.reset (Core.link core);
              Core.reset core)
        | Sim.Faultplan.Edge_agent id -> (
          match Net.Flowtable.find t.agents id with
          | None ->
            invalid_arg
              (Printf.sprintf "Deployment.schedule_resets: no agent for flow %d" id)
          | Some agent -> fun () -> Edge.reset agent)
      in
      ignore (Sim.Engine.schedule_at engine ~time:at fire))
    plan.Sim.Faultplan.resets
