(** Corelite: per-flow weighted rate fairness in a core stateless
    network (Sivakumar et al., ICDCS 2000).

    The ingress edge shapes each flow to its allowed rate [bg(f)] and
    piggybacks a marker on every [K1*w]-th packet, so a flow's marker
    rate encodes its normalized rate [bg/w] ({!Edge}). Core routers
    keep {e no per-flow state}: per link they watch the epoch-averaged
    queue length, compute a feedback budget [Fn] on incipient
    congestion ({!Congestion}), and return that many markers to the
    edges that sent them — drawn uniformly from a small marker cache
    ({!Cache_selector}) or, fully stateless, selected on the fly among
    markers whose labelled rate is at or above the running average
    ({!Stateless_selector}); {!Core} glues these onto a link. Edges
    react to the {e maximum} feedback count over the links of the path
    (the bottleneck) with a weighted linear-increase /
    multiplicative-decrease rule that converges to weighted max-min
    fairness without packet loss.

    {!Deployment} wires agents, core links and the feedback control
    plane; {!Aggregate} extends the edge to shape aggregates of
    end-to-end micro-flows (round-robin service, edge policing), which
    is how TCP traffic rides the cloud.

    {1 Minimal use}

    {[
      let deployment =
        Corelite.Deployment.build ~params:Corelite.Params.default
          ~rng ~topology ~flows ~core_links ()
      in
      Corelite.Deployment.start_all deployment;
      Sim.Engine.run_until engine 100.
    ]} *)

(** Every constant of the scheme (paper defaults + sensitivity knobs). *)
module Params = Params

(** Incipient-congestion feedback budgets ([Fn]), pluggable. *)
module Congestion = Congestion

(** Marker-cache feedback selection (paper Section 2). *)
module Cache_selector = Cache_selector

(** Stateless selective feedback (paper Section 3.2). *)
module Stateless_selector = Stateless_selector

(** Per-link core-router logic. *)
module Core = Core

(** Per-flow edge-router agent: shaping, marking, adaptation. *)
module Edge = Edge

(** Micro-flow aggregation at the ingress edge. *)
module Aggregate = Aggregate

(** Whole-cloud wiring: agents + cores + control plane. *)
module Deployment = Deployment
