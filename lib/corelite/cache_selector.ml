type t = {
  rng : Sim.Rng.t;
  slots : Net.Packet.marker option array;
  mutable next : int;  (* circular write cursor *)
  mutable filled : int;
}

let create ~capacity ~rng =
  if capacity <= 0 then invalid_arg "Cache_selector.create: capacity must be positive";
  { rng; slots = Array.make capacity None; next = 0; filled = 0 }

let[@corelite.hot] observe t marker =
  t.slots.(t.next) <- Some marker; (* lint: alloc-ok -- cache slots are options by design *)
  t.next <- (t.next + 1) mod Array.length t.slots;
  if t.filled < Array.length t.slots then t.filled <- t.filled + 1

let occupancy t = t.filled

(* Router-reset support: wipe the cache. With [filled = 0] every
   subsequent [select_iter] returns no markers (and consumes no draws),
   so a freshly reset core cannot emit a feedback burst from stale
   entries. *)
let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.filled <- 0

(* The RNG draw order — one bernoulli for the fractional part, then
   [count] uniform draws in increasing order — is the published stream
   contract: [select] consumed it through [List.init] (which evaluates
   left to right), so [select_iter] must keep it for the committed
   tables to stay byte-identical. *)
let select_iter t ~fn f =
  if fn < 0. then invalid_arg "Cache_selector.select: negative budget";
  if t.filled = 0 || Sim.Floats.is_zero fn then 0
  else begin
    let whole = int_of_float fn in
    let frac = fn -. float_of_int whole in
    (* lint: fault-ok -- the paper's probabilistic rounding, not loss *)
    let count = whole + (if Sim.Rng.bernoulli t.rng frac then 1 else 0) in
    for _ = 1 to count do
      match t.slots.(Sim.Rng.int t.rng t.filled) with
      | Some marker -> f marker
      | None -> assert false (* indices < filled are always populated *)
    done;
    count
  end

let select t ~fn =
  let acc = ref [] in
  let (_ : int) = select_iter t ~fn (fun marker -> acc := marker :: !acc) in
  List.rev !acc
