(** Weighted Core-Stateless Fair Queueing (Stoica, Shenker & Zhang,
    SIGCOMM 1998) — the baseline the paper compares against.

    Ingress edges estimate each flow's rate by exponential averaging
    ({!Rate_estimator}) and label packets with the normalized rate
    [r/w]. Core routers keep no per-flow state: they estimate the
    link's fair share [alpha] and drop arriving packets with
    probability [max(0, 1 - alpha/label)], relabelling survivors
    ({!Core}). Sources adapt to losses with the same slow-start + LIMD
    scheme as the Corelite agents ({!Edge}).

    {!Deployment} wires a cloud; [~attach_cores:false] degenerates it
    to plain loss-driven sources over whatever queue discipline the
    links carry — the DropTail/RED/FRED/DRR related-work comparator. *)

module Params = Params
module Rate_estimator = Rate_estimator
module Core = Core
module Edge = Edge
module Deployment = Deployment
