(** Wires a full weighted-CSFQ deployment onto a topology: one {!Edge}
    agent per flow, {!Core} logic on each core link, and loss
    indications travelling back to the source agent with the
    reverse-path propagation delay. *)

type t

type flow_spec = { flow : Net.Flow.t; floor : float }

val spec : ?floor:float -> Net.Flow.t -> flow_spec

(** [attach_cores] (default true) controls whether the CSFQ per-link
    logic is installed. With [false] the deployment degenerates to
    plain loss-driven adaptive sources over whatever queue discipline
    the links carry — the DropTail/RED/FRED comparator of the
    related-work ablation. *)
val build :
  ?attach_cores:bool ->
  params:Params.t ->
  rng:Sim.Rng.t ->
  topology:Net.Topology.t ->
  flows:flow_spec list ->
  core_links:Net.Link.t list ->
  unit ->
  t

val agent : t -> int -> Edge.t
(** @raise Not_found for an unknown flow id. *)

val agents : t -> (int * Edge.t) list
(** Sorted by flow id. *)

val cores : t -> Core.t list

val start_flow : t -> int -> unit

val stop_flow : t -> int -> unit

val start_all : t -> unit

(** {1 Dynamic flow lifecycle (churn)}

    Same contract as the Corelite deployment: per-flow edge state is
    created on arrival and aged out when silent; each transition is
    declared to the {!Sim.Invariant} flow ledger and recorded as a
    [Flow_start] / [Flow_end] / [Flow_expire] trace event. *)

(** Create and start an agent for a flow arriving mid-run. [size]
    (packets; 0 = open-ended) only annotates the [Flow_start] event.
    @raise Invalid_argument on a duplicate live flow id. *)
val add_flow : t -> ?floor:float -> ?size:int -> Net.Flow.t -> Edge.t

(** Retire a completed flow: stop its source, discard its edge state.
    Loss notifications already in flight are dropped by the agent's
    [running] guard.
    @raise Invalid_argument for an unknown (or already retired) id. *)
val end_flow : t -> int -> unit

(** Age out every agent idle for at least [timeout] seconds (ledger
    [note_flow_expired], trace [Flow_expire], flow-id order); returns
    the number expired.
    @raise Invalid_argument on a non-positive [timeout]. *)
val expire_idle : t -> timeout:float -> int

(** Whether a flow currently holds edge state. *)
val has_flow : t -> int -> bool

(** Number of flows currently holding edge state. *)
val live_flows : t -> int

(** Total packets lost on core links (early drops + overflows). *)
val total_drops : t -> int

(** Core-link packet losses of one flow. *)
val drops_of_flow : t -> int -> int
