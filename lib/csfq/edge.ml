(* Flat all-float record so the activity stamp in [emit] is an unboxed
   in-place write (mirrors Corelite.Edge). *)
type clock = { mutable at : float }

type t = {
  topology : Net.Topology.t;
  flow : Net.Flow.t;
  trace : Sim.Trace.t;
  mutable source : Net.Source.t option;  (* set once in [create] *)
  (* Destination host index on FIB-routed (generated) topologies; -1 on
     per-flow-routed paths (mirrors Corelite.Edge). *)
  dst_host : int;
  estimator : Rate_estimator.t;
  mutable pending_losses : int;
  mutable next_packet_id : int;
  mutable sent : int;
  mutable losses : int;
  mutable delivered : int;
  mutable current_label : float;
  activity : clock;  (* time of the last packet this agent emitted *)
  delay : Sim.Stats.Welford.t;  (* end-to-end delay of delivered packets *)
  delay_p99 : Sim.Stats.Quantile.t;
}

let source t = match t.source with Some s -> s | None -> assert false

let flow t = t.flow

let rate t = Net.Source.rate (source t)

let running t = Net.Source.running (source t)

let delivered t = t.delivered

let mean_delay t = Sim.Stats.Welford.mean t.delay

let p99_delay t = Sim.Stats.Quantile.estimate t.delay_p99

let sent t = t.sent

let last_activity t = t.activity.at

let losses t = t.losses

let current_label t = t.current_label

let collect_losses t () =
  let m = t.pending_losses in
  t.pending_losses <- 0;
  m

let emit t ~now ~rate:_ =
  let estimated = Rate_estimator.update t.estimator ~now ~amount:1. in
  t.current_label <- estimated /. t.flow.Net.Flow.weight;
  t.next_packet_id <- t.next_packet_id + 1;
  let pkt =
    Net.Packet.make ~id:t.next_packet_id ~flow:t.flow.Net.Flow.id ~dst:t.dst_host
      ~created:now ()
  in
  pkt.Net.Packet.label <- t.current_label;
  t.sent <- t.sent + 1;
  t.activity.at <- now;
  Net.Node.receive (Net.Flow.ingress t.flow) pkt

let create ~params ~topology ~flow ?(floor = 0.) ?(epoch_offset = 0.) () =
  let source_params = { params.Params.source with Net.Source.floor } in
  let engine = Net.Topology.engine topology in
  let t =
    {
      topology;
      flow;
      trace = Sim.Engine.trace engine;
      source = None;
      dst_host = (Net.Flow.egress flow).Net.Node.host;
      estimator = Rate_estimator.create ~k:params.Params.k_flow;
      pending_losses = 0;
      next_packet_id = 0;
      sent = 0;
      losses = 0;
      delivered = 0;
      current_label = 0.;
      activity = { at = Sim.Engine.now engine };
      delay = Sim.Stats.Welford.create ();
      delay_p99 = Sim.Stats.Quantile.create ~q:0.99;
    }
  in
  t.source <-
    Some
      (Net.Source.create ~engine ~id:flow.Net.Flow.id ~epoch_offset
         ~params:source_params
         ~emit:(fun ~now ~rate -> emit t ~now ~rate)
         ~collect:(collect_losses t) ());
  let m = Sim.Engine.metrics engine in
  let pfx = Printf.sprintf "csfq.flow.%d." flow.Net.Flow.id in
  Sim.Metrics.probe m (pfx ^ "sent") ~help:"packets injected at the ingress"
    (fun () -> float_of_int t.sent);
  Sim.Metrics.probe m (pfx ^ "delivered") ~help:"packets that reached the sink"
    (fun () -> float_of_int t.delivered);
  Sim.Metrics.probe m (pfx ^ "losses") ~help:"loss signals, the CSFQ feedback"
    (fun () -> float_of_int t.losses);
  Sim.Metrics.probe m (pfx ^ "rate") ~help:"current allowed rate bg, pkt/s"
    (fun () -> rate t);
  t

let start t =
  let engine = Net.Topology.engine t.topology in
  let sink pkt =
    t.delivered <- t.delivered + 1;
    let delay = Sim.Engine.now engine -. pkt.Net.Packet.created in
    Sim.Stats.Welford.add t.delay delay;
    Sim.Stats.Quantile.add t.delay_p99 delay
  in
  if t.dst_host >= 0 then
    Net.Topology.set_flow_sink t.topology ~flow:t.flow.Net.Flow.id sink
  else
    Net.Topology.install_path t.topology ~flow:t.flow.Net.Flow.id
      t.flow.Net.Flow.path ~sink;
  t.pending_losses <- 0;
  Net.Source.start (source t)

let stop t = Net.Source.stop (source t)

let set_backlogged t backlogged = Net.Source.set_active (source t) backlogged

let note_loss t =
  if running t then begin
    t.losses <- t.losses + 1;
    t.pending_losses <- t.pending_losses + 1;
    (* b = -1: the congestion signal is a local loss observation, not
       feedback from an identified core link. *)
    if Sim.Trace.want t.trace Sim.Trace.Feedback_recv then
      Sim.Trace.record t.trace
        ~time:(Sim.Engine.now (Net.Topology.engine t.topology))
        Sim.Trace.Feedback_recv ~a:t.flow.Net.Flow.id ~b:(-1) ~x:0. ~y:0.;
    Net.Source.signal_congestion (source t)
  end
