type flow_spec = { flow : Net.Flow.t; floor : float }

let spec ?(floor = 0.) flow = { flow; floor }

type t = {
  topology : Net.Topology.t;
  agents : (int, Edge.t) Hashtbl.t;
  cores : Core.t list;
  core_links : Net.Link.t list;
  drops_by_flow : (int, int) Hashtbl.t;
  (* The per-link [on_drop] closures read [agents] and [delays], so
     flows added after wiring (churn) become reachable by mutating
     these tables; [params] and [rng] build mid-run agents the same way
     [build] does (mirrors Corelite.Deployment). *)
  delays : (int * int, float) Hashtbl.t;
  params : Params.t;
  rng : Sim.Rng.t;
}

let build ?(attach_cores = true) ~params ~rng ~topology ~flows ~core_links () =
  let agents = Hashtbl.create 32 in
  let epoch = params.Params.source.Net.Source.epoch in
  List.iter
    (fun { flow; floor } ->
      let id = flow.Net.Flow.id in
      if Hashtbl.mem agents id then
        invalid_arg (Printf.sprintf "Csfq.Deployment.build: duplicate flow %d" id);
      (* Same timer desynchronization as the Corelite deployment. *)
      let epoch_offset = Sim.Rng.float rng epoch in
      Hashtbl.add agents id (Edge.create ~params ~topology ~flow ~floor ~epoch_offset ()))
    flows;
  let delays : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun { flow; _ } ->
      List.iter
        (fun link ->
          match Net.Flow.upstream_delay flow topology link with
          | Some d -> Hashtbl.replace delays (link.Net.Link.id, flow.Net.Flow.id) d
          | None -> ())
        core_links)
    flows;
  let engine = Net.Topology.engine topology in
  let drops_by_flow : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let cores =
    List.filter_map
      (fun link ->
        (* Only the full CSFQ scheme installs core logic; the "plain"
           variant (DropTail/RED/FRED ablation) keeps the loss
           notification channel but no fair-share filtering. *)
        let core =
          if attach_cores then Some (Core.attach ~params ~rng:(Sim.Rng.split rng) link)
          else None
        in
        (* Any loss on the link is reported to the source after the
           reverse propagation delay; buffer overflows additionally
           shrink the fair-share estimate (CSFQ heuristic). *)
        link.Net.Link.on_drop <-
          Some
            (fun reason pkt ->
              let flow = pkt.Net.Packet.flow in
              Hashtbl.replace drops_by_flow flow
                (1 + Option.value ~default:0 (Hashtbl.find_opt drops_by_flow flow));
              (match (reason, core) with
              | Net.Link.Queue_full, Some core -> Core.note_overflow core
              | ( ( Net.Link.Queue_full | Net.Link.Filtered | Net.Link.Injected
                  | Net.Link.Down ),
                  _ ) -> ());
              match Hashtbl.find_opt agents pkt.Net.Packet.flow with
              | None -> ()
              | Some agent ->
                let delay =
                  Option.value ~default:0.
                    (Hashtbl.find_opt delays (link.Net.Link.id, pkt.Net.Packet.flow))
                in
                ignore
                  (Sim.Engine.schedule engine ~delay (fun () -> Edge.note_loss agent)));
        core)
      core_links
  in
  { topology; agents; cores; core_links; drops_by_flow; delays; params; rng }

let agent t id =
  match Hashtbl.find_opt t.agents id with
  | Some a -> a
  | None -> raise Not_found

let agents t =
  Hashtbl.fold (fun id a acc -> (id, a) :: acc) t.agents []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cores t = t.cores

let start_flow t id = Edge.start (agent t id)

let stop_flow t id = Edge.stop (agent t id)

let start_all t = List.iter (fun (_, a) -> Edge.start a) (agents t)

(* Dynamic flow lifecycle (churn) — same contract as
   Corelite.Deployment: per-flow edge state is created on arrival and
   aged out when silent, every transition is declared to the
   [Sim.Invariant] flow ledger and traced, and loss notifications
   toward a retired agent vanish in [Edge.note_loss]'s [running] guard. *)

let has_flow t id = Hashtbl.mem t.agents id

let live_flows t = Hashtbl.length t.agents

let add_flow t ?(floor = 0.) ?(size = 0) flow =
  let id = flow.Net.Flow.id in
  if Hashtbl.mem t.agents id then
    invalid_arg (Printf.sprintf "Csfq.Deployment.add_flow: duplicate flow %d" id);
  let epoch = t.params.Params.source.Net.Source.epoch in
  let epoch_offset = Sim.Rng.float t.rng epoch in
  let agent = Edge.create ~params:t.params ~topology:t.topology ~flow ~floor ~epoch_offset () in
  Hashtbl.add t.agents id agent;
  List.iter
    (fun link ->
      match Net.Flow.upstream_delay flow t.topology link with
      | Some d -> Hashtbl.replace t.delays (link.Net.Link.id, id) d
      | None -> ())
    t.core_links;
  Sim.Invariant.note_flow_created ();
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  if Sim.Trace.want trace Sim.Trace.Flow_start then
    Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_start
      ~a:id
      ~b:(Net.Flow.ingress flow).Net.Node.id
      ~x:flow.Net.Flow.weight ~y:(float_of_int size);
  Edge.start agent;
  agent

let retire t id agent ~kind ~idle =
  Edge.stop agent;
  Hashtbl.remove t.agents id;
  List.iter
    (fun link -> Hashtbl.remove t.delays (link.Net.Link.id, id))
    t.core_links;
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  match kind with
  | `End ->
    Sim.Invariant.note_flow_retired ();
    if Sim.Trace.want trace Sim.Trace.Flow_end then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_end
        ~a:id ~b:0
        ~x:(float_of_int (Edge.sent agent))
        ~y:(float_of_int (Edge.delivered agent))
  | `Expire ->
    Sim.Invariant.note_flow_expired ();
    if Sim.Trace.want trace Sim.Trace.Flow_expire then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_expire
        ~a:id ~b:0 ~x:idle ~y:0.

let end_flow t id =
  match Hashtbl.find_opt t.agents id with
  | None ->
    invalid_arg (Printf.sprintf "Csfq.Deployment.end_flow: unknown flow %d" id)
  | Some agent -> retire t id agent ~kind:`End ~idle:0.

let expire_idle t ~timeout =
  if timeout <= 0. then
    invalid_arg "Csfq.Deployment.expire_idle: timeout must be positive";
  let now = Sim.Engine.now (Net.Topology.engine t.topology) in
  let stale =
    Hashtbl.fold
      (fun id agent acc ->
        let idle = now -. Edge.last_activity agent in
        if idle >= timeout then (id, agent, idle) :: acc else acc)
      t.agents []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iter (fun (id, agent, idle) -> retire t id agent ~kind:`Expire ~idle) stale;
  List.length stale

let total_drops t =
  List.fold_left (fun acc link -> acc + link.Net.Link.drops) 0 t.core_links

let drops_of_flow t id = Option.value ~default:0 (Hashtbl.find_opt t.drops_by_flow id)
