type flow_spec = { flow : Net.Flow.t; floor : float }

let spec ?(floor = 0.) flow = { flow; floor }

type t = {
  agents : (int, Edge.t) Hashtbl.t;
  cores : Core.t list;
  core_links : Net.Link.t list;
  drops_by_flow : (int, int) Hashtbl.t;
}

let build ?(attach_cores = true) ~params ~rng ~topology ~flows ~core_links () =
  let agents = Hashtbl.create 32 in
  let epoch = params.Params.source.Net.Source.epoch in
  List.iter
    (fun { flow; floor } ->
      let id = flow.Net.Flow.id in
      if Hashtbl.mem agents id then
        invalid_arg (Printf.sprintf "Csfq.Deployment.build: duplicate flow %d" id);
      (* Same timer desynchronization as the Corelite deployment. *)
      let epoch_offset = Sim.Rng.float rng epoch in
      Hashtbl.add agents id (Edge.create ~params ~topology ~flow ~floor ~epoch_offset ()))
    flows;
  let delays : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun { flow; _ } ->
      List.iter
        (fun link ->
          match Net.Flow.upstream_delay flow topology link with
          | Some d -> Hashtbl.replace delays (link.Net.Link.id, flow.Net.Flow.id) d
          | None -> ())
        core_links)
    flows;
  let engine = Net.Topology.engine topology in
  let drops_by_flow : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let cores =
    List.filter_map
      (fun link ->
        (* Only the full CSFQ scheme installs core logic; the "plain"
           variant (DropTail/RED/FRED ablation) keeps the loss
           notification channel but no fair-share filtering. *)
        let core =
          if attach_cores then Some (Core.attach ~params ~rng:(Sim.Rng.split rng) link)
          else None
        in
        (* Any loss on the link is reported to the source after the
           reverse propagation delay; buffer overflows additionally
           shrink the fair-share estimate (CSFQ heuristic). *)
        link.Net.Link.on_drop <-
          Some
            (fun reason pkt ->
              let flow = pkt.Net.Packet.flow in
              Hashtbl.replace drops_by_flow flow
                (1 + Option.value ~default:0 (Hashtbl.find_opt drops_by_flow flow));
              (match (reason, core) with
              | Net.Link.Queue_full, Some core -> Core.note_overflow core
              | ( ( Net.Link.Queue_full | Net.Link.Filtered | Net.Link.Injected
                  | Net.Link.Down ),
                  _ ) -> ());
              match Hashtbl.find_opt agents pkt.Net.Packet.flow with
              | None -> ()
              | Some agent ->
                let delay =
                  Option.value ~default:0.
                    (Hashtbl.find_opt delays (link.Net.Link.id, pkt.Net.Packet.flow))
                in
                ignore
                  (Sim.Engine.schedule engine ~delay (fun () -> Edge.note_loss agent)));
        core)
      core_links
  in
  { agents; cores; core_links; drops_by_flow }

let agent t id =
  match Hashtbl.find_opt t.agents id with
  | Some a -> a
  | None -> raise Not_found

let agents t =
  Hashtbl.fold (fun id a acc -> (id, a) :: acc) t.agents []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cores t = t.cores

let start_flow t id = Edge.start (agent t id)

let stop_flow t id = Edge.stop (agent t id)

let start_all t = List.iter (fun (_, a) -> Edge.start a) (agents t)

let total_drops t =
  List.fold_left (fun acc link -> acc + link.Net.Link.drops) 0 t.core_links

let drops_of_flow t id = Option.value ~default:0 (Hashtbl.find_opt t.drops_by_flow id)
