type flow_spec = { flow : Net.Flow.t; floor : float }

let spec ?(floor = 0.) flow = { flow; floor }

type t = {
  topology : Net.Topology.t;
  agents : Edge.t Net.Flowtable.t;
  cores : Core.t list;
  core_links : Net.Link.t list;
  is_core : bool array;  (* link id -> policed *)
  drops_by_flow : Net.Flowtable.Count.t;
  (* The per-link [on_drop] closures read [agents] and [delays], so
     flows added after wiring (churn) become reachable by mutating
     these tables; [params] and [rng] build mid-run agents the same way
     [build] does (mirrors Corelite.Deployment). *)
  delays : (int * int, float) Hashtbl.t;
  params : Params.t;
  rng : Sim.Rng.t;
}

let core_membership core_links =
  let top = List.fold_left (fun acc l -> Stdlib.max acc l.Net.Link.id) (-1) core_links in
  let is_core = Array.make (top + 1) false in
  List.iter (fun l -> is_core.(l.Net.Link.id) <- true) core_links;
  is_core

(* One walk down the flow's own path — O(path length), not
   O(core links); see Corelite.Deployment. *)
let register_delays ~topology ~is_core ~delays flow =
  let acc = ref 0. in
  List.iter
    (fun link ->
      let lid = link.Net.Link.id in
      if lid < Array.length is_core && is_core.(lid) then
        Hashtbl.replace delays (lid, flow.Net.Flow.id) !acc;
      acc := !acc +. link.Net.Link.delay)
    (Net.Flow.links flow topology)

let unregister_delays ~topology ~is_core ~delays flow =
  List.iter
    (fun link ->
      let lid = link.Net.Link.id in
      if lid < Array.length is_core && is_core.(lid) then
        Hashtbl.remove delays (lid, flow.Net.Flow.id))
    (Net.Flow.links flow topology)

let build ?(attach_cores = true) ~params ~rng ~topology ~flows ~core_links () =
  let agents = Net.Flowtable.create () in
  let epoch = params.Params.source.Net.Source.epoch in
  List.iter
    (fun { flow; floor } ->
      let id = flow.Net.Flow.id in
      if Net.Flowtable.mem agents id then
        invalid_arg (Printf.sprintf "Csfq.Deployment.build: duplicate flow %d" id);
      (* Same timer desynchronization as the Corelite deployment. *)
      let epoch_offset = Sim.Rng.float rng epoch in
      Net.Flowtable.add agents id
        (Edge.create ~params ~topology ~flow ~floor ~epoch_offset ()))
    flows;
  let is_core = core_membership core_links in
  let delays : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun { flow; _ } -> register_delays ~topology ~is_core ~delays flow)
    flows;
  let engine = Net.Topology.engine topology in
  let drops_by_flow = Net.Flowtable.Count.create () in
  let cores =
    List.filter_map
      (fun link ->
        (* Only the full CSFQ scheme installs core logic; the "plain"
           variant (DropTail/RED/FRED ablation) keeps the loss
           notification channel but no fair-share filtering. *)
        let core =
          if attach_cores then Some (Core.attach ~params ~rng:(Sim.Rng.split rng) link)
          else None
        in
        (* Any loss on the link is reported to the source after the
           reverse propagation delay; buffer overflows additionally
           shrink the fair-share estimate (CSFQ heuristic). *)
        link.Net.Link.on_drop <-
          Some
            (fun reason pkt ->
              let flow = pkt.Net.Packet.flow in
              Net.Flowtable.Count.incr drops_by_flow flow;
              (match (reason, core) with
              | Net.Link.Queue_full, Some core -> Core.note_overflow core
              | ( ( Net.Link.Queue_full | Net.Link.Filtered | Net.Link.Injected
                  | Net.Link.Down ),
                  _ ) -> ());
              match Net.Flowtable.find agents flow with
              | None -> ()
              | Some agent ->
                let delay =
                  Option.value ~default:0.
                    (Hashtbl.find_opt delays (link.Net.Link.id, flow))
                in
                ignore
                  (Sim.Engine.schedule engine ~delay (fun () -> Edge.note_loss agent)));
        core)
      core_links
  in
  { topology; agents; cores; core_links; is_core; drops_by_flow; delays; params; rng }

let agent t id =
  match Net.Flowtable.find t.agents id with
  | Some a -> a
  | None -> raise Not_found

let agents t = List.rev (Net.Flowtable.fold t.agents (fun id a acc -> (id, a) :: acc) [])

let cores t = t.cores

let start_flow t id = Edge.start (agent t id)

let stop_flow t id = Edge.stop (agent t id)

let start_all t = Net.Flowtable.iter t.agents (fun _ a -> Edge.start a)

(* Dynamic flow lifecycle (churn) — same contract as
   Corelite.Deployment: per-flow edge state is created on arrival and
   aged out when silent, every transition is declared to the
   [Sim.Invariant] flow ledger and traced, and loss notifications
   toward a retired agent vanish in [Edge.note_loss]'s [running] guard. *)

let has_flow t id = Net.Flowtable.mem t.agents id

let live_flows t = Net.Flowtable.live t.agents

let add_flow t ?(floor = 0.) ?(size = 0) flow =
  let id = flow.Net.Flow.id in
  if Net.Flowtable.mem t.agents id then
    invalid_arg (Printf.sprintf "Csfq.Deployment.add_flow: duplicate flow %d" id);
  let epoch = t.params.Params.source.Net.Source.epoch in
  let epoch_offset = Sim.Rng.float t.rng epoch in
  let agent = Edge.create ~params:t.params ~topology:t.topology ~flow ~floor ~epoch_offset () in
  Net.Flowtable.add t.agents id agent;
  register_delays ~topology:t.topology ~is_core:t.is_core ~delays:t.delays flow;
  Sim.Invariant.note_flow_created ();
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  if Sim.Trace.want trace Sim.Trace.Flow_start then
    Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_start
      ~a:id
      ~b:(Net.Flow.ingress flow).Net.Node.id
      ~x:flow.Net.Flow.weight ~y:(float_of_int size);
  Edge.start agent;
  agent

let retire t id agent ~kind ~idle =
  Edge.stop agent;
  Net.Flowtable.remove t.agents id;
  unregister_delays ~topology:t.topology ~is_core:t.is_core ~delays:t.delays
    (Edge.flow agent);
  let engine = Net.Topology.engine t.topology in
  let trace = Sim.Engine.trace engine in
  match kind with
  | `End ->
    Sim.Invariant.note_flow_retired ();
    if Sim.Trace.want trace Sim.Trace.Flow_end then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_end
        ~a:id ~b:0
        ~x:(float_of_int (Edge.sent agent))
        ~y:(float_of_int (Edge.delivered agent))
  | `Expire ->
    Sim.Invariant.note_flow_expired ();
    if Sim.Trace.want trace Sim.Trace.Flow_expire then
      Sim.Trace.record trace ~time:(Sim.Engine.now engine) Sim.Trace.Flow_expire
        ~a:id ~b:0 ~x:idle ~y:0.

let end_flow t id =
  match Net.Flowtable.find t.agents id with
  | None ->
    invalid_arg (Printf.sprintf "Csfq.Deployment.end_flow: unknown flow %d" id)
  | Some agent -> retire t id agent ~kind:`End ~idle:0.

let expire_idle t ~timeout =
  if timeout <= 0. then
    invalid_arg "Csfq.Deployment.expire_idle: timeout must be positive";
  let now = Sim.Engine.now (Net.Topology.engine t.topology) in
  (* Flowtable iteration is ascending flow-id order already. *)
  let stale =
    List.rev
      (Net.Flowtable.fold t.agents
         (fun id agent acc ->
           let idle = now -. Edge.last_activity agent in
           if idle >= timeout then (id, agent, idle) :: acc else acc)
         [])
  in
  List.iter (fun (id, agent, idle) -> retire t id agent ~kind:`Expire ~idle) stale;
  List.length stale

let total_drops t =
  List.fold_left (fun acc link -> acc + link.Net.Link.drops) 0 t.core_links

let drops_of_flow t id = Net.Flowtable.Count.get t.drops_by_flow id
