let log = Logs.Src.create "csfq.core" ~doc:"CSFQ core-router logic"

module Log = (val Logs.src_log log : Logs.LOG)

type t = {
  params : Params.t;
  link : Net.Link.t;
  trace : Sim.Trace.t;
  rng : Sim.Rng.t;
  capacity : float;  (* pkt/s *)
  arrival : Rate_estimator.t;
  accepted : Rate_estimator.t;
  mutable alpha : float option;
  mutable congested : bool;
  mutable window_start : float;
  mutable tmp_alpha : float;  (* max label seen while uncongested *)
  mutable early_drops : int;
}

let link t = t.link

let alpha t = t.alpha

let congested t = t.congested

let arrival_rate t = Rate_estimator.value t.arrival

let accepted_rate t = Rate_estimator.value t.accepted

let early_drops t = t.early_drops

(* Every revision of the fair-share estimate goes through here so the
   trace sees each [Alpha_update] exactly once. *)
let set_alpha t ~now v =
  t.alpha <- Some v;
  if Sim.Trace.want t.trace Sim.Trace.Alpha_update then
    Sim.Trace.record t.trace ~time:now Sim.Trace.Alpha_update
      ~a:t.link.Net.Link.id ~b:0 ~x:v ~y:0.

(* Fair-share update, run on every arrival after the rate estimates
   (SIGCOMM '98 estimate_alpha). *)
let estimate_alpha t ~now ~label =
  let a = Rate_estimator.value t.arrival in
  let f = Rate_estimator.value t.accepted in
  if a >= t.capacity then begin
    if not t.congested then begin
      t.congested <- true;
      t.window_start <- now
    end
    else if now > t.window_start +. t.params.Params.k_link then begin
      (match t.alpha with
      | Some alpha when f > 0. ->
        set_alpha t ~now (alpha *. t.capacity /. f);
        Log.debug (fun m ->
            m "t=%.3f link %s alpha %.2f -> %.2f (A=%.1f F=%.1f)" now
              t.link.Net.Link.name alpha
              (alpha *. t.capacity /. f)
              a f)
      | Some _ -> ()
      | None ->
        (* First congestion before any uncongested window: bootstrap
           from the labels seen so far. *)
        if t.tmp_alpha > 0. then set_alpha t ~now t.tmp_alpha);
      t.window_start <- now
    end
  end
  else begin
    if t.congested then begin
      t.congested <- false;
      t.window_start <- now;
      t.tmp_alpha <- 0.
    end
    else begin
      t.tmp_alpha <- Float.max t.tmp_alpha label;
      if now > t.window_start +. t.params.Params.k_link then begin
        set_alpha t ~now t.tmp_alpha;
        t.window_start <- now;
        t.tmp_alpha <- 0.
      end
    end
  end

let on_arrival t pkt =
  let now = Sim.Engine.now t.link.Net.Link.engine in
  let label = pkt.Net.Packet.label in
  ignore (Rate_estimator.update t.arrival ~now ~amount:1.);
  let drop_probability =
    match t.alpha with
    | Some alpha when label > 0. -> Float.max 0. (1. -. (alpha /. label))
    | Some _ | None -> 0.
  in
  let verdict =
    if Sim.Rng.bernoulli t.rng drop_probability then begin
      t.early_drops <- t.early_drops + 1;
      Net.Link.Drop
    end
    else begin
      ignore (Rate_estimator.update t.accepted ~now ~amount:1.);
      (match t.alpha with
      | Some alpha when label > alpha -> pkt.Net.Packet.label <- alpha
      | Some _ | None -> ());
      Net.Link.Pass
    end
  in
  estimate_alpha t ~now ~label;
  verdict

let note_overflow t =
  match t.alpha with
  | Some alpha ->
    set_alpha t
      ~now:(Sim.Engine.now t.link.Net.Link.engine)
      (alpha *. t.params.Params.overflow_penalty)
  | None -> ()

let attach ~params ~rng link =
  if link.Net.Link.hooks <> None then
    invalid_arg ("Csfq.Core.attach: link " ^ link.Net.Link.name ^ " already has hooks");
  let t =
    {
      params;
      link;
      trace = Sim.Engine.trace link.Net.Link.engine;
      rng;
      capacity = Net.Link.capacity_pps link;
      arrival = Rate_estimator.create ~k:params.Params.k_link;
      accepted = Rate_estimator.create ~k:params.Params.k_link;
      alpha = None;
      congested = false;
      window_start = Sim.Engine.now link.Net.Link.engine;
      tmp_alpha = 0.;
      early_drops = 0;
    }
  in
  link.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival = (fun pkt -> on_arrival t pkt);
        on_queue_change = (fun _ -> ());
      };
  let m = Sim.Engine.metrics link.Net.Link.engine in
  let pfx = "csfq.core." ^ link.Net.Link.name ^ "." in
  Sim.Metrics.probe m (pfx ^ "early_drops")
    ~help:"probabilistic drops against the fair share"
    (fun () -> float_of_int t.early_drops);
  Sim.Metrics.probe m (pfx ^ "alpha")
    ~help:"fair-share estimate, pkt/s; -1 before the first estimate"
    (fun () -> match t.alpha with Some a -> a | None -> -1.);
  t

let detach t = t.link.Net.Link.hooks <- None
