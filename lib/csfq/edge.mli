(** CSFQ edge agent for one flow.

    The ingress edge estimates the flow's arrival rate by exponential
    averaging and stamps each packet's label with the normalized rate
    [r/w] (weighted CSFQ). Rate adaptation mirrors the Corelite agent
    (paper Section 4: "similar rate adaptation schemes"), except that
    the congestion indications are packet {e losses} reported back to
    the source. *)

type t

val create :
  params:Params.t ->
  topology:Net.Topology.t ->
  flow:Net.Flow.t ->
  ?floor:float ->
  ?epoch_offset:float ->
  unit ->
  t

val flow : t -> Net.Flow.t

val start : t -> unit

(** Stop shaping; routes stay installed for in-flight packets. *)
val stop : t -> unit

(** Application backlog control for bursty sources (see
    {!Net.Source.set_active}). *)
val set_backlogged : t -> bool -> unit

val running : t -> bool

(** Current sending rate, pkt/s. *)
val rate : t -> float

(** Report a lost packet of this flow (one congestion indication). *)
val note_loss : t -> unit

val delivered : t -> int

(** Mean end-to-end delay of delivered packets, seconds. *)
val mean_delay : t -> float

(** 99th-percentile end-to-end delay (P2 streaming estimate). *)
val p99_delay : t -> float

val sent : t -> int

(** Simulation time of this agent's most recent packet emission
    (creation time before any packet). Drives soft-state expiry in
    dynamic deployments, mirroring [Corelite.Edge.last_activity]. *)
val last_activity : t -> float

val losses : t -> int

(** Last label stamped on an outgoing packet (normalized pkt/s). *)
val current_label : t -> float
