type point = {
  label : string;
  level : float;
  jain : float;
  goodput : float;
  core_drops : int;
  injected_drops : int;
  stripped_markers : int;
  lost_feedback : int;
  flaps : int;
  feedback : int;
}

let default_fault_seed = 271828

(* Soft-state recovery on: feedback silence is a first-class condition
   in every chaos scenario (markers lost, cores resetting), so the
   edges run with the multiplicative restoration extension armed. The
   fault-free baseline point runs with the same parameters, so the
   degradation curves isolate the faults, not a parameter change —
   the cost is that armed edges probe multiplicatively whenever
   feedback goes quiet, which even fault-free means periodic
   overshoot-and-throttle cycles (visible as the baseline's nonzero
   core_drops; the figure goldens run with recovery off and stay
   lossless). *)
let recovery_params =
  let d = Corelite.Params.default in
  {
    d with
    Corelite.Params.source =
      { d.Corelite.Params.source with Net.Source.silence_epochs = 4; restore = 2. };
  }

(* One chaos run: the Figure 5 workload (flows 1-10 of the paper's
   topology, all backlogged from t=0) with a fault plan injected.
   [quick] shortens the run for smoke tests; the measurement window is
   always the last 3/8 of the run, matching the 50-80 s window the
   fault-free sweeps measure on an 80 s run. *)
let run_point ?(seed = 42) ?(quick = false) ~label ~plan_of () =
  let duration = if quick then 32. else 80. in
  let from = duration *. 5. /. 8. in
  let engine = Sim.Engine.create () in
  let network =
    Network.topology1 ~engine
      ~flow_ids:(List.init 10 (fun i -> i + 1))
      ~weights:Figures.weights_s42 ()
  in
  let level, plan = plan_of ~network ~duration in
  let schedule = List.init 10 (fun i -> (0., Runner.Start (i + 1))) in
  let result =
    Runner.run ~scheme:(Runner.Corelite recovery_params) ~network ~seed ~fault:plan
      ~schedule ~duration ()
  in
  let ids = List.init 10 (fun i -> i + 1) in
  let goodput =
    List.fold_left
      (fun acc id ->
        let ts = List.assoc id result.Runner.goodput_series in
        acc +. Option.value ~default:0. (Sim.Timeseries.window_mean ts ~from ~until:duration))
      0. ids
  in
  let stats =
    Option.value
      ~default:
        { Runner.injected_drops = 0; stripped_markers = 0; lost_feedback = 0; flaps = 0 }
      result.Runner.fault
  in
  {
    label;
    level;
    jain = Runner.jain result ~from ~until:duration;
    goodput;
    core_drops = result.Runner.core_drops;
    injected_drops = stats.Runner.injected_drops;
    stripped_markers = stats.Runner.stripped_markers;
    lost_feedback = stats.Runner.lost_feedback;
    flaps = stats.Runner.flaps;
    feedback = result.Runner.feedback_markers;
  }

let point_job ?seed ?quick ~label plan_of =
  Pool.job ~id:label (fun () -> run_point ?seed ?quick ~label ~plan_of ())

(* --- the battery ------------------------------------------------- *)

(* Uniform marker loss: every core link corrupts the piggybacked
   marker of each passing packet with probability [p] (the payload
   survives — pure control-plane loss) and suppresses each feedback
   marker with the same probability. [p = 0] is the fault-free
   baseline the degradation curve is normalized against. *)
let marker_loss_jobs ?seed ?quick ~fault_seed () =
  List.map
    (fun p ->
      let label = Printf.sprintf "marker_loss=%g" p in
      point_job ?seed ?quick ~label (fun ~network ~duration:_ ->
          let link_faults =
            if Sim.Floats.is_zero ~tolerance:0. p then []
            else
              List.map
                (fun link ->
                  Sim.Faultplan.link_fault
                    ~loss:(Sim.Faultplan.Bernoulli p)
                    ~target:Sim.Faultplan.Markers_only ~feedback_loss:p
                    link.Net.Link.name)
                network.Network.core_links
          in
          (p, Sim.Faultplan.make ~label ~seed:fault_seed ~link_faults ())))
    [ 0.; 0.02; 0.05; 0.1; 0.2; 0.4 ]

(* Bursty data-path loss: a Gilbert-Elliott channel on every core link
   destroying whole packets (markers included) while in the bad state.
   The level is the bad-state loss probability; dwell times (mean 2.5 s
   bad, 50 s good at the 0.1 s epoch scale) stress the epoch-averaged
   estimators far more than uniform loss of equal mean. *)
let burst_loss_jobs ?seed ?quick ~fault_seed () =
  List.map
    (fun loss_bad ->
      let label = Printf.sprintf "burst_loss=%g" loss_bad in
      point_job ?seed ?quick ~label (fun ~network ~duration:_ ->
          let link_faults =
            List.map
              (fun link ->
                Sim.Faultplan.link_fault
                  ~loss:
                    (Sim.Faultplan.Gilbert_elliott
                       {
                         p_good_bad = 0.0005;
                         p_bad_good = 0.01;
                         loss_good = 0.;
                         loss_bad;
                       })
                  ~target:Sim.Faultplan.All_packets link.Net.Link.name)
              network.Network.core_links
          in
          (loss_bad, Sim.Faultplan.make ~label ~seed:fault_seed ~link_faults ())))
    [ 0.05; 0.2; 0.5 ]

(* Link flaps: the middle core link (C2->C3) goes down for [down_for]
   seconds periodically. The level is the flap period in (scaled)
   seconds — shorter period, more outages per run. *)
let flap_jobs ?seed ?quick ~fault_seed () =
  List.map
    (fun period_frac ->
      let label = Printf.sprintf "flap_period=%g" period_frac in
      point_job ?seed ?quick ~label (fun ~network:_ ~duration ->
          let period = duration *. period_frac in
          let first = duration /. 4. in
          let count = int_of_float ((duration -. first) /. period) in
          let flaps =
            Sim.Faultplan.flap_train ~first ~period ~down_for:(duration /. 40.) ~count
          in
          ( period_frac,
            Sim.Faultplan.make ~label ~seed:fault_seed
              ~link_faults:[ Sim.Faultplan.link_fault ~flaps "C2->C3" ]
              () )))
    [ 0.5; 0.25; 0.125 ]

(* Router resets: cores C1->C2 and C2->C3 reboot periodically, losing
   queue contents and all Corelite soft state; one point also wipes
   edge agents mid-run. The level is the reset period fraction. *)
let reset_jobs ?seed ?quick ~fault_seed () =
  let core_resets period_frac =
    let label = Printf.sprintf "reset_period=%g" period_frac in
    point_job ?seed ?quick ~label (fun ~network:_ ~duration ->
        let period = duration *. period_frac in
        let first = duration /. 4. in
        let count = int_of_float ((duration -. first) /. period) in
        let resets =
          List.concat_map
            (fun i ->
              let at = first +. (float_of_int i *. period) in
              [
                Sim.Faultplan.reset ~at (Sim.Faultplan.Core_router "C1->C2");
                Sim.Faultplan.reset
                  ~at:(at +. (period /. 2.))
                  (Sim.Faultplan.Core_router "C2->C3");
              ])
            (List.init count (fun i -> i))
        in
        (period_frac, Sim.Faultplan.make ~label ~seed:fault_seed ~resets ()))
  in
  let edge_resets =
    point_job ?seed ?quick ~label:"reset_edges" (fun ~network:_ ~duration ->
        let resets =
          List.map
            (fun flow -> Sim.Faultplan.reset ~at:(duration /. 2.) (Sim.Faultplan.Edge_agent flow))
            [ 1; 6; 9 ]
        in
        (0., Sim.Faultplan.make ~label:"reset_edges" ~seed:fault_seed ~resets ()))
  in
  List.map core_resets [ 0.5; 0.25 ] @ [ edge_resets ]

let jobs ?seed ?quick ?(fault_seed = default_fault_seed) () =
  [
    ("marker loss", marker_loss_jobs ?seed ?quick ~fault_seed ());
    ("bursty loss (Gilbert-Elliott)", burst_loss_jobs ?seed ?quick ~fault_seed ());
    ("link flaps", flap_jobs ?seed ?quick ~fault_seed ());
    ("router resets", reset_jobs ?seed ?quick ~fault_seed ());
  ]

let force js = List.map (fun j -> j.Pool.run ()) js

let all ?seed ?quick ?fault_seed () =
  List.map (fun (name, js) -> (name, force js)) (jobs ?seed ?quick ?fault_seed ())

let all_parallel ?domains ?seed ?quick ?fault_seed () =
  (* One flat batch so workers steal across group boundaries (the
     GE points run much longer than the baseline), re-chunked in
     submission order — the same shape as Sweeps.all_parallel. *)
  let groups = jobs ?seed ?quick ?fault_seed () in
  let flat = List.concat_map snd groups in
  let results = ref (Pool.map ?domains flat) in
  List.map
    (fun (name, js) ->
      let k = List.length js in
      let rec take n acc rest =
        if n = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> invalid_arg "Chaos.all_parallel: result count mismatch"
          | r :: rest -> take (n - 1) (r :: acc) rest
      in
      let points, rest = take k [] !results in
      results := rest;
      (name, points))
    groups

(* CSV render of the whole battery — the byte-level currency of the
   serial-vs-parallel and run-to-run determinism checks, and the body
   of results/BENCH_chaos tables. *)
let csv_of_points points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "label,level,jain,goodput,core_drops,injected_drops,stripped_markers,lost_feedback,flaps,feedback\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%g,%.6f,%.3f,%d,%d,%d,%d,%d,%d\n" p.label p.level p.jain
           p.goodput p.core_drops p.injected_drops p.stripped_markers p.lost_feedback
           p.flaps p.feedback))
    points;
  Buffer.contents buf

let csv_of_groups groups =
  String.concat "" (List.map (fun (_, points) -> csv_of_points points) groups)

let pp_points ppf (name, points) =
  Format.fprintf ppf "@[<v>-- chaos: %s@," name;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "   %-18s jain=%.4f goodput=%7.1f drops=%5d injected=%6d stripped=%6d \
         fb_lost=%5d flaps=%2d@,"
        p.label p.jain p.goodput p.core_drops p.injected_drops p.stripped_markers
        p.lost_feedback p.flaps)
    points;
  Format.fprintf ppf "@]"
