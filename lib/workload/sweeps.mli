(** Sensitivity and ablation sweeps.

    The paper (Section 4.4) reports that Corelite "is not very
    sensitive" to the core epoch size, the marking threshold, or large
    channel latencies, without showing the data. These sweeps
    regenerate that claim, and additionally probe every constant the
    paper leaves unspecified (cubic coefficient [k], marker cache size,
    selector variant, [pw] cap, edge adaptation epoch).

    Each sweep runs the Figure 5 workload (10 flows, weights ceil(i/2),
    simultaneous start, 80 s) with one dimension varied and reports
    steady-state fairness, error against the max-min reference, drops,
    and convergence time. *)

type point = {
  label : string;  (** e.g. "core_epoch=0.05" *)
  jain : float;  (** steady-state Jain index (window [50, 80] s) *)
  mean_error : float;  (** mean relative error vs max-min reference *)
  core_drops : int;
  convergence : float option;
  feedback : int;
  mean_delay : float;  (** mean end-to-end delay across flows, seconds *)
}

(** Run the Figure 5 workload with the given Corelite parameters.
    [delay] overrides the link propagation delay (latency sweep);
    [seed] defaults to 42. *)
val run_point :
  ?seed:int -> ?delay:float -> label:string -> Corelite.Params.t -> point

val core_epoch : unit -> point list
(** 25, 50, 100, 200, 400 ms congestion-detection epochs. *)

val qthresh : unit -> point list
(** Marking thresholds 2, 4, 8, 16, 24 packets. *)

val k1 : unit -> point list
(** Marker spacing constants 0.5, 1, 2, 4. *)

val latency : unit -> point list
(** Link propagation delays 2, 10, 40, 80 ms. *)

val k_correction : unit -> point list
(** Cubic self-correction coefficients 0, 0.001, 0.005, 0.02, 0.1 —
    including the paper's [k = 0] case whose feedback is too weak. *)

val estimator : unit -> point list
(** Congestion estimator ablation: the paper's M/M/1 + cubic budget vs
    a plain linear-excess controller vs an EWMA-threshold (RED-like)
    controller — the "can be replaced" claim of Section 3.1. *)

val cache_size : unit -> point list
(** Marker cache capacities 16 .. 2048 under the Cache selector
    (answers the paper's "how big does the marker cache need to be"). *)

val selector : unit -> point list
(** Cache vs stateless selective feedback (paper Sections 2 vs 3.2). *)

val pw_cap : unit -> point list
(** Stateless feedback budget caps 0.5, 1, 2, 4. *)

val rav_gain : unit -> point list
(** EWMA gains for the running normalized-rate average (unspecified in
    the paper). *)

val wav_gain : unit -> point list
(** EWMA gains for the markers-per-epoch average (unspecified in the
    paper). *)

val edge_epoch : unit -> point list
(** Edge adaptation epochs 0.1, 0.25, 0.5, 1.0 s. *)

val qdisc : unit -> point list
(** Related-work comparison (Section 5): Corelite and CSFQ against
    plain loss-driven sources over DropTail, RED and FRED queues. *)

val burst : unit -> point list
(** Bursty sources: half the flows turn exponential on/off while the
    rest stay backlogged; fairness metrics are computed over all flows
    (the bursty ones claim less, so the headline number is the drops
    and the backlogged flows' stability across selectors). *)

val all : unit -> (string * point list) list

(** Every sweep group as pool jobs (job id = point label), in the same
    order [all] evaluates them. The closures are self-contained: each
    builds its own engine and RNG, so they are safe to shard across
    domains. *)
val jobs : unit -> (string * point Pool.job list) list

(** [all_parallel ~domains ()] is observationally [all ()]: the whole
    grid is flattened into one batch for {!Pool.map} (workers steal
    across group boundaries) and the results re-chunked per group in
    submission order. *)
val all_parallel : ?domains:int -> unit -> (string * point list) list

val pp_points : Format.formatter -> string * point list -> unit
