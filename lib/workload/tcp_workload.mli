(** TCP micro-flows inside shaped edge-to-edge aggregates.

    Builds, for every flow of a {!Network.t}, a {!Corelite.Aggregate}
    carrying a configurable number of TCP bulk transfers: senders
    submit segments at the ingress edge; the aggregate shapes them at
    the Corelite allowed rate; receivers at the egress return
    cumulative ACKs over the reverse-path propagation delay. The
    paper's ongoing-work question — how end-host TCP interacts with
    the edge router — becomes measurable: per-aggregate weighted
    fairness and per-micro-flow goodput within each aggregate. *)

type t

(** [build ~network ~micro_flows ()] creates one aggregate per network
    flow and [micro_flows flow_id] TCP connections inside each.
    Corelite core logic is attached to the network's core links. *)
val build :
  ?params:Corelite.Params.t ->
  ?tcp_params:Net.Tcp.params ->
  ?seed:int ->
  ?queue_capacity:int ->
  network:Network.t ->
  micro_flows:(int -> int) ->
  unit ->
  t

(** Start every aggregate and every TCP sender. *)
val start : t -> unit

val stop : t -> unit

val aggregate : t -> int -> Corelite.Aggregate.t

(** The underlying Corelite deployment carrying the aggregates. *)
val deployment : t -> Corelite.Deployment.t
(** @raise Not_found for an unknown flow id. *)

(** In-order segments delivered to a micro-flow's receiver. *)
val goodput : t -> flow:int -> micro:int -> int

(** Per-aggregate totals: (flow id, sum of micro-flow goodputs). *)
val aggregate_goodputs : t -> (int * int) list

(** TCP senders' retransmission totals across the whole run. *)
val total_retransmits : t -> int

(** Packets dropped at ingress edge queues (edge policing of TCP
    bursts). *)
val total_edge_drops : t -> int

(** Weighted fairness (Jain index) of the aggregate goodputs measured
    over the whole run. *)
val jain : t -> float
