(** Scenario definitions for every figure of the paper's evaluation
    (Section 4), plus summary computation against the weighted max-min
    reference.

    - Figures 3/4: 20 flows on Topology 1 (Section 4.1 weights); flows
      1, 9, 10, 11, 16 live only in [250, 500) s; the rest in
      [0, 750) s; run for 800 s. Figure 3 plots the allowed rates,
      Figure 4 the cumulative service of the same run.
    - Figures 5/6: 10 flows, weight ceil(i/2), all starting at t = 0,
      80 s — Corelite vs weighted CSFQ startup behaviour.
    - Figures 7/8: 20 flows (Section 4.3 weights) starting 1 s apart,
      80 s.
    - Figures 9/10: same, but each flow stops after a 60 s life and
      restarts 5 s later — churn behaviour, 160 s. *)

(** A steady-state measurement window and the flows active in it. *)
type phase = {
  label : string;
  from_t : float;
  until_t : float;
  active : int list;
}

type spec = {
  id : string;  (** e.g. "fig3" *)
  title : string;
  scheme : Runner.scheme;
  make_network : engine:Sim.Engine.t -> Network.t;
  schedule : (float * Runner.action) list;
  duration : float;
  phases : phase list;
  conv_tolerance : float;
      (** relative band for the convergence metric; wider for the
          staggered/churn scenarios whose weight-1 flows oscillate with
          a larger relative amplitude *)
}

val fig3 : unit -> spec

val fig4 : unit -> spec
(** Same run as {!fig3}; consumers read [result.cumulative]. *)

val fig5 : unit -> spec

val fig6 : unit -> spec

val fig7 : unit -> spec

val fig8 : unit -> spec

val fig9 : unit -> spec

val fig10 : unit -> spec

val all : unit -> spec list

(** Build the network, play the schedule, return the series. [trace]
    and [metrics] arm the run's engine as in {!Runner.run}; export from
    [result.network.engine] afterwards. *)
val run : ?seed:int -> ?trace:Sim.Trace.spec -> ?metrics:bool -> spec -> Runner.result

(** The same run packaged as a pool job (id = [spec.id]). The figure
    keeps its historical RNG derivation — [Sim.Rng.create seed] — so
    pooled regeneration is bit-identical to the serial tables already
    published in EXPERIMENTS.md. Each job builds its own engine, so
    per-scenario traces never mix whether the pool runs jobs serially
    or across domains. *)
val job :
  ?seed:int -> ?trace:Sim.Trace.spec -> ?metrics:bool -> spec -> Runner.result Pool.job

(** [run_all ~domains specs] runs the specs through {!Pool.map} and
    pairs each with its result, in submission order. *)
val run_all :
  ?domains:int ->
  ?seed:int ->
  ?trace:Sim.Trace.spec ->
  ?metrics:bool ->
  spec list ->
  (spec * Runner.result) list

type flow_row = {
  flow : int;
  weight : float;
  measured : float;  (** mean allowed rate over the phase window *)
  expected : float;  (** weighted max-min reference *)
}

type phase_summary = {
  phase : phase;
  rows : flow_row list;
  jain : float;  (** on allowed/sending rates *)
  mean_error : float;  (** mean relative error vs the reference *)
  goodput_jain : float;  (** on delivered rates — the honest metric for
                             loss-based schemes whose sending rates
                             overshoot *)
  goodput_error : float;
}

type summary = {
  spec_id : string;
  title : string;
  scheme : string;
  phase_summaries : phase_summary list;
  core_drops : int;
  feedback_markers : int;
  early_drops : int;
  convergence : float option;
      (** earliest time from which every flow of the first phase stays
          within the spec's tolerance of its reference for 5 s
          (computed on 5 s-smoothed rates) *)
}

val summarize : spec -> Runner.result -> summary

(** [restart_recovery result ~flow ~restart_at ~target ~fraction] is
    the time after [restart_at] until the flow's (3 s-smoothed) allowed
    rate first reaches [fraction * target] — how quickly a restarted
    flow regains its share (Figures 9/10 discussion). *)
val restart_recovery :
  Runner.result ->
  flow:int ->
  restart_at:float ->
  target:float ->
  fraction:float ->
  float option

val pp_summary : Format.formatter -> summary -> unit

(** The Section 4.1 weight assignment (flows 5, 15 -> 3; flows 1, 11,
    16 -> 1; others -> 2) — exposed for tests. *)
val weights_s41 : int -> float

(** The Section 4.3 weight assignment (adds flow 10 -> 3). *)
val weights_s43 : int -> float

(** The Section 4.2 weight assignment for 10 flows: ceil(i/2). *)
val weights_s42 : int -> float
