type stats = {
  mean : float;
  stddev : float;
  min : float;
  max : float;
  runs : int;
}

let replicate ~seeds metric =
  if seeds = [] then invalid_arg "Replication.replicate: no seeds";
  let welford = Sim.Stats.Welford.create () in
  let values = List.map metric seeds in
  List.iter (Sim.Stats.Welford.add welford) values;
  {
    mean = Sim.Stats.Welford.mean welford;
    stddev = Sim.Stats.Welford.stddev welford;
    min = List.fold_left Float.min infinity values;
    max = List.fold_left Float.max neg_infinity values;
    runs = List.length values;
  }

type figure_stats = {
  jain : stats;
  drops : stats;
  convergence : stats;
}

let replicate_figure ?domains ~seeds (spec : Figures.spec) =
  (* One run per seed, three metrics each: run once and memoize. The
     per-seed runs are independent, so they shard across the pool; the
     job closure is byte-identical to the serial path. *)
  let jobs =
    List.map
      (fun seed ->
        Pool.job
          ~id:(Printf.sprintf "%s/seed=%d" spec.Figures.id seed)
          (fun () ->
            let result = Figures.run ~seed spec in
            Figures.summarize spec result))
      seeds
  in
  let summaries = List.combine seeds (Pool.map ?domains jobs) in
  let metric f = replicate ~seeds (fun seed -> f (List.assoc seed summaries)) in
  {
    jain =
      metric (fun s ->
          match List.rev s.Figures.phase_summaries with
          | last :: _ -> last.Figures.jain
          | [] -> 1.);
    drops = metric (fun s -> float_of_int s.Figures.core_drops);
    convergence =
      metric (fun s ->
          match s.Figures.convergence with
          | Some t -> t
          | None -> spec.Figures.duration);
  }

let pp_stats ppf s =
  Format.fprintf ppf "%.3f +- %.3f (min %.3f, max %.3f, n=%d)" s.mean s.stddev s.min
    s.max s.runs
