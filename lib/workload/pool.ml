(* The one module allowed to spawn domains (lint rule L1). Determinism
   does not come from the scheduler — job placement is racy by design —
   but from every job being closed over its own engine and RNG stream,
   so the payload array is the same whatever the interleaving. *)

type 'a job = { id : string; run : unit -> 'a }

let job ~id run = { id; run }

let default_domains () = Domain.recommended_domain_count ()

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

let run_serial jobs = List.map (fun j -> j.run ()) jobs

let map ?domains jobs =
  let n = List.length jobs in
  let requested = match domains with Some d -> d | None -> default_domains () in
  let workers = Stdlib.min requested n in
  if workers <= 1 then run_serial jobs
  else begin
    let jobs = Array.of_list jobs in
    let results = Array.make n None in
    (* Work stealing off one shared sequence: the atomic cursor is the
       deque head and every idle worker (the coordinator included)
       claims the next pending job. Claimed indices are distinct, so
       each result slot has exactly one writer; Domain.join publishes
       the writes to the coordinator. *)
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let outcome =
            try Value (jobs.(i).run ())
            with e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some outcome;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.mapi (fun i r ->
           match r with
           | Some (Value v) -> v
           | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None ->
             (* Unreachable: the cursor hands out every index and workers
                store an outcome before moving on. *)
             invalid_arg
               (Printf.sprintf "Pool.map: job %d (%s) produced no result" i
                  jobs.(i).id))
  end

type 'a scenario = {
  label : string;
  scenario : engine:Sim.Engine.t -> rng:Sim.Rng.t -> 'a;
}

let run_scenarios ?domains ~seed scenarios =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.label then
        invalid_arg
          ("Pool.run_scenarios: duplicate scenario label " ^ s.label
         ^ " (labels derive RNG streams and must be unique)");
      Hashtbl.replace seen s.label ())
    scenarios;
  (* One engine per worker, reset between jobs. The domain-local key
     gives the spawned workers (and the coordinator) their own engine
     without threading state through [map]'s job type. *)
  let engine_key = Domain.DLS.new_key (fun () -> Sim.Engine.create ()) in
  let to_job s =
    job ~id:s.label (fun () ->
        let engine = Domain.DLS.get engine_key in
        Sim.Engine.reset engine;
        s.scenario ~engine ~rng:(Sim.Rng.scenario ~seed ~id:s.label))
  in
  map ?domains (List.map to_job scenarios)
