(* CLEF-style adversarial heavy hitter (see PAPERS.md): an unresponsive
   sender that bursts at a high peak rate for a [duty] fraction of each
   [period], sized so its *average* rate sits just below a detection
   threshold. The labels it advertises are honest but smoothed — a
   CSFQ-style exponential rate estimate lags far below the peak during
   a burst, and the Corelite marker advertises the long-run average —
   which is precisely the blind spot of estimation-based policing that
   windowed (multi-timescale) fairness metrics are meant to expose. *)

type t = {
  timer : Sim.Engine.handle;
  peak : float;
  duty : float;
  sent : int ref;
  delivered : int ref;
}

let attach ~network ~flow ~peak ~duty ~period ?(corelite_markers = false) () =
  if not (Float.is_finite peak && peak > 0.) then
    invalid_arg "Adversary.attach: peak must be positive";
  if not (duty > 0. && duty <= 1.) then
    invalid_arg "Adversary.attach: duty must lie in (0, 1]";
  if not (Float.is_finite period && period > 0.) then
    invalid_arg "Adversary.attach: period must be positive";
  let engine = network.Network.engine in
  let flow_record = Network.flow network flow in
  let delivered = ref 0 in
  Net.Topology.install_path network.Network.topology ~flow
    flow_record.Net.Flow.path ~sink:(fun _ -> incr delivered);
  let estimator = Csfq.Rate_estimator.create ~k:0.1 in
  let weight = flow_record.Net.Flow.weight in
  (* The marker advertises the long-run average — under the threshold —
     never the burst peak. *)
  let advertised = peak *. duty /. weight in
  let seq = ref 0 in
  let sent = ref 0 in
  let start_time = Sim.Engine.now engine in
  let emit () =
    let now = Sim.Engine.now engine in
    (* Burst gate: send only during the leading [duty] fraction of the
       current cycle; the pacing timer keeps ticking at the peak rate
       and the off-phase ticks fall through. *)
    let phase = Float.rem (now -. start_time) period in
    if phase < duty *. period then begin
      incr seq;
      let estimate = Csfq.Rate_estimator.update estimator ~now ~amount:1. in
      let marker =
        if corelite_markers then
          Some
            {
              Net.Packet.edge_id = (Net.Flow.ingress flow_record).Net.Node.id;
              flow_id = flow;
              normalized_rate = advertised;
            }
        else None
      in
      let pkt = Net.Packet.make ~id:!seq ~flow ?marker ~created:now () in
      pkt.Net.Packet.label <- estimate /. weight;
      incr sent;
      Net.Node.receive (Net.Flow.ingress flow_record) pkt
    end
  in
  let timer = Sim.Engine.every engine ~period:(1. /. peak) emit in
  { timer; peak; duty; sent; delivered }

let stop t = Sim.Engine.cancel t.timer

let sent t = !(t.sent)

let delivered t = !(t.delivered)

let average_rate t = t.peak *. t.duty

let peak_rate t = t.peak
