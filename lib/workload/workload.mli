(** The evaluation layer: networks, scenarios, runners and analyses.

    {!Network} builds the paper's Topology 1, generic chains, single
    bottlenecks and random graphs; {!Runner} executes a start/stop
    schedule under a scheme (Corelite, weighted CSFQ, or plain
    loss-driven sources) and samples the series the figures plot;
    {!Figures} encodes Figures 3-10 of the paper with their
    measurement phases and references; {!Sweeps} the sensitivity and
    ablation grid; {!Chaos} the fault-injection battery (loss, flaps,
    router resets); {!Replication} multi-seed statistics; {!Blaster}
    unresponsive stress sources; {!Tcp_workload} TCP micro-flows in
    shaped aggregates; {!Tcp_direct} raw TCP over each core discipline;
    {!Multi_cloud} inter-domain chaining;
    {!Scenario_file} a small text DSL; {!Csv} series export;
    {!Pool} the parallel deterministic scenario executor;
    {!Scale} the streaming harness over generated {!Topo} graphs. *)

module Pool = Pool
module Network = Network
module Runner = Runner
module Figures = Figures
module Sweeps = Sweeps
module Chaos = Chaos
module Replication = Replication
module Blaster = Blaster
module Tcp_workload = Tcp_workload
module Tcp_direct = Tcp_direct
module Multi_cloud = Multi_cloud
module Scenario_file = Scenario_file
module Csv = Csv
module Arrivals = Arrivals
module Adversary = Adversary
module Churn = Churn
module Scale = Scale
