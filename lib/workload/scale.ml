(* Streaming scale harness: run a scheme over a generated topology at
   10^3..10^6 flows keeping only O(flows) integer counters — no
   per-flow timeseries, no per-flow metric probes. *)

type scheme = Corelite | Csfq | Drr

let scheme_name = function Corelite -> "corelite" | Csfq -> "csfq" | Drr -> "drr"

type graph_spec = Fattree of int | As_graph of { nodes : int; m : int }

let graph_name = function
  | Fattree k -> Printf.sprintf "fattree-k%d" k
  | As_graph { nodes; m } -> Printf.sprintf "as-n%d-m%d" nodes m

type result = {
  label : string;
  scheme : scheme;
  graph : graph_spec;
  n_nodes : int;
  n_links : int;
  n_hosts : int;
  n_flows : int;
  duration : float;
  measure_from : float;
  events : int;
  sent : int;
  delivered : int;
  drops : int;
  ended_early : int;
  live_at_end : int;
  mean_rate : float;
  jain_weighted : float;
  jain_vs_reference : float option;
  csv : string option;
}

(* The adaptation loop must settle near per-unit-weight shares of a few
   pkt/s (hundreds of flows share each 500 pkt/s link), so the paper's
   alpha = beta = 1 pkt/s steps — tuned for 30..160 pkt/s shares —
   oscillate across the whole share. Scale runs default to gentler
   steps and an earlier slow-start exit. *)
let default_source =
  { Net.Source.default_params with alpha = 0.25; beta = 0.25; ss_thresh = 8. }

(* Uniform lifecycle facade over the two deployment implementations
   (Drr rides the CSFQ edge shaping with cores detached). *)
type driver = {
  add : Net.Flow.t -> unit;
  end_ : int -> unit;
  live : unit -> int;
  sent_of : int -> int;
  delivered_of : int -> int;
  drops_total : unit -> int;
}

let run ~engine ~seed ~label ~graph:gspec ~n_flows ~scheme ?(duration = 20.)
    ?measure_from ?(bandwidth = Network.default_bandwidth) ?(delay = 0.002)
    ?(queue_capacity = 40) ?(max_weight = 4) ?(end_fraction = 0.) ?end_at
    ?(reference = false) ?(csv = false) ?(source_params = default_source)
    ?trace () =
  if n_flows < 1 then invalid_arg "Scale.run: need at least one flow";
  if duration <= 0. then invalid_arg "Scale.run: duration must be positive";
  let measure_from =
    match measure_from with Some t -> t | None -> duration /. 2.
  in
  if measure_from < 0. || measure_from >= duration then
    invalid_arg "Scale.run: measure_from must fall inside the run";
  if end_fraction < 0. || end_fraction >= 1. then
    invalid_arg "Scale.run: end_fraction must be in [0, 1)";
  let n_ended = int_of_float (end_fraction *. float_of_int n_flows) in
  let end_at =
    match end_at with Some t -> t | None -> measure_from /. 2.
  in
  if n_ended > 0 && end_at >= measure_from then
    invalid_arg "Scale.run: end_at must precede measure_from";
  let graph =
    match gspec with
    | Fattree k -> Topo.Fattree.build k
    | As_graph { nodes; m } ->
      Topo.Asgraph.build ~seed ~label:(label ^ "/graph") ~nodes ~m ()
  in
  let fib = Topo.Fib.compute graph in
  let pop =
    Topo.Flows.generate ~seed ~label:(label ^ "/flows") ~graph ~n:n_flows
      ~max_weight ()
  in
  (* At 10^5 flows and 10^4 links, auto-registered per-flow and
     per-link probes are pure overhead: no sampler reads them here. *)
  let metrics = Sim.Engine.metrics engine in
  let auto_was = Sim.Metrics.auto_probes metrics in
  Sim.Metrics.set_auto_probes metrics false;
  (match trace with
  | Some spec -> Sim.Trace.apply (Sim.Engine.trace engine) spec
  | None -> ());
  let weight_of id =
    if id >= 1 && id <= n_flows then pop.Topo.Flows.weight.(id - 1) else 1.
  in
  let core_qdisc =
    match scheme with
    | Corelite | Csfq -> None
    | Drr -> Some (fun () -> Net.Qdisc.drr ~weight:weight_of ~capacity:queue_capacity ())
  in
  let network =
    Network.of_topo ~engine ~bandwidth ~delay ~queue_capacity ?core_qdisc
      ~graph ~fib ~flows:pop ()
  in
  let rng = Sim.Rng.scenario ~seed ~id:(label ^ "/deploy") in
  let driver =
    match scheme with
    | Corelite ->
      let params = { Corelite.Params.default with source = source_params } in
      let d =
        Corelite.Deployment.build ~params ~rng ~topology:network.Network.topology
          ~flows:[] ~core_links:network.Network.core_links ()
      in
      {
        add = (fun flow -> ignore (Corelite.Deployment.add_flow d flow));
        end_ = Corelite.Deployment.end_flow d;
        live = (fun () -> Corelite.Deployment.live_flows d);
        sent_of = (fun id -> Corelite.Edge.sent (Corelite.Deployment.agent d id));
        delivered_of =
          (fun id -> Corelite.Edge.delivered (Corelite.Deployment.agent d id));
        drops_total = (fun () -> Corelite.Deployment.total_drops d);
      }
    | Csfq | Drr ->
      let params = { Csfq.Params.default with source = source_params } in
      let d =
        Csfq.Deployment.build
          ~attach_cores:(match scheme with Csfq -> true | Corelite | Drr -> false)
          ~params ~rng ~topology:network.Network.topology ~flows:[]
          ~core_links:network.Network.core_links ()
      in
      {
        add = (fun flow -> ignore (Csfq.Deployment.add_flow d flow));
        end_ = Csfq.Deployment.end_flow d;
        live = (fun () -> Csfq.Deployment.live_flows d);
        sent_of = (fun id -> Csfq.Edge.sent (Csfq.Deployment.agent d id));
        delivered_of =
          (fun id -> Csfq.Edge.delivered (Csfq.Deployment.agent d id));
        drops_total = (fun () -> Csfq.Deployment.total_drops d);
      }
  in
  (* Streaming per-flow aggregation: three flat int arrays — delivered
     at the measurement start, and final sent/delivered captured just
     before each flow retires (agents are unreadable afterwards). *)
  let base_delivered = Array.make (n_flows + 1) 0 in
  let final_sent = Array.make (n_flows + 1) 0 in
  let final_delivered = Array.make (n_flows + 1) 0 in
  let capture id =
    final_sent.(id) <- driver.sent_of id;
    final_delivered.(id) <- driver.delivered_of id
  in
  let t0 = Sim.Engine.now engine in
  let events0 = Sim.Engine.executed engine in
  List.iter driver.add network.Network.flows;
  if n_ended > 0 then
    ignore
      (Sim.Engine.schedule_at engine ~time:(t0 +. end_at) (fun () ->
           for id = 1 to n_ended do
             capture id;
             driver.end_ id
           done));
  ignore
    (Sim.Engine.schedule_at engine ~time:(t0 +. measure_from) (fun () ->
         for id = n_ended + 1 to n_flows do
           base_delivered.(id) <- driver.delivered_of id
         done));
  Sim.Engine.run_until engine (t0 +. duration);
  let live_at_end = driver.live () in
  let drops = driver.drops_total () in
  for id = n_ended + 1 to n_flows do
    capture id;
    driver.end_ id
  done;
  Sim.Metrics.set_auto_probes metrics auto_was;
  let events = Sim.Engine.executed engine - events0 in
  let window = duration -. measure_from in
  let measured = n_flows - n_ended in
  let rates = Array.make measured 0. in
  let weights = Array.make measured 0. in
  for id = n_ended + 1 to n_flows do
    rates.(id - n_ended - 1) <-
      float_of_int (final_delivered.(id) - base_delivered.(id)) /. window;
    weights.(id - n_ended - 1) <- weight_of id
  done;
  let mean_rate =
    if measured = 0 then 0.
    else Array.fold_left ( +. ) 0. rates /. float_of_int measured
  in
  let jain_weighted = Fairness.Metrics.jain_index ~rates ~weights in
  let jain_vs_reference =
    if not reference then None
    else begin
      (* Water-filling over the flows alive through the window. *)
      let demands =
        List.filter_map
          (fun f ->
            let id = f.Net.Flow.id in
            if id <= n_ended then None
            else
              Some
                (Fairness.Maxmin.demand ~flow:id ~weight:f.Net.Flow.weight
                   ~links:
                     (List.map
                        (fun l -> l.Net.Link.id)
                        (Net.Flow.links f network.Network.topology))
                   ()))
          network.Network.flows
      in
      let solved =
        Fairness.Maxmin.solve
          ~capacities:(Network.link_capacities network)
          ~demands
      in
      let expected = Array.make (n_flows + 1) 0. in
      List.iter (fun (id, rate) -> expected.(id) <- rate) solved;
      let ratios = Array.make measured 0. in
      let ones = Array.make measured 1. in
      for id = n_ended + 1 to n_flows do
        let e = expected.(id) in
        ratios.(id - n_ended - 1) <-
          (if e > 0. then rates.(id - n_ended - 1) /. e else 0.)
      done;
      Some (Fairness.Metrics.jain_index ~rates:ratios ~weights:ones)
    end
  in
  let csv =
    if not csv then None
    else begin
      let buf = Buffer.create (64 * (n_flows + 1)) in
      Buffer.add_string buf "flow,src,dst,weight,sent,delivered\n";
      for id = 1 to n_flows do
        Buffer.add_string buf
          (Printf.sprintf "%d,%d,%d,%g,%d,%d\n" id
             pop.Topo.Flows.src.(id - 1)
             pop.Topo.Flows.dst.(id - 1)
             pop.Topo.Flows.weight.(id - 1)
             final_sent.(id) final_delivered.(id))
      done;
      Some (Buffer.contents buf)
    end
  in
  {
    label;
    scheme;
    graph = gspec;
    n_nodes = Topo.Graph.n_nodes graph;
    n_links = Topo.Graph.n_links graph;
    n_hosts = Topo.Graph.n_hosts graph;
    n_flows;
    duration;
    measure_from;
    events;
    sent = Array.fold_left ( + ) 0 final_sent;
    delivered = Array.fold_left ( + ) 0 final_delivered;
    drops;
    ended_early = n_ended;
    live_at_end;
    mean_rate;
    jain_weighted;
    jain_vs_reference;
    csv;
  }
