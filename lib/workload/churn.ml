(* The churn battery: flow churn, flash crowds and adversarial heavy
   hitters over a shared bottleneck, judged by time-windowed fairness
   (Fairness.Windowed) instead of steady-state convergence. Each point
   replays one deterministic arrival plan (Arrivals) against one scheme
   and measures windowed Jain, so "Corelite vs CSFQ vs DRR under the
   same trace" is a like-for-like comparison, and the static variant of
   the same pipeline is the baseline the robustness gates normalize
   against. *)

type scheme = Corelite | Csfq | Drr

let scheme_name = function Corelite -> "corelite" | Csfq -> "csfq" | Drr -> "drr"

type variant = Static | Dynamic | Adversarial | Faulty

let variant_name = function
  | Static -> "static"
  | Dynamic -> "churn"
  | Adversarial -> "adversary"
  | Faulty -> "churn+faults"

type point = {
  label : string;
  scheme : string;
  variant : string;
  arrivals : int;
  completed : int;
  expired : int;
  leaked : int;
  windowed_jain : float;
  goodput : float;
  adversary_share : float;
  core_drops : int;
  injected_drops : int;
}

let default_fault_seed = Chaos.default_fault_seed

(* Tuning shared by every point so variants differ only in workload.
   Base population: 8 long-lived elastic flows with mixed weights; the
   churn variants add transient arrivals carrying [churn_fraction] of
   the bottleneck capacity in offered load ("10% churn"), a diurnal
   intensity curve and a mid-run flash crowd. *)
(* lint: domain-ok -- read-only weight table, never written *)
let base_weights = [| 1.; 1.; 2.; 1.; 3.; 1.; 2.; 1. |]

let n_base = Array.length base_weights

let adversary_id = n_base + 1

let first_transient_id = adversary_id + 1

let churn_fraction = 0.1

let expiry_timeout = 5.

let expiry_period = 2.

let poll_period = 0.25

let sample_period = 0.5

(* One churn run. All randomness descends from (seed, label) scenario
   streams — the arrival plan, the deployment's epoch offsets and each
   on/off controller get their own labelled substream — so a point is a
   pure function of its parameters, byte-identical on any worker. *)
let run_point ?engine ?(seed = 42) ?(quick = false)
    ?(fault_seed = default_fault_seed) ~scheme ~variant () =
  let duration = if quick then 40. else 80. in
  let from = duration /. 4. in
  let window = 4. in
  let label =
    Printf.sprintf "churn/%s/%s%s" (scheme_name scheme) (variant_name variant)
      (if quick then "/quick" else "")
  in
  let engine =
    match engine with Some e -> e | None -> Sim.Engine.create ()
  in
  (* Transient arrivals: only the dynamic variants have any. The
     capacity estimate here only tunes the arrival intensity; the
     authoritative figure is re-read from the built bottleneck below. *)
  let capacity_pps =
    Network.default_bandwidth /. float_of_int (8 * Net.Packet.default_size)
  in
  let profile =
    {
      Arrivals.default with
      Arrivals.rate = churn_fraction *. capacity_pps /. Arrivals.default.Arrivals.mean_size;
      diurnal = Some { Arrivals.period = duration /. 2.; depth = 0.3 };
      flash =
        Some { Arrivals.at = duration /. 2.; duration = duration /. 10.; boost = 4. };
    }
  in
  let transients =
    match variant with
    | Static -> []
    | Dynamic | Adversarial | Faulty ->
      Arrivals.generate ~seed ~label:(label ^ "/arrivals") ~profile ~horizon:duration
        ~first_id:first_transient_id ()
  in
  let base =
    List.init n_base (fun i ->
        {
          Arrivals.id = i + 1;
          arrival = 0.;
          size = 0;
          weight = base_weights.(i);
          kind = Arrivals.Elastic;
        })
  in
  let honest = base @ transients in
  let with_adversary = match variant with Adversarial -> true | _ -> false in
  let specs =
    List.map (fun f -> (f.Arrivals.id, f.Arrivals.weight, 1, 2)) honest
    @ (if with_adversary then [ (adversary_id, 1., 1, 2) ] else [])
  in
  let weight_of =
    let table = Hashtbl.create 64 in
    List.iter (fun (id, w, _, _) -> Hashtbl.replace table id w) specs;
    fun id -> Option.value ~default:1. (Hashtbl.find_opt table id)
  in
  let core_qdisc =
    match scheme with
    | Drr -> Some (fun () -> Net.Qdisc.drr ~weight:weight_of ~capacity:40 ())
    | Corelite | Csfq -> None
  in
  let network = Network.chain ~engine ?core_qdisc ~cores:2 ~specs () in
  let capacity_pps =
    match network.Network.core_links with
    | link :: _ -> Net.Link.capacity_pps link
    | [] -> assert false
  in
  (* Fault plan composition: the injector is installed before the first
     arrival is scheduled, so a faulty churn run replays byte-
     identically — the plan's draws descend from (fault_seed, label)
     and the workload's from (seed, label), never interleaved. *)
  let fault_plan =
    match variant with
    | Faulty ->
      let link_faults =
        List.map
          (fun link ->
            Sim.Faultplan.link_fault
              ~loss:(Sim.Faultplan.Bernoulli 0.02)
              ~target:Sim.Faultplan.All_packets ~feedback_loss:0.05
              link.Net.Link.name)
          network.Network.core_links
      in
      Some (Sim.Faultplan.make ~label ~seed:fault_seed ~link_faults ())
    | Static | Dynamic | Adversarial -> None
  in
  let injector =
    Option.map (Net.Fault.apply ~topology:network.Network.topology) fault_plan
  in
  (* Scheme-independent dynamic-lifecycle driver. *)
  let deploy_rng = Sim.Rng.scenario ~seed ~id:(label ^ "/deploy") in
  let module H = struct
    type handle = {
      h_sent : unit -> int;
      h_delivered : unit -> int;
      h_backlog : bool -> unit;
    }
  end in
  let open H in
  let add, finish, expire, has, live =
    match scheme with
    | Corelite ->
      let d =
        Corelite.Deployment.build ?fault:injector ~params:Chaos.recovery_params
          ~rng:deploy_rng ~topology:network.Network.topology ~flows:[]
          ~core_links:network.Network.core_links ()
      in
      ( (fun ~size flow ->
          let a = Corelite.Deployment.add_flow d ~size flow in
          {
            h_sent = (fun () -> Corelite.Edge.sent a);
            h_delivered = (fun () -> Corelite.Edge.delivered a);
            h_backlog = Corelite.Edge.set_backlogged a;
          }),
        Corelite.Deployment.end_flow d,
        (fun () -> Corelite.Deployment.expire_idle d ~timeout:expiry_timeout),
        Corelite.Deployment.has_flow d,
        fun () -> Corelite.Deployment.live_flows d )
    | Csfq | Drr ->
      let attach_cores = match scheme with Csfq -> true | _ -> false in
      let d =
        Csfq.Deployment.build ~attach_cores ~params:Csfq.Params.default
          ~rng:deploy_rng ~topology:network.Network.topology ~flows:[]
          ~core_links:network.Network.core_links ()
      in
      ( (fun ~size flow ->
          let a = Csfq.Deployment.add_flow d ~size flow in
          {
            h_sent = (fun () -> Csfq.Edge.sent a);
            h_delivered = (fun () -> Csfq.Edge.delivered a);
            h_backlog = Csfq.Edge.set_backlogged a;
          }),
        Csfq.Deployment.end_flow d,
        (fun () -> Csfq.Deployment.expire_idle d ~timeout:expiry_timeout),
        Csfq.Deployment.has_flow d,
        fun () -> Csfq.Deployment.live_flows d )
  in
  (* Per-flow bookkeeping the lifecycle events maintain. *)
  let handles : (int, handle) Hashtbl.t = Hashtbl.create 64 in
  let sizes : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let onoffs : (int, Net.Onoff.t) Hashtbl.t = Hashtbl.create 16 in
  let cumulative =
    List.map
      (fun f ->
        ( f.Arrivals.id,
          f.Arrivals.weight,
          Sim.Timeseries.create ~name:(Printf.sprintf "churn-flow%d" f.Arrivals.id) ()
        ))
      honest
  in
  let arrivals_seen = ref 0 in
  let completed = ref 0 in
  let expired = ref 0 in
  let stop_onoff id =
    match Hashtbl.find_opt onoffs id with
    | Some o ->
      Net.Onoff.stop o;
      Hashtbl.remove onoffs id
    | None -> ()
  in
  List.iter
    (fun f ->
      let id = f.Arrivals.id in
      ignore
        (Sim.Engine.schedule_at engine ~time:f.Arrivals.arrival (fun () ->
             let flow = Network.flow network id in
             let h = add ~size:f.Arrivals.size flow in
             Hashtbl.replace handles id h;
             if f.Arrivals.size > 0 then Hashtbl.replace sizes id f.Arrivals.size;
             incr arrivals_seen;
             match f.Arrivals.kind with
             | Arrivals.Elastic -> ()
             | Arrivals.Onoff { on_mean; off_mean; shape } ->
               let rng =
                 Sim.Rng.scenario ~seed ~id:(Printf.sprintf "%s/onoff/%d" label id)
               in
               Hashtbl.replace onoffs id
                 (Net.Onoff.start ~engine ~rng ~distribution:(Net.Onoff.Pareto shape)
                    ~on_mean ~off_mean h.h_backlog))))
    honest;
  (* Completion poll: a sized flow ends when it has sent its size. The
     sweep runs in flow-id order so lifecycle trace events are ordered
     identically on every replay. *)
  let poll () =
    let due =
      Hashtbl.fold
        (fun id size acc ->
          if not (has id) then `Gone id :: acc
          else
            match Hashtbl.find_opt handles id with
            | Some h when h.h_sent () >= size -> `Done id :: acc
            | Some _ | None -> acc)
        sizes []
      |> List.sort (fun a b ->
             let id = function `Gone id | `Done id -> id in
             compare (id a) (id b))
    in
    List.iter
      (fun d ->
        match d with
        | `Done id ->
          finish id;
          incr completed;
          stop_onoff id;
          Hashtbl.remove sizes id
        | `Gone id ->
          (* expired by the soft-state sweep before completing *)
          stop_onoff id;
          Hashtbl.remove sizes id)
      due
  in
  ignore (Sim.Engine.every engine ~start:poll_period ~period:poll_period poll);
  (* Soft-state expiry sweep: idle edge state ages out. *)
  ignore
    (Sim.Engine.every engine ~start:expiry_period ~period:expiry_period (fun () ->
         expired := !expired + expire ()));
  (* Cumulative delivered samples feed the windowed fairness metrics.
     Handles outlive retirement, so an ended flow's series goes flat
     instead of vanishing. *)
  let adversary_cumulative = Sim.Timeseries.create ~name:"churn-adversary" () in
  let adversary =
    if with_adversary then begin
      let total_weight =
        List.fold_left (fun acc (_, w, _, _) -> acc +. w) 0. specs
      in
      let fair_share = capacity_pps /. total_weight in
      (* Burst at 4x the fair share, average at 0.8x: under any
         long-timescale detection threshold set at the share. *)
      Some
        (Adversary.attach ~network ~flow:adversary_id ~peak:(4. *. fair_share)
           ~duty:0.2 ~period:2.
           ~corelite_markers:(match scheme with Corelite -> true | _ -> false)
           ())
    end
    else None
  in
  let sample () =
    let now = Sim.Engine.now engine in
    List.iter
      (fun (id, _, ts) ->
        match Hashtbl.find_opt handles id with
        | Some h -> Sim.Timeseries.add ts now (float_of_int (h.h_delivered ()))
        | None -> ())
      cumulative;
    match adversary with
    | Some adv ->
      Sim.Timeseries.add adversary_cumulative now
        (float_of_int (Adversary.delivered adv))
    | None -> ()
  in
  ignore (Sim.Engine.every engine ~start:sample_period ~period:sample_period sample);
  Sim.Engine.run_until engine duration;
  (* Drain: every flow still holding edge state is ended explicitly, so
     a leak-free run finishes with an empty table — [leaked] is what
     remains and the ledger oracle pins it to zero. *)
  Option.iter Adversary.stop adversary;
  List.iter
    (fun (id, _, _) -> if has id then finish id)
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) cumulative);
  Hashtbl.iter (fun _ o -> Net.Onoff.stop o) onoffs;
  let leaked = live () in
  let span = duration -. from in
  let delivered_in_window ts =
    Option.value ~default:0. (Sim.Timeseries.value_at ts duration)
    -. Option.value ~default:0. (Sim.Timeseries.value_at ts from)
  in
  let goodput =
    List.fold_left (fun acc (_, _, ts) -> acc +. delivered_in_window ts) 0. cumulative
    /. span
  in
  let windowed_jain =
    (* Gate population: the persistent base flows. Transients are the
       offered load — a flow alive for a sliver of a window registers a
       tiny windowed rate and would read as unfairness no scheme caused;
       the gate asks whether churn, the flash crowd or the adversary
       disturb the share delivered to ongoing traffic. *)
    Fairness.Windowed.mean_jain
      ~flows:
        (List.filter_map
           (fun (id, w, ts) -> if id <= n_base then Some (w, ts) else None)
           cumulative)
      ~from ~until:duration ~window
  in
  let adversary_share =
    if with_adversary then delivered_in_window adversary_cumulative /. span /. capacity_pps
    else 0.
  in
  {
    label;
    scheme = scheme_name scheme;
    variant = variant_name variant;
    arrivals = !arrivals_seen;
    completed = !completed;
    expired = !expired;
    leaked;
    windowed_jain;
    goodput;
    adversary_share;
    core_drops =
      List.fold_left
        (fun acc l -> acc + l.Net.Link.drops)
        0 network.Network.core_links;
    injected_drops =
      (match injector with Some i -> Net.Fault.injected_drops i | None -> 0);
  }

let point_job ?seed ?quick ?fault_seed ~scheme ~variant () =
  let label =
    Printf.sprintf "churn/%s/%s" (scheme_name scheme) (variant_name variant)
  in
  Pool.job ~id:label (fun () -> run_point ?seed ?quick ?fault_seed ~scheme ~variant ())

let variants = [ Static; Dynamic; Adversarial; Faulty ]

let schemes = [ Corelite; Csfq; Drr ]

let jobs ?seed ?quick ?fault_seed () =
  List.map
    (fun scheme ->
      ( scheme_name scheme,
        List.map (fun variant -> point_job ?seed ?quick ?fault_seed ~scheme ~variant ()) variants
      ))
    schemes

let force js = List.map (fun j -> j.Pool.run ()) js

let all ?seed ?quick ?fault_seed () =
  List.map (fun (name, js) -> (name, force js)) (jobs ?seed ?quick ?fault_seed ())

let all_parallel ?domains ?seed ?quick ?fault_seed () =
  (* Flat batch re-chunked in submission order, as in Chaos. *)
  let groups = jobs ?seed ?quick ?fault_seed () in
  let flat = List.concat_map snd groups in
  let results = ref (Pool.map ?domains flat) in
  List.map
    (fun (name, js) ->
      let k = List.length js in
      let rec take n acc rest =
        if n = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> invalid_arg "Churn.all_parallel: result count mismatch"
          | r :: rest -> take (n - 1) (r :: acc) rest
      in
      let points, rest = take k [] !results in
      results := rest;
      (name, points))
    groups

let csv_of_points points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "label,scheme,variant,arrivals,completed,expired,leaked,windowed_jain,goodput,adversary_share,core_drops,injected_drops\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%d,%d,%d,%d,%.6f,%.3f,%.6f,%d,%d\n" p.label p.scheme
           p.variant p.arrivals p.completed p.expired p.leaked p.windowed_jain
           p.goodput p.adversary_share p.core_drops p.injected_drops))
    points;
  Buffer.contents buf

let csv_of_groups groups =
  String.concat "" (List.map (fun (_, points) -> csv_of_points points) groups)

(* The robustness gate: within one scheme's group, each dynamic
   variant's windowed Jain must stay within [ratio] of the static
   baseline's. *)
let gate ~ratio points =
  match List.find_opt (fun p -> String.equal p.variant "static") points with
  | None -> invalid_arg "Churn.gate: no static baseline point"
  | Some baseline ->
    List.filter_map
      (fun p ->
        if String.equal p.variant "static" then None
        else
          Some
            ( p.variant,
              p.windowed_jain,
              baseline.windowed_jain,
              p.windowed_jain >= ratio *. baseline.windowed_jain ))
      points

let pp_points ppf (name, points) =
  Format.fprintf ppf "@[<v>-- churn: %s@," name;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "   %-14s arrivals=%3d done=%3d expired=%3d leaked=%d jain=%.4f \
         goodput=%7.1f adv=%.3f drops=%5d@,"
        p.variant p.arrivals p.completed p.expired p.leaked p.windowed_jain p.goodput
        p.adversary_share p.core_drops)
    points;
  Format.fprintf ppf "@]"
