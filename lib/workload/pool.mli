(** Parallel deterministic scenario executor on OCaml 5 domains.

    Every independent run in the evaluation — a figure replay, a sweep
    point, a replication seed, a multi-cloud scenario — is a closed
    job: it builds its own engine and network, draws randomness only
    from its own stream, and returns a payload. That closure is what
    makes sharding them across domains safe: results are bit-identical
    to serial execution because nothing a job touches depends on where
    or when it runs.

    {!map} executes a batch of such jobs on up to
    [Domain.recommended_domain_count ()] workers. Scheduling is a
    single shared job sequence with an atomic cursor: every idle worker
    steals the next pending job, so a long job (fig3's 800 simulated
    seconds) never serializes behind short ones and no static partition
    can go unbalanced. Job placement is nondeterministic; payloads are
    not.

    {!run_scenarios} adds the two per-worker conventions on top:

    - each scenario's generator is {!Sim.Rng.scenario}[ ~seed ~id] — a
      pure function of the root seed and the scenario's label, so the
      stream a scenario sees never depends on sibling scenarios or on
      placement (see CONTRIBUTING.md, "per-scenario RNG streams");
    - each worker owns one {!Sim.Engine.t} and {!Sim.Engine.reset}s it
      between jobs, so engine storage is reused across a sweep's dozens
      of runs without leaking any ordering state from one run into the
      next.

    Workers never print and never touch the filesystem (lint rules
    L1/L3 are taught exactly that: [Domain] is banned outside this
    module, printing and file I/O stay in the coordinator); jobs return
    their series/CSV payloads and the coordinator alone writes them. *)

(** A closed unit of work: [run] must not share mutable state with any
    other job. [id] names the job in diagnostics and derives nothing —
    contrast {!scenario}, whose label picks the RNG stream. *)
type 'a job = { id : string; run : unit -> 'a }

val job : id:string -> (unit -> 'a) -> 'a job

(** [Domain.recommended_domain_count ()] — the worker count {!map} and
    {!run_scenarios} default to. *)
val default_domains : unit -> int

(** [map ~domains jobs] runs every job and returns the results in
    submission order. [domains] (default {!default_domains}) caps the
    worker count; it is further clamped to the job count, and [<= 1]
    runs inline on the calling domain with no spawns at all. If any job
    raises, the first raising job's exception (in submission order) is
    re-raised after every worker has drained — workers are never
    leaked. *)
val map : ?domains:int -> 'a job list -> 'a list

(** A scenario: a job that receives its deterministic RNG stream and a
    worker-owned, freshly {!Sim.Engine.reset} engine. *)
type 'a scenario = {
  label : string;  (** derives the RNG stream; unique per batch *)
  scenario : engine:Sim.Engine.t -> rng:Sim.Rng.t -> 'a;
}

(** [run_scenarios ~domains ~seed scenarios] executes each scenario
    with [rng = Sim.Rng.scenario ~seed ~id:label] on a reused
    per-worker engine, returning results in submission order. Running
    with [~domains:1] (or on one core) produces bit-identical payloads.
    @raise Invalid_argument if two scenarios share a label — they
    would silently share an RNG stream. *)
val run_scenarios : ?domains:int -> seed:int -> 'a scenario list -> 'a list
