type phase = {
  label : string;
  from_t : float;
  until_t : float;
  active : int list;
}

type spec = {
  id : string;
  title : string;
  scheme : Runner.scheme;
  make_network : engine:Sim.Engine.t -> Network.t;
  schedule : (float * Runner.action) list;
  duration : float;
  phases : phase list;
  conv_tolerance : float;
}

let weights_s41 = function 5 | 15 -> 3. | 1 | 11 | 16 -> 1. | _ -> 2.

let weights_s43 = function 5 | 10 | 15 -> 3. | 1 | 11 | 16 -> 1. | _ -> 2.

let weights_s42 i = float_of_int ((i + 1) / 2)

let ids n = List.init n (fun i -> i + 1)

let corelite = Runner.Corelite Corelite.Params.default

let csfq = Runner.Csfq Csfq.Params.default

(* Figures 3/4: network dynamics over 800 s (Section 4.1). *)
let fig34 ~id ~title () =
  let late = [ 1; 9; 10; 11; 16 ] in
  let early = List.filter (fun i -> not (List.mem i late)) (ids 20) in
  let schedule =
    List.map (fun i -> (0., Runner.Start i)) early
    @ List.map (fun i -> (250., Runner.Start i)) late
    @ List.map (fun i -> (500., Runner.Stop i)) late
    @ List.map (fun i -> (750., Runner.Stop i)) early
  in
  {
    id;
    title;
    scheme = corelite;
    make_network =
      (fun ~engine -> Network.topology1 ~engine ~weights:weights_s41 ());
    schedule;
    duration = 800.;
    conv_tolerance = 0.2;
    phases =
      [
        { label = "t in [0,250): 15 flows"; from_t = 100.; until_t = 245.; active = early };
        { label = "t in [250,500): 20 flows"; from_t = 350.; until_t = 495.; active = ids 20 };
        { label = "t in [500,750): 15 flows"; from_t = 600.; until_t = 745.; active = early };
      ];
  }

let fig3 () =
  fig34 ~id:"fig3" ~title:"Instantaneous rate, network dynamics (Corelite)" ()

let fig4 () =
  fig34 ~id:"fig4" ~title:"Cumulative service, network dynamics (Corelite)" ()

(* Figures 5/6: simultaneous startup of 10 flows (Section 4.2). *)
let fig56 ~id ~title ~scheme () =
  {
    id;
    title;
    scheme;
    make_network =
      (fun ~engine ->
        Network.topology1 ~engine ~flow_ids:(ids 10) ~weights:weights_s42 ());
    schedule = List.map (fun i -> (0., Runner.Start i)) (ids 10);
    duration = 80.;
    conv_tolerance = 0.2;
    phases =
      [ { label = "steady state"; from_t = 50.; until_t = 80.; active = ids 10 } ];
  }

let fig5 () = fig56 ~id:"fig5" ~title:"Simultaneous startup (Corelite)" ~scheme:corelite ()

let fig6 () = fig56 ~id:"fig6" ~title:"Simultaneous startup (CSFQ)" ~scheme:csfq ()

(* Figures 7/8: 20 flows entering 1 s apart (Section 4.3). *)
let fig78 ~id ~title ~scheme () =
  {
    id;
    title;
    scheme;
    make_network =
      (fun ~engine -> Network.topology1 ~engine ~weights:weights_s43 ());
    schedule = List.map (fun i -> (float_of_int i, Runner.Start i)) (ids 20);
    duration = 80.;
    conv_tolerance = 0.35;
    phases =
      [ { label = "steady state"; from_t = 50.; until_t = 80.; active = ids 20 } ];
  }

let fig7 () = fig78 ~id:"fig7" ~title:"Staggered startup (Corelite)" ~scheme:corelite ()

let fig8 () = fig78 ~id:"fig8" ~title:"Staggered startup (CSFQ)" ~scheme:csfq ()

(* Figures 9/10: staggered start, 60 s life, restart 5 s after stopping. *)
let fig910 ~id ~title ~scheme () =
  let schedule =
    List.concat_map
      (fun i ->
        let t = float_of_int i in
        [
          (t, Runner.Start i); (t +. 60., Runner.Stop i); (t +. 65., Runner.Start i);
        ])
      (ids 20)
  in
  {
    id;
    title;
    scheme;
    make_network =
      (fun ~engine -> Network.topology1 ~engine ~weights:weights_s43 ());
    schedule;
    duration = 160.;
    conv_tolerance = 0.35;
    phases =
      [
        { label = "first lives"; from_t = 40.; until_t = 60.; active = ids 20 };
        { label = "after churn"; from_t = 120.; until_t = 155.; active = ids 20 };
      ];
  }

let fig9 () = fig910 ~id:"fig9" ~title:"Flow churn (Corelite)" ~scheme:corelite ()

let fig10 () = fig910 ~id:"fig10" ~title:"Flow churn (CSFQ)" ~scheme:csfq ()

let all () =
  [ fig3 (); fig4 (); fig5 (); fig6 (); fig7 (); fig8 (); fig9 (); fig10 () ]

let run ?(seed = 42) ?trace ?metrics spec =
  let engine = Sim.Engine.create () in
  let network = spec.make_network ~engine in
  Runner.run ~scheme:spec.scheme ~network ~seed ?trace ?metrics
    ~schedule:spec.schedule ~duration:spec.duration ()

(* Figure scenarios keep their historical RNG derivation (the root seed
   itself), so published tables survive; the job closure is what the
   pool shards. Each job creates its own engine, so traces stay
   isolated per scenario whether jobs run serially or on domains. *)
let job ?seed ?trace ?metrics spec =
  Pool.job ~id:spec.id (fun () -> run ?seed ?trace ?metrics spec)

let run_all ?domains ?seed ?trace ?metrics specs =
  List.combine specs (Pool.map ?domains (List.map (job ?seed ?trace ?metrics) specs))

type flow_row = { flow : int; weight : float; measured : float; expected : float }

type phase_summary = {
  phase : phase;
  rows : flow_row list;
  jain : float;
  mean_error : float;
  goodput_jain : float;
  goodput_error : float;
}

type summary = {
  spec_id : string;
  title : string;
  scheme : string;
  phase_summaries : phase_summary list;
  core_drops : int;
  feedback_markers : int;
  early_drops : int;
  convergence : float option;
}

let summarize_phase (result : Runner.result) phase =
  let network = result.Runner.network in
  let reference = Network.expected_rates network ~active:phase.active in
  let rows =
    List.map
      (fun id ->
        let f = Network.flow network id in
        {
          flow = id;
          weight = f.Net.Flow.weight;
          measured =
            Runner.mean_rate result ~flow:id ~from:phase.from_t ~until:phase.until_t;
          expected = List.assoc id reference;
        })
      phase.active
  in
  let measured = Array.of_list (List.map (fun r -> r.measured) rows) in
  let expected = Array.of_list (List.map (fun r -> r.expected) rows) in
  (* Goodput view: for loss-based schemes the sending rate overshoots
     and the drops shave it; the delivered rate is the honest number. *)
  let goodput =
    Array.of_list
      (List.map
         (fun id ->
           Option.value ~default:0.
             (Sim.Timeseries.window_mean
                (List.assoc id result.Runner.goodput_series)
                ~from:phase.from_t ~until:phase.until_t))
         phase.active)
  in
  let weights =
    Array.of_list
      (List.map (fun id -> (Network.flow network id).Net.Flow.weight) phase.active)
  in
  {
    phase;
    rows;
    jain =
      Runner.jain ~flows:phase.active result ~from:phase.from_t ~until:phase.until_t;
    mean_error = Fairness.Metrics.mean_relative_error ~measured ~expected;
    goodput_jain = Fairness.Metrics.jain_index ~rates:goodput ~weights;
    goodput_error = Fairness.Metrics.mean_relative_error ~measured:goodput ~expected;
  }

let startup_convergence ~tolerance (result : Runner.result) phase =
  let network = result.Runner.network in
  let reference = Network.expected_rates network ~active:phase.active in
  (* Smooth away the LIMD sawtooth: convergence is about the plateau, as
     in the paper's figures. *)
  let series =
    List.map
      (fun id ->
        ( Sim.Timeseries.smooth (List.assoc id result.Runner.rate_series) ~window:5.,
          List.assoc id reference ))
      phase.active
  in
  Fairness.Metrics.convergence_time ~tolerance ~hold:5. series

let summarize spec (result : Runner.result) =
  {
    spec_id = spec.id;
    title = spec.title;
    scheme = result.Runner.scheme;
    phase_summaries = List.map (summarize_phase result) spec.phases;
    core_drops = result.Runner.core_drops;
    feedback_markers = result.Runner.feedback_markers;
    early_drops = result.Runner.early_drops;
    convergence =
      (match spec.phases with
      | first :: _ ->
        startup_convergence ~tolerance:spec.conv_tolerance result first
      | [] -> None);
  }

(* Time for a restarted flow to regain [fraction] of its reference
   rate (3 s-smoothed), measured from [restart_at]. *)
let restart_recovery (result : Runner.result) ~flow ~restart_at ~target ~fraction =
  match List.assoc_opt flow result.Runner.rate_series with
  | None -> None
  | Some ts ->
    let smoothed = Sim.Timeseries.smooth ts ~window:3. in
    let goal = fraction *. target in
    let found = ref None in
    Sim.Timeseries.iter smoothed (fun t v ->
        if !found = None && t >= restart_at && v >= goal then found := Some (t -. restart_at));
    !found

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>== %s: %s [%s] ==@," s.spec_id s.title s.scheme;
  List.iter
    (fun ps ->
      Format.fprintf ppf
        "-- %s (window %.0f-%.0f s): jain=%.4f mean_err=%.1f%% (goodput: jain=%.4f err=%.1f%%)@,"
        ps.phase.label ps.phase.from_t ps.phase.until_t ps.jain
        (100. *. ps.mean_error) ps.goodput_jain
        (100. *. ps.goodput_error);
      List.iter
        (fun r ->
          Format.fprintf ppf "   flow %2d (w=%.0f): measured %6.1f  expected %6.1f@,"
            r.flow r.weight r.measured r.expected)
        ps.rows)
    s.phase_summaries;
  (match s.convergence with
  | Some t -> Format.fprintf ppf "convergence: %.1f s@," t
  | None -> Format.fprintf ppf "convergence: not reached@,");
  Format.fprintf ppf "core drops: %d  feedback markers: %d  early drops: %d@]@."
    s.core_drops s.feedback_markers s.early_drops
