(** CLEF-style adversarial heavy hitter (see PAPERS.md: "CLEF:
    Limiting the Damage Caused by Large Flows").

    An unresponsive sender that bursts at [peak] pkt/s for the leading
    [duty] fraction of every [period], then goes silent — so its
    average rate [peak * duty] sits just below whatever detection or
    marking threshold the caller aims it under, while its short-
    timescale rate is far above the fair share. The labels it carries
    are honest but smoothed: the CSFQ-style packet label is an
    exponential rate estimate that lags the burst, and the optional
    Corelite marker advertises the long-run average — the blind spot of
    estimation-based policing that {!Fairness.Windowed}'s
    multi-timescale bandwidth profile exposes.

    The flow's path must exist in the network (it is installed here);
    the adversary bypasses the schemes' edge agents entirely, exactly
    like {!Blaster}. *)

type t

(** [attach ~network ~flow ~peak ~duty ~period ()] installs the flow's
    path and starts bursting immediately (first burst begins at the
    current simulation time). [corelite_markers] additionally stamps
    every packet with a Corelite marker advertising the {e average}
    normalized rate.
    @raise Invalid_argument unless [peak > 0], [duty] in (0, 1] and
    [period > 0] (all finite). *)
val attach :
  network:Network.t ->
  flow:int ->
  peak:float ->
  duty:float ->
  period:float ->
  ?corelite_markers:bool ->
  unit ->
  t

(** Cancel the pacing timer (the flow falls silent). *)
val stop : t -> unit

val sent : t -> int

val delivered : t -> int

(** [peak * duty] — the rate a long-timescale detector sees. *)
val average_rate : t -> float

val peak_rate : t -> float
