type chained = {
  agent_a : Corelite.Edge.t;
  aggregate_b : Corelite.Aggregate.t;
  delivered : int ref;
}

type t = {
  chains : (int, chained) Hashtbl.t;
  locals : (int, Corelite.Edge.t) Hashtbl.t;  (* flows living in one cloud only *)
  deployment_a : Corelite.Deployment.t;
  deployment_b : Corelite.Deployment.t;
}

let build ?(params = Corelite.Params.default) ?(seed = 42) ?(handoff_capacity = 64)
    ?(backpressure = true) ~cloud_a ~cloud_b () =
  if cloud_a.Network.engine != cloud_b.Network.engine then
    invalid_arg "Multi_cloud.build: clouds must share one engine";
  let rng = Sim.Rng.create seed in
  let epoch = params.Corelite.Params.source.Net.Source.epoch in
  let shared =
    List.filter_map
      (fun flow_a ->
        match
          List.find_opt
            (fun flow_b -> flow_b.Net.Flow.id = flow_a.Net.Flow.id)
            cloud_b.Network.flows
        with
        | Some flow_b -> Some (flow_a, flow_b)
        | None -> None)
      cloud_a.Network.flows
  in
  if shared = [] then invalid_arg "Multi_cloud.build: clouds share no flow id";
  let chains = Hashtbl.create 8 in
  let locals = Hashtbl.create 8 in
  let agents_a = Hashtbl.create 8 in
  let agents_b = Hashtbl.create 8 in
  (* Flows present in only one cloud are ordinary local flows there. *)
  let add_locals cloud agents =
    List.iter
      (fun flow ->
        let id = flow.Net.Flow.id in
        if not (List.exists (fun (a, _) -> a.Net.Flow.id = id) shared) then begin
          let agent =
            Corelite.Edge.create ~params ~topology:cloud.Network.topology ~flow
              ~epoch_offset:(Sim.Rng.float rng epoch) ()
          in
          Hashtbl.replace locals id agent;
          Hashtbl.replace agents id agent
        end)
      cloud.Network.flows
  in
  add_locals cloud_a agents_a;
  add_locals cloud_b agents_b;
  List.iter
    (fun (flow_a, flow_b) ->
      let id = flow_a.Net.Flow.id in
      (* Cloud B first: its hand-off aggregate consumes what A emits. *)
      let aggregate_b =
        Corelite.Aggregate.create ~params ~topology:cloud_b.Network.topology
          ~flow:flow_b
          ~epoch_offset:(Sim.Rng.float rng epoch)
          ~queue_capacity:handoff_capacity ()
      in
      let delivered = ref 0 in
      Corelite.Aggregate.set_consumer aggregate_b ~micro:0 (fun _ -> incr delivered);
      (* Cloud A's ordinary edge agent, with its egress delivering into
         B's ingress buffer. Cloud-A markers must not leak into B; B's
         aggregate re-marks under its own normalized rate. *)
      (* The hand-off id doubles as a pseudo core-link id for the
         backpressure feedback channel (negative: never clashes with
         real links). *)
      let handoff_link = -id in
      let agent_cell = ref None in
      let agent_a =
        Corelite.Edge.create ~params ~topology:cloud_a.Network.topology ~flow:flow_a
          ~epoch_offset:(Sim.Rng.float rng epoch)
          ~deliver:(fun pkt ->
            pkt.Net.Packet.marker <- None;
            let accepted = Corelite.Aggregate.submit aggregate_b pkt in
            (* Inter-domain backpressure: a full hand-off buffer means
               cloud B grants this flow less than A does; throttle A's
               edge exactly like core feedback would. *)
            if (not accepted) && backpressure then
              match !agent_cell with
              | Some agent ->
                Corelite.Edge.receive_feedback agent ~link_id:handoff_link
                  {
                    Net.Packet.edge_id = (Net.Flow.ingress flow_a).Net.Node.id;
                    flow_id = id;
                    normalized_rate = 0.;
                  }
              | None -> ())
          ()
      in
      agent_cell := Some agent_a;
      Hashtbl.replace chains id { agent_a; aggregate_b; delivered };
      Hashtbl.replace agents_a id agent_a;
      Hashtbl.replace agents_b id (Corelite.Aggregate.edge aggregate_b))
    shared;
  let deployment_a =
    Corelite.Deployment.of_agents ~params ~rng ~topology:cloud_a.Network.topology
      ~agents:agents_a ~core_links:cloud_a.Network.core_links ()
  in
  let deployment_b =
    Corelite.Deployment.of_agents ~params ~rng ~topology:cloud_b.Network.topology
      ~agents:agents_b ~core_links:cloud_b.Network.core_links ()
  in
  { chains; locals; deployment_a; deployment_b }

let deployment_a t = t.deployment_a

let deployment_b t = t.deployment_b

let chain t flow =
  match Hashtbl.find_opt t.chains flow with
  | Some c -> c
  | None -> raise Not_found

let start t =
  Hashtbl.iter
    (fun _ c ->
      Corelite.Aggregate.start c.aggregate_b;
      Corelite.Edge.start c.agent_a)
    t.chains;
  Hashtbl.iter (fun _ agent -> Corelite.Edge.start agent) t.locals

let stop t =
  Hashtbl.iter
    (fun _ c ->
      Corelite.Edge.stop c.agent_a;
      Corelite.Aggregate.stop c.aggregate_b)
    t.chains;
  Hashtbl.iter (fun _ agent -> Corelite.Edge.stop agent) t.locals

let delivered t ~flow = !((chain t flow).delivered)

let handoff_drops t ~flow = Corelite.Aggregate.edge_drops (chain t flow).aggregate_b

let agent_a t ~flow = (chain t flow).agent_a

let local_agent t ~flow =
  match Hashtbl.find_opt t.locals flow with
  | Some agent -> agent
  | None -> raise Not_found

let aggregate_b t ~flow = (chain t flow).aggregate_b
