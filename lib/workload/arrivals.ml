type kind =
  | Elastic
  | Onoff of { on_mean : float; off_mean : float; shape : float }

type flow = {
  id : int;
  arrival : float;
  size : int;
  weight : float;
  kind : kind;
}

type diurnal = { period : float; depth : float }

type flash = { at : float; duration : float; boost : float }

type profile = {
  rate : float;
  mean_size : float;
  size_shape : float;
  min_size : int;
  weights : float array;
  onoff_fraction : float;
  on_mean : float;
  off_mean : float;
  onoff_shape : float;
  diurnal : diurnal option;
  flash : flash option;
}

let default =
  {
    rate = 0.5;
    mean_size = 100.;
    size_shape = 1.8;
    min_size = 10;
    (* lint: domain-ok -- read-only weight table, never written *)
    weights = [| 1.; 1.; 2. |];
    onoff_fraction = 0.25;
    on_mean = 1.;
    off_mean = 1.;
    onoff_shape = 1.5;
    diurnal = None;
    flash = None;
  }

let check ~what cond = if not cond then invalid_arg ("Arrivals: " ^ what)

let validate p =
  check ~what:"rate must be positive and finite"
    (Float.is_finite p.rate && p.rate > 0.);
  check ~what:"mean_size must be at least 1" (Float.is_finite p.mean_size && p.mean_size >= 1.);
  check ~what:"size_shape must exceed 1 (finite mean)"
    (Float.is_finite p.size_shape && p.size_shape > 1.);
  check ~what:"min_size must be positive" (p.min_size > 0);
  check ~what:"weights must be nonempty" (Array.length p.weights > 0);
  Array.iter
    (fun w -> check ~what:"weights must be positive and finite" (Float.is_finite w && w > 0.))
    p.weights;
  check ~what:"onoff_fraction must lie in [0, 1]"
    (p.onoff_fraction >= 0. && p.onoff_fraction <= 1.);
  check ~what:"on_mean must be positive and finite"
    (Float.is_finite p.on_mean && p.on_mean > 0.);
  check ~what:"off_mean must be positive and finite"
    (Float.is_finite p.off_mean && p.off_mean > 0.);
  check ~what:"onoff_shape must exceed 1" (Float.is_finite p.onoff_shape && p.onoff_shape > 1.);
  (match p.diurnal with
  | None -> ()
  | Some { period; depth } ->
    check ~what:"diurnal period must be positive and finite"
      (Float.is_finite period && period > 0.);
    check ~what:"diurnal depth must lie in [0, 1)" (depth >= 0. && depth < 1.));
  match p.flash with
  | None -> ()
  | Some { at; duration; boost } ->
    check ~what:"flash start must be non-negative and finite"
      (Float.is_finite at && at >= 0.);
    check ~what:"flash duration must be positive and finite"
      (Float.is_finite duration && duration > 0.);
    check ~what:"flash boost must be at least 1" (Float.is_finite boost && boost >= 1.)

(* Instantaneous arrival intensity: the base Poisson rate modulated by
   the diurnal curve (a sinusoid of relative depth [depth]) and the
   flash-crowd boost while inside its interval. *)
let rate_at p t =
  let diurnal =
    match p.diurnal with
    | None -> 1.
    | Some { period; depth } -> 1. +. (depth *. sin (2. *. Float.pi *. t /. period))
  in
  let flash =
    match p.flash with
    | Some { at; duration; boost } when t >= at && t < at +. duration -> boost
    | Some _ | None -> 1.
  in
  p.rate *. diurnal *. flash

let peak_rate p =
  let diurnal = match p.diurnal with None -> 1. | Some { depth; _ } -> 1. +. depth in
  let flash = match p.flash with None -> 1. | Some { boost; _ } -> Float.max 1. boost in
  p.rate *. diurnal *. flash

(* Inhomogeneous Poisson arrivals by Lewis-Shedler thinning: candidate
   events at the peak intensity, each kept with probability
   rate(t)/peak. Every draw comes from the single (seed, label)-derived
   scenario stream, consumed in arrival-time order, so the plan is a
   pure function of (seed, label, profile, horizon) — byte-identical
   wherever it is generated (serial or any pool worker). *)
let generate ~seed ~label ~profile:p ~horizon ?(first_id = 1) () =
  validate p;
  check ~what:"horizon must be positive and finite"
    (Float.is_finite horizon && horizon > 0.);
  let rng = Sim.Rng.scenario ~seed ~id:label in
  let peak = peak_rate p in
  let rec go acc id t =
    let t = t +. Sim.Rng.exponential rng ~mean:(1. /. peak) in
    if t >= horizon then List.rev acc
    else if not (Sim.Rng.bernoulli rng (rate_at p t /. peak)) then go acc id t
    else begin
      let drawn = Sim.Rng.pareto rng ~shape:p.size_shape ~mean:p.mean_size in
      let size = Stdlib.max p.min_size (int_of_float (Float.round drawn)) in
      let weight = p.weights.(Sim.Rng.int rng (Array.length p.weights)) in
      let kind =
        if Sim.Rng.bernoulli rng p.onoff_fraction then
          Onoff { on_mean = p.on_mean; off_mean = p.off_mean; shape = p.onoff_shape }
        else Elastic
      in
      go ({ id; arrival = t; size; weight; kind } :: acc) (id + 1) t
    end
  in
  go [] first_id 0.

let offered_load p = p.rate *. p.mean_size
