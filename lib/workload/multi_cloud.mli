(** Chaining network clouds (the paper's inter-domain hook).

    Corelite's mechanisms are deliberately edge-to-edge within one
    cloud; the paper leaves "the interactions required between the edge
    routers of different autonomous domains" as future work. This
    module implements the natural composition: a flow crosses cloud A
    and is handed, at A's egress edge, to cloud B's ingress edge, where
    it is re-shaped under B's own Corelite control loop. The hand-off
    buffer is a {!Corelite.Aggregate} with a single micro-flow, so an
    application-limited supply (whatever A delivers) drives B's shaper
    and B's allowed rate never probes beyond the traffic A actually
    forwards.

    End-to-end, each flow receives (asymptotically) the minimum of its
    weighted shares in the two clouds — max-min fairness composes. *)

type t

(** [build ~cloud_a ~cloud_b ()] connects the two clouds: every flow id
    present in both networks is chained A -> B; a flow id present in
    only one cloud becomes an ordinary local flow there. Flows are shaped by a
    plain Corelite edge in A and by a hand-off aggregate in B; both
    clouds run their own core logic and control planes. [params] apply
    to both clouds; [handoff_capacity] bounds the inter-cloud buffer
    (default 64 packets).
    @raise Invalid_argument if the clouds share no flow id or are not
    on the same engine. *)
val build :
  ?params:Corelite.Params.t ->
  ?seed:int ->
  ?handoff_capacity:int ->
  ?backpressure:bool ->
  cloud_a:Network.t ->
  cloud_b:Network.t ->
  unit ->
  t

(** Start every flow in both clouds. *)
val start : t -> unit

(** The per-cloud Corelite deployments (A holds chain heads and A-local
    flows, B the chained aggregates and B-local flows). *)
val deployment_a : t -> Corelite.Deployment.t

val deployment_b : t -> Corelite.Deployment.t

val stop : t -> unit

(** Packets delivered end-to-end (out of cloud B) per flow. *)
val delivered : t -> flow:int -> int

(** Packets dropped at a hand-off buffer (cloud B slower than A). *)
val handoff_drops : t -> flow:int -> int

(** The cloud-A edge agent of a flow (rates, counters). *)
val agent_a : t -> flow:int -> Corelite.Edge.t

(** The cloud-B hand-off aggregate of a flow. *)
val aggregate_b : t -> flow:int -> Corelite.Aggregate.t

(** The agent of a single-cloud (local) flow.
    @raise Not_found if the flow is chained or unknown. *)
val local_agent : t -> flow:int -> Corelite.Edge.t
