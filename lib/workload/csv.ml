(* RFC 4180 quoting: a field containing a comma, a double quote, or a
   line break is wrapped in double quotes with embedded quotes doubled.
   The numeric wide-series exports below never need it, but metric rows
   carry free-text help strings ("packets that arrived, including
   drops") that silently corrupted the column structure before this
   existed. *)
let field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let row fields = String.concat "," (List.map field fields)

(* Minimal RFC 4180 reader — enough to round-trip our own exports and
   to regression-test the quoting above. Accepts LF and CRLF line ends;
   a quoted field may contain commas, line breaks and doubled quotes. *)
let parse text =
  let rows = ref [] in
  let fields = ref [] in
  let b = Buffer.create 32 in
  let n = String.length text in
  let flush_field () =
    fields := Buffer.contents b :: !fields;
    Buffer.clear b
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = text.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && text.[!i + 1] = '"' then begin
          Buffer.add_char b '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char b c
    end
    else begin
      match c with
      | '"' -> in_quotes := true
      | ',' -> flush_field ()
      | '\n' -> flush_row ()
      | '\r' ->
        (* CRLF counts as one line end; a lone CR still ends the row. *)
        if !i + 1 < n && text.[!i + 1] = '\n' then incr i;
        flush_row ()
      | c -> Buffer.add_char b c
    end;
    incr i
  done;
  if !in_quotes then invalid_arg "Csv.parse: unterminated quoted field";
  if Buffer.length b > 0 || !fields <> [] then flush_row ();
  List.rev !rows

let to_string series =
  let buf = Buffer.create 4096 in
  let ids = List.map fst series in
  let columns = List.map (fun (_, ts) -> Sim.Timeseries.to_array ts) series in
  Buffer.add_string buf "time";
  List.iter (fun id -> Buffer.add_string buf (Printf.sprintf ",flow%d" id)) ids;
  Buffer.add_char buf '\n';
  let rows =
    List.fold_left (fun acc c -> Stdlib.min acc (Array.length c)) max_int columns
  in
  let rows = if rows = max_int then 0 else rows in
  for i = 0 to rows - 1 do
    let time, _ = (List.hd columns).(i) in
    Buffer.add_string buf (Printf.sprintf "%.3f" time);
    List.iter
      (fun column ->
        let _, v = column.(i) in
        Buffer.add_string buf (Printf.sprintf ",%.4f" v))
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let result_strings (result : Runner.result) =
  [
    ("rates", to_string result.Runner.rate_series);
    ("goodput", to_string result.Runner.goodput_series);
    ("cumulative", to_string result.Runner.cumulative);
  ]

let of_metrics registry =
  let b = Buffer.create 1024 in
  Buffer.add_string b "name,kind,value,help\n";
  List.iter
    (fun r ->
      let value =
        if Float.is_integer r.Sim.Metrics.value
           && Float.abs r.Sim.Metrics.value < 1e15
        then Printf.sprintf "%.1f" r.Sim.Metrics.value
        else Printf.sprintf "%.9g" r.Sim.Metrics.value
      in
      Buffer.add_string b
        (row [ r.Sim.Metrics.name; r.Sim.Metrics.kind; value; r.Sim.Metrics.help ]);
      Buffer.add_char b '\n')
    (Sim.Metrics.rows registry);
  Buffer.contents b

(* These two writers predate rule L8 and are the sanctioned exception:
   they exist precisely so callers can hand a path to the coordinator
   level without re-implementing file plumbing. New telemetry must
   return strings instead. *)
let write_series ~path series =
  let oc = open_out path (* lint: trace-ok — the sanctioned CSV writer *) in
  let finally () = close_out oc in
  Fun.protect ~finally (fun () ->
      output_string oc (to_string series) (* lint: trace-ok *))

let write_result ~dir ~prefix (result : Runner.result) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (kind, payload) ->
      let path = Filename.concat dir (Printf.sprintf "%s_%s.csv" prefix kind) in
      let oc = open_out path (* lint: trace-ok — the sanctioned CSV writer *) in
      let finally () = close_out oc in
      Fun.protect ~finally (fun () -> output_string oc payload (* lint: trace-ok *)))
    (result_strings result)
