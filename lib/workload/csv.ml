let to_string series =
  let buf = Buffer.create 4096 in
  let ids = List.map fst series in
  let columns = List.map (fun (_, ts) -> Sim.Timeseries.to_array ts) series in
  Buffer.add_string buf "time";
  List.iter (fun id -> Buffer.add_string buf (Printf.sprintf ",flow%d" id)) ids;
  Buffer.add_char buf '\n';
  let rows =
    List.fold_left (fun acc c -> Stdlib.min acc (Array.length c)) max_int columns
  in
  let rows = if rows = max_int then 0 else rows in
  for i = 0 to rows - 1 do
    let time, _ = (List.hd columns).(i) in
    Buffer.add_string buf (Printf.sprintf "%.3f" time);
    List.iter
      (fun column ->
        let _, v = column.(i) in
        Buffer.add_string buf (Printf.sprintf ",%.4f" v))
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let result_strings (result : Runner.result) =
  [
    ("rates", to_string result.Runner.rate_series);
    ("goodput", to_string result.Runner.goodput_series);
    ("cumulative", to_string result.Runner.cumulative);
  ]

let write_series ~path series =
  let oc = open_out path in
  let finally () = close_out oc in
  Fun.protect ~finally (fun () -> output_string oc (to_string series))

let write_result ~dir ~prefix (result : Runner.result) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (kind, payload) ->
      let path = Filename.concat dir (Printf.sprintf "%s_%s.csv" prefix kind) in
      let oc = open_out path in
      let finally () = close_out oc in
      Fun.protect ~finally (fun () -> output_string oc payload))
    (result_strings result)
