(** The churn battery: flow churn, flash crowds and adversarial heavy
    hitters under time-windowed fairness gates.

    Each point replays one deterministic {!Arrivals} plan — 8
    long-lived base flows plus Poisson transient arrivals carrying 10%
    of bottleneck capacity, with a diurnal intensity curve and a
    mid-run flash crowd — against one scheme over a shared bottleneck,
    exercising the full dynamic flow lifecycle (edge state created at
    first packet, ended on completion, aged out by the soft-state
    expiry sweep) and measuring {!Fairness.Windowed.mean_jain} over
    4-second windows. Variants per scheme: [static] (base flows only —
    the gate baseline), [churn], [adversary] (churn plus a CLEF-style
    {!Adversary} bursting at 4x the fair share with a 0.8x average) and
    [churn+faults] (churn composed with a {!Sim.Faultplan} whose
    injector is installed before the first arrival).

    Determinism: every draw descends from [(seed, label)] or
    [(fault_seed, label)] scenario streams, so {!csv_of_groups} is
    byte-identical serial or pooled — the churn bench and the CI
    churn-smoke job assert exactly that. *)

type scheme = Corelite | Csfq | Drr

val scheme_name : scheme -> string

type variant = Static | Dynamic | Adversarial | Faulty

val variant_name : variant -> string

type point = {
  label : string;
  scheme : string;
  variant : string;
  arrivals : int;  (** honest flows that created edge state *)
  completed : int;  (** sized flows ended by delivering their size *)
  expired : int;  (** flows aged out by the soft-state sweep *)
  leaked : int;  (** flows still holding edge state after the drain — 0 *)
  windowed_jain : float;
      (** {!Fairness.Windowed.mean_jain} over the persistent base flows
          (transients are offered load) — the gated metric *)
  goodput : float;  (** honest delivered pkt/s over the measurement span *)
  adversary_share : float;  (** fraction of bottleneck capacity the adversary got *)
  core_drops : int;
  injected_drops : int;
}

val default_fault_seed : int

(** Run one point. [quick] shortens the run from 80 to 40 simulated
    seconds (CI smoke). [engine] substitutes a caller-owned (fresh)
    engine — the trace oracle passes one with the tracer armed to
    replay lifecycle events; with it omitted the point is a pure
    function of the remaining parameters. *)
val run_point :
  ?engine:Sim.Engine.t ->
  ?seed:int ->
  ?quick:bool ->
  ?fault_seed:int ->
  scheme:scheme ->
  variant:variant ->
  unit ->
  point

val point_job :
  ?seed:int ->
  ?quick:bool ->
  ?fault_seed:int ->
  scheme:scheme ->
  variant:variant ->
  unit ->
  point Pool.job

val variants : variant list

val schemes : scheme list

(** The battery as pool jobs, one group per scheme, each group running
    every variant in order (static first). *)
val jobs :
  ?seed:int ->
  ?quick:bool ->
  ?fault_seed:int ->
  unit ->
  (string * point Pool.job list) list

(** Run every group serially, in order. *)
val all :
  ?seed:int -> ?quick:bool -> ?fault_seed:int -> unit -> (string * point list) list

(** Run the flattened battery on a worker pool; byte-identical payloads
    to {!all} by construction. *)
val all_parallel :
  ?domains:int ->
  ?seed:int ->
  ?quick:bool ->
  ?fault_seed:int ->
  unit ->
  (string * point list) list

(** CSV of one group (header + one line per point, [%.6f] metrics) —
    the byte-level currency of the determinism checks. *)
val csv_of_points : point list -> string

(** Concatenated {!csv_of_points} of every group. *)
val csv_of_groups : (string * point list) list -> string

(** [gate ~ratio points] checks one scheme's group against its own
    static baseline: for each non-static variant, [(variant, jain,
    baseline jain, jain >= ratio * baseline)].
    @raise Invalid_argument if the group has no static point. *)
val gate : ratio:float -> point list -> (string * float * float * bool) list

val pp_points : Format.formatter -> string * point list -> unit
