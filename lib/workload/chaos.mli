(** The chaos scenario battery: Corelite robustness under injected
    faults (deterministic fault-injection layer, see DESIGN.md).

    Each point runs the Figure 5 workload (flows 1-10 of the paper's
    topology) under a {!Sim.Faultplan.t} — uniform marker loss,
    Gilbert-Elliott bursty packet loss, periodic link flaps, or router
    resets — with edge soft-state recovery enabled, and measures
    steady-window fairness and goodput plus the injector's own
    counters. The whole battery is deterministic: every fault draw
    descends from [(fault_seed, point label)], so serial and pooled
    runs (and any two runs with the same seeds) produce byte-identical
    {!csv_of_groups} output — the chaos bench and the CI chaos-smoke
    job assert exactly that. *)

type point = {
  label : string;
  level : float;  (** the swept knob: loss probability, period fraction *)
  jain : float;  (** weighted Jain index over the steady window *)
  goodput : float;  (** total delivered pkt/s over the steady window *)
  core_drops : int;  (** all packets lost on core links (faults included) *)
  injected_drops : int;  (** packets destroyed by the injector *)
  stripped_markers : int;  (** markers corrupted off forwarded packets *)
  lost_feedback : int;  (** feedback markers suppressed *)
  flaps : int;  (** link-down events fired *)
  feedback : int;  (** feedback markers the cores sent *)
}

(** Default root seed for the fault plans (the [--fault-seed] of the
    experiment binary). *)
val default_fault_seed : int

(** {!Corelite.Params.default} with the edges' feedback-silence
    recovery armed ([silence_epochs = 4], doubling restoration) — the
    parameter set every battery point (including the fault-free
    baseline) runs with. *)
val recovery_params : Corelite.Params.t

(** The battery as pool jobs, grouped by scenario family. [quick]
    shortens each run from 80 to 32 simulated seconds (CI smoke);
    [seed] is the workload seed (default 42), [fault_seed] the plan
    seed (default {!default_fault_seed}). The first marker-loss point
    ([marker_loss=0]) is the fault-free baseline degradation is
    measured against. *)
val jobs :
  ?seed:int ->
  ?quick:bool ->
  ?fault_seed:int ->
  unit ->
  (string * point Pool.job list) list

(** Run every group serially, in order. *)
val all : ?seed:int -> ?quick:bool -> ?fault_seed:int -> unit -> (string * point list) list

(** Run the flattened battery on a worker pool; byte-identical payloads
    to {!all} by construction. *)
val all_parallel :
  ?domains:int ->
  ?seed:int ->
  ?quick:bool ->
  ?fault_seed:int ->
  unit ->
  (string * point list) list

(** CSV of one group (header + one line per point, [%.6f] metrics) —
    the byte-level currency of the determinism checks. *)
val csv_of_points : point list -> string

(** Concatenated {!csv_of_points} of every group. *)
val csv_of_groups : (string * point list) list -> string

val pp_points : Format.formatter -> string * point list -> unit
