type t = {
  engine : Sim.Engine.t;
  topology : Net.Topology.t;
  flows : Net.Flow.t list;
  core_links : Net.Link.t list;
}

let flow t id =
  match List.find_opt (fun f -> f.Net.Flow.id = id) t.flows with
  | Some f -> f
  | None -> raise Not_found

let link_capacities t =
  List.map
    (fun link -> (link.Net.Link.id, Net.Link.capacity_pps link))
    (Net.Topology.links t.topology)

let expected_rates t ~active =
  let demands =
    List.filter_map
      (fun f ->
        if List.mem f.Net.Flow.id active then
          Some
            (Fairness.Maxmin.demand ~flow:f.Net.Flow.id ~weight:f.Net.Flow.weight
               ~links:(List.map (fun l -> l.Net.Link.id) (Net.Flow.links f t.topology))
               ())
        else None)
      t.flows
  in
  Fairness.Maxmin.solve ~capacities:(link_capacities t) ~demands

let default_bandwidth = 4_000_000.

let default_delay = 0.04

(* Entry and exit core router (1-based) for each flow of Topology 1. *)
let topology1_span flow_id =
  match flow_id with
  | n when n >= 1 && n <= 5 -> (1, 2)
  | n when n >= 6 && n <= 8 -> (1, 3)
  | 9 | 10 -> (1, 4)
  | 11 | 12 -> (2, 3)
  | n when n >= 13 && n <= 15 -> (2, 4)
  | n when n >= 16 && n <= 20 -> (3, 4)
  | n -> invalid_arg (Printf.sprintf "Network.topology1: unknown flow %d" n)

let chain ~engine ?(bandwidth = default_bandwidth) ?(delay = default_delay)
    ?(queue_capacity = 40) ?core_qdisc ~cores:n_cores ~specs () =
  if n_cores < 2 then invalid_arg "Network.chain: need at least two cores";
  let topology = Net.Topology.create engine in
  let qdisc () = Net.Qdisc.droptail ~capacity:queue_capacity in
  let core_qdisc = match core_qdisc with Some f -> f | None -> qdisc in
  let cores =
    Array.init n_cores (fun i ->
        Net.Topology.add_node topology ~kind:Net.Node.Core (Printf.sprintf "C%d" (i + 1)))
  in
  let core_links =
    List.init (n_cores - 1) (fun i ->
        Net.Topology.add_link topology ~src:cores.(i) ~dst:cores.(i + 1) ~bandwidth
          ~delay ~qdisc:(core_qdisc ()))
  in
  let flows =
    List.map
      (fun (flow_id, weight, entry, exit) ->
        let ingress =
          Net.Topology.add_node topology ~kind:Net.Node.Edge
            (Printf.sprintf "E%d" flow_id)
        in
        let egress =
          Net.Topology.add_node topology ~kind:Net.Node.Edge
            (Printf.sprintf "D%d" flow_id)
        in
        ignore
          (Net.Topology.add_link topology ~src:ingress ~dst:cores.(entry - 1)
             ~bandwidth ~delay ~qdisc:(qdisc ()));
        ignore
          (Net.Topology.add_link topology ~src:cores.(exit - 1) ~dst:egress ~bandwidth
             ~delay ~qdisc:(qdisc ()));
        let core_path =
          List.init (exit - entry + 1) (fun i -> cores.(entry - 1 + i))
        in
        Net.Flow.make ~id:flow_id ~weight ~path:((ingress :: core_path) @ [ egress ]))
      specs
  in
  { engine; topology; flows; core_links }

let topology1 ~engine ?(bandwidth = default_bandwidth) ?(delay = default_delay)
    ?(queue_capacity = 40) ?core_qdisc ?(flow_ids = List.init 20 (fun i -> i + 1))
    ~weights () =
  let specs =
    List.map
      (fun id ->
        let entry, exit = topology1_span id in
        (id, weights id, entry, exit))
      flow_ids
  in
  chain ~engine ~bandwidth ~delay ~queue_capacity ?core_qdisc ~cores:4 ~specs ()

let random ~engine ~rng ?(bandwidth = default_bandwidth) ?(delay = default_delay)
    ?(queue_capacity = 40) ~cores:n_cores ~extra_links ~flows () =
  if n_cores < 2 then invalid_arg "Network.random: need at least two cores";
  let topology = Net.Topology.create engine in
  let qdisc () = Net.Qdisc.droptail ~capacity:queue_capacity in
  let add_link ~src ~dst =
    match Net.Topology.find_link topology ~src ~dst with
    | Some link -> link
    | None ->
      Net.Topology.add_link topology ~src ~dst ~bandwidth ~delay ~qdisc:(qdisc ())
  in
  let cores =
    Array.init n_cores (fun i ->
        Net.Topology.add_node topology ~kind:Net.Node.Core (Printf.sprintf "C%d" (i + 1)))
  in
  (* Bidirectional chain guarantees connectivity; chords add path
     diversity. *)
  for i = 0 to n_cores - 2 do
    ignore (add_link ~src:cores.(i) ~dst:cores.(i + 1));
    ignore (add_link ~src:cores.(i + 1) ~dst:cores.(i))
  done;
  for _ = 1 to extra_links do
    let a = Sim.Rng.int rng n_cores and b = Sim.Rng.int rng n_cores in
    if a <> b then ignore (add_link ~src:cores.(a) ~dst:cores.(b))
  done;
  let flows =
    List.map
      (fun (flow_id, weight) ->
        let entry = Sim.Rng.int rng n_cores in
        let exit =
          let rec draw () =
            let candidate = Sim.Rng.int rng n_cores in
            if candidate = entry then draw () else candidate
          in
          draw ()
        in
        let ingress =
          Net.Topology.add_node topology ~kind:Net.Node.Edge
            (Printf.sprintf "E%d" flow_id)
        in
        let egress =
          Net.Topology.add_node topology ~kind:Net.Node.Edge
            (Printf.sprintf "D%d" flow_id)
        in
        ignore (add_link ~src:ingress ~dst:cores.(entry));
        ignore (add_link ~src:cores.(exit) ~dst:egress);
        let core_path =
          match
            Net.Routing.shortest_path topology ~src:cores.(entry) ~dst:cores.(exit)
          with
          | Some path -> path
          | None -> assert false (* chain keeps the graph connected *)
        in
        Net.Flow.make ~id:flow_id ~weight ~path:((ingress :: core_path) @ [ egress ]))
      flows
  in
  (* Police every link: random flows may bottleneck anywhere, including
     their access links. *)
  { engine; topology; flows; core_links = Net.Topology.links topology }

let of_topo ~engine ?(bandwidth = default_bandwidth) ?(delay = default_delay)
    ?(queue_capacity = 40) ?core_qdisc ~graph ~fib ~flows:pop () =
  let topology = Net.Topology.create engine in
  let qdisc () = Net.Qdisc.droptail ~capacity:queue_capacity in
  let core_qdisc = match core_qdisc with Some f -> f | None -> qdisc in
  let n_hosts = Topo.Graph.n_hosts graph in
  let nodes =
    Array.init (Topo.Graph.n_nodes graph) (fun v ->
        let kind =
          match Topo.Graph.kind graph v with
          | Topo.Graph.Host -> Net.Node.Edge
          | Topo.Graph.Edge_switch | Topo.Graph.Agg_switch
          | Topo.Graph.Core_switch | Topo.Graph.Router ->
            Net.Node.Core
        in
        Net.Topology.add_node topology ~kind (Topo.Graph.label graph v))
  in
  (* Net link ids equal graph link ids (same creation order). Every
     link gets [core_qdisc]: on a generated topology any link — access
     links included — can be the bottleneck, and the DRR ablation must
     shape wherever congestion lives. *)
  let links =
    Array.init (Topo.Graph.n_links graph) (fun l ->
        Net.Topology.add_link topology
          ~src:nodes.(Topo.Graph.link_src graph l)
          ~dst:nodes.(Topo.Graph.link_dst graph l)
          ~bandwidth ~delay ~qdisc:(core_qdisc ()))
  in
  let dispatch = Net.Topology.sink_dispatcher topology in
  Array.iteri
    (fun v node ->
      let table =
        Array.init n_hosts (fun h ->
            let l = Topo.Fib.next_hop fib ~node:v ~host:h in
            if l < 0 then None else Some links.(l))
      in
      let host = Topo.Graph.host_of_node graph v in
      Net.Node.set_fib node ~host ~fib:table
        ~host_sink:(if host >= 0 then Some dispatch else None))
    nodes;
  let flows =
    List.init (Topo.Flows.count pop) (fun i ->
        let path =
          List.map
            (fun v -> nodes.(v))
            (Topo.Fib.route graph fib ~src_host:pop.Topo.Flows.src.(i)
               ~dst_host:pop.Topo.Flows.dst.(i))
        in
        Net.Flow.make ~id:(i + 1) ~weight:pop.Topo.Flows.weight.(i) ~path)
  in
  (* Police every link, as in [random]: generated flows may bottleneck
     anywhere, most often on their access links. *)
  { engine; topology; flows; core_links = Array.to_list links }

let single_bottleneck ~engine ?(bandwidth = default_bandwidth) ?(delay = default_delay)
    ?(queue_capacity = 40) ?core_qdisc ~weights n =
  if n <= 0 then invalid_arg "Network.single_bottleneck: need at least one flow";
  let specs = List.init n (fun i -> (i + 1, weights (i + 1), 1, 2)) in
  chain ~engine ~bandwidth ~delay ~queue_capacity ?core_qdisc ~cores:2 ~specs ()
