(** Multi-seed replication of experiments.

    All runs are deterministic per seed; replication across seeds shows
    the spread that the random components (selector draws, timer
    phases) induce, so a headline number is not a seed fluke. *)

type stats = {
  mean : float;
  stddev : float;  (** sample standard deviation; 0 for a single run *)
  min : float;
  max : float;
  runs : int;
}

(** [replicate ~seeds metric] evaluates [metric seed] for every seed
    and summarizes. @raise Invalid_argument on an empty seed list. *)
val replicate : seeds:int list -> (int -> float) -> stats

(** Figure-scenario replication: runs the spec once per seed and
    summarizes (steady-state Jain of the last phase, core drops, and
    convergence time — [nan]-free: non-converged runs count as the
    run duration). *)
type figure_stats = {
  jain : stats;
  drops : stats;
  convergence : stats;
}

(** [domains] shards the per-seed runs across the pool (default: the
    pool's own default). Each seed's run is byte-identical either
    way — statistics do not depend on the worker count. *)
val replicate_figure : ?domains:int -> seeds:int list -> Figures.spec -> figure_stats

val pp_stats : Format.formatter -> stats -> unit
