(** Evaluation networks.

    {!topology1} builds the paper's Figure 2 network: a chain of core
    routers C1-C2-C3-C4 whose three inter-core links are the congested
    links, and per-flow ingress/egress edge routers hanging off the
    cores. Every link is 4 Mbps with 40 ms propagation delay and a
    40-packet DropTail queue, giving the paper's round-trip times of
    240/320/400 ms for flows crossing 1/2/3 congested links.
    [core_qdisc] substitutes a different queue discipline on the
    congested links (RED/FRED for the related-work ablation). *)

type t = {
  engine : Sim.Engine.t;
  topology : Net.Topology.t;
  flows : Net.Flow.t list;  (** ascending flow id *)
  core_links : Net.Link.t list;  (** the potentially congested links *)
}

val flow : t -> int -> Net.Flow.t
(** @raise Not_found for an unknown flow id. *)

(** The default link bandwidth (bits/s) every builder uses when
    [bandwidth] is omitted — 4 Mbps, the paper's link speed. *)
val default_bandwidth : float

(** Capacities of every link, in packets/s, keyed by link id (input for
    the max-min reference solver). *)
val link_capacities : t -> (int * float) list

(** Weighted max-min reference rates (pkt/s) for a set of concurrently
    active flows. *)
val expected_rates : t -> active:int list -> (int * float) list

(** [topology1 ~engine ~weights ()] builds the 20-flow network of the
    paper's Figure 2. [weights] gives each flow id its rate weight.
    [flow_ids] (default [1..20]) selects a subset of the flows — e.g.
    Figure 5/6 use flows 1-10 only. Flow paths: 1-5 cross C1-C2;
    6-8 cross C1-C2-C3; 9-10 cross C1-C2-C3-C4; 11-12 cross C2-C3;
    13-15 cross C2-C3-C4; 16-20 cross C3-C4. *)
val topology1 :
  engine:Sim.Engine.t ->
  ?bandwidth:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  ?core_qdisc:(unit -> Net.Qdisc.t) ->
  ?flow_ids:int list ->
  weights:(int -> float) ->
  unit ->
  t

(** [chain ~engine ~cores ~specs ()] builds a linear chain of [cores]
    core routers; each spec [(flow_id, weight, entry, exit)] attaches a
    flow entering the cloud at core [entry] and leaving at core [exit]
    (1-based, [entry <= exit]) through its own edge routers — the
    general form behind {!topology1}, exposed for scenario files.
    @raise Invalid_argument on fewer than two cores. *)
val chain :
  engine:Sim.Engine.t ->
  ?bandwidth:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  ?core_qdisc:(unit -> Net.Qdisc.t) ->
  cores:int ->
  specs:(int * float * int * int) list ->
  unit ->
  t

(** [random ~engine ~rng ~cores ~extra_links ~flows ()] generates a
    random connected core network: a bidirectional chain of [cores]
    core routers plus [extra_links] random directed chords, with each
    flow entering and leaving at random distinct cores through its own
    edge routers. Flow paths are delay-shortest ({!Net.Routing}).
    Every link (access links included) is returned in [core_links] so
    schemes police the whole cloud. Used by the randomized end-to-end
    fairness property tests. *)
val random :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  ?bandwidth:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  cores:int ->
  extra_links:int ->
  flows:(int * float) list ->
  unit ->
  t

(** [of_topo ~engine ~graph ~fib ~flows ()] instantiates a generated
    {!Topo.Graph} as a Net topology: one Net node per graph node
    (hosts as edge routers, switches and routers as cores), one
    unidirectional Net link per directed graph link — link ids equal
    graph link ids — and a {!Net.Node.set_fib} destination-indexed
    forwarding table per node derived from [fib]. Each population
    entry [i] becomes Net flow [i + 1] routed by {!Topo.Fib.route}.
    Every link (access links included) uses [core_qdisc] and is
    returned in [core_links], so schemes police wherever the
    bottleneck lives. This is the scale path: packets forward through
    flat per-node arrays and one topology-wide sink table, with no
    per-flow route state on any node.
    @raise Failure if a sampled flow's host pair is unreachable. *)
val of_topo :
  engine:Sim.Engine.t ->
  ?bandwidth:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  ?core_qdisc:(unit -> Net.Qdisc.t) ->
  graph:Topo.Graph.t ->
  fib:Topo.Fib.t ->
  flows:Topo.Flows.t ->
  unit ->
  t

(** [single_bottleneck ~engine ~weights n] builds [n] flows sharing one
    core link C1-C2 (each with its own edges) — the minimal fairness
    scenario used by tests and the quickstart example. *)
val single_bottleneck :
  engine:Sim.Engine.t ->
  ?bandwidth:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  ?core_qdisc:(unit -> Net.Qdisc.t) ->
  weights:(int -> float) ->
  int ->
  t
