(** Streaming scale harness over generated topologies.

    [run] regenerates a {!Topo} graph, FIB and flow population from
    [(seed, label)], instantiates it through {!Network.of_topo} under
    one scheme, drives the full churn lifecycle ({!add_flow} at start,
    optional early retirement of a flow prefix, retirement of every
    survivor at the end — so the {!Sim.Invariant} flow ledger balances),
    and aggregates results {e streaming}: three flat int arrays of
    per-flow counters, no per-flow timeseries and no per-flow metric
    probes (auto probe registration is suspended for the build and
    restored afterwards). Equal [(seed, label)] arguments reproduce the
    run byte-identically, serial or pooled. *)

type scheme = Corelite | Csfq | Drr

val scheme_name : scheme -> string

type graph_spec =
  | Fattree of int  (** arity [k]: [k^3/4] hosts *)
  | As_graph of { nodes : int; m : int }
      (** preferential attachment, [m] links per new node *)

val graph_name : graph_spec -> string

type result = {
  label : string;
  scheme : scheme;
  graph : graph_spec;
  n_nodes : int;
  n_links : int;  (** directed *)
  n_hosts : int;
  n_flows : int;
  duration : float;
  measure_from : float;
  events : int;  (** engine events executed by this run *)
  sent : int;  (** packets injected, all flows, whole run *)
  delivered : int;
  drops : int;
  ended_early : int;  (** flows retired at [end_at] *)
  live_at_end : int;  (** live flows at [duration], before the drain *)
  mean_rate : float;  (** delivered pkt/s per measured flow *)
  jain_weighted : float;
      (** Jain index of measured rate per unit weight over the flows
          alive through the measurement window *)
  jain_vs_reference : float option;
      (** Jain index of measured/water-filling rate ratios; [None]
          unless [reference] was requested *)
  csv : string option;
      (** "flow,src,dst,weight,sent,delivered" rows; [None] unless
          [csv] was requested. Byte-deterministic — the golden and
          serial-vs-pooled witness. *)
}

(** Gentler adaptation steps than the paper defaults (alpha = beta =
    0.25 pkt/s, slow-start exit 8 pkt/s): scale runs settle near
    per-unit-weight shares of a few pkt/s, where 1 pkt/s steps
    oscillate across the whole share. *)
val default_source : Net.Source.params

(** [run ~engine ~seed ~label ~graph ~n_flows ~scheme ()] executes one
    scale scenario and returns its aggregate. [duration] defaults to
    20 s with [measure_from] at its midpoint; rates are measured over
    [[measure_from, duration]]. [end_fraction] retires that fraction of
    the flow population (lowest ids) at [end_at] (default halfway to
    [measure_from]); retired flows are excluded from the rate
    statistics but still appear in the CSV. [reference] additionally
    solves the weighted max-min water-filling and reports
    [jain_vs_reference] — quadratic-ish in flows, use at 10^4 and
    below. [delay] defaults to 2 ms (datacenter-scale propagation).
    [trace] arms the engine tracer before the deployment is built, so
    [Flow_start] events of the initial population are recorded.
    @raise Invalid_argument on a non-positive [duration] or [n_flows],
    [measure_from] outside the run, [end_fraction] outside [[0, 1)],
    or [end_at >= measure_from] when flows are retired early. *)
val run :
  engine:Sim.Engine.t ->
  seed:int ->
  label:string ->
  graph:graph_spec ->
  n_flows:int ->
  scheme:scheme ->
  ?duration:float ->
  ?measure_from:float ->
  ?bandwidth:float ->
  ?delay:float ->
  ?queue_capacity:int ->
  ?max_weight:int ->
  ?end_fraction:float ->
  ?end_at:float ->
  ?reference:bool ->
  ?csv:bool ->
  ?source_params:Net.Source.params ->
  ?trace:Sim.Trace.spec ->
  unit ->
  result
