type point = {
  label : string;
  jain : float;
  mean_error : float;
  core_drops : int;
  convergence : float option;
  feedback : int;
  mean_delay : float;
}

(* The Figure 5 workload under an arbitrary scheme/queue discipline.
   [measure_flows] restricts the fairness metrics to a subset (used by
   the burst sweep, where application-limited flows have no meaningful
   allowed rate while idle). *)
let run_workload ?(seed = 42) ?delay ?core_qdisc ?(bursty = []) ?burst_distribution
    ?measure_flows ~label scheme =
  let engine = Sim.Engine.create () in
  let core_qdisc = Option.map (fun f -> f engine) core_qdisc in
  let network =
    Network.topology1 ~engine ?delay ?core_qdisc
      ~flow_ids:(List.init 10 (fun i -> i + 1))
      ~weights:Figures.weights_s42 ()
  in
  let schedule = List.init 10 (fun i -> (0., Runner.Start (i + 1))) in
  let result =
    Runner.run ~scheme ~network ~seed ~bursty ?burst_distribution ~schedule
      ~duration:80. ()
  in
  let active = List.init 10 (fun i -> i + 1) in
  let measure = Option.value ~default:active measure_flows in
  let reference = Network.expected_rates network ~active in
  let measured =
    Array.of_list
      (List.map (fun id -> Runner.mean_rate result ~flow:id ~from:50. ~until:80.) measure)
  in
  let expected = Array.of_list (List.map (fun id -> List.assoc id reference) measure) in
  let series =
    List.map
      (fun id ->
        ( Sim.Timeseries.smooth (List.assoc id result.Runner.rate_series) ~window:5.,
          List.assoc id reference ))
      measure
  in
  let delays = List.map snd result.Runner.mean_delays in
  {
    label;
    jain = Runner.jain ~flows:measure result ~from:50. ~until:80.;
    mean_error = Fairness.Metrics.mean_relative_error ~measured ~expected;
    core_drops = result.Runner.core_drops;
    convergence = Fairness.Metrics.convergence_time ~tolerance:0.2 ~hold:5. series;
    feedback = result.Runner.feedback_markers;
    mean_delay =
      List.fold_left ( +. ) 0. delays /. float_of_int (List.length delays);
  }

let run_point ?seed ?delay ~label params =
  run_workload ?seed ?delay ~label (Runner.Corelite params)

let base = Corelite.Params.default

(* Every sweep point is a closed pool job: the whole grid is one flat
   job list that workers steal from, so a slow point never serializes a
   group behind it. The serial API below forces the same jobs in order,
   producing byte-identical output. *)

let point_job ?delay ~label params =
  Pool.job ~id:label (fun () -> run_point ?delay ~label params)

let sweep name values apply =
  List.map
    (fun v ->
      let label = Printf.sprintf "%s=%g" name v in
      point_job ~label (apply base v))
    values

let core_epoch_jobs () =
  sweep "core_epoch" [ 0.025; 0.05; 0.1; 0.2; 0.4 ] (fun p v ->
      { p with Corelite.Params.core_epoch = v })

let qthresh_jobs () =
  sweep "qthresh" [ 2.; 4.; 8.; 16.; 24. ] (fun p v ->
      { p with Corelite.Params.qthresh = v })

let k1_jobs () =
  sweep "k1" [ 0.5; 1.; 2.; 4. ] (fun p v -> { p with Corelite.Params.k1 = v })

let latency_jobs () =
  List.map
    (fun d ->
      point_job ~delay:d ~label:(Printf.sprintf "latency=%gms" (1000. *. d)) base)
    [ 0.002; 0.01; 0.04; 0.08 ]

let k_correction_jobs () =
  sweep "k" [ 0.; 0.001; 0.005; 0.02; 0.1 ] (fun p v ->
      { p with Corelite.Params.estimator = Corelite.Congestion.Mm1_cubic v })

let estimator_jobs () =
  [
    point_job ~label:"est=mm1_cubic"
      { base with Corelite.Params.estimator = Corelite.Congestion.Mm1_cubic 0.005 };
    point_job ~label:"est=linear"
      { base with Corelite.Params.estimator = Corelite.Congestion.Linear_excess 0.5 };
    point_job ~label:"est=ewma"
      {
        base with
        Corelite.Params.estimator =
          Corelite.Congestion.Ewma_threshold { gain = 0.3; scale = 0.5 };
      };
  ]

let cache_size_jobs () =
  List.map
    (fun n ->
      point_job
        ~label:(Printf.sprintf "cache=%d" n)
        {
          base with
          Corelite.Params.selector = Corelite.Params.Cache;
          cache_size = n;
        })
    [ 16; 64; 256; 512; 2048 ]

let selector_jobs () =
  [
    point_job ~label:"selector=cache"
      { base with Corelite.Params.selector = Corelite.Params.Cache };
    point_job ~label:"selector=stateless"
      { base with Corelite.Params.selector = Corelite.Params.Stateless };
  ]

let rav_gain_jobs () =
  sweep "rav_gain" [ 0.005; 0.02; 0.1; 0.5 ] (fun p v ->
      { p with Corelite.Params.rav_gain = v })

let wav_gain_jobs () =
  sweep "wav_gain" [ 0.05; 0.25; 0.5; 1.0 ] (fun p v ->
      { p with Corelite.Params.wav_gain = v })

let pw_cap_jobs () =
  sweep "pw_cap" [ 0.5; 1.; 2.; 4. ] (fun p v ->
      { p with Corelite.Params.pw_cap = v })

let edge_epoch_jobs () =
  sweep "edge_epoch" [ 0.1; 0.25; 0.5; 1.0 ] (fun p v ->
      {
        p with
        Corelite.Params.source = { p.Corelite.Params.source with Net.Source.epoch = v };
      })

let burst_jobs () =
  (* Flows 1-5 turn application-limited (exponential on/off, mean 2 s
     each way); flows 6-10 stay backlogged. Fairness should survive for
     the backlogged flows under both selectors — the paper's
     "insensitive to bursty flows" claim. *)
  let bursty = List.init 5 (fun i -> (i + 1, 2., 2.)) in
  (* Metrics cover the backlogged flows 6-10 only; note their reference
     is still the all-active max-min, so some positive error (they
     absorb the bursty flows' slack) is expected — fairness among them
     is the claim under test. *)
  let measure_flows = [ 6; 7; 8; 9; 10 ] in
  let wjob ?bursty ?burst_distribution ~label scheme =
    Pool.job ~id:label (fun () ->
        run_workload ?bursty ?burst_distribution ~measure_flows ~label scheme)
  in
  [
    wjob ~label:"steady+stateless" (Runner.Corelite base);
    wjob ~bursty ~label:"burst+stateless" (Runner.Corelite base);
    wjob ~bursty ~label:"burst+cache"
      (Runner.Corelite { base with Corelite.Params.selector = Corelite.Params.Cache });
    wjob ~bursty ~label:"burst+csfq" (Runner.Csfq Csfq.Params.default);
    (* Heavy-tailed (Pareto 1.5) burst lengths: long-range dependence
       stresses the history-based feedback far more than Markovian
       bursts. *)
    wjob ~bursty ~burst_distribution:(Net.Onoff.Pareto 1.5)
      ~label:"pareto+stateless" (Runner.Corelite base);
  ]

let qdisc_jobs () =
  let red_params = { Net.Qdisc.default_red_params with Net.Qdisc.capacity = 40 } in
  let mk_red engine () =
    Net.Qdisc.red ~params:red_params ~rng:(Sim.Rng.create 97)
      ~now:(fun () -> Sim.Engine.now engine)
      ()
  in
  let mk_fred engine () =
    Net.Qdisc.fred ~params:red_params ~rng:(Sim.Rng.create 98)
      ~now:(fun () -> Sim.Engine.now engine)
      ()
  in
  let wjob ?core_qdisc ~label scheme =
    Pool.job ~id:label (fun () -> run_workload ?core_qdisc ~label scheme)
  in
  [
    wjob ~label:"corelite+droptail" (Runner.Corelite base);
    wjob ~label:"csfq+droptail" (Runner.Csfq Csfq.Params.default);
    wjob ~label:"plain+droptail" (Runner.Plain Csfq.Params.default);
    wjob ~label:"plain+red"
      ~core_qdisc:(fun engine -> mk_red engine)
      (Runner.Plain Csfq.Params.default);
    wjob ~label:"plain+fred"
      ~core_qdisc:(fun engine -> mk_fred engine)
      (Runner.Plain Csfq.Params.default);
    (* The stateful ideal: per-flow DRR scheduling with the flows'
       weights as quanta — what Corelite approximates statelessly. *)
    wjob ~label:"plain+drr"
      ~core_qdisc:(fun _engine () ->
        Net.Qdisc.drr ~weight:(fun flow -> Figures.weights_s42 flow) ~capacity:20 ())
      (Runner.Plain Csfq.Params.default);
  ]

let jobs () =
  [
    ("core epoch (s)", core_epoch_jobs ());
    ("congestion threshold (pkts)", qthresh_jobs ());
    ("marker spacing K1", k1_jobs ());
    ("link latency", latency_jobs ());
    ("cubic coefficient k", k_correction_jobs ());
    ("congestion estimator", estimator_jobs ());
    ("marker cache size", cache_size_jobs ());
    ("selector variant", selector_jobs ());
    ("stateless pw cap", pw_cap_jobs ());
    ("rav EWMA gain", rav_gain_jobs ());
    ("wav EWMA gain", wav_gain_jobs ());
    ("edge adaptation epoch (s)", edge_epoch_jobs ());
    ("queue discipline / scheme (Section 5)", qdisc_jobs ());
    ("bursty sources (Section 2 claim)", burst_jobs ());
  ]

let force js = List.map (fun j -> j.Pool.run ()) js

let core_epoch () = force (core_epoch_jobs ())

let qthresh () = force (qthresh_jobs ())

let k1 () = force (k1_jobs ())

let latency () = force (latency_jobs ())

let k_correction () = force (k_correction_jobs ())

let estimator () = force (estimator_jobs ())

let cache_size () = force (cache_size_jobs ())

let selector () = force (selector_jobs ())

let rav_gain () = force (rav_gain_jobs ())

let wav_gain () = force (wav_gain_jobs ())

let pw_cap () = force (pw_cap_jobs ())

let edge_epoch () = force (edge_epoch_jobs ())

let burst () = force (burst_jobs ())

let qdisc () = force (qdisc_jobs ())

let all () = List.map (fun (name, js) -> (name, force js)) (jobs ())

let all_parallel ?domains () =
  (* Flatten the whole grid into one batch so workers steal across
     group boundaries, then re-chunk the in-order results. *)
  let groups = jobs () in
  let flat = List.concat_map snd groups in
  let results = ref (Pool.map ?domains flat) in
  List.map
    (fun (name, js) ->
      let k = List.length js in
      let rec take n acc rest =
        if n = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> invalid_arg "Sweeps.all_parallel: result count mismatch"
          | r :: rest -> take (n - 1) (r :: acc) rest
      in
      let points, rest = take k [] !results in
      results := rest;
      (name, points))
    groups

let pp_points ppf (name, points) =
  Format.fprintf ppf "@[<v>-- sensitivity: %s@," name;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "   %-18s jain=%.4f err=%5.1f%% drops=%5d delay=%5.1fms conv=%s@," p.label
        p.jain
        (100. *. p.mean_error)
        p.core_drops
        (1000. *. p.mean_delay)
        (match p.convergence with
        | Some t -> Printf.sprintf "%.1f s" t
        | None -> "none"))
    points;
  Format.fprintf ppf "@]"
