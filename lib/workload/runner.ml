type scheme =
  | Corelite of Corelite.Params.t
  | Csfq of Csfq.Params.t
  | Plain of Csfq.Params.t

let scheme_name = function
  | Corelite _ -> "corelite"
  | Csfq _ -> "csfq"
  | Plain _ -> "plain"

type action = Start of int | Stop of int

type fault_stats = {
  injected_drops : int;
  stripped_markers : int;
  lost_feedback : int;
  flaps : int;
}

type result = {
  scheme : string;
  network : Network.t;
  rate_series : (int * Sim.Timeseries.t) list;
  goodput_series : (int * Sim.Timeseries.t) list;
  cumulative : (int * Sim.Timeseries.t) list;
  core_drops : int;
  feedback_markers : int;
  early_drops : int;
  mean_delays : (int * float) list;
  p99_delays : (int * float) list;
  drops_by_flow : (int * int) list;
  fault : fault_stats option;
}

(* Scheme-independent view of a deployment. *)
type driver = {
  start : int -> unit;
  stop : int -> unit;
  rate : int -> float;  (* 0 when not running *)
  delivered : int -> int;
  mean_delay : int -> float;
  p99_delay : int -> float;
  flow_drops : int -> int;
  backlog : int -> bool -> unit;
  feedback : unit -> int;
  early : unit -> int;
}

let corelite_driver ?fault ?plan params ~rng ~network ~floors =
  let flows =
    List.map
      (fun f ->
        let floor = Option.value ~default:0. (List.assoc_opt f.Net.Flow.id floors) in
        Corelite.Deployment.spec ~floor f)
      network.Network.flows
  in
  let d =
    Corelite.Deployment.build ?fault ~params ~rng ~topology:network.Network.topology
      ~flows ~core_links:network.Network.core_links ()
  in
  Option.iter (Corelite.Deployment.schedule_resets d) plan;
  {
    start = Corelite.Deployment.start_flow d;
    stop = Corelite.Deployment.stop_flow d;
    rate =
      (fun id ->
        let a = Corelite.Deployment.agent d id in
        if Corelite.Edge.running a then Corelite.Edge.rate a else 0.);
    delivered = (fun id -> Corelite.Edge.delivered (Corelite.Deployment.agent d id));
    mean_delay = (fun id -> Corelite.Edge.mean_delay (Corelite.Deployment.agent d id));
    p99_delay = (fun id -> Corelite.Edge.p99_delay (Corelite.Deployment.agent d id));
    flow_drops = Corelite.Deployment.drops_of_flow d;
    backlog =
      (fun id backlogged ->
        Corelite.Edge.set_backlogged (Corelite.Deployment.agent d id) backlogged);
    feedback = (fun () -> Corelite.Deployment.total_feedback d);
    early = (fun () -> 0);
  }

let csfq_driver ?attach_cores params ~rng ~network ~floors =
  let flows =
    List.map
      (fun f ->
        let floor = Option.value ~default:0. (List.assoc_opt f.Net.Flow.id floors) in
        Csfq.Deployment.spec ~floor f)
      network.Network.flows
  in
  let d =
    Csfq.Deployment.build ?attach_cores ~params ~rng
      ~topology:network.Network.topology ~flows
      ~core_links:network.Network.core_links ()
  in
  {
    start = Csfq.Deployment.start_flow d;
    stop = Csfq.Deployment.stop_flow d;
    rate =
      (fun id ->
        let a = Csfq.Deployment.agent d id in
        if Csfq.Edge.running a then Csfq.Edge.rate a else 0.);
    delivered = (fun id -> Csfq.Edge.delivered (Csfq.Deployment.agent d id));
    mean_delay = (fun id -> Csfq.Edge.mean_delay (Csfq.Deployment.agent d id));
    p99_delay = (fun id -> Csfq.Edge.p99_delay (Csfq.Deployment.agent d id));
    flow_drops = Csfq.Deployment.drops_of_flow d;
    backlog =
      (fun id backlogged ->
        Csfq.Edge.set_backlogged (Csfq.Deployment.agent d id) backlogged);
    feedback = (fun () -> 0);
    early =
      (fun () ->
        List.fold_left (fun acc c -> acc + Csfq.Core.early_drops c) 0
          (Csfq.Deployment.cores d));
  }

let run ~scheme ~network ?(seed = 42) ?rng ?fault ?trace ?(metrics = false)
    ?(sample_period = 1.) ?(floors = []) ?(bursty = [])
    ?(burst_distribution = Net.Onoff.Exponential) ~schedule ~duration () =
  let engine = network.Network.engine in
  (* Arm observability before the deployment is built so construction-
     time events (initial rate updates at the first Start) are caught.
     Recording is a pure observer: with [trace]/[metrics] omitted every
     instrumentation site stays behind a false guard and the run is
     byte-identical to an untraced one. *)
  (match trace with
  | Some spec -> Sim.Trace.apply (Sim.Engine.trace engine) spec
  | None -> ());
  let registry = Sim.Engine.metrics engine in
  if metrics then Sim.Metrics.set_enabled registry true;
  let rng = match rng with Some r -> r | None -> Sim.Rng.create seed in
  (* The injector draws only from the plan's own (seed, label)-derived
     substreams, so wiring it here perturbs nothing: with [fault]
     omitted (or a passive plan) the run is byte-identical to one
     without this code path. *)
  let injector =
    Option.map (fun plan -> Net.Fault.apply ~topology:network.Network.topology plan) fault
  in
  let driver =
    match scheme with
    | Corelite params ->
      corelite_driver ?fault:injector ?plan:fault params ~rng ~network ~floors
    | Csfq _ | Plain _ -> (
      (match fault with
      | Some plan when plan.Sim.Faultplan.resets <> [] ->
        (* Loss and flaps are scheme-agnostic link behaviour, but a
           router reset wipes scheme soft state, which only the
           Corelite deployment models. *)
        invalid_arg "Runner.run: router resets require the Corelite scheme"
      | Some _ | None -> ());
      match scheme with
      | Csfq params -> csfq_driver params ~rng ~network ~floors
      | Plain params -> csfq_driver ~attach_cores:false params ~rng ~network ~floors
      | Corelite _ -> assert false)
  in
  List.iter
    (fun (time, action) ->
      let act =
        match action with
        | Start id -> fun () -> driver.start id
        | Stop id -> fun () -> driver.stop id
      in
      ignore (Sim.Engine.schedule_at engine ~time act))
    schedule;
  List.iter
    (fun (id, on_mean, off_mean) ->
      ignore
        (Net.Onoff.start ~engine ~rng:(Sim.Rng.split rng)
           ~distribution:burst_distribution ~on_mean ~off_mean (driver.backlog id)))
    bursty;
  let ids = List.map (fun f -> f.Net.Flow.id) network.Network.flows in
  let series name = List.map (fun id -> (id, Sim.Timeseries.create ~name:(Printf.sprintf "%s%d" name id) ())) ids in
  let rates = series "rate-flow" in
  let goodputs = series "goodput-flow" in
  let cumulatives = series "cumulative-flow" in
  let previous_delivered = Hashtbl.create 32 in
  List.iter (fun id -> Hashtbl.replace previous_delivered id 0) ids;
  let m_samples =
    if Sim.Metrics.enabled registry then
      Some
        (Sim.Metrics.counter registry "runner.samples"
           ~help:"sampling ticks taken, one per sample_period")
    else None
  in
  let m_goodput =
    if Sim.Metrics.enabled registry then
      Some
        (Sim.Metrics.histogram registry "runner.goodput"
           ~help:"per-flow goodput samples, pkt/s, across all flows")
    else None
  in
  let sample () =
    let now = Sim.Engine.now engine in
    (match m_samples with Some c -> Sim.Metrics.incr c | None -> ());
    List.iter
      (fun id ->
        Sim.Timeseries.add (List.assoc id rates) now (driver.rate id);
        let total = driver.delivered id in
        let before = Hashtbl.find previous_delivered id in
        Hashtbl.replace previous_delivered id total;
        let goodput = float_of_int (total - before) /. sample_period in
        (match m_goodput with
        | Some h -> Sim.Metrics.observe h goodput
        | None -> ());
        Sim.Timeseries.add (List.assoc id goodputs) now goodput;
        Sim.Timeseries.add (List.assoc id cumulatives) now (float_of_int total))
      ids
  in
  ignore (Sim.Engine.every engine ~start:sample_period ~period:sample_period sample);
  Sim.Engine.run_until engine duration;
  let core_drops =
    List.fold_left (fun acc l -> acc + l.Net.Link.drops) 0 network.Network.core_links
  in
  {
    scheme = scheme_name scheme;
    network;
    rate_series = rates;
    goodput_series = goodputs;
    cumulative = cumulatives;
    core_drops;
    feedback_markers = driver.feedback ();
    early_drops = driver.early ();
    mean_delays = List.map (fun id -> (id, driver.mean_delay id)) ids;
    p99_delays = List.map (fun id -> (id, driver.p99_delay id)) ids;
    drops_by_flow = List.map (fun id -> (id, driver.flow_drops id)) ids;
    fault =
      Option.map
        (fun inj ->
          {
            injected_drops = Net.Fault.injected_drops inj;
            stripped_markers = Net.Fault.stripped_markers inj;
            lost_feedback = Net.Fault.feedback_losses inj;
            flaps = Net.Fault.flaps_fired inj;
          })
        injector;
  }

let mean_rate result ~flow ~from ~until =
  match List.assoc_opt flow result.rate_series with
  | None -> nan
  | Some ts -> (
    match Sim.Timeseries.window_mean ts ~from ~until with
    | Some m -> m
    | None -> nan)

let mean_rates result ~from ~until =
  List.map
    (fun f ->
      let id = f.Net.Flow.id in
      (id, mean_rate result ~flow:id ~from ~until))
    result.network.Network.flows

let jain ?flows result ~from ~until =
  let all = result.network.Network.flows in
  let selected =
    match flows with
    | None -> all
    | Some ids -> List.filter (fun f -> List.mem f.Net.Flow.id ids) all
  in
  let rates =
    Array.of_list
      (List.map (fun f -> mean_rate result ~flow:f.Net.Flow.id ~from ~until) selected)
  in
  let weights = Array.of_list (List.map (fun f -> f.Net.Flow.weight) selected) in
  Fairness.Metrics.jain_index ~rates ~weights
