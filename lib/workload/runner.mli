(** Unified experiment runner for both schemes.

    Builds a Corelite or weighted-CSFQ deployment on a {!Network.t},
    plays a start/stop schedule, samples every flow's allowed rate and
    cumulative delivery on a fixed grid, and returns the series the
    paper's figures plot. *)

type scheme =
  | Corelite of Corelite.Params.t
  | Csfq of Csfq.Params.t
  | Plain of Csfq.Params.t
      (** loss-driven adaptive sources with no core logic at all: the
          flows react only to whatever the links' queue disciplines
          drop (DropTail/RED/FRED related-work comparator) *)

val scheme_name : scheme -> string

type action = Start of int | Stop of int

(** What the fault injector actually did during a run (present iff a
    plan was passed): packets destroyed, markers stripped off forwarded
    packets, feedback markers suppressed, and link-down events fired. *)
type fault_stats = {
  injected_drops : int;
  stripped_markers : int;
  lost_feedback : int;
  flaps : int;
}

type result = {
  scheme : string;
  network : Network.t;
  rate_series : (int * Sim.Timeseries.t) list;
      (** per flow: allowed rate [bg] (pkt/s); 0 while stopped *)
  goodput_series : (int * Sim.Timeseries.t) list;
      (** per flow: packets delivered per second over each sample
          interval *)
  cumulative : (int * Sim.Timeseries.t) list;
      (** per flow: total packets delivered so far (paper Figure 4) *)
  core_drops : int;  (** packets lost on the congested links *)
  feedback_markers : int;  (** Corelite: feedback sent; CSFQ: 0 *)
  early_drops : int;  (** CSFQ: probabilistic drops; Corelite: 0 *)
  mean_delays : (int * float) list;
      (** per flow: mean end-to-end delay of delivered packets, seconds *)
  p99_delays : (int * float) list;
      (** per flow: 99th-percentile end-to-end delay (P2 estimate) *)
  drops_by_flow : (int * int) list;
      (** per flow: packets lost on the core links (CSFQ-paper-style
          loss accounting) *)
  fault : fault_stats option;
      (** injector counters; [None] when the run had no fault plan *)
}

(** [run ~scheme ~network ~schedule ~duration ()] executes one
    experiment. [floors] gives contracted minimum rates to specific
    flows; [bursty] makes the listed flows application-limited with
    exponential on/off periods [(flow, on_mean, off_mean)] (both
    extensions). Sampling defaults to once per simulated second.
    Deterministic for a fixed [seed]; [rng] overrides the root
    generator entirely (pool scenarios pass their
    [Sim.Rng.scenario]-derived stream here, leaving [seed] unused).

    [fault] applies a {!Sim.Faultplan.t} for the run: link loss and
    flaps are installed via {!Net.Fault.apply} for any scheme; router
    resets are scheduled through the Corelite deployment. The injector
    draws only from the plan's own substreams, so the chaos run is a
    pure function of [(seed or rng, plan)] — and a passive plan leaves
    the run byte-identical to a fault-free one.
    @raise Invalid_argument if the plan carries router resets and the
    scheme is not [Corelite], names an unknown link/flow, or schedules
    faults in the simulated past.

    [trace] arms the network engine's {!Sim.Trace} with the given spec
    before the deployment is built; [metrics] enables the engine's
    {!Sim.Metrics} registry (component probes register either way, but
    the runner's own push instruments — [runner.samples],
    [runner.goodput] — exist only when enabled). Both are pure
    observers: omitting them leaves the run byte-identical. Export what
    they captured from [result.network.engine] after the run. *)
val run :
  scheme:scheme ->
  network:Network.t ->
  ?seed:int ->
  ?rng:Sim.Rng.t ->
  ?fault:Sim.Faultplan.t ->
  ?trace:Sim.Trace.spec ->
  ?metrics:bool ->
  ?sample_period:float ->
  ?floors:(int * float) list ->
  ?bursty:(int * float * float) list ->
  ?burst_distribution:Net.Onoff.distribution ->
  schedule:(float * action) list ->
  duration:float ->
  unit ->
  result

(** Mean sampled rate of a flow over a time window (steady-state
    measurement); [nan] if the flow has no samples there. *)
val mean_rate : result -> flow:int -> from:float -> until:float -> float

(** Rates of all flows averaged over a window, ascending flow id. *)
val mean_rates : result -> from:float -> until:float -> (int * float) list

(** Jain fairness index of the windowed mean rates against the flow
    weights, over the given flows (default: all). *)
val jain : ?flows:int list -> result -> from:float -> until:float -> float
