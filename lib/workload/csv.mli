(** CSV export of experiment series (for plotting the figures).

    Rendering and writing are split so pool jobs can return CSV
    payloads as strings — the byte-level currency of the serial-vs-
    parallel determinism checks — while the coordinator alone touches
    the filesystem. *)

(** [field s] quotes one CSV field per RFC 4180: if [s] contains a
    comma, a double quote or a line break it is wrapped in double
    quotes with embedded quotes doubled; otherwise it is returned
    unchanged. *)
val field : string -> string

(** [row fields] joins quoted fields with commas (no trailing
    newline). *)
val row : string list -> string

(** [parse text] reads RFC 4180 CSV back into rows of unquoted fields
    (LF or CRLF line ends; quoted fields may span lines). Inverse of
    {!row} up to line assembly: [parse (row f ^ "\n") = [f]].
    @raise Invalid_argument on an unterminated quoted field. *)
val parse : string -> string list list

(** Render a {!Sim.Metrics} registry as CSV ([name,kind,value,help]) —
    probes are sampled here. Help texts are free-form, so fields go
    through {!field}; the output round-trips through {!parse}. *)
val of_metrics : Sim.Metrics.t -> string

(** [to_string series] renders a wide CSV: first column [time], one
    column per flow (header [flowN]). All series must share the
    sampling grid (the {!Runner} guarantees this). *)
val to_string : (int * Sim.Timeseries.t) list -> string

(** The three per-result payloads, as [(kind, csv)] pairs with kinds
    ["rates"], ["goodput"] and ["cumulative"]. *)
val result_strings : Runner.result -> (string * string) list

(** [write_series ~path series] writes [to_string series] to [path]. *)
val write_series : path:string -> (int * Sim.Timeseries.t) list -> unit

(** Write [<prefix>_rates.csv], [<prefix>_goodput.csv] and
    [<prefix>_cumulative.csv] under [dir] (created if missing). *)
val write_result : dir:string -> prefix:string -> Runner.result -> unit
