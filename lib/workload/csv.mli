(** CSV export of experiment series (for plotting the figures).

    Rendering and writing are split so pool jobs can return CSV
    payloads as strings — the byte-level currency of the serial-vs-
    parallel determinism checks — while the coordinator alone touches
    the filesystem. *)

(** [to_string series] renders a wide CSV: first column [time], one
    column per flow (header [flowN]). All series must share the
    sampling grid (the {!Runner} guarantees this). *)
val to_string : (int * Sim.Timeseries.t) list -> string

(** The three per-result payloads, as [(kind, csv)] pairs with kinds
    ["rates"], ["goodput"] and ["cumulative"]. *)
val result_strings : Runner.result -> (string * string) list

(** [write_series ~path series] writes [to_string series] to [path]. *)
val write_series : path:string -> (int * Sim.Timeseries.t) list -> unit

(** Write [<prefix>_rates.csv], [<prefix>_goodput.csv] and
    [<prefix>_cumulative.csv] under [dir] (created if missing). *)
val write_result : dir:string -> prefix:string -> Runner.result -> unit
