type connection = {
  sender : Net.Tcp.Sender.t;
  receiver : Net.Tcp.Receiver.t;
}

type t = {
  network : Network.t;
  aggregates : (int, Corelite.Aggregate.t) Hashtbl.t;
  connections : (int * int, connection) Hashtbl.t;  (* (flow, micro) *)
  deployment : Corelite.Deployment.t;
}

let build ?(params = Corelite.Params.default) ?(tcp_params = Net.Tcp.default_params)
    ?(seed = 42) ?(queue_capacity = 128) ~network ~micro_flows () =
  let engine = network.Network.engine in
  let topology = network.Network.topology in
  let rng = Sim.Rng.create seed in
  let aggregates = Hashtbl.create 8 in
  let connections = Hashtbl.create 32 in
  let agents = Hashtbl.create 8 in
  List.iter
    (fun flow ->
      let flow_id = flow.Net.Flow.id in
      let epoch_offset =
        Sim.Rng.float rng params.Corelite.Params.source.Net.Source.epoch
      in
      let aggregate =
        Corelite.Aggregate.create ~params ~topology ~flow ~epoch_offset
          ~queue_capacity ()
      in
      Hashtbl.add aggregates flow_id aggregate;
      Hashtbl.add agents flow_id (Corelite.Aggregate.edge aggregate);
      (* ACKs ride the control plane with the full reverse-path
         propagation delay of the flow. *)
      let ack_delay = Net.Topology.path_delay topology flow.Net.Flow.path in
      for micro = 1 to micro_flows flow_id do
        (* Tie the sender/receiver pair through the aggregate. The
           sender reference cell breaks the construction cycle:
           receiver -> ack channel -> sender -> transmit -> aggregate. *)
        let sender_cell = ref None in
        let send_ack ackno =
          ignore
            (Sim.Engine.schedule engine ~delay:ack_delay (fun () ->
                 match !sender_cell with
                 | Some sender -> Net.Tcp.Sender.ack sender ackno
                 | None -> ()))
        in
        let receiver = Net.Tcp.Receiver.create ~send_ack in
        let transmit pkt =
          (* Lost submissions (full edge queue) are recovered by TCP. *)
          ignore (Corelite.Aggregate.submit aggregate pkt)
        in
        let sender =
          Net.Tcp.Sender.create ~engine ~params:tcp_params ~flow:flow_id ~micro
            ~transmit ()
        in
        sender_cell := Some sender;
        Corelite.Aggregate.set_consumer aggregate ~micro (fun pkt ->
            Net.Tcp.Receiver.receive receiver pkt);
        Hashtbl.add connections (flow_id, micro) { sender; receiver }
      done)
    network.Network.flows;
  let deployment =
    Corelite.Deployment.of_agents ~params ~rng ~topology ~agents
      ~core_links:network.Network.core_links ()
  in
  { network; aggregates; connections; deployment }

let deployment t = t.deployment

let aggregate t flow_id =
  match Hashtbl.find_opt t.aggregates flow_id with
  | Some a -> a
  | None -> raise Not_found

let start t =
  Hashtbl.iter (fun _ a -> Corelite.Aggregate.start a) t.aggregates;
  Hashtbl.iter (fun _ c -> Net.Tcp.Sender.start c.sender) t.connections

let stop t =
  Hashtbl.iter (fun _ c -> Net.Tcp.Sender.stop c.sender) t.connections;
  Hashtbl.iter (fun _ a -> Corelite.Aggregate.stop a) t.aggregates

let goodput t ~flow ~micro =
  match Hashtbl.find_opt t.connections (flow, micro) with
  | Some c -> Net.Tcp.Receiver.delivered c.receiver
  | None -> raise Not_found

let aggregate_goodputs t =
  List.map
    (fun flow ->
      let flow_id = flow.Net.Flow.id in
      let total =
        Hashtbl.fold
          (fun (f, _) c acc ->
            if f = flow_id then acc + Net.Tcp.Receiver.delivered c.receiver else acc)
          t.connections 0
      in
      (flow_id, total))
    t.network.Network.flows

let total_retransmits t =
  Hashtbl.fold
    (fun _ c acc -> acc + Net.Tcp.Sender.retransmits c.sender)
    t.connections 0

let total_edge_drops t =
  Hashtbl.fold (fun _ a acc -> acc + Corelite.Aggregate.edge_drops a) t.aggregates 0

let jain t =
  let goodputs = aggregate_goodputs t in
  let rates =
    Array.of_list (List.map (fun (_, g) -> float_of_int g) goodputs)
  in
  let weights =
    Array.of_list
      (List.map
         (fun (id, _) -> (Network.flow t.network id).Net.Flow.weight)
         goodputs)
  in
  Fairness.Metrics.jain_index ~rates ~weights
