(** Deterministic open-loop dynamic-workload generator.

    Produces a flow-arrival plan — Poisson arrivals with heavy-tailed
    (Pareto) sizes, a configurable fraction of on/off "video-like"
    sources, an optional diurnal load curve and an optional flash-crowd
    spike — as a {e pure value}: every random draw descends from the
    single [(seed, label)]-derived {!Sim.Rng.scenario} stream, consumed
    in arrival-time order, so the same [(seed, label, profile,
    horizon)] always yields the same plan, whether generated serially
    or on any pool worker. The churn battery replays one plan against
    every scheme under test.

    This module is the sanctioned home of arrival-process sampling:
    lint rule L9 confines [exponential]/[pareto] draws to
    [lib/workload] (waiver [churn-ok]). *)

(** How a flow offers traffic while alive: always backlogged
    ([Elastic]) or toggling between Pareto/exponential on and off
    periods ([Onoff], the ns-2 video-like source driven through
    {!Net.Onoff}). *)
type kind =
  | Elastic
  | Onoff of { on_mean : float; off_mean : float; shape : float }

type flow = {
  id : int;
  arrival : float;  (** seconds from run start *)
  size : int;  (** packets to deliver; the flow ends when sent *)
  weight : float;
  kind : kind;
}

(** Sinusoidal intensity modulation: rate multiplied by
    [1 + depth * sin (2 pi t / period)]. *)
type diurnal = { period : float; depth : float }

(** Flash crowd: intensity multiplied by [boost] on
    [[at, at + duration)]. *)
type flash = { at : float; duration : float; boost : float }

type profile = {
  rate : float;  (** base arrival intensity, flows per second *)
  mean_size : float;  (** mean flow size, packets *)
  size_shape : float;  (** Pareto tail index of sizes, > 1 *)
  min_size : int;  (** sizes are clamped below by this *)
  weights : float array;  (** each arrival draws its weight uniformly *)
  onoff_fraction : float;  (** probability an arrival is [Onoff] *)
  on_mean : float;
  off_mean : float;
  onoff_shape : float;  (** Pareto tail index of on/off periods *)
  diurnal : diurnal option;
  flash : flash option;
}

(** 0.5 flows/s, Pareto(1.8) sizes of mean 100 packets (min 10),
    weights drawn from {1, 1, 2}, a quarter of flows on/off; no diurnal
    curve, no flash crowd. *)
val default : profile

(** @raise Invalid_argument naming the first field out of range
    (non-positive or non-finite rates, sizes or periods, tail indices
    of at most 1, fractions outside [0, 1], diurnal depth outside
    [0, 1), flash boost below 1, empty or non-positive weights). *)
val validate : profile -> unit

(** Instantaneous arrival intensity at time [t] (base rate times
    diurnal and flash factors). *)
val rate_at : profile -> float -> float

(** Upper bound of {!rate_at} over all times — the thinning envelope. *)
val peak_rate : profile -> float

(** Mean offered load of the transient population, packets per second
    ([rate * mean_size]) — the knob the battery uses to express "10%
    churn" as a fraction of bottleneck capacity. *)
val offered_load : profile -> float

(** [generate ~seed ~label ~profile ~horizon ()] draws the plan on
    [[0, horizon)], flows numbered from [first_id] (default 1) in
    arrival order.
    @raise Invalid_argument on an invalid profile or horizon. *)
val generate :
  seed:int ->
  label:string ->
  profile:profile ->
  horizon:float ->
  ?first_id:int ->
  unit ->
  flow list
