(* corelite-lint: run the project lint rules over source directories.

   Usage: corelite-lint [PATH ...]   (defaults to lib bin bench test)

   Prints one machine-readable line per violation
   ([file:line:col: [RULE] message]) and exits non-zero when any
   violation remains unwaived. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let roots = match args with [] -> [ "lib"; "bin"; "bench"; "test" ] | _ -> args in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (fun r -> prerr_endline ("corelite-lint: no such path: " ^ r)) missing;
  if missing <> [] then exit 2;
  let violations = Corelite_lint.Lint.lint_paths roots in
  Corelite_lint.Lint.report Format.std_formatter violations;
  match violations with
  | [] -> prerr_endline "corelite-lint: clean"
  | vs ->
    prerr_endline
      ("corelite-lint: " ^ string_of_int (List.length vs) ^ " violation(s)");
    exit 1
