(* See lint.mli for the rule catalogue. The pass parses sources with
   compiler-libs (no type information), so rule L2 is a syntactic
   approximation: a comparison is "float-typed" when one operand is a
   float literal, float arithmetic, a known float conversion or an
   explicit [: float] constraint. That catches every real site in this
   tree while never flagging integer code. *)

type rule =
  | L1_determinism
  | L2_float_equality
  | L3_logging
  | L4_mli_coverage
  | L5_unsafe
  | L6_hot_queue
  | L7_fault_inject
  | L8_telemetry
  | L9_arrival
  | Parse_error

let rule_name = function
  | L1_determinism -> "L1/determinism"
  | L2_float_equality -> "L2/float-eq"
  | L3_logging -> "L3/logging"
  | L4_mli_coverage -> "L4/mli-coverage"
  | L5_unsafe -> "L5/unsafe"
  | L6_hot_queue -> "L6/hot-queue"
  | L7_fault_inject -> "L7/fault-inject"
  | L8_telemetry -> "L8/telemetry"
  | L9_arrival -> "L9/arrival-sampling"
  | Parse_error -> "parse-error"

let waiver_token = function
  | L1_determinism -> Some "determinism-ok"
  | L2_float_equality -> Some "float-eq-ok"
  | L3_logging -> Some "logging-ok"
  | L4_mli_coverage -> Some "mli-ok"
  | L5_unsafe -> Some "unsafe-ok"
  | L6_hot_queue -> Some "queue-ok"
  | L7_fault_inject -> Some "fault-ok"
  | L8_telemetry -> Some "trace-ok"
  | L9_arrival -> Some "churn-ok"
  | Parse_error -> None

type violation = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

(* ------------------------------------------------------------------ *)
(* Path scoping *)

let path_components path = String.split_on_char '/' path

(* Library code lives under a [lib] directory component; rules L3-L5
   apply only there. *)
let in_lib path = List.mem "lib" (path_components path)

(* The one place allowed to own raw randomness. *)
let l1_allowlisted path =
  String.ends_with ~suffix:"lib/sim/rng.ml" path
  || String.ends_with ~suffix:"lib/sim/rng.mli" path

(* The one place allowed to spawn domains: everything else must submit
   jobs through Workload.Pool so sharding stays deterministic. *)
let pool_allowlisted path =
  String.ends_with ~suffix:"lib/workload/pool.ml" path
  || String.ends_with ~suffix:"lib/workload/pool.mli" path

(* The per-packet hot path: every simulated packet crosses lib/sim and
   lib/net several times per hop, so rule L6 confines the allocating
   [Stdlib.Queue] out of them. *)
let rec hot_components = function
  | "lib" :: ("sim" | "net") :: _ -> true
  | _ :: rest -> hot_components rest
  | [] -> false

let in_hot_path path = hot_components (path_components path)

(* The packet path: lib/net forwards, lib/corelite marks and drops.
   Rule L7 confines loss coins there to Net.Fault. *)
let rec fault_components = function
  | "lib" :: ("net" | "corelite") :: _ -> true
  | _ :: rest -> fault_components rest
  | [] -> false

let in_fault_path path = fault_components (path_components path)

(* The one module allowed to flip loss coins against the data path. *)
let fault_allowlisted path =
  String.ends_with ~suffix:"lib/net/fault.ml" path
  || String.ends_with ~suffix:"lib/net/fault.mli" path

(* The sanctioned home of arrival-process sampling: rule L9 confines
   exponential/pareto draws to lib/workload (Workload.Arrivals) so
   every churn plan is a pure (seed, label) value that replays
   byte-identically wherever it is generated. *)
let rec workload_components = function
  | "lib" :: "workload" :: _ -> true
  | _ :: rest -> workload_components rest
  | [] -> false

let in_workload path = workload_components (path_components path)

(* ------------------------------------------------------------------ *)
(* Rule predicates over flattened identifier paths *)

let l1_banned_ident = function
  | "Random" :: _ | "Stdlib" :: "Random" :: _ ->
    Some "Stdlib.Random is banned; draw from Sim.Rng so runs stay reproducible"
  | [ "Unix"; ("gettimeofday" | "time") ] ->
    Some "wall-clock reads are banned; simulation time comes from Sim.Engine.now"
  | [ "Sys"; "time" ] ->
    Some "Sys.time is banned; simulation time comes from Sim.Engine.now"
  | _ -> None

(* Scheduling nondeterminism: outside Workload.Pool, nothing may spawn
   domains or threads — results must not depend on worker interleaving. *)
let l1_parallel_ident = function
  | "Domain" :: _ | "Stdlib" :: "Domain" :: _ | "Thread" :: _ ->
    Some
      "Domain/Thread use is confined to Workload.Pool; submit jobs through \
       the pool so parallel runs stay bit-identical to serial"
  | _ -> None

let l3_banned_ident path =
  let bare = function
    | "print_endline" | "print_string" | "print_newline" | "print_char"
    | "print_int" | "print_float" | "prerr_endline" | "prerr_string"
    | "prerr_newline" ->
      true
    | _ -> false
  in
  match path with
  | [ (("stdout" | "stderr") as f) ] | [ "Stdlib"; (("stdout" | "stderr") as f) ]
    ->
    Some
      (f
     ^ " is banned in lib/; return the payload and let the caller print, or \
        log through Logs")
  | [ f ] | [ "Stdlib"; f ] ->
    if bare f then Some (f ^ " is banned in lib/; log through Logs") else None
  | [ "Printf"; (("printf" | "eprintf") as f) ]
  | [ "Stdlib"; "Printf"; (("printf" | "eprintf") as f) ] ->
    Some ("Printf." ^ f ^ " is banned in lib/; log through Logs")
  | [ "Format"; (("printf" | "eprintf" | "print_string" | "print_newline") as f) ]
  | [ "Stdlib"; "Format"; (("printf" | "eprintf" | "print_string" | "print_newline") as f) ]
    ->
    Some ("Format." ^ f ^ " is banned in lib/; log through Logs")
  | _ -> None

(* Direct channel writes in lib/: telemetry and series data must leave
   libraries as returned payloads (Sim.Trace/Sim.Metrics exports, CSV
   strings) so the coordinating executable alone touches the
   filesystem and pooled runs stay byte-identical to serial ones.
   [Format.fprintf] stays legal — printing to a caller-supplied
   formatter is how pp functions work. *)
let l8_banned_ident path =
  let file_write = function
    | "open_out" | "open_out_bin" | "open_out_gen" | "output_string"
    | "output_char" | "output_bytes" | "output_byte" | "output_substring"
    | "output_value" ->
      true
    | _ -> false
  in
  match path with
  | [ f ] | [ "Stdlib"; f ] when file_write f ->
    Some
      (f
     ^ " is banned in lib/; return the payload (Trace/Metrics/Csv export \
        strings) and let the executable write it, or waive with trace-ok")
  | "Out_channel" :: _ | "Stdlib" :: "Out_channel" :: _ ->
    Some
      "Out_channel is banned in lib/; return the payload and let the \
       executable write it, or waive with trace-ok"
  | [ "Printf"; "fprintf" ] | [ "Stdlib"; "Printf"; "fprintf" ] ->
    Some
      "Printf.fprintf writes to a raw channel; return the payload or use a \
       Format.formatter pp, or waive with trace-ok"
  | _ -> None

let l5_banned_ident = function
  | [ "Obj"; "magic" ] | [ "Stdlib"; "Obj"; "magic" ] ->
    Some "Obj.magic is banned in lib/"
  | [ "Stdlib"; "exit" ] ->
    Some "exit is banned in lib/; raise and let the caller decide"
  | _ -> None

let l6_banned_ident = function
  | "Queue" :: _ | "Stdlib" :: "Queue" :: _ ->
    Some
      "Stdlib.Queue allocates a cell per push; the lib/sim and lib/net hot \
       path must use Sim.Ring"
  | _ -> None

(* Ad-hoc loss coins in the packet path. Matching the trailing
   [bernoulli] component (Sim.Rng.bernoulli, Rng.bernoulli, a local
   rebinding) is deliberately blunt: the handful of legitimate
   algorithmic coins (RED early drop, the selectors' probabilistic
   rounding) carry [lint: fault-ok] waivers stating what they are. *)
let l7_banned_ident path =
  match List.rev path with
  | "bernoulli" :: _ ->
    Some
      "loss draws in lib/net and lib/corelite are confined to Net.Fault; \
       inject faults through a Sim.Faultplan or waive with fault-ok"
  | _ -> None

(* Arrival-process sampling outside the sanctioned generator. Matching
   the trailing [exponential]/[pareto] component (Sim.Rng.exponential,
   Rng.pareto, a local rebinding) is deliberately blunt, like L7: the
   one legitimate out-of-home consumer (Net.Onoff's period draws,
   driven by a plan Workload.Arrivals produced) carries [lint:
   churn-ok] waivers stating what it is. *)
let l9_banned_ident path =
  match List.rev path with
  | ("exponential" | "pareto") :: _ ->
    Some
      "arrival-process sampling (exponential/pareto draws) is confined to \
       lib/workload (Workload.Arrivals); generate the plan there or waive \
       with churn-ok"
  | _ -> None

(* A bare [exit] is only a violation when it is actually called —
   [exit] is also a perfectly good variable name (e.g. a flow's exit
   core), and without type information an identifier-position ban
   would drown in false positives. *)
let l5_banned_call = function
  | [ "exit" ] -> Some "exit is banned in lib/; raise and let the caller decide"
  | _ -> None

let eq_operator = function
  | [ (("=" | "<>" | "==" | "!=" | "compare") as op) ]
  | [ "Stdlib"; (("=" | "<>" | "==" | "!=" | "compare") as op) ] ->
    Some op
  | _ -> None

let float_arith = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_returning = function
  | [ "float_of_int" ] | [ "float_of_string" ] -> true
  | [ op ] | [ "Stdlib"; op ] when List.mem op float_arith -> true
  | [ "Float"; f ] ->
    List.mem f
      [ "of_int"; "of_string"; "add"; "sub"; "mul"; "div"; "neg"; "abs"; "rem";
        "pow"; "min"; "max"; "sqrt"; "exp"; "log"; "round"; "trunc"; "succ";
        "pred" ]
  | [ ("Int" | "Int32" | "Int64" | "Nativeint"); "to_float" ] -> true
  | _ -> false

let is_float_type (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt = Lident "float"; _ }, [])
  | Ptyp_constr ({ txt = Ldot (Lident "Stdlib", "float"); _ }, []) ->
    true
  | _ -> false

let rec floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, t) -> is_float_type t
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    float_returning (Longident.flatten txt)
  | Pexp_ifthenelse (_, a, Some b) -> floatish a || floatish b
  | Pexp_sequence (_, e) | Pexp_letmodule (_, _, e) | Pexp_open (_, e) ->
    floatish e
  | Pexp_let (_, _, e) -> floatish e
  | _ -> false

let is_false_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "false"; _ }, None) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* AST traversal *)

type ctx = {
  file : string;
  lib_scope : bool;
  hot_scope : bool;
  fault_scope : bool;
  arrival_scope : bool;
  rng_allowlisted : bool;
  pool_allowlisted : bool;
  mutable found : violation list;
}

let add ctx rule (loc : Location.t) message =
  let p = loc.loc_start in
  ctx.found <-
    {
      file = ctx.file;
      line = p.pos_lnum;
      col = p.pos_cnum - p.pos_bol;
      rule;
      message;
    }
    :: ctx.found

let check_ident ctx (loc : Location.t) path =
  (if not ctx.rng_allowlisted then
     match l1_banned_ident path with
     | Some msg -> add ctx L1_determinism loc msg
     | None -> ());
  (if not ctx.pool_allowlisted then
     match l1_parallel_ident path with
     | Some msg -> add ctx L1_determinism loc msg
     | None -> ());
  (if ctx.lib_scope then begin
     (match l3_banned_ident path with
     | Some msg -> add ctx L3_logging loc msg
     | None -> ());
     (match l8_banned_ident path with
     | Some msg -> add ctx L8_telemetry loc msg
     | None -> ());
     match l5_banned_ident path with
     | Some msg -> add ctx L5_unsafe loc msg
     | None -> ()
   end);
  (if ctx.hot_scope then
     match l6_banned_ident path with
     | Some msg -> add ctx L6_hot_queue loc msg
     | None -> ());
  (if ctx.fault_scope then
     match l7_banned_ident path with
     | Some msg -> add ctx L7_fault_inject loc msg
     | None -> ());
  if ctx.arrival_scope then
    match l9_banned_ident path with
    | Some msg -> add ctx L9_arrival loc msg
    | None -> ()

let is_hashtbl_create = function
  | [ "Hashtbl"; "create" ] | [ "Stdlib"; "Hashtbl"; "create" ] -> true
  | _ -> false

let iterator ctx =
  let open Ast_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ctx loc (Longident.flatten txt)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let path = Longident.flatten txt in
      (match (eq_operator path, args) with
      | Some op, [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ]
        when floatish a || floatish b ->
        add ctx L2_float_equality e.pexp_loc
          ("(" ^ op
         ^ ") on float operands; use a tolerance (e.g. Sim.Floats.near) or waive")
      | _ -> ());
      (if ctx.lib_scope then
         match l5_banned_call path with
         | Some msg -> add ctx L5_unsafe e.pexp_loc msg
         | None -> ());
      if (not ctx.rng_allowlisted) && is_hashtbl_create path then
        match
          List.find_opt
            (fun (label, value) ->
              label = Asttypes.Labelled "random" && not (is_false_literal value))
            args
        with
        | Some _ ->
          add ctx L1_determinism e.pexp_loc
            "Hashtbl.create ~random:true is banned; iteration order must be stable"
        | None -> ())
    | _ -> ());
    default_iterator.expr it e
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } ->
      let path = Longident.flatten txt in
      (if not ctx.rng_allowlisted then
         match l1_banned_ident path with
         | Some msg -> add ctx L1_determinism loc msg
         | None -> ());
      (if not ctx.pool_allowlisted then
         match l1_parallel_ident path with
         | Some msg -> add ctx L1_determinism loc msg
         | None -> ());
      (if ctx.hot_scope then
         match l6_banned_ident path with
         | Some msg -> add ctx L6_hot_queue loc msg
         | None -> ())
    | _ -> ());
    default_iterator.module_expr it m
  in
  { default_iterator with expr; module_expr }

(* ------------------------------------------------------------------ *)
(* Parsing and waivers *)

type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

let parse_file path =
  let source = In_channel.with_open_bin path In_channel.input_all in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  let ast =
    if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  in
  (ast, String.split_on_char '\n' source)

let line_waives lines n token =
  n >= 1
  && n <= Array.length lines
  && (let text = lines.(n - 1) in
      let probe = "lint: " ^ token in
      (* substring search; waiver comments are rare and short *)
      let tl = String.length text and pl = String.length probe in
      let rec scan i = i + pl <= tl && (String.sub text i pl = probe || scan (i + 1)) in
      scan 0)

let waived lines v =
  match waiver_token v.rule with
  | None -> false
  | Some token -> line_waives lines v.line token || line_waives lines (v.line - 1) token

let lint_file path =
  match parse_file path with
  | exception Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    [
      {
        file = path;
        line = loc.loc_start.pos_lnum;
        col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        rule = Parse_error;
        message = "syntax error";
      };
    ]
  | exception e ->
    (* Lexer errors and friends are not [Syntaxerr.Error] but still
       carry a precise location — ask the compiler for it rather than
       pinning everything to line 1. *)
    let line, col, message =
      match Location.error_of_exn e with
      | Some (`Ok err) ->
        let loc = err.Location.main.loc in
        ( loc.loc_start.pos_lnum,
          loc.loc_start.pos_cnum - loc.loc_start.pos_bol,
          Format.asprintf "%t" err.Location.main.txt )
      | Some `Already_displayed | None -> (1, 0, Printexc.to_string e)
    in
    [ { file = path; line; col; rule = Parse_error; message } ]
  | ast, lines ->
    let ctx =
      {
        file = path;
        lib_scope = in_lib path;
        hot_scope = in_hot_path path;
        fault_scope = in_fault_path path && not (fault_allowlisted path);
        arrival_scope =
          in_lib path && (not (in_workload path)) && not (l1_allowlisted path);
        rng_allowlisted = l1_allowlisted path;
        pool_allowlisted = pool_allowlisted path;
        found = [];
      }
    in
    let it = iterator ctx in
    (match ast with
    | Impl structure -> it.structure it structure
    | Intf signature -> it.signature it signature);
    let lines = Array.of_list lines in
    List.filter (fun v -> not (waived lines v)) ctx.found

(* ------------------------------------------------------------------ *)
(* File discovery and L4 *)

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let rec walk path acc =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if String.length entry > 0 && entry.[0] = '.' then acc
        else if entry = "_build" then acc
        else walk (Filename.concat path entry) acc)
      acc entries
  else if is_source path then path :: acc
  else acc

let first_lines_waive path token =
  match In_channel.with_open_bin path In_channel.input_all with
  | source ->
    let lines = Array.of_list (String.split_on_char '\n' source) in
    line_waives lines 1 token || line_waives lines 2 token || line_waives lines 3 token
  | exception _ -> false

let mli_coverage ~roots =
  let files = List.fold_left (fun acc root -> walk root acc) [] roots in
  List.filter_map
    (fun path ->
      if
        Filename.check_suffix path ".ml"
        && in_lib path
        && not (Sys.file_exists (path ^ "i"))
        && not (first_lines_waive path "mli-ok")
      then
        Some
          {
            file = path;
            line = 1;
            col = 0;
            rule = L4_mli_coverage;
            message = "missing interface " ^ Filename.basename path ^ "i";
          }
      else None)
    files

let compare_violation (a : violation) (b : violation) =
  match compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c

let lint_paths roots =
  let files = List.fold_left (fun acc root -> walk root acc) [] roots in
  let expr_violations = List.concat_map lint_file files in
  List.sort compare_violation (expr_violations @ mli_coverage ~roots)

let report ppf violations =
  List.iter
    (fun (v : violation) ->
      Format.fprintf ppf "%s:%d:%d: [%s] %s@." v.file v.line v.col
        (rule_name v.rule) v.message)
    violations
