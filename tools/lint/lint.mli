(** Corelite's project linter: determinism and invariant hygiene.

    The simulator's headline claim — weighted max-min fairness with no
    per-flow core state — is only reproducible if every run is strictly
    deterministic. This pass mechanically enforces the house rules that
    keep it so:

    - {b L1 determinism}: [Stdlib.Random], [Unix.gettimeofday],
      [Unix.time], [Sys.time] and [Hashtbl.create ~random:true] are
      banned everywhere except [lib/sim/rng.ml]; all stochastic
      behaviour must flow through [Sim.Rng]. Likewise [Domain] and
      [Thread] are banned everywhere except [lib/workload/pool.ml]:
      parallelism goes through [Workload.Pool], whose job results are
      bit-identical to serial execution by construction, so no other
      module may introduce scheduling nondeterminism.
    - {b L2 float equality}: [=], [<>], [==], [!=] and polymorphic
      [compare] applied to a syntactically float-typed operand (float
      literal, float arithmetic, [float_of_int], a [: float]
      constraint) are flagged; use a tolerance helper such as
      [Sim.Floats.near] or waive the line explicitly.
    - {b L3 logging hygiene}: direct printing ([print_endline],
      [Printf.printf], [Format.printf], ...) and the bare [stdout] /
      [stderr] channels are banned inside [lib/]; libraries must
      return payloads (or log through [Logs]) and leave the terminal
      and filesystem to the coordinating executable.
    - {b L4 interface coverage}: every [.ml] under [lib/] must have a
      matching [.mli].
    - {b L5 unsafe escape hatches}: [Obj.magic] (in any position) and
      calls to [exit] are banned inside [lib/]. A bare, un-applied
      [exit] identifier is allowed — it is also a fine variable name
      (e.g. a flow's exit core) and cannot be told apart without
      types.
    - {b L6 hot-path queues}: [Stdlib.Queue] is banned inside
      [lib/sim] and [lib/net] — the per-packet hot path — because
      every [Queue.push] allocates a cons cell. Use the growable ring
      buffer [Sim.Ring], whose steady-state push/pop allocate nothing.
      Other libraries (setup/reporting code) may still use [Queue].
    - {b L7 fault injection}: [bernoulli] loss coins are banned inside
      [lib/net] and [lib/corelite] — the packet path — except in
      [lib/net/fault.ml]. Fault injection must enter the data path
      through [Net.Fault] driving a declarative [Sim.Faultplan], never
      as an ad-hoc [Sim.Rng] draw, so that chaos runs replay from
      [(fault_seed, label)] alone and a fault-free run draws nothing.
      The few legitimate algorithmic coins (RED's early drop, the
      selectors' probabilistic rounding) carry [lint: fault-ok]
      waivers naming what they are.
    - {b L8 telemetry}: direct channel writes ([open_out],
      [output_string], [Out_channel], [Printf.fprintf], ...) are
      banned inside [lib/]. Observability data leaves libraries as
      returned payloads — [Sim.Trace]/[Sim.Metrics] exports and CSV
      strings — and only the coordinating executable touches the
      filesystem, which is what keeps pooled runs byte-identical to
      serial ones. [Format.fprintf] to a caller-supplied formatter
      stays legal (that is how [pp] functions work). The historical
      [Workload.Csv.write_*] helpers carry [lint: trace-ok] waivers.
    - {b L9 arrival sampling}: [exponential] and [pareto] draws are
      banned inside [lib/] outside [lib/workload] — arrival-process
      sampling belongs to [Workload.Arrivals], whose plans are pure
      [(seed, label)] values consumed in arrival-time order, so churn
      scenarios replay byte-identically serial or pooled. The one
      out-of-home consumer ([Net.Onoff]'s period draws, driven by a
      plan the generator produced) carries [lint: churn-ok] waivers.

    A violation on line [n] is waived when line [n] or [n - 1] carries
    a comment containing [lint: <token>] with the rule's waiver token
    (see {!waiver_token}); rule L4 is waived by a [lint: mli-ok]
    comment in the first three lines of the uncovered [.ml]. *)

type rule =
  | L1_determinism
  | L2_float_equality
  | L3_logging
  | L4_mli_coverage
  | L5_unsafe
  | L6_hot_queue
  | L7_fault_inject
  | L8_telemetry
  | L9_arrival
  | Parse_error  (** a file that does not parse; never waivable *)

(** Short machine-readable identifier, e.g. ["L1/determinism"]. *)
val rule_name : rule -> string

(** The token accepted in a [lint: <token>] waiver comment, e.g.
    ["float-eq-ok"] for {!L2_float_equality}. [None] for parse
    errors, which cannot be waived. *)
val waiver_token : rule -> string option

type violation = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  rule : rule;
  message : string;
}

(** [line_waives lines n token] is true when line [n] (1-based) of
    [lines] contains a [lint: <token>] comment. Shared with the typed
    pass (tools/typelint) so both passes honour one waiver syntax. *)
val line_waives : string array -> int -> string -> bool

(** [lint_file path] runs the expression-level rules (L1, L2, L3, L5)
    on one [.ml] or [.mli] file, applying scope rules (L3/L5 only
    under [lib/]), the L1 allowlist and waiver comments. *)
val lint_file : string -> violation list

(** [mli_coverage ~roots] runs L4 over every [.ml] under the [lib/]
    portions of [roots]. *)
val mli_coverage : roots:string list -> violation list

(** [lint_paths roots] walks [roots] (directories or single files),
    runs every rule, and returns violations sorted by file, line and
    column. *)
val lint_paths : string list -> violation list

(** One line per violation: [file:line:col: [RULE] message]. *)
val report : Format.formatter -> violation list -> unit
