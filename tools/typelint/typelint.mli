(** Corelite's typed static-analysis pass: allocation and domain-safety
    guarantees checked from [.cmt] files.

    Where [tools/lint] parses sources (no type information, rules
    L1-L8), this pass walks the {b Typedtree} that the compiler leaves
    in [.cmt]/[.cmti] files — so its rules can see resolved paths,
    inferred types and record representations, and check properties a
    syntactic pass fundamentally cannot:

    - {b T1 zero-alloc}: a function marked [[@corelite.hot]] must
      contain no allocating construct on its steady-state path. The
      annotated set is the per-packet machinery ([Sim.Event_queue],
      [Sim.Engine]'s scheduling core, [Sim.Ring], [Net.Link]'s
      forwarding pipeline, [Qdisc]'s FIFO/RED inner loops,
      [Net.Source] pacing, the Corelite core/edge per-marker paths);
      what those functions call {e outside} the annotated set is a
      trusted boundary (constructors, growth paths, error paths).
      Flagged constructs: closures ([fun]/[function] values nested
      inside the body), tuples, records, non-constant constructor and
      polymorphic-variant applications, array literals, [ref] cells,
      list/string/buffer/printf churn ([@], [^], [List.map],
      [Printf.sprintf], ...), partial applications (the result of an
      application is still a function — a closure is built), boxed
      floats escaping into polymorphic contexts (a [float]-typed
      argument instantiating a type variable, e.g. [Some 3.14] or
      [Hashtbl.replace tbl k 0.1]), and [t.f <- x] where [f] is a
      [float] field of a {e mixed} record (mixed-record float stores
      box a fresh float; all-float records store flat and are exempt —
      the typed pass reads the record representation to tell them
      apart). [raise]/[failwith]/[invalid_arg] applications and
      [assert] bodies are skipped: error paths are not steady state.

    - {b T2 domain-safety}: module-level mutable state under [lib/] —
      [ref] cells, [Hashtbl]/[Buffer]/[Queue]/[Stack] instances,
      arrays, [bytes], records with mutable fields — is flagged unless
      it is an [Atomic.t] or a [Domain.DLS] key. Every [lib/] module
      is reachable from scenarios submitted to [Workload.Pool], so a
      plain module-global cell is a data race (and a determinism leak)
      the moment scenarios run on two domains. Per-instance mutable
      state built inside functions is fine: each scenario owns its
      engine and component instances. Bindings {e inside} function
      bodies are not module state and are never flagged.

    - {b T3 rng-escape}: in the simulation component libraries
      ([lib/sim] outside [rng.ml], [lib/net], [lib/corelite],
      [lib/csfq], [lib/fairness]) a value of type [Sim.Rng.t] may only
      be {e produced} by the scenario-splitting API — [split],
      [stream], [scenario]. Any other application yielding an [Rng.t]
      (above all [Rng.create], which mints a stream from a raw seed
      outside the [(seed, label)] derivation) and any module-level
      binding of plain type [Rng.t] (a private stream stored at the
      module boundary) is flagged; functions {e returning} [Rng.t] are
      derivation APIs and stay legal — the production rule checks what
      they do inside. [lib/workload] and the
      executables are the scenario roots and are out of scope: they
      own seeds by design. This turns the pool's by-construction
      determinism (PR 2) into a checked invariant: component code can
      consume and derive streams but never originate or leak them.

    Waivers reuse the lint comment machinery: a violation on line [n]
    of the {e source} file is waived when line [n] or [n - 1] carries
    [lint: <token>] with the rule's token ([alloc-ok], [domain-ok],
    [rng-ok]). Parse the waiver sparingly and say what the site is —
    e.g. the [Some] per [Qdisc] dequeue is waived as the option-based
    API the timer-wheel/packet-pool PR will remove.

    Run it with [dune build @typelint]: the alias builds the [.cmt]
    files for every library under [lib/] (via dune's [check] alias)
    and fails on any unwaived violation. *)

type rule =
  | T1_alloc
  | T2_domain
  | T3_rng
  | Read_error  (** a [.cmt] that cannot be read; never waivable *)

(** Short machine-readable identifier, e.g. ["T1/zero-alloc"]. *)
val rule_name : rule -> string

(** The token accepted in a [lint: <token>] waiver comment, e.g.
    ["alloc-ok"] for {!T1_alloc}. [None] for read errors. *)
val waiver_token : rule -> string option

type violation = {
  file : string;  (** source file (resolved when it exists) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : rule;
  message : string;
}

(** The attribute marking a function as steady-state hot path. *)
val hot_attribute : string

(** [check_cmt path] reads one [.cmt] or [.cmti] file, applies every
    rule in the scope implied by the recorded source-file path, and
    filters waived violations by reading the source next to the
    [.cmt] (or at the recorded path). Results are sorted by line and
    column. Scope rules:
    - T1 wherever a [[@corelite.hot]] binding appears;
    - T2 for sources under a [lib] directory component;
    - T3 for sources under [lib/sim] (except [rng.ml]/[rng.mli]),
      [lib/net], [lib/corelite], [lib/csfq], [lib/fairness]. *)
val check_cmt : string -> violation list

(** [check_paths roots] walks [roots] for [*.cmt]/[*.cmti] files
    (dune hides them under [.<lib>.objs/byte/]; dot-directories are
    searched), runs {!check_cmt} on each, and sorts the result by
    file, line and column. *)
val check_paths : string list -> violation list

(** One line per violation: [file:line:col: [RULE] message]. *)
val report : Format.formatter -> violation list -> unit
