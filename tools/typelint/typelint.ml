(* See typelint.mli for the rule catalogue. The pass reads Typedtree
   from .cmt/.cmti files (dune's check alias produces them), so every
   identifier is a resolved [Path.t] — module aliases cannot hide a
   banned call the way they can from the syntactic lint — and every
   expression carries its inferred type, which is what makes the
   float-boxing and Rng-escape rules possible at all. *)

type rule =
  | T1_alloc
  | T2_domain
  | T3_rng
  | Read_error

let rule_name = function
  | T1_alloc -> "T1/zero-alloc"
  | T2_domain -> "T2/domain-safety"
  | T3_rng -> "T3/rng-escape"
  | Read_error -> "read-error"

let waiver_token = function
  | T1_alloc -> Some "alloc-ok"
  | T2_domain -> Some "domain-ok"
  | T3_rng -> Some "rng-ok"
  | Read_error -> None

type violation = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

let hot_attribute = "corelite.hot"

(* ------------------------------------------------------------------ *)
(* Path normalization and scoping *)

(* Dune-wrapped modules resolve to mangled paths (Sim__Rng.create); the
   rules match on the dot-separated logical path with the wrapper
   prefixes folded away. *)
(* "Sim__Event_queue" -> ["Sim"; "Event_queue"]: dune's wrapped-module
   mangling uses "__" as a separator, which is illegal mid-name in
   hand-written module names. *)
let split_mangled part =
  let n = String.length part in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub part start (n - start) :: acc)
    else if part.[i] = '_' && part.[i + 1] = '_' && i > start && i + 2 < n then
      go (i + 2) (i + 2) (String.sub part start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [ part ] else go 0 0 []

let normalize_path p =
  Path.name p |> String.split_on_char '.' |> List.concat_map split_mangled

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let path_parts p = strip_stdlib (normalize_path p)

let last_component p =
  match List.rev (normalize_path p) with c :: _ -> c | [] -> ""

let path_components path = String.split_on_char '/' path

let in_lib path = List.mem "lib" (path_components path)

(* T3 scope: the simulation component libraries. lib/workload is the
   scenario-root layer (it owns seeds by design) and is out of scope.
   lib/topo is in scope: generators must derive their streams with
   [scenario] (pure in (seed, label)), never mint them with [create]. *)
let rec rng_components = function
  | "lib" :: ("sim" | "net" | "corelite" | "csfq" | "fairness" | "topo") :: _ -> true
  | _ :: rest -> rng_components rest
  | [] -> false

let rng_allowlisted path =
  String.ends_with ~suffix:"lib/sim/rng.ml" path
  || String.ends_with ~suffix:"lib/sim/rng.mli" path

let in_rng_scope path =
  rng_components (path_components path) && not (rng_allowlisted path)

(* ------------------------------------------------------------------ *)
(* Type predicates *)

let is_float_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_arrow_ty ty =
  match Types.get_desc ty with Tarrow _ -> true | _ -> false

let is_tvar ty = match Types.get_desc ty with Tvar _ -> true | _ -> false

let is_rng_ty ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
    match List.rev (normalize_path p) with
    | "t" :: "Rng" :: _ -> true
    | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Context and reporting *)

type ctx = {
  file : string;
  lib_scope : bool;
  rng_scope : bool;
  mutable found : violation list;
}

let add ctx rule (loc : Location.t) message =
  let p = loc.loc_start in
  ctx.found <-
    {
      file = ctx.file;
      line = p.pos_lnum;
      col = p.pos_cnum - p.pos_bol;
      rule;
      message;
    }
    :: ctx.found

(* ------------------------------------------------------------------ *)
(* T1: allocation catalogue *)

(* Error paths are not steady state: an application of one of these
   never returns, so everything under it (message formatting included)
   is skipped. *)
let raising = function
  | [ ("raise" | "raise_notrace" | "invalid_arg" | "failwith") ] -> true
  | _ -> false

let mem fn l = List.mem fn l

(* Calls whose very purpose is to build a heap value. The allowlists
   keep the read-only entry points of each module. *)
let banned_call parts =
  match parts with
  | [ "@" ] -> Some "(@) copies its left list cell by cell"
  | [ "^" ] -> Some "(^) builds a fresh string"
  | [ "ref" ] -> Some "ref allocates a mutable cell"
  | [ "string_of_int" ] | [ "string_of_float" ] | [ "string_of_bool" ] ->
    Some "string conversion builds a fresh string"
  | "List" :: [ fn ]
    when not
           (mem fn
              [ "iter"; "iteri"; "iter2"; "length"; "compare_lengths";
                "compare_length_with"; "hd"; "tl"; "nth"; "mem"; "memq";
                "exists"; "exists2"; "for_all"; "for_all2"; "assoc"; "assq";
                "mem_assoc"; "mem_assq"; "is_empty"; "find"; "fold_left" ]) ->
    Some ("List." ^ fn ^ " allocates list cells")
  | "String" :: [ fn ]
    when not
           (mem fn
              [ "length"; "get"; "unsafe_get"; "compare"; "equal"; "contains";
                "contains_from"; "index"; "rindex"; "index_from"; "iter";
                "blit"; "unsafe_blit" ]) ->
    Some ("String." ^ fn ^ " builds a fresh string")
  | "Bytes" :: [ fn ]
    when not
           (mem fn
              [ "length"; "get"; "set"; "unsafe_get"; "unsafe_set"; "blit";
                "unsafe_blit"; "fill"; "compare"; "equal" ]) ->
    Some ("Bytes." ^ fn ^ " allocates")
  | "Buffer" :: [ fn ] -> Some ("Buffer." ^ fn ^ " allocates")
  | ("Printf" | "Format" | "Scanf") :: [ fn ] ->
    Some (List.hd parts ^ "." ^ fn ^ " allocates (formatting machinery)")
  | "Array" :: [ fn ]
    when mem fn
           [ "make"; "create_float"; "init"; "make_matrix"; "of_list";
             "to_list"; "append"; "concat"; "copy"; "sub"; "map"; "mapi";
             "map2"; "split"; "combine"; "of_seq"; "to_seq" ] ->
    Some ("Array." ^ fn ^ " allocates an array")
  | "Hashtbl" :: [ fn ]
    when mem fn
           [ "create"; "copy"; "add"; "replace"; "find_opt"; "find_all";
             "of_seq"; "to_seq"; "to_seq_keys"; "to_seq_values"; "reset" ] ->
    Some ("Hashtbl." ^ fn ^ " allocates (buckets or options)")
  | ("Queue" | "Stack") :: [ fn ]
    when not (mem fn [ "length"; "is_empty"; "iter" ]) ->
    Some (List.hd parts ^ "." ^ fn ^ " allocates per element")
  | ("Seq" | "Lazy") :: _ ->
    Some (List.hd parts ^ " is lazy: every step allocates")
  | ("Int32" | "Int64" | "Nativeint") :: [ fn ]
    when not (mem fn [ "to_int"; "compare"; "equal" ]) ->
    Some (List.hd parts ^ "." ^ fn ^ " returns a boxed integer")
  | "Option" :: [ fn ] when mem fn [ "map"; "bind"; "join"; "some"; "to_list" ]
    ->
    Some ("Option." ^ fn ^ " allocates an option")
  | "Gc" :: [ fn ] when mem fn [ "stat"; "quick_stat"; "counters" ] ->
    Some ("Gc." ^ fn ^ " allocates a stat record")
  | _ -> None

let callee (f : Typedtree.expression) =
  match f.exp_desc with
  | Texp_ident (p, _, vd) -> Some (p, vd)
  | _ -> None

let is_raise_app (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
    match callee f with
    | Some (p, _) -> raising (path_parts p)
    | None -> false)
  | _ -> false

let label_name = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled s | Asttypes.Optional s -> s

let formals_of ty =
  let rec go ty acc =
    match Types.get_desc ty with
    | Tarrow (lbl, a, b, _) -> go b ((label_name lbl, a) :: acc)
    | Tpoly (ty, _) -> go ty acc
    | _ -> List.rev acc
  in
  go ty []

(* A [float]-typed argument instantiating a type variable of the
   callee's scheme: the value crosses into a polymorphic context, where
   it must be boxed ([Some x], a generic container slot, ...).
   Primitives are exempt — the compiler specializes them at the known
   type (e.g. [=] on floats compares unboxed). *)
let check_float_escape ctx (vd : Types.value_description) args loc =
  match vd.val_kind with
  | Types.Val_prim _ -> ()
  | _ ->
    let formals = ref (formals_of vd.val_type) in
    List.iter
      (fun (lbl, arg) ->
        match arg with
        | None -> ()
        | Some (a : Typedtree.expression) -> (
          let name = label_name lbl in
          let rec take acc = function
            | [] -> None
            | (n, ty) :: rest when n = name -> Some (ty, List.rev_append acc rest)
            | f :: rest -> take (f :: acc) rest
          in
          match take [] !formals with
          | None -> ()
          | Some (fty, rest) ->
            formals := rest;
            if is_tvar fty && is_float_ty a.exp_type then
              add ctx T1_alloc loc
                "boxed float escapes into a polymorphic context (the argument \
                 instantiates a type variable, so it must be heap-boxed)"))
      args

let hot_iterator ctx =
  let open Tast_iterator in
  let expr it (e : Typedtree.expression) =
    if is_raise_app e then () (* error path: not steady state *)
    else begin
      (match e.exp_desc with
      | Texp_assert _ -> ()
      | Texp_function _ ->
        (* The closure itself is the violation; its body only runs when
           called, so it is not scanned — one finding (and one waiver)
           per closure, not one per construct inside it. *)
        add ctx T1_alloc e.exp_loc
          "closure allocated inside a [@corelite.hot] body (hoist it to a \
           top-level function or a field installed at construction)"
      | Texp_letop _ ->
        add ctx T1_alloc e.exp_loc "binding operators allocate closures"
      | Texp_tuple _ -> add ctx T1_alloc e.exp_loc "tuple allocation"
      | Texp_construct (_, cstr, _ :: _) ->
        add ctx T1_alloc e.exp_loc
          ("constructor " ^ cstr.Types.cstr_name
         ^ " with arguments allocates a block")
      | Texp_variant (_, Some _) ->
        add ctx T1_alloc e.exp_loc "polymorphic variant with argument allocates"
      | Texp_record _ -> add ctx T1_alloc e.exp_loc "record allocation"
      | Texp_array (_ :: _) -> add ctx T1_alloc e.exp_loc "array literal allocates"
      | Texp_lazy _ -> add ctx T1_alloc e.exp_loc "lazy thunk allocates"
      | Texp_object _ -> add ctx T1_alloc e.exp_loc "object allocation"
      | Texp_pack _ -> add ctx T1_alloc e.exp_loc "first-class module allocates"
      | Texp_setfield (_, _, lbl, v) ->
        if
          is_float_ty lbl.Types.lbl_arg
          && (match lbl.Types.lbl_repres with
             | Types.Record_float | Types.Record_unboxed _ -> false
             | _ -> true)
          && is_float_ty v.exp_type
        then
          add ctx T1_alloc e.exp_loc
            ("float store into mixed-record field " ^ lbl.Types.lbl_name
           ^ " boxes a fresh float (all-float records store flat; split the \
              floats out or waive)")
      | Texp_apply (f, args) -> (
        (* Partial when fewer args than the callee's *generic* arity:
           judging by the instantiated result type alone would flag
           [Event_queue.pop_exn q] ('a t -> 'a at 'a = unit -> unit),
           which returns an existing function rather than building
           one. *)
        let arity =
          match callee f with
          | Some (_, vd) -> List.length (formals_of vd.Types.val_type)
          | None -> List.length (formals_of f.exp_type)
        in
        if List.length args < arity && is_arrow_ty e.exp_type then
          add ctx T1_alloc e.exp_loc
            "partial application builds a closure (apply all arguments or \
             hoist the partial application out of the hot path)";
        match callee f with
        | Some (p, vd) ->
          (match banned_call (path_parts p) with
          | Some msg -> add ctx T1_alloc e.exp_loc msg
          | None -> ());
          check_float_escape ctx vd args e.exp_loc
        | None -> ())
      | _ -> ());
      match e.exp_desc with
      | Texp_assert _ | Texp_function _ -> ()
      | _ -> default_iterator.expr it e
    end
  in
  { default_iterator with expr }

(* The leading [fun x -> fun y -> ...] spine is the function's own
   parameter list, not an allocation per call; a trailing multi-case
   [function] is the last parameter and its case bodies are body code.
   A deeper [function] inside a case body is dispatch-dependent and is
   treated as body code too (it does allocate per call). *)
let rec hot_bodies (e : Typedtree.expression) acc =
  match e.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
    hot_bodies c_rhs acc
  | Texp_function { cases; _ } ->
    List.fold_left
      (fun acc c ->
        let acc =
          match c.Typedtree.c_guard with Some g -> g :: acc | None -> acc
        in
        c.Typedtree.c_rhs :: acc)
      acc cases
  | _ -> e :: acc

let has_hot_attr (attrs : Typedtree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = hot_attribute)
    attrs

let vb_is_hot (vb : Typedtree.value_binding) =
  has_hot_attr vb.vb_attributes || has_hot_attr vb.vb_expr.exp_attributes

let check_hot ctx (vb : Typedtree.value_binding) =
  let it = hot_iterator ctx in
  List.iter (fun body -> it.expr it body) (hot_bodies vb.vb_expr [])

(* ------------------------------------------------------------------ *)
(* T2: module-level mutable state *)

let t2_exempt = function
  | "Atomic" :: _ | "Domain" :: "DLS" :: _ -> true
  | _ -> false

let t2_creator = function
  | [ "ref" ] -> Some "a ref cell"
  | "Hashtbl" :: ("create" | "copy" | "of_seq") :: _ -> Some "a Hashtbl"
  | "Buffer" :: "create" :: _ -> Some "a Buffer"
  | "Queue" :: ("create" | "copy") :: _ -> Some "a Queue"
  | "Stack" :: ("create" | "copy") :: _ -> Some "a Stack"
  | "Bytes" :: ("create" | "make" | "of_string" | "copy" | "init") :: _ ->
    Some "mutable bytes"
  | "Array"
    :: ( "make" | "init" | "create_float" | "make_matrix" | "of_list"
       | "append" | "concat" | "copy" | "sub" )
    :: _ ->
    Some "a mutable array"
  | "Weak" :: "create" :: _ -> Some "a weak array"
  | _ -> None

let t2_mutable_head ty =
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> (
    match List.rev (path_parts p) with
    | "ref" :: _ -> Some "a ref cell"
    | "t" :: "Hashtbl" :: _ -> Some "a Hashtbl"
    | "t" :: "Buffer" :: _ -> Some "a Buffer"
    | "t" :: "Queue" :: _ -> Some "a Queue"
    | "t" :: "Stack" :: _ -> Some "a Stack"
    | "bytes" :: _ -> Some "mutable bytes"
    | "array" :: _ -> Some "a mutable array"
    | _ -> None)
  | _ -> None

let t2_message what =
  "module-level mutable state (" ^ what
  ^ ") is shared by every pool worker domain; make it Atomic, move it into \
     per-instance state, use Domain.DLS, or waive with domain-ok"

(* Scan the defining expression of a module-level binding without
   descending into functions (state built per call is per-instance) —
   but descending into [let]s, branches and constructor arguments, so
   a cell captured by a closure ([let x = let c = ref 0 in fun () -> c])
   is still found. *)
let rec t2_scan ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function _ -> ()
  | Texp_apply (f, args) ->
    (match callee f with
    | Some (p, _) ->
      let parts = path_parts p in
      if not (t2_exempt parts) then begin
        (match t2_creator parts with
        | Some what -> add ctx T2_domain e.exp_loc (t2_message what)
        | None -> ());
        List.iter (fun (_, a) -> Option.iter (t2_scan ctx) a) args
      end
    | None ->
      t2_scan ctx f;
      List.iter (fun (_, a) -> Option.iter (t2_scan ctx) a) args)
  | Texp_record { fields; extended_expression; _ } ->
    if
      Array.exists
        (fun ((lbl : Types.label_description), _) ->
          lbl.Types.lbl_mut = Asttypes.Mutable)
        fields
    then
      add ctx T2_domain e.exp_loc (t2_message "a record with mutable fields");
    Array.iter
      (fun (_, def) ->
        match def with
        | Typedtree.Overridden (_, e) -> t2_scan ctx e
        | Typedtree.Kept _ -> ())
      fields;
    Option.iter (t2_scan ctx) extended_expression
  | Texp_array (_ :: _) ->
    add ctx T2_domain e.exp_loc (t2_message "an array literal")
  | Texp_let (_, vbs, body) ->
    List.iter (fun (vb : Typedtree.value_binding) -> t2_scan ctx vb.vb_expr) vbs;
    t2_scan ctx body
  | Texp_sequence (a, b) ->
    t2_scan ctx a;
    t2_scan ctx b
  | Texp_ifthenelse (c, a, b) ->
    t2_scan ctx c;
    t2_scan ctx a;
    Option.iter (t2_scan ctx) b
  | Texp_match (scrut, cases, _) ->
    t2_scan ctx scrut;
    List.iter (fun (c : _ Typedtree.case) -> t2_scan ctx c.c_rhs) cases
  | Texp_construct (_, _, args) | Texp_tuple args ->
    List.iter (t2_scan ctx) args
  | Texp_variant (_, Some a) -> t2_scan ctx a
  | Texp_open (_, e) -> t2_scan ctx e
  | _ -> ()

let t2_binding ctx (vb : Typedtree.value_binding) =
  let before = List.length ctx.found in
  t2_scan ctx vb.vb_expr;
  if List.length ctx.found = before then
    (* Type-based fallback: creation hidden behind a call
       ([let t = make_table ()]). *)
    match t2_mutable_head vb.vb_pat.pat_type with
    | Some what -> add ctx T2_domain vb.vb_pat.pat_loc (t2_message what)
    | None -> ()

(* ------------------------------------------------------------------ *)
(* T3: Rng escape *)

let rng_producers = [ "split"; "stream"; "scenario" ]

let t3_iterator ctx =
  let open Tast_iterator in
  let expr it (e : Typedtree.expression) =
    (if is_rng_ty e.exp_type then
       match e.exp_desc with
       | Texp_apply (f, _) -> (
         match callee f with
         | Some (p, _) when List.mem (last_component p) rng_producers -> ()
         | _ ->
           add ctx T3_rng e.exp_loc
             "Sim.Rng.t produced outside the scenario-splitting API; component \
              code derives streams with split/stream/scenario from the rng it \
              was handed (Rng.create belongs to the scenario roots in \
              lib/workload and the executables)")
       | _ -> ());
    default_iterator.expr it e
  in
  { default_iterator with expr }

(* Only plain values are leaks: a module-level [Rng.t] is a private
   stream handed across the boundary. Functions returning [Rng.t] are
   derivation APIs and stay legal — T3a checks how they produce it. *)
let t3_leak ctx (loc : Location.t) ty =
  if is_rng_ty ty then
    add ctx T3_rng loc
      "exposes a Sim.Rng.t across a module boundary; streams are derived via \
       split/stream/scenario and stay owned by the component that received \
       them"

(* ------------------------------------------------------------------ *)
(* Structure / signature walks *)

let rec walk_structure ctx (str : Typedtree.structure) =
  List.iter (walk_item ctx) str.str_items

and walk_item ctx (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun (vb : Typedtree.value_binding) ->
        if vb_is_hot vb then check_hot ctx vb;
        if ctx.lib_scope then t2_binding ctx vb;
        if ctx.rng_scope then t3_leak ctx vb.vb_pat.pat_loc vb.vb_pat.pat_type)
      vbs
  | Tstr_module mb -> walk_module ctx mb.mb_expr
  | Tstr_recmodule mbs ->
    List.iter (fun (mb : Typedtree.module_binding) -> walk_module ctx mb.mb_expr) mbs
  | Tstr_include incl -> walk_module ctx incl.incl_mod
  | _ -> ()

and walk_module ctx (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> walk_structure ctx str
  | Tmod_constraint (me, _, _, _) -> walk_module ctx me
  | Tmod_functor (_, me) -> walk_module ctx me
  | _ -> ()

let walk_signature ctx (sg : Typedtree.signature) =
  List.iter
    (fun (item : Typedtree.signature_item) ->
      match item.sig_desc with
      | Tsig_value vd ->
        if ctx.rng_scope then
          t3_leak ctx vd.val_loc vd.val_val.Types.val_type
      | _ -> ())
    sg.sig_items

(* ------------------------------------------------------------------ *)
(* Waivers and cmt plumbing *)

let read_lines path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source -> Array.of_list (String.split_on_char '\n' source)
  | exception _ -> [||]

let waived lines (v : violation) =
  match waiver_token v.rule with
  | None -> false
  | Some token ->
    Corelite_lint.Lint.line_waives lines v.line token
    || Corelite_lint.Lint.line_waives lines (v.line - 1) token

(* The recorded source path is relative to the compiler's working
   directory (the build-context root under dune). Resolve it as given,
   next to the .cmt (fixtures compiled in place), or three levels up
   out of dune's .<lib>.objs/byte/ (a checker invoked from another
   directory). *)
let find_source ~cmt_path ~sourcefile =
  let base = Filename.basename sourcefile in
  let candidates =
    [
      sourcefile;
      Filename.concat (Filename.dirname cmt_path) base;
      Filename.concat
        (Filename.dirname (Filename.dirname (Filename.dirname cmt_path)))
        base;
    ]
  in
  List.find_opt Sys.file_exists candidates

let compare_violation (a : violation) (b : violation) =
  match compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c

let check_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e ->
    [
      {
        file = cmt_path;
        line = 1;
        col = 0;
        rule = Read_error;
        message = "cannot read cmt: " ^ Printexc.to_string e;
      };
    ]
  | cmt ->
    let sourcefile =
      match cmt.Cmt_format.cmt_sourcefile with
      | Some s -> s
      | None -> cmt_path
    in
    let resolved = find_source ~cmt_path ~sourcefile in
    let file = match resolved with Some p -> p | None -> sourcefile in
    let ctx =
      {
        file;
        lib_scope = in_lib sourcefile;
        rng_scope = in_rng_scope sourcefile;
        found = [];
      }
    in
    (match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      walk_structure ctx str;
      if ctx.rng_scope then begin
        let it = t3_iterator ctx in
        it.structure it str
      end
    | Cmt_format.Interface sg -> walk_signature ctx sg
    | _ -> ());
    let lines =
      match resolved with Some p -> read_lines p | None -> [||]
    in
    List.sort compare_violation
      (List.filter (fun v -> not (waived lines v)) ctx.found)

(* ------------------------------------------------------------------ *)
(* Discovery *)

let is_cmt path =
  Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"

let rec walk path acc =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" then acc
        else walk (Filename.concat path entry) acc)
      acc entries
  else if is_cmt path then path :: acc
  else acc

let check_paths roots =
  let files = List.fold_left (fun acc root -> walk root acc) [] roots in
  List.sort compare_violation (List.concat_map check_cmt files)

let report ppf violations =
  List.iter
    (fun (v : violation) ->
      Format.fprintf ppf "%s:%d:%d: [%s] %s@." v.file v.line v.col
        (rule_name v.rule) v.message)
    violations
