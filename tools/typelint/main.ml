(* corelite-typelint: run the typed rules over directories of .cmt files.

   Usage: corelite-typelint [PATH ...]   (defaults to lib)

   PATHs are walked recursively for .cmt/.cmti files (dune hides them
   under .<lib>.objs/byte/). Prints one machine-readable line per
   violation ([file:line:col: [RULE] message]) and exits non-zero when
   any violation remains unwaived. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let roots = match args with [] -> [ "lib" ] | _ -> args in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter
    (fun r -> prerr_endline ("corelite-typelint: no such path: " ^ r))
    missing;
  if missing <> [] then exit 2;
  let violations = Corelite_typelint.Typelint.check_paths roots in
  Corelite_typelint.Typelint.report Format.std_formatter violations;
  match violations with
  | [] -> prerr_endline "corelite-typelint: clean"
  | vs ->
    prerr_endline
      ("corelite-typelint: " ^ string_of_int (List.length vs) ^ " violation(s)");
    exit 1
