(* Regenerates every experiment of the paper in one go:

   - Figures 3-10: runs each scenario, prints the phase summaries and
     writes the full per-second CSV series under results/;
   - the restart-recovery comparison behind the Figures 9/10 discussion;
   - the Section 4.4 sensitivity sweeps and the ablations;
   - the TCP-aggregation extension.

   Output feeds EXPERIMENTS.md. Run with: dune exec bin/experiments.exe *)

let results_dir = "results"

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let figures () =
  hr "Figures 3-10";
  List.iter
    (fun spec ->
      let result = Workload.Figures.run spec in
      let summary = Workload.Figures.summarize spec result in
      Workload.Figures.pp_summary Format.std_formatter summary;
      Workload.Csv.write_result ~dir:results_dir ~prefix:spec.Workload.Figures.id
        result)
    (Workload.Figures.all ());
  Printf.printf "\nCSV series written under %s/\n" results_dir

(* The Figures 9/10 discussion: how fast do restarted high-weight flows
   regain their share? Flow i restarts at i+65; weight-3 flows are 5,
   10 and 15; fair share 71.4 pkt/s. *)
let restart_recovery () =
  hr "Figures 9/10: restart recovery of weight-3 flows (time to 80% of share)";
  List.iter
    (fun (spec : Workload.Figures.spec) ->
      let result = Workload.Figures.run spec in
      Printf.printf "%-8s:"
        (Workload.Runner.scheme_name spec.Workload.Figures.scheme);
      List.iter
        (fun flow ->
          let restart_at = float_of_int flow +. 65. in
          match
            Workload.Figures.restart_recovery result ~flow ~restart_at ~target:71.4
              ~fraction:0.8
          with
          | Some t -> Printf.printf "  flow %d: %5.1f s" flow t
          | None -> Printf.printf "  flow %d:  none " flow)
        [ 5; 10; 15 ];
      print_newline ())
    [ Workload.Figures.fig9 (); Workload.Figures.fig10 () ]

(* Queue dynamics at the first congested link under both schemes: the
   "incipient congestion" behaviour the whole design is about. Corelite
   should hover near the 8-packet threshold; CSFQ fills the buffer. *)
let queue_dynamics () =
  hr "Queue dynamics at link C1->C2 (Figure 5/6 workload)";
  List.iter
    (fun (spec : Workload.Figures.spec) ->
      let engine = Sim.Engine.create () in
      let network = spec.Workload.Figures.make_network ~engine in
      let bottleneck = List.hd network.Workload.Network.core_links in
      let probe = Net.Probe.attach ~engine ~period:0.5 bottleneck in
      let _ =
        Workload.Runner.run ~scheme:spec.Workload.Figures.scheme ~network
          ~schedule:spec.Workload.Figures.schedule
          ~duration:spec.Workload.Figures.duration ()
      in
      let queue = Net.Probe.queue_series probe in
      let mean_queue =
        Option.value ~default:0.
          (Sim.Timeseries.window_mean queue ~from:20. ~until:80.)
      in
      Printf.printf
        "%-8s: mean queue %.1f pkts  peak %d/40  utilization %.1f%%\n"
        (Workload.Runner.scheme_name spec.Workload.Figures.scheme)
        mean_queue (Net.Probe.peak_queue probe)
        (100. *. Net.Probe.mean_utilization probe);
      Workload.Csv.write_series
        ~path:
          (Filename.concat results_dir
             (Printf.sprintf "%s_queue.csv" spec.Workload.Figures.id))
        [ (0, queue); (1, Net.Probe.throughput_series probe);
          (2, Net.Probe.drop_series probe) ])
    [ Workload.Figures.fig5 (); Workload.Figures.fig6 () ]

let sweeps () =
  hr "Section 4.4 sensitivity sweeps and ablations";
  List.iter
    (fun named ->
      Workload.Sweeps.pp_points Format.std_formatter named;
      Format.print_newline ())
    (Workload.Sweeps.all ())

let tcp_extension () =
  hr "Extension: TCP micro-flows in shaped aggregates";
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 2
  in
  let tcp = Workload.Tcp_workload.build ~network ~micro_flows:(fun _ -> 3) () in
  Workload.Tcp_workload.start tcp;
  let snapshot = Hashtbl.create 8 in
  ignore
    (Sim.Engine.schedule_at engine ~time:300. (fun () ->
         List.iter
           (fun (flow, g) -> Hashtbl.replace snapshot flow g)
           (Workload.Tcp_workload.aggregate_goodputs tcp)));
  Sim.Engine.run_until engine 400.;
  Workload.Tcp_workload.stop tcp;
  let reference = Workload.Network.expected_rates network ~active:[ 1; 2 ] in
  List.iter
    (fun (flow, total) ->
      let before = Option.value ~default:0 (Hashtbl.find_opt snapshot flow) in
      Printf.printf
        "aggregate %d (w=%.0f): steady goodput %.1f pkt/s (corelite share %.1f)\n" flow
        (Workload.Network.flow network flow).Net.Flow.weight
        (float_of_int (total - before) /. 100.)
        (List.assoc flow reference))
    (Workload.Tcp_workload.aggregate_goodputs tcp)

let () =
  Printf.printf "Corelite reproduction: full experiment suite\n";
  figures ();
  restart_recovery ();
  queue_dynamics ();
  sweeps ();
  tcp_extension ()
