(* Regenerates every experiment of the paper in one go:

   - Figures 3-10: runs each scenario, prints the phase summaries and
     writes the full per-second CSV series under results/;
   - the restart-recovery comparison behind the Figures 9/10 discussion;
   - the Section 4.4 sensitivity sweeps and the ablations;
   - a pooled scenario battery exercising the per-scenario RNG streams;
   - the chaos battery (robustness extension): marker loss, bursty
     loss, link flaps and router resets, replayable with --fault-seed;
   - the churn battery (robustness extension): Poisson flow arrivals,
     flash crowds, a CLEF-style adversarial heavy hitter and churn
     composed with faults, gated on windowed Jain;
   - the TCP-aggregation extension.

   Every scenario is submitted through Workload.Pool, so the suite
   shards across domains with [-j N]; results and stdout are
   bit-identical to a serial run ([-j 1]) by construction — jobs return
   payloads and only this coordinator prints or touches the filesystem.

   Output feeds EXPERIMENTS.md. Run with: dune exec bin/experiments.exe *)

let results_dir = "results"

let domains = ref (Workload.Pool.default_domains ())

let fault_seed = ref Workload.Chaos.default_fault_seed

let trace_on = ref false

let metrics_on = ref false

(* Observability flags: figure runs are traced with the sparse control-
   plane kinds (per-packet kinds would wrap any reasonable ring over an
   800 s run) and exported to results/<id>_trace.jsonl / .csv; metric
   registries go to results/<id>_metrics.csv. Only this coordinator
   writes files, so pooled runs export the same bytes as serial ones. *)
let trace_spec () =
  Sim.Trace.spec ~capacity:(1 lsl 18) ~kinds:Sim.Trace.control_kinds ()

let write_file ~path payload =
  let oc = open_out path in
  let finally () = close_out oc in
  Fun.protect ~finally (fun () -> output_string oc payload)

let export_observability (spec : Workload.Figures.spec)
    (result : Workload.Runner.result) =
  let engine = result.Workload.Runner.network.Workload.Network.engine in
  let id = spec.Workload.Figures.id in
  if !trace_on then begin
    let tr = Sim.Engine.trace engine in
    write_file
      ~path:(Filename.concat results_dir (id ^ "_trace.jsonl"))
      (Sim.Trace.to_jsonl tr);
    write_file
      ~path:(Filename.concat results_dir (id ^ "_trace.csv"))
      (Sim.Trace.to_csv tr);
    Printf.printf "%s: traced %d events (%d retained)\n" id
      (Sim.Trace.recorded tr) (Sim.Trace.length tr)
  end;
  if !metrics_on then
    write_file
      ~path:(Filename.concat results_dir (id ^ "_metrics.csv"))
      (Workload.Csv.of_metrics (Sim.Engine.metrics engine))

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let figures () =
  hr "Figures 3-10";
  let trace = if !trace_on then Some (trace_spec ()) else None in
  let runs =
    Workload.Figures.run_all ~domains:!domains ?trace ~metrics:!metrics_on
      (Workload.Figures.all ())
  in
  List.iter
    (fun (spec, result) ->
      let summary = Workload.Figures.summarize spec result in
      Workload.Figures.pp_summary Format.std_formatter summary;
      Workload.Csv.write_result ~dir:results_dir ~prefix:spec.Workload.Figures.id
        result;
      export_observability spec result)
    runs;
  Printf.printf "\nCSV series written under %s/\n" results_dir

(* The Figures 9/10 discussion: how fast do restarted high-weight flows
   regain their share? Flow i restarts at i+65; weight-3 flows are 5,
   10 and 15; fair share 71.4 pkt/s. *)
let restart_recovery () =
  hr "Figures 9/10: restart recovery of weight-3 flows (time to 80% of share)";
  let runs =
    Workload.Figures.run_all ~domains:!domains
      [ Workload.Figures.fig9 (); Workload.Figures.fig10 () ]
  in
  List.iter
    (fun ((spec : Workload.Figures.spec), result) ->
      Printf.printf "%-8s:"
        (Workload.Runner.scheme_name spec.Workload.Figures.scheme);
      List.iter
        (fun flow ->
          let restart_at = float_of_int flow +. 65. in
          match
            Workload.Figures.restart_recovery result ~flow ~restart_at ~target:71.4
              ~fraction:0.8
          with
          | Some t -> Printf.printf "  flow %d: %5.1f s" flow t
          | None -> Printf.printf "  flow %d:  none " flow)
        [ 5; 10; 15 ];
      print_newline ())
    runs

(* Queue dynamics at the first congested link under both schemes: the
   "incipient congestion" behaviour the whole design is about. Corelite
   should hover near the 8-packet threshold; CSFQ fills the buffer. *)
let queue_dynamics () =
  hr "Queue dynamics at link C1->C2 (Figure 5/6 workload)";
  let job (spec : Workload.Figures.spec) =
    Workload.Pool.job ~id:(spec.Workload.Figures.id ^ "-queue") (fun () ->
        let engine = Sim.Engine.create () in
        let network = spec.Workload.Figures.make_network ~engine in
        let bottleneck = List.hd network.Workload.Network.core_links in
        let probe = Net.Probe.attach ~engine ~period:0.5 bottleneck in
        let _ =
          Workload.Runner.run ~scheme:spec.Workload.Figures.scheme ~network
            ~schedule:spec.Workload.Figures.schedule
            ~duration:spec.Workload.Figures.duration ()
        in
        let queue = Net.Probe.queue_series probe in
        let mean_queue =
          Option.value ~default:0.
            (Sim.Timeseries.window_mean queue ~from:20. ~until:80.)
        in
        ( Workload.Runner.scheme_name spec.Workload.Figures.scheme,
          mean_queue,
          Net.Probe.peak_queue probe,
          Net.Probe.mean_utilization probe,
          [ (0, queue); (1, Net.Probe.throughput_series probe);
            (2, Net.Probe.drop_series probe) ] ))
  in
  let specs = [ Workload.Figures.fig5 (); Workload.Figures.fig6 () ] in
  let outcomes = Workload.Pool.map ~domains:!domains (List.map job specs) in
  List.iter2
    (fun (spec : Workload.Figures.spec) (scheme, mean_queue, peak, util, series) ->
      Printf.printf
        "%-8s: mean queue %.1f pkts  peak %d/40  utilization %.1f%%\n" scheme
        mean_queue peak (100. *. util);
      Workload.Csv.write_series
        ~path:
          (Filename.concat results_dir
             (Printf.sprintf "%s_queue.csv" spec.Workload.Figures.id))
        series)
    specs outcomes

let sweeps () =
  hr "Section 4.4 sensitivity sweeps and ablations";
  List.iter
    (fun named ->
      Workload.Sweeps.pp_points Format.std_formatter named;
      Format.print_newline ())
    (Workload.Sweeps.all_parallel ~domains:!domains ())

(* A small battery through Pool.run_scenarios: same Figure 5 workload
   under all three schemes, each scenario drawing from its own
   (seed, label)-derived RNG stream on a pool-owned (reused, reset)
   engine. The numbers differ slightly from the fig5/fig6 tables above
   because the stream differs from the historical root seed — that is
   the point: adding or reordering scenarios here cannot perturb any
   other scenario's draw sequence. *)
let scenario_battery () =
  hr "Pooled scenario battery (per-scenario RNG streams, seed 42)";
  let scheme_scenario label scheme =
    {
      Workload.Pool.label;
      scenario =
        (fun ~engine ~rng ->
          let network =
            Workload.Network.topology1 ~engine
              ~flow_ids:(List.init 10 (fun i -> i + 1))
              ~weights:Workload.Figures.weights_s42 ()
          in
          let result =
            Workload.Runner.run ~scheme ~network ~rng
              ~schedule:(List.init 10 (fun i -> (0., Workload.Runner.Start (i + 1))))
              ~duration:80. ()
          in
          ( Workload.Runner.jain result ~from:50. ~until:80.,
            result.Workload.Runner.core_drops,
            Sim.Engine.executed engine ))
    }
  in
  let scenarios =
    [
      scheme_scenario "battery/corelite"
        (Workload.Runner.Corelite Corelite.Params.default);
      scheme_scenario "battery/csfq" (Workload.Runner.Csfq Csfq.Params.default);
      scheme_scenario "battery/plain" (Workload.Runner.Plain Csfq.Params.default);
    ]
  in
  let results =
    Workload.Pool.run_scenarios ~domains:!domains ~seed:42 scenarios
  in
  List.iter2
    (fun (s : _ Workload.Pool.scenario) (jain, drops, events) ->
      Printf.printf "%-18s jain=%.4f drops=%5d events=%d\n" s.Workload.Pool.label
        jain drops events)
    scenarios results

(* The chaos battery: the Figure 5 workload under injected faults
   (marker loss, Gilbert-Elliott bursty loss, link flaps, router
   resets) with edge soft-state recovery armed. Every fault draw
   descends from (--fault-seed, point label), so a chaos run replays
   byte-identically from the flags alone; the CSV goes to results/ for
   comparison across runs. *)
let chaos () =
  hr (Printf.sprintf "Chaos battery (robustness; fault seed %d)" !fault_seed);
  let groups =
    Workload.Chaos.all_parallel ~domains:!domains ~fault_seed:!fault_seed ()
  in
  List.iter
    (fun named ->
      Workload.Chaos.pp_points Format.std_formatter named;
      Format.print_newline ())
    groups;
  let path = Filename.concat results_dir "chaos_battery.csv" in
  let oc = open_out path in
  output_string oc (Workload.Chaos.csv_of_groups groups);
  close_out oc;
  Printf.printf "chaos CSV written to %s\n" path

(* The churn battery: Poisson transient arrivals with Pareto sizes, a
   diurnal intensity curve and a mid-run flash crowd over 8 long-lived
   base flows, with edge state created at first packet and aged out by
   the soft-state expiry sweep. Variants add a CLEF-style adversarial
   heavy hitter and churn composed with fault injection; the gated
   metric is windowed Jain against each scheme's own static baseline.
   Every draw descends from (seed, label) or (--fault-seed, label), so
   a churn run replays byte-identically from the flags alone. *)
let churn () =
  hr (Printf.sprintf "Churn battery (dynamic workloads; fault seed %d)" !fault_seed);
  let groups =
    Workload.Churn.all_parallel ~domains:!domains ~fault_seed:!fault_seed ()
  in
  List.iter
    (fun named ->
      Workload.Churn.pp_points Format.std_formatter named;
      Format.print_newline ())
    groups;
  let path = Filename.concat results_dir "churn_battery.csv" in
  let oc = open_out path in
  output_string oc (Workload.Churn.csv_of_groups groups);
  close_out oc;
  Printf.printf "churn CSV written to %s\n" path

let tcp_extension () =
  hr "Extension: TCP micro-flows in shaped aggregates";
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 2
  in
  let tcp = Workload.Tcp_workload.build ~network ~micro_flows:(fun _ -> 3) () in
  Workload.Tcp_workload.start tcp;
  let snapshot = Hashtbl.create 8 in
  ignore
    (Sim.Engine.schedule_at engine ~time:300. (fun () ->
         List.iter
           (fun (flow, g) -> Hashtbl.replace snapshot flow g)
           (Workload.Tcp_workload.aggregate_goodputs tcp)));
  Sim.Engine.run_until engine 400.;
  Workload.Tcp_workload.stop tcp;
  let reference = Workload.Network.expected_rates network ~active:[ 1; 2 ] in
  List.iter
    (fun (flow, total) ->
      let before = Option.value ~default:0 (Hashtbl.find_opt snapshot flow) in
      Printf.printf
        "aggregate %d (w=%.0f): steady goodput %.1f pkt/s (corelite share %.1f)\n" flow
        (Workload.Network.flow network flow).Net.Flow.weight
        (float_of_int (total - before) /. 100.)
        (List.assoc flow reference))
    (Workload.Tcp_workload.aggregate_goodputs tcp)

let () =
  Arg.parse
    [
      ( "-j",
        Arg.Set_int domains,
        "N  shard scenarios over N domains (default: recommended count; \
         results are identical for any N)" );
      ( "--domains",
        Arg.Set_int domains,
        "N  same as -j" );
      ( "--fault-seed",
        Arg.Set_int fault_seed,
        "N  root seed of the chaos battery's fault plans; rerunning with \
         the same seed replays every fault draw byte-identically \
         (default 271828)" );
      ( "--trace",
        Arg.Set trace_on,
        " record control-plane event traces for the figure runs and \
         write results/<fig>_trace.jsonl and .csv" );
      ( "--metrics",
        Arg.Set metrics_on,
        " enable the metrics registries and write \
         results/<fig>_metrics.csv" );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "experiments.exe [-j N] [--fault-seed N] [--trace] [--metrics]";
  Printf.printf "Corelite reproduction: full experiment suite\n";
  figures ();
  restart_recovery ();
  queue_dynamics ();
  sweeps ();
  scenario_battery ();
  chaos ();
  churn ();
  tcp_extension ()
