(* Tests for the inter-domain extension: two chained clouds with and
   without hand-off backpressure. *)

let build_chained ?(backpressure = true) () =
  let engine = Sim.Engine.create () in
  let cloud_a =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in
  let cloud_b = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 4 in
  let chain = Workload.Multi_cloud.build ~backpressure ~cloud_a ~cloud_b () in
  (engine, chain)

let steady_goodput engine chain ~flow ~from ~until =
  let before = ref 0 in
  ignore
    (Sim.Engine.schedule_at engine ~time:from (fun () ->
         before := Workload.Multi_cloud.delivered chain ~flow));
  ignore
    (Sim.Engine.schedule_at engine ~time:until (fun () -> ()));
  fun () ->
    float_of_int (Workload.Multi_cloud.delivered chain ~flow - !before)
    /. (until -. from)

let test_end_to_end_is_min_of_clouds () =
  let engine, chain = build_chained ~backpressure:false () in
  Workload.Multi_cloud.start chain;
  let goodput1 = steady_goodput engine chain ~flow:1 ~from:350. ~until:500. in
  let goodput3 = steady_goodput engine chain ~flow:3 ~from:350. ~until:500. in
  Sim.Engine.run_until engine 500.;
  Workload.Multi_cloud.stop chain;
  (* Flow 1: A-limited near 83; flow 3: B-limited near 125. *)
  Alcotest.(check bool) "flow 1 A-limited" true
    (Float.abs (goodput1 () -. 83.3) < 20.);
  Alcotest.(check bool) "flow 3 B-limited" true
    (Float.abs (goodput3 () -. 125.) < 25.)

let test_backpressure_removes_boundary_waste () =
  let engine_oblivious, oblivious = build_chained ~backpressure:false () in
  Workload.Multi_cloud.start oblivious;
  Sim.Engine.run_until engine_oblivious 400.;
  Workload.Multi_cloud.stop oblivious;
  let engine_bp, with_bp = build_chained ~backpressure:true () in
  Workload.Multi_cloud.start with_bp;
  Sim.Engine.run_until engine_bp 400.;
  Workload.Multi_cloud.stop with_bp;
  let drops chain = Workload.Multi_cloud.handoff_drops chain ~flow:3 in
  Alcotest.(check bool)
    (Printf.sprintf "drops %d -> %d" (drops oblivious) (drops with_bp))
    true
    (drops with_bp * 10 < drops oblivious)

let test_backpressure_approaches_global_maxmin () =
  let engine, chain = build_chained ~backpressure:true () in
  Workload.Multi_cloud.start chain;
  let goodputs =
    List.map
      (fun flow -> steady_goodput engine chain ~flow ~from:350. ~until:500.)
      [ 1; 2; 3 ]
  in
  Sim.Engine.run_until engine 500.;
  Workload.Multi_cloud.stop chain;
  (* Global max-min would give 125 to each of the four flows. *)
  List.iter
    (fun goodput ->
      let g = goodput () in
      Alcotest.(check bool)
        (Printf.sprintf "near 125 (got %.1f)" g)
        true
        (Float.abs (g -. 125.) < 20.))
    goodputs

let test_local_flow_accessors () =
  let _, chain = build_chained () in
  Alcotest.(check bool) "local agent exists" true
    (not (Corelite.Edge.running (Workload.Multi_cloud.local_agent chain ~flow:4)));
  Alcotest.check_raises "chained flow is not local" Not_found (fun () ->
      ignore (Workload.Multi_cloud.local_agent chain ~flow:1));
  Alcotest.check_raises "unknown chain" Not_found (fun () ->
      ignore (Workload.Multi_cloud.agent_a chain ~flow:4))

let test_build_validation () =
  let engine = Sim.Engine.create () in
  let cloud_a = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 2 in
  let engine_b = Sim.Engine.create () in
  let cloud_b =
    Workload.Network.single_bottleneck ~engine:engine_b ~weights:(fun _ -> 1.) 2
  in
  Alcotest.check_raises "different engines"
    (Invalid_argument "Multi_cloud.build: clouds must share one engine") (fun () ->
      ignore (Workload.Multi_cloud.build ~cloud_a ~cloud_b ()))

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "multi_cloud"
    [
      ( "chaining",
        [
          Alcotest.test_case "end-to-end is min of clouds" `Slow
            test_end_to_end_is_min_of_clouds;
          Alcotest.test_case "backpressure removes waste" `Slow
            test_backpressure_removes_boundary_waste;
          Alcotest.test_case "backpressure approaches global maxmin" `Slow
            test_backpressure_approaches_global_maxmin;
          Alcotest.test_case "local flow accessors" `Quick test_local_flow_accessors;
          Alcotest.test_case "build validation" `Quick test_build_validation;
        ] );
    ]
