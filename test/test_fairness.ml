(* Tests for the weighted max-min reference solver and metrics. *)

let check_float = Alcotest.(check (float 1e-6))

let check_float_eps eps = Alcotest.(check (float eps))

let demand ?floor ~flow ~weight ~links () =
  Fairness.Maxmin.demand ?floor ~flow ~weight ~links ()

let solve = Fairness.Maxmin.solve

let assoc = List.assoc

(* ------------------------------------------------------------------ *)
(* Maxmin *)

let test_single_link_equal_weights () =
  let demands = List.init 4 (fun i -> demand ~flow:i ~weight:1. ~links:[ 0 ] ()) in
  let rates = solve ~capacities:[ (0, 100.) ] ~demands in
  List.iter (fun (_, r) -> check_float "equal split" 25. r) rates

let test_single_link_weighted () =
  let demands =
    [
      demand ~flow:1 ~weight:1. ~links:[ 0 ] ();
      demand ~flow:2 ~weight:2. ~links:[ 0 ] ();
      demand ~flow:3 ~weight:3. ~links:[ 0 ] ();
    ]
  in
  let rates = solve ~capacities:[ (0, 600.) ] ~demands in
  check_float "w1" 100. (assoc 1 rates);
  check_float "w2" 200. (assoc 2 rates);
  check_float "w3" 300. (assoc 3 rates)

let test_classic_parking_lot () =
  (* Flow 0 crosses both links; flows 1 and 2 one link each.
     Unweighted max-min: each link splits 10 as 5/5. *)
  let demands =
    [
      demand ~flow:0 ~weight:1. ~links:[ 0; 1 ] ();
      demand ~flow:1 ~weight:1. ~links:[ 0 ] ();
      demand ~flow:2 ~weight:1. ~links:[ 1 ] ();
    ]
  in
  let rates = solve ~capacities:[ (0, 10.); (1, 10.) ] ~demands in
  check_float "long flow" 5. (assoc 0 rates);
  check_float "short flow 1" 5. (assoc 1 rates);
  check_float "short flow 2" 5. (assoc 2 rates)

let test_asymmetric_bottlenecks () =
  (* Link 0 tight (6), link 1 loose (20). The long flow is limited by
     link 0 to 3; the flow on link 1 picks up the slack: 17. *)
  let demands =
    [
      demand ~flow:0 ~weight:1. ~links:[ 0; 1 ] ();
      demand ~flow:1 ~weight:1. ~links:[ 0 ] ();
      demand ~flow:2 ~weight:1. ~links:[ 1 ] ();
    ]
  in
  let rates = solve ~capacities:[ (0, 6.); (1, 20.) ] ~demands in
  check_float "long flow" 3. (assoc 0 rates);
  check_float "tight-link flow" 3. (assoc 1 rates);
  check_float "loose-link flow" 17. (assoc 2 rates)

let test_paper_topology1_phases () =
  (* Section 4.1 hand calculation: 15 flows -> 33.33 per unit weight;
     20 flows -> 25 per unit weight (all links carry weight 20). *)
  let weights = Workload.Figures.weights_s41 in
  let span = function
    | n when n >= 1 && n <= 5 -> [ 0 ]
    | n when n >= 6 && n <= 8 -> [ 0; 1 ]
    | 9 | 10 -> [ 0; 1; 2 ]
    | 11 | 12 -> [ 1 ]
    | n when n >= 13 && n <= 15 -> [ 1; 2 ]
    | _ -> [ 2 ]
  in
  let capacities = [ (0, 500.); (1, 500.); (2, 500.) ] in
  let all = List.init 20 (fun i -> i + 1) in
  let demands_for ids =
    List.map (fun i -> demand ~flow:i ~weight:(weights i) ~links:(span i) ()) ids
  in
  let rates20 = solve ~capacities ~demands:(demands_for all) in
  List.iter
    (fun i -> check_float (Printf.sprintf "flow %d @20" i) (25. *. weights i) (assoc i rates20))
    all;
  let absent = [ 1; 9; 10; 11; 16 ] in
  let fifteen = List.filter (fun i -> not (List.mem i absent)) all in
  let rates15 = solve ~capacities ~demands:(demands_for fifteen) in
  List.iter
    (fun i ->
      check_float
        (Printf.sprintf "flow %d @15" i)
        (500. /. 15. *. weights i)
        (assoc i rates15))
    fifteen

let test_floor_respected () =
  let demands =
    [
      demand ~floor:50. ~flow:1 ~weight:1. ~links:[ 0 ] ();
      demand ~flow:2 ~weight:1. ~links:[ 0 ] ();
    ]
  in
  let rates = solve ~capacities:[ (0, 100.) ] ~demands in
  (* Flow 1 gets its 50 plus half the residual 50. *)
  check_float "contracted flow" 75. (assoc 1 rates);
  check_float "best-effort flow" 25. (assoc 2 rates)

let test_floor_oversubscription_rejected () =
  let demands =
    [
      demand ~floor:80. ~flow:1 ~weight:1. ~links:[ 0 ] ();
      demand ~floor:40. ~flow:2 ~weight:1. ~links:[ 0 ] ();
    ]
  in
  Alcotest.check_raises "oversubscribed"
    (Invalid_argument "Maxmin.solve: floors oversubscribe link 0") (fun () ->
      ignore (solve ~capacities:[ (0, 100.) ] ~demands))

let test_unknown_link_rejected () =
  Alcotest.check_raises "unknown link" (Invalid_argument "Maxmin.solve: unknown link 5")
    (fun () ->
      ignore
        (solve ~capacities:[ (0, 1.) ]
           ~demands:[ demand ~flow:1 ~weight:1. ~links:[ 5 ] () ]))

let test_demand_validation () =
  Alcotest.check_raises "weight" (Invalid_argument "Maxmin.demand: weight must be positive")
    (fun () -> ignore (demand ~flow:1 ~weight:0. ~links:[ 0 ] ()));
  Alcotest.check_raises "no links" (Invalid_argument "Maxmin.demand: flow traverses no link")
    (fun () -> ignore (demand ~flow:1 ~weight:1. ~links:[] ()));
  Alcotest.check_raises "floor" (Invalid_argument "Maxmin.demand: negative floor")
    (fun () -> ignore (demand ~floor:(-1.) ~flow:1 ~weight:1. ~links:[ 0 ] ()))

let test_single_link_share () =
  check_float "paper phase 1" (500. /. 15.)
    (Fairness.Maxmin.single_link_share ~capacity:500.
       ~weights:[ 2.; 2.; 2.; 3.; 2.; 2.; 2. ])

(* Random networks: the allocation must be feasible and each flow must
   have a bottleneck — a saturated link where its normalized rate is
   maximal among the flows crossing it (the max-min optimality
   condition). *)
let random_instance =
  QCheck.Gen.(
    let* n_links = 1 -- 5 in
    let* n_flows = 1 -- 8 in
    let* capacities = list_repeat n_links (float_range 10. 1000.) in
    let* flows =
      list_repeat n_flows
        (pair (float_range 0.5 5.)
           (let* k = 1 -- n_links in
            list_repeat k (0 -- (n_links - 1))))
    in
    return (capacities, flows))

let prop_maxmin_feasible_and_bottlenecked =
  QCheck.Test.make ~name:"maxmin allocations are feasible with per-flow bottlenecks"
    ~count:300
    (QCheck.make random_instance)
    (fun (capacities, flows) ->
      let capacities = List.mapi (fun i c -> (i, c)) capacities in
      let demands =
        List.mapi
          (fun i (w, links) ->
            demand ~flow:i ~weight:w ~links:(List.sort_uniq compare links) ())
          flows
      in
      let rates = solve ~capacities ~demands in
      let used = Hashtbl.create 8 in
      List.iter2
        (fun d (_, r) ->
          List.iter
            (fun l ->
              Hashtbl.replace used l (r +. Option.value ~default:0. (Hashtbl.find_opt used l)))
            d.Fairness.Maxmin.links)
        demands rates;
      let eps = 1e-6 in
      let feasible =
        List.for_all
          (fun (l, c) -> Option.value ~default:0. (Hashtbl.find_opt used l) <= c +. eps)
          capacities
      in
      let saturated l =
        let c = List.assoc l capacities in
        Option.value ~default:0. (Hashtbl.find_opt used l) >= c -. eps
      in
      let normalized i =
        let d = List.nth demands i in
        let _, r = List.nth rates i in
        r /. d.Fairness.Maxmin.weight
      in
      let bottlenecked =
        List.mapi
          (fun i d ->
            List.exists
              (fun l ->
                saturated l
                && List.for_all
                     (fun j ->
                       let dj = List.nth demands j in
                       (not (List.mem l dj.Fairness.Maxmin.links))
                       || normalized j <= normalized i +. eps)
                     (List.init (List.length demands) Fun.id))
              d.Fairness.Maxmin.links)
          demands
        |> List.for_all Fun.id
      in
      feasible && bottlenecked)

(* ------------------------------------------------------------------ *)
(* Fluid model *)

let fluid_flow ~id ~weight ~links = { Fairness.Fluid.id; weight; links }

let test_fluid_single_link_weighted () =
  let flows =
    [
      fluid_flow ~id:1 ~weight:1. ~links:[ 0 ];
      fluid_flow ~id:2 ~weight:2. ~links:[ 0 ];
      fluid_flow ~id:3 ~weight:3. ~links:[ 0 ];
    ]
  in
  let result =
    Fairness.Fluid.simulate ~capacities:[ (0, 600.) ] ~flows ~duration:600. ()
  in
  let final id = List.assoc id result.Fairness.Fluid.final in
  check_float_eps 12. "flow 1 -> 100" 100. (final 1);
  check_float_eps 15. "flow 2 -> 200" 200. (final 2);
  check_float_eps 20. "flow 3 -> 300" 300. (final 3)

let test_fluid_parking_lot_matches_maxmin () =
  let flows =
    [
      fluid_flow ~id:0 ~weight:1. ~links:[ 0; 1 ];
      fluid_flow ~id:1 ~weight:1. ~links:[ 0 ];
      fluid_flow ~id:2 ~weight:1. ~links:[ 1 ];
    ]
  in
  let capacities = [ (0, 300.); (1, 500.) ] in
  let fluid = Fairness.Fluid.simulate ~capacities ~flows ~duration:800. () in
  let reference =
    Fairness.Maxmin.solve ~capacities
      ~demands:
        (List.map
           (fun f ->
             Fairness.Maxmin.demand ~flow:f.Fairness.Fluid.id
               ~weight:f.Fairness.Fluid.weight ~links:f.Fairness.Fluid.links ())
           flows)
  in
  List.iter
    (fun (id, rate) ->
      let expected = List.assoc id reference in
      if Float.abs (rate -. expected) > 0.12 *. expected +. 5. then
        Alcotest.fail
          (Printf.sprintf "flow %d: fluid %.1f vs maxmin %.1f" id rate expected))
    fluid.Fairness.Fluid.final

let test_fluid_series_sampling () =
  let flows = [ fluid_flow ~id:1 ~weight:1. ~links:[ 0 ] ] in
  let result =
    Fairness.Fluid.simulate ~capacities:[ (0, 100.) ] ~flows ~sample:2. ~duration:20. ()
  in
  let ts = List.assoc 1 result.Fairness.Fluid.series in
  Alcotest.(check int) "10 samples at 2 s" 10 (Sim.Timeseries.length ts)

let test_fluid_single_flow_saturates_link () =
  let flows = [ fluid_flow ~id:1 ~weight:1. ~links:[ 0 ] ] in
  let result =
    Fairness.Fluid.simulate ~capacities:[ (0, 100.) ] ~flows ~duration:300. ()
  in
  check_float_eps 5. "oscillates at capacity" 100.
    (List.assoc 1 result.Fairness.Fluid.final)

let test_fluid_validation () =
  Alcotest.check_raises "no flows" (Invalid_argument "Fluid.simulate: no flows")
    (fun () ->
      ignore (Fairness.Fluid.simulate ~capacities:[] ~flows:[] ~duration:1. ()));
  Alcotest.check_raises "unknown link" (Invalid_argument "Fluid.simulate: unknown link 9")
    (fun () ->
      ignore
        (Fairness.Fluid.simulate ~capacities:[ (0, 1.) ]
           ~flows:[ fluid_flow ~id:1 ~weight:1. ~links:[ 9 ] ]
           ~duration:1. ()))

let prop_fluid_fixed_points_are_maxmin =
  QCheck.Test.make ~name:"fluid model settles near the weighted max-min allocation"
    ~count:25
    (QCheck.make random_instance)
    (fun (capacities, raw_flows) ->
      let capacities = List.mapi (fun i c -> (i, c)) capacities in
      let flows =
        List.mapi
          (fun i (w, links) ->
            fluid_flow ~id:i ~weight:w ~links:(List.sort_uniq compare links))
          raw_flows
      in
      let fluid = Fairness.Fluid.simulate ~capacities ~flows ~duration:2000. () in
      let reference =
        Fairness.Maxmin.solve ~capacities
          ~demands:
            (List.map
               (fun f ->
                 Fairness.Maxmin.demand ~flow:f.Fairness.Fluid.id
                   ~weight:f.Fairness.Fluid.weight ~links:f.Fairness.Fluid.links ())
               flows)
      in
      List.for_all
        (fun (id, rate) ->
          let expected = List.assoc id reference in
          (* The probe term alpha keeps a sawtooth around the fixed
             point; accept a generous band. *)
          Float.abs (rate -. expected) <= (0.2 *. expected) +. 10.)
        fluid.Fairness.Fluid.final)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_jain_perfect () =
  check_float "proportional rates" 1.
    (Fairness.Metrics.jain_index ~rates:[| 10.; 20.; 30. |] ~weights:[| 1.; 2.; 3. |])

let test_jain_known_value () =
  (* Normalized rates 1 and 3: (1+3)^2 / (2*(1+9)) = 16/20. *)
  check_float "known" 0.8
    (Fairness.Metrics.jain_index ~rates:[| 1.; 3. |] ~weights:[| 1.; 1. |])

let test_jain_edge_cases () =
  check_float "empty" 1. (Fairness.Metrics.jain_index ~rates:[||] ~weights:[||]);
  check_float "all zero" 1.
    (Fairness.Metrics.jain_index ~rates:[| 0.; 0. |] ~weights:[| 1.; 1. |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Metrics.jain_index: length mismatch") (fun () ->
      ignore (Fairness.Metrics.jain_index ~rates:[| 1. |] ~weights:[||]))

let test_mean_relative_error () =
  check_float "mixed" 0.15
    (Fairness.Metrics.mean_relative_error ~measured:[| 110.; 40. |]
       ~expected:[| 100.; 50. |]);
  check_float "zero expected ignored" 0.1
    (Fairness.Metrics.mean_relative_error ~measured:[| 110.; 5. |]
       ~expected:[| 100.; 0. |])

let test_converged () =
  Alcotest.(check bool) "within" true
    (Fairness.Metrics.converged ~tolerance:0.2 ~measured:[| 90.; 110. |]
       ~expected:[| 100.; 100. |]);
  Alcotest.(check bool) "outside" false
    (Fairness.Metrics.converged ~tolerance:0.05 ~measured:[| 90. |] ~expected:[| 100. |])

let series_of points =
  let ts = Sim.Timeseries.create () in
  List.iter (fun (t, v) -> Sim.Timeseries.add ts t v) points;
  ts

let test_convergence_time () =
  let ramp = List.init 21 (fun i -> (float_of_int i, Float.min 100. (10. *. float_of_int i))) in
  let ts = series_of ramp in
  (match Fairness.Metrics.convergence_time ~tolerance:0.1 ~hold:3. [ (ts, 100.) ] with
  | Some t -> check_float "reaches 90 at t=9" 9. t
  | None -> Alcotest.fail "expected convergence");
  Alcotest.(check bool) "too strict: never" true
    (Fairness.Metrics.convergence_time ~tolerance:0.1 ~hold:3.
       [ (series_of [ (0., 0.); (1., 0.); (2., 0.) ], 100.) ]
    = None)

let test_convergence_needs_hold () =
  (* Dips out of band reset the run. *)
  let points =
    [ (0., 100.); (1., 100.); (2., 0.); (3., 100.); (4., 100.); (5., 100.); (6., 100.) ]
  in
  match
    Fairness.Metrics.convergence_time ~tolerance:0.1 ~hold:2. [ (series_of points, 100.) ]
  with
  | Some t -> check_float "after the dip" 3. t
  | None -> Alcotest.fail "expected convergence"

let test_utilization () =
  check_float "sum over capacity" 0.9
    (Fairness.Metrics.utilization ~rates:[| 200.; 250. |] ~capacity:500.)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
(* ------------------------------------------------------------------ *)
(* Windowed fairness (churn extension) *)

let series_of samples =
  let ts = Sim.Timeseries.create ~name:"w" () in
  List.iter (fun (t, v) -> Sim.Timeseries.add ts t v) samples;
  ts

let test_windowed_boundaries () =
  let b = Fairness.Windowed.boundaries ~from:0. ~until:10. ~window:4. in
  Alcotest.(check int) "three windows" 4 (Array.length b);
  check_float "last boundary is until" 10. b.(3);
  Alcotest.check_raises "zero window"
    (Invalid_argument "Windowed: window must be positive and finite") (fun () ->
      ignore (Fairness.Windowed.boundaries ~from:0. ~until:10. ~window:0.));
  Alcotest.check_raises "empty span"
    (Invalid_argument "Windowed: need finite until > from") (fun () ->
      ignore (Fairness.Windowed.boundaries ~from:5. ~until:5. ~window:1.))

let test_windowed_throughput_known () =
  (* 10 pkt/s for 4 s, silence for 4 s, 20 pkt/s for 2 s. *)
  let ts = series_of [ (0., 0.); (4., 40.); (8., 40.); (10., 80.) ] in
  let tp = Fairness.Windowed.throughput ts ~from:0. ~until:10. ~window:4. in
  Alcotest.(check int) "three windows" 3 (Array.length tp);
  check_float "first window rate" 10. (snd tp.(0));
  check_float "silent window rate" 0. (snd tp.(1));
  check_float "partial window rate" 20. (snd tp.(2))

let test_windowed_mean_jain_identical_flows () =
  let flow rate weight =
    (weight, series_of (List.init 11 (fun i -> (float_of_int i, rate *. float_of_int i))))
  in
  (* Rates proportional to weights: perfectly weighted-fair. *)
  let flows = [ flow 10. 1.; flow 20. 2.; flow 30. 3. ] in
  check_float "weighted fair is 1" 1.
    (Fairness.Windowed.mean_jain ~flows ~from:0. ~until:10. ~window:2.)

let test_windowed_bandwidth_profile_exposes_burst () =
  (* 1 s bursts of 100 pkts every 4 s: average 25 pkt/s, 1 s peak 100. *)
  let samples =
    List.concat_map
      (fun i ->
        let t = 4. *. float_of_int i in
        [ (t, 100. *. float_of_int i); (t +. 1., 100. *. float_of_int (i + 1)) ])
      [ 0; 1; 2; 3 ]
  in
  let ts = series_of samples in
  let profile =
    Fairness.Windowed.bandwidth_profile ts ~from:0. ~until:16. ~timescales:[ 1.; 16. ]
  in
  let peak scale = List.assoc scale profile in
  check_float "short timescale sees the burst" 100. (peak 1.);
  check_float "long timescale sees the average" 25. (peak 16.)

(* Random cumulative series: monotone samples at 1-second ticks. *)
let cumulative_gen =
  QCheck.Gen.(
    let* increments = list_size (2 -- 40) (float_range 0. 50.) in
    return
      (List.rev
         (snd
            (List.fold_left
               (fun (total, acc) d ->
                 let total = total +. d in
                 let t = float_of_int (List.length acc) in
                 (total, (t, total) :: acc))
               (0., []) increments))))

let windowed_instance =
  QCheck.Gen.(
    let* flows = list_size (1 -- 6) (pair (float_range 0.5 4.) cumulative_gen) in
    let* window = float_range 0.5 7. in
    return (flows, window))

let prop_windowed_sums_equal_totals =
  QCheck.Test.make
    ~name:"windowed throughputs telescope: window sums equal the totals"
    ~count:300
    (QCheck.make windowed_instance)
    (fun (flows, window) ->
      let until =
        List.fold_left
          (fun acc (_, samples) -> Float.max acc (fst (List.hd (List.rev samples))))
          1. flows
      in
      List.for_all
        (fun (_, samples) ->
          let ts = series_of samples in
          let tp = Fairness.Windowed.throughput ts ~from:0. ~until ~window in
          let boundaries = Fairness.Windowed.boundaries ~from:0. ~until ~window in
          let summed = ref 0. in
          Array.iteri
            (fun i (_, rate) ->
              summed := !summed +. (rate *. (boundaries.(i + 1) -. boundaries.(i))))
            tp;
          let at t = Option.value ~default:0. (Sim.Timeseries.value_at ts t) in
          let total = at until -. at 0. in
          Float.abs (!summed -. total) <= 1e-6 *. Float.max 1. total)
        flows)

let prop_windowed_jain_in_unit_interval =
  QCheck.Test.make ~name:"windowed Jain lies in (0, 1]" ~count:300
    (QCheck.make windowed_instance)
    (fun (flows, window) ->
      let until =
        List.fold_left
          (fun acc (_, samples) -> Float.max acc (fst (List.hd (List.rev samples))))
          1. flows
      in
      let flows = List.map (fun (w, samples) -> (w, series_of samples)) flows in
      let mean = Fairness.Windowed.mean_jain ~flows ~from:0. ~until ~window in
      let series = Fairness.Windowed.jain_series ~flows ~from:0. ~until ~window in
      mean > 0. && mean <= 1. +. 1e-9
      && Array.for_all (fun (_, j, _) -> j > 0. && j <= 1. +. 1e-9) series)

let () = Sim.Invariant.set_default true

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fairness"
    [
      ( "maxmin",
        [
          Alcotest.test_case "single link equal" `Quick test_single_link_equal_weights;
          Alcotest.test_case "single link weighted" `Quick test_single_link_weighted;
          Alcotest.test_case "parking lot" `Quick test_classic_parking_lot;
          Alcotest.test_case "asymmetric bottlenecks" `Quick test_asymmetric_bottlenecks;
          Alcotest.test_case "paper topology phases" `Quick test_paper_topology1_phases;
          Alcotest.test_case "floors respected" `Quick test_floor_respected;
          Alcotest.test_case "floor oversubscription" `Quick
            test_floor_oversubscription_rejected;
          Alcotest.test_case "unknown link" `Quick test_unknown_link_rejected;
          Alcotest.test_case "demand validation" `Quick test_demand_validation;
          Alcotest.test_case "single link share" `Quick test_single_link_share;
          qt prop_maxmin_feasible_and_bottlenecked;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "single link weighted" `Quick test_fluid_single_link_weighted;
          Alcotest.test_case "parking lot matches maxmin" `Quick
            test_fluid_parking_lot_matches_maxmin;
          Alcotest.test_case "series sampling" `Quick test_fluid_series_sampling;
          Alcotest.test_case "single flow saturates" `Quick
            test_fluid_single_flow_saturates_link;
          Alcotest.test_case "validation" `Quick test_fluid_validation;
          qt prop_fluid_fixed_points_are_maxmin;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "jain perfect" `Quick test_jain_perfect;
          Alcotest.test_case "jain known value" `Quick test_jain_known_value;
          Alcotest.test_case "jain edge cases" `Quick test_jain_edge_cases;
          Alcotest.test_case "mean relative error" `Quick test_mean_relative_error;
          Alcotest.test_case "converged" `Quick test_converged;
          Alcotest.test_case "convergence time" `Quick test_convergence_time;
          Alcotest.test_case "convergence needs hold" `Quick test_convergence_needs_hold;
          Alcotest.test_case "utilization" `Quick test_utilization;
        ] );
      ( "windowed",
        [
          Alcotest.test_case "boundaries" `Quick test_windowed_boundaries;
          Alcotest.test_case "throughput known values" `Quick
            test_windowed_throughput_known;
          Alcotest.test_case "weighted fair flows" `Quick
            test_windowed_mean_jain_identical_flows;
          Alcotest.test_case "bandwidth profile" `Quick
            test_windowed_bandwidth_profile_exposes_burst;
          qt prop_windowed_sums_equal_totals;
          qt prop_windowed_jain_in_unit_interval;
        ] );
    ]
