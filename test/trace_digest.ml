(* Golden-trace digest: run the fig3 workload with every event kind
   traced and print the compact digest (per-kind counts + an MD5 of the
   JSONL export of the retained tail). dune runtest diffs the output
   against test/golden/fig3_trace.digest, so any silent behavioral
   drift — a lost epoch, a different feedback count, a reordered event
   — fails the build without committing megabytes of raw trace. *)
let () =
  let spec = Workload.Figures.fig3 () in
  let trace = Sim.Trace.spec ~capacity:(1 lsl 16) ~kinds:Sim.Trace.all_kinds () in
  let result = Workload.Figures.run ~trace spec in
  let tr =
    Sim.Engine.trace result.Workload.Runner.network.Workload.Network.engine
  in
  print_string (Sim.Trace.digest tr)
