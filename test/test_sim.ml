(* Tests for the discrete-event engine and its support modules. *)

let check_float = Alcotest.(check (float 1e-9))

let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_queue_empty () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check bool) "empty" true (Sim.Event_queue.is_empty q);
  Alcotest.(check int) "length" 0 (Sim.Event_queue.length q);
  Alcotest.(check bool) "pop none" true (Sim.Event_queue.pop q = None);
  Alcotest.(check bool) "peek none" true (Sim.Event_queue.peek_key q = None)

let drain_values q =
  let rec loop acc =
    match Sim.Event_queue.pop q with
    | Some (_, _, v) -> loop (v :: acc)
    | None -> List.rev acc
  in
  loop []

let test_queue_orders_by_key () =
  let q = Sim.Event_queue.create () in
  List.iteri
    (fun i key -> Sim.Event_queue.add q ~key ~seq:i key)
    [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] (drain_values q)

let test_queue_fifo_on_ties () =
  let q = Sim.Event_queue.create () in
  for i = 1 to 5 do
    Sim.Event_queue.add q ~key:7. ~seq:i i
  done;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (drain_values q)

let test_queue_peek_matches_pop () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.add q ~key:2. ~seq:1 "b";
  Sim.Event_queue.add q ~key:1. ~seq:2 "a";
  (match Sim.Event_queue.peek_key q with
  | Some (k, s) ->
    check_float "peek key" 1. k;
    Alcotest.(check int) "peek seq" 2 s
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "peek does not remove" 2 (Sim.Event_queue.length q)

let test_queue_interleaved_grow () =
  (* Force several growth cycles with interleaved pops. *)
  let q = Sim.Event_queue.create () in
  let seq = ref 0 in
  for round = 0 to 9 do
    for i = 0 to 99 do
      incr seq;
      Sim.Event_queue.add q ~key:(float_of_int ((i * 31) mod 100)) ~seq:!seq round
    done;
    for _ = 0 to 49 do
      ignore (Sim.Event_queue.pop q)
    done
  done;
  Alcotest.(check int) "length" 500 (Sim.Event_queue.length q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"event_queue pops keys in nondecreasing order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun keys ->
      let q = Sim.Event_queue.create () in
      List.iteri (fun i k -> Sim.Event_queue.add q ~key:k ~seq:i ()) keys;
      let rec drain last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (k, _, ()) -> k >= last && drain k
      in
      drain neg_infinity)

let prop_queue_preserves_multiset =
  QCheck.Test.make ~name:"event_queue preserves the multiset of keys" ~count:200
    QCheck.(list (float_bound_inclusive 100.))
    (fun keys ->
      let q = Sim.Event_queue.create () in
      List.iteri (fun i k -> Sim.Event_queue.add q ~key:k ~seq:i ()) keys;
      let rec drain acc =
        match Sim.Event_queue.pop q with
        | None -> acc
        | Some (k, _, ()) -> drain (k :: acc)
      in
      List.sort compare (drain []) = List.sort compare keys)

let test_queue_clear_resets_and_reuses () =
  let q = Sim.Event_queue.create () in
  for i = 1 to 10 do
    Sim.Event_queue.add q ~key:1. ~seq:i i
  done;
  Sim.Event_queue.clear q;
  Alcotest.(check bool) "empty" true (Sim.Event_queue.is_empty q);
  Alcotest.(check int) "length" 0 (Sim.Event_queue.length q);
  Alcotest.(check bool) "pop none" true (Sim.Event_queue.pop q = None);
  (* A cleared queue must be a working queue. *)
  Sim.Event_queue.add q ~key:2. ~seq:1 42;
  Alcotest.(check bool) "usable after clear" true
    (Sim.Event_queue.pop q = Some (2., 1, 42))

(* The (key, seq)-sorted model list is the whole specification of the
   queue: pops come out exactly in that order. Small integer keys force
   plenty of ties, so the FIFO-among-equals leg is really exercised. *)
let by_key_seq (k1, s1) (k2, s2) =
  match compare k1 k2 with 0 -> compare s1 s2 | c -> c

let prop_queue_matches_sorted_model =
  QCheck.Test.make ~name:"event_queue pops exactly the (key, seq)-sorted model"
    ~count:300
    QCheck.(list (int_bound 20))
    (fun raw ->
      let entries = List.mapi (fun i k -> (float_of_int k, i)) raw in
      let q = Sim.Event_queue.create () in
      List.iter (fun (k, s) -> Sim.Event_queue.add q ~key:k ~seq:s s) entries;
      let rec drain acc =
        match Sim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (k, s, _) -> drain ((k, s) :: acc)
      in
      drain [] = List.sort by_key_seq entries)

let prop_queue_length_tracks_model =
  QCheck.Test.make
    ~name:"length/is_empty agree with a model list under interleaved add/pop"
    ~count:300
    QCheck.(list (option (int_bound 10)))
    (fun ops ->
      let q = Sim.Event_queue.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Some k ->
            incr seq;
            let key = float_of_int k in
            Sim.Event_queue.add q ~key ~seq:!seq ();
            model := (key, !seq) :: !model
          | None -> (
            let expected =
              match List.sort by_key_seq !model with [] -> None | e :: _ -> Some e
            in
            match (Sim.Event_queue.pop q, expected) with
            | None, None -> ()
            | Some (k, s, ()), Some e when (k, s) = e ->
              model := List.filter (fun x -> x <> e) !model
            | _ -> ok := false));
          if Sim.Event_queue.length q <> List.length !model then ok := false;
          if Sim.Event_queue.is_empty q <> (!model = []) then ok := false)
        ops;
      !ok)

(* The unboxed access pair: next_time is an infinity-sentinel peek,
   pop_exn returns the payload alone. *)
let test_queue_unboxed_api () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check bool)
    "next_time of empty is infinity" true
    (Sim.Event_queue.next_time q = infinity);
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Event_queue.pop_exn: empty") (fun () ->
      ignore (Sim.Event_queue.pop_exn q));
  Sim.Event_queue.add q ~key:2. ~seq:1 "b";
  Sim.Event_queue.add q ~key:1. ~seq:2 "a";
  check_float "next_time is min key" 1. (Sim.Event_queue.next_time q);
  Alcotest.(check string) "pop_exn min payload" "a" (Sim.Event_queue.pop_exn q);
  check_float "next_time follows" 2. (Sim.Event_queue.next_time q);
  Alcotest.(check string) "pop_exn next" "b" (Sim.Event_queue.pop_exn q);
  Alcotest.(check bool)
    "drained back to infinity" true
    (Sim.Event_queue.next_time q = infinity)

let prop_queue_unboxed_agrees_with_boxed =
  QCheck.Test.make
    ~name:"next_time/pop_exn drain identically to the boxed pop" ~count:300
    QCheck.(list (int_bound 20))
    (fun raw ->
      let entries = List.mapi (fun i k -> (float_of_int k, i)) raw in
      let fill () =
        let q = Sim.Event_queue.create () in
        List.iter (fun (k, s) -> Sim.Event_queue.add q ~key:k ~seq:s s) entries;
        q
      in
      let boxed =
        let q = fill () in
        let rec drain acc =
          match Sim.Event_queue.pop q with
          | None -> List.rev acc
          | Some (k, _, v) -> drain ((k, v) :: acc)
        in
        drain []
      in
      let unboxed =
        let q = fill () in
        let rec drain acc =
          if Sim.Event_queue.is_empty q then List.rev acc
          else begin
            let k = Sim.Event_queue.next_time q in
            let v = Sim.Event_queue.pop_exn q in
            drain ((k, v) :: acc)
          end
        in
        drain []
      in
      boxed = unboxed)

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring_basic () =
  let r = Sim.Ring.create () in
  Alcotest.(check bool) "empty" true (Sim.Ring.is_empty r);
  Alcotest.(check int) "length" 0 (Sim.Ring.length r);
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Ring.pop_exn: empty") (fun () ->
      ignore (Sim.Ring.pop_exn r));
  Alcotest.check_raises "peek_exn on empty"
    (Invalid_argument "Ring.peek_exn: empty") (fun () ->
      ignore (Sim.Ring.peek_exn r));
  for i = 1 to 5 do
    Sim.Ring.push r i
  done;
  Alcotest.(check int) "length 5" 5 (Sim.Ring.length r);
  Alcotest.(check int) "peek oldest" 1 (Sim.Ring.peek_exn r);
  Alcotest.(check int) "pop oldest" 1 (Sim.Ring.pop_exn r);
  Alcotest.(check int) "peek next" 2 (Sim.Ring.peek_exn r);
  Sim.Ring.clear r;
  Alcotest.(check bool) "cleared" true (Sim.Ring.is_empty r);
  (* A cleared ring must be a working ring. *)
  Sim.Ring.push r 42;
  Alcotest.(check int) "usable after clear" 42 (Sim.Ring.pop_exn r)

let test_ring_wraparound_growth () =
  (* Interleave pushes and pops so the live window straddles the end
     of the backing array when growth happens. *)
  let r = Sim.Ring.create () in
  let popped = ref [] in
  let next = ref 0 in
  for round = 1 to 50 do
    for _ = 1 to round do
      incr next;
      Sim.Ring.push r !next
    done;
    for _ = 1 to round / 2 do
      popped := Sim.Ring.pop_exn r :: !popped
    done
  done;
  while not (Sim.Ring.is_empty r) do
    popped := Sim.Ring.pop_exn r :: !popped
  done;
  Alcotest.(check (list int))
    "FIFO across growth and wraparound"
    (List.init !next (fun i -> i + 1))
    (List.rev !popped)

(* Model test against the stdlib queue ([Stdlib.Queue] is the reference
   implementation here in test/; lint rule L6 bans it from the lib/net
   and lib/sim hot paths that [Sim.Ring] replaced it in). *)
let prop_ring_matches_stdlib_queue =
  QCheck.Test.make ~name:"ring behaves exactly like a Stdlib.Queue model"
    ~count:300
    (* ops: Some n = push n, None = pop-or-peek on alternating steps.
       [clears] salts a handful of Ring.clear/Queue.clear pairs into the
       sequence (Link.reset empties its queues through clear, so the
       model must keep matching across it — including wrap-around state
       left by earlier pops). *)
    QCheck.(pair (list (option (int_bound 100))) (small_list small_nat))
    (fun (ops, clears) ->
      let r = Sim.Ring.create () in
      let model = Queue.create () in
      let ok = ref true in
      let step = ref 0 in
      let n_ops = List.length ops in
      let clear_steps =
        List.filter_map
          (fun c -> if n_ops = 0 then None else Some (c mod n_ops))
          clears
      in
      List.iter
        (fun op ->
          incr step;
          (match op with
          | Some n ->
            Sim.Ring.push r n;
            Queue.push n model
          | None when !step land 1 = 0 -> (
            match Queue.take_opt model with
            | None ->
              if not (Sim.Ring.is_empty r) then ok := false
            | Some expected ->
              if Sim.Ring.pop_exn r <> expected then ok := false)
          | None -> (
            match Queue.peek_opt model with
            | None ->
              if not (Sim.Ring.is_empty r) then ok := false
            | Some expected ->
              if Sim.Ring.peek_exn r <> expected then ok := false));
          if List.mem (!step - 1) clear_steps then begin
            Sim.Ring.clear r;
            Queue.clear model
          end;
          if Sim.Ring.length r <> Queue.length model then ok := false;
          if Sim.Ring.is_empty r <> Queue.is_empty model then ok := false)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_runs_in_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := (tag, Sim.Engine.now e) :: !log in
  ignore (Sim.Engine.schedule e ~delay:2. (note "b"));
  ignore (Sim.Engine.schedule e ~delay:1. (note "a"));
  ignore (Sim.Engine.schedule e ~delay:3. (note "c"));
  Sim.Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "order and clock" [ ("a", 1.); ("b", 2.); ("c", 3.) ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1. (fun () ->
         fired := "outer" :: !fired;
         ignore
           (Sim.Engine.schedule e ~delay:0.5 (fun () -> fired := "inner" :: !fired))));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !fired);
  check_float "clock at end" 1.5 (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Alcotest.(check bool) "is_cancelled" true (Sim.Engine.is_cancelled h);
  Sim.Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_cancel_from_event () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:2. (fun () -> fired := true) in
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> Sim.Engine.cancel h));
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled mid-run" false !fired

let test_engine_every () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  let h = Sim.Engine.every e ~period:1. (fun () -> times := Sim.Engine.now e :: !times) in
  ignore (Sim.Engine.schedule e ~delay:3.5 (fun () -> Sim.Engine.cancel h));
  Sim.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "three ticks" [ 1.; 2.; 3. ] (List.rev !times)

let test_engine_every_start () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  let h =
    Sim.Engine.every e ~start:0.25 ~period:0.5 (fun () ->
        times := Sim.Engine.now e :: !times)
  in
  Sim.Engine.run_until e 1.6;
  Sim.Engine.cancel h;
  Alcotest.(check (list (float 1e-9)))
    "phase-shifted ticks" [ 0.25; 0.75; 1.25 ] (List.rev !times)

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  ignore (Sim.Engine.every e ~period:1. (fun () -> incr count));
  Sim.Engine.run_until e 5.5;
  Alcotest.(check int) "five ticks" 5 !count;
  check_float "clock advanced to limit" 5.5 (Sim.Engine.now e);
  Sim.Engine.run_until e 7.;
  Alcotest.(check int) "two more" 7 !count

let test_engine_rejects_bad_times () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:(-1.) (fun () -> ())));
  Alcotest.check_raises "nan delay"
    (Invalid_argument "Engine.schedule: time not finite") (fun () ->
      ignore (Sim.Engine.schedule e ~delay:nan (fun () -> ())));
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      ignore (Sim.Engine.schedule_at e ~time:0.5 (fun () -> ())));
  Alcotest.check_raises "bad period"
    (Invalid_argument "Engine.every: period must be positive") (fun () ->
      ignore (Sim.Engine.every e ~period:0. (fun () -> ())))

(* Regression: [every ?start] used to push the first firing without any
   validation, so a NaN or in-the-past start silently corrupted the
   queue where [schedule_at] would have raised. *)
let test_engine_every_validates_start () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.check_raises "start in the past"
    (Invalid_argument "Engine.every: start in the past") (fun () ->
      ignore (Sim.Engine.every e ~start:0.5 ~period:1. (fun () -> ())));
  Alcotest.check_raises "nan start"
    (Invalid_argument "Engine.every: time not finite") (fun () ->
      ignore (Sim.Engine.every e ~start:nan ~period:1. (fun () -> ())));
  Alcotest.check_raises "infinite start"
    (Invalid_argument "Engine.every: time not finite") (fun () ->
      ignore (Sim.Engine.every e ~start:infinity ~period:1. (fun () -> ())));
  Alcotest.check_raises "nan period"
    (Invalid_argument "Engine.every: time not finite") (fun () ->
      ignore (Sim.Engine.every e ~period:nan (fun () -> ())));
  (* A start exactly at the current clock is valid (fires immediately). *)
  let fired = ref 0 in
  let h =
    Sim.Engine.every e ~start:(Sim.Engine.now e) ~period:1. (fun () ->
        incr fired)
  in
  Sim.Engine.run_until e (Sim.Engine.now e +. 1.5);
  Sim.Engine.cancel h;
  Alcotest.(check int) "start = now fires at now and now + period" 2 !fired

let test_engine_schedule_unit () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule_unit e ~delay:2. (fun () -> log := "b" :: !log);
  Sim.Engine.schedule_unit e ~delay:1. (fun () -> log := "a" :: !log);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_unit: negative delay") (fun () ->
      Sim.Engine.schedule_unit e ~delay:(-1.) (fun () -> ()));
  Alcotest.check_raises "nan delay"
    (Invalid_argument "Engine.schedule_unit: time not finite") (fun () ->
      Sim.Engine.schedule_unit e ~delay:nan (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "fires in order" [ "a"; "b" ] (List.rev !log);
  check_float "clock" 2. (Sim.Engine.now e)

let test_engine_pending () =
  let e = Sim.Engine.create () in
  Alcotest.(check int) "initially empty" 0 (Sim.Engine.pending e);
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> ()));
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.Engine.pending e);
  ignore (Sim.Engine.step e);
  Alcotest.(check int) "one left" 1 (Sim.Engine.pending e)

let test_engine_simultaneous_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 4 do
    ignore (Sim.Engine.schedule e ~delay:1. (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo among equals" [ 1; 2; 3; 4 ] (List.rev !log)

(* A probe whose observable trace is sensitive to everything reset must
   restore: the clock, the FIFO tie-break sequence, and the queue. *)
let engine_probe e =
  let log = ref [] in
  for i = 1 to 3 do
    ignore
      (Sim.Engine.schedule e ~delay:1. (fun () ->
           log := (i, Sim.Engine.now e) :: !log))
  done;
  ignore
    (Sim.Engine.schedule e ~delay:0.5 (fun () ->
         log := (0, Sim.Engine.now e) :: !log));
  Sim.Engine.run e;
  List.rev !log

let test_engine_reset_matches_fresh () =
  let reused = Sim.Engine.create () in
  let first = engine_probe reused in
  Sim.Engine.reset reused;
  check_float "clock back to zero" 0. (Sim.Engine.now reused);
  Alcotest.(check int) "no pending events" 0 (Sim.Engine.pending reused);
  Alcotest.(check int) "executed counter cleared" 0 (Sim.Engine.executed reused);
  Alcotest.(check int) "seq counter cleared" 0 (Sim.Engine.events_scheduled reused);
  let second = engine_probe reused in
  let fresh = engine_probe (Sim.Engine.create ()) in
  Alcotest.(check (list (pair int (float 1e-9)))) "first run vs fresh" fresh first;
  (* The regression this guards: a stale seq counter would not change
     the set of events, only their FIFO order among ties — so the reused
     engine must replay the tie-break order exactly. *)
  Alcotest.(check (list (pair int (float 1e-9)))) "reused run vs fresh" fresh second;
  Alcotest.(check int) "executed counts events of one run" 4
    (Sim.Engine.executed reused)

let test_engine_reset_clears_queue () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  ignore (Sim.Engine.schedule e ~delay:5. (fun () -> fired := true));
  Sim.Engine.reset e;
  Sim.Engine.run e;
  Alcotest.(check bool) "stale event dropped by reset" false !fired;
  check_float "nothing ran" 0. (Sim.Engine.now e)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 123 and b = Sim.Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_split_independent () =
  let parent = Sim.Rng.create 7 in
  let child = Sim.Rng.split parent in
  (* Drawing from the child must not change the parent's future. *)
  let parent2 = Sim.Rng.create 7 in
  let _ = Sim.Rng.split parent2 in
  for _ = 1 to 8 do
    ignore (Sim.Rng.bits64 child)
  done;
  for _ = 1 to 8 do
    Alcotest.(check int64) "parent unaffected" (Sim.Rng.bits64 parent2)
      (Sim.Rng.bits64 parent)
  done

let draws rng n = List.init n (fun _ -> Sim.Rng.bits64 rng)

let test_rng_stream_is_pure () =
  (* Deriving a stream must not advance the parent, and the derivation
     must depend only on (parent state, index) — not on which other
     streams were derived or drawn from in between. *)
  let r = Sim.Rng.create 5 in
  let before = Sim.Rng.stream r 3 in
  ignore (draws (Sim.Rng.stream r 1) 8);
  ignore (Sim.Rng.stream r 7);
  let after = Sim.Rng.stream r 3 in
  Alcotest.(check (list int64)) "order-independent derivation"
    (draws before 32) (draws after 32);
  let untouched = Sim.Rng.create 5 in
  Alcotest.(check int64) "parent unaffected" (Sim.Rng.bits64 untouched)
    (Sim.Rng.bits64 r)

let prop_rng_scenario_replays =
  QCheck.Test.make
    ~name:"the same (seed, scenario id) replays the same 1k-draw stream"
    ~count:50
    QCheck.(pair small_nat small_printable_string)
    (fun (seed, id) ->
      draws (Sim.Rng.scenario ~seed ~id) 1000
      = draws (Sim.Rng.scenario ~seed ~id) 1000)

let prop_rng_scenario_streams_disjoint =
  QCheck.Test.make
    ~name:"distinct (seed, scenario id) streams share no draw in 1k"
    ~count:100
    QCheck.(
      pair
        (pair small_nat small_printable_string)
        (pair small_nat small_printable_string))
    (fun (((seed_a, id_a) as a), ((seed_b, id_b) as b)) ->
      QCheck.assume (a <> b);
      let da = draws (Sim.Rng.scenario ~seed:seed_a ~id:id_a) 1000 in
      let db = draws (Sim.Rng.scenario ~seed:seed_b ~id:id_b) 1000 in
      (* Element-wise disjointness over the whole prefix — much stronger
         than mere inequality; a lattice structure between streams (the
         classic splitmix pitfall) would show up here. *)
      let seen = Hashtbl.create 2048 in
      List.iter (fun x -> Hashtbl.replace seen x ()) da;
      not (List.exists (Hashtbl.mem seen) db))

let prop_rng_sibling_streams_disjoint =
  QCheck.Test.make
    ~name:"sibling indexed streams of one parent share no draw in 1k"
    ~count:50
    QCheck.(triple small_nat (int_bound 100) (int_bound 100))
    (fun (seed, i, j) ->
      QCheck.assume (i <> j);
      let r = Sim.Rng.create seed in
      let da = draws (Sim.Rng.stream r i) 1000 in
      let db = draws (Sim.Rng.stream r j) 1000 in
      let seen = Hashtbl.create 2048 in
      List.iter (fun x -> Hashtbl.replace seen x ()) da;
      not (List.exists (Hashtbl.mem seen) db))

(* Sampler properties (churn extension): the arrival process leans on
   exactly these three guarantees — calibrated means, replay across
   [split], and the advertised tail index. *)
let prop_sampler_means_converge =
  QCheck.Test.make
    ~name:"exponential and Pareto sample means converge to ~mean" ~count:20
    QCheck.(pair small_nat (float_range 0.2 5.))
    (fun (seed, mean) ->
      let n = 20_000 in
      let avg draw =
        let r = Sim.Rng.create seed in
        let sum = ref 0. in
        for _ = 1 to n do
          sum := !sum +. draw r
        done;
        !sum /. float_of_int n
      in
      let exp_mean = avg (fun r -> Sim.Rng.exponential r ~mean) in
      (* Shape 2.5 keeps the variance finite, so 20k draws settle well
         inside 15%; lighter tolerances would flake on heavy tails. *)
      let par_mean = avg (fun r -> Sim.Rng.pareto r ~shape:2.5 ~mean) in
      Float.abs (exp_mean -. mean) <= 0.1 *. mean
      && Float.abs (par_mean -. mean) <= 0.15 *. mean)

let prop_sampler_split_determinism =
  QCheck.Test.make
    ~name:"sampler draws replay identically across Rng.split" ~count:100
    QCheck.(pair small_nat (float_range 0.5 3.))
    (fun (seed, mean) ->
      let stream () =
        let child = Sim.Rng.split (Sim.Rng.create seed) in
        List.init 100 (fun i ->
            if i mod 2 = 0 then Sim.Rng.exponential child ~mean
            else Sim.Rng.pareto child ~shape:1.8 ~mean)
      in
      stream () = stream ())

let prop_pareto_tail_index =
  QCheck.Test.make
    ~name:"Pareto empirical tail index matches the requested shape"
    ~count:15
    QCheck.(pair small_nat (float_range 1.5 3.))
    (fun (seed, shape) ->
      let n = 50_000 and mean = 1. and c = 4. in
      let scale = mean *. (shape -. 1.) /. shape in
      let r = Sim.Rng.create seed in
      let exceed = ref 0 in
      for _ = 1 to n do
        if Sim.Rng.pareto r ~shape ~mean > c *. scale then incr exceed
      done;
      (* Survival at [c] times the scale is exactly [c ** -shape];
         inverting the empirical fraction recovers the tail index. *)
      let frac = float_of_int !exceed /. float_of_int n in
      frac > 0. && Float.abs ((-.log frac /. log c) -. shape) <= 0.2)

let test_rng_int_bounds () =
  let r = Sim.Rng.create 99 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of range"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let test_rng_int_covers_range () =
  let r = Sim.Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Sim.Rng.int r 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_unit () =
  let r = Sim.Rng.create 11 in
  let sum = ref 0. in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Sim.Rng.float r 1. in
    if v < 0. || v >= 1. then Alcotest.fail "float out of [0,1)";
    sum := !sum +. v
  done;
  check_float_eps 0.02 "mean near 1/2" 0.5 (!sum /. float_of_int n)

let test_rng_bernoulli () =
  let r = Sim.Rng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Sim.Rng.bernoulli r 0.3 then incr hits
  done;
  check_float_eps 0.02 "p estimate" 0.3 (float_of_int !hits /. float_of_int n);
  Alcotest.(check bool) "p=1 always" true (Sim.Rng.bernoulli r 1.);
  Alcotest.(check bool) "p=0 never" false (Sim.Rng.bernoulli r 0.)

let test_rng_exponential_mean () =
  let r = Sim.Rng.create 17 in
  let sum = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Sim.Rng.exponential r ~mean:2. in
    if v < 0. then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  check_float_eps 0.1 "mean near 2" 2. (!sum /. float_of_int n)

let test_rng_pareto () =
  let r = Sim.Rng.create 19 in
  let sum = ref 0. in
  let n = 100_000 in
  let scale = 2. *. (2.5 -. 1.) /. 2.5 in
  for _ = 1 to n do
    let v = Sim.Rng.pareto r ~shape:2.5 ~mean:2. in
    if v < scale -. 1e-9 then Alcotest.fail "below scale";
    sum := !sum +. v
  done;
  check_float_eps 0.1 "mean near 2" 2. (!sum /. float_of_int n);
  Alcotest.check_raises "shape 1" (Invalid_argument "Rng.pareto: shape must exceed 1")
    (fun () -> ignore (Sim.Rng.pareto r ~shape:1. ~mean:1.))

let test_rng_shuffle_permutation () =
  let r = Sim.Rng.create 23 in
  let a = Array.init 20 Fun.id in
  Sim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_time_weighted_constant () =
  let tw = Sim.Stats.Time_weighted.create ~now:0. ~init:3. in
  check_float "average of constant" 3. (Sim.Stats.Time_weighted.average tw ~now:10.)

let test_time_weighted_step () =
  let tw = Sim.Stats.Time_weighted.create ~now:0. ~init:0. in
  Sim.Stats.Time_weighted.set tw ~now:5. 10.;
  (* 0 for 5 s then 10 for 5 s -> average 5 *)
  check_float "step average" 5. (Sim.Stats.Time_weighted.average tw ~now:10.)

let test_time_weighted_reset () =
  let tw = Sim.Stats.Time_weighted.create ~now:0. ~init:4. in
  Sim.Stats.Time_weighted.set tw ~now:2. 8.;
  Sim.Stats.Time_weighted.reset tw ~now:4.;
  (* After reset only the post-reset window counts; value carried over. *)
  check_float "value carries over" 8. (Sim.Stats.Time_weighted.value tw);
  check_float "fresh window" 8. (Sim.Stats.Time_weighted.average tw ~now:6.)

let test_time_weighted_empty_window () =
  let tw = Sim.Stats.Time_weighted.create ~now:1. ~init:7. in
  check_float "zero-length window returns value" 7.
    (Sim.Stats.Time_weighted.average tw ~now:1.)

let test_time_weighted_rejects_backwards () =
  let tw = Sim.Stats.Time_weighted.create ~now:5. ~init:0. in
  Alcotest.check_raises "backwards"
    (Invalid_argument "Time_weighted.set: time went backwards") (fun () ->
      Sim.Stats.Time_weighted.set tw ~now:4. 1.)

let test_ewma_first_sample () =
  let e = Sim.Stats.Ewma.create ~gain:0.5 in
  Alcotest.(check bool) "not initialized" false (Sim.Stats.Ewma.is_initialized e);
  Sim.Stats.Ewma.update e 10.;
  check_float "first sample initializes" 10. (Sim.Stats.Ewma.value e)

let test_ewma_converges () =
  let e = Sim.Stats.Ewma.create ~gain:0.5 in
  Sim.Stats.Ewma.update e 0.;
  for _ = 1 to 30 do
    Sim.Stats.Ewma.update e 100.
  done;
  check_float_eps 0.01 "converged" 100. (Sim.Stats.Ewma.value e)

let test_ewma_formula () =
  let e = Sim.Stats.Ewma.create ~gain:0.25 in
  Sim.Stats.Ewma.update e 8.;
  Sim.Stats.Ewma.update e 0.;
  check_float "one step: 8 + 0.25*(0-8)" 6. (Sim.Stats.Ewma.value e)

let test_ewma_rejects_bad_gain () =
  Alcotest.check_raises "gain 0" (Invalid_argument "Ewma.create: gain out of (0, 1]")
    (fun () -> ignore (Sim.Stats.Ewma.create ~gain:0.));
  Alcotest.check_raises "gain 2" (Invalid_argument "Ewma.create: gain out of (0, 1]")
    (fun () -> ignore (Sim.Stats.Ewma.create ~gain:2.))

let test_welford () =
  let w = Sim.Stats.Welford.create () in
  List.iter (Sim.Stats.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Sim.Stats.Welford.count w);
  check_float "mean" 5. (Sim.Stats.Welford.mean w);
  check_float_eps 1e-9 "sample variance" (32. /. 7.) (Sim.Stats.Welford.variance w)

let test_welford_degenerate () =
  let w = Sim.Stats.Welford.create () in
  check_float "variance of empty" 0. (Sim.Stats.Welford.variance w);
  Sim.Stats.Welford.add w 5.;
  check_float "variance of singleton" 0. (Sim.Stats.Welford.variance w)

let prop_welford_mean_matches_naive =
  QCheck.Test.make ~name:"welford mean equals naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.))
    (fun xs ->
      let w = Sim.Stats.Welford.create () in
      List.iter (Sim.Stats.Welford.add w) xs;
      let naive = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Sim.Stats.Welford.mean w -. naive) < 1e-6)

let test_quantile_small_samples_exact () =
  let q = Sim.Stats.Quantile.create ~q:0.5 in
  check_float "empty" 0. (Sim.Stats.Quantile.estimate q);
  Sim.Stats.Quantile.add q 10.;
  check_float "single" 10. (Sim.Stats.Quantile.estimate q);
  Sim.Stats.Quantile.add q 2.;
  Sim.Stats.Quantile.add q 6.;
  (* Median of {2, 6, 10}. *)
  check_float "exact median of three" 6. (Sim.Stats.Quantile.estimate q);
  Alcotest.(check int) "count" 3 (Sim.Stats.Quantile.count q)

let test_quantile_median_uniform () =
  let q = Sim.Stats.Quantile.create ~q:0.5 in
  let r = Sim.Rng.create 31 in
  for _ = 1 to 20_000 do
    Sim.Stats.Quantile.add q (Sim.Rng.float r 100.)
  done;
  check_float_eps 2. "median of U(0,100)" 50. (Sim.Stats.Quantile.estimate q)

let test_quantile_p99_uniform () =
  let q = Sim.Stats.Quantile.create ~q:0.99 in
  let r = Sim.Rng.create 37 in
  for _ = 1 to 50_000 do
    Sim.Stats.Quantile.add q (Sim.Rng.float r 1.)
  done;
  check_float_eps 0.01 "p99 of U(0,1)" 0.99 (Sim.Stats.Quantile.estimate q)

let test_quantile_p90_exponential () =
  (* P90 of Exp(mean 2) is -2 ln(0.1) ~= 4.605. *)
  let q = Sim.Stats.Quantile.create ~q:0.9 in
  let r = Sim.Rng.create 41 in
  for _ = 1 to 50_000 do
    Sim.Stats.Quantile.add q (Sim.Rng.exponential r ~mean:2.)
  done;
  check_float_eps 0.25 "p90 of Exp(2)" 4.605 (Sim.Stats.Quantile.estimate q)

let test_quantile_validation () =
  Alcotest.check_raises "q=0" (Invalid_argument "Quantile.create: q out of (0, 1)")
    (fun () -> ignore (Sim.Stats.Quantile.create ~q:0.));
  Alcotest.check_raises "q=1" (Invalid_argument "Quantile.create: q out of (0, 1)")
    (fun () -> ignore (Sim.Stats.Quantile.create ~q:1.))

let prop_quantile_close_to_exact =
  QCheck.Test.make ~name:"P2 estimate lands inside the sample range near the true quantile"
    ~count:100
    QCheck.(pair (list_of_size Gen.(50 -- 400) (float_bound_inclusive 1000.)) (float_range 0.1 0.9))
    (fun (xs, target) ->
      let q = Sim.Stats.Quantile.create ~q:target in
      List.iter (Sim.Stats.Quantile.add q) xs;
      let sorted = List.sort compare xs in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      let exact = arr.(Stdlib.min (n - 1) (int_of_float (target *. float_of_int n))) in
      let estimate = Sim.Stats.Quantile.estimate q in
      (* Coarse agreement: within the interquantile band +-15 ranks. *)
      let lo = arr.(Stdlib.max 0 (int_of_float (target *. float_of_int n) - 15)) in
      let hi = arr.(Stdlib.min (n - 1) (int_of_float (target *. float_of_int n) + 15)) in
      ignore exact;
      estimate >= lo -. 1e-6 && estimate <= hi +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Timeseries *)

let make_series points =
  let ts = Sim.Timeseries.create ~name:"t" () in
  List.iter (fun (t, v) -> Sim.Timeseries.add ts t v) points;
  ts

let test_timeseries_basic () =
  let ts = make_series [ (0., 1.); (1., 2.); (2., 3.) ] in
  Alcotest.(check int) "length" 3 (Sim.Timeseries.length ts);
  Alcotest.(check string) "name" "t" (Sim.Timeseries.name ts);
  Alcotest.(check bool) "last" true (Sim.Timeseries.last ts = Some (2., 3.))

let test_timeseries_window_mean () =
  let ts = make_series [ (0., 10.); (1., 20.); (2., 30.); (3., 40.) ] in
  (match Sim.Timeseries.window_mean ts ~from:1. ~until:2. with
  | Some m -> check_float "mean of middle" 25. m
  | None -> Alcotest.fail "expected mean");
  Alcotest.(check bool) "empty window" true
    (Sim.Timeseries.window_mean ts ~from:10. ~until:20. = None)

let test_timeseries_value_at () =
  let ts = make_series [ (1., 10.); (2., 20.); (4., 40.) ] in
  Alcotest.(check bool) "before first" true (Sim.Timeseries.value_at ts 0.5 = None);
  Alcotest.(check bool) "exact" true (Sim.Timeseries.value_at ts 2. = Some 20.);
  Alcotest.(check bool) "between" true (Sim.Timeseries.value_at ts 3. = Some 20.);
  Alcotest.(check bool) "after last" true (Sim.Timeseries.value_at ts 9. = Some 40.)

let test_timeseries_smooth () =
  let ts = make_series [ (0., 0.); (1., 10.); (2., 20.); (3., 30.) ] in
  let s = Sim.Timeseries.smooth ts ~window:1.5 in
  let arr = Sim.Timeseries.to_array s in
  check_float "first sample unchanged" 0. (snd arr.(0));
  check_float "trailing mean of two" 5. (snd arr.(1));
  check_float "trailing mean of two (later)" 25. (snd arr.(3))

let test_timeseries_smooth_zero_window () =
  let ts = make_series [ (0., 1.); (1., 5.) ] in
  let s = Sim.Timeseries.smooth ts ~window:0. in
  Alcotest.(check bool) "identity" true
    (Sim.Timeseries.to_array s = Sim.Timeseries.to_array ts)

let prop_value_at_matches_scan =
  QCheck.Test.make ~name:"value_at matches linear scan" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.))
        (float_bound_inclusive 120.))
    (fun (raw, query) ->
      let times = List.sort_uniq compare raw in
      let ts = make_series (List.map (fun t -> (t, t *. 2.)) times) in
      let expected =
        List.fold_left (fun acc t -> if t <= query then Some (t *. 2.) else acc) None times
      in
      Sim.Timeseries.value_at ts query = expected)

let prop_ewma_converges_to_constant =
  QCheck.Test.make ~name:"ewma converges to a constant input" ~count:200
    QCheck.(
      triple (float_range 0.01 1.) (float_range (-100.) 100.)
        (float_range (-100.) 100.))
    (fun (gain, x0, c) ->
      let e = Sim.Stats.Ewma.create ~gain in
      Sim.Stats.Ewma.update e x0;
      for _ = 1 to 500 do
        Sim.Stats.Ewma.update e c
      done;
      (* Error after n steps is (1-gain)^n |x0 - c|; for gain >= 0.01
         and n = 500 that factor is under 0.7%. *)
      Float.abs (Sim.Stats.Ewma.value e -. c)
      <= (0.01 *. Float.abs (x0 -. c)) +. 1e-9)

let prop_timeseries_monotone_and_bounded =
  QCheck.Test.make
    ~name:"timeseries keeps timestamps monotone; window_mean stays in range"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40)
           (pair (float_bound_inclusive 100.) (float_range (-50.) 50.)))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (raw, (a, b)) ->
      (* Feed samples in time order (duplicate times collapse to one
         insertion point in the generator's sort). *)
      let points =
        List.sort_uniq (fun (t1, _) (t2, _) -> compare t1 t2) raw
      in
      let ts = Sim.Timeseries.create ~name:"p" () in
      List.iter (fun (t, v) -> Sim.Timeseries.add ts t v) points;
      let arr = Sim.Timeseries.to_array ts in
      let monotone = ref true in
      Array.iteri
        (fun i (t, _) -> if i > 0 && t <= fst arr.(i - 1) then monotone := false)
        arr;
      let from = Float.min a b and until = Float.max a b in
      let in_window =
        List.filter_map
          (fun (t, v) -> if t >= from && t <= until then Some v else None)
          points
      in
      let bounded =
        match (Sim.Timeseries.window_mean ts ~from ~until, in_window) with
        | None, [] -> true
        | None, _ :: _ -> false
        | Some _, [] -> false
        | Some m, vs ->
          let lo = List.fold_left Float.min infinity vs
          and hi = List.fold_left Float.max neg_infinity vs in
          m >= lo -. 1e-9 && m <= hi +. 1e-9
      in
      !monotone && bounded)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_is_inert () =
  let tr = Sim.Trace.create () in
  Alcotest.(check bool) "disabled" false (Sim.Trace.enabled tr);
  Alcotest.(check bool) "want no" false (Sim.Trace.want tr Sim.Trace.Enqueue);
  Sim.Trace.record tr ~time:1. Sim.Trace.Enqueue ~a:0 ~b:0 ~x:0. ~y:0.;
  Alcotest.(check int) "nothing recorded" 0 (Sim.Trace.recorded tr);
  Alcotest.(check int) "nothing retained" 0 (Sim.Trace.length tr)

let test_trace_kind_filter () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable ~capacity:8 ~kinds:[ Sim.Trace.Drop; Sim.Trace.Epoch ] tr;
  Alcotest.(check bool) "wants drop" true (Sim.Trace.want tr Sim.Trace.Drop);
  Alcotest.(check bool) "ignores enqueue" false
    (Sim.Trace.want tr Sim.Trace.Enqueue);
  Sim.Trace.record tr ~time:1. Sim.Trace.Enqueue ~a:1 ~b:2 ~x:3. ~y:4.;
  Sim.Trace.record tr ~time:2. Sim.Trace.Drop ~a:1 ~b:2 ~x:1. ~y:0.;
  Alcotest.(check int) "filtered kind not recorded" 0
    (Sim.Trace.count tr Sim.Trace.Enqueue);
  Alcotest.(check int) "selected kind recorded" 1
    (Sim.Trace.count tr Sim.Trace.Drop);
  Alcotest.(check int) "one event retained" 1 (Sim.Trace.length tr)

let test_trace_ring_wrap () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable ~capacity:4 ~kinds:[ Sim.Trace.Epoch ] tr;
  for i = 1 to 10 do
    Sim.Trace.record tr ~time:(float_of_int i) Sim.Trace.Epoch ~a:i ~b:0
      ~x:0. ~y:0.
  done;
  Alcotest.(check int) "recorded counts survive wrap" 10 (Sim.Trace.recorded tr);
  Alcotest.(check int) "per-kind count survives wrap" 10
    (Sim.Trace.count tr Sim.Trace.Epoch);
  Alcotest.(check int) "ring holds capacity" 4 (Sim.Trace.length tr);
  Alcotest.(check int) "dropped = recorded - retained" 6
    (Sim.Trace.dropped_events tr);
  (* Oldest retained first: events 7, 8, 9, 10. *)
  List.iteri
    (fun i expect ->
      Alcotest.(check int)
        (Printf.sprintf "retained slot %d" i)
        expect (Sim.Trace.get tr i).Sim.Trace.a)
    [ 7; 8; 9; 10 ]

let test_trace_reset_and_exports () =
  let tr = Sim.Trace.create () in
  Sim.Trace.enable ~capacity:8 tr;
  Sim.Trace.record tr ~time:0.5 Sim.Trace.Drop ~a:3 ~b:7 ~x:1. ~y:0.;
  Sim.Trace.record tr ~time:1.5 Sim.Trace.Epoch ~a:2 ~b:0 ~x:9.25 ~y:4.;
  Alcotest.(check string) "jsonl"
    "{\"t\":0.5,\"kind\":\"drop\",\"a\":3,\"b\":7,\"x\":1.0,\"y\":0.0}\n\
     {\"t\":1.5,\"kind\":\"epoch\",\"a\":2,\"b\":0,\"x\":9.25,\"y\":4.0}\n"
    (Sim.Trace.to_jsonl tr);
  Alcotest.(check string) "csv"
    "time,kind,a,b,x,y\n0.5,drop,3,7,1.0,0.0\n1.5,epoch,2,0,9.25,4.0\n"
    (Sim.Trace.to_csv tr);
  Sim.Trace.reset tr;
  Alcotest.(check bool) "reset disables" false (Sim.Trace.enabled tr);
  Alcotest.(check int) "reset clears counts" 0 (Sim.Trace.count tr Sim.Trace.Drop);
  Alcotest.(check int) "reset clears events" 0 (Sim.Trace.length tr)

let test_trace_spec_validates () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Trace.spec: capacity must be positive") (fun () ->
      ignore (Sim.Trace.spec ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_get_or_create () =
  let m = Sim.Metrics.create () in
  let c1 = Sim.Metrics.counter m "jobs" in
  let c2 = Sim.Metrics.counter m "jobs" in
  Sim.Metrics.incr c1;
  Sim.Metrics.add c2 2;
  Alcotest.(check int) "same instrument" 3 (Sim.Metrics.counter_value c1);
  Alcotest.check_raises "cross-kind collision"
    (Invalid_argument "Metrics.gauge: jobs already registered as a counter")
    (fun () -> ignore (Sim.Metrics.gauge m "jobs"))

let test_metrics_gauge_and_probe () =
  let m = Sim.Metrics.create () in
  let g = Sim.Metrics.gauge m "depth" in
  Sim.Metrics.set g 4.5;
  check_float "gauge holds last value" 4.5 (Sim.Metrics.gauge_value g);
  let cell = ref 1. in
  Sim.Metrics.probe m "pull" (fun () -> !cell);
  cell := 7.;
  (* Probes are sampled at export time, not at registration. *)
  let row =
    List.find (fun r -> r.Sim.Metrics.name = "pull") (Sim.Metrics.rows m)
  in
  check_float "probe sampled lazily" 7. row.Sim.Metrics.value;
  (* Re-registration replaces the closure (component rebuilt on a
     reused engine). *)
  Sim.Metrics.probe m "pull" (fun () -> 42.);
  let row =
    List.find (fun r -> r.Sim.Metrics.name = "pull") (Sim.Metrics.rows m)
  in
  check_float "replaced" 42. row.Sim.Metrics.value

let test_metrics_rows_sorted_and_reset () =
  let m = Sim.Metrics.create () in
  ignore (Sim.Metrics.counter m "zeta");
  ignore (Sim.Metrics.counter m "alpha");
  ignore (Sim.Metrics.gauge m "mid");
  let names = List.map (fun r -> r.Sim.Metrics.name) (Sim.Metrics.rows m) in
  Alcotest.(check (list string)) "sorted" [ "alpha"; "mid"; "zeta" ] names;
  Sim.Metrics.set_enabled m true;
  Sim.Metrics.reset m;
  Alcotest.(check bool) "reset disables" false (Sim.Metrics.enabled m);
  Alcotest.(check int) "reset drops instruments" 0
    (List.length (Sim.Metrics.rows m))

let test_metrics_histogram_validates () =
  let m = Sim.Metrics.create () in
  Alcotest.check_raises "non-increasing buckets"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () -> ignore (Sim.Metrics.histogram ~buckets:[| 2.; 2. |] m "bad"))

let prop_histogram_sum_equals_count =
  QCheck.Test.make
    ~name:"histogram bucket counts sum to the observation count" ~count:200
    QCheck.(list (float_bound_inclusive 1500.))
    (fun xs ->
      let m = Sim.Metrics.create () in
      let h = Sim.Metrics.histogram m "h" in
      List.iter (Sim.Metrics.observe h) xs;
      let n = List.length xs in
      let bucket_total =
        List.fold_left (fun acc (_, c) -> acc + c) 0 (Sim.Metrics.bucket_counts h)
      in
      let total = List.fold_left ( +. ) 0. xs in
      Sim.Metrics.histogram_count h = n
      && bucket_total = n
      && Float.abs (Sim.Metrics.histogram_sum h -. total) <= 1e-6 *. (1. +. Float.abs total))

(* ------------------------------------------------------------------ *)
(* Invariant auditing *)

let test_invariant_require () =
  Sim.Invariant.require ~what:"fine" true;
  Alcotest.check_raises "failed check raises" (Sim.Invariant.Violation "broken")
    (fun () -> Sim.Invariant.require ~what:"broken" false);
  Alcotest.check_raises "lazy message built on failure"
    (Sim.Invariant.Violation "lazy") (fun () ->
      Sim.Invariant.requiref ~what:(fun () -> "lazy") false)

let test_invariant_default_toggle () =
  let saved = Sim.Invariant.default () in
  Sim.Invariant.set_default false;
  Alcotest.(check bool) "off" false (Sim.Invariant.default ());
  Sim.Invariant.set_default true;
  Alcotest.(check bool) "on" true (Sim.Invariant.default ());
  Sim.Invariant.set_default saved

let test_engine_monotonicity_audited () =
  (* Every step of a checked engine audits clock monotonicity, so the
     global check counter must advance by at least the event count. *)
  let before = Sim.Invariant.checks_run () in
  let e = Sim.Engine.create ~check_invariants:true () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "all fired" 10 !fired;
  Alcotest.(check bool) "auditing ran" true
    (Sim.Invariant.checks_run () - before >= 10)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "empty queue" `Quick test_queue_empty;
          Alcotest.test_case "orders by key" `Quick test_queue_orders_by_key;
          Alcotest.test_case "fifo on ties" `Quick test_queue_fifo_on_ties;
          Alcotest.test_case "peek matches pop" `Quick test_queue_peek_matches_pop;
          Alcotest.test_case "interleaved grow" `Quick test_queue_interleaved_grow;
          Alcotest.test_case "clear resets and reuses" `Quick
            test_queue_clear_resets_and_reuses;
          qt prop_queue_sorted;
          qt prop_queue_preserves_multiset;
          qt prop_queue_matches_sorted_model;
          qt prop_queue_length_tracks_model;
          Alcotest.test_case "unboxed api" `Quick test_queue_unboxed_api;
          qt prop_queue_unboxed_agrees_with_boxed;
        ] );
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound growth" `Quick
            test_ring_wraparound_growth;
          qt prop_ring_matches_stdlib_queue;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_runs_in_time_order;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel from event" `Quick test_engine_cancel_from_event;
          Alcotest.test_case "every" `Quick test_engine_every;
          Alcotest.test_case "every with start" `Quick test_engine_every_start;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "rejects bad times" `Quick test_engine_rejects_bad_times;
          Alcotest.test_case "every validates start" `Quick
            test_engine_every_validates_start;
          Alcotest.test_case "schedule_unit" `Quick test_engine_schedule_unit;
          Alcotest.test_case "pending" `Quick test_engine_pending;
          Alcotest.test_case "simultaneous fifo" `Quick test_engine_simultaneous_fifo;
          Alcotest.test_case "reset matches fresh engine" `Quick
            test_engine_reset_matches_fresh;
          Alcotest.test_case "reset clears pending events" `Quick
            test_engine_reset_clears_queue;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "stream derivation is pure" `Quick test_rng_stream_is_pure;
          qt prop_rng_scenario_replays;
          qt prop_rng_scenario_streams_disjoint;
          qt prop_rng_sibling_streams_disjoint;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float uniform" `Quick test_rng_float_unit;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto" `Quick test_rng_pareto;
          qt prop_sampler_means_converge;
          qt prop_sampler_split_determinism;
          qt prop_pareto_tail_index;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "tw constant" `Quick test_time_weighted_constant;
          Alcotest.test_case "tw step" `Quick test_time_weighted_step;
          Alcotest.test_case "tw reset" `Quick test_time_weighted_reset;
          Alcotest.test_case "tw empty window" `Quick test_time_weighted_empty_window;
          Alcotest.test_case "tw backwards" `Quick test_time_weighted_rejects_backwards;
          Alcotest.test_case "ewma first sample" `Quick test_ewma_first_sample;
          Alcotest.test_case "ewma converges" `Quick test_ewma_converges;
          Alcotest.test_case "ewma formula" `Quick test_ewma_formula;
          Alcotest.test_case "ewma bad gain" `Quick test_ewma_rejects_bad_gain;
          qt prop_ewma_converges_to_constant;
          Alcotest.test_case "welford" `Quick test_welford;
          Alcotest.test_case "welford degenerate" `Quick test_welford_degenerate;
          qt prop_welford_mean_matches_naive;
          Alcotest.test_case "quantile small samples" `Quick
            test_quantile_small_samples_exact;
          Alcotest.test_case "quantile median uniform" `Quick test_quantile_median_uniform;
          Alcotest.test_case "quantile p99 uniform" `Quick test_quantile_p99_uniform;
          Alcotest.test_case "quantile p90 exponential" `Quick
            test_quantile_p90_exponential;
          Alcotest.test_case "quantile validation" `Quick test_quantile_validation;
          qt prop_quantile_close_to_exact;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "basic" `Quick test_timeseries_basic;
          Alcotest.test_case "window mean" `Quick test_timeseries_window_mean;
          Alcotest.test_case "value_at" `Quick test_timeseries_value_at;
          Alcotest.test_case "smooth" `Quick test_timeseries_smooth;
          Alcotest.test_case "smooth zero window" `Quick
            test_timeseries_smooth_zero_window;
          qt prop_value_at_matches_scan;
          qt prop_timeseries_monotone_and_bounded;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is inert" `Quick test_trace_disabled_is_inert;
          Alcotest.test_case "kind filter" `Quick test_trace_kind_filter;
          Alcotest.test_case "ring wrap" `Quick test_trace_ring_wrap;
          Alcotest.test_case "reset and exports" `Quick test_trace_reset_and_exports;
          Alcotest.test_case "spec validates" `Quick test_trace_spec_validates;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "get or create" `Quick test_metrics_get_or_create;
          Alcotest.test_case "gauge and probe" `Quick test_metrics_gauge_and_probe;
          Alcotest.test_case "rows sorted; reset" `Quick
            test_metrics_rows_sorted_and_reset;
          Alcotest.test_case "histogram validates" `Quick
            test_metrics_histogram_validates;
          qt prop_histogram_sum_equals_count;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "require raises" `Quick test_invariant_require;
          Alcotest.test_case "default toggle" `Quick test_invariant_default_toggle;
          Alcotest.test_case "engine audited" `Quick test_engine_monotonicity_audited;
        ] );
    ]
