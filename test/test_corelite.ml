(* Tests for the Corelite mechanisms: marker injection, congestion
   estimation, both feedback selectors, the edge agent, the per-link
   core logic, and end-to-end convergence. *)

let check_float = Alcotest.(check (float 1e-9))

let check_float_eps eps = Alcotest.(check (float eps))

let marker ?(edge = 1) ?(flow = 1) rn =
  { Net.Packet.edge_id = edge; flow_id = flow; normalized_rate = rn }

(* ------------------------------------------------------------------ *)
(* Params *)

let test_marker_spacing () =
  let p = Corelite.Params.default in
  Alcotest.(check int) "w=1" 1 (Corelite.Params.marker_spacing p ~weight:1.);
  Alcotest.(check int) "w=2" 2 (Corelite.Params.marker_spacing p ~weight:2.);
  Alcotest.(check int) "w=3" 3 (Corelite.Params.marker_spacing p ~weight:3.);
  let p2 = { p with Corelite.Params.k1 = 2. } in
  Alcotest.(check int) "k1=2 w=3" 6 (Corelite.Params.marker_spacing p2 ~weight:3.);
  let p_half = { p with Corelite.Params.k1 = 0.25 } in
  Alcotest.(check int) "never below 1" 1 (Corelite.Params.marker_spacing p_half ~weight:1.)

let test_marker_spacing_rejects_bad_weight () =
  Alcotest.check_raises "weight 0"
    (Invalid_argument "Params.marker_spacing: weight must be positive") (fun () ->
      ignore (Corelite.Params.marker_spacing Corelite.Params.default ~weight:0.))

(* ------------------------------------------------------------------ *)
(* Congestion (Fn) *)

let test_fn_zero_below_threshold () =
  check_float "below" 0.
    (Corelite.Congestion.markers_needed ~mu:50. ~qavg:5. ~qthresh:8. ~k:0.005);
  check_float "at threshold" 0.
    (Corelite.Congestion.markers_needed ~mu:50. ~qavg:8. ~qthresh:8. ~k:0.005)

let test_fn_mm1_term () =
  (* k = 0 leaves only the M/M/1 excess term. *)
  let fn = Corelite.Congestion.markers_needed ~mu:50. ~qavg:12. ~qthresh:8. ~k:0. in
  let expected = 50. *. ((12. /. 13.) -. (8. /. 9.)) in
  check_float "M/M/1 excess" expected fn

let test_fn_cubic_term () =
  let base = Corelite.Congestion.markers_needed ~mu:50. ~qavg:12. ~qthresh:8. ~k:0. in
  let with_k =
    Corelite.Congestion.markers_needed ~mu:50. ~qavg:12. ~qthresh:8. ~k:0.01
  in
  check_float "cubic adds k*(q-qt)^3" (base +. (0.01 *. 64.)) with_k

(* The cubic correction at the congestion boundary qavg = qthresh:
   both terms vanish exactly at the threshold, and the budget rises
   continuously (no jump) as qavg crosses it — the cubic term grows as
   eps^3, so just above threshold the M/M/1 term dominates. *)
let test_fn_cubic_boundary () =
  let t = Corelite.Congestion.make (Corelite.Congestion.Mm1_cubic 0.005) in
  check_float "exactly at threshold" 0.
    (Corelite.Congestion.budget t ~mu:50. ~qavg:8. ~qthresh:8.);
  let eps = 1e-6 in
  let just_above = Corelite.Congestion.budget t ~mu:50. ~qavg:(8. +. eps) ~qthresh:8. in
  Alcotest.(check bool) "continuous from above" true
    (just_above > 0. && just_above < 1e-4);
  (* At qavg = qthresh + 2 the cubic adds exactly k * 8 over the pure
     M/M/1 budget. *)
  let base = Corelite.Congestion.markers_needed ~mu:50. ~qavg:10. ~qthresh:8. ~k:0. in
  check_float "cubic increment" (base +. (0.005 *. 8.))
    (Corelite.Congestion.budget t ~mu:50. ~qavg:10. ~qthresh:8.)

(* qavg comes from router soft state that faults can corrupt. Release
   builds clamp garbage to "uncongested"; debug builds (invariant
   auditing on, as in this suite) raise at the source. *)
let test_budget_clamps_bad_qavg_when_released () =
  Sim.Invariant.set_default false;
  Fun.protect
    ~finally:(fun () -> Sim.Invariant.set_default true)
    (fun () ->
      let t = Corelite.Congestion.make (Corelite.Congestion.Mm1_cubic 0.005) in
      List.iter
        (fun qavg ->
          check_float "clamped to uncongested" 0.
            (Corelite.Congestion.budget t ~mu:50. ~qavg ~qthresh:8.))
        [ Float.nan; Float.neg_infinity; Float.infinity; -3. ])

let test_budget_raises_on_bad_qavg_in_debug () =
  let t = Corelite.Congestion.make (Corelite.Congestion.Mm1_cubic 0.005) in
  List.iter
    (fun qavg ->
      Alcotest.check_raises "Violation"
        (Sim.Invariant.Violation
           (Printf.sprintf "Congestion.budget: qavg %h is not finite and non-negative"
              qavg))
        (fun () -> ignore (Corelite.Congestion.budget t ~mu:50. ~qavg ~qthresh:8.)))
    [ Float.nan; -1. ]

let test_budget_rejects_negative_inputs () =
  let t = Corelite.Congestion.make (Corelite.Congestion.Mm1_cubic 0.005) in
  Alcotest.check_raises "negative mu" (Invalid_argument "Congestion.budget: negative input")
    (fun () -> ignore (Corelite.Congestion.budget t ~mu:(-1.) ~qavg:0. ~qthresh:8.));
  Alcotest.check_raises "negative qthresh"
    (Invalid_argument "Congestion.budget: negative input") (fun () ->
      ignore (Corelite.Congestion.budget t ~mu:50. ~qavg:0. ~qthresh:(-8.)))

let test_congestion_reset_forgets_smoothed_queue () =
  let t =
    Corelite.Congestion.make
      (Corelite.Congestion.Ewma_threshold { gain = 1.0; scale = 1. })
  in
  (* gain 1: the EWMA is just the last qavg. 20 packets -> budget 12. *)
  check_float "congested" 12. (Corelite.Congestion.budget t ~mu:50. ~qavg:20. ~qthresh:8.);
  Corelite.Congestion.reset t;
  (* History forgotten: a quiet epoch after the reset reads as quiet. *)
  check_float "quiet after reset" 0.
    (Corelite.Congestion.budget t ~mu:50. ~qavg:0. ~qthresh:8.)

let test_fn_mm1_arrival_rate () =
  check_float "q=8" (50. *. 8. /. 9.) (Corelite.Congestion.mm1_arrival_rate ~mu:50. ~q:8.);
  Alcotest.check_raises "negative"
    (Invalid_argument "Congestion.mm1_arrival_rate: negative input") (fun () ->
      ignore (Corelite.Congestion.mm1_arrival_rate ~mu:(-1.) ~q:0.))

let prop_fn_monotone_in_qavg =
  QCheck.Test.make ~name:"Fn is nondecreasing in qavg" ~count:200
    QCheck.(pair (float_range 0. 40.) (float_range 0. 10.))
    (fun (qavg, delta) ->
      let fn q = Corelite.Congestion.markers_needed ~mu:50. ~qavg:q ~qthresh:8. ~k:0.005 in
      fn (qavg +. delta) >= fn qavg -. 1e-9)

let prop_fn_nonnegative =
  QCheck.Test.make ~name:"Fn is nonnegative" ~count:200
    QCheck.(float_range 0. 100.)
    (fun qavg ->
      Corelite.Congestion.markers_needed ~mu:50. ~qavg ~qthresh:8. ~k:0.005 >= 0.)

(* ------------------------------------------------------------------ *)
(* Cache selector *)

let test_cache_occupancy_and_wrap () =
  let c = Corelite.Cache_selector.create ~capacity:4 ~rng:(Sim.Rng.create 1) in
  Alcotest.(check int) "empty" 0 (Corelite.Cache_selector.occupancy c);
  for i = 1 to 3 do
    Corelite.Cache_selector.observe c (marker ~flow:i 10.)
  done;
  Alcotest.(check int) "partial" 3 (Corelite.Cache_selector.occupancy c);
  for i = 4 to 10 do
    Corelite.Cache_selector.observe c (marker ~flow:i 10.)
  done;
  Alcotest.(check int) "capped at capacity" 4 (Corelite.Cache_selector.occupancy c)

let test_cache_empty_select () =
  let c = Corelite.Cache_selector.create ~capacity:4 ~rng:(Sim.Rng.create 1) in
  Alcotest.(check (list int)) "no markers" []
    (List.map
       (fun m -> m.Net.Packet.flow_id)
       (Corelite.Cache_selector.select c ~fn:3.))

let test_cache_select_count () =
  let c = Corelite.Cache_selector.create ~capacity:16 ~rng:(Sim.Rng.create 2) in
  for i = 1 to 16 do
    Corelite.Cache_selector.observe c (marker ~flow:i 10.)
  done;
  Alcotest.(check int) "integral budget" 5
    (List.length (Corelite.Cache_selector.select c ~fn:5.));
  (* Fractional budget: expected count = fn; check the long-run mean. *)
  let total = ref 0 in
  for _ = 1 to 2000 do
    total := !total + List.length (Corelite.Cache_selector.select c ~fn:1.5)
  done;
  check_float_eps 0.1 "fractional expectation" 1.5 (float_of_int !total /. 2000.)

let test_cache_proportional_feedback () =
  (* Flow 1 contributes twice the markers of flow 2: its expected share
     of feedback is 2/3 — the weighted-fairness property of the cache. *)
  let c = Corelite.Cache_selector.create ~capacity:300 ~rng:(Sim.Rng.create 3) in
  for i = 0 to 299 do
    let flow = if i mod 3 < 2 then 1 else 2 in
    Corelite.Cache_selector.observe c (marker ~flow 10.)
  done;
  let count1 = ref 0 and total = ref 0 in
  for _ = 1 to 500 do
    List.iter
      (fun m ->
        incr total;
        if m.Net.Packet.flow_id = 1 then incr count1)
      (Corelite.Cache_selector.select c ~fn:4.)
  done;
  check_float_eps 0.04 "2:1 marker ratio -> 2/3 of feedback" (2. /. 3.)
    (float_of_int !count1 /. float_of_int !total)

let test_cache_rejects_bad_args () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Cache_selector.create: capacity must be positive") (fun () ->
      ignore (Corelite.Cache_selector.create ~capacity:0 ~rng:(Sim.Rng.create 1)));
  let c = Corelite.Cache_selector.create ~capacity:1 ~rng:(Sim.Rng.create 1) in
  Alcotest.check_raises "negative fn"
    (Invalid_argument "Cache_selector.select: negative budget") (fun () ->
      ignore (Corelite.Cache_selector.select c ~fn:(-1.)))

(* ------------------------------------------------------------------ *)
(* Stateless selector *)

let mk_stateless ?(rav_gain = 0.1) ?(wav_gain = 1.) ?(pw_cap = 1.) seed =
  Corelite.Stateless_selector.create ~rav_gain ~wav_gain ~pw_cap
    ~rng:(Sim.Rng.create seed)

let test_stateless_idle_without_budget () =
  let s = mk_stateless 1 in
  Alcotest.(check int) "no budget, no feedback" 0
    (Corelite.Stateless_selector.observe s (marker 10.));
  check_float "pw stays 0" 0. (Corelite.Stateless_selector.pw s)

let test_stateless_rav_tracks_labels () =
  let s = mk_stateless ~rav_gain:1. 1 in
  ignore (Corelite.Stateless_selector.observe s (marker 10.));
  check_float "rav equals last with gain 1" 10. (Corelite.Stateless_selector.rav s);
  ignore (Corelite.Stateless_selector.observe s (marker 30.));
  check_float "tracks" 30. (Corelite.Stateless_selector.rav s)

let test_stateless_pw_arming () =
  let s = mk_stateless 1 in
  (* 10 markers in the epoch; budget 5 -> pw = 0.5. *)
  for _ = 1 to 10 do
    ignore (Corelite.Stateless_selector.observe s (marker 10.))
  done;
  Corelite.Stateless_selector.on_epoch s ~fn:5.;
  check_float "pw = fn/wav" 0.5 (Corelite.Stateless_selector.pw s);
  Corelite.Stateless_selector.on_epoch s ~fn:0.;
  check_float "disarmed when uncongested" 0. (Corelite.Stateless_selector.pw s)

let test_stateless_pw_cap () =
  let s = mk_stateless ~pw_cap:2. 1 in
  for _ = 1 to 4 do
    ignore (Corelite.Stateless_selector.observe s (marker 10.))
  done;
  Corelite.Stateless_selector.on_epoch s ~fn:100.;
  check_float "capped" 2. (Corelite.Stateless_selector.pw s)

let test_stateless_selects_only_above_average () =
  let s = mk_stateless ~rav_gain:0.05 7 in
  (* Establish rav around 20 from a 10/30 mix. *)
  for _ = 1 to 200 do
    ignore (Corelite.Stateless_selector.observe s (marker ~flow:1 10.));
    ignore (Corelite.Stateless_selector.observe s (marker ~flow:2 30.))
  done;
  Corelite.Stateless_selector.on_epoch s ~fn:50.;
  let low = ref 0 and high = ref 0 in
  for _ = 1 to 400 do
    let c1 = Corelite.Stateless_selector.observe s (marker ~flow:1 10.) in
    let c2 = Corelite.Stateless_selector.observe s (marker ~flow:2 30.) in
    low := !low + c1;
    high := !high + c2
  done;
  Alcotest.(check int) "below-average flow untouched" 0 !low;
  Alcotest.(check bool) "above-average flow throttled" true (!high > 0)

let test_stateless_deficit_swaps () =
  (* With pw = 1 every marker is selected; ineligible ones build deficit
     which eligible markers repay on top of their own selection. *)
  let s = mk_stateless ~rav_gain:0.5 11 in
  ignore (Corelite.Stateless_selector.observe s (marker 100.));
  (* rav = 100 *)
  for _ = 1 to 10 do
    ignore (Corelite.Stateless_selector.observe s (marker 100.))
  done;
  Corelite.Stateless_selector.on_epoch s ~fn:1000.;
  (* pw capped at 1. Low marker (rn 0 < rav): selected, not sent. *)
  Alcotest.(check int) "ineligible buffered" 0
    (Corelite.Stateless_selector.observe s (marker 0.));
  Alcotest.(check bool) "deficit grew" true (Corelite.Stateless_selector.deficit s >= 1)

let test_stateless_deficit_resets_each_epoch () =
  let s = mk_stateless ~rav_gain:0.5 13 in
  ignore (Corelite.Stateless_selector.observe s (marker 100.));
  Corelite.Stateless_selector.on_epoch s ~fn:10.;
  ignore (Corelite.Stateless_selector.observe s (marker 0.));
  Alcotest.(check bool) "deficit positive" true (Corelite.Stateless_selector.deficit s > 0);
  Corelite.Stateless_selector.on_epoch s ~fn:10.;
  Alcotest.(check int) "reset" 0 (Corelite.Stateless_selector.deficit s)

let test_stateless_expected_feedback_rate () =
  (* All markers above-average-or-equal: expected feedback per epoch
     approximately equals fn. *)
  let s = mk_stateless ~rav_gain:0.9 17 in
  for _ = 1 to 20 do
    ignore (Corelite.Stateless_selector.observe s (marker 10.))
  done;
  let sent = ref 0 and epochs = 300 in
  for _ = 1 to epochs do
    Corelite.Stateless_selector.on_epoch s ~fn:5.;
    for _ = 1 to 20 do
      sent := !sent + Corelite.Stateless_selector.observe s (marker 10.)
    done
  done;
  check_float_eps 0.4 "mean feedback near fn" 5.
    (float_of_int !sent /. float_of_int epochs)

let test_stateless_rejects_negative_budget () =
  let s = mk_stateless 1 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Stateless_selector.on_epoch: negative budget") (fun () ->
      Corelite.Stateless_selector.on_epoch s ~fn:(-1.))

(* ------------------------------------------------------------------ *)
(* Router-reset soft-state semantics (robustness extension) *)

let test_cache_clear_empties () =
  let c = Corelite.Cache_selector.create ~capacity:8 ~rng:(Sim.Rng.create 3) in
  for i = 1 to 5 do
    Corelite.Cache_selector.observe c (marker ~flow:i (float_of_int i))
  done;
  Alcotest.(check int) "cached" 5 (Corelite.Cache_selector.occupancy c);
  Corelite.Cache_selector.clear c;
  Alcotest.(check int) "wiped" 0 (Corelite.Cache_selector.occupancy c);
  (* An empty cache selects nothing (and draws nothing): a freshly
     reset core cannot burst feedback from stale entries. *)
  Alcotest.(check int) "no draws" 0
    (Corelite.Cache_selector.select_iter c ~fn:5. (fun _ ->
         Alcotest.fail "selected from a cleared cache"));
  Alcotest.(check int) "empty selection" 0
    (List.length (Corelite.Cache_selector.select c ~fn:5.));
  (* A cleared cache must be a working cache. *)
  Corelite.Cache_selector.observe c (marker 1.);
  Alcotest.(check int) "usable after clear" 1 (Corelite.Cache_selector.occupancy c)

let test_stateless_reset_clears_state () =
  let s =
    Corelite.Stateless_selector.create ~rav_gain:0.5 ~wav_gain:0.5 ~pw_cap:8.
      ~rng:(Sim.Rng.create 4)
  in
  (* Build up rav/wav and arm a selection probability. *)
  for _ = 1 to 10 do
    ignore (Corelite.Stateless_selector.observe s (marker 4.))
  done;
  Corelite.Stateless_selector.on_epoch s ~fn:5.;
  Alcotest.(check bool) "armed" true (Corelite.Stateless_selector.pw s > 0.);
  Alcotest.(check bool) "rav built" true (Corelite.Stateless_selector.rav s > 0.);
  Corelite.Stateless_selector.reset s;
  check_float "pw zeroed" 0. (Corelite.Stateless_selector.pw s);
  check_float "rav forgotten" 0. (Corelite.Stateless_selector.rav s);
  Alcotest.(check int) "deficit zeroed" 0 (Corelite.Stateless_selector.deficit s);
  (* With pw = 0 nothing is selected until an epoch rebuilds a budget
     from fresh observations. *)
  Alcotest.(check int) "no selection after reset" 0
    (Corelite.Stateless_selector.observe s (marker 4.))

(* ------------------------------------------------------------------ *)
(* Edge agent *)

(* Two-hop network E -> C1 -> C2 -> D for one flow. *)
let edge_fixture ?(weight = 2.) ?(params = Corelite.Params.default) () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n kind name = Net.Topology.add_node topology ~kind name in
  let e = n Net.Node.Edge "E" and c1 = n Net.Node.Core "C1" in
  let c2 = n Net.Node.Core "C2" and d = n Net.Node.Edge "D" in
  let link ~src ~dst =
    Net.Topology.add_link topology ~src ~dst ~bandwidth:4_000_000. ~delay:0.04
      ~qdisc:(Net.Qdisc.droptail ~capacity:40)
  in
  let l1 = link ~src:e ~dst:c1 in
  let l2 = link ~src:c1 ~dst:c2 in
  let l3 = link ~src:c2 ~dst:d in
  let flow = Net.Flow.make ~id:1 ~weight ~path:[ e; c1; c2; d ] in
  let agent = Corelite.Edge.create ~params ~topology ~flow () in
  (engine, topology, agent, (l1, l2, l3))

let test_edge_marker_cadence () =
  let engine, _, agent, (l1, _, _) = edge_fixture ~weight:2. () in
  let markers = ref 0 and data = ref 0 in
  l1.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival =
          (fun p ->
            incr data;
            if Net.Packet.has_marker p then incr markers;
            Net.Link.Pass);
        on_queue_change = (fun _ -> ());
      };
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 20.;
  Corelite.Edge.stop agent;
  (* Weight 2 with K1 = 1: every second packet carries a marker. *)
  Alcotest.(check int) "every 2nd packet" (!data / 2) !markers;
  Alcotest.(check int) "agent counted the same" !markers
    (Corelite.Edge.markers_attached agent)

let test_edge_marker_rn_is_normalized_rate () =
  let engine, _, agent, (l1, _, _) = edge_fixture ~weight:2. () in
  let checked = ref 0 in
  l1.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival =
          (fun p ->
            (match p.Net.Packet.marker with
            | Some m ->
              incr checked;
              (* rn must equal the agent's current rate / weight. *)
              if
                Float.abs
                  (m.Net.Packet.normalized_rate -. (Corelite.Edge.rate agent /. 2.))
                > 1e-9
              then Alcotest.fail "rn mismatch"
            | None -> ());
            Net.Link.Pass);
        on_queue_change = (fun _ -> ());
      };
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 10.;
  Alcotest.(check bool) "saw markers" true (!checked > 0)

let test_edge_reacts_to_max_not_sum () =
  let engine, _, agent, _ = edge_fixture () in
  Corelite.Edge.start agent;
  (* By t = 7 the slow-start threshold has put the agent in linear
     mode at a known rate. *)
  Sim.Engine.run_until engine 7.;
  let rate0 = Corelite.Edge.rate agent in
  (* 3 markers from link A, 2 from link B within one epoch: the decrease
     must be beta * max(3,2) = 3, not 5. *)
  for _ = 1 to 3 do
    Corelite.Edge.receive_feedback agent ~link_id:100 (marker 1.)
  done;
  for _ = 1 to 2 do
    Corelite.Edge.receive_feedback agent ~link_id:200 (marker 1.)
  done;
  (* Run just past the next epoch boundary. *)
  Sim.Engine.run_until engine (Sim.Engine.now engine +. 0.55);
  let drop = rate0 -. Corelite.Edge.rate agent in
  check_float "decrease by max" 3. drop

let test_edge_feedback_ignored_when_stopped () =
  let engine, _, agent, _ = edge_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 2.;
  Corelite.Edge.stop agent;
  Corelite.Edge.receive_feedback agent ~link_id:1 (marker 1.);
  Alcotest.(check int) "not counted" 0 (Corelite.Edge.feedback_received agent)

let test_edge_delivery_counting () =
  let engine, _, agent, _ = edge_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 10.;
  Corelite.Edge.stop agent;
  Sim.Engine.run_until engine 11.;
  (* Everything sent arrives (no congestion from one slow-started flow). *)
  Alcotest.(check int) "all delivered" (Corelite.Edge.sent agent)
    (Corelite.Edge.delivered agent);
  Alcotest.(check bool) "sent something" true (Corelite.Edge.sent agent > 0)

let test_edge_restart_after_stop () =
  let engine, _, agent, _ = edge_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 5.;
  Corelite.Edge.stop agent;
  Alcotest.(check bool) "stopped" false (Corelite.Edge.running agent);
  Corelite.Edge.start agent;
  Alcotest.(check bool) "running again" true (Corelite.Edge.running agent);
  check_float "fresh slow-start rate" 1. (Corelite.Edge.rate agent)

(* ------------------------------------------------------------------ *)
(* Core logic *)

let core_fixture ?(params = Corelite.Params.default) () =
  let engine, topology, agent, (l1, l2, l3) = edge_fixture ~params () in
  let feedback = ref [] in
  let core =
    Corelite.Core.attach ~params ~rng:(Sim.Rng.create 5)
      ~send_feedback:(fun m -> feedback := m :: !feedback)
      l2
  in
  (engine, topology, agent, core, feedback, (l1, l2, l3))

let test_core_attach_rejects_hooked_link () =
  let params = Corelite.Params.default in
  let _, _, _, _, _, (_, l2, _) = core_fixture ~params () in
  Alcotest.check_raises "already hooked"
    (Invalid_argument "Core.attach: link C1->C2 already has hooks") (fun () ->
      ignore
        (Corelite.Core.attach ~params ~rng:(Sim.Rng.create 6)
           ~send_feedback:(fun _ -> ())
           l2))

let test_core_counts_markers () =
  let engine, _, agent, core, _, _ = core_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 10.;
  Alcotest.(check int) "sees every marker" (Corelite.Edge.markers_attached agent)
    (Corelite.Core.markers_seen core)

let test_core_no_feedback_without_congestion () =
  let engine, _, agent, core, feedback, _ = core_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 10.;
  (* A single slow flow cannot congest a 500 pkt/s link capped at 32. *)
  Alcotest.(check int) "no congested epochs" 0 (Corelite.Core.congested_epochs core);
  Alcotest.(check int) "no feedback" 0 (List.length !feedback)

let test_core_detach_restores_link () =
  let _, _, _, core, _, (_, l2, _) = core_fixture () in
  Corelite.Core.detach core;
  Alcotest.(check bool) "hooks removed" true (l2.Net.Link.hooks = None)

let test_core_detects_congestion_under_load () =
  (* Drive the core link above capacity with a hand-made blaster that
     ignores feedback, and check congestion detection + feedback. *)
  let params = Corelite.Params.default in
  let engine, _, agent, core, feedback, (_, l2, _) = core_fixture ~params () in
  (* Install the flow's routes, then silence the cooperative source so
     only the blaster drives the link. Inject straight into the core
     link so the access link cannot shave the overload. *)
  Corelite.Edge.start agent;
  Corelite.Edge.stop agent;
  let seq = ref 0 in
  let blast =
    Sim.Engine.every engine ~period:(1. /. 700.) (fun () ->
        incr seq;
        (* One marker per packet, labelled at a high normalized rate. *)
        let pkt =
          Net.Packet.make ~id:!seq ~flow:1
            ~marker:(marker ~flow:1 700.)
            ~created:(Sim.Engine.now engine) ()
        in
        Net.Link.send l2 pkt)
  in
  Sim.Engine.run_until engine 10.;
  Sim.Engine.cancel blast;
  Alcotest.(check bool) "congestion detected" true
    (Corelite.Core.congested_epochs core > 0);
  Alcotest.(check bool) "qavg measured" true (Corelite.Core.last_qavg core > 0.);
  Alcotest.(check bool) "feedback emitted" true (List.length !feedback > 0);
  Alcotest.(check bool) "feedback counter matches" true
    (Corelite.Core.feedback_sent core = List.length !feedback)

(* A rebooted core must rebuild its view from zero: no feedback burst
   from stale selector entries or a stale queue average. *)
let test_core_reset_no_feedback_burst () =
  let params = Corelite.Params.default in
  let engine, _, agent, core, feedback, (_, l2, _) = core_fixture ~params () in
  Corelite.Edge.start agent;
  Corelite.Edge.stop agent;
  let seq = ref 0 in
  let blast =
    Sim.Engine.every engine ~period:(1. /. 700.) (fun () ->
        incr seq;
        let pkt =
          Net.Packet.make ~id:!seq ~flow:1
            ~marker:(marker ~flow:1 700.)
            ~created:(Sim.Engine.now engine) ()
        in
        Net.Link.send l2 pkt)
  in
  Sim.Engine.run_until engine 10.;
  Sim.Engine.cancel blast;
  Alcotest.(check bool) "was congested" true (List.length !feedback > 0);
  (* Reboot the router mid-run: RAM (queue) and soft state both go. *)
  Net.Link.reset l2;
  Corelite.Core.reset core;
  check_float "qavg wiped" 0. (Corelite.Core.last_qavg core);
  check_float "fn wiped" 0. (Corelite.Core.last_fn core);
  let after_reset = List.length !feedback in
  Sim.Engine.run_until engine 15.;
  (* Epochs keep ticking on an idle, rebuilt core: nothing to say. *)
  Alcotest.(check int) "no feedback burst" after_reset (List.length !feedback)

let test_edge_reset_restarts_adaptation () =
  let engine, _, agent, _ = edge_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 5.;
  let initial = (Corelite.Edge.params agent).Corelite.Params.source.Net.Source.initial_rate in
  Alcotest.(check bool) "rate adapted away from initial" true
    (Corelite.Edge.rate agent > initial);
  Corelite.Edge.reset agent;
  Alcotest.(check bool) "still running" true (Corelite.Edge.running agent);
  check_float "rate back to initial" initial (Corelite.Edge.rate agent);
  (* The restarted agent keeps sending. *)
  let sent = Corelite.Edge.sent agent in
  Sim.Engine.run_until engine 8.;
  Alcotest.(check bool) "emitting after reset" true (Corelite.Edge.sent agent > sent)

(* A stopped agent stays stopped across a reset (a rebooted edge router
   does not resurrect flows the application already closed). *)
let test_edge_reset_respects_stopped () =
  let engine, _, agent, _ = edge_fixture () in
  Corelite.Edge.start agent;
  Sim.Engine.run_until engine 2.;
  Corelite.Edge.stop agent;
  Corelite.Edge.reset agent;
  Alcotest.(check bool) "still stopped" false (Corelite.Edge.running agent);
  let sent = Corelite.Edge.sent agent in
  Sim.Engine.run_until engine 4.;
  Alcotest.(check int) "no packets after reset" sent (Corelite.Edge.sent agent)

(* ------------------------------------------------------------------ *)
(* End-to-end convergence *)

let converge_fixture ~selector ~weights n ~duration =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights n in
  let params = { Corelite.Params.default with Corelite.Params.selector } in
  let schedule = List.init n (fun i -> (0., Workload.Runner.Start (i + 1))) in
  Workload.Runner.run ~scheme:(Workload.Runner.Corelite params) ~network ~schedule
    ~duration ()

let test_converges_weighted_single_bottleneck () =
  let result =
    converge_fixture ~selector:Corelite.Params.Stateless
      ~weights:(fun i -> float_of_int i)
      3 ~duration:180.
  in
  (* Weights 1:2:3 over 500 pkt/s -> 83.3 / 166.7 / 250. Linear increase
     is 2 pkt/s per second, so the heaviest flow needs ~110 s to climb
     from the slow-start exit to 250. *)
  let m i = Workload.Runner.mean_rate result ~flow:i ~from:150. ~until:180. in
  check_float_eps 10. "flow 1" 83.3 (m 1);
  check_float_eps 15. "flow 2" 166.7 (m 2);
  check_float_eps 20. "flow 3" 250. (m 3);
  Alcotest.(check bool) "fair" true
    (Workload.Runner.jain result ~from:150. ~until:180. > 0.99)

let test_converges_with_cache_selector () =
  let result =
    converge_fixture ~selector:Corelite.Params.Cache
      ~weights:(fun i -> float_of_int i)
      3 ~duration:180.
  in
  Alcotest.(check bool) "cache selector fair" true
    (Workload.Runner.jain result ~from:150. ~until:180. > 0.95)

let test_no_drops_in_steady_state () =
  let result =
    converge_fixture ~selector:Corelite.Params.Stateless ~weights:(fun _ -> 1.) 4
      ~duration:60.
  in
  Alcotest.(check int) "no loss" 0 result.Workload.Runner.core_drops

let test_full_utilization () =
  let result =
    converge_fixture ~selector:Corelite.Params.Stateless ~weights:(fun _ -> 1.) 4
      ~duration:60.
  in
  let total =
    List.fold_left
      (fun acc (_, r) -> acc +. r)
      0.
      (Workload.Runner.mean_rates result ~from:40. ~until:60.)
  in
  Alcotest.(check bool) "at least 90% of capacity used" true (total > 450.);
  let goodput =
    List.fold_left
      (fun acc (_, ts) ->
        acc
        +. Option.value ~default:0. (Sim.Timeseries.window_mean ts ~from:40. ~until:60.))
      0. result.Workload.Runner.goodput_series
  in
  Alcotest.(check bool) "goodput bounded by capacity" true (goodput <= 510.)

let test_multihop_maxmin () =
  (* Parking lot: one long flow over two links, one cross flow per
     link; unweighted max-min gives everyone 250. *)
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n kind name = Net.Topology.add_node topology ~kind name in
  let e0 = n Net.Node.Edge "E0" and e1 = n Net.Node.Edge "E1" in
  let e2 = n Net.Node.Edge "E2" in
  let d0 = n Net.Node.Edge "D0" and d1 = n Net.Node.Edge "D1" in
  let d2 = n Net.Node.Edge "D2" in
  let c1 = n Net.Node.Core "C1" and c2 = n Net.Node.Core "C2" in
  let c3 = n Net.Node.Core "C3" in
  let link ~src ~dst =
    Net.Topology.add_link topology ~src ~dst ~bandwidth:4_000_000. ~delay:0.04
      ~qdisc:(Net.Qdisc.droptail ~capacity:40)
  in
  let l12 = link ~src:c1 ~dst:c2 in
  let l23 = link ~src:c2 ~dst:c3 in
  ignore (link ~src:e0 ~dst:c1);
  ignore (link ~src:e1 ~dst:c1);
  ignore (link ~src:e2 ~dst:c2);
  ignore (link ~src:c2 ~dst:d1);
  ignore (link ~src:c3 ~dst:d0);
  ignore (link ~src:c3 ~dst:d2);
  let flows =
    [
      Net.Flow.make ~id:1 ~weight:1. ~path:[ e0; c1; c2; c3; d0 ];
      Net.Flow.make ~id:2 ~weight:1. ~path:[ e1; c1; c2; d1 ];
      Net.Flow.make ~id:3 ~weight:1. ~path:[ e2; c2; c3; d2 ];
    ]
  in
  let network =
    { Workload.Network.engine; topology; flows; core_links = [ l12; l23 ] }
  in
  let schedule = List.init 3 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~schedule ~duration:200. ()
  in
  List.iter
    (fun i ->
      check_float_eps 40.
        (Printf.sprintf "flow %d near 250" i)
        250.
        (Workload.Runner.mean_rate result ~flow:i ~from:160. ~until:200.))
    [ 1; 2; 3 ]

let test_min_rate_contract_honored () =
  (* Flow 1 contracts 200 pkt/s among 4 equal-weight flows on 500:
     it must keep >= 200 while the rest share the remainder. *)
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 4 in
  let schedule = List.init 4 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~floors:[ (1, 200.) ] ~schedule ~duration:120. ()
  in
  let m i = Workload.Runner.mean_rate result ~flow:i ~from:90. ~until:120. in
  Alcotest.(check bool) "contract met" true (m 1 >= 195.);
  Alcotest.(check bool) "others squeezed but alive" true (m 2 > 50. && m 2 < 130.)

(* ------------------------------------------------------------------ *)
(* Invariant auditing *)

let test_invariants_hold_under_congestion () =
  (* Run a congested scenario for both selectors with every runtime
     check on: engine monotonicity, link conservation and the core
     feedback budgets must all hold (a Violation would fail the test),
     and the audit must actually have run. *)
  List.iter
    (fun selector ->
      let before = Sim.Invariant.checks_run () in
      let result =
        converge_fixture ~selector ~weights:(fun _ -> 1.) 4 ~duration:60.
      in
      Alcotest.(check bool) "scenario congested" true
        (result.Workload.Runner.feedback_markers > 0);
      Alcotest.(check bool) "audit ran" true (Sim.Invariant.checks_run () > before))
    [ Corelite.Params.Stateless; Corelite.Params.Cache ]

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "corelite"
    [
      ( "params",
        [
          Alcotest.test_case "marker spacing" `Quick test_marker_spacing;
          Alcotest.test_case "spacing bad weight" `Quick
            test_marker_spacing_rejects_bad_weight;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "zero below threshold" `Quick test_fn_zero_below_threshold;
          Alcotest.test_case "mm1 term" `Quick test_fn_mm1_term;
          Alcotest.test_case "cubic term" `Quick test_fn_cubic_term;
          Alcotest.test_case "mm1 arrival rate" `Quick test_fn_mm1_arrival_rate;
          Alcotest.test_case "cubic boundary" `Quick test_fn_cubic_boundary;
          Alcotest.test_case "clamps bad qavg (release)" `Quick
            test_budget_clamps_bad_qavg_when_released;
          Alcotest.test_case "raises on bad qavg (debug)" `Quick
            test_budget_raises_on_bad_qavg_in_debug;
          Alcotest.test_case "negative inputs" `Quick test_budget_rejects_negative_inputs;
          Alcotest.test_case "reset forgets smoothing" `Quick
            test_congestion_reset_forgets_smoothed_queue;
          qt prop_fn_monotone_in_qavg;
          qt prop_fn_nonnegative;
        ] );
      ( "cache_selector",
        [
          Alcotest.test_case "occupancy and wrap" `Quick test_cache_occupancy_and_wrap;
          Alcotest.test_case "empty select" `Quick test_cache_empty_select;
          Alcotest.test_case "select count" `Quick test_cache_select_count;
          Alcotest.test_case "proportional feedback" `Quick
            test_cache_proportional_feedback;
          Alcotest.test_case "bad args" `Quick test_cache_rejects_bad_args;
          Alcotest.test_case "clear empties" `Quick test_cache_clear_empties;
        ] );
      ( "stateless_selector",
        [
          Alcotest.test_case "idle without budget" `Quick test_stateless_idle_without_budget;
          Alcotest.test_case "rav tracks labels" `Quick test_stateless_rav_tracks_labels;
          Alcotest.test_case "pw arming" `Quick test_stateless_pw_arming;
          Alcotest.test_case "pw cap" `Quick test_stateless_pw_cap;
          Alcotest.test_case "selects only above average" `Quick
            test_stateless_selects_only_above_average;
          Alcotest.test_case "deficit swaps" `Quick test_stateless_deficit_swaps;
          Alcotest.test_case "deficit resets" `Quick test_stateless_deficit_resets_each_epoch;
          Alcotest.test_case "expected feedback rate" `Quick
            test_stateless_expected_feedback_rate;
          Alcotest.test_case "negative budget" `Quick test_stateless_rejects_negative_budget;
          Alcotest.test_case "reset clears state" `Quick test_stateless_reset_clears_state;
        ] );
      ( "edge",
        [
          Alcotest.test_case "marker cadence" `Quick test_edge_marker_cadence;
          Alcotest.test_case "marker rn" `Quick test_edge_marker_rn_is_normalized_rate;
          Alcotest.test_case "max not sum" `Quick test_edge_reacts_to_max_not_sum;
          Alcotest.test_case "feedback when stopped" `Quick
            test_edge_feedback_ignored_when_stopped;
          Alcotest.test_case "delivery counting" `Quick test_edge_delivery_counting;
          Alcotest.test_case "restart" `Quick test_edge_restart_after_stop;
          Alcotest.test_case "reset restarts adaptation" `Quick
            test_edge_reset_restarts_adaptation;
          Alcotest.test_case "reset respects stopped" `Quick
            test_edge_reset_respects_stopped;
        ] );
      ( "core",
        [
          Alcotest.test_case "attach rejects hooked" `Quick
            test_core_attach_rejects_hooked_link;
          Alcotest.test_case "counts markers" `Quick test_core_counts_markers;
          Alcotest.test_case "quiet without congestion" `Quick
            test_core_no_feedback_without_congestion;
          Alcotest.test_case "detach" `Quick test_core_detach_restores_link;
          Alcotest.test_case "detects congestion" `Quick
            test_core_detects_congestion_under_load;
          Alcotest.test_case "reset: no feedback burst" `Quick
            test_core_reset_no_feedback_burst;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "weighted single bottleneck" `Slow
            test_converges_weighted_single_bottleneck;
          Alcotest.test_case "cache selector" `Slow test_converges_with_cache_selector;
          Alcotest.test_case "no drops steady state" `Slow test_no_drops_in_steady_state;
          Alcotest.test_case "full utilization" `Slow test_full_utilization;
          Alcotest.test_case "multihop maxmin" `Slow test_multihop_maxmin;
          Alcotest.test_case "min-rate contract" `Slow test_min_rate_contract_honored;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "holds under congestion" `Slow
            test_invariants_hold_under_congestion;
        ] );
    ]
