(* Tests for the evaluation workload layer: Topology 1 construction,
   the experiment runner, figure specs, sweeps, and CSV export. *)

let check_float = Alcotest.(check (float 1e-9))

let ids n = List.init n (fun i -> i + 1)

(* ------------------------------------------------------------------ *)
(* Network builders *)

let test_topology1_structure () =
  let engine = Sim.Engine.create () in
  let net = Workload.Network.topology1 ~engine ~weights:(fun _ -> 1.) () in
  Alcotest.(check int) "20 flows" 20 (List.length net.Workload.Network.flows);
  Alcotest.(check int) "3 congested links" 3
    (List.length net.Workload.Network.core_links);
  (* 4 cores + 20 ingress + 20 egress edges. *)
  Alcotest.(check int) "44 nodes" 44
    (List.length (Net.Topology.nodes net.Workload.Network.topology));
  (* 3 core links + 40 access links. *)
  Alcotest.(check int) "43 links" 43
    (List.length (Net.Topology.links net.Workload.Network.topology))

let test_topology1_rtts () =
  (* One-way propagation: 3 hops = 120 ms (RTT 240), 4 hops = 160 ms
     (RTT 320), 5 hops = 200 ms (RTT 400) — the paper's RTT classes. *)
  let engine = Sim.Engine.create () in
  let net = Workload.Network.topology1 ~engine ~weights:(fun _ -> 1.) () in
  let one_way id =
    let flow = Workload.Network.flow net id in
    Net.Topology.path_delay net.Workload.Network.topology flow.Net.Flow.path
  in
  check_float "flow 1 (single link)" 0.12 (one_way 1);
  check_float "flow 11 (single link)" 0.12 (one_way 11);
  check_float "flow 16 (single link)" 0.12 (one_way 16);
  check_float "flow 6 (two links)" 0.16 (one_way 6);
  check_float "flow 13 (two links)" 0.16 (one_way 13);
  check_float "flow 9 (three links)" 0.2 (one_way 9)

let test_topology1_weights_applied () =
  let engine = Sim.Engine.create () in
  let net =
    Workload.Network.topology1 ~engine ~weights:Workload.Figures.weights_s41 ()
  in
  let w id = (Workload.Network.flow net id).Net.Flow.weight in
  check_float "flow 5" 3. (w 5);
  check_float "flow 15" 3. (w 15);
  check_float "flow 1" 1. (w 1);
  check_float "flow 2" 2. (w 2)

let test_topology1_subset () =
  let engine = Sim.Engine.create () in
  let net =
    Workload.Network.topology1 ~engine ~flow_ids:(ids 10)
      ~weights:Workload.Figures.weights_s42 ()
  in
  Alcotest.(check int) "10 flows" 10 (List.length net.Workload.Network.flows);
  Alcotest.check_raises "flow 11 absent" Not_found (fun () ->
      ignore (Workload.Network.flow net 11))

let test_expected_rates_phases () =
  let engine = Sim.Engine.create () in
  let net =
    Workload.Network.topology1 ~engine ~weights:Workload.Figures.weights_s41 ()
  in
  let all = ids 20 in
  let absent = [ 1; 9; 10; 11; 16 ] in
  let fifteen = List.filter (fun i -> not (List.mem i absent)) all in
  let at20 = Workload.Network.expected_rates net ~active:all in
  List.iter
    (fun i ->
      check_float
        (Printf.sprintf "flow %d @20" i)
        (25. *. Workload.Figures.weights_s41 i)
        (List.assoc i at20))
    all;
  let at15 = Workload.Network.expected_rates net ~active:fifteen in
  check_float "per-unit 33.33 @15" (500. /. 15. *. 2.) (List.assoc 2 at15)

let test_single_bottleneck_structure () =
  let engine = Sim.Engine.create () in
  let net = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 5 in
  Alcotest.(check int) "5 flows" 5 (List.length net.Workload.Network.flows);
  Alcotest.(check int) "one congested link" 1
    (List.length net.Workload.Network.core_links);
  Alcotest.check_raises "needs flows"
    (Invalid_argument "Network.single_bottleneck: need at least one flow") (fun () ->
      ignore (Workload.Network.single_bottleneck ~engine:(Sim.Engine.create ()) ~weights:(fun _ -> 1.) 0))

let test_link_capacities () =
  let engine = Sim.Engine.create () in
  let net = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 2 in
  List.iter
    (fun (_, c) -> check_float "500 pkt/s each" 500. c)
    (Workload.Network.link_capacities net)

let test_random_network_structure () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 7 in
  let flows = [ (1, 1.); (2, 2.); (3, 1.5) ] in
  let net = Workload.Network.random ~engine ~rng ~cores:5 ~extra_links:4 ~flows () in
  Alcotest.(check int) "3 flows" 3 (List.length net.Workload.Network.flows);
  (* Every flow's path is wired: consecutive nodes are linked, ingress
     and egress are edge nodes, intermediates are cores. *)
  List.iter
    (fun flow ->
      let path = flow.Net.Flow.path in
      Alcotest.(check bool) "path installs" true
        (List.length (Net.Topology.path_links net.Workload.Network.topology path) >= 2);
      Alcotest.(check bool) "ingress is edge" true (Net.Node.is_edge (Net.Flow.ingress flow));
      Alcotest.(check bool) "egress is edge" true (Net.Node.is_edge (Net.Flow.egress flow)))
    net.Workload.Network.flows;
  (* All links are policed in random networks. *)
  Alcotest.(check int) "core_links covers everything"
    (List.length (Net.Topology.links net.Workload.Network.topology))
    (List.length net.Workload.Network.core_links);
  Alcotest.check_raises "needs 2 cores"
    (Invalid_argument "Network.random: need at least two cores") (fun () ->
      ignore
        (Workload.Network.random ~engine:(Sim.Engine.create ()) ~rng ~cores:1
           ~extra_links:0 ~flows ()))

(* ------------------------------------------------------------------ *)
(* Runner *)

let small_run ?(scheme = Workload.Runner.Corelite Corelite.Params.default) ?(seed = 42)
    ?(duration = 30.) () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 3 in
  let schedule = List.init 3 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  Workload.Runner.run ~scheme ~network ~seed ~schedule ~duration ()

let test_runner_sampling_grid () =
  let result = small_run () in
  List.iter
    (fun (_, ts) -> Alcotest.(check int) "30 samples" 30 (Sim.Timeseries.length ts))
    result.Workload.Runner.rate_series;
  let times = Array.map fst (Sim.Timeseries.to_array (snd (List.hd result.Workload.Runner.rate_series))) in
  check_float "first sample at 1 s" 1. times.(0);
  check_float "last sample at 30 s" 30. times.(29)

let test_runner_cumulative_monotone () =
  let result = small_run () in
  List.iter
    (fun (_, ts) ->
      let last = ref neg_infinity in
      Sim.Timeseries.iter ts (fun _ v ->
          if v < !last then Alcotest.fail "cumulative series decreased";
          last := v))
    result.Workload.Runner.cumulative

let test_runner_deterministic () =
  let a = small_run ~seed:7 () in
  let b = small_run ~seed:7 () in
  List.iter2
    (fun (ida, tsa) (idb, tsb) ->
      Alcotest.(check int) "same flow" ida idb;
      Alcotest.(check bool) "identical series" true
        (Sim.Timeseries.to_array tsa = Sim.Timeseries.to_array tsb))
    a.Workload.Runner.rate_series b.Workload.Runner.rate_series

let test_runner_seed_changes_run () =
  (* Randomness only manifests once the bottleneck congests (selector
     draws, epoch offsets), so use enough flows to congest quickly. *)
  let congested_run seed =
    let engine = Sim.Engine.create () in
    let network =
      Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 8
    in
    let schedule = List.init 8 (fun i -> (0., Workload.Runner.Start (i + 1))) in
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~seed ~schedule ~duration:40. ()
  in
  let flat r =
    List.concat_map
      (fun (_, ts) -> Array.to_list (Sim.Timeseries.to_array ts))
      r.Workload.Runner.rate_series
  in
  Alcotest.(check bool) "different seeds differ" true
    (flat (congested_run 1) <> flat (congested_run 2))

let test_runner_stop_action () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 2 in
  let schedule =
    [
      (0., Workload.Runner.Start 1);
      (0., Workload.Runner.Start 2);
      (10., Workload.Runner.Stop 2);
    ]
  in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~schedule ~duration:20. ()
  in
  let rate2 = Workload.Runner.mean_rate result ~flow:2 ~from:15. ~until:20. in
  check_float "stopped flow samples zero" 0. rate2;
  Alcotest.(check bool) "flow 1 alive" true
    (Workload.Runner.mean_rate result ~flow:1 ~from:15. ~until:20. > 0.)

let test_runner_mean_rate_unknown_flow () =
  let result = small_run () in
  Alcotest.(check bool) "nan for unknown" true
    (Float.is_nan (Workload.Runner.mean_rate result ~flow:99 ~from:0. ~until:30.))

let test_scheme_names () =
  Alcotest.(check string) "corelite" "corelite"
    (Workload.Runner.scheme_name (Workload.Runner.Corelite Corelite.Params.default));
  Alcotest.(check string) "csfq" "csfq"
    (Workload.Runner.scheme_name (Workload.Runner.Csfq Csfq.Params.default))

(* ------------------------------------------------------------------ *)
(* Figures *)

let test_figures_all_present () =
  let specs = Workload.Figures.all () in
  Alcotest.(check (list string)) "ids"
    [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10" ]
    (List.map (fun s -> s.Workload.Figures.id) specs)

let test_figures_schemes () =
  let scheme_of id =
    let spec = List.find (fun s -> s.Workload.Figures.id = id) (Workload.Figures.all ()) in
    Workload.Runner.scheme_name spec.Workload.Figures.scheme
  in
  List.iter
    (fun id -> Alcotest.(check string) id "corelite" (scheme_of id))
    [ "fig3"; "fig4"; "fig5"; "fig7"; "fig9" ];
  List.iter
    (fun id -> Alcotest.(check string) id "csfq" (scheme_of id))
    [ "fig6"; "fig8"; "fig10" ]

let test_figures_schedules_within_duration () =
  List.iter
    (fun spec ->
      List.iter
        (fun (t, _) ->
          if t < 0. || t > spec.Workload.Figures.duration then
            Alcotest.fail
              (Printf.sprintf "%s: event at %.1f outside run" spec.Workload.Figures.id t))
        spec.Workload.Figures.schedule;
      List.iter
        (fun p ->
          if
            p.Workload.Figures.from_t >= p.Workload.Figures.until_t
            || p.Workload.Figures.until_t > spec.Workload.Figures.duration
          then Alcotest.fail (spec.Workload.Figures.id ^ ": bad phase window"))
        spec.Workload.Figures.phases)
    (Workload.Figures.all ())

let test_figures_weights_match_paper () =
  (* Section 4.1: flows 5, 15 -> 3; 1, 11, 16 -> 1; rest 2. *)
  check_float "s41 flow 5" 3. (Workload.Figures.weights_s41 5);
  check_float "s41 flow 10" 2. (Workload.Figures.weights_s41 10);
  check_float "s41 flow 16" 1. (Workload.Figures.weights_s41 16);
  (* Section 4.3 adds flow 10 -> 3. *)
  check_float "s43 flow 10" 3. (Workload.Figures.weights_s43 10);
  (* Section 4.2: ceil(i/2). *)
  check_float "s42 flow 1" 1. (Workload.Figures.weights_s42 1);
  check_float "s42 flow 2" 1. (Workload.Figures.weights_s42 2);
  check_float "s42 flow 9" 5. (Workload.Figures.weights_s42 9);
  check_float "s42 flow 10" 5. (Workload.Figures.weights_s42 10)

let test_fig9_schedule_churn () =
  let spec = Workload.Figures.fig9 () in
  (* Flow i: start at i, stop at i+60, restart at i+65. *)
  let events_of i =
    List.filter_map
      (fun (t, a) ->
        match a with
        | Workload.Runner.Start f when f = i -> Some ("start", t)
        | Workload.Runner.Stop f when f = i -> Some ("stop", t)
        | _ -> None)
      spec.Workload.Figures.schedule
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "flow 7 lifecycle"
    [ ("start", 7.); ("stop", 67.); ("start", 72.) ]
    (events_of 7)

let test_summarize_short_run () =
  (* A miniature spec keeps the test fast while exercising the whole
     summarize pipeline. *)
  let spec = Workload.Figures.fig5 () in
  let spec = { spec with Workload.Figures.duration = 30. } in
  let spec =
    {
      spec with
      Workload.Figures.phases =
        [
          {
            Workload.Figures.label = "early";
            from_t = 20.;
            until_t = 30.;
            active = ids 10;
          };
        ];
    }
  in
  let result = Workload.Figures.run spec in
  let summary = Workload.Figures.summarize spec result in
  Alcotest.(check int) "one phase" 1
    (List.length summary.Workload.Figures.phase_summaries);
  let ps = List.hd summary.Workload.Figures.phase_summaries in
  Alcotest.(check int) "10 rows" 10 (List.length ps.Workload.Figures.rows);
  Alcotest.(check bool) "jain in (0,1]" true
    (ps.Workload.Figures.jain > 0. && ps.Workload.Figures.jain <= 1.);
  (* pp_summary renders without raising. *)
  Workload.Figures.pp_summary (Format.make_formatter (fun _ _ _ -> ()) ignore) summary

(* ------------------------------------------------------------------ *)
(* Sweeps *)

let test_sweep_point_runs () =
  let p = Workload.Sweeps.run_point ~label:"base" Corelite.Params.default in
  Alcotest.(check string) "label" "base" p.Workload.Sweeps.label;
  Alcotest.(check bool) "fair" true (p.Workload.Sweeps.jain > 0.98);
  Alcotest.(check bool) "error bounded" true (p.Workload.Sweeps.mean_error < 0.2)

let test_sweep_latency_override () =
  let p =
    Workload.Sweeps.run_point ~delay:0.002 ~label:"lowlat" Corelite.Params.default
  in
  Alcotest.(check bool) "still fair at 2 ms" true (p.Workload.Sweeps.jain > 0.98)

(* ------------------------------------------------------------------ *)
(* Blaster *)

let test_blaster_paces_and_counts () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  let blaster = Workload.Blaster.attach ~network ~flow:1 ~rate:100. () in
  Sim.Engine.run_until engine 10.;
  Alcotest.(check bool) "sent ~1000" true (abs (Workload.Blaster.sent blaster - 1000) <= 2);
  Workload.Blaster.stop blaster;
  let frozen = Workload.Blaster.sent blaster in
  (* Drain the ~12 packets still in flight (120 ms path at 100 pkt/s),
     then everything must have arrived. *)
  Sim.Engine.run_until engine 11.;
  check_float "all survive" 1. (Workload.Blaster.survival blaster);
  Sim.Engine.run_until engine 20.;
  Alcotest.(check int) "stopped" frozen (Workload.Blaster.sent blaster)

let test_blaster_overdrive_is_clipped () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  let blaster = Workload.Blaster.attach ~network ~flow:1 ~rate:800. () in
  Sim.Engine.run_until engine 20.;
  (* 800 offered on a 500 link: survival ~ 5/8. *)
  Alcotest.(check bool) "clipped to capacity" true
    (Float.abs (Workload.Blaster.survival blaster -. 0.625) < 0.05);
  Alcotest.check_raises "bad rate" (Invalid_argument "Blaster.attach: rate must be positive")
    (fun () -> ignore (Workload.Blaster.attach ~network ~flow:1 ~rate:0. ()))

(* ------------------------------------------------------------------ *)
(* Scenario files *)

let demo_scenario =
  {|
# demo
topology chain cores=3 bandwidth=4000000 delay=0.01 queue=40
scheme corelite
seed 5
duration 60

flow 1 weight 1 from 1 to 3
flow 2 weight 2 from 1 to 3 floor 10

start 1 at 0
start 2 at 5
stop 1 at 50
|}

let test_scenario_parse_ok () =
  match Workload.Scenario_file.parse demo_scenario with
  | Error message -> Alcotest.fail message
  | Ok s ->
    Alcotest.(check int) "cores" 3 s.Workload.Scenario_file.cores;
    check_float "duration" 60. s.Workload.Scenario_file.duration;
    Alcotest.(check int) "seed" 5 s.Workload.Scenario_file.seed;
    Alcotest.(check int) "two flows" 2 (List.length s.Workload.Scenario_file.flows);
    Alcotest.(check int) "three events" 3 (List.length s.Workload.Scenario_file.schedule);
    check_float "floor" 10. (List.assoc 2 s.Workload.Scenario_file.floors);
    Alcotest.(check string) "scheme" "corelite"
      (Workload.Runner.scheme_name s.Workload.Scenario_file.scheme)

let test_scenario_runs () =
  match Workload.Scenario_file.parse demo_scenario with
  | Error message -> Alcotest.fail message
  | Ok s ->
    let result = Workload.Scenario_file.run s in
    (* Flow 1 stopped at 50; flow 2 alive. *)
    check_float "flow 1 stopped" 0.
      (Workload.Runner.mean_rate result ~flow:1 ~from:55. ~until:60.);
    Alcotest.(check bool) "flow 2 running" true
      (Workload.Runner.mean_rate result ~flow:2 ~from:55. ~until:60. > 0.)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let expect_parse_error fragment text =
  match Workload.Scenario_file.parse text with
  | Ok _ -> Alcotest.fail ("parsed but expected error mentioning " ^ fragment)
  | Error message ->
    if not (contains ~needle:fragment message) then
      Alcotest.fail (Printf.sprintf "error %S does not mention %S" message fragment)

let test_scenario_parse_errors () =
  expect_parse_error "missing 'topology'"
    {|duration 10
flow 1 weight 1 from 1 to 2
start 1 at 0|};
  expect_parse_error "unknown directive"
    {|topology chain cores=2
frobnicate
duration 1
flow 1 weight 1 from 1 to 2
start 1 at 0|};
  expect_parse_error "duplicate flow"
    {|topology chain cores=2
duration 1
flow 1 weight 1 from 1 to 2
flow 1 weight 2 from 1 to 2
start 1 at 0|};
  expect_parse_error "outside"
    {|topology chain cores=2
duration 1
flow 1 weight 1 from 1 to 5
start 1 at 0|};
  expect_parse_error "undefined flow"
    {|topology chain cores=2
duration 1
flow 1 weight 1 from 1 to 2
start 9 at 0|};
  expect_parse_error "missing 'duration'"
    {|topology chain cores=2
flow 1 weight 1 from 1 to 2
start 1 at 0|};
  expect_parse_error "no start"
    {|topology chain cores=2
duration 1
flow 1 weight 1 from 1 to 2|};
  expect_parse_error "unknown scheme"
    {|topology chain cores=2
scheme bogus
duration 1
flow 1 weight 1 from 1 to 2
start 1 at 0|};
  expect_parse_error "expected a number"
    {|topology chain cores=2
duration abc
flow 1 weight 1 from 1 to 2
start 1 at 0|}

let scenario_gen =
  QCheck.Gen.(
    let* cores = 2 -- 5 in
    let* n_flows = 1 -- 6 in
    let* flows =
      List.init n_flows (fun i -> i + 1)
      |> List.map (fun id ->
             let* weight = 1 -- 4 in
             let* entry = 1 -- cores in
             let* exit = entry -- cores in
             let* floor = 0 -- 30 in
             return (id, float_of_int weight, entry, exit, float_of_int floor))
      |> flatten_l
    in
    let* duration = 10 -- 300 in
    let* seed = 0 -- 1000 in
    return (cores, flows, float_of_int duration, seed))

let prop_scenario_roundtrip =
  QCheck.Test.make ~name:"scenario file round-trips through to_string/parse" ~count:100
    (QCheck.make scenario_gen)
    (fun (cores, flows, duration, seed) ->
      let t =
        {
          Workload.Scenario_file.scheme = Workload.Runner.Corelite Corelite.Params.default;
          cores;
          bandwidth = 4e6;
          delay = 0.04;
          queue_capacity = 40;
          flows = List.map (fun (id, w, en, ex, _) -> (id, w, en, ex)) flows;
          floors = List.filter_map (fun (id, _, _, _, f) -> if f > 0. then Some (id, f) else None) flows;
          schedule =
            List.map (fun (id, _, _, _, _) -> (1., Workload.Runner.Start id)) flows;
          duration;
          seed;
        }
      in
      match Workload.Scenario_file.parse (Workload.Scenario_file.to_string t) with
      | Error message -> QCheck.Test.fail_report message
      | Ok parsed ->
        parsed.Workload.Scenario_file.cores = t.Workload.Scenario_file.cores
        && parsed.Workload.Scenario_file.flows = t.Workload.Scenario_file.flows
        && List.sort compare parsed.Workload.Scenario_file.floors
           = List.sort compare t.Workload.Scenario_file.floors
        && parsed.Workload.Scenario_file.schedule = t.Workload.Scenario_file.schedule
        && parsed.Workload.Scenario_file.duration = t.Workload.Scenario_file.duration
        && parsed.Workload.Scenario_file.seed = t.Workload.Scenario_file.seed)

(* ------------------------------------------------------------------ *)
(* Replication *)

let test_replicate_summary_stats () =
  let stats = Workload.Replication.replicate ~seeds:[ 1; 2; 3; 4 ] float_of_int in
  check_float "mean" 2.5 stats.Workload.Replication.mean;
  check_float "min" 1. stats.Workload.Replication.min;
  check_float "max" 4. stats.Workload.Replication.max;
  Alcotest.(check int) "runs" 4 stats.Workload.Replication.runs;
  Alcotest.(check bool) "stddev > 0" true (stats.Workload.Replication.stddev > 1.);
  Alcotest.check_raises "no seeds" (Invalid_argument "Replication.replicate: no seeds")
    (fun () -> ignore (Workload.Replication.replicate ~seeds:[] float_of_int))

let test_replicate_single_run () =
  let stats = Workload.Replication.replicate ~seeds:[ 9 ] (fun _ -> 7.5) in
  check_float "mean is the value" 7.5 stats.Workload.Replication.mean;
  check_float "no spread" 0. stats.Workload.Replication.stddev

let test_replicate_figure_stable () =
  (* A short fig5 cut: the jain spread across seeds must be small. *)
  let spec = Workload.Figures.fig5 () in
  let spec = { spec with Workload.Figures.duration = 40. } in
  let spec =
    {
      spec with
      Workload.Figures.phases =
        [
          {
            Workload.Figures.label = "tail";
            from_t = 30.;
            until_t = 40.;
            active = ids 10;
          };
        ];
    }
  in
  let stats = Workload.Replication.replicate_figure ~seeds:[ 1; 2; 3 ] spec in
  Alcotest.(check int) "three runs" 3 stats.Workload.Replication.jain.Workload.Replication.runs;
  Alcotest.(check bool) "jain high across seeds" true
    (stats.Workload.Replication.jain.Workload.Replication.min > 0.95);
  Alcotest.(check bool) "jain spread small" true
    (stats.Workload.Replication.jain.Workload.Replication.stddev < 0.02)

(* ------------------------------------------------------------------ *)
(* Csv *)

let test_csv_roundtrip_shape () =
  let result = small_run ~duration:5. () in
  let dir = Filename.temp_file "corelite" "" in
  Sys.remove dir;
  Workload.Csv.write_result ~dir ~prefix:"smoke" result;
  let path = Filename.concat dir "smoke_rates.csv" in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "header + 5 samples" 6 (List.length lines);
  Alcotest.(check string) "header" "time,flow1,flow2,flow3" (List.hd lines);
  List.iter
    (fun f -> Sys.remove (Filename.concat dir ("smoke_" ^ f ^ ".csv")))
    [ "rates"; "goodput"; "cumulative" ];
  Sys.rmdir dir

(* RFC 4180 quoting: metrics help strings carry commas, and scenario
   labels could carry anything — a naive join silently shears the
   columns. These pin the quoting rules and the parse round-trip. *)
let test_csv_field_quoting () =
  Alcotest.(check string) "plain passes through" "abc" (Workload.Csv.field "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Workload.Csv.field "a,b");
  Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
    (Workload.Csv.field "say \"hi\"");
  Alcotest.(check string) "newline quoted" "\"two\nlines\""
    (Workload.Csv.field "two\nlines");
  Alcotest.(check string) "row joins quoted fields" "x,\"a,b\",z"
    (Workload.Csv.row [ "x"; "a,b"; "z" ])

let test_csv_parse_roundtrip () =
  let rows =
    [
      [ "name"; "kind"; "value"; "help" ];
      [ "with,comma"; "quote\"inside"; "multi\nline"; "" ];
      [ "plain"; "1.5"; "trailing"; "last" ];
    ]
  in
  let text =
    String.concat "" (List.map (fun r -> Workload.Csv.row r ^ "\n") rows)
  in
  Alcotest.(check (list (list string))) "parse inverts row" rows
    (Workload.Csv.parse text);
  (* CRLF line ends and a missing trailing newline both parse. *)
  Alcotest.(check (list (list string))) "crlf" [ [ "a"; "b" ]; [ "c"; "d" ] ]
    (Workload.Csv.parse "a,b\r\nc,d");
  Alcotest.check_raises "unterminated quote"
    (Invalid_argument "Csv.parse: unterminated quoted field") (fun () ->
      ignore (Workload.Csv.parse "a,\"oops"))

let prop_csv_row_roundtrips =
  QCheck.Test.make ~name:"row/parse round-trips arbitrary fields" ~count:300
    QCheck.(list_of_size Gen.(1 -- 8) (string_gen_of_size Gen.(0 -- 12) Gen.printable))
    (fun fields ->
      (* A sole empty field renders as an empty line, which CSV cannot
         distinguish from no row at all. *)
      QCheck.assume (fields <> [ "" ]);
      Workload.Csv.parse (Workload.Csv.row fields ^ "\n") = [ fields ])

let test_csv_of_metrics_roundtrip () =
  let m = Sim.Metrics.create () in
  let c = Sim.Metrics.counter ~help:"arrivals, including dropped ones" m "arrivals" in
  Sim.Metrics.add c 41;
  Sim.Metrics.probe ~help:"queue depth \"now\"" m "queue" (fun () -> 3.5);
  let csv = Workload.Csv.of_metrics m in
  match Workload.Csv.parse csv with
  | [ header; r1; r2 ] ->
    Alcotest.(check (list string)) "header" [ "name"; "kind"; "value"; "help" ] header;
    Alcotest.(check (list string)) "comma-bearing help survives"
      [ "arrivals"; "counter"; "41.0"; "arrivals, including dropped ones" ]
      r1;
    Alcotest.(check (list string)) "quote-bearing help survives"
      [ "queue"; "probe"; "3.5"; "queue depth \"now\"" ]
      r2
  | rows ->
    Alcotest.failf "expected header + 2 rows, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Arrivals: the churn battery's open-loop workload generator *)

let churn_profile =
  {
    Workload.Arrivals.default with
    Workload.Arrivals.rate = 1.;
    diurnal = Some { Workload.Arrivals.period = 40.; depth = 0.5 };
    flash = Some { Workload.Arrivals.at = 5.; duration = 2.; boost = 4. };
  }

let plan_fingerprint flows =
  String.concat ";"
    (List.map
       (fun (f : Workload.Arrivals.flow) ->
         Printf.sprintf "%d@%.17g:%d:%g:%s" f.Workload.Arrivals.id
           f.Workload.Arrivals.arrival f.Workload.Arrivals.size
           f.Workload.Arrivals.weight
           (match f.Workload.Arrivals.kind with
           | Workload.Arrivals.Elastic -> "e"
           | Workload.Arrivals.Onoff _ -> "o"))
       flows)

let test_arrivals_deterministic () =
  let plan ?(seed = 42) ?(label = "churn") () =
    plan_fingerprint
      (Workload.Arrivals.generate ~seed ~label ~profile:churn_profile ~horizon:60. ())
  in
  Alcotest.(check string) "same (seed, label) replays" (plan ()) (plan ());
  Alcotest.(check bool) "seed perturbs the plan" true (plan () <> plan ~seed:43 ());
  Alcotest.(check bool) "label perturbs the plan" true
    (plan () <> plan ~label:"other" ())

let test_arrivals_plan_shape () =
  let flows =
    Workload.Arrivals.generate ~seed:42 ~label:"shape" ~profile:churn_profile
      ~horizon:120. ~first_id:10 ()
  in
  Alcotest.(check bool) "a 2-minute plan at ~1/s is non-trivial" true
    (List.length flows > 30);
  List.iteri
    (fun i (f : Workload.Arrivals.flow) ->
      Alcotest.(check int) "ids consecutive from first_id" (10 + i)
        f.Workload.Arrivals.id;
      if f.Workload.Arrivals.arrival < 0. || f.Workload.Arrivals.arrival >= 120. then
        Alcotest.failf "arrival %g outside [0, horizon)" f.Workload.Arrivals.arrival;
      Alcotest.(check bool) "size clamped" true
        (f.Workload.Arrivals.size >= churn_profile.Workload.Arrivals.min_size);
      Alcotest.(check bool) "weight from the profile set" true
        (Array.exists
           (fun w -> w = f.Workload.Arrivals.weight)
           churn_profile.Workload.Arrivals.weights))
    flows;
  let sorted = List.sort compare (List.map (fun f -> f.Workload.Arrivals.arrival) flows) in
  Alcotest.(check (list (float 0.))) "arrival order"
    (List.map (fun f -> f.Workload.Arrivals.arrival) flows)
    sorted

let test_arrivals_validate_boundaries () =
  let rejects what mutate =
    Alcotest.check_raises what (Invalid_argument ("Arrivals: " ^ what)) (fun () ->
        Workload.Arrivals.validate (mutate Workload.Arrivals.default))
  in
  rejects "rate must be positive and finite" (fun p ->
      { p with Workload.Arrivals.rate = 0. });
  rejects "mean_size must be at least 1" (fun p ->
      { p with Workload.Arrivals.mean_size = Float.nan });
  rejects "size_shape must exceed 1 (finite mean)" (fun p ->
      { p with Workload.Arrivals.size_shape = 1. });
  rejects "min_size must be positive" (fun p ->
      { p with Workload.Arrivals.min_size = 0 });
  rejects "weights must be nonempty" (fun p ->
      { p with Workload.Arrivals.weights = [||] });
  rejects "weights must be positive and finite" (fun p ->
      { p with Workload.Arrivals.weights = [| 1.; -2. |] });
  rejects "onoff_fraction must lie in [0, 1]" (fun p ->
      { p with Workload.Arrivals.onoff_fraction = 1.5 });
  rejects "diurnal depth must lie in [0, 1)" (fun p ->
      {
        p with
        Workload.Arrivals.diurnal = Some { Workload.Arrivals.period = 10.; depth = 1. };
      });
  rejects "flash boost must be at least 1" (fun p ->
      {
        p with
        Workload.Arrivals.flash =
          Some { Workload.Arrivals.at = 0.; duration = 1.; boost = 0.5 };
      });
  Alcotest.check_raises "horizon"
    (Invalid_argument "Arrivals: horizon must be positive and finite") (fun () ->
      ignore
        (Workload.Arrivals.generate ~seed:1 ~label:"x"
           ~profile:Workload.Arrivals.default ~horizon:0. ()))

let test_arrivals_rate_at () =
  (* Sinusoid peaks a quarter period in (sin = 1), troughs at three
     quarters; the flash multiplies inside [at, at + duration) only. *)
  check_float "diurnal peak" 1.5 (Workload.Arrivals.rate_at churn_profile 10.);
  check_float "diurnal trough" 0.5 (Workload.Arrivals.rate_at churn_profile 30.);
  check_float "flash boost at t=6 (sin small)"
    (4. *. (1. +. (0.5 *. sin (2. *. Float.pi *. 6. /. 40.))))
    (Workload.Arrivals.rate_at churn_profile 6.);
  check_float "flash over at t=7"
    (1. +. (0.5 *. sin (2. *. Float.pi *. 7. /. 40.)))
    (Workload.Arrivals.rate_at churn_profile 7.);
  check_float "thinning envelope" 6. (Workload.Arrivals.peak_rate churn_profile);
  check_float "offered load = rate * mean_size"
    (1. *. Workload.Arrivals.default.Workload.Arrivals.mean_size)
    (Workload.Arrivals.offered_load churn_profile)

(* ------------------------------------------------------------------ *)
(* Adversary: the CLEF-style heavy hitter *)

let adversary_network () =
  let engine = Sim.Engine.create () in
  (engine, Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1)

let test_adversary_attach_validation () =
  let _, network = adversary_network () in
  let rejects what msg ~peak ~duty ~period =
    Alcotest.check_raises what (Invalid_argument ("Adversary.attach: " ^ msg))
      (fun () ->
        ignore (Workload.Adversary.attach ~network ~flow:1 ~peak ~duty ~period ()))
  in
  rejects "zero peak" "peak must be positive" ~peak:0. ~duty:0.2 ~period:2.;
  rejects "nan peak" "peak must be positive" ~peak:Float.nan ~duty:0.2 ~period:2.;
  rejects "zero duty" "duty must lie in (0, 1]" ~peak:100. ~duty:0. ~period:2.;
  rejects "duty above 1" "duty must lie in (0, 1]" ~peak:100. ~duty:1.5 ~period:2.;
  rejects "negative period" "period must be positive" ~peak:100. ~duty:0.5 ~period:(-1.);
  rejects "infinite period" "period must be positive" ~peak:100. ~duty:0.5
    ~period:Float.infinity

let test_adversary_bursts_below_average () =
  let engine, network = adversary_network () in
  let adv =
    Workload.Adversary.attach ~network ~flow:1 ~peak:400. ~duty:0.25 ~period:2. ()
  in
  check_float "average = peak * duty" 100. (Workload.Adversary.average_rate adv);
  check_float "peak accessor" 400. (Workload.Adversary.peak_rate adv);
  Sim.Engine.run_until engine 20.;
  Workload.Adversary.stop adv;
  let sent_while_on = Workload.Adversary.sent adv in
  Alcotest.(check bool)
    (Printf.sprintf "sent ~avg * horizon (%d)" sent_while_on)
    true
    (sent_while_on > 1600 && sent_while_on < 2400);
  Alcotest.(check bool) "uncongested path delivers" true
    (Workload.Adversary.delivered adv > 0);
  Sim.Engine.run_until engine 25.;
  Alcotest.(check int) "silent after stop" sent_while_on
    (Workload.Adversary.sent adv)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "workload"
    [
      ( "network",
        [
          Alcotest.test_case "topology1 structure" `Quick test_topology1_structure;
          Alcotest.test_case "topology1 rtts" `Quick test_topology1_rtts;
          Alcotest.test_case "weights applied" `Quick test_topology1_weights_applied;
          Alcotest.test_case "flow subset" `Quick test_topology1_subset;
          Alcotest.test_case "expected rates phases" `Quick test_expected_rates_phases;
          Alcotest.test_case "single bottleneck" `Quick test_single_bottleneck_structure;
          Alcotest.test_case "link capacities" `Quick test_link_capacities;
          Alcotest.test_case "random network structure" `Quick
            test_random_network_structure;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sampling grid" `Quick test_runner_sampling_grid;
          Alcotest.test_case "cumulative monotone" `Quick test_runner_cumulative_monotone;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_runner_seed_changes_run;
          Alcotest.test_case "stop action" `Quick test_runner_stop_action;
          Alcotest.test_case "unknown flow nan" `Quick test_runner_mean_rate_unknown_flow;
          Alcotest.test_case "scheme names" `Quick test_scheme_names;
        ] );
      ( "figures",
        [
          Alcotest.test_case "all present" `Quick test_figures_all_present;
          Alcotest.test_case "schemes" `Quick test_figures_schemes;
          Alcotest.test_case "schedules within duration" `Quick
            test_figures_schedules_within_duration;
          Alcotest.test_case "weights match paper" `Quick test_figures_weights_match_paper;
          Alcotest.test_case "fig9 churn schedule" `Quick test_fig9_schedule_churn;
          Alcotest.test_case "summarize pipeline" `Slow test_summarize_short_run;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "run point" `Slow test_sweep_point_runs;
          Alcotest.test_case "latency override" `Slow test_sweep_latency_override;
        ] );
      ( "blaster",
        [
          Alcotest.test_case "paces and counts" `Quick test_blaster_paces_and_counts;
          Alcotest.test_case "overdrive clipped" `Quick test_blaster_overdrive_is_clipped;
        ] );
      ( "scenario_file",
        [
          Alcotest.test_case "parse ok" `Quick test_scenario_parse_ok;
          Alcotest.test_case "runs" `Quick test_scenario_runs;
          Alcotest.test_case "parse errors" `Quick test_scenario_parse_errors;
          QCheck_alcotest.to_alcotest prop_scenario_roundtrip;
        ] );
      ( "replication",
        [
          Alcotest.test_case "summary stats" `Quick test_replicate_summary_stats;
          Alcotest.test_case "single run" `Quick test_replicate_single_run;
          Alcotest.test_case "figure stable" `Slow test_replicate_figure_stable;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "deterministic from (seed, label)" `Quick
            test_arrivals_deterministic;
          Alcotest.test_case "plan shape" `Quick test_arrivals_plan_shape;
          Alcotest.test_case "validate boundaries" `Quick
            test_arrivals_validate_boundaries;
          Alcotest.test_case "rate_at diurnal and flash" `Quick test_arrivals_rate_at;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "attach validation" `Quick test_adversary_attach_validation;
          Alcotest.test_case "bursts under a smooth average" `Quick
            test_adversary_bursts_below_average;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip shape" `Quick test_csv_roundtrip_shape;
          Alcotest.test_case "field quoting" `Quick test_csv_field_quoting;
          Alcotest.test_case "parse roundtrip" `Quick test_csv_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_csv_row_roundtrips;
          Alcotest.test_case "of_metrics roundtrip" `Quick
            test_csv_of_metrics_roundtrip;
        ] );
    ]
