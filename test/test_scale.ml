(* Scale regression suite: end-to-end fairness on a generated fat-tree
   at 10^4 flows, serial-vs-pooled byte equality of the streaming
   harness, Sim.Invariant ledger balance across the scale lifecycle,
   and edge cases of the flat-array flow table that replaced the
   per-flow Hashtbls (id reuse after expiry, growth past capacity,
   engine reset isolation). *)

let quick_run ~engine ~label ?(n_flows = 200) ?(duration = 4.) ?end_fraction () =
  Workload.Scale.run ~engine ~seed:42 ~label ~graph:(Workload.Scale.Fattree 4)
    ~n_flows ~scheme:Workload.Scale.Corelite ~duration ?end_fraction ~csv:true ()

(* ---- fairness at scale: fat-tree k=8, 10^4 flows ---- *)

(* The ISSUE gate: a quick k=8 run whose measured rates track the
   weighted max-min water-filling reference at Jain >= 0.9. 12 s of
   simulated time is enough for the gentle scale adaptation steps to
   settle near shares of a few pkt/s. *)
let test_fattree_k8_fairness () =
  let engine = Sim.Engine.create () in
  let r =
    Workload.Scale.run ~engine ~seed:42 ~label:"scale/k8-fairness"
      ~graph:(Workload.Scale.Fattree 8) ~n_flows:10_000
      ~scheme:Workload.Scale.Corelite ~duration:12. ~reference:true ()
  in
  Alcotest.(check int) "population instantiated" 10_000 r.Workload.Scale.n_flows;
  Alcotest.(check int) "all flows alive until the drain" 10_000 r.live_at_end;
  Alcotest.(check bool)
    (Printf.sprintf "substantial traffic (delivered %d)" r.delivered)
    true (r.delivered > 100_000);
  (match r.jain_vs_reference with
  | None -> Alcotest.fail "reference requested but not computed"
  | Some jain ->
    if jain < 0.9 then
      Alcotest.failf "Jain vs water-filling %.4f < 0.9 (weighted %.4f)" jain
        r.jain_weighted);
  (* An oversubscribed fat-tree must actually congest: a drop-free run
     means the reference comparison validated nothing. *)
  Alcotest.(check bool)
    (Printf.sprintf "bottlenecks engaged (drops %d)" r.drops)
    true (r.drops > 0)

(* ---- serial = pooled ---- *)

let test_serial_equals_pooled () =
  let scenarios =
    List.map
      (fun tag ->
        {
          Workload.Pool.label = "scale/" ^ tag;
          scenario =
            (fun ~engine ~rng:_ ->
              let r = quick_run ~engine ~label:("scale/" ^ tag) () in
              match r.Workload.Scale.csv with
              | Some csv -> csv
              | None -> Alcotest.fail "csv requested but not produced");
        })
      [ "a"; "b"; "c" ]
  in
  let serial = Workload.Pool.run_scenarios ~domains:1 ~seed:42 scenarios in
  let pooled = Workload.Pool.run_scenarios ~domains:3 ~seed:42 scenarios in
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check string)
        (Printf.sprintf "scenario %d exports byte-identical CSV" i)
        s p)
    (List.combine serial pooled)

(* ---- Sim.Invariant flow ledger ---- *)

let test_ledger_balances () =
  let created0 = Sim.Invariant.flows_created () in
  let retired0 = Sim.Invariant.flows_retired () in
  let expired0 = Sim.Invariant.flows_expired () in
  let engine = Sim.Engine.create () in
  let r = quick_run ~engine ~label:"scale/ledger" ~n_flows:300 ~end_fraction:0.2 () in
  Alcotest.(check int) "60 flows retired early" 60 r.Workload.Scale.ended_early;
  Alcotest.(check int) "240 flows live at the end" 240 r.live_at_end;
  Alcotest.(check int)
    "every flow was declared to the ledger" 300
    (Sim.Invariant.flows_created () - created0);
  Alcotest.(check int)
    "every flow was retired (early enders + the drain)" 300
    (Sim.Invariant.flows_retired () - retired0);
  Alcotest.(check int)
    "no flow expired" 0
    (Sim.Invariant.flows_expired () - expired0)

(* ---- flat flow table edge cases ---- *)

let test_flowtable_growth () =
  let t : int Net.Flowtable.t = Net.Flowtable.create ~capacity:4 () in
  for id = 1 to 200 do
    Net.Flowtable.add t id (id * 10)
  done;
  Alcotest.(check int) "live" 200 (Net.Flowtable.live t);
  Alcotest.(check bool) "capacity grew past 200" true (Net.Flowtable.capacity t > 200);
  Alcotest.(check (option int)) "dense lookup" (Some 1370) (Net.Flowtable.find t 137);
  Alcotest.(check (option int)) "absent id" None (Net.Flowtable.find t 500);
  (* Ascending-id iteration is the replay-determinism contract. *)
  let seen = ref [] in
  Net.Flowtable.iter t (fun id _ -> seen := id :: !seen);
  Alcotest.(check (list int)) "iteration ascending" (List.init 200 (fun i -> i + 1))
    (List.rev !seen);
  Net.Flowtable.remove t 137;
  Net.Flowtable.remove t 137;
  Alcotest.(check int) "remove is idempotent" 199 (Net.Flowtable.live t);
  Alcotest.check_raises "duplicate add rejected"
    (Invalid_argument "Flowtable.add: duplicate flow 1") (fun () ->
      Net.Flowtable.add t 1 0);
  Net.Flowtable.clear t;
  Alcotest.(check int) "clear empties" 0 (Net.Flowtable.live t)

(* A retired slot must be reusable: churn recycles flow ids, and the
   dense table must treat expiry exactly like the Hashtbls did. *)
let test_flow_id_reuse_after_expiry () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1
  in
  let rng = Sim.Rng.scenario ~seed:1 ~id:"scale/reuse" in
  let d =
    Corelite.Deployment.build ~params:Corelite.Params.default ~rng
      ~topology:network.Workload.Network.topology ~flows:[]
      ~core_links:network.Workload.Network.core_links ()
  in
  let flow = Workload.Network.flow network 1 in
  ignore (Corelite.Deployment.add_flow d flow);
  Sim.Engine.run_until engine 1.0;
  Corelite.Deployment.stop_flow d 1;
  Sim.Engine.run_until engine 3.0;
  Alcotest.(check int) "idle flow expired" 1
    (Corelite.Deployment.expire_idle d ~timeout:1.0);
  Alcotest.(check bool) "slot vacated" false (Corelite.Deployment.has_flow d 1);
  ignore (Corelite.Deployment.add_flow d flow);
  Alcotest.(check bool) "same id re-added" true (Corelite.Deployment.has_flow d 1);
  Alcotest.(check int) "one live flow" 1 (Corelite.Deployment.live_flows d);
  Sim.Engine.run_until engine 4.0;
  Alcotest.(check bool) "reincarnated flow sends"
    true
    (Corelite.Edge.sent (Corelite.Deployment.agent d 1) > 0)

let test_engine_reset_clears_scale_state () =
  let engine = Sim.Engine.create () in
  let metrics = Sim.Engine.metrics engine in
  let r1 = quick_run ~engine ~label:"scale/reset" ~n_flows:50 ~duration:2. () in
  Alcotest.(check bool) "auto probes restored after the run" true
    (Sim.Metrics.auto_probes metrics);
  Sim.Engine.reset engine;
  Alcotest.(check int) "event counter cleared" 0 (Sim.Engine.executed engine);
  Alcotest.(check (float 1e-9)) "clock rewound" 0. (Sim.Engine.now engine);
  Alcotest.(check bool) "auto probes restored by reset" true
    (Sim.Metrics.auto_probes metrics);
  (* A reset engine must replay the identical scenario byte-for-byte. *)
  let r2 = quick_run ~engine ~label:"scale/reset" ~n_flows:50 ~duration:2. () in
  Alcotest.(check (option string)) "replay after reset is byte-identical"
    r1.Workload.Scale.csv r2.Workload.Scale.csv

let () =
  Alcotest.run "scale"
    [
      ( "fairness",
        [
          Alcotest.test_case "fat-tree k=8, 10^4 flows, Jain >= 0.9 vs reference"
            `Slow test_fattree_k8_fairness;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "serial = pooled (CSV byte equality)" `Quick
            test_serial_equals_pooled;
          Alcotest.test_case "engine reset isolates runs" `Quick
            test_engine_reset_clears_scale_state;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "flow ledger balances" `Quick test_ledger_balances;
          Alcotest.test_case "flow id reuse after expire_idle" `Quick
            test_flow_id_reuse_after_expiry;
        ] );
      ( "flowtable",
        [ Alcotest.test_case "growth past capacity" `Quick test_flowtable_growth ] );
    ]
