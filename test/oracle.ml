(* Trace-oracle suite: replay figure workloads with the tracer armed
   and assert the paper's *dynamic* claims over the recorded event
   sequence — properties the end-state summary tables cannot see:

   - exactly one budget computation per 100 ms congestion epoch per
     core link (Section 3.2's epoch discipline);
   - feedback is emitted only while congested: every Feedback_emit
     follows an epoch whose budget Fn was positive, i.e. qavg above
     qthresh;
   - per-flow feedback counts at the bottleneck proportional to the
     advertised normalized rate bg(f)/w(f) (the selective-feedback
     claim behind weighted fairness), within 15%;
   - edge shaping conformance: packets injected at a flow's access
     link never exceed the allowed rate advertised between consecutive
     rate updates;
   - serial and pooled runs export byte-identical traces and metrics
     (per-scenario trace isolation).

   The figure runs are expensive (fig3 simulates 800 s), so each traced
   run is built lazily once and shared by its checks. *)

let qthresh = Corelite.Params.default.Corelite.Params.qthresh

let core_epoch = Corelite.Params.default.Corelite.Params.core_epoch

type traced = {
  result : Workload.Runner.result;
  events : Sim.Trace.event array;
}

let traced_run fspec tspec =
  let result = Workload.Figures.run ~trace:tspec fspec in
  let tr =
    Sim.Engine.trace result.Workload.Runner.network.Workload.Network.engine
  in
  (* Completeness first: every oracle below reasons over the full event
     sequence, so the ring must not have wrapped. *)
  Alcotest.(check int)
    "ring did not wrap (dropped_events = 0)" 0 (Sim.Trace.dropped_events tr);
  { result; events = Array.init (Sim.Trace.length tr) (Sim.Trace.get tr) }

(* fig3: the network-dynamics workload the paper's headline figure
   uses. Control-plane kinds only — the 800 s run generates ~115k of
   them, comfortably inside 2^18, while the per-packet kinds would need
   millions of slots. *)
let fig3 =
  lazy
    (traced_run
       (Workload.Figures.fig3 ())
       (Sim.Trace.spec ~capacity:(1 lsl 18) ~kinds:Sim.Trace.control_kinds ()))

(* fig5: short enough (80 s) to afford per-packet enqueues, which the
   shaping oracle needs. *)
let fig5 =
  lazy
    (traced_run
       (Workload.Figures.fig5 ())
       (Sim.Trace.spec ~capacity:(1 lsl 20)
          ~kinds:[ Sim.Trace.Enqueue; Sim.Trace.Rate_update ]
          ()))

let core_link_ids result =
  List.map
    (fun (l : Net.Link.t) -> l.Net.Link.id)
    result.Workload.Runner.network.Workload.Network.core_links

let flows_of result = result.Workload.Runner.network.Workload.Network.flows

let topology_of result =
  result.Workload.Runner.network.Workload.Network.topology

(* ---- Oracle 1: exactly one budget computation per epoch per link ---- *)

let test_epoch_cadence () =
  let { result; events } = Lazy.force fig3 in
  List.iter
    (fun link ->
      let times =
        Array.to_list events
        |> List.filter_map (fun (e : Sim.Trace.event) ->
               match e.Sim.Trace.kind with
               | Sim.Trace.Epoch when e.Sim.Trace.a = link ->
                 Some e.Sim.Trace.time
               | _ -> None)
      in
      let n = List.length times in
      (* 800 s at one computation per 100 ms epoch: allow the boundary
         tick to land either side of the horizon, nothing more. *)
      Alcotest.(check bool)
        (Printf.sprintf "link %d: ~8000 epoch computations (got %d)" link n)
        true
        (n >= 7995 && n <= 8001);
      let rec gaps = function
        | t1 :: (t2 :: _ as rest) ->
          let gap = t2 -. t1 in
          if Float.abs (gap -. core_epoch) > 1e-6 then
            Alcotest.failf
              "link %d: epoch gap %.9f at t=%.3f (expected %.3f): budget \
               computed more or less than once per epoch"
              link gap t1 core_epoch;
          gaps rest
        | _ -> ()
      in
      gaps times)
    (core_link_ids result)

(* ---- Oracle 2: no feedback while uncongested (qavg <= qthresh) ---- *)

let test_feedback_only_under_congestion () =
  let { result = _; events } = Lazy.force fig3 in
  let last_epoch = Hashtbl.create 8 in
  let checked = ref 0 in
  Array.iter
    (fun (e : Sim.Trace.event) ->
      match e.Sim.Trace.kind with
      | Sim.Trace.Epoch ->
        Hashtbl.replace last_epoch e.Sim.Trace.a (e.Sim.Trace.x, e.Sim.Trace.y)
      | Sim.Trace.Feedback_emit -> (
        incr checked;
        match Hashtbl.find_opt last_epoch e.Sim.Trace.a with
        | None ->
          Alcotest.failf "feedback on link %d at t=%.3f before any epoch"
            e.Sim.Trace.a e.Sim.Trace.time
        | Some (qavg, fn) ->
          if fn <= 0. then
            Alcotest.failf
              "feedback on link %d at t=%.3f but last budget Fn=%.3f"
              e.Sim.Trace.a e.Sim.Trace.time fn;
          if qavg <= qthresh then
            Alcotest.failf
              "feedback on link %d at t=%.3f but last qavg=%.2f <= \
               qthresh=%.1f"
              e.Sim.Trace.a e.Sim.Trace.time qavg qthresh)
      | _ -> ())
    events;
  Alcotest.(check bool)
    (Printf.sprintf "saw a meaningful number of feedback emissions (%d)"
       !checked)
    true (!checked > 1000)

(* ---- Oracle 3: feedback counts proportional to normalized rate ---- *)

(* Section 3's selective-feedback claim: markers for flow f reach the
   cores at rate bg(f) / (K1 w(f)), so over a steady-state window each
   flow's share of the selective feedback tracks its share of sum bg/w
   over the active flows. The right quantity is each flow's TOTAL
   feedback across the congested links it crosses: a flow throttled by
   two equally-congested links splits its feedback between them (each
   link sees it hovering at its running average half the time), but the
   combined count stays proportional to the advertised normalized rate
   regardless of how many congested hops the path has — that is exactly
   the property that makes multi-hop flows converge to the same bg/w as
   single-hop ones. *)
let test_feedback_proportionality () =
  let { result; events } = Lazy.force fig3 in
  let spec = Workload.Figures.fig3 () in
  List.iter
    (fun (phase : Workload.Figures.phase) ->
      let from_t = phase.Workload.Figures.from_t
      and until_t = phase.Workload.Figures.until_t in
      let active = phase.Workload.Figures.active in
      (* Total feedback per flow inside the window, across all links. *)
      let count = Hashtbl.create 64 in
      Array.iter
        (fun (e : Sim.Trace.event) ->
          match e.Sim.Trace.kind with
          | Sim.Trace.Feedback_emit
            when e.Sim.Trace.time >= from_t && e.Sim.Trace.time <= until_t ->
            let flow = e.Sim.Trace.b in
            Hashtbl.replace count flow
              (1 + Option.value ~default:0 (Hashtbl.find_opt count flow))
          | _ -> ())
        events;
      let fb id = Option.value ~default:0 (Hashtbl.find_opt count id) in
      (* Normalized rates measured from the same run's rate samples. *)
      let normalized =
        List.map
          (fun id ->
            let f = Workload.Network.flow result.Workload.Runner.network id in
            let bg =
              Workload.Runner.mean_rate result ~flow:id ~from:from_t
                ~until:until_t
            in
            (id, bg /. f.Net.Flow.weight))
          active
      in
      let nr_sum = List.fold_left (fun acc (_, nr) -> acc +. nr) 0. normalized in
      let fb_sum = List.fold_left (fun acc (id, _) -> acc + fb id) 0 normalized in
      Alcotest.(check bool)
        (Printf.sprintf "%s: window saw substantial feedback (%d)"
           phase.Workload.Figures.label fb_sum)
        true
        (fb_sum > 1000);
      List.iter
        (fun (id, nr) ->
          let nshare = nr /. nr_sum in
          let fshare = float_of_int (fb id) /. float_of_int fb_sum in
          if Float.abs (fshare -. nshare) > 0.15 *. nshare then
            Alcotest.failf
              "%s: flow %d feedback share %.4f vs normalized-rate share \
               %.4f (%d/%d feedbacks) — outside 15%%"
              phase.Workload.Figures.label id fshare nshare (fb id) fb_sum)
        normalized)
    spec.Workload.Figures.phases

(* ---- Oracle 4: edge shaping conformance ---- *)

(* Between consecutive rate updates the edge may inject at most
   rate * dt packets (+2: one emission already scheduled under the
   previous rate, one for the window-boundary rounding): the paced
   source must conform to the rate it advertises. Checked at each
   flow's access link — the first link of its path — which sees packets
   the instant the edge emits them. *)
let test_shaping_conformance () =
  let { result; events } = Lazy.force fig5 in
  let topology = topology_of result in
  let duration = (Workload.Figures.fig5 ()).Workload.Figures.duration in
  List.iter
    (fun (f : Net.Flow.t) ->
      let id = f.Net.Flow.id in
      let access =
        match Net.Flow.links f topology with
        | l :: _ -> l.Net.Link.id
        | [] -> Alcotest.failf "flow %d has no links" id
      in
      (* Windows: (time, new rate) changepoints for this flow. *)
      let updates =
        Array.to_list events
        |> List.filter_map (fun (e : Sim.Trace.event) ->
               match e.Sim.Trace.kind with
               | Sim.Trace.Rate_update when e.Sim.Trace.a = id ->
                 Some (e.Sim.Trace.time, e.Sim.Trace.x)
               | _ -> None)
      in
      Alcotest.(check bool)
        (Printf.sprintf "flow %d has rate updates (%d)" id
           (List.length updates))
        true
        (List.length updates > 10);
      let enqueues =
        Array.to_list events
        |> List.filter_map (fun (e : Sim.Trace.event) ->
               match e.Sim.Trace.kind with
               | Sim.Trace.Enqueue
                 when e.Sim.Trace.a = access && e.Sim.Trace.b = id ->
                 Some e.Sim.Trace.time
               | _ -> None)
      in
      let count_in lo hi =
        List.length (List.filter (fun t -> t > lo && t <= hi) enqueues)
      in
      let check_window t1 rate t2 =
        let n = count_in t1 t2 in
        let allowed = (rate *. (t2 -. t1)) +. 2. in
        if float_of_int n > allowed then
          Alcotest.failf
            "flow %d: %d packets in (%.3f, %.3f] exceeds advertised rate \
             %.1f pkt/s (max %.1f)"
            id n t1 t2 rate allowed
      in
      let rec walk = function
        | (t1, r1) :: ((t2, _) :: _ as rest) ->
          check_window t1 r1 t2;
          walk rest
        | [ (t1, r1) ] -> check_window t1 r1 duration
        | [] -> ()
      in
      walk updates)
    (flows_of result)

(* ---- Oracle 5: serial vs pooled trace/metrics exports ---- *)

let exports ~domains =
  let tspec =
    Sim.Trace.spec ~capacity:(1 lsl 18) ~kinds:Sim.Trace.control_kinds ()
  in
  let runs =
    Workload.Figures.run_all ~domains ~trace:tspec ~metrics:true
      [ Workload.Figures.fig3 (); Workload.Figures.fig5 () ]
  in
  List.map
    (fun ((spec : Workload.Figures.spec), (result : Workload.Runner.result)) ->
      let engine = result.Workload.Runner.network.Workload.Network.engine in
      ( spec.Workload.Figures.id,
        Sim.Trace.to_jsonl (Sim.Engine.trace engine),
        Workload.Csv.of_metrics (Sim.Engine.metrics engine) ))
    runs

let test_serial_vs_pooled () =
  let serial = exports ~domains:1 in
  let pooled = exports ~domains:2 in
  List.iter2
    (fun (id, jsonl_s, csv_s) (id', jsonl_p, csv_p) ->
      Alcotest.(check string) "same scenario order" id id';
      Alcotest.(check bool)
        (id ^ ": trace JSONL non-empty") true
        (String.length jsonl_s > 0);
      Alcotest.(check bool)
        (id ^ ": metrics CSV non-empty") true
        (String.length csv_s > 0);
      Alcotest.(check bool)
        (id ^ ": serial and pooled trace exports byte-identical") true
        (String.equal jsonl_s jsonl_p);
      Alcotest.(check bool)
        (id ^ ": serial and pooled metrics exports byte-identical") true
        (String.equal csv_s csv_p))
    serial pooled

(* ---- Oracle 6: trace isolation across pooled scenarios ---- *)

(* Pool-owned engines are reused across jobs with Engine.reset between
   them; a scenario arming the tracer must never see a predecessor's
   events. Running the same batch serially and sharded gives different
   (engine, predecessor) pairings, so any leakage shows up as a byte
   difference between the two exports. *)
let test_pool_scenario_isolation () =
  let scenario label =
    {
      Workload.Pool.label;
      scenario =
        (fun ~engine ~rng ->
          let network =
            Workload.Network.single_bottleneck ~engine
              ~weights:(fun i -> float_of_int i)
              3
          in
          let result =
            Workload.Runner.run
              ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
              ~network ~rng
              ~trace:
                (Sim.Trace.spec ~capacity:(1 lsl 16)
                   ~kinds:Sim.Trace.control_kinds ())
              ~schedule:
                (List.init 3 (fun i -> (0., Workload.Runner.Start (i + 1))))
              ~duration:30. ()
          in
          ignore result.Workload.Runner.core_drops;
          Sim.Trace.to_jsonl (Sim.Engine.trace engine))
    }
  in
  let scenarios =
    [ scenario "oracle/a"; scenario "oracle/b"; scenario "oracle/c" ]
  in
  let serial = Workload.Pool.run_scenarios ~domains:1 ~seed:7 scenarios in
  let pooled = Workload.Pool.run_scenarios ~domains:2 ~seed:7 scenarios in
  List.iteri
    (fun i (s, p) ->
      Alcotest.(check bool)
        (Printf.sprintf "scenario %d trace non-empty" i)
        true
        (String.length s > 0);
      Alcotest.(check bool)
        (Printf.sprintf "scenario %d: pooled trace = serial trace" i)
        true (String.equal s p))
    (List.combine serial pooled)

(* ---- Oracle 7: churn flow lifecycle ---- *)

(* A real churn run (Corelite under 10% transient churn, quick battery
   settings) with the lifecycle kinds and edge feedback receipts
   traced. Three properties:

   - every Flow_start is matched by exactly one Flow_end or
     Flow_expire (the drain ends whatever churn left running);
   - the process-wide Sim.Invariant flow ledger balances across the
     run: created = retired, nothing leaked;
   - no feedback is attributed to a retired flow — once a flow's
     Flow_end/Flow_expire appears in the event order, no later
     Feedback_recv may name it (the edge's [running] guard drops
     in-flight feedback toward retired state). *)
let churn =
  lazy
    (let engine = Sim.Engine.create () in
     Sim.Trace.apply (Sim.Engine.trace engine)
       (Sim.Trace.spec ~capacity:(1 lsl 18)
          ~kinds:
            (Sim.Trace.Feedback_recv :: Sim.Trace.lifecycle_kinds)
          ());
     let created0 = Sim.Invariant.flows_created () in
     let retired0 = Sim.Invariant.flows_retired () in
     let point =
       Workload.Churn.run_point ~engine ~quick:true
         ~scheme:Workload.Churn.Corelite ~variant:Workload.Churn.Dynamic ()
     in
     let tr = Sim.Engine.trace engine in
     Alcotest.(check int)
       "ring did not wrap (dropped_events = 0)" 0
       (Sim.Trace.dropped_events tr);
     ( point,
       Sim.Invariant.flows_created () - created0,
       Sim.Invariant.flows_retired () - retired0,
       Array.init (Sim.Trace.length tr) (Sim.Trace.get tr) ))

let test_churn_lifecycle_balance () =
  let point, _, _, events = Lazy.force churn in
  let starts = Hashtbl.create 64 and ends = Hashtbl.create 64 in
  let bump table id =
    Hashtbl.replace table id (1 + Option.value ~default:0 (Hashtbl.find_opt table id))
  in
  Array.iter
    (fun (e : Sim.Trace.event) ->
      match e.Sim.Trace.kind with
      | Sim.Trace.Flow_start -> bump starts e.Sim.Trace.a
      | Sim.Trace.Flow_end | Sim.Trace.Flow_expire -> bump ends e.Sim.Trace.a
      | _ -> ())
    events;
  Alcotest.(check int)
    "one Flow_start per honest arrival" point.Workload.Churn.arrivals
    (Hashtbl.length starts);
  Hashtbl.iter
    (fun id n ->
      if n <> 1 then Alcotest.failf "flow %d started %d times" id n;
      match Hashtbl.find_opt ends id with
      | Some 1 -> ()
      | Some n -> Alcotest.failf "flow %d retired %d times" id n
      | None -> Alcotest.failf "flow %d started but never ended nor expired" id)
    starts;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem starts id) then
        Alcotest.failf "flow %d retired without a Flow_start" id)
    ends

let test_churn_ledger_balances () =
  let point, created, retired, _ = Lazy.force churn in
  Alcotest.(check int) "every arrival entered the ledger"
    point.Workload.Churn.arrivals created;
  Alcotest.(check int) "created = retired after the drain" created retired;
  Alcotest.(check int) "no leaked edge state" 0 point.Workload.Churn.leaked

let test_churn_no_feedback_after_retirement () =
  let _, _, _, events = Lazy.force churn in
  let retired = Hashtbl.create 64 in
  let feedbacks = ref 0 in
  Array.iter
    (fun (e : Sim.Trace.event) ->
      match e.Sim.Trace.kind with
      | Sim.Trace.Flow_end | Sim.Trace.Flow_expire ->
        Hashtbl.replace retired e.Sim.Trace.a e.Sim.Trace.time
      | Sim.Trace.Feedback_recv -> (
        incr feedbacks;
        match Hashtbl.find_opt retired e.Sim.Trace.a with
        | Some t_retired ->
          Alcotest.failf
            "feedback attributed to flow %d at t=%.3f after its retirement \
             at t=%.3f"
            e.Sim.Trace.a e.Sim.Trace.time t_retired
        | None -> ())
      | _ -> ())
    events;
  Alcotest.(check bool)
    (Printf.sprintf "the run actually exercised feedback (%d receipts)"
       !feedbacks)
    true (!feedbacks > 100)

(* ---- Scale oracles: the same dynamic claims on a generated fat-tree ----

   The epoch discipline and retirement guarantees must survive the
   scale refactor (flat flow tables, FIB-plane forwarding, per-path
   delay registration), so they are re-proved on a fat-tree k=8 with
   3000 flows and 25% early churn — hundreds of policed links instead
   of fig3's three. Control-plane kinds only: the whole point of the
   trace diet is that a 10^3-flow run fits a bounded ring while its
   per-packet volume would not. *)

let scale_capacity = 1 lsl 20

(* 10^4 flows oversubscribe every access link (78 flows per 500 pkt/s
   uplink) — fewer flows never congest within 8 s and the feedback
   oracles would hold vacuously. *)
let scale =
  lazy
    (let engine = Sim.Engine.create () in
     let result =
       Workload.Scale.run ~engine ~seed:42 ~label:"oracle/scale"
         ~graph:(Workload.Scale.Fattree 8) ~n_flows:10_000
         ~scheme:Workload.Scale.Corelite ~duration:8. ~end_fraction:0.25
         ~trace:
           (Sim.Trace.spec ~capacity:scale_capacity
              ~kinds:Sim.Trace.control_kinds ())
         ()
     in
     let tr = Sim.Engine.trace engine in
     Alcotest.(check int)
       "ring did not wrap (dropped_events = 0)" 0 (Sim.Trace.dropped_events tr);
     (result, Array.init (Sim.Trace.length tr) (Sim.Trace.get tr)))

let test_scale_epoch_cadence () =
  let result, events = Lazy.force scale in
  (* One pass over the trace, folding per-link epoch streams: count,
     and every consecutive gap exactly one core epoch. *)
  let per_link : (int, int * float) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun (e : Sim.Trace.event) ->
      match e.Sim.Trace.kind with
      | Sim.Trace.Epoch ->
        let link = e.Sim.Trace.a and t = e.Sim.Trace.time in
        (match Hashtbl.find_opt per_link link with
        | None -> ()
        | Some (_, last) ->
          if Float.abs (t -. last -. core_epoch) > 1e-6 then
            Alcotest.failf
              "link %d: epoch gap %.9f at t=%.3f (expected %.3f)" link
              (t -. last) last core_epoch);
        let n = match Hashtbl.find_opt per_link link with
          | None -> 0
          | Some (n, _) -> n
        in
        Hashtbl.replace per_link link (n + 1, t)
      | _ -> ())
    events;
  Alcotest.(check int)
    "every policed link computes budgets" result.Workload.Scale.n_links
    (Hashtbl.length per_link);
  Hashtbl.iter
    (fun link (n, _) ->
      (* 8 s at one computation per 100 ms: the boundary tick may land
         either side of the horizon. *)
      if n < 79 || n > 81 then
        Alcotest.failf "link %d: %d epoch computations over 8 s" link n)
    per_link

let test_scale_no_feedback_after_retirement () =
  let result, events = Lazy.force scale in
  let retired = Hashtbl.create 1024 in
  let feedbacks = ref 0 in
  Array.iter
    (fun (e : Sim.Trace.event) ->
      match e.Sim.Trace.kind with
      | Sim.Trace.Flow_end | Sim.Trace.Flow_expire ->
        Hashtbl.replace retired e.Sim.Trace.a e.Sim.Trace.time
      | Sim.Trace.Feedback_recv -> (
        incr feedbacks;
        match Hashtbl.find_opt retired e.Sim.Trace.a with
        | Some t_retired ->
          Alcotest.failf
            "feedback attributed to flow %d at t=%.3f after its retirement \
             at t=%.3f"
            e.Sim.Trace.a e.Sim.Trace.time t_retired
        | None -> ())
      | _ -> ())
    events;
  Alcotest.(check int)
    "the early-churn cohort retired" 2500 result.Workload.Scale.ended_early;
  Alcotest.(check bool)
    (Printf.sprintf "the run actually exercised feedback (%d receipts)"
       !feedbacks)
    true
    (!feedbacks > 100)

let test_scale_trace_diet () =
  let result, events = Lazy.force scale in
  Array.iter
    (fun (e : Sim.Trace.event) ->
      match e.Sim.Trace.kind with
      | Sim.Trace.Enqueue | Sim.Trace.Dequeue | Sim.Trace.Marker_attach
      | Sim.Trace.Marker_seen ->
        Alcotest.failf "per-packet kind recorded at t=%.3f under control_kinds"
          e.Sim.Trace.time
      | _ -> ())
    events;
  (* The diet's raison d'etre: the control-plane record stays inside a
     bounded ring while the event volume it elides — at least one
     engine event per packet hop — is several times larger. *)
  Alcotest.(check bool)
    (Printf.sprintf "control trace (%d) << engine events (%d)"
       (Array.length events) result.Workload.Scale.events)
    true
    (Array.length events * 4 < result.Workload.Scale.events
    && Array.length events <= scale_capacity)

let () =
  Alcotest.run "oracle"
    [
      ( "fig3-trace",
        [
          Alcotest.test_case "one budget computation per epoch per link"
            `Slow test_epoch_cadence;
          Alcotest.test_case "no feedback when qavg <= qthresh" `Slow
            test_feedback_only_under_congestion;
          Alcotest.test_case "feedback proportional to normalized rate" `Slow
            test_feedback_proportionality;
        ] );
      ( "fig5-trace",
        [
          Alcotest.test_case "edges conform to their advertised rate" `Slow
            test_shaping_conformance;
        ] );
      ( "scale-trace",
        [
          Alcotest.test_case
            "one budget computation per epoch per core link (fat-tree k=8)"
            `Slow test_scale_epoch_cadence;
          Alcotest.test_case "no feedback toward retired flows" `Slow
            test_scale_no_feedback_after_retirement;
          Alcotest.test_case "control_kinds trace diet stays bounded" `Slow
            test_scale_trace_diet;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "serial = pooled trace and metrics exports"
            `Slow test_serial_vs_pooled;
          Alcotest.test_case "pooled scenario traces are isolated" `Slow
            test_pool_scenario_isolation;
        ] );
      ( "churn-trace",
        [
          Alcotest.test_case "every flow-start matched by end or expiry"
            `Slow test_churn_lifecycle_balance;
          Alcotest.test_case "flow ledger balances, nothing leaks" `Slow
            test_churn_ledger_balances;
          Alcotest.test_case "no feedback attributed to a retired flow"
            `Slow test_churn_no_feedback_after_retirement;
        ] );
    ]
