(* Structural property tests for the generated-topology layer
   (lib/topo): fat-tree invariants for any even arity, AS-graph
   connectivity and degree shape, FIB soundness (incident next hops,
   loop-free progress), and byte-identical regeneration from equal
   (seed, label) parameters — the witness that lets every scale run
   rebuild its topology instead of serializing it. *)

module G = Topo.Graph

(* ---- helpers ---- *)

let graph_equal a b =
  G.n_nodes a = G.n_nodes b
  && G.n_links a = G.n_links b
  && G.n_hosts a = G.n_hosts b
  && List.for_all
       (fun v -> G.kind a v = G.kind b v && G.host_of_node a v = G.host_of_node b v)
       (List.init (G.n_nodes a) Fun.id)
  && List.for_all
       (fun l -> G.link_src a l = G.link_src b l && G.link_dst a l = G.link_dst b l)
       (List.init (G.n_links a) Fun.id)

let count_kind g k =
  let n = ref 0 in
  for v = 0 to G.n_nodes g - 1 do
    if G.kind g v = k then incr n
  done;
  !n

(* Fat-tree wiring invariants for arity [k]: node-count formulas, one
   access link per host, switch radix exactly [k], connectivity. *)
let check_fattree_structure k =
  let g = Topo.Fattree.build k in
  let hosts = k * k * k / 4 in
  Alcotest.(check int) "hosts = k^3/4" hosts (G.n_hosts g);
  Alcotest.(check int)
    "switches = 5k^2/4"
    (5 * k * k / 4)
    (G.n_nodes g - hosts);
  Alcotest.(check int)
    "directed links = 2 * 3k^3/4"
    (2 * Topo.Fattree.n_edges k)
    (G.n_links g);
  Alcotest.(check int) "edge switches = k^2/2" (k * k / 2) (count_kind g G.Edge_switch);
  Alcotest.(check int) "agg switches = k^2/2" (k * k / 2) (count_kind g G.Agg_switch);
  Alcotest.(check int) "core switches = k^2/4" (k * k / 4) (count_kind g G.Core_switch);
  for v = 0 to G.n_nodes g - 1 do
    let d = G.out_degree g v in
    let expect = match G.kind g v with G.Host -> 1 | _ -> k in
    if d <> expect then
      Alcotest.failf "node %s: out-degree %d, expected %d (k-ary wiring)"
        (G.label g v) d expect
  done;
  Alcotest.(check int) "connected" (G.n_nodes g) (G.reachable g 0)

(* FIB soundness over any graph: every next hop leaves the node it is
   installed at, and following it strictly decreases the hop count —
   which rules out loops without walking paths. *)
let check_fib_sound g =
  let fib = Topo.Fib.compute g in
  for v = 0 to G.n_nodes g - 1 do
    for h = 0 to G.n_hosts g - 1 do
      let l = Topo.Fib.next_hop fib ~node:v ~host:h in
      if G.host g h = v then
        Alcotest.(check int) "own host: deliver locally" (-1) l
      else begin
        if l < 0 then
          Alcotest.failf "no next hop at %s toward host %d (connected graph)"
            (G.label g v) h;
        if G.link_src g l <> v then
          Alcotest.failf "next hop at %s toward host %d uses link %d->%d"
            (G.label g v) h (G.link_src g l) (G.link_dst g l);
        let here = Topo.Fib.hops fib ~node:v ~host:h in
        let there = Topo.Fib.hops fib ~node:(G.link_dst g l) ~host:h in
        if there <> here - 1 then
          Alcotest.failf
            "next hop at %s toward host %d does not make progress (%d -> %d)"
            (G.label g v) h here there
      end
    done
  done;
  fib

(* ---- unit tests ---- *)

let test_fattree_counts () =
  List.iter check_fattree_structure [ 2; 4; 8 ]

(* k=32 is the largest documented arity: 8192 hosts, 1280 switches,
   49152 directed links. Structure only — its FIB (9472 x 8192) is
   deliberately never computed in tests. *)
let test_fattree_k32_structure () = check_fattree_structure 32

let test_fattree_invalid () =
  List.iter
    (fun k ->
      Alcotest.check_raises
        (Printf.sprintf "k=%d rejected" k)
        (Invalid_argument "Fattree.build: k must be even and >= 2")
        (fun () -> ignore (Topo.Fattree.build k)))
    [ 0; 3; -2 ]

let test_fattree_paths_bounded () =
  let g = Topo.Fattree.build 4 in
  let fib = check_fib_sound g in
  let n = G.n_hosts g in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if s <> d then begin
        let hops = Topo.Fib.hops fib ~node:(G.host g s) ~host:d in
        if hops < 2 || hops > 6 then
          Alcotest.failf "host %d -> %d: %d hops (fat-tree bound is 6)" s d hops;
        let path = Topo.Fib.route g fib ~src_host:s ~dst_host:d in
        Alcotest.(check int) "route length = hops + 1" (hops + 1) (List.length path);
        Alcotest.(check int) "route starts at src" (G.host g s) (List.hd path);
        Alcotest.(check int)
          "route ends at dst" (G.host g d)
          (List.nth path (List.length path - 1))
      end
    done
  done

let test_asgraph_shape () =
  let g = Topo.Asgraph.build ~seed:7 ~label:"shape" ~nodes:200 ~m:2 () in
  Alcotest.(check int) "every router is a host" 200 (G.n_hosts g);
  Alcotest.(check int) "connected" 200 (G.reachable g 0);
  let degrees = Array.init 200 (G.out_degree g) in
  Array.iteri
    (fun v d ->
      if d < 2 then Alcotest.failf "node %d: degree %d < m = 2" v d)
    degrees;
  let max_degree = Array.fold_left Stdlib.max 0 degrees in
  (* Preferential attachment grows hubs: the degree tail must reach far
     beyond the attachment count m. *)
  Alcotest.(check bool)
    (Printf.sprintf "hub exists (max degree %d >= 4m)" max_degree)
    true (max_degree >= 8)

let test_regeneration_identical () =
  Alcotest.(check bool)
    "fat-tree regenerates byte-identically" true
    (graph_equal (Topo.Fattree.build 4) (Topo.Fattree.build 4));
  let a = Topo.Asgraph.build ~seed:11 ~label:"regen" ~nodes:80 ~m:2 () in
  let b = Topo.Asgraph.build ~seed:11 ~label:"regen" ~nodes:80 ~m:2 () in
  Alcotest.(check bool) "AS graph regenerates byte-identically" true (graph_equal a b);
  let c = Topo.Asgraph.build ~seed:11 ~label:"other" ~nodes:80 ~m:2 () in
  Alcotest.(check bool) "different label, different graph" false (graph_equal a c);
  let g = Topo.Fattree.build 4 in
  let fa = Topo.Flows.generate ~seed:11 ~label:"regen" ~graph:g ~n:500 () in
  let fb = Topo.Flows.generate ~seed:11 ~label:"regen" ~graph:g ~n:500 () in
  Alcotest.(check bool) "flows regenerate byte-identically" true (Topo.Flows.equal fa fb);
  let fc = Topo.Flows.generate ~seed:12 ~label:"regen" ~graph:g ~n:500 () in
  Alcotest.(check bool) "different seed, different flows" false (Topo.Flows.equal fa fc)

let test_flows_wellformed () =
  let g = Topo.Fattree.build 4 in
  let pop = Topo.Flows.generate ~seed:3 ~label:"wf" ~graph:g ~n:1000 ~max_weight:4 () in
  Alcotest.(check int) "count" 1000 (Topo.Flows.count pop);
  for i = 0 to 999 do
    let src = pop.Topo.Flows.src.(i) and dst = pop.Topo.Flows.dst.(i) in
    if src = dst then Alcotest.failf "flow %d: src = dst = %d" i src;
    if src < 0 || src >= G.n_hosts g || dst < 0 || dst >= G.n_hosts g then
      Alcotest.failf "flow %d: endpoint out of host range" i;
    let w = pop.Topo.Flows.weight.(i) in
    if w < 1. || w > 4. then Alcotest.failf "flow %d: weight %g outside [1, 4]" i w
  done

(* ---- QCheck properties ---- *)

let prop_fattree_invariants =
  QCheck.Test.make ~name:"fat-tree invariants hold for any even arity" ~count:6
    QCheck.(map (fun half -> 2 * half) (1 -- 6))
    (fun k ->
      check_fattree_structure k;
      true)

let prop_fattree_fib =
  QCheck.Test.make ~name:"fat-tree FIB sound, paths within 6 hops" ~count:3
    QCheck.(map (fun half -> 2 * half) (1 -- 3))
    (fun k ->
      let g = Topo.Fattree.build k in
      let fib = check_fib_sound g in
      let n = G.n_hosts g in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d then begin
            let hops = Topo.Fib.hops fib ~node:(G.host g s) ~host:d in
            if hops > 6 then QCheck.Test.fail_reportf "%d -> %d: %d hops" s d hops
          end
        done
      done;
      true)

let prop_asgraph_connected =
  QCheck.Test.make ~name:"AS graph connected, min degree >= m, FIB sound"
    ~count:15
    QCheck.(triple (5 -- 60) (1 -- 3) small_nat)
    (fun (nodes, m, seed) ->
      QCheck.assume (nodes >= m + 2);
      let g = Topo.Asgraph.build ~seed ~label:"prop" ~nodes ~m () in
      if G.reachable g 0 <> nodes then
        QCheck.Test.fail_reportf "disconnected: %d/%d reachable"
          (G.reachable g 0) nodes;
      for v = 0 to nodes - 1 do
        if G.out_degree g v < m then
          QCheck.Test.fail_reportf "node %d: degree %d < m = %d" v
            (G.out_degree g v) m
      done;
      ignore (check_fib_sound g);
      true)

let prop_regeneration =
  QCheck.Test.make ~name:"equal (seed, label) regenerate identical structures"
    ~count:20
    QCheck.(pair small_nat (5 -- 40))
    (fun (seed, nodes) ->
      let build () = Topo.Asgraph.build ~seed ~label:"r" ~nodes ~m:2 () in
      QCheck.assume (nodes >= 4);
      let a = build () and b = build () in
      graph_equal a b
      && Topo.Flows.equal
           (Topo.Flows.generate ~seed ~label:"f" ~graph:a ~n:50 ())
           (Topo.Flows.generate ~seed ~label:"f" ~graph:b ~n:50 ()))

let () =
  Alcotest.run "topo"
    [
      ( "fattree",
        [
          Alcotest.test_case "counts and wiring, k in {2,4,8}" `Quick
            test_fattree_counts;
          Alcotest.test_case "k=32 structure (no FIB)" `Quick
            test_fattree_k32_structure;
          Alcotest.test_case "odd or non-positive arity rejected" `Quick
            test_fattree_invalid;
          Alcotest.test_case "k=4 all-pairs paths bounded by 6 hops" `Quick
            test_fattree_paths_bounded;
          QCheck_alcotest.to_alcotest prop_fattree_invariants;
          QCheck_alcotest.to_alcotest prop_fattree_fib;
        ] );
      ( "asgraph",
        [
          Alcotest.test_case "shape: connected, degrees, hub tail" `Quick
            test_asgraph_shape;
          QCheck_alcotest.to_alcotest prop_asgraph_connected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "regeneration is byte-identical" `Quick
            test_regeneration_identical;
          Alcotest.test_case "flow populations well-formed" `Quick
            test_flows_wellformed;
          QCheck_alcotest.to_alcotest prop_regeneration;
        ] );
    ]
