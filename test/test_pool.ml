(* Tests for Workload.Pool: sharding semantics (order, exceptions,
   inline fallback), differential determinism of pooled regeneration
   against serial runs, per-scenario RNG streams, and engine reuse
   across jobs on one worker. *)

(* ------------------------------------------------------------------ *)
(* Pool.map semantics *)

let squares n = List.init n (fun i -> Workload.Pool.job ~id:(string_of_int i) (fun () -> i * i))

let test_map_empty () =
  Alcotest.(check (list int)) "no jobs" [] (Workload.Pool.map ~domains:4 [])

let test_map_preserves_submission_order () =
  let expected = List.init 37 (fun i -> i * i) in
  Alcotest.(check (list int))
    "serial path" expected
    (Workload.Pool.map ~domains:1 (squares 37));
  Alcotest.(check (list int))
    "parallel path" expected
    (Workload.Pool.map ~domains:4 (squares 37));
  Alcotest.(check (list int))
    "more workers than jobs" [ 0; 1; 4 ]
    (Workload.Pool.map ~domains:16 (squares 3))

let test_map_propagates_exceptions () =
  let jobs =
    [
      Workload.Pool.job ~id:"fine" (fun () -> 1);
      Workload.Pool.job ~id:"boom" (fun () -> failwith "boom");
      Workload.Pool.job ~id:"also fine" (fun () -> 3);
    ]
  in
  Alcotest.check_raises "serial path" (Failure "boom") (fun () ->
      ignore (Workload.Pool.map ~domains:1 jobs));
  Alcotest.check_raises "parallel path" (Failure "boom") (fun () ->
      ignore (Workload.Pool.map ~domains:3 jobs))

let test_default_domains_positive () =
  Alcotest.(check bool) "at least one worker" true
    (Workload.Pool.default_domains () >= 1)

(* ------------------------------------------------------------------ *)
(* Pool.run_scenarios: per-scenario streams and engine reuse *)

let test_run_scenarios_rejects_duplicate_labels () =
  let s label = { Workload.Pool.label; scenario = (fun ~engine:_ ~rng:_ -> ()) } in
  Alcotest.check_raises "duplicate label"
    (Invalid_argument
       "Pool.run_scenarios: duplicate scenario label twin (labels derive RNG \
        streams and must be unique)")
    (fun () ->
      ignore (Workload.Pool.run_scenarios ~domains:1 ~seed:1 [ s "twin"; s "twin" ]))

let drawing_scenario label =
  {
    Workload.Pool.label;
    scenario = (fun ~engine:_ ~rng -> List.init 16 (fun _ -> Sim.Rng.bits64 rng));
  }

let test_scenario_stream_depends_only_on_label () =
  (* A scenario's draws are a pure function of (seed, label): adding,
     removing or reordering sibling scenarios cannot perturb them. *)
  let batch =
    Workload.Pool.run_scenarios ~domains:1 ~seed:9
      [ drawing_scenario "a"; drawing_scenario "b"; drawing_scenario "c" ]
  in
  let reordered =
    Workload.Pool.run_scenarios ~domains:2 ~seed:9
      [ drawing_scenario "c"; drawing_scenario "a" ]
  in
  let alone = Workload.Pool.run_scenarios ~domains:1 ~seed:9 [ drawing_scenario "b" ] in
  Alcotest.(check (list int64)) "b alone = b in batch" (List.nth batch 1)
    (List.hd alone);
  Alcotest.(check (list int64)) "a reordered = a in batch" (List.hd batch)
    (List.nth reordered 1);
  let other_seed = Workload.Pool.run_scenarios ~domains:1 ~seed:10 [ drawing_scenario "b" ] in
  Alcotest.(check bool) "seed matters" false (List.hd alone = List.hd other_seed)

(* A small but real simulation: 5 flows on Topology 1 for 10 s. The CSV
   payload bytes are the strictest observable equality we have. *)
let mini_workload ~engine ~rng =
  let network =
    Workload.Network.topology1 ~engine
      ~flow_ids:(List.init 5 (fun i -> i + 1))
      ~weights:(fun i -> float_of_int ((i + 1) / 2))
      ()
  in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~rng
      ~schedule:(List.init 5 (fun i -> (0., Workload.Runner.Start (i + 1))))
      ~duration:10. ()
  in
  Workload.Csv.result_strings result

let mini_scenario label = { Workload.Pool.label; scenario = mini_workload }

let check_payloads what expected actual =
  Alcotest.(check (list (pair string string))) what expected actual

let test_engine_reuse_matches_fresh_engines () =
  (* Two back-to-back jobs on ONE worker run on the same reset engine;
     a leaked clock, seq counter or stale event would shift FIFO order
     and change the payload bytes. Compare against fresh engines. *)
  let reused =
    Workload.Pool.run_scenarios ~domains:1 ~seed:42
      [ mini_scenario "reuse/one"; mini_scenario "reuse/two" ]
  in
  let fresh label =
    mini_workload ~engine:(Sim.Engine.create ())
      ~rng:(Sim.Rng.scenario ~seed:42 ~id:label)
  in
  check_payloads "first job on reused engine" (fresh "reuse/one") (List.hd reused);
  check_payloads "second job on reused engine" (fresh "reuse/two")
    (List.nth reused 1)

(* ------------------------------------------------------------------ *)
(* Differential determinism: pooled regeneration vs serial *)

let check_summary what (expected : Workload.Figures.summary) actual =
  (* Structural equality over the whole summary record (floats are
     bit-reproducible by the determinism contract). *)
  Alcotest.(check bool) what true (expected = actual)

let test_fig3_parallel_is_bit_identical () =
  let spec = Workload.Figures.fig3 () in
  let serial = Workload.Figures.run spec in
  match Workload.Figures.run_all ~domains:2 [ spec ] with
  | [ (_, pooled) ] ->
    check_payloads "fig3 CSV payloads"
      (Workload.Csv.result_strings serial)
      (Workload.Csv.result_strings pooled);
    check_summary "fig3 summaries"
      (Workload.Figures.summarize spec serial)
      (Workload.Figures.summarize spec pooled)
  | _ -> Alcotest.fail "expected exactly one result"

let test_sweep_parallel_is_bit_identical () =
  let serial = Workload.Sweeps.selector () in
  let pooled =
    match List.assoc_opt "selector variant" (Workload.Sweeps.jobs ()) with
    | Some jobs -> Workload.Pool.map ~domains:2 jobs
    | None -> Alcotest.fail "selector sweep group missing"
  in
  Alcotest.(check int) "same cardinality" (List.length serial) (List.length pooled);
  List.iter2
    (fun (a : Workload.Sweeps.point) (b : Workload.Sweeps.point) ->
      Alcotest.(check string) "label" a.Workload.Sweeps.label b.Workload.Sweeps.label;
      Alcotest.(check bool)
        (Printf.sprintf "point %s identical" a.Workload.Sweeps.label)
        true (a = b))
    serial pooled

let test_replication_parallel_matches_serial () =
  let spec = Workload.Figures.fig5 () in
  let seeds = [ 1; 2; 3 ] in
  let serial = Workload.Replication.replicate_figure ~domains:1 ~seeds spec in
  let pooled = Workload.Replication.replicate_figure ~domains:3 ~seeds spec in
  Alcotest.(check bool) "replication stats identical" true (serial = pooled)

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "empty" `Quick test_map_empty;
          Alcotest.test_case "submission order" `Quick
            test_map_preserves_submission_order;
          Alcotest.test_case "exception propagation" `Quick
            test_map_propagates_exceptions;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "duplicate labels rejected" `Quick
            test_run_scenarios_rejects_duplicate_labels;
          Alcotest.test_case "stream depends only on label" `Quick
            test_scenario_stream_depends_only_on_label;
          Alcotest.test_case "engine reuse matches fresh" `Quick
            test_engine_reuse_matches_fresh_engines;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fig3 parallel = serial" `Slow
            test_fig3_parallel_is_bit_identical;
          Alcotest.test_case "selector sweep parallel = serial" `Quick
            test_sweep_parallel_is_bit_identical;
          Alcotest.test_case "replication parallel = serial" `Quick
            test_replication_parallel_matches_serial;
        ] );
    ]
