(* Tests for the project linter (tools/lint): one accepting and one
   rejecting fixture per rule L1-L6, waiver handling, parse errors, and
   statistical properties of the Sim.Rng determinism substrate the
   linter funnels all randomness through. *)

module Lint = Corelite_lint.Lint

(* ------------------------------------------------------------------ *)
(* Fixture plumbing: each case materializes a tiny source tree under a
   scratch directory so path-scoped rules (lib/ only, the rng.ml
   allowlist) see realistic paths. *)

let fixture_root =
  Filename.concat (Filename.get_temp_dir_name ()) "corelite-lint-fixtures"

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let rec mkdir_p path =
  if not (Sys.file_exists path) then (
    mkdir_p (Filename.dirname path);
    Sys.mkdir path 0o755)

let fixture_counter = ref 0

(* [fixture files] writes [files] (relative path, content) under a
   fresh scratch root and returns the root. *)
let fixture files =
  incr fixture_counter;
  let root = Filename.concat fixture_root (string_of_int !fixture_counter) in
  remove_tree root;
  List.iter
    (fun (rel, content) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content))
    files;
  root

let lint_one rel content =
  let root = fixture [ (rel, content) ] in
  Lint.lint_file (Filename.concat root rel)

let rules vs = List.map (fun v -> v.Lint.rule) vs

let check_rules what expected vs =
  Alcotest.(check (list string))
    what
    (List.map Lint.rule_name expected)
    (List.map Lint.rule_name (rules vs))

(* ------------------------------------------------------------------ *)
(* L1: determinism *)

let test_l1_flags_stdlib_random () =
  let vs = lint_one "lib/foo.ml" "let draw () = Random.int 5\n" in
  check_rules "Random banned" [ Lint.L1_determinism ] vs;
  match vs with
  | [ v ] ->
    Alcotest.(check int) "line" 1 v.Lint.line;
    Alcotest.(check bool) "mentions Sim.Rng" true
      (String.length v.Lint.message > 0)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_l1_flags_wall_clock_and_random_hashtbl () =
  let vs =
    lint_one "bin/run.ml"
      "let t () = Unix.gettimeofday ()\nlet h = Hashtbl.create ~random:true 16\n"
  in
  check_rules "wall clock and seeded hashtbl"
    [ Lint.L1_determinism; Lint.L1_determinism ]
    vs

let test_l1_allows_rng_module () =
  (* lib/sim/rng.ml is the one sanctioned owner of raw randomness. *)
  let vs = lint_one "lib/sim/rng.ml" "let draw () = Random.int 5\n" in
  check_rules "allowlisted" [] vs

let test_l1_flags_domain_outside_pool () =
  (* The Domain ban is not lib-scoped: an executable sharding work by
     hand would be just as nondeterministic. *)
  let vs =
    lint_one "bin/run.ml"
      "let go f = Domain.spawn f\nlet n () = Domain.recommended_domain_count ()\n"
  in
  check_rules "Domain banned outside the pool"
    [ Lint.L1_determinism; Lint.L1_determinism ]
    vs

let test_l1_allows_domain_in_pool () =
  (* lib/workload/pool.ml is the one sanctioned owner of parallelism. *)
  let vs =
    lint_one "lib/workload/pool.ml"
      "let n () = Domain.recommended_domain_count ()\nlet go f = Domain.spawn f\n"
  in
  check_rules "pool allowlisted" [] vs

let test_l1_waiver_comment () =
  let vs =
    lint_one "lib/foo.ml"
      "(* lint: determinism-ok -- startup banner only *)\nlet t () = Sys.time ()\n"
  in
  check_rules "waived on previous line" [] vs

(* ------------------------------------------------------------------ *)
(* L2: float equality *)

let test_l2_flags_float_literal_equality () =
  let vs = lint_one "lib/foo.ml" "let is_idle r = r = 0.\n" in
  check_rules "float equality" [ Lint.L2_float_equality ] vs

let test_l2_accepts_int_equality_and_tolerance () =
  let vs =
    lint_one "lib/foo.ml"
      "let same_id a b = a = b + 0\nlet near a b = Float.abs (a -. b) <= 1e-9\n"
  in
  check_rules "ints and tolerated floats pass" [] vs

let test_l2_waiver_comment () =
  let vs =
    lint_one "lib/foo.ml"
      "let is_sentinel r = r = 0. (* lint: float-eq-ok -- exact sentinel *)\n"
  in
  check_rules "same-line waiver" [] vs

(* ------------------------------------------------------------------ *)
(* L3: logging hygiene *)

let test_l3_flags_printing_in_lib () =
  let vs = lint_one "lib/foo.ml" "let hello () = print_endline \"hi\"\n" in
  check_rules "printing in a library" [ Lint.L3_logging ] vs

let test_l3_allows_printing_in_bin () =
  let vs = lint_one "bin/main.ml" "let hello () = print_endline \"hi\"\n" in
  check_rules "executables may print" [] vs

let test_l3_flags_stdout_in_lib () =
  (* Pool jobs must return payloads; grabbing the channels directly in
     lib/ is how output ends up interleaved across workers. *)
  let vs =
    lint_one "lib/foo.ml"
      "let dump s = output_string stdout s\nlet warn s = output_string stderr s\n"
  in
  (* [output_string] itself now also trips L8 — the two rules guard
     different things (terminal hygiene vs filesystem ownership) and
     both apply to a raw channel write. *)
  check_rules "raw channels in a library"
    [ Lint.L3_logging; Lint.L8_telemetry; Lint.L3_logging; Lint.L8_telemetry ]
    vs

let test_l3_allows_stdout_in_bin () =
  let vs = lint_one "bin/main.ml" "let dump s = output_string stdout s\n" in
  check_rules "executables may use the channels" [] vs

(* ------------------------------------------------------------------ *)
(* L4: interface coverage *)

let test_l4_flags_missing_mli () =
  let root = fixture [ ("lib/foo.ml", "let x = 1\n") ] in
  check_rules "missing mli" [ Lint.L4_mli_coverage ] (Lint.mli_coverage ~roots:[ root ])

let test_l4_accepts_covered_and_waived () =
  let root =
    fixture
      [
        ("lib/foo.ml", "let x = 1\n");
        ("lib/foo.mli", "val x : int\n");
        ("lib/gen.ml", "(* lint: mli-ok -- generated *)\nlet y = 2\n");
      ]
  in
  check_rules "covered or waived" [] (Lint.mli_coverage ~roots:[ root ])

(* ------------------------------------------------------------------ *)
(* L5: unsafe escape hatches *)

let test_l5_flags_obj_magic_and_exit_call () =
  let vs =
    lint_one "lib/foo.ml" "let coerce x = Obj.magic x\nlet die () = exit 1\n"
  in
  check_rules "Obj.magic and exit call" [ Lint.L5_unsafe; Lint.L5_unsafe ] vs

let test_l5_allows_exit_as_variable () =
  (* A bare [exit] identifier is a fine name for a flow's exit core. *)
  let vs = lint_one "lib/foo.ml" "let route entry exit = entry + exit\n" in
  check_rules "exit as a plain variable" [] vs

(* ------------------------------------------------------------------ *)
(* L6: Stdlib.Queue confined out of the hot path *)

let test_l6_flags_queue_in_hot_path () =
  let vs =
    lint_one "lib/net/foo.ml"
      "let q = Queue.create ()\nlet n = Stdlib.Queue.length q\n"
  in
  check_rules "Queue in lib/net" [ Lint.L6_hot_queue; Lint.L6_hot_queue ] vs;
  let vs = lint_one "lib/sim/foo.ml" "module Q = Queue\n" in
  check_rules "module alias in lib/sim" [ Lint.L6_hot_queue ] vs

let test_l6_allows_queue_elsewhere () =
  (* Setup/reporting code off the per-packet path may still use Queue. *)
  let vs = lint_one "lib/corelite/agg.ml" "let q = Queue.create ()\n" in
  check_rules "Queue outside the hot path" [] vs;
  let vs = lint_one "bin/run.ml" "let q = Queue.create ()\n" in
  check_rules "Queue in an executable" [] vs

let test_l6_waiver () =
  let vs =
    lint_one "lib/net/foo.ml"
      "(* lint: queue-ok -- cold setup path *)\nlet q = Queue.create ()\n"
  in
  check_rules "waived" [] vs

(* ------------------------------------------------------------------ *)
(* L7: fault injection confined to Net.Fault *)

let test_l7_flags_loss_coin_in_packet_path () =
  let vs =
    lint_one "lib/net/mylink.ml"
      "let lossy rng pkt = if Sim.Rng.bernoulli rng 0.1 then None else Some pkt\n"
  in
  check_rules "ad-hoc loss coin in lib/net" [ Lint.L7_fault_inject ] vs;
  let vs =
    lint_one "lib/corelite/mycore.ml"
      "let drop t = Rng.bernoulli t.rng t.p\n"
  in
  check_rules "ad-hoc loss coin in lib/corelite" [ Lint.L7_fault_inject ] vs

let test_l7_allows_fault_module_and_elsewhere () =
  (* lib/net/fault.ml is the one sanctioned injector... *)
  let vs =
    lint_one "lib/net/fault.ml" "let lose st p = Sim.Rng.bernoulli st.rng p\n"
  in
  check_rules "Net.Fault owns the coins" [] vs;
  (* ...and the rule only covers the packet path: csfq's probabilistic
     drop and workload/test code are someone else's algorithm. *)
  let vs = lint_one "lib/csfq/core.ml" "let d t p = Sim.Rng.bernoulli t.rng p\n" in
  check_rules "lib/csfq out of scope" [] vs;
  let vs = lint_one "bin/run.ml" "let d rng = Sim.Rng.bernoulli rng 0.5\n" in
  check_rules "executables out of scope" [] vs

let test_l7_waiver () =
  let vs =
    lint_one "lib/net/myqdisc.ml"
      "(* lint: fault-ok -- RED's own early-drop coin *)\n\
       let early rng p = Sim.Rng.bernoulli rng p\n"
  in
  check_rules "waived algorithmic coin" [] vs

(* ------------------------------------------------------------------ *)
(* L8: telemetry leaves lib/ as returned payloads *)

let test_l8_flags_channel_writes_in_lib () =
  let vs =
    lint_one "lib/workload/dump.ml"
      "let dump path s =\n\
      \  let oc = open_out path in\n\
      \  output_string oc s;\n\
      \  close_out oc\n"
  in
  check_rules "open_out + output_string in lib/"
    [ Lint.L8_telemetry; Lint.L8_telemetry ]
    vs;
  let vs =
    lint_one "lib/sim/exp.ml" "let f oc = Printf.fprintf oc \"%d\" 1\n"
  in
  check_rules "Printf.fprintf in lib/" [ Lint.L8_telemetry ] vs;
  let vs =
    lint_one "lib/net/exp.ml"
      "let f path s = Out_channel.with_open_text path (fun oc -> ignore (oc, s))\n"
  in
  check_rules "Out_channel in lib/" [ Lint.L8_telemetry ] vs

let test_l8_allows_formatters_and_executables () =
  (* pp functions print to a caller-supplied formatter — that is the
     sanctioned channel out of a library. *)
  let vs =
    lint_one "lib/workload/pp.ml"
      "let pp ppf x = Format.fprintf ppf \"%d\" x\n"
  in
  check_rules "Format.fprintf to a formatter" [] vs;
  let vs =
    lint_one "bin/run.ml"
      "let dump path s =\n\
      \  let oc = open_out path in\n\
      \  output_string oc s;\n\
      \  close_out oc\n"
  in
  check_rules "executables own the filesystem" [] vs

let test_l8_waiver () =
  let vs =
    lint_one "lib/workload/legacy.ml"
      "let w path s =\n\
      \  let oc = open_out path (* lint: trace-ok -- sanctioned writer *) in\n\
      \  output_string oc s (* lint: trace-ok *)\n"
  in
  check_rules "waived writer" [] vs

(* ------------------------------------------------------------------ *)
(* L9: arrival-process sampling confined to lib/workload *)

let test_l9_flags_samplers_outside_workload () =
  let vs =
    lint_one "lib/net/mysource.ml"
      "let gap rng = Sim.Rng.exponential rng ~mean:2.\n\
       let size rng = Rng.pareto rng ~shape:1.8 ~mean:100.\n"
  in
  check_rules "samplers in lib/net" [ Lint.L9_arrival; Lint.L9_arrival ] vs;
  let vs =
    lint_one "lib/corelite/myedge.ml"
      "let jitter t = Sim.Rng.exponential t.rng ~mean:0.1\n"
  in
  check_rules "sampler in lib/corelite" [ Lint.L9_arrival ] vs

let test_l9_allows_workload_rng_and_outside_lib () =
  (* lib/workload is the sanctioned generator home... *)
  let vs =
    lint_one "lib/workload/myarrivals.ml"
      "let gap rng peak = Sim.Rng.exponential rng ~mean:(1. /. peak)\n"
  in
  check_rules "lib/workload owns the samplers" [] vs;
  (* ...lib/sim/rng.ml defines them, and non-lib code (tests probing
     sampler statistics, experiment drivers) is out of scope. *)
  let vs =
    lint_one "lib/sim/rng.ml" "let exponential t ~mean = -. mean *. log 0.5\n" in
  check_rules "definition site allowlisted" [] vs;
  let vs =
    lint_one "test/probe.ml" "let x rng = Sim.Rng.pareto rng ~shape:2. ~mean:1.\n"
  in
  check_rules "tests out of scope" [] vs

let test_l9_waiver () =
  let vs =
    lint_one "lib/net/myonoff.ml"
      "(* lint: churn-ok -- hold times of an already-arrived source *)\n\
       let hold rng = Sim.Rng.exponential rng ~mean:1.\n"
  in
  check_rules "waived consumer" [] vs

(* ------------------------------------------------------------------ *)
(* Parse errors and the directory walker *)

let test_parse_error_reported () =
  let vs = lint_one "lib/broken.ml" "let let let\n" in
  check_rules "syntax error surfaces" [ Lint.Parse_error ] vs;
  Alcotest.(check bool) "parse errors cannot be waived" true
    (Lint.waiver_token Lint.Parse_error = None)

let test_parse_error_location () =
  (* A lexer error (unterminated comment) raises outside the parser's
     Syntaxerr path; the report must still carry the compiler's
     location — the comment opener on line 2 — not a line-1 default. *)
  let vs = lint_one "lib/broken.ml" "let x = 1\n(* never closed\nlet y = 2\n" in
  check_rules "lexer error surfaces" [ Lint.Parse_error ] vs;
  match vs with
  | [ v ] -> Alcotest.(check int) "compiler location, not line 1" 2 v.Lint.line
  | _ -> Alcotest.fail "expected exactly one violation"

let test_lint_paths_walks_and_sorts () =
  let root =
    fixture
      [
        ("lib/b.ml", "let r () = Random.bool ()\n");
        ("lib/b.mli", "val r : unit -> bool\n");
        ("lib/a.ml", "let hello () = print_endline \"hi\"\n");
        ("lib/a.mli", "val hello : unit -> unit\n");
      ]
  in
  let vs = Lint.lint_paths [ root ] in
  check_rules "both files, file order" [ Lint.L3_logging; Lint.L1_determinism ] vs;
  Alcotest.(check bool) "sorted by file" true
    (match vs with
    | [ a; b ] ->
      Filename.basename a.Lint.file = "a.ml" && Filename.basename b.Lint.file = "b.ml"
    | _ -> false)

let test_report_format () =
  let vs = lint_one "lib/foo.ml" "let draw () = Random.int 5\n" in
  let text = Format.asprintf "%a" Lint.report vs in
  Alcotest.(check bool) "file:line:col: [RULE] message" true
    (match vs with
    | [ v ] ->
      let prefix = Printf.sprintf "%s:1:" v.Lint.file in
      String.starts_with ~prefix text
      && (let re = "[L1/determinism]" in
          let rec contains i =
            i + String.length re <= String.length text
            && (String.sub text i (String.length re) = re || contains (i + 1))
          in
          contains 0)
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Sim.Rng statistical properties: the linter forces all randomness
   through Sim.Rng, so its uniformity is part of the determinism
   story. *)

let prop_rng_int_bias_free =
  QCheck.Test.make ~name:"Rng.int is bias-free over small bounds" ~count:30
    QCheck.(pair small_nat (int_range 2 8))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let draws = 2000 * bound in
      let counts = Array.make bound 0 in
      for _ = 1 to draws do
        let v = Sim.Rng.int rng bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int draws /. float_of_int bound in
      Array.for_all
        (fun c ->
          let dev = Float.abs (float_of_int c -. expected) /. expected in
          dev < 0.12)
        counts)

let prop_rng_split_independent =
  QCheck.Test.make ~name:"Rng.split streams are independent" ~count:50
    QCheck.small_nat
    (fun seed ->
      let parent = Sim.Rng.create seed in
      let left = Sim.Rng.split parent in
      let right = Sim.Rng.split parent in
      let stream rng = List.init 64 (fun _ -> Sim.Rng.bits64 rng) in
      let l = stream left and r = stream right and p = stream parent in
      (* The three streams never collide element-wise, and sibling
         streams agree on (essentially) no position. *)
      let agreements a b =
        List.fold_left2 (fun n x y -> if Int64.equal x y then n + 1 else n) 0 a b
      in
      agreements l r = 0 && agreements l p = 0 && agreements r p = 0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [
      ( "l1_determinism",
        [
          Alcotest.test_case "flags Random" `Quick test_l1_flags_stdlib_random;
          Alcotest.test_case "flags clock + random hashtbl" `Quick
            test_l1_flags_wall_clock_and_random_hashtbl;
          Alcotest.test_case "allows lib/sim/rng.ml" `Quick test_l1_allows_rng_module;
          Alcotest.test_case "flags Domain outside pool" `Quick
            test_l1_flags_domain_outside_pool;
          Alcotest.test_case "allows Domain in pool" `Quick
            test_l1_allows_domain_in_pool;
          Alcotest.test_case "waiver comment" `Quick test_l1_waiver_comment;
        ] );
      ( "l2_float_equality",
        [
          Alcotest.test_case "flags float literal" `Quick
            test_l2_flags_float_literal_equality;
          Alcotest.test_case "accepts ints + tolerance" `Quick
            test_l2_accepts_int_equality_and_tolerance;
          Alcotest.test_case "waiver comment" `Quick test_l2_waiver_comment;
        ] );
      ( "l3_logging",
        [
          Alcotest.test_case "flags printing in lib" `Quick test_l3_flags_printing_in_lib;
          Alcotest.test_case "allows printing in bin" `Quick
            test_l3_allows_printing_in_bin;
          Alcotest.test_case "flags stdout/stderr in lib" `Quick
            test_l3_flags_stdout_in_lib;
          Alcotest.test_case "allows stdout in bin" `Quick
            test_l3_allows_stdout_in_bin;
        ] );
      ( "l4_mli_coverage",
        [
          Alcotest.test_case "flags missing mli" `Quick test_l4_flags_missing_mli;
          Alcotest.test_case "accepts covered + waived" `Quick
            test_l4_accepts_covered_and_waived;
        ] );
      ( "l5_unsafe",
        [
          Alcotest.test_case "flags Obj.magic + exit call" `Quick
            test_l5_flags_obj_magic_and_exit_call;
          Alcotest.test_case "allows exit variable" `Quick
            test_l5_allows_exit_as_variable;
        ] );
      ( "l6_hot_queue",
        [
          Alcotest.test_case "flags Queue in hot path" `Quick
            test_l6_flags_queue_in_hot_path;
          Alcotest.test_case "allows Queue elsewhere" `Quick
            test_l6_allows_queue_elsewhere;
          Alcotest.test_case "waiver" `Quick test_l6_waiver;
        ] );
      ( "l7_fault_inject",
        [
          Alcotest.test_case "flags loss coin in packet path" `Quick
            test_l7_flags_loss_coin_in_packet_path;
          Alcotest.test_case "allows Net.Fault + out-of-scope" `Quick
            test_l7_allows_fault_module_and_elsewhere;
          Alcotest.test_case "waiver" `Quick test_l7_waiver;
        ] );
      ( "L8",
        [
          Alcotest.test_case "flags channel writes in lib" `Quick
            test_l8_flags_channel_writes_in_lib;
          Alcotest.test_case "allows formatters + executables" `Quick
            test_l8_allows_formatters_and_executables;
          Alcotest.test_case "waiver" `Quick test_l8_waiver;
        ] );
      ( "l9_arrival",
        [
          Alcotest.test_case "flags samplers outside workload" `Quick
            test_l9_flags_samplers_outside_workload;
          Alcotest.test_case "allows workload + rng + non-lib" `Quick
            test_l9_allows_workload_rng_and_outside_lib;
          Alcotest.test_case "waiver" `Quick test_l9_waiver;
        ] );
      ( "driver",
        [
          Alcotest.test_case "parse error" `Quick test_parse_error_reported;
          Alcotest.test_case "parse error location" `Quick
            test_parse_error_location;
          Alcotest.test_case "walk + sort" `Quick test_lint_paths_walks_and_sorts;
          Alcotest.test_case "report format" `Quick test_report_format;
        ] );
      ( "rng", [ qt prop_rng_int_bias_free; qt prop_rng_split_independent ] );
    ]
