(* Tests for the typed static-analysis pass (tools/typelint): one
   accepting and one rejecting fixture per rule T1-T3, waiver handling,
   cmt read errors, and a self-check that the shipped lib/ tree is
   clean. Fixtures are real OCaml compiled to .cmt at test time with
   ocamlc, because the pass reads Typedtree, not sources. *)

module Typelint = Corelite_typelint.Typelint

(* ------------------------------------------------------------------ *)
(* Fixture plumbing: each case materializes a tiny source tree under a
   scratch directory and compiles it *from the fixture root*, so the
   sourcefile recorded in the .cmt carries the lib/... components the
   path-scoped rules key on. *)

let fixture_root =
  Filename.concat (Filename.get_temp_dir_name ()) "corelite-typelint-fixtures"

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let rec mkdir_p path =
  if not (Sys.file_exists path) then (
    mkdir_p (Filename.dirname path);
    Sys.mkdir path 0o755)

let fixture_counter = ref 0

let fixture files =
  incr fixture_counter;
  let root = Filename.concat fixture_root (string_of_int !fixture_counter) in
  remove_tree root;
  List.iter
    (fun (rel, content) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc content))
    files;
  root

(* Compile [rel] inside [root]; warnings are off — fixtures isolate one
   construct each and unused-value noise is irrelevant. *)
let compile root rel =
  let cmd =
    Printf.sprintf "cd %s && %s" (Filename.quote root)
      (Filename.quote_command "ocamlc" [ "-w"; "-a"; "-c"; "-bin-annot"; rel ])
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture %s failed to compile" rel;
  Filename.concat root (Filename.chop_extension rel ^ ".cmt")

let typelint_one rel content =
  let root = fixture [ (rel, content) ] in
  Typelint.check_cmt (compile root rel)

let check_rules what expected vs =
  Alcotest.(check (list string))
    what
    (List.map Typelint.rule_name expected)
    (List.map (fun v -> Typelint.rule_name v.Typelint.rule) vs)

(* ------------------------------------------------------------------ *)
(* T1: zero-alloc on [@corelite.hot] functions *)

let test_t1_flags_closure () =
  (* The ISSUE's acceptance demo: adding a closure allocation inside a
     hot function must fail the pass. *)
  let vs =
    typelint_one "lib/net/fix.ml"
      "let[@corelite.hot] spawn x =\n\
      \  let f = fun () -> x + 1 in\n\
      \  f ()\n"
  in
  check_rules "closure in hot body" [ Typelint.T1_alloc ] vs;
  match vs with
  | [ v ] -> Alcotest.(check int) "on the closure's line" 2 v.Typelint.line
  | _ -> Alcotest.fail "expected exactly one violation"

let test_t1_flags_constructor_and_tuple () =
  let vs =
    typelint_one "lib/net/fix.ml"
      "let[@corelite.hot] wrap x = Some x\nlet[@corelite.hot] pair x = (x, x)\n"
  in
  check_rules "Some and a tuple" [ Typelint.T1_alloc; Typelint.T1_alloc ] vs

let test_t1_flags_banned_calls () =
  let vs =
    typelint_one "lib/net/fix.ml"
      "let[@corelite.hot] label n = string_of_int n\n\
       let[@corelite.hot] grow xs = List.map succ xs\n"
  in
  check_rules "string churn and List.map"
    [ Typelint.T1_alloc; Typelint.T1_alloc ]
    vs

let test_t1_flags_partial_application () =
  let vs =
    typelint_one "lib/net/fix.ml"
      "let add3 a b c = a + b + c\nlet[@corelite.hot] part x = add3 x 1\n"
  in
  check_rules "partial application" [ Typelint.T1_alloc ] vs

let test_t1_allows_full_application_returning_function () =
  (* The Event_queue.pop_exn shape: a *full* application whose
     instantiated result happens to be a function returns an existing
     closure, it does not build one. Judging by the result type alone
     would flag this. *)
  let vs =
    typelint_one "lib/net/fix.ml"
      "let get (r : 'a ref) = !r\n\
       let[@corelite.hot] run (r : (int -> int) ref) x = (get r) x\n"
  in
  check_rules "payload-returning full application" [] vs

let test_t1_float_boxing () =
  (* A float argument instantiating a type variable boxes; an int does
     not. All-float records store flat, mixed records box the store. *)
  let vs =
    typelint_one "lib/net/fix.ml"
      "let sink _ = ()\n\
       let[@corelite.hot] leak v = sink (v +. 1.)\n\
       let[@corelite.hot] ok v = sink (v + 1)\n"
  in
  check_rules "float into polymorphic context" [ Typelint.T1_alloc ] vs;
  let vs =
    typelint_one "lib/net/fix.ml"
      "type mixed = { mutable rate : float; id : int }\n\
       let[@corelite.hot] setr (m : mixed) v = m.rate <- v\n"
  in
  check_rules "mixed-record float store" [ Typelint.T1_alloc ] vs;
  let vs =
    typelint_one "lib/net/fix.ml"
      "type flat = { mutable avg : float; mutable last : float }\n\
       let[@corelite.hot] upd (e : flat) v = e.avg <- 0.9 *. e.avg +. v;\n\
      \  e.last <- v\n"
  in
  check_rules "all-float record stores flat" [] vs

let test_t1_accepts_clean_hot_body () =
  let vs =
    typelint_one "lib/net/fix.ml"
      "type acc = { mutable total : int; mutable count : int }\n\
       let[@corelite.hot] note (a : acc) v =\n\
      \  a.total <- a.total + v;\n\
      \  a.count <- a.count + 1\n\
       let[@corelite.hot] bump (a : int array) i = a.(i) <- a.(i) + 1\n"
  in
  check_rules "mutating ints and array slots is free" [] vs

let test_t1_skips_error_paths_and_unannotated () =
  (* failwith applications and assert bodies are not steady state, and
     an unannotated function may allocate freely. *)
  let vs =
    typelint_one "lib/net/fix.ml"
      "let[@corelite.hot] guard x =\n\
      \  if x < 0 then failwith (string_of_int x);\n\
      \  assert (Some x <> None);\n\
      \  x\n\
       let cold x = Some (x, x)\n"
  in
  check_rules "error paths and cold code are exempt" [] vs

let test_t1_waiver () =
  let vs =
    typelint_one "lib/net/fix.ml"
      "let[@corelite.hot] wrap x =\n\
      \  Some x (* lint: alloc-ok -- same-line waiver *)\n\
       let[@corelite.hot] wrap2 x =\n\
      \  (* lint: alloc-ok -- previous-line waiver *)\n\
      \  Some x\n"
  in
  check_rules "waived on same and previous line" [] vs

(* ------------------------------------------------------------------ *)
(* T2: module-level mutable state under lib/ *)

let test_t2_flags_module_state () =
  let vs =
    typelint_one "lib/foo/state.ml"
      "let total = ref 0\n\
       let tbl : (int, int) Hashtbl.t = Hashtbl.create 16\n\
       type cell = { mutable v : int }\n\
       let c = { v = 0 }\n"
  in
  check_rules "ref, Hashtbl and a mutable record"
    [ Typelint.T2_domain; Typelint.T2_domain; Typelint.T2_domain ]
    vs

let test_t2_flags_hidden_creation_by_type () =
  (* Creation hidden behind a call is caught by the binding's type. *)
  let vs =
    typelint_one "lib/foo/state.ml"
      "let make_table () : (int, int) Hashtbl.t = Hashtbl.create 8\n\
       let shared = make_table ()\n"
  in
  check_rules "type-based fallback" [ Typelint.T2_domain ] vs

let test_t2_allows_atomic_dls_and_per_instance () =
  (* The ISSUE's other acceptance demo, inverted: Atomic state is the
     sanctioned form — downgrading it to a plain ref is what fails. *)
  let vs =
    typelint_one "lib/foo/state.ml"
      "let hits = Atomic.make 0\n\
       let slot = Domain.DLS.new_key (fun () -> 0)\n\
       let fresh () = let c = ref 0 in incr c; !c\n"
  in
  check_rules "Atomic, DLS and per-call state pass" [] vs

let test_t2_out_of_scope_outside_lib () =
  let vs = typelint_one "bin/state.ml" "let total = ref 0\n" in
  check_rules "executables own their globals" [] vs

let test_t2_waiver () =
  let vs =
    typelint_one "lib/foo/state.ml"
      "let defaults = [| 1; 2; 3 |] (* lint: domain-ok -- read-only *)\n"
  in
  check_rules "waived module state" [] vs

(* ------------------------------------------------------------------ *)
(* T3: Rng escape in the component libraries. The fixtures carry their
   own module named Rng — the rule matches the resolved ...Rng.t path
   suffix, so a standalone fixture exercises it without linking sim. *)

let fake_rng =
  "module Rng = struct\n\
  \  type t = int\n\
  \  let create (s : int) : t = s\n\
  \  let split (x : t) : t = x\n\
  \  let stream (x : t) (_label : int) : t = x\n\
   end\n"

let test_t3_flags_minting () =
  let vs =
    typelint_one "lib/net/fix.ml" (fake_rng ^ "let mint () = Rng.create 7\n")
  in
  check_rules "Rng.create in a component" [ Typelint.T3_rng ] vs

let test_t3_flags_stored_stream () =
  let vs =
    typelint_one "lib/net/fix.ml" (fake_rng ^ "let seed : Rng.t = 3\n")
  in
  check_rules "module-level Rng.t leak" [ Typelint.T3_rng ] vs

let test_t3_allows_derivation () =
  let vs =
    typelint_one "lib/net/fix.ml"
      (fake_rng
     ^ "let fork (r : Rng.t) = Rng.split r\n\
        let labelled (r : Rng.t) = Rng.stream r 9\n")
  in
  check_rules "split/stream derivation is legal" [] vs

let test_t3_out_of_scope_in_workload () =
  (* lib/workload is the scenario root: it owns seeds by design. *)
  let vs =
    typelint_one "lib/workload/fix.ml" (fake_rng ^ "let mint () = Rng.create 7\n")
  in
  check_rules "scenario roots may mint" [] vs

let test_t3_waiver () =
  let vs =
    typelint_one "lib/net/fix.ml"
      (fake_rng ^ "let mint () = Rng.create 7 (* lint: rng-ok -- test *)\n")
  in
  check_rules "waived" [] vs

(* ------------------------------------------------------------------ *)
(* Driver: read errors, the directory walker, report format *)

let test_read_error_reported () =
  let root = fixture [ ("lib/garbage.cmt", "not a cmt file\n") ] in
  let vs = Typelint.check_cmt (Filename.concat root "lib/garbage.cmt") in
  check_rules "unreadable cmt surfaces" [ Typelint.Read_error ] vs;
  Alcotest.(check bool) "read errors cannot be waived" true
    (Typelint.waiver_token Typelint.Read_error = None)

let test_check_paths_walks_and_sorts () =
  let root =
    fixture
      [
        ("lib/net/b.ml", "let[@corelite.hot] pair x = (x, x)\n");
        ("lib/net/a.ml", "let[@corelite.hot] wrap x = Some x\n");
      ]
  in
  ignore (compile root "lib/net/a.ml");
  ignore (compile root "lib/net/b.ml");
  let vs = Typelint.check_paths [ root ] in
  check_rules "both cmts, file order" [ Typelint.T1_alloc; Typelint.T1_alloc ] vs;
  Alcotest.(check bool) "sorted by file" true
    (match vs with
    | [ a; b ] ->
      Filename.basename a.Typelint.file = "a.ml"
      && Filename.basename b.Typelint.file = "b.ml"
    | _ -> false)

let test_report_format () =
  let vs = typelint_one "lib/net/fix.ml" "let[@corelite.hot] wrap x = Some x\n" in
  let text = Format.asprintf "%a" Typelint.report vs in
  Alcotest.(check bool) "file:line:col: [RULE] message" true
    (match vs with
    | [ v ] ->
      let prefix = Printf.sprintf "%s:1:" v.Typelint.file in
      String.starts_with ~prefix text
      && (let re = "[T1/zero-alloc]" in
          let rec contains i =
            i + String.length re <= String.length text
            && (String.sub text i (String.length re) = re || contains (i + 1))
          in
          contains 0)
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Self-check: the shipped lib/ tree stays clean. The test runs from
   _build/default/test with the check alias built (see test/dune), so
   the built lib tree with its .cmt files sits one level up. *)

let rec count_cmts path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc e -> count_cmts (Filename.concat path e) acc)
      acc (Sys.readdir path)
  else if
    Filename.check_suffix path ".cmt" || Filename.check_suffix path ".cmti"
  then acc + 1
  else acc

let test_lib_tree_clean () =
  (* Under `dune runtest` the cwd is _build/default/test; under
     `dune exec` it is the invocation directory. Try both shapes, and
     guard against vacuous success: an empty walk proves nothing. *)
  let candidates =
    [
      Filename.concat (Filename.dirname (Sys.getcwd ())) "lib";
      Filename.concat (Sys.getcwd ()) "_build/default/lib";
    ]
  in
  let libdir =
    match
      List.find_opt
        (fun d ->
          Sys.file_exists d && Sys.is_directory d && count_cmts d 0 > 0)
        candidates
    with
    | Some d -> d
    | None ->
      Alcotest.failf "built lib tree with .cmt files not found (tried %s)"
        (String.concat ", " candidates)
  in
  let vs = Typelint.check_paths [ libdir ] in
  Alcotest.(check (list string)) "zero unwaived violations in lib/" []
    (List.map
       (fun v ->
         Printf.sprintf "%s:%d [%s] %s" v.Typelint.file v.Typelint.line
           (Typelint.rule_name v.Typelint.rule) v.Typelint.message)
       vs)

let () =
  Alcotest.run "typelint"
    [
      ( "t1_zero_alloc",
        [
          Alcotest.test_case "flags closure" `Quick test_t1_flags_closure;
          Alcotest.test_case "flags constructor + tuple" `Quick
            test_t1_flags_constructor_and_tuple;
          Alcotest.test_case "flags banned calls" `Quick test_t1_flags_banned_calls;
          Alcotest.test_case "flags partial application" `Quick
            test_t1_flags_partial_application;
          Alcotest.test_case "allows payload-returning application" `Quick
            test_t1_allows_full_application_returning_function;
          Alcotest.test_case "float boxing" `Quick test_t1_float_boxing;
          Alcotest.test_case "accepts clean hot body" `Quick
            test_t1_accepts_clean_hot_body;
          Alcotest.test_case "skips error paths + cold code" `Quick
            test_t1_skips_error_paths_and_unannotated;
          Alcotest.test_case "waiver" `Quick test_t1_waiver;
        ] );
      ( "t2_domain_safety",
        [
          Alcotest.test_case "flags module state" `Quick test_t2_flags_module_state;
          Alcotest.test_case "flags hidden creation by type" `Quick
            test_t2_flags_hidden_creation_by_type;
          Alcotest.test_case "allows Atomic/DLS/per-instance" `Quick
            test_t2_allows_atomic_dls_and_per_instance;
          Alcotest.test_case "out of scope outside lib" `Quick
            test_t2_out_of_scope_outside_lib;
          Alcotest.test_case "waiver" `Quick test_t2_waiver;
        ] );
      ( "t3_rng_escape",
        [
          Alcotest.test_case "flags minting" `Quick test_t3_flags_minting;
          Alcotest.test_case "flags stored stream" `Quick test_t3_flags_stored_stream;
          Alcotest.test_case "allows derivation" `Quick test_t3_allows_derivation;
          Alcotest.test_case "out of scope in workload" `Quick
            test_t3_out_of_scope_in_workload;
          Alcotest.test_case "waiver" `Quick test_t3_waiver;
        ] );
      ( "driver",
        [
          Alcotest.test_case "read error" `Quick test_read_error_reported;
          Alcotest.test_case "walk + sort" `Quick test_check_paths_walks_and_sorts;
          Alcotest.test_case "report format" `Quick test_report_format;
        ] );
      ( "self_check",
        [ Alcotest.test_case "lib/ tree clean" `Quick test_lib_tree_clean ] );
    ]
