(* Tests for the weighted CSFQ baseline: rate estimation, fair-share
   estimation, probabilistic dropping, relabelling, the loss-driven
   edge agent, and end-to-end convergence. *)

let check_float = Alcotest.(check (float 1e-9))

let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Rate_estimator *)

let test_estimator_rejects_bad_k () =
  Alcotest.check_raises "k = 0"
    (Invalid_argument "Rate_estimator.create: k must be positive") (fun () ->
      ignore (Csfq.Rate_estimator.create ~k:0.))

let test_estimator_converges_to_constant_rate () =
  let e = Csfq.Rate_estimator.create ~k:0.1 in
  (* 100 packets/s for 2 s: far longer than K, so the estimate must be
     within a percent of the true rate. *)
  let rate = ref 0. in
  for i = 1 to 200 do
    rate := Csfq.Rate_estimator.update e ~now:(float_of_int i /. 100.) ~amount:1.
  done;
  check_float_eps 1. "converged to 100/s" 100. !rate

let test_estimator_tracks_rate_change () =
  let e = Csfq.Rate_estimator.create ~k:0.1 in
  for i = 1 to 100 do
    ignore (Csfq.Rate_estimator.update e ~now:(float_of_int i /. 100.) ~amount:1.)
  done;
  (* Slow down to 10/s; within 1 s (10 K) the estimate must follow. *)
  let rate = ref 0. in
  for i = 1 to 10 do
    rate := Csfq.Rate_estimator.update e ~now:(1. +. (float_of_int i /. 10.)) ~amount:1.
  done;
  check_float_eps 2. "tracked down to 10/s" 10. !rate

let test_estimator_simultaneous_arrivals () =
  let e = Csfq.Rate_estimator.create ~k:0.5 in
  ignore (Csfq.Rate_estimator.update e ~now:1. ~amount:1.);
  let before = Csfq.Rate_estimator.value e in
  ignore (Csfq.Rate_estimator.update e ~now:1. ~amount:1.);
  check_float "T -> 0 limit adds amount/K" (before +. 2.) (Csfq.Rate_estimator.value e)

let test_estimator_read_decays () =
  let e = Csfq.Rate_estimator.create ~k:0.1 in
  for i = 1 to 100 do
    ignore (Csfq.Rate_estimator.update e ~now:(float_of_int i /. 100.) ~amount:1.)
  done;
  let live = Csfq.Rate_estimator.value e in
  let after_silence = Csfq.Rate_estimator.read e ~now:2. in
  Alcotest.(check bool) "decayed" true (after_silence < live /. 100.);
  check_float "no data reads zero" 0.
    (Csfq.Rate_estimator.read (Csfq.Rate_estimator.create ~k:1.) ~now:5.)

(* ------------------------------------------------------------------ *)
(* Core *)

(* A single link C1 -> C2 with CSFQ logic; packets are injected directly
   with chosen labels and drained at D. *)
let core_fixture ?(params = Csfq.Params.default) ?(bandwidth = 4_000_000.) () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let c1 = Net.Topology.add_node topology ~kind:Net.Node.Core "C1" in
  let c2 = Net.Topology.add_node topology ~kind:Net.Node.Core "C2" in
  let link =
    Net.Topology.add_link topology ~src:c1 ~dst:c2 ~bandwidth ~delay:0.001
      ~qdisc:(Net.Qdisc.droptail ~capacity:40)
  in
  let delivered = ref 0 in
  Net.Node.set_sink c2 ~flow:1 (fun _ -> incr delivered);
  let core = Csfq.Core.attach ~params ~rng:(Sim.Rng.create 7) link in
  (engine, link, core, delivered)

let inject engine link ~rate ~label ~until =
  let seq = ref 0 in
  let h =
    Sim.Engine.every engine ~period:(1. /. rate) (fun () ->
        incr seq;
        let pkt =
          Net.Packet.make ~id:!seq ~flow:1 ~created:(Sim.Engine.now engine) ()
        in
        pkt.Net.Packet.label <- label;
        Net.Link.send link pkt)
  in
  ignore (Sim.Engine.schedule_at engine ~time:until (fun () -> Sim.Engine.cancel h))

let test_core_alpha_unset_initially () =
  let _, _, core, _ = core_fixture () in
  Alcotest.(check bool) "no alpha" true (Csfq.Core.alpha core = None);
  Alcotest.(check bool) "not congested" false (Csfq.Core.congested core)

let test_core_uncongested_tracks_max_label () =
  let engine, link, core, _ = core_fixture () in
  (* 100 pkt/s on a 500 pkt/s link: uncongested; alpha becomes the max
     label seen in an estimation window. *)
  inject engine link ~rate:100. ~label:25. ~until:3.;
  Sim.Engine.run_until engine 3.;
  (match Csfq.Core.alpha core with
  | Some alpha -> check_float_eps 1e-6 "alpha = max label" 25. alpha
  | None -> Alcotest.fail "alpha still unset");
  Alcotest.(check int) "nothing dropped early" 0 (Csfq.Core.early_drops core)

let test_core_congestion_detected_and_drops () =
  let engine, link, core, delivered = core_fixture () in
  (* 800 pkt/s offered on a 500 pkt/s link. *)
  inject engine link ~rate:800. ~label:800. ~until:5.;
  Sim.Engine.run_until engine 5.5;
  Alcotest.(check bool) "congested seen" true (Csfq.Core.arrival_rate core > 500.);
  Alcotest.(check bool) "early drops happened" true (Csfq.Core.early_drops core > 0);
  (* Goodput cannot exceed capacity. *)
  Alcotest.(check bool) "goodput bounded" true (!delivered <= 2800)

let test_core_drop_probability_proportional () =
  (* In steady congestion the accepted fraction approximates
     alpha / label. *)
  let engine, link, core, delivered = core_fixture () in
  inject engine link ~rate:1000. ~label:1000. ~until:10.;
  Sim.Engine.run_until engine 10.;
  let accepted = float_of_int !delivered /. 10. in
  ignore core;
  (* One flow at 1000 on a 500 link: accepted rate must approach 500. *)
  check_float_eps 60. "accepted near capacity" 500. accepted

let test_core_relabels_to_alpha () =
  let engine, link, core, _ = core_fixture () in
  (* Establish alpha via an uncongested window. *)
  inject engine link ~rate:100. ~label:20. ~until:2.;
  Sim.Engine.run_until engine 2.;
  let alpha = match Csfq.Core.alpha core with Some a -> a | None -> 0. in
  (* A packet labelled above alpha that survives must leave with
     label = alpha. *)
  let relabelled = ref [] in
  let seen = ref 0 in
  (* Tap the sink side: observe the packet after the hook ran. *)
  let pkt = Net.Packet.make ~id:9999 ~flow:1 ~created:2. () in
  pkt.Net.Packet.label <- alpha *. 100.;
  (* Send repeatedly until one survives the probabilistic filter. *)
  let rec try_send n =
    if n > 200 then ()
    else begin
      let p = Net.Packet.make ~id:n ~flow:1 ~created:2. () in
      p.Net.Packet.label <- alpha *. 100.;
      Net.Link.send link p;
      if p.Net.Packet.label <= alpha +. 1e-9 then begin
        relabelled := p.Net.Packet.label :: !relabelled;
        incr seen
      end
      else try_send (n + 1)
    end
  in
  try_send 1;
  Alcotest.(check bool) "a surviving packet was relabelled" true (!seen > 0);
  List.iter (fun l -> check_float_eps 1e-6 "label clamped" alpha l) !relabelled

let test_core_overflow_penalty () =
  let engine, link, core, _ = core_fixture () in
  inject engine link ~rate:100. ~label:20. ~until:2.;
  Sim.Engine.run_until engine 2.;
  let alpha0 = match Csfq.Core.alpha core with Some a -> a | None -> 0. in
  Csfq.Core.note_overflow core;
  (match Csfq.Core.alpha core with
  | Some a -> check_float "3% decay" (alpha0 *. 0.97) a
  | None -> Alcotest.fail "alpha lost");
  (* With no alpha the penalty is a no-op. *)
  let _, _, fresh, _ = core_fixture () in
  Csfq.Core.note_overflow fresh;
  Alcotest.(check bool) "still unset" true (Csfq.Core.alpha fresh = None)

let test_core_attach_rejects_hooked_link () =
  let _, link, _, _ = core_fixture () in
  Alcotest.check_raises "already hooked"
    (Invalid_argument "Csfq.Core.attach: link C1->C2 already has hooks") (fun () ->
      ignore (Csfq.Core.attach ~params:Csfq.Params.default ~rng:(Sim.Rng.create 8) link))

let test_core_detach () =
  let _, link, core, _ = core_fixture () in
  Csfq.Core.detach core;
  Alcotest.(check bool) "hooks removed" true (link.Net.Link.hooks = None)

let test_core_unlabelled_packets_pass () =
  let engine, link, core, delivered = core_fixture () in
  (* Unlabelled (negative label) packets are never dropped early. *)
  inject engine link ~rate:100. ~label:(-1.) ~until:2.;
  Sim.Engine.run_until engine 2.5;
  Alcotest.(check int) "no early drops" 0 (Csfq.Core.early_drops core);
  Alcotest.(check bool) "delivered" true (!delivered > 150)

(* ------------------------------------------------------------------ *)
(* Edge agent *)

let edge_fixture ?(weight = 2.) () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n kind name = Net.Topology.add_node topology ~kind name in
  let e = n Net.Node.Edge "E" and c1 = n Net.Node.Core "C1" in
  let d = n Net.Node.Edge "D" in
  let link ~src ~dst =
    Net.Topology.add_link topology ~src ~dst ~bandwidth:4_000_000. ~delay:0.04
      ~qdisc:(Net.Qdisc.droptail ~capacity:40)
  in
  let l1 = link ~src:e ~dst:c1 in
  let _l2 = link ~src:c1 ~dst:d in
  let flow = Net.Flow.make ~id:1 ~weight ~path:[ e; c1; d ] in
  let agent = Csfq.Edge.create ~params:Csfq.Params.default ~topology ~flow () in
  (engine, agent, l1)

let test_edge_labels_with_normalized_rate () =
  let engine, agent, l1 = edge_fixture ~weight:2. () in
  let checked = ref 0 in
  l1.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival =
          (fun p ->
            incr checked;
            (* Label must be the flow's estimated rate / weight: after a
               few packets the estimate tracks the paced rate, so the
               label stays within a factor of the actual. *)
            if p.Net.Packet.label <= 0. then Alcotest.fail "unlabelled packet";
            Net.Link.Pass);
        on_queue_change = (fun _ -> ());
      };
  Csfq.Edge.start agent;
  Sim.Engine.run_until engine 10.;
  Alcotest.(check bool) "packets checked" true (!checked > 10);
  (* After 10 s the source rate is stable enough that the current label
     approximates rate/weight. *)
  check_float_eps 3. "label near rate/weight"
    (Csfq.Edge.rate agent /. 2.)
    (Csfq.Edge.current_label agent)

let test_edge_losses_throttle () =
  let engine, agent, _ = edge_fixture () in
  Csfq.Edge.start agent;
  Sim.Engine.run_until engine 7.;
  let rate0 = Csfq.Edge.rate agent in
  for _ = 1 to 4 do
    Csfq.Edge.note_loss agent
  done;
  Sim.Engine.run_until engine (Sim.Engine.now engine +. 0.55);
  check_float "beta per loss" (rate0 -. 4.) (Csfq.Edge.rate agent);
  Alcotest.(check int) "loss counter" 4 (Csfq.Edge.losses agent)

let test_edge_loss_in_slow_start_halves () =
  let engine, agent, _ = edge_fixture () in
  Csfq.Edge.start agent;
  Sim.Engine.run_until engine 2.6;
  check_float "slow-start rate" 4. (Csfq.Edge.rate agent);
  Csfq.Edge.note_loss agent;
  check_float "halved" 2. (Csfq.Edge.rate agent)

let test_edge_loss_ignored_when_stopped () =
  let engine, agent, _ = edge_fixture () in
  Csfq.Edge.start agent;
  Sim.Engine.run_until engine 1.;
  Csfq.Edge.stop agent;
  Csfq.Edge.note_loss agent;
  Alcotest.(check int) "not counted" 0 (Csfq.Edge.losses agent)

(* ------------------------------------------------------------------ *)
(* End-to-end *)

let run_bottleneck ?(duration = 180.) ?(floors = []) ~weights n =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights n in
  let schedule = List.init n (fun i -> (0., Workload.Runner.Start (i + 1))) in
  Workload.Runner.run ~scheme:(Workload.Runner.Csfq Csfq.Params.default) ~network
    ~floors ~schedule ~duration ()

let test_converges_weighted () =
  let result = run_bottleneck ~weights:(fun i -> float_of_int i) 3 in
  (* Sending rates overshoot slightly (losses supply the feedback), but
     weighted fairness of the normalized rates must hold. *)
  Alcotest.(check bool) "weighted fair" true
    (Workload.Runner.jain result ~from:150. ~until:180. > 0.99);
  let goodput i =
    Option.value ~default:0.
      (Sim.Timeseries.window_mean
         (List.assoc i result.Workload.Runner.goodput_series)
         ~from:150. ~until:180.)
  in
  check_float_eps 15. "goodput flow 1" 83.3 (goodput 1);
  check_float_eps 25. "goodput flow 2" 166.7 (goodput 2);
  check_float_eps 30. "goodput flow 3" 250. (goodput 3)

let test_csfq_drops_packets () =
  let result = run_bottleneck ~weights:(fun _ -> 1.) 4 ~duration:60. in
  Alcotest.(check bool) "csfq drops under congestion" true
    (result.Workload.Runner.core_drops > 0);
  Alcotest.(check bool) "mostly early (probabilistic) drops" true
    (result.Workload.Runner.early_drops > result.Workload.Runner.core_drops / 2)

let test_unresponsive_flow_policed () =
  (* CSFQ's headline property: a firehose that ignores congestion still
     only receives its fair share of goodput. Flow 1 is a blaster at
     450 pkt/s; flows 2 and 3 adapt. Fair share is ~166 each. *)
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 3 in
  let schedule = [ (0., Workload.Runner.Start 2); (0., Workload.Runner.Start 3) ] in
  (* Hand-made unresponsive source for flow 1: labels honestly (the
     ingress edge estimates its rate) but never slows down. *)
  let flow1 = Workload.Network.flow network 1 in
  let estimator = Csfq.Rate_estimator.create ~k:0.1 in
  let delivered1 = ref 0 in
  Net.Topology.install_path network.Workload.Network.topology ~flow:1
    flow1.Net.Flow.path ~sink:(fun _ -> incr delivered1);
  let seq = ref 0 in
  ignore
    (Sim.Engine.every engine ~period:(1. /. 450.) (fun () ->
         incr seq;
         let now = Sim.Engine.now engine in
         let rate = Csfq.Rate_estimator.update estimator ~now ~amount:1. in
         let pkt = Net.Packet.make ~id:!seq ~flow:1 ~created:now () in
         pkt.Net.Packet.label <- rate /. flow1.Net.Flow.weight;
         Net.Node.receive (Net.Flow.ingress flow1) pkt));
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Csfq Csfq.Params.default) ~network
      ~schedule ~duration:120. ()
  in
  ignore result;
  (* The blaster's goodput over the whole run must stay near fair share
     once alpha settles; allow the startup transient. *)
  let goodput1 = float_of_int !delivered1 /. 120. in
  Alcotest.(check bool) "firehose policed to ~fair share" true
    (goodput1 < 260. && goodput1 > 120.)

let test_floor_respected_goodput () =
  let result = run_bottleneck ~weights:(fun _ -> 1.) 4 ~floors:[ (1, 200.) ] ~duration:120. in
  let m = Workload.Runner.mean_rate result ~flow:1 ~from:90. ~until:120. in
  Alcotest.(check bool) "contracted flow keeps its floor" true (m >= 195.)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "csfq"
    [
      ( "rate_estimator",
        [
          Alcotest.test_case "bad k" `Quick test_estimator_rejects_bad_k;
          Alcotest.test_case "constant rate" `Quick test_estimator_converges_to_constant_rate;
          Alcotest.test_case "tracks change" `Quick test_estimator_tracks_rate_change;
          Alcotest.test_case "simultaneous arrivals" `Quick
            test_estimator_simultaneous_arrivals;
          Alcotest.test_case "read decays" `Quick test_estimator_read_decays;
        ] );
      ( "core",
        [
          Alcotest.test_case "alpha unset initially" `Quick test_core_alpha_unset_initially;
          Alcotest.test_case "uncongested max label" `Quick
            test_core_uncongested_tracks_max_label;
          Alcotest.test_case "congestion and drops" `Quick
            test_core_congestion_detected_and_drops;
          Alcotest.test_case "drop probability" `Quick test_core_drop_probability_proportional;
          Alcotest.test_case "relabels to alpha" `Quick test_core_relabels_to_alpha;
          Alcotest.test_case "overflow penalty" `Quick test_core_overflow_penalty;
          Alcotest.test_case "attach rejects hooked" `Quick
            test_core_attach_rejects_hooked_link;
          Alcotest.test_case "detach" `Quick test_core_detach;
          Alcotest.test_case "unlabelled pass" `Quick test_core_unlabelled_packets_pass;
        ] );
      ( "edge",
        [
          Alcotest.test_case "labels normalized rate" `Quick
            test_edge_labels_with_normalized_rate;
          Alcotest.test_case "losses throttle" `Quick test_edge_losses_throttle;
          Alcotest.test_case "slow-start loss halves" `Quick
            test_edge_loss_in_slow_start_halves;
          Alcotest.test_case "loss when stopped" `Quick test_edge_loss_ignored_when_stopped;
        ] );
      ( "end_to_end",
        [
          Alcotest.test_case "weighted convergence" `Slow test_converges_weighted;
          Alcotest.test_case "drops under congestion" `Slow test_csfq_drops_packets;
          Alcotest.test_case "unresponsive flow policed" `Slow
            test_unresponsive_flow_policed;
          Alcotest.test_case "floor respected" `Slow test_floor_respected_goodput;
        ] );
    ]
