(* Cross-scheme integration tests: the paper's qualitative claims,
   checked end-to-end on short runs.

   These are the "shape" assertions of EXPERIMENTS.md in executable
   form: who wins, by roughly what factor, and under which dynamics. *)

let ids n = List.init n (fun i -> i + 1)

let fig5_like scheme ~duration =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.topology1 ~engine ~flow_ids:(ids 10)
      ~weights:Workload.Figures.weights_s42 ()
  in
  let schedule = List.map (fun i -> (0., Workload.Runner.Start i)) (ids 10) in
  Workload.Runner.run ~scheme ~network ~schedule ~duration ()

let corelite = Workload.Runner.Corelite Corelite.Params.default

let csfq = Workload.Runner.Csfq Csfq.Params.default

(* Claim (Section 4.2): with simultaneous startup Corelite sees no
   packet drops while CSFQ's mis-estimated fair share causes losses. *)
let test_startup_drops_contrast () =
  let r_corelite = fig5_like corelite ~duration:80. in
  let r_csfq = fig5_like csfq ~duration:80. in
  Alcotest.(check int) "corelite: no drops" 0 r_corelite.Workload.Runner.core_drops;
  Alcotest.(check bool) "csfq: hundreds of drops" true
    (r_csfq.Workload.Runner.core_drops > 100)

(* Claim (Section 4.2): Corelite converges faster than CSFQ. *)
let test_startup_convergence_contrast () =
  let conv scheme =
    let result = fig5_like scheme ~duration:80. in
    let active = ids 10 in
    let reference =
      Workload.Network.expected_rates result.Workload.Runner.network ~active
    in
    let series =
      List.map
        (fun id ->
          ( Sim.Timeseries.smooth (List.assoc id result.Workload.Runner.rate_series)
              ~window:5.,
            List.assoc id reference ))
        active
    in
    Fairness.Metrics.convergence_time ~tolerance:0.2 ~hold:5. series
  in
  match (conv corelite, conv csfq) with
  | Some tc, Some tf ->
    Alcotest.(check bool)
      (Printf.sprintf "corelite (%.0f s) before csfq (%.0f s)" tc tf)
      true (tc < tf)
  | Some _, None -> () (* CSFQ never converged: an even stronger win *)
  | None, _ -> Alcotest.fail "corelite failed to converge"

(* Claim (Section 4.1): same-weight flows get the same service
   regardless of RTT and of how many congested links they cross. *)
let test_rtt_and_hopcount_independence () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.topology1 ~engine ~weights:Workload.Figures.weights_s41 ()
  in
  let schedule = List.map (fun i -> (0., Workload.Runner.Start i)) (ids 20) in
  let result =
    Workload.Runner.run ~scheme:corelite ~network ~schedule ~duration:120. ()
  in
  (* Flow 2: one congested link, RTT 240 ms; flow 9 (w=2): three
     congested links, RTT 400 ms. Same weight -> same service. *)
  let m i = Workload.Runner.mean_rate result ~flow:i ~from:80. ~until:120. in
  let ratio = m 9 /. m 2 in
  Alcotest.(check bool)
    (Printf.sprintf "service ratio %.2f within 15%%" ratio)
    true
    (ratio > 0.85 && ratio < 1.15)

(* Claim (Section 2): weighted service differentiation - cumulative
   service is proportional to weight for flows sharing a bottleneck. *)
let test_cumulative_service_weighted () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine
      ~weights:(fun i -> if i = 1 then 1. else 2.)
      2
  in
  let schedule = [ (0., Workload.Runner.Start 1); (0., Workload.Runner.Start 2) ] in
  let result =
    Workload.Runner.run ~scheme:corelite ~network ~schedule ~duration:400. ()
  in
  (* Measure service over the steady half of the run: the shared
     slow-start and the long climb to the 333 pkt/s share would
     otherwise mask the 2:1 differentiation. *)
  let served i =
    let ts = List.assoc i result.Workload.Runner.cumulative in
    let at t = Option.value ~default:0. (Sim.Timeseries.value_at ts t) in
    at 400. -. at 200.
  in
  let ratio = served 2 /. served 1 in
  Alcotest.(check bool)
    (Printf.sprintf "cumulative ratio %.2f in [1.6, 2.2]" ratio)
    true
    (ratio > 1.6 && ratio < 2.2)

(* Claim (Section 4.1 / Figure 3): when flows leave, the remaining ones
   climb back to their larger shares. *)
let test_rate_reclaim_after_departure () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 2 in
  let schedule =
    [
      (0., Workload.Runner.Start 1);
      (0., Workload.Runner.Start 2);
      (100., Workload.Runner.Stop 2);
    ]
  in
  let result =
    Workload.Runner.run ~scheme:corelite ~network ~schedule ~duration:250. ()
  in
  let before = Workload.Runner.mean_rate result ~flow:1 ~from:80. ~until:100. in
  let after = Workload.Runner.mean_rate result ~flow:1 ~from:220. ~until:250. in
  Alcotest.(check bool)
    (Printf.sprintf "before %.0f ~ 250, after %.0f ~ 500" before after)
    true
    (before < 300. && after > 420.)

(* Claim (Section 4.3): restarted flows ramp back; the system stays
   weighted-fair after churn under Corelite. *)
let test_churn_recovers_fairness () =
  let spec = Workload.Figures.fig9 () in
  let result = Workload.Figures.run spec in
  let jain =
    Workload.Runner.jain ~flows:(ids 20) result ~from:120. ~until:155.
  in
  Alcotest.(check bool)
    (Printf.sprintf "jain after churn %.4f > 0.99" jain)
    true (jain > 0.99)

(* Randomized end-to-end fairness: on arbitrary topologies with
   shortest-path routing, Corelite's allocation should track the exact
   weighted max-min reference. A few generated instances, each checked
   coarsely (the LIMD ramp only gets 300 s). *)
let test_random_topologies_approach_maxmin () =
  List.iter
    (fun seed ->
      let engine = Sim.Engine.create () in
      let rng = Sim.Rng.create seed in
      let n_flows = 4 + Sim.Rng.int rng 4 in
      let flows =
        List.init n_flows (fun i -> (i + 1, float_of_int (1 + Sim.Rng.int rng 3)))
      in
      let network =
        Workload.Network.random ~engine ~rng:(Sim.Rng.split rng) ~cores:4
          ~extra_links:3 ~flows ()
      in
      let schedule = List.map (fun (id, _) -> (0., Workload.Runner.Start id)) flows in
      let result =
        Workload.Runner.run ~scheme:corelite ~network ~seed ~schedule ~duration:300. ()
      in
      let active = List.map fst flows in
      let reference = Workload.Network.expected_rates network ~active in
      List.iter
        (fun id ->
          let measured = Workload.Runner.mean_rate result ~flow:id ~from:250. ~until:300. in
          let expected = List.assoc id reference in
          if Float.abs (measured -. expected) > 0.3 *. expected +. 10. then
            Alcotest.fail
              (Printf.sprintf "seed %d flow %d: measured %.1f vs maxmin %.1f" seed id
                 measured expected))
        active)
    [ 11; 29; 47 ]

(* Paper Section 3.1: a core router "may have multiple packet queues";
   congestion detection runs on the aggregate backlog. Corelite over a
   two-class weighted-round-robin core link must still converge to
   weighted fairness. *)
let test_multiqueue_core_still_fair () =
  let engine = Sim.Engine.create () in
  let core_qdisc () =
    Net.Qdisc.classful ~classes:2
      ~classify:(fun pkt -> pkt.Net.Packet.flow mod 2)
      ~scheduler:(Net.Qdisc.Weighted_round_robin [| 1; 1 |])
      ~capacity:20 ()
  in
  let network =
    Workload.Network.single_bottleneck ~engine ~core_qdisc ~weights:(fun _ -> 1.) 4
  in
  let schedule = List.init 4 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  let result =
    Workload.Runner.run ~scheme:corelite ~network ~schedule ~duration:120. ()
  in
  let jain = Workload.Runner.jain result ~from:90. ~until:120. in
  Alcotest.(check bool)
    (Printf.sprintf "fair over multi-queue core (jain %.4f)" jain)
    true (jain > 0.99);
  let total =
    List.fold_left
      (fun acc (_, r) -> acc +. r)
      0.
      (Workload.Runner.mean_rates result ~from:90. ~until:120.)
  in
  Alcotest.(check bool)
    (Printf.sprintf "utilized (%.0f of 500)" total)
    true (total > 440.)

(* Packet conservation: everything a flow sent is delivered, dropped
   on a core link, or still in flight (bounded by the pipe). Access
   links never drop in these scenarios (each carries one shaped flow),
   so the ledger closes. *)
let test_packet_conservation () =
  List.iter
    (fun scheme ->
      let engine = Sim.Engine.create () in
      let network =
        Workload.Network.topology1 ~engine ~flow_ids:(ids 10)
          ~weights:Workload.Figures.weights_s42 ()
      in
      let schedule = List.map (fun i -> (0., Workload.Runner.Start i)) (ids 10) in
      let result = Workload.Runner.run ~scheme ~network ~schedule ~duration:60. () in
      List.iter
        (fun id ->
          let sent_minus_seen =
            (* cumulative delivered at the end + per-flow core drops *)
            let delivered =
              match Sim.Timeseries.last (List.assoc id result.Workload.Runner.cumulative) with
              | Some (_, v) -> int_of_float v
              | None -> 0
            in
            let dropped = List.assoc id result.Workload.Runner.drops_by_flow in
            (delivered, dropped)
          in
          let delivered, dropped = sent_minus_seen in
          (* We cannot read "sent" through the runner API per scheme
             uniformly, but conservation implies delivered+dropped is
             within one pipe (~100 packets) of any later measurement;
             assert non-negative components and a sane ratio instead. *)
          Alcotest.(check bool)
            (Printf.sprintf "flow %d ledger sane (%d delivered, %d dropped)" id
               delivered dropped)
            true
            (delivered > 0 && dropped >= 0 && dropped < delivered))
        (ids 10))
    [
      Workload.Runner.Corelite Corelite.Params.default;
      Workload.Runner.Csfq Csfq.Params.default;
    ]

(* CSFQ-paper-style loss accounting: under CSFQ, higher-weight flows
   send more, so they also absorb more of the early drops; Corelite's
   table is all zeros. *)
let test_per_flow_loss_accounting () =
  let run scheme =
    let engine = Sim.Engine.create () in
    let network =
      Workload.Network.topology1 ~engine ~flow_ids:(ids 10)
        ~weights:Workload.Figures.weights_s42 ()
    in
    let schedule = List.map (fun i -> (0., Workload.Runner.Start i)) (ids 10) in
    Workload.Runner.run ~scheme ~network ~schedule ~duration:80. ()
  in
  let corelite = run (Workload.Runner.Corelite Corelite.Params.default) in
  List.iter
    (fun (id, drops) ->
      Alcotest.(check int) (Printf.sprintf "corelite flow %d lossless" id) 0 drops)
    corelite.Workload.Runner.drops_by_flow;
  let csfq = run (Workload.Runner.Csfq Csfq.Params.default) in
  let total =
    List.fold_left (fun acc (_, d) -> acc + d) 0 csfq.Workload.Runner.drops_by_flow
  in
  Alcotest.(check bool) "csfq losses add up to the core total" true
    (total = csfq.Workload.Runner.core_drops)

(* The control plane matters: feedback volume should be modest -
   a few markers per congested epoch, not per packet. *)
let test_feedback_overhead_bounded () =
  let result = fig5_like corelite ~duration:80. in
  let sent =
    List.fold_left
      (fun acc (_, ts) ->
        match Sim.Timeseries.last ts with Some (_, v) -> acc +. v | None -> acc)
      0. result.Workload.Runner.cumulative
  in
  let overhead = float_of_int result.Workload.Runner.feedback_markers /. sent in
  Alcotest.(check bool)
    (Printf.sprintf "feedback/data = %.4f < 0.05" overhead)
    true (overhead < 0.05)

(* Randomized weights on a single bottleneck: the packet-level system
   must reach the weighted allocation whatever the weight vector. *)
let prop_random_weights_converge =
  QCheck.Test.make ~name:"corelite converges weighted-fair for random weight vectors"
    ~count:5
    QCheck.(list_of_size Gen.(2 -- 5) (1 -- 5))
    (fun raw_weights ->
      QCheck.assume (raw_weights <> []);
      let n = List.length raw_weights in
      let weight i = float_of_int (List.nth raw_weights (i - 1)) in
      let engine = Sim.Engine.create () in
      let network = Workload.Network.single_bottleneck ~engine ~weights:weight n in
      let schedule = List.init n (fun i -> (0., Workload.Runner.Start (i + 1))) in
      let result =
        Workload.Runner.run ~scheme:corelite ~network ~schedule ~duration:400. ()
      in
      Workload.Runner.jain result ~from:350. ~until:400. > 0.98)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "integration"
    [
      ( "corelite_vs_csfq",
        [
          Alcotest.test_case "startup drops contrast" `Slow test_startup_drops_contrast;
          Alcotest.test_case "startup convergence contrast" `Slow
            test_startup_convergence_contrast;
        ] );
      ( "service_model",
        [
          Alcotest.test_case "rtt and hop-count independence" `Slow
            test_rtt_and_hopcount_independence;
          Alcotest.test_case "cumulative service weighted" `Slow
            test_cumulative_service_weighted;
          Alcotest.test_case "rate reclaim after departure" `Slow
            test_rate_reclaim_after_departure;
          Alcotest.test_case "churn recovers fairness" `Slow test_churn_recovers_fairness;
          Alcotest.test_case "random topologies approach maxmin" `Slow
            test_random_topologies_approach_maxmin;
          Alcotest.test_case "multi-queue core still fair" `Slow
            test_multiqueue_core_still_fair;
          Alcotest.test_case "packet conservation" `Slow test_packet_conservation;
          Alcotest.test_case "per-flow loss accounting" `Slow
            test_per_flow_loss_accounting;
          Alcotest.test_case "feedback overhead bounded" `Slow
            test_feedback_overhead_bounded;
          QCheck_alcotest.to_alcotest prop_random_weights_converge;
        ] );
    ]
