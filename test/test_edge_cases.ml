(* Edge-case and robustness tests across layers: boundary parameters,
   degenerate scenarios, restart/cancel interleavings, and invariants
   that the main suites exercise only implicitly. *)

let check_float = Alcotest.(check (float 1e-9))

let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Engine interleavings *)

let test_engine_cancel_recurring_during_tick () =
  (* A recurring timer cancelling itself from inside its own action. *)
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let handle = ref None in
  let tick () =
    incr count;
    if !count = 3 then Option.iter Sim.Engine.cancel !handle
  in
  handle := Some (Sim.Engine.every e ~period:1. tick);
  Sim.Engine.run e;
  Alcotest.(check int) "stopped itself after 3" 3 !count

let test_engine_zero_delay_event () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1. (fun () ->
         log := "outer" :: !log;
         ignore (Sim.Engine.schedule e ~delay:0. (fun () -> log := "inner" :: !log));
         log := "outer-end" :: !log));
  Sim.Engine.run e;
  (* The zero-delay event runs after the current event completes. *)
  Alcotest.(check (list string)) "order" [ "outer"; "outer-end"; "inner" ]
    (List.rev !log);
  check_float "clock unchanged by zero delay" 1. (Sim.Engine.now e)

let test_engine_run_until_exact_boundary () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule_at e ~time:5. (fun () -> incr fired));
  Sim.Engine.run_until e 5.;
  Alcotest.(check int) "inclusive boundary" 1 !fired

let test_engine_many_cancellations () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let handles =
    List.init 100 (fun i ->
        Sim.Engine.schedule e ~delay:(float_of_int i +. 1.) (fun () -> incr fired))
  in
  List.iteri (fun i h -> if i mod 2 = 0 then Sim.Engine.cancel h) handles;
  Sim.Engine.run e;
  Alcotest.(check int) "half fired" 50 !fired

(* ------------------------------------------------------------------ *)
(* Source boundary behaviour *)

let test_source_floor_above_ss_thresh_starts_linear () =
  let engine = Sim.Engine.create () in
  let params = { Net.Source.default_params with Net.Source.floor = 100. } in
  let src =
    Net.Source.create ~engine ~params ~emit:(fun ~now:_ ~rate:_ -> ())
      ~collect:(fun () -> 0)
      ()
  in
  Net.Source.start src;
  check_float "starts at the floor" 100. (Net.Source.rate src);
  Alcotest.(check bool) "skips slow start" true (Net.Source.phase src = Net.Source.Linear)

let test_source_double_start_is_reset () =
  let engine = Sim.Engine.create () in
  let src =
    Net.Source.create ~engine ~params:Net.Source.default_params
      ~emit:(fun ~now:_ ~rate:_ -> ())
      ~collect:(fun () -> 0)
      ()
  in
  Net.Source.start src;
  Sim.Engine.run_until engine 3.2;
  Alcotest.(check bool) "grew" true (Net.Source.rate src > 1.);
  Net.Source.start src;
  check_float "second start resets" 1. (Net.Source.rate src);
  (* No runaway duplicate timers: rate after 1 s is exactly doubled
     once, not twice. *)
  Sim.Engine.run_until engine 4.25;
  check_float "single doubling timer" 2. (Net.Source.rate src)

let test_source_stop_is_idempotent () =
  let engine = Sim.Engine.create () in
  let src =
    Net.Source.create ~engine ~params:Net.Source.default_params
      ~emit:(fun ~now:_ ~rate:_ -> ())
      ~collect:(fun () -> 0)
      ()
  in
  Net.Source.start src;
  Net.Source.stop src;
  Net.Source.stop src;
  Alcotest.(check bool) "still stopped" false (Net.Source.running src)

let test_source_inactive_freezes_adaptation () =
  let engine = Sim.Engine.create () in
  let params =
    { Net.Source.default_params with Net.Source.initial_rate = 50.; ss_thresh = 32. }
  in
  let src =
    Net.Source.create ~engine ~params
      ~emit:(fun ~now:_ ~rate:_ -> ())
      ~collect:(fun () -> 0)
      ()
  in
  Net.Source.start src;
  Net.Source.set_active src false;
  Sim.Engine.run_until engine 10.;
  check_float "no probing while idle" 50. (Net.Source.rate src);
  Net.Source.set_active src true;
  Sim.Engine.run_until engine 12.;
  Alcotest.(check bool) "probing resumes" true (Net.Source.rate src > 50.)

(* ------------------------------------------------------------------ *)
(* Corelite boundary behaviour *)

let test_core_epoch_without_traffic_is_quiet () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let a = Net.Topology.add_node topology ~kind:Net.Node.Core "a" in
  let b = Net.Topology.add_node topology ~kind:Net.Node.Core "b" in
  let link =
    Net.Topology.add_link topology ~src:a ~dst:b ~bandwidth:4e6 ~delay:0.01
      ~qdisc:(Net.Qdisc.droptail ~capacity:40)
  in
  let sent = ref 0 in
  let core =
    Corelite.Core.attach ~params:Corelite.Params.default ~rng:(Sim.Rng.create 1)
      ~send_feedback:(fun _ -> incr sent)
      link
  in
  Sim.Engine.run_until engine 10.;
  Alcotest.(check int) "no feedback on an idle link" 0 !sent;
  Alcotest.(check int) "no congested epochs" 0 (Corelite.Core.congested_epochs core);
  check_float "qavg zero" 0. (Corelite.Core.last_qavg core)

let test_marker_spacing_large_weight () =
  let p = { Corelite.Params.default with Corelite.Params.k1 = 1. } in
  Alcotest.(check int) "w=10" 10 (Corelite.Params.marker_spacing p ~weight:10.);
  (* Fractional weights round to the nearest spacing. *)
  Alcotest.(check int) "w=2.4 -> 2" 2 (Corelite.Params.marker_spacing p ~weight:2.4);
  Alcotest.(check int) "w=2.6 -> 3" 3 (Corelite.Params.marker_spacing p ~weight:2.6)

let test_cache_selector_single_slot () =
  let c = Corelite.Cache_selector.create ~capacity:1 ~rng:(Sim.Rng.create 2) in
  Corelite.Cache_selector.observe c
    { Net.Packet.edge_id = 1; flow_id = 1; normalized_rate = 5. };
  Corelite.Cache_selector.observe c
    { Net.Packet.edge_id = 1; flow_id = 2; normalized_rate = 6. };
  (* Only the newest marker survives in a 1-slot cache. *)
  List.iter
    (fun m -> Alcotest.(check int) "latest only" 2 m.Net.Packet.flow_id)
    (Corelite.Cache_selector.select c ~fn:3.)

let test_stateless_selector_zero_fn_after_congestion () =
  let s =
    Corelite.Stateless_selector.create ~rav_gain:0.5 ~wav_gain:1. ~pw_cap:1.
      ~rng:(Sim.Rng.create 3)
  in
  let marker rn = { Net.Packet.edge_id = 1; flow_id = 1; normalized_rate = rn } in
  ignore (Corelite.Stateless_selector.observe s (marker 10.));
  Corelite.Stateless_selector.on_epoch s ~fn:5.;
  Alcotest.(check bool) "armed" true (Corelite.Stateless_selector.pw s > 0.);
  Corelite.Stateless_selector.on_epoch s ~fn:0.;
  check_float "disarmed" 0. (Corelite.Stateless_selector.pw s);
  Alcotest.(check int) "no feedback when disarmed" 0
    (Corelite.Stateless_selector.observe s (marker 10.))

let test_edge_zero_weight_flow_rejected () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let a = Net.Topology.add_node topology ~kind:Net.Node.Edge "a" in
  let b = Net.Topology.add_node topology ~kind:Net.Node.Edge "b" in
  ignore
    (Net.Topology.add_link topology ~src:a ~dst:b ~bandwidth:4e6 ~delay:0.01
       ~qdisc:(Net.Qdisc.droptail ~capacity:4));
  Alcotest.check_raises "flow weight" (Invalid_argument "Flow.make: weight must be positive")
    (fun () -> ignore (Net.Flow.make ~id:1 ~weight:(-1.) ~path:[ a; b ]))

let test_aggregate_submit_before_start_buffers () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  let flow = Workload.Network.flow network 1 in
  let aggregate =
    Corelite.Aggregate.create ~params:Corelite.Params.default
      ~topology:network.Workload.Network.topology ~flow ()
  in
  let got = ref 0 in
  Corelite.Aggregate.set_consumer aggregate ~micro:1 (fun _ -> incr got);
  (* Submissions before start sit in the ingress queue... *)
  for seq = 1 to 3 do
    ignore
      (Corelite.Aggregate.submit aggregate
         (Net.Packet.make ~id:seq ~flow:1 ~micro:1 ~created:0. ()))
  done;
  Alcotest.(check int) "buffered" 3 (Corelite.Aggregate.backlog aggregate);
  (* ...and drain once the shaper starts. *)
  Corelite.Aggregate.start aggregate;
  Sim.Engine.run_until engine 20.;
  Alcotest.(check int) "drained after start" 3 !got

(* ------------------------------------------------------------------ *)
(* CSFQ boundary behaviour *)

let test_csfq_estimator_zero_gap_burst () =
  let e = Csfq.Rate_estimator.create ~k:0.1 in
  (* Five simultaneous arrivals: rate = 5/K by the T -> 0 limit. *)
  for _ = 1 to 5 do
    ignore (Csfq.Rate_estimator.update e ~now:1. ~amount:1.)
  done;
  check_float_eps 1e-9 "burst limit" 50. (Csfq.Rate_estimator.value e)

let test_csfq_label_preserved_when_below_alpha () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let a = Net.Topology.add_node topology ~kind:Net.Node.Core "a" in
  let b = Net.Topology.add_node topology ~kind:Net.Node.Core "b" in
  let link =
    Net.Topology.add_link topology ~src:a ~dst:b ~bandwidth:4e6 ~delay:0.001
      ~qdisc:(Net.Qdisc.droptail ~capacity:40)
  in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  let _core = Csfq.Core.attach ~params:Csfq.Params.default ~rng:(Sim.Rng.create 7) link in
  (* Establish alpha = 30 via an uncongested window of labelled traffic. *)
  let h =
    Sim.Engine.every engine ~period:0.01 (fun () ->
        let pkt =
          Net.Packet.make ~id:1 ~flow:1 ~created:(Sim.Engine.now engine) ()
        in
        pkt.Net.Packet.label <- 30.;
        Net.Link.send link pkt)
  in
  Sim.Engine.run_until engine 2.;
  Sim.Engine.cancel h;
  (* A below-alpha label passes unmodified. *)
  let pkt = Net.Packet.make ~id:2 ~flow:1 ~created:2. () in
  pkt.Net.Packet.label <- 5.;
  Net.Link.send link pkt;
  check_float "label kept" 5. pkt.Net.Packet.label

let test_plain_deployment_has_no_relabelling () =
  (* Without core logic the packets keep their edge labels end to end. *)
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  let labels = ref [] in
  let link = List.hd network.Workload.Network.core_links in
  link.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival =
          (fun p ->
            labels := p.Net.Packet.label :: !labels;
            Net.Link.Pass);
        on_queue_change = (fun _ -> ());
      };
  let d =
    Csfq.Deployment.build ~attach_cores:false ~params:Csfq.Params.default
      ~rng:(Sim.Rng.create 9) ~topology:network.Workload.Network.topology
      ~flows:(List.map (fun f -> Csfq.Deployment.spec f) network.Workload.Network.flows)
      ~core_links:[] ()
  in
  Csfq.Deployment.start_all d;
  Sim.Engine.run_until engine 10.;
  Alcotest.(check bool) "labels flow through" true
    (List.for_all (fun l -> l > 0.) !labels && !labels <> [])

(* ------------------------------------------------------------------ *)
(* Fairness solver degenerate cases *)

let test_maxmin_single_flow_takes_link () =
  let rates =
    Fairness.Maxmin.solve
      ~capacities:[ (0, 100.) ]
      ~demands:[ Fairness.Maxmin.demand ~flow:1 ~weight:3. ~links:[ 0 ] () ]
  in
  check_float "whole link" 100. (List.assoc 1 rates)

let test_maxmin_floor_equal_to_capacity () =
  let rates =
    Fairness.Maxmin.solve
      ~capacities:[ (0, 100.) ]
      ~demands:[ Fairness.Maxmin.demand ~floor:100. ~flow:1 ~weight:1. ~links:[ 0 ] () ]
  in
  check_float "floor saturates" 100. (List.assoc 1 rates)

let test_maxmin_empty_demands () =
  Alcotest.(check (list (pair int (float 0.)))) "empty" []
    (Fairness.Maxmin.solve ~capacities:[ (0, 5.) ] ~demands:[])

let test_fluid_equal_weights_split_evenly () =
  let flows =
    List.init 4 (fun i -> { Fairness.Fluid.id = i; weight = 1.; links = [ 0 ] })
  in
  let result =
    Fairness.Fluid.simulate ~capacities:[ (0, 400.) ] ~flows ~duration:600. ()
  in
  List.iter
    (fun (_, rate) -> check_float_eps 12. "even split" 100. rate)
    result.Fairness.Fluid.final

(* ------------------------------------------------------------------ *)
(* TCP corner cases *)

let test_tcp_sender_stop_cancels_rto () =
  let engine = Sim.Engine.create () in
  let sent = ref 0 in
  let sender =
    Net.Tcp.Sender.create ~engine ~flow:1 ~micro:1
      ~transmit:(fun _ -> incr sent)
      ()
  in
  Net.Tcp.Sender.start sender;
  let after_start = !sent in
  Alcotest.(check bool) "initial window sent" true (after_start >= 2);
  Net.Tcp.Sender.stop sender;
  Sim.Engine.run_until engine 30.;
  Alcotest.(check int) "no RTO retransmissions after stop" after_start !sent

let test_tcp_ack_for_nothing_is_ignored () =
  let engine = Sim.Engine.create () in
  let sender =
    Net.Tcp.Sender.create ~engine ~flow:1 ~micro:1 ~transmit:(fun _ -> ()) ()
  in
  Net.Tcp.Sender.start sender;
  let cwnd0 = Net.Tcp.Sender.cwnd sender in
  (* A duplicate ACK below anything outstanding must not break state. *)
  Net.Tcp.Sender.ack sender 0;
  Net.Tcp.Sender.ack sender 0;
  Alcotest.(check bool) "cwnd sane" true (Net.Tcp.Sender.cwnd sender >= cwnd0 -. 1e-9);
  Alcotest.(check int) "nothing acked" 0 (Net.Tcp.Sender.acked sender)

(* ------------------------------------------------------------------ *)
(* Workload odds and ends *)

let test_chain_rejects_one_core () =
  Alcotest.check_raises "one core" (Invalid_argument "Network.chain: need at least two cores")
    (fun () ->
      ignore
        (Workload.Network.chain ~engine:(Sim.Engine.create ()) ~cores:1
           ~specs:[ (1, 1., 1, 1) ]
           ()))

let test_expected_rates_empty_active () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 2 in
  Alcotest.(check (list (pair int (float 0.)))) "no active flows" []
    (Workload.Network.expected_rates network ~active:[])

let test_runner_rejects_unknown_schedule_flow () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  (* Starting an unknown flow raises when the event fires. *)
  Alcotest.check_raises "unknown flow" Not_found (fun () ->
      ignore
        (Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
           ~network
           ~schedule:[ (1., Workload.Runner.Start 9) ]
           ~duration:5. ()))

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "edge_cases"
    [
      ( "engine",
        [
          Alcotest.test_case "recurring self-cancel" `Quick
            test_engine_cancel_recurring_during_tick;
          Alcotest.test_case "zero delay" `Quick test_engine_zero_delay_event;
          Alcotest.test_case "run_until boundary" `Quick
            test_engine_run_until_exact_boundary;
          Alcotest.test_case "many cancellations" `Quick test_engine_many_cancellations;
        ] );
      ( "source",
        [
          Alcotest.test_case "floor above ss_thresh" `Quick
            test_source_floor_above_ss_thresh_starts_linear;
          Alcotest.test_case "double start" `Quick test_source_double_start_is_reset;
          Alcotest.test_case "stop idempotent" `Quick test_source_stop_is_idempotent;
          Alcotest.test_case "inactive freezes" `Quick test_source_inactive_freezes_adaptation;
        ] );
      ( "corelite",
        [
          Alcotest.test_case "idle link quiet" `Quick test_core_epoch_without_traffic_is_quiet;
          Alcotest.test_case "marker spacing extremes" `Quick test_marker_spacing_large_weight;
          Alcotest.test_case "one-slot cache" `Quick test_cache_selector_single_slot;
          Alcotest.test_case "selector disarm" `Quick
            test_stateless_selector_zero_fn_after_congestion;
          Alcotest.test_case "invalid flow weight" `Quick test_edge_zero_weight_flow_rejected;
          Alcotest.test_case "aggregate pre-start buffering" `Quick
            test_aggregate_submit_before_start_buffers;
        ] );
      ( "csfq",
        [
          Alcotest.test_case "estimator burst limit" `Quick test_csfq_estimator_zero_gap_burst;
          Alcotest.test_case "label below alpha kept" `Quick
            test_csfq_label_preserved_when_below_alpha;
          Alcotest.test_case "plain keeps labels" `Quick
            test_plain_deployment_has_no_relabelling;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "single flow" `Quick test_maxmin_single_flow_takes_link;
          Alcotest.test_case "floor at capacity" `Quick test_maxmin_floor_equal_to_capacity;
          Alcotest.test_case "empty demands" `Quick test_maxmin_empty_demands;
          Alcotest.test_case "fluid even split" `Quick test_fluid_equal_weights_split_evenly;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "stop cancels rto" `Quick test_tcp_sender_stop_cancels_rto;
          Alcotest.test_case "stray ack ignored" `Quick test_tcp_ack_for_nothing_is_ignored;
        ] );
      ( "workload",
        [
          Alcotest.test_case "chain needs two cores" `Quick test_chain_rejects_one_core;
          Alcotest.test_case "empty active set" `Quick test_expected_rates_empty_active;
          Alcotest.test_case "unknown schedule flow" `Quick
            test_runner_rejects_unknown_schedule_flow;
        ] );
    ]
