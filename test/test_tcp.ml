(* Tests for the TCP substrate and the aggregation layer: the Reno
   sender/receiver pair, on/off burst driving, the congestion estimator
   variants, and TCP micro-flows inside Corelite aggregates. *)

let check_float = Alcotest.(check (float 1e-9))

let check_float_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* A loopback harness: sender -> (delay, optional loss) -> receiver ->
   (delay) -> acks. *)

type harness = {
  engine : Sim.Engine.t;
  sender : Net.Tcp.Sender.t;
  receiver : Net.Tcp.Receiver.t;
  drop_next : bool ref;  (* drop the next transmission *)
  drop_until : float ref;  (* drop everything before this time *)
}

let make_harness ?(params = Net.Tcp.default_params) ?(delay = 0.05) () =
  let engine = Sim.Engine.create () in
  let drop_next = ref false in
  let drop_seqs = ref [] in
  let drop_until = ref 0. in
  let sender_cell = ref None in
  let send_ack ackno =
    ignore
      (Sim.Engine.schedule engine ~delay (fun () ->
           match !sender_cell with
           | Some s -> Net.Tcp.Sender.ack s ackno
           | None -> ()))
  in
  let receiver = Net.Tcp.Receiver.create ~send_ack in
  let transmit pkt =
    let seq = pkt.Net.Packet.id in
    let dropped =
      !drop_next || List.mem seq !drop_seqs || Sim.Engine.now engine < !drop_until
    in
    drop_next := false;
    drop_seqs := List.filter (fun s -> s <> seq) !drop_seqs;
    if not dropped then
      ignore
        (Sim.Engine.schedule engine ~delay (fun () ->
             Net.Tcp.Receiver.receive receiver pkt))
  in
  let sender = Net.Tcp.Sender.create ~engine ~params ~flow:1 ~micro:1 ~transmit () in
  sender_cell := Some sender;
  { engine; sender; receiver; drop_next; drop_until }

let test_tcp_in_order_transfer () =
  let engine = Sim.Engine.create () in
  let sender_cell = ref None in
  let receiver =
    Net.Tcp.Receiver.create ~send_ack:(fun ackno ->
        ignore
          (Sim.Engine.schedule engine ~delay:0.05 (fun () ->
               match !sender_cell with
               | Some s -> Net.Tcp.Sender.ack s ackno
               | None -> ())))
  in
  let sender =
    Net.Tcp.Sender.create ~engine ~flow:1 ~micro:1
      ~transmit:(fun pkt ->
        ignore
          (Sim.Engine.schedule engine ~delay:0.05 (fun () ->
               Net.Tcp.Receiver.receive receiver pkt)))
      ()
  in
  sender_cell := Some sender;
  Net.Tcp.Sender.start sender;
  Sim.Engine.run_until engine 10.;
  Net.Tcp.Sender.stop sender;
  Alcotest.(check bool) "delivered plenty" true (Net.Tcp.Receiver.delivered receiver > 100);
  Alcotest.(check int) "no retransmits on a clean path" 0
    (Net.Tcp.Sender.retransmits sender);
  Alcotest.(check int) "no timeouts" 0 (Net.Tcp.Sender.timeouts sender);
  (* Congestion avoidance added ~1 packet per 0.1 s RTT on top of the
     32-packet ssthresh over the 10 s run. *)
  Alcotest.(check bool) "cwnd grew deep into avoidance" true
    (Net.Tcp.Sender.cwnd sender > 100.);
  check_float_eps 0.02 "srtt near 2*delay" 0.1 (Net.Tcp.Sender.srtt sender)

let test_tcp_slow_start_then_avoidance () =
  let engine = Sim.Engine.create () in
  let sender_cell = ref None in
  let receiver =
    Net.Tcp.Receiver.create ~send_ack:(fun ackno ->
        ignore
          (Sim.Engine.schedule engine ~delay:0.05 (fun () ->
               match !sender_cell with
               | Some s -> Net.Tcp.Sender.ack s ackno
               | None -> ())))
  in
  let sender =
    Net.Tcp.Sender.create ~engine ~flow:1 ~micro:1
      ~transmit:(fun pkt ->
        ignore
          (Sim.Engine.schedule engine ~delay:0.05 (fun () ->
               Net.Tcp.Receiver.receive receiver pkt)))
      ()
  in
  sender_cell := Some sender;
  Net.Tcp.Sender.start sender;
  (* After one RTT in slow start the window has roughly doubled. *)
  Sim.Engine.run_until engine 0.12;
  Alcotest.(check bool) "ss grows fast" true (Net.Tcp.Sender.cwnd sender >= 4.);
  Sim.Engine.run_until engine 2.;
  Alcotest.(check bool) "crossed ssthresh into avoidance" true
    (Net.Tcp.Sender.cwnd sender >= Net.Tcp.Sender.ssthresh sender);
  Net.Tcp.Sender.stop sender

let test_tcp_fast_retransmit_on_loss () =
  let h = make_harness () in
  Net.Tcp.Sender.start h.sender;
  Sim.Engine.run_until h.engine 1.;
  let cwnd_before = Net.Tcp.Sender.cwnd h.sender in
  (* Drop exactly one future segment; dupacks must recover it without a
     timeout. *)
  h.drop_next := true;
  Sim.Engine.run_until h.engine 3.;
  Alcotest.(check bool) "retransmitted" true (Net.Tcp.Sender.retransmits h.sender >= 1);
  Alcotest.(check int) "no timeout needed" 0 (Net.Tcp.Sender.timeouts h.sender);
  Alcotest.(check bool) "window halved at some point" true
    (Net.Tcp.Sender.ssthresh h.sender <= cwnd_before);
  (* The byte stream keeps advancing after recovery. *)
  let delivered = Net.Tcp.Receiver.delivered h.receiver in
  Sim.Engine.run_until h.engine 4.;
  Alcotest.(check bool) "stream advances" true
    (Net.Tcp.Receiver.delivered h.receiver > delivered);
  Net.Tcp.Sender.stop h.sender

let test_tcp_timeout_recovers_burst_loss () =
  let params = { Net.Tcp.default_params with Net.Tcp.initial_cwnd = 4. } in
  let h = make_harness ~params () in
  Net.Tcp.Sender.start h.sender;
  Sim.Engine.run_until h.engine 0.5;
  (* Black out the path for 3 s: in-flight ACKs drain, everything new
     is lost, so only the RTO can restart the transfer. *)
  h.drop_until := 3.5;
  Sim.Engine.run_until h.engine 8.;
  Alcotest.(check bool) "timeout fired" true (Net.Tcp.Sender.timeouts h.sender >= 1);
  let delivered = Net.Tcp.Receiver.delivered h.receiver in
  Sim.Engine.run_until h.engine 12.;
  Alcotest.(check bool) "recovered and progressing" true
    (Net.Tcp.Receiver.delivered h.receiver > delivered);
  Net.Tcp.Sender.stop h.sender

let test_tcp_receiver_reorders () =
  let acks = ref [] in
  let r = Net.Tcp.Receiver.create ~send_ack:(fun a -> acks := a :: !acks) in
  let pkt seq = Net.Packet.make ~id:seq ~flow:1 ~created:0. () in
  Net.Tcp.Receiver.receive r (pkt 1);
  Net.Tcp.Receiver.receive r (pkt 3);
  (* gap at 2 *)
  Net.Tcp.Receiver.receive r (pkt 4);
  Net.Tcp.Receiver.receive r (pkt 2);
  (* fills the hole: cumulative jumps to 4 *)
  Alcotest.(check (list int)) "cumulative acks" [ 1; 1; 1; 4 ] (List.rev !acks);
  Alcotest.(check int) "delivered in order" 4 (Net.Tcp.Receiver.delivered r)

let test_tcp_duplicate_segments_harmless () =
  let acks = ref [] in
  let r = Net.Tcp.Receiver.create ~send_ack:(fun a -> acks := a :: !acks) in
  let pkt seq = Net.Packet.make ~id:seq ~flow:1 ~created:0. () in
  Net.Tcp.Receiver.receive r (pkt 1);
  Net.Tcp.Receiver.receive r (pkt 1);
  Net.Tcp.Receiver.receive r (pkt 2);
  Alcotest.(check int) "no double count" 2 (Net.Tcp.Receiver.delivered r)

(* ------------------------------------------------------------------ *)
(* Onoff *)

let test_onoff_toggles () =
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 3 in
  let states = ref [] in
  let driver =
    Net.Onoff.start ~engine ~rng ~on_mean:1. ~off_mean:1. (fun s ->
        states := (Sim.Engine.now engine, s) :: !states)
  in
  Sim.Engine.run_until engine 50.;
  Net.Onoff.stop driver;
  let transitions = List.length !states in
  Alcotest.(check bool) "many transitions (mean 1 s)" true (transitions > 20);
  (* States alternate, starting with on. *)
  let rec alternates expected = function
    | [] -> true
    | (_, s) :: rest -> s = expected && alternates (not expected) rest
  in
  Alcotest.(check bool) "alternating" true (alternates true (List.rev !states));
  Alcotest.(check int) "transition counter" transitions
    (Net.Onoff.transitions driver + 1)

let test_onoff_stop () =
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  let driver =
    Net.Onoff.start ~engine ~rng:(Sim.Rng.create 4) ~on_mean:0.5 ~off_mean:0.5
      (fun _ -> incr count)
  in
  Sim.Engine.run_until engine 5.;
  Net.Onoff.stop driver;
  let frozen = !count in
  Sim.Engine.run_until engine 20.;
  Alcotest.(check int) "no toggles after stop" frozen !count

let test_onoff_pareto_distribution () =
  let engine = Sim.Engine.create () in
  let driver =
    Net.Onoff.start ~engine ~rng:(Sim.Rng.create 8)
      ~distribution:(Net.Onoff.Pareto 1.5) ~on_mean:1. ~off_mean:1.
      (fun _ -> ())
  in
  Sim.Engine.run_until engine 200.;
  Net.Onoff.stop driver;
  (* Heavy-tailed periods still produce a plausible number of
     transitions around the mean. *)
  Alcotest.(check bool) "toggling happened" true (Net.Onoff.transitions driver > 20);
  Alcotest.check_raises "bad shape"
    (Invalid_argument "Onoff.start: Pareto shape must exceed 1") (fun () ->
      ignore
        (Net.Onoff.start ~engine ~rng:(Sim.Rng.create 9)
           ~distribution:(Net.Onoff.Pareto 1.) ~on_mean:1. ~off_mean:1.
           (fun _ -> ())))

let test_onoff_validation () =
  let engine = Sim.Engine.create () in
  let bad_means descr ~on_mean ~off_mean =
    Alcotest.check_raises descr
      (Invalid_argument "Onoff.start: means must be positive") (fun () ->
        ignore
          (Net.Onoff.start ~engine ~rng:(Sim.Rng.create 1) ~on_mean ~off_mean
             (fun _ -> ())))
  in
  bad_means "zero on_mean" ~on_mean:0. ~off_mean:1.;
  bad_means "negative off_mean" ~on_mean:1. ~off_mean:(-1.);
  (* A nan mean passes a bare [<= 0.] check and would schedule the next
     flip at a nan timestamp. *)
  bad_means "nan on_mean" ~on_mean:Float.nan ~off_mean:1.;
  bad_means "infinite off_mean" ~on_mean:1. ~off_mean:Float.infinity;
  Alcotest.check_raises "nan Pareto shape"
    (Invalid_argument "Onoff.start: Pareto shape must exceed 1") (fun () ->
      ignore
        (Net.Onoff.start ~engine ~rng:(Sim.Rng.create 1)
           ~distribution:(Net.Onoff.Pareto Float.nan) ~on_mean:1. ~off_mean:1.
           (fun _ -> ())))

(* ------------------------------------------------------------------ *)
(* Congestion estimator variants *)

let test_estimator_linear () =
  let e = Corelite.Congestion.make (Corelite.Congestion.Linear_excess 0.5) in
  check_float "below threshold" 0.
    (Corelite.Congestion.budget e ~mu:50. ~qavg:5. ~qthresh:8.);
  check_float "proportional above" 2.
    (Corelite.Congestion.budget e ~mu:50. ~qavg:12. ~qthresh:8.)

let test_estimator_ewma_smooths () =
  let e =
    Corelite.Congestion.make
      (Corelite.Congestion.Ewma_threshold { gain = 0.5; scale = 1. })
  in
  (* Establish an uncongested history... *)
  for _ = 1 to 10 do
    ignore (Corelite.Congestion.budget e ~mu:50. ~qavg:4. ~qthresh:8.)
  done;
  (* ...then a single spike is discounted by the EWMA... *)
  let spike = Corelite.Congestion.budget e ~mu:50. ~qavg:20. ~qthresh:8. in
  Alcotest.(check bool) "spike dampened" true (spike < 12.);
  (* ...but sustained congestion converges to the full excess. *)
  let budget = ref 0. in
  for _ = 1 to 20 do
    budget := Corelite.Congestion.budget e ~mu:50. ~qavg:20. ~qthresh:8.
  done;
  check_float_eps 0.1 "converges to excess" 12. !budget

let test_estimator_mm1_matches_closed_form () =
  let e = Corelite.Congestion.make (Corelite.Congestion.Mm1_cubic 0.01) in
  check_float "matches markers_needed"
    (Corelite.Congestion.markers_needed ~mu:50. ~qavg:14. ~qthresh:8. ~k:0.01)
    (Corelite.Congestion.budget e ~mu:50. ~qavg:14. ~qthresh:8.)

(* ------------------------------------------------------------------ *)
(* Aggregates *)

let aggregate_fixture () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  let flow = Workload.Network.flow network 1 in
  let aggregate =
    Corelite.Aggregate.create ~params:Corelite.Params.default
      ~topology:network.Workload.Network.topology ~flow ~queue_capacity:4 ()
  in
  (engine, network, aggregate)

let mk_micro_pkt ~seq ~micro now =
  Net.Packet.make ~id:seq ~flow:1 ~micro ~created:now ()

let test_aggregate_queue_bound () =
  let _, _, aggregate = aggregate_fixture () in
  for seq = 1 to 4 do
    Alcotest.(check bool) "accepted" true
      (Corelite.Aggregate.submit aggregate (mk_micro_pkt ~seq ~micro:1 0.))
  done;
  Alcotest.(check bool) "fifth rejected" false
    (Corelite.Aggregate.submit aggregate (mk_micro_pkt ~seq:5 ~micro:1 0.));
  Alcotest.(check int) "drop counted" 1 (Corelite.Aggregate.edge_drops aggregate);
  Alcotest.(check int) "backlog" 4 (Corelite.Aggregate.backlog aggregate);
  (* A different micro-flow has its own queue. *)
  Alcotest.(check bool) "other micro accepted" true
    (Corelite.Aggregate.submit aggregate (mk_micro_pkt ~seq:1 ~micro:2 0.))

let test_aggregate_round_robin () =
  let engine, _, aggregate = aggregate_fixture () in
  let delivered = ref [] in
  Corelite.Aggregate.set_consumer aggregate ~micro:1 (fun p ->
      delivered := (1, p.Net.Packet.id) :: !delivered);
  Corelite.Aggregate.set_consumer aggregate ~micro:2 (fun p ->
      delivered := (2, p.Net.Packet.id) :: !delivered);
  Corelite.Aggregate.start aggregate;
  (* Backlog both micro-flows: 3 packets each; service must alternate. *)
  for seq = 1 to 3 do
    ignore (Corelite.Aggregate.submit aggregate (mk_micro_pkt ~seq ~micro:1 0.));
    ignore (Corelite.Aggregate.submit aggregate (mk_micro_pkt ~seq ~micro:2 0.))
  done;
  Sim.Engine.run_until engine 30.;
  Corelite.Aggregate.stop aggregate;
  let order = List.rev !delivered in
  Alcotest.(check int) "all delivered" 6 (List.length order);
  (* Adjacent deliveries alternate between the two micro-flows. *)
  let rec alternating = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <> b && alternating rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "round robin" true (alternating order)

let test_aggregate_application_limited () =
  let engine, _, aggregate = aggregate_fixture () in
  Corelite.Aggregate.set_consumer aggregate ~micro:1 (fun _ -> ());
  Corelite.Aggregate.start aggregate;
  ignore (Corelite.Aggregate.submit aggregate (mk_micro_pkt ~seq:1 ~micro:1 0.));
  Sim.Engine.run_until engine 20.;
  (* With the backlog drained the shaper freezes instead of probing. *)
  let rate_idle = Corelite.Edge.rate (Corelite.Aggregate.edge aggregate) in
  Sim.Engine.run_until engine 40.;
  check_float "no probing while idle" rate_idle
    (Corelite.Edge.rate (Corelite.Aggregate.edge aggregate));
  Alcotest.(check int) "no stray deliveries" 0
    (Corelite.Aggregate.undeliverable aggregate)

let test_aggregate_rejects_bad_capacity () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 1 in
  let flow = Workload.Network.flow network 1 in
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Aggregate.create: queue_capacity must be positive") (fun () ->
      ignore
        (Corelite.Aggregate.create ~params:Corelite.Params.default
           ~topology:network.Workload.Network.topology ~flow ~queue_capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Tcp_workload end-to-end *)

let test_tcp_workload_weighted_aggregates () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 2
  in
  let tcp = Workload.Tcp_workload.build ~network ~micro_flows:(fun _ -> 2) () in
  Workload.Tcp_workload.start tcp;
  Sim.Engine.run_until engine 400.;
  Workload.Tcp_workload.stop tcp;
  (* Weighted differentiation across aggregates... *)
  let goodputs = Workload.Tcp_workload.aggregate_goodputs tcp in
  let g1 = float_of_int (List.assoc 1 goodputs) in
  let g2 = float_of_int (List.assoc 2 goodputs) in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate 2 gets more (%.0f vs %.0f)" g2 g1)
    true (g2 > 1.3 *. g1);
  (* ...and near-equal sharing inside an aggregate. *)
  let m1 = float_of_int (Workload.Tcp_workload.goodput tcp ~flow:2 ~micro:1) in
  let m2 = float_of_int (Workload.Tcp_workload.goodput tcp ~flow:2 ~micro:2) in
  Alcotest.(check bool)
    (Printf.sprintf "intra-aggregate fair (%.0f vs %.0f)" m1 m2)
    true
    (Float.abs (m1 -. m2) /. Float.max m1 m2 < 0.2)

(* ------------------------------------------------------------------ *)
(* Tcp_direct *)

let test_tcp_direct_weighted_csfq () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in
  let csfq_params = { Csfq.Params.default with Csfq.Params.k_link = 0.5 } in
  let tcp = Workload.Tcp_direct.build ~csfq_params ~attach_csfq:true ~network () in
  Workload.Tcp_direct.start tcp;
  Sim.Engine.run_until engine 200.;
  Workload.Tcp_direct.stop tcp;
  let g flow = float_of_int (Workload.Tcp_direct.goodput tcp ~flow) in
  Alcotest.(check bool)
    (Printf.sprintf "weighted ordering (%.0f < %.0f < %.0f)" (g 1) (g 2) (g 3))
    true
    (g 1 < g 2 && g 2 < g 3);
  Alcotest.(check bool)
    (Printf.sprintf "weighted jain %.3f" (Workload.Tcp_direct.jain tcp))
    true
    (Workload.Tcp_direct.jain tcp > 0.95)

let test_tcp_direct_droptail_no_differentiation () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in
  let tcp = Workload.Tcp_direct.build ~network () in
  Workload.Tcp_direct.start tcp;
  Sim.Engine.run_until engine 200.;
  Workload.Tcp_direct.stop tcp;
  (* Without core support, TCP shares ~equally: flow 3 gets nowhere
     near its 3x weighted share. *)
  let g flow = float_of_int (Workload.Tcp_direct.goodput tcp ~flow) in
  Alcotest.(check bool)
    (Printf.sprintf "no weighted differentiation (%.0f vs %.0f)" (g 3) (g 1))
    true
    (g 3 < 2. *. g 1);
  (* The link is well utilized regardless. *)
  let total = g 1 +. g 2 +. g 3 in
  Alcotest.(check bool) "utilized" true (total /. 200. > 350.)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "tcp_and_aggregates"
    [
      ( "tcp",
        [
          Alcotest.test_case "in-order transfer" `Quick test_tcp_in_order_transfer;
          Alcotest.test_case "slow start" `Quick test_tcp_slow_start_then_avoidance;
          Alcotest.test_case "fast retransmit" `Quick test_tcp_fast_retransmit_on_loss;
          Alcotest.test_case "timeout recovery" `Quick test_tcp_timeout_recovers_burst_loss;
          Alcotest.test_case "receiver reorders" `Quick test_tcp_receiver_reorders;
          Alcotest.test_case "duplicate segments" `Quick test_tcp_duplicate_segments_harmless;
        ] );
      ( "onoff",
        [
          Alcotest.test_case "toggles" `Quick test_onoff_toggles;
          Alcotest.test_case "stop" `Quick test_onoff_stop;
          Alcotest.test_case "pareto distribution" `Quick test_onoff_pareto_distribution;
          Alcotest.test_case "validation" `Quick test_onoff_validation;
        ] );
      ( "congestion_estimators",
        [
          Alcotest.test_case "linear" `Quick test_estimator_linear;
          Alcotest.test_case "ewma smooths" `Quick test_estimator_ewma_smooths;
          Alcotest.test_case "mm1 closed form" `Quick test_estimator_mm1_matches_closed_form;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "queue bound" `Quick test_aggregate_queue_bound;
          Alcotest.test_case "round robin" `Quick test_aggregate_round_robin;
          Alcotest.test_case "application limited" `Quick
            test_aggregate_application_limited;
          Alcotest.test_case "bad capacity" `Quick test_aggregate_rejects_bad_capacity;
        ] );
      ( "tcp_workload",
        [
          Alcotest.test_case "weighted aggregates" `Slow
            test_tcp_workload_weighted_aggregates;
        ] );
      ( "tcp_direct",
        [
          Alcotest.test_case "weighted csfq polices tcp" `Slow
            test_tcp_direct_weighted_csfq;
          Alcotest.test_case "droptail no differentiation" `Slow
            test_tcp_direct_droptail_no_differentiation;
        ] );
    ]
