(* Tests for the deployment wiring (control plane, feedback latency),
   runner options (floors, bursty flows, sampling), and CSV export
   corner cases. *)

let check_float = Alcotest.(check (float 1e-9))

let ids n = List.init n (fun i -> i + 1)

let single_bottleneck ?(n = 2) ?(weights = fun _ -> 1.) () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights n in
  (engine, network)

(* ------------------------------------------------------------------ *)
(* Corelite.Deployment *)

let corelite_deployment network =
  Corelite.Deployment.build ~params:Corelite.Params.default ~rng:(Sim.Rng.create 3)
    ~topology:network.Workload.Network.topology
    ~flows:(List.map (fun f -> Corelite.Deployment.spec f) network.Workload.Network.flows)
    ~core_links:network.Workload.Network.core_links ()

let test_deployment_rejects_duplicate_flows () =
  let _, network = single_bottleneck () in
  let flow = List.hd network.Workload.Network.flows in
  Alcotest.check_raises "duplicate" (Invalid_argument "Deployment.build: duplicate flow 1")
    (fun () ->
      ignore
        (Corelite.Deployment.build ~params:Corelite.Params.default
           ~rng:(Sim.Rng.create 1) ~topology:network.Workload.Network.topology
           ~flows:[ Corelite.Deployment.spec flow; Corelite.Deployment.spec flow ]
           ~core_links:network.Workload.Network.core_links ()))

let test_deployment_agents_sorted () =
  let _, network = single_bottleneck ~n:5 () in
  let d = corelite_deployment network in
  Alcotest.(check (list int)) "ascending ids" [ 1; 2; 3; 4; 5 ]
    (List.map fst (Corelite.Deployment.agents d));
  Alcotest.check_raises "unknown agent" Not_found (fun () ->
      ignore (Corelite.Deployment.agent d 99))

let test_deployment_start_all_and_counters () =
  let engine, network = single_bottleneck ~n:3 () in
  let d = corelite_deployment network in
  Corelite.Deployment.start_all d;
  (* Three flows climbing +2 pkt/s each need ~75 s to congest 500. *)
  Sim.Engine.run_until engine 120.;
  List.iter
    (fun (_, agent) ->
      Alcotest.(check bool) "running" true (Corelite.Edge.running agent))
    (Corelite.Deployment.agents d);
  (* Three flows on one 500 pkt/s link must have triggered feedback. *)
  Alcotest.(check bool) "feedback flowed" true (Corelite.Deployment.total_feedback d > 0);
  Alcotest.(check int) "no loss" 0 (Corelite.Deployment.total_drops d);
  Alcotest.(check int) "one core attached" 1 (List.length (Corelite.Deployment.cores d))

let test_feedback_latency_matches_reverse_path () =
  (* The control-plane delay from the core link back to the ingress
     edge equals the upstream propagation: 40 ms on a single-bottleneck
     path. Check by injecting a synthetic feedback through the core's
     send_feedback closure indirectly: measure the earliest time a rate
     decrease can follow a congested epoch. Cheaper and more robust:
     verify the precomputed delay helper the deployment uses. *)
  let _, network = single_bottleneck () in
  let flow = Workload.Network.flow network 1 in
  let core_link = List.hd network.Workload.Network.core_links in
  match
    Net.Flow.upstream_delay flow network.Workload.Network.topology core_link
  with
  | Some delay -> check_float "one access hop back" 0.04 delay
  | None -> Alcotest.fail "flow does not cross its bottleneck?"

(* ------------------------------------------------------------------ *)
(* Csfq.Deployment *)

let test_csfq_deployment_no_cores_mode () =
  let engine, network = single_bottleneck ~n:4 () in
  let d =
    Csfq.Deployment.build ~attach_cores:false ~params:Csfq.Params.default
      ~rng:(Sim.Rng.create 5) ~topology:network.Workload.Network.topology
      ~flows:(List.map (fun f -> Csfq.Deployment.spec f) network.Workload.Network.flows)
      ~core_links:network.Workload.Network.core_links ()
  in
  Alcotest.(check int) "no core logic" 0 (List.length (Csfq.Deployment.cores d));
  Csfq.Deployment.start_all d;
  Sim.Engine.run_until engine 80.;
  (* Loss notifications still reach the agents (they adapt, so the link
     is not permanently saturated). *)
  let losses =
    List.fold_left (fun acc (_, a) -> acc + Csfq.Edge.losses a) 0
      (Csfq.Deployment.agents d)
  in
  Alcotest.(check bool) "agents saw losses" true (losses > 0);
  Alcotest.(check bool) "drops happened (droptail only)" true
    (Csfq.Deployment.total_drops d > 0)

let test_csfq_deployment_duplicate () =
  let _, network = single_bottleneck () in
  let flow = List.hd network.Workload.Network.flows in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Csfq.Deployment.build: duplicate flow 1") (fun () ->
      ignore
        (Csfq.Deployment.build ~params:Csfq.Params.default ~rng:(Sim.Rng.create 1)
           ~topology:network.Workload.Network.topology
           ~flows:[ Csfq.Deployment.spec flow; Csfq.Deployment.spec flow ]
           ~core_links:network.Workload.Network.core_links ()))

(* ------------------------------------------------------------------ *)
(* Dynamic flow lifecycle (churn soft state) *)

let test_lifecycle_add_end_expire () =
  let engine, network = single_bottleneck ~n:3 () in
  let d =
    Corelite.Deployment.build ~params:Corelite.Params.default
      ~rng:(Sim.Rng.create 11) ~topology:network.Workload.Network.topology
      ~flows:[] ~core_links:network.Workload.Network.core_links ()
  in
  let created0 = Sim.Invariant.flows_created () in
  let retired0 = Sim.Invariant.flows_retired () in
  let expired0 = Sim.Invariant.flows_expired () in
  Alcotest.(check int) "empty table" 0 (Corelite.Deployment.live_flows d);
  ignore (Corelite.Deployment.add_flow d (Workload.Network.flow network 1));
  ignore (Corelite.Deployment.add_flow d (Workload.Network.flow network 2));
  Alcotest.(check int) "two live" 2 (Corelite.Deployment.live_flows d);
  Alcotest.(check bool) "has flow 1" true (Corelite.Deployment.has_flow d 1);
  Alcotest.(check bool) "no flow 3" false (Corelite.Deployment.has_flow d 3);
  Alcotest.check_raises "duplicate arrival"
    (Invalid_argument "Deployment.add_flow: duplicate flow 1") (fun () ->
      ignore (Corelite.Deployment.add_flow d (Workload.Network.flow network 1)));
  Sim.Engine.run_until engine 2.;
  Corelite.Deployment.end_flow d 1;
  Alcotest.(check bool) "flow 1 retired" false (Corelite.Deployment.has_flow d 1);
  Alcotest.check_raises "ending a retired flow"
    (Invalid_argument "Deployment.end_flow: unknown flow 1") (fun () ->
      Corelite.Deployment.end_flow d 1);
  (* Flow 2 goes silent; advance well past its last emission and sweep. *)
  Corelite.Deployment.stop_flow d 2;
  Sim.Engine.run_until engine 12.;
  Alcotest.(check int) "not yet stale under a long timeout" 0
    (Corelite.Deployment.expire_idle d ~timeout:60.);
  Alcotest.(check int) "flow 2 aged out" 1
    (Corelite.Deployment.expire_idle d ~timeout:5.);
  Alcotest.(check int) "table empty again" 0 (Corelite.Deployment.live_flows d);
  Alcotest.check_raises "bad timeout"
    (Invalid_argument "Deployment.expire_idle: timeout must be positive")
    (fun () -> ignore (Corelite.Deployment.expire_idle d ~timeout:0.));
  (* The process-wide flow ledger saw every transition: two arrivals,
     two retirements of which one was an expiry. *)
  Alcotest.(check int) "ledger: created" 2 (Sim.Invariant.flows_created () - created0);
  Alcotest.(check int) "ledger: retired" 2 (Sim.Invariant.flows_retired () - retired0);
  Alcotest.(check int) "ledger: expired" 1 (Sim.Invariant.flows_expired () - expired0)

let test_csfq_lifecycle () =
  let engine, network = single_bottleneck ~n:2 () in
  let d =
    Csfq.Deployment.build ~params:Csfq.Params.default ~rng:(Sim.Rng.create 7)
      ~topology:network.Workload.Network.topology ~flows:[]
      ~core_links:network.Workload.Network.core_links ()
  in
  ignore (Csfq.Deployment.add_flow d (Workload.Network.flow network 1));
  Alcotest.(check int) "one live" 1 (Csfq.Deployment.live_flows d);
  Sim.Engine.run_until engine 2.;
  Csfq.Deployment.end_flow d 1;
  Alcotest.(check int) "empty" 0 (Csfq.Deployment.live_flows d);
  Alcotest.(check bool) "state reclaimed" false (Csfq.Deployment.has_flow d 1)

(* ------------------------------------------------------------------ *)
(* Runner options *)

let test_runner_floor_passthrough () =
  let _, network = single_bottleneck ~n:2 () in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~floors:[ (1, 300.) ]
      ~schedule:[ (0., Workload.Runner.Start 1); (0., Workload.Runner.Start 2) ]
      ~duration:120. ()
  in
  Alcotest.(check bool) "contracted flow holds 300" true
    (Workload.Runner.mean_rate result ~flow:1 ~from:90. ~until:120. >= 295.)

let test_runner_bursty_flow_pauses () =
  let _, network = single_bottleneck ~n:1 () in
  (* Mean on 1 s / off 9 s: the flow is idle most of the time, so its
     goodput is far below the always-on equivalent. *)
  let bursty_result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network
      ~bursty:[ (1, 1., 9.) ]
      ~schedule:[ (0., Workload.Runner.Start 1) ]
      ~duration:100. ()
  in
  let engine2 = Sim.Engine.create () in
  let network2 = Workload.Network.single_bottleneck ~engine:engine2 ~weights:(fun _ -> 1.) 1 in
  let steady_result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network:network2
      ~schedule:[ (0., Workload.Runner.Start 1) ]
      ~duration:100. ()
  in
  let total r =
    match Sim.Timeseries.last (List.assoc 1 r.Workload.Runner.cumulative) with
    | Some (_, v) -> v
    | None -> 0.
  in
  Alcotest.(check bool)
    (Printf.sprintf "bursty delivers much less (%.0f vs %.0f)" (total bursty_result)
       (total steady_result))
    true
    (total bursty_result < 0.5 *. total steady_result)

let test_runner_plain_scheme_only_overflow_drops () =
  let _, network = single_bottleneck ~n:4 () in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Plain Csfq.Params.default) ~network
      ~schedule:(List.map (fun i -> (0., Workload.Runner.Start i)) (ids 4))
      ~duration:80. ()
  in
  Alcotest.(check string) "scheme name" "plain" result.Workload.Runner.scheme;
  Alcotest.(check int) "no probabilistic drops" 0 result.Workload.Runner.early_drops;
  Alcotest.(check bool) "tail drops happen" true (result.Workload.Runner.core_drops > 0)

let test_runner_sample_period () =
  let _, network = single_bottleneck ~n:1 () in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~sample_period:0.5
      ~schedule:[ (0., Workload.Runner.Start 1) ]
      ~duration:10. ()
  in
  Alcotest.(check int) "20 samples at 0.5 s" 20
    (Sim.Timeseries.length (List.assoc 1 result.Workload.Runner.rate_series))

let test_runner_delay_metrics_populated () =
  let _, network = single_bottleneck ~n:2 () in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network
      ~schedule:[ (0., Workload.Runner.Start 1); (0., Workload.Runner.Start 2) ]
      ~duration:60. ()
  in
  List.iter
    (fun (_, mean) ->
      (* At least the 120 ms propagation; far below a second. *)
      Alcotest.(check bool) "plausible mean delay" true (mean > 0.11 && mean < 1.))
    result.Workload.Runner.mean_delays;
  List.iter2
    (fun (_, mean) (_, p99) ->
      Alcotest.(check bool) "p99 >= mean" true (p99 >= mean -. 1e-9))
    result.Workload.Runner.mean_delays result.Workload.Runner.p99_delays

(* ------------------------------------------------------------------ *)
(* Figures.restart_recovery *)

let test_restart_recovery () =
  let _, network = single_bottleneck ~n:2 () in
  let schedule =
    [
      (0., Workload.Runner.Start 1);
      (0., Workload.Runner.Start 2);
      (60., Workload.Runner.Stop 1);
      (70., Workload.Runner.Start 1);
    ]
  in
  let result =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~schedule ~duration:200. ()
  in
  (match
     Workload.Figures.restart_recovery result ~flow:1 ~restart_at:70. ~target:250.
       ~fraction:0.8
   with
  | Some t -> Alcotest.(check bool) "recovers within 120 s" true (t > 0. && t < 120.)
  | None -> Alcotest.fail "never recovered");
  Alcotest.(check bool) "unknown flow" true
    (Workload.Figures.restart_recovery result ~flow:9 ~restart_at:0. ~target:1.
       ~fraction:0.5
    = None)

(* ------------------------------------------------------------------ *)
(* Csv corner cases *)

let test_csv_uneven_series_truncated () =
  let a = Sim.Timeseries.create () and b = Sim.Timeseries.create () in
  for i = 1 to 5 do
    Sim.Timeseries.add a (float_of_int i) 1.
  done;
  for i = 1 to 3 do
    Sim.Timeseries.add b (float_of_int i) 2.
  done;
  let path = Filename.temp_file "corelite" ".csv" in
  Workload.Csv.write_series ~path [ (1, a); (2, b) ];
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "header + min(5,3) rows" 4 !lines

let test_csv_empty_series () =
  let path = Filename.temp_file "corelite" ".csv" in
  Workload.Csv.write_series ~path [ (1, Sim.Timeseries.create ()) ];
  let ic = open_in path in
  let header = input_line ic in
  let rest = try Some (input_line ic) with End_of_file -> None in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header only" "time,flow1" header;
  Alcotest.(check bool) "no rows" true (rest = None)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "deployment"
    [
      ( "corelite",
        [
          Alcotest.test_case "duplicate flows" `Quick test_deployment_rejects_duplicate_flows;
          Alcotest.test_case "agents sorted" `Quick test_deployment_agents_sorted;
          Alcotest.test_case "start all and counters" `Slow
            test_deployment_start_all_and_counters;
          Alcotest.test_case "feedback latency" `Quick
            test_feedback_latency_matches_reverse_path;
        ] );
      ( "csfq",
        [
          Alcotest.test_case "no-cores mode" `Slow test_csfq_deployment_no_cores_mode;
          Alcotest.test_case "duplicate flows" `Quick test_csfq_deployment_duplicate;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "add, end, expire and the ledger" `Quick
            test_lifecycle_add_end_expire;
          Alcotest.test_case "csfq soft state" `Quick test_csfq_lifecycle;
        ] );
      ( "runner_options",
        [
          Alcotest.test_case "floor passthrough" `Slow test_runner_floor_passthrough;
          Alcotest.test_case "bursty pauses" `Slow test_runner_bursty_flow_pauses;
          Alcotest.test_case "plain scheme drops" `Slow
            test_runner_plain_scheme_only_overflow_drops;
          Alcotest.test_case "sample period" `Quick test_runner_sample_period;
          Alcotest.test_case "delay metrics" `Slow test_runner_delay_metrics_populated;
        ] );
      ( "figures_helpers",
        [ Alcotest.test_case "restart recovery" `Slow test_restart_recovery ] );
      ( "csv",
        [
          Alcotest.test_case "uneven series" `Quick test_csv_uneven_series_truncated;
          Alcotest.test_case "empty series" `Quick test_csv_empty_series;
        ] );
    ]
