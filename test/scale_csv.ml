(* Golden generator: the per-flow CSV of a fixed small scale scenario
   (fat-tree k=4, 64 flows, 5 s, Corelite). dune diffs the output
   against test/golden/scale_fattree_k4.csv on every runtest — any
   behavioral drift in the generated-topology pipeline (graph, FIB,
   flow sampling, FIB-plane forwarding, streaming aggregation) shows
   up as a one-line diff with per-flow context. *)

let () =
  let engine = Sim.Engine.create () in
  let r =
    Workload.Scale.run ~engine ~seed:42 ~label:"golden/fattree-k4"
      ~graph:(Workload.Scale.Fattree 4) ~n_flows:64
      ~scheme:Workload.Scale.Corelite ~duration:5. ~csv:true ()
  in
  match r.Workload.Scale.csv with
  | Some csv -> print_string csv
  | None -> failwith "scale_csv: csv missing"
