(* Tests for the network substrate: packets, queue disciplines, links,
   nodes, topology, flows and the adaptive source. *)

let check_float = Alcotest.(check (float 1e-9))

let mk_packet ?(id = 1) ?(flow = 1) ?(size = Net.Packet.default_size) () =
  Net.Packet.make ~id ~flow ~size ~created:0. ()

(* ------------------------------------------------------------------ *)
(* Packet *)

let test_packet_defaults () =
  let p = mk_packet () in
  Alcotest.(check int) "size" 1000 p.Net.Packet.size;
  Alcotest.(check bool) "no marker" false (Net.Packet.has_marker p);
  Alcotest.(check bool) "unlabelled" true (p.Net.Packet.label < 0.)

let test_packet_marker () =
  let marker = { Net.Packet.edge_id = 3; flow_id = 7; normalized_rate = 12.5 } in
  let p = Net.Packet.make ~id:1 ~flow:7 ~marker ~created:1. () in
  Alcotest.(check bool) "has marker" true (Net.Packet.has_marker p);
  match p.Net.Packet.marker with
  | Some m -> Alcotest.(check int) "flow id" 7 m.Net.Packet.flow_id
  | None -> Alcotest.fail "marker lost"

(* ------------------------------------------------------------------ *)
(* Qdisc: droptail *)

let test_droptail_fifo () =
  let q = Net.Qdisc.droptail ~capacity:10 in
  List.iter
    (fun i -> ignore (q.Net.Qdisc.enqueue (mk_packet ~id:i ())))
    [ 1; 2; 3 ];
  let ids =
    List.init 3 (fun _ ->
        match q.Net.Qdisc.dequeue () with
        | Some p -> p.Net.Packet.id
        | None -> -1)
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] ids;
  Alcotest.(check bool) "drained" true (q.Net.Qdisc.dequeue () = None)

let test_droptail_capacity () =
  let q = Net.Qdisc.droptail ~capacity:2 in
  Alcotest.(check bool) "1 in" true (q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Enqueued);
  Alcotest.(check bool) "2 in" true (q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Enqueued);
  Alcotest.(check bool) "3 dropped" true (q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Dropped);
  Alcotest.(check int) "length" 2 (q.Net.Qdisc.length ());
  ignore (q.Net.Qdisc.dequeue ());
  Alcotest.(check bool) "room again" true (q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Enqueued)

let test_droptail_bytes () =
  let q = Net.Qdisc.droptail ~capacity:10 in
  ignore (q.Net.Qdisc.enqueue (mk_packet ~size:100 ()));
  ignore (q.Net.Qdisc.enqueue (mk_packet ~size:200 ()));
  Alcotest.(check int) "bytes" 300 (q.Net.Qdisc.bytes ());
  ignore (q.Net.Qdisc.dequeue ());
  Alcotest.(check int) "bytes after dequeue" 200 (q.Net.Qdisc.bytes ())

let test_droptail_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Qdisc.droptail: capacity must be positive") (fun () ->
      ignore (Net.Qdisc.droptail ~capacity:0))

let qt = QCheck_alcotest.to_alcotest

(* The ring-backed FIFO must be observationally identical to a
   [Stdlib.Queue] with a byte counter — including across the head
   wraparound and growth cases that a plain push-then-drain test never
   reaches. Ops: [Some size] pushes a packet of that size, [None]
   alternates between pop and peek. *)
let prop_fifo_matches_stdlib_queue =
  QCheck.Test.make ~count:300 ~name:"Qdisc.Fifo matches Stdlib.Queue model"
    QCheck.(list (option (int_range 1 1500)))
    (fun ops ->
      let fifo = Net.Qdisc.Fifo.create () in
      let model = Queue.create () in
      let model_bytes = ref 0 in
      let id = ref 0 in
      List.iteri
        (fun step op ->
          (match op with
          | Some size ->
            incr id;
            let p = mk_packet ~id:!id ~size () in
            Net.Qdisc.Fifo.push fifo p;
            Queue.push p model;
            model_bytes := !model_bytes + size
          | None when step land 1 = 0 -> (
            match (Net.Qdisc.Fifo.pop fifo, Queue.take_opt model) with
            | Some p, Some q ->
              if p.Net.Packet.id <> q.Net.Packet.id then
                QCheck.Test.fail_report "pop order diverged";
              model_bytes := !model_bytes - q.Net.Packet.size
            | None, None -> ()
            | _ -> QCheck.Test.fail_report "pop emptiness diverged")
          | None -> (
            match (Net.Qdisc.Fifo.peek fifo, Queue.peek_opt model) with
            | Some p, Some q ->
              if p.Net.Packet.id <> q.Net.Packet.id then
                QCheck.Test.fail_report "peek diverged"
            | None, None -> ()
            | _ -> QCheck.Test.fail_report "peek emptiness diverged"));
          if Net.Qdisc.Fifo.length fifo <> Queue.length model then
            QCheck.Test.fail_report "length diverged";
          if Net.Qdisc.Fifo.bytes fifo <> !model_bytes then
            QCheck.Test.fail_report "bytes diverged")
        ops;
      (* Drain: the full residual contents must match. *)
      let rec drain () =
        match (Net.Qdisc.Fifo.pop fifo, Queue.take_opt model) with
        | Some p, Some q ->
          if p.Net.Packet.id <> q.Net.Packet.id then
            QCheck.Test.fail_report "drain order diverged";
          drain ()
        | None, None -> true
        | _ -> QCheck.Test.fail_report "drain emptiness diverged"
      in
      drain ())

(* ------------------------------------------------------------------ *)
(* Qdisc: RED *)

let red_qdisc ?(params = Net.Qdisc.default_red_params) () =
  let now = ref 0. in
  let q = Net.Qdisc.red ~params ~rng:(Sim.Rng.create 1) ~now:(fun () -> !now) () in
  (q, now)

let test_red_accepts_below_min () =
  let q, _ = red_qdisc () in
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "packet %d accepted" i)
      true
      (q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Enqueued)
  done

let test_red_drops_above_max () =
  (* Sustained full queue pushes the average over max_thresh and forces
     drops. *)
  let params =
    { Net.Qdisc.default_red_params with Net.Qdisc.queue_weight = 0.5; max_thresh = 10. }
  in
  let q, _ = red_qdisc ~params () in
  let dropped = ref 0 in
  for _ = 1 to 50 do
    if q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Dropped then incr dropped
  done;
  Alcotest.(check bool) "some early drops" true (!dropped > 0)

let test_red_hard_limit () =
  let params = { Net.Qdisc.default_red_params with Net.Qdisc.capacity = 5 } in
  let q, _ = red_qdisc ~params () in
  let accepted = ref 0 in
  for _ = 1 to 20 do
    if q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Enqueued then incr accepted
  done;
  Alcotest.(check bool) "never exceeds capacity" true (!accepted <= 5)

let test_red_idle_decay () =
  let params =
    { Net.Qdisc.default_red_params with Net.Qdisc.queue_weight = 0.5; max_thresh = 8. }
  in
  let q, now = red_qdisc ~params () in
  (* Build up the average... *)
  for _ = 1 to 30 do
    ignore (q.Net.Qdisc.enqueue (mk_packet ()))
  done;
  while q.Net.Qdisc.dequeue () <> None do
    ()
  done;
  (* ...then stay idle long enough for it to decay away. *)
  now := !now +. 10.;
  Alcotest.(check bool) "accepted after idle" true
    (q.Net.Qdisc.enqueue (mk_packet ()) = Net.Qdisc.Enqueued)

(* ------------------------------------------------------------------ *)
(* Qdisc: FRED *)

let test_fred_bounds_hog_flow () =
  let now = ref 0. in
  let q = Net.Qdisc.fred ~rng:(Sim.Rng.create 2) ~now:(fun () -> !now) () in
  (* A single flow trying to monopolize the buffer gets bounded well
     below the hard capacity once its per-flow count passes maxq. *)
  let accepted = ref 0 in
  for i = 1 to 40 do
    if q.Net.Qdisc.enqueue (mk_packet ~id:i ~flow:1 ()) = Net.Qdisc.Enqueued then
      incr accepted
  done;
  Alcotest.(check bool) "hog bounded" true (!accepted < 40);
  (* A newcomer with nothing queued still gets in (protected share). *)
  Alcotest.(check bool) "newcomer accepted" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:100 ~flow:2 ()) = Net.Qdisc.Enqueued)

let test_fred_forgets_inactive_flows () =
  let now = ref 0. in
  let q = Net.Qdisc.fred ~rng:(Sim.Rng.create 3) ~now:(fun () -> !now) () in
  for i = 1 to 3 do
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:i ~flow:1 ()))
  done;
  while q.Net.Qdisc.dequeue () <> None do
    ()
  done;
  (* After draining, flow 1 has no per-flow state and is a newcomer. *)
  Alcotest.(check bool) "re-admitted" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:9 ~flow:1 ()) = Net.Qdisc.Enqueued)

(* ------------------------------------------------------------------ *)
(* Qdisc: classful (multi-queue) *)

let mk_class_pkt ~id ~micro () = Net.Packet.make ~id ~flow:1 ~micro ~created:0. ()

let classify pkt = pkt.Net.Packet.micro

let test_classful_priority_order () =
  let q =
    Net.Qdisc.classful ~classes:2 ~classify ~scheduler:Net.Qdisc.Priority ~capacity:10 ()
  in
  (* Low-priority first into the buffer, then high priority: the high
     class is always served first. *)
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:1 ~micro:1 ()));
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:2 ~micro:0 ()));
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:3 ~micro:1 ()));
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:4 ~micro:0 ()));
  let order =
    List.init 4 (fun _ ->
        match q.Net.Qdisc.dequeue () with Some p -> p.Net.Packet.id | None -> -1)
  in
  Alcotest.(check (list int)) "class 0 first" [ 2; 4; 1; 3 ] order

let test_classful_wrr_proportions () =
  let q =
    Net.Qdisc.classful ~classes:2 ~classify
      ~scheduler:(Net.Qdisc.Weighted_round_robin [| 2; 1 |])
      ~capacity:100 ()
  in
  for i = 1 to 30 do
    ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:i ~micro:0 ()));
    ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:(100 + i) ~micro:1 ()))
  done;
  (* While both classes are backlogged, the 2:1 quanta give class 0 two
     thirds of the service. *)
  let class0 = ref 0 in
  for _ = 1 to 30 do
    match q.Net.Qdisc.dequeue () with
    | Some p -> if p.Net.Packet.micro = 0 then incr class0
    | None -> Alcotest.fail "queue drained early"
  done;
  Alcotest.(check int) "2/3 of service" 20 !class0

let test_classful_aggregate_length () =
  let q =
    Net.Qdisc.classful ~classes:3 ~classify ~scheduler:Net.Qdisc.Priority ~capacity:5 ()
  in
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:1 ~micro:0 ()));
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:2 ~micro:1 ()));
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:3 ~micro:2 ()));
  Alcotest.(check int) "aggregate backlog" 3 (q.Net.Qdisc.length ());
  Alcotest.(check int) "aggregate bytes" 3000 (q.Net.Qdisc.bytes ())

let test_classful_per_class_capacity () =
  let q =
    Net.Qdisc.classful ~classes:2 ~classify ~scheduler:Net.Qdisc.Priority ~capacity:2 ()
  in
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:1 ~micro:0 ()));
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:2 ~micro:0 ()));
  Alcotest.(check bool) "class 0 full" true
    (q.Net.Qdisc.enqueue (mk_class_pkt ~id:3 ~micro:0 ()) = Net.Qdisc.Dropped);
  Alcotest.(check bool) "class 1 unaffected" true
    (q.Net.Qdisc.enqueue (mk_class_pkt ~id:4 ~micro:1 ()) = Net.Qdisc.Enqueued)

let test_classful_wrr_skips_empty_classes () =
  let q =
    Net.Qdisc.classful ~classes:3 ~classify
      ~scheduler:(Net.Qdisc.Weighted_round_robin [| 5; 5; 5 |])
      ~capacity:10 ()
  in
  ignore (q.Net.Qdisc.enqueue (mk_class_pkt ~id:7 ~micro:2 ()));
  (match q.Net.Qdisc.dequeue () with
  | Some p -> Alcotest.(check int) "served from the only busy class" 7 p.Net.Packet.id
  | None -> Alcotest.fail "nothing served");
  Alcotest.(check bool) "then empty" true (q.Net.Qdisc.dequeue () = None)

let test_classful_validation () =
  Alcotest.check_raises "classes" (Invalid_argument "Qdisc.classful: classes must be positive")
    (fun () ->
      ignore
        (Net.Qdisc.classful ~classes:0 ~classify ~scheduler:Net.Qdisc.Priority
           ~capacity:1 ()));
  Alcotest.check_raises "quanta arity" (Invalid_argument "Qdisc.classful: one quantum per class")
    (fun () ->
      ignore
        (Net.Qdisc.classful ~classes:2 ~classify
           ~scheduler:(Net.Qdisc.Weighted_round_robin [| 1 |])
           ~capacity:1 ()))

(* ------------------------------------------------------------------ *)
(* Link and Topology *)

(* One link between two nodes; returns (engine, topology, a, b, link). *)
let simple_net ?(bandwidth = 8000.) ?(delay = 0.1) ?(capacity = 10) () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let a = Net.Topology.add_node topology ~kind:Net.Node.Edge "A" in
  let b = Net.Topology.add_node topology ~kind:Net.Node.Edge "B" in
  let link =
    Net.Topology.add_link topology ~src:a ~dst:b ~bandwidth ~delay
      ~qdisc:(Net.Qdisc.droptail ~capacity)
  in
  (engine, topology, a, b, link)

let test_link_delivery_timing () =
  (* 1000-byte packet on 8000 bit/s: tx = 1 s, delay = 0.1 s. *)
  let engine, _, _, b, link = simple_net () in
  let arrival = ref nan in
  Net.Node.set_sink b ~flow:1 (fun _ -> arrival := Sim.Engine.now engine);
  Net.Link.send link (mk_packet ());
  Sim.Engine.run engine;
  check_float "tx + propagation" 1.1 !arrival

let test_link_serializes () =
  let engine, _, _, b, link = simple_net () in
  let arrivals = ref [] in
  Net.Node.set_sink b ~flow:1 (fun p ->
      arrivals := (p.Net.Packet.id, Sim.Engine.now engine) :: !arrivals);
  Net.Link.send link (mk_packet ~id:1 ());
  Net.Link.send link (mk_packet ~id:2 ());
  Sim.Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9))))
    "back to back" [ (1, 1.1); (2, 2.1) ] (List.rev !arrivals)

let test_link_queue_overflow_drops () =
  let engine, _, _, b, link = simple_net ~capacity:2 () in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  let reasons = ref [] in
  link.Net.Link.on_drop <- Some (fun reason _ -> reasons := reason :: !reasons);
  (* One in service + 2 queued fit; the rest overflow. *)
  for i = 1 to 6 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "drops counted" 3 link.Net.Link.drops;
  Alcotest.(check int) "delivered" 3 link.Net.Link.departures;
  Alcotest.(check bool) "all overflow reasons" true
    (List.for_all (fun r -> r = Net.Link.Queue_full) !reasons)

let test_link_hook_filter_drop () =
  let engine, _, _, b, link = simple_net () in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  let reasons = ref [] in
  link.Net.Link.on_drop <- Some (fun reason _ -> reasons := reason :: !reasons);
  link.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival =
          (fun p -> if p.Net.Packet.id mod 2 = 0 then Net.Link.Drop else Net.Link.Pass);
        on_queue_change = (fun _ -> ());
      };
  for i = 1 to 4 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "two filtered" 2 link.Net.Link.drops;
  Alcotest.(check bool) "filtered reasons" true
    (List.for_all (fun r -> r = Net.Link.Filtered) !reasons)

let test_link_queue_change_hook () =
  let engine, _, _, b, link = simple_net () in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  let lengths = ref [] in
  link.Net.Link.hooks <-
    Some
      {
        Net.Link.on_arrival = (fun _ -> Net.Link.Pass);
        on_queue_change = (fun n -> lengths := n :: !lengths);
      };
  for i = 1 to 3 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  Sim.Engine.run engine;
  (* First packet: enqueue (1) then immediate dequeue (0); then two
     enqueues while busy, then their dequeues. *)
  Alcotest.(check int) "final queue empty" 0 (List.hd !lengths);
  Alcotest.(check bool) "observed buildup" true (List.mem 2 !lengths)

let test_link_capacity_pps () =
  let _, _, _, _, link = simple_net ~bandwidth:4_000_000. () in
  check_float "500 pkt/s" 500. (Net.Link.capacity_pps link)

let test_link_rejects_bad_args () =
  let engine = Sim.Engine.create () in
  let mk ~bandwidth ~delay () =
    ignore
      (Net.Link.create ~engine ~id:0 ~name:"x" ~src:0 ~dst:1 ~bandwidth ~delay
         ~qdisc:(Net.Qdisc.droptail ~capacity:1) ())
  in
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Link.create: bandwidth must be positive")
    (mk ~bandwidth:0. ~delay:0.);
  Alcotest.check_raises "negative bandwidth"
    (Invalid_argument "Link.create: bandwidth must be positive")
    (mk ~bandwidth:(-8000.) ~delay:0.);
  Alcotest.check_raises "nan bandwidth"
    (Invalid_argument "Link.create: bandwidth must be finite")
    (mk ~bandwidth:Float.nan ~delay:0.);
  Alcotest.check_raises "infinite bandwidth"
    (Invalid_argument "Link.create: bandwidth must be finite")
    (mk ~bandwidth:Float.infinity ~delay:0.);
  Alcotest.check_raises "nan delay"
    (Invalid_argument "Link.create: delay must be finite")
    (mk ~bandwidth:8000. ~delay:Float.nan);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Link.create: negative delay")
    (mk ~bandwidth:8000. ~delay:(-0.1))

(* ------------------------------------------------------------------ *)
(* Link outages, resets and the fault hook (the chaos surface) *)

let test_link_down_purges_and_recovers () =
  let engine, _, _, b, link = simple_net () in
  let delivered = ref [] in
  Net.Node.set_sink b ~flow:1 (fun p -> delivered := p.Net.Packet.id :: !delivered);
  let reasons = ref [] in
  link.Net.Link.on_drop <- Some (fun reason _ -> reasons := reason :: !reasons);
  (* 8000 bit/s, 1000 B packets: 1 s serialization each. Queue 5, take
     the link down at 1.5 s (one delivered, one on the wire or in
     service, rest queued), bring it back at 3 s and send two more. *)
  for i = 1 to 5 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  ignore
    (Sim.Engine.schedule_at engine ~time:1.5 (fun () -> Net.Link.set_up link false));
  ignore
    (Sim.Engine.schedule_at engine ~time:3.0 (fun () ->
         Net.Link.set_up link true;
         Net.Link.send link (mk_packet ~id:6 ());
         Net.Link.send link (mk_packet ~id:7 ())));
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "survivors in order" [ 1; 6; 7 ] (List.rev !delivered);
  Alcotest.(check bool) "all losses are Down" true
    (List.for_all (fun r -> r = Net.Link.Down) !reasons);
  (* Conservation across the purge: everything sent is accounted. *)
  Alcotest.(check int) "arrivals" 7 link.Net.Link.arrivals;
  Alcotest.(check int) "departures + drops" 7
    (link.Net.Link.departures + link.Net.Link.drops);
  Alcotest.(check int) "queue empty" 0 (Net.Link.queue_length link)

let test_link_send_while_down_drops () =
  let engine, _, _, b, link = simple_net () in
  Net.Node.set_sink b ~flow:1 (fun _ -> Alcotest.fail "delivered through a down link");
  Net.Link.set_up link false;
  Net.Link.send link (mk_packet ~id:1 ());
  Sim.Engine.run engine;
  Alcotest.(check int) "counted as drop" 1 link.Net.Link.drops;
  Alcotest.(check bool) "still down" false (Net.Link.is_up link)

let test_link_reset_purges_but_stays_up () =
  let engine, _, _, b, link = simple_net () in
  let delivered = ref [] in
  Net.Node.set_sink b ~flow:1 (fun p -> delivered := p.Net.Packet.id :: !delivered);
  for i = 1 to 4 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  ignore
    (Sim.Engine.schedule_at engine ~time:1.5 (fun () ->
         Net.Link.reset link;
         Alcotest.(check bool) "up across reset" true (Net.Link.is_up link);
         (* A reset link is a working link, immediately. *)
         Net.Link.send link (mk_packet ~id:9 ())));
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "first and post-reset packets" [ 1; 9 ]
    (List.rev !delivered);
  Alcotest.(check int) "arrivals" 5 link.Net.Link.arrivals;
  Alcotest.(check int) "departures + drops" 5
    (link.Net.Link.departures + link.Net.Link.drops)

let test_link_fault_hook_strip_and_lose () =
  let engine, _, _, b, link = simple_net () in
  let delivered = ref [] in
  Net.Node.set_sink b ~flow:1 (fun p -> delivered := p :: !delivered);
  let reasons = ref [] in
  link.Net.Link.on_drop <- Some (fun reason _ -> reasons := reason :: !reasons);
  (* Deterministic stand-in for Net.Fault: lose even ids, strip odd. *)
  Net.Link.set_fault link
    (Some
       (fun p ->
         if p.Net.Packet.id mod 2 = 0 then Net.Link.Lose else Net.Link.Strip));
  let marker = { Net.Packet.edge_id = 0; flow_id = 1; normalized_rate = 1.0 } in
  for i = 1 to 4 do
    Net.Link.send link
      (Net.Packet.make ~id:i ~flow:1 ~size:Net.Packet.default_size ~marker
         ~created:0. ())
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "odd ids forwarded" [ 1; 3 ]
    (List.rev_map (fun p -> p.Net.Packet.id) !delivered);
  Alcotest.(check bool) "markers stripped" true
    (List.for_all (fun p -> not (Net.Packet.has_marker p)) !delivered);
  Alcotest.(check bool) "even ids lost as Injected" true
    (!reasons = [ Net.Link.Injected; Net.Link.Injected ]);
  Net.Link.set_fault link None;
  Net.Link.send link (mk_packet ~id:5 ());
  Sim.Engine.run engine;
  Alcotest.(check int) "hook cleared, packet delivered" 3 (List.length !delivered)

let test_node_routes_and_sinks () =
  let engine, topology, a, b, _ = simple_net () in
  let got = ref [] in
  Net.Topology.install_path topology ~flow:1 [ a; b ] ~sink:(fun p ->
      got := p.Net.Packet.id :: !got);
  Net.Node.receive a (mk_packet ~id:42 ());
  Sim.Engine.run engine;
  Alcotest.(check (list int)) "delivered through path" [ 42 ] !got

let test_node_unknown_flow_fails () =
  let _, _, a, _, _ = simple_net () in
  Alcotest.check_raises "no route" (Failure "Node A: no route or sink for flow 9")
    (fun () -> Net.Node.receive a (mk_packet ~flow:9 ()))

let test_topology_duplicate_node () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  ignore (Net.Topology.add_node topology ~kind:Net.Node.Core "C1");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Topology.add_node: duplicate node C1") (fun () ->
      ignore (Net.Topology.add_node topology ~kind:Net.Node.Core "C1"))

let test_topology_duplicate_link () =
  let _, topology, a, b, _ = simple_net () in
  Alcotest.check_raises "duplicate link"
    (Invalid_argument "Topology.add_link: duplicate link A->B") (fun () ->
      ignore
        (Net.Topology.add_link topology ~src:a ~dst:b ~bandwidth:1. ~delay:0.
           ~qdisc:(Net.Qdisc.droptail ~capacity:1)))

let test_topology_path_helpers () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n name = Net.Topology.add_node topology ~kind:Net.Node.Core name in
  let a = n "a" and b = n "b" and c = n "c" in
  let link ~src ~dst delay =
    ignore
      (Net.Topology.add_link topology ~src ~dst ~bandwidth:1e6 ~delay
         ~qdisc:(Net.Qdisc.droptail ~capacity:10))
  in
  link ~src:a ~dst:b 0.01;
  link ~src:b ~dst:c 0.02;
  Alcotest.(check int) "two hops" 2 (List.length (Net.Topology.path_links topology [ a; b; c ]));
  check_float "total delay" 0.03 (Net.Topology.path_delay topology [ a; b; c ]);
  Alcotest.(check bool) "find_link" true
    (Net.Topology.find_link topology ~src:a ~dst:b <> None);
  Alcotest.(check bool) "reverse missing" true
    (Net.Topology.find_link topology ~src:b ~dst:a = None)

let test_flow_validation () =
  let _, _, a, b, _ = simple_net () in
  Alcotest.check_raises "weight" (Invalid_argument "Flow.make: weight must be positive")
    (fun () -> ignore (Net.Flow.make ~id:1 ~weight:0. ~path:[ a; b ]));
  Alcotest.check_raises "short path" (Invalid_argument "Flow.make: path needs >= 2 nodes")
    (fun () -> ignore (Net.Flow.make ~id:1 ~weight:1. ~path:[ a ]))

let test_flow_upstream_delay () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n name = Net.Topology.add_node topology ~kind:Net.Node.Core name in
  let a = n "a" and b = n "b" and c = n "c" in
  let mk ~src ~dst delay =
    Net.Topology.add_link topology ~src ~dst ~bandwidth:1e6 ~delay
      ~qdisc:(Net.Qdisc.droptail ~capacity:10)
  in
  let l1 = mk ~src:a ~dst:b 0.01 in
  let l2 = mk ~src:b ~dst:c 0.02 in
  let flow = Net.Flow.make ~id:1 ~weight:1. ~path:[ a; b; c ] in
  Alcotest.(check bool) "first hop: zero" true
    (Net.Flow.upstream_delay flow topology l1 = Some 0.);
  (match Net.Flow.upstream_delay flow topology l2 with
  | Some d -> check_float "second hop" 0.01 d
  | None -> Alcotest.fail "expected delay");
  let other =
    Net.Topology.add_link topology ~src:c ~dst:a ~bandwidth:1e6 ~delay:0.
      ~qdisc:(Net.Qdisc.droptail ~capacity:10)
  in
  Alcotest.(check bool) "not on path" true
    (Net.Flow.upstream_delay flow topology other = None)

(* ------------------------------------------------------------------ *)
(* Qdisc: DRR *)

let test_drr_weighted_service () =
  let q = Net.Qdisc.drr ~weight:(fun flow -> float_of_int flow) ~capacity:100 () in
  (* Backlog flows 1 and 2 (weights 1:2), then drain: long-run service
     must split 1:2. *)
  for i = 1 to 30 do
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:i ~flow:1 ()));
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:(100 + i) ~flow:2 ()))
  done;
  let flow2 = ref 0 in
  for _ = 1 to 30 do
    match q.Net.Qdisc.dequeue () with
    | Some p -> if p.Net.Packet.flow = 2 then incr flow2
    | None -> Alcotest.fail "drained early"
  done;
  Alcotest.(check int) "2/3 of service to weight 2" 20 !flow2

let test_drr_fifo_within_flow () =
  let q = Net.Qdisc.drr ~weight:(fun _ -> 1.) ~capacity:10 () in
  for i = 1 to 3 do
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:i ~flow:7 ()))
  done;
  let order =
    List.init 3 (fun _ ->
        match q.Net.Qdisc.dequeue () with Some p -> p.Net.Packet.id | None -> -1)
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] order;
  Alcotest.(check bool) "empty" true (q.Net.Qdisc.dequeue () = None)

let test_drr_per_flow_capacity () =
  let q = Net.Qdisc.drr ~weight:(fun _ -> 1.) ~capacity:2 () in
  ignore (q.Net.Qdisc.enqueue (mk_packet ~id:1 ~flow:1 ()));
  ignore (q.Net.Qdisc.enqueue (mk_packet ~id:2 ~flow:1 ()));
  Alcotest.(check bool) "flow 1 full" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:3 ~flow:1 ()) = Net.Qdisc.Dropped);
  Alcotest.(check bool) "flow 2 has its own queue" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:4 ~flow:2 ()) = Net.Qdisc.Enqueued);
  Alcotest.(check int) "aggregate length" 3 (q.Net.Qdisc.length ())

let test_drr_fractional_weight () =
  (* Weight 0.5 vs 1: quantum 500 vs 1000 bytes with 1000-byte packets:
     the light flow is served every other round: service 1:2. *)
  let q =
    Net.Qdisc.drr ~weight:(fun flow -> if flow = 1 then 0.5 else 1.) ~capacity:100 ()
  in
  for i = 1 to 30 do
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:i ~flow:1 ()));
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:(100 + i) ~flow:2 ()))
  done;
  let flow1 = ref 0 in
  for _ = 1 to 30 do
    match q.Net.Qdisc.dequeue () with
    | Some p -> if p.Net.Packet.flow = 1 then incr flow1
    | None -> Alcotest.fail "drained early"
  done;
  Alcotest.(check int) "1/3 of service to half weight" 10 !flow1

let test_drr_validation () =
  Alcotest.check_raises "capacity" (Invalid_argument "Qdisc.drr: capacity must be positive")
    (fun () -> ignore (Net.Qdisc.drr ~weight:(fun _ -> 1.) ~capacity:0 ()));
  Alcotest.check_raises "quantum" (Invalid_argument "Qdisc.drr: quantum must be positive")
    (fun () ->
      ignore (Net.Qdisc.drr ~weight:(fun _ -> 1.) ~quantum_unit:0 ~capacity:1 ()));
  (* Weight is per-flow and only consulted when the flow takes the
     service token, so bad weights surface at dequeue. *)
  let reject name w =
    let q = Net.Qdisc.drr ~weight:(fun _ -> w) ~capacity:1 () in
    ignore (q.Net.Qdisc.enqueue (mk_packet ~id:1 ~flow:1 ()));
    Alcotest.check_raises name
      (Invalid_argument
         (Printf.sprintf
            "Qdisc.drr: weight of flow 1 must be finite and positive (got %h)" w))
      (fun () -> ignore (q.Net.Qdisc.dequeue ()))
  in
  reject "zero weight" 0.;
  reject "negative weight" (-1.);
  reject "nan weight" Float.nan;
  reject "infinite weight" Float.infinity

(* ------------------------------------------------------------------ *)
(* Probe *)

let test_probe_tracks_throughput_and_queue () =
  (* 8000 bit/s, 1 KB packets: 1 packet/s service. Offer 4 packets at
     t=0: the queue drains one per second. *)
  let engine, _, _, b, link = simple_net ~capacity:10 () in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  let probe = Net.Probe.attach ~engine ~period:1. link in
  (* Send at t = 0.5 so departures (1.5, 2.5, 3.5, 4.5) fall strictly
     between the probe's whole-second samples. *)
  ignore
    (Sim.Engine.schedule engine ~delay:0.5 (fun () ->
         for i = 1 to 4 do
           Net.Link.send link (mk_packet ~id:i ())
         done));
  Sim.Engine.run_until engine 6.;
  let throughput = Sim.Timeseries.to_array (Net.Probe.throughput_series probe) in
  (* Samples at 2..5 s each saw one departure. *)
  Alcotest.(check bool) "served 1 pkt/s while busy" true
    (Array.for_all
       (fun (t, v) ->
         if t >= 2. && t <= 5. then Sim.Floats.near v 1. else Sim.Floats.is_zero v)
       throughput);
  Alcotest.(check int) "peak queue was 3 waiting" 3 (Net.Probe.peak_queue probe);
  (* 4 packets in 6 seconds over a 1 pkt/s link. *)
  Alcotest.(check bool) "utilization ~2/3" true
    (Float.abs (Net.Probe.mean_utilization probe -. (4. /. 6.)) < 0.01)

let test_probe_counts_drops () =
  let engine, _, _, b, link = simple_net ~capacity:1 () in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  let probe = Net.Probe.attach ~engine ~period:1. link in
  for i = 1 to 5 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  Sim.Engine.run_until engine 1.5;
  (match Sim.Timeseries.to_array (Net.Probe.drop_series probe) with
  | [||] -> Alcotest.fail "no sample"
  | samples -> check_float "3 drops in the first second" 3. (snd samples.(0)));
  Net.Probe.detach probe;
  Sim.Engine.run_until engine 5.;
  Alcotest.(check int) "no samples after detach" 1
    (Sim.Timeseries.length (Net.Probe.drop_series probe))

let test_probe_validation () =
  let engine, _, _, _, link = simple_net () in
  Alcotest.check_raises "bad period" (Invalid_argument "Probe.attach: period must be positive")
    (fun () -> ignore (Net.Probe.attach ~engine ~period:0. link))

(* ------------------------------------------------------------------ *)
(* Routing *)

(* A diamond with asymmetric delays:
     a -> b (10ms) -> d (10ms)   total 20ms, 2 hops
     a -> c (5ms)  -> d (5ms)    total 10ms, 2 hops
     a -> d (50ms)               1 hop but slow *)
let diamond () =
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n name = Net.Topology.add_node topology ~kind:Net.Node.Core name in
  let a = n "a" and b = n "b" and c = n "c" and d = n "d" in
  let link ~src ~dst delay =
    ignore
      (Net.Topology.add_link topology ~src ~dst ~bandwidth:1e6 ~delay
         ~qdisc:(Net.Qdisc.droptail ~capacity:10))
  in
  link ~src:a ~dst:b 0.010;
  link ~src:b ~dst:d 0.010;
  link ~src:a ~dst:c 0.005;
  link ~src:c ~dst:d 0.005;
  link ~src:a ~dst:d 0.050;
  (topology, a, b, c, d)

let path_names = function
  | Some nodes -> String.concat "-" (List.map (fun n -> n.Net.Node.name) nodes)
  | None -> "(none)"

let test_routing_picks_min_delay () =
  let topology, a, _, _, d = diamond () in
  Alcotest.(check string) "via c" "a-c-d"
    (path_names (Net.Routing.shortest_path topology ~src:a ~dst:d))

let test_routing_trivial_and_unreachable () =
  let topology, a, b, _, d = diamond () in
  Alcotest.(check string) "self" "a" (path_names (Net.Routing.shortest_path topology ~src:a ~dst:a));
  (* No link enters [a]. *)
  Alcotest.(check string) "unreachable" "(none)"
    (path_names (Net.Routing.shortest_path topology ~src:d ~dst:a));
  Alcotest.(check string) "one hop" "b-d"
    (path_names (Net.Routing.shortest_path topology ~src:b ~dst:d))

let test_routing_hop_tiebreak () =
  (* Equal delay, different hop counts: prefer fewer hops. *)
  let engine = Sim.Engine.create () in
  let topology = Net.Topology.create engine in
  let n name = Net.Topology.add_node topology ~kind:Net.Node.Core name in
  let a = n "a" and b = n "b" and c = n "c" in
  let link ~src ~dst delay =
    ignore
      (Net.Topology.add_link topology ~src ~dst ~bandwidth:1e6 ~delay
         ~qdisc:(Net.Qdisc.droptail ~capacity:10))
  in
  link ~src:a ~dst:c 0.010;
  link ~src:a ~dst:b 0.005;
  link ~src:b ~dst:c 0.005;
  Alcotest.(check string) "direct link wins the tie" "a-c"
    (path_names (Net.Routing.shortest_path topology ~src:a ~dst:c))

let test_routing_paths_from_consistent () =
  let topology, a, b, c, d = diamond () in
  let route = Net.Routing.paths_from topology ~src:a in
  List.iter
    (fun dst ->
      Alcotest.(check string) ("to " ^ dst.Net.Node.name)
        (path_names (Net.Routing.shortest_path topology ~src:a ~dst))
        (path_names (route dst)))
    [ a; b; c; d ]

(* ------------------------------------------------------------------ *)
(* Source *)

let make_source ?(params = Net.Source.default_params) ?epoch_offset ~collect engine =
  let sent = ref [] in
  let src =
    Net.Source.create ~engine ?epoch_offset ~params
      ~emit:(fun ~now ~rate:_ -> sent := now :: !sent)
      ~collect ()
  in
  (src, sent)

let no_feedback () = 0

let test_source_paces_at_rate () =
  let engine = Sim.Engine.create () in
  let params =
    { Net.Source.default_params with Net.Source.initial_rate = 10.; ss_thresh = 5. }
  in
  (* initial >= ss_thresh puts the source directly in linear mode; with
     no feedback it climbs by alpha per epoch, so count only early
     packets. *)
  let src, sent = make_source ~params ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 0.49;
  Net.Source.stop src;
  (* 10 pkt/s for ~0.5 s -> 5-6 sends (first fires immediately). *)
  Alcotest.(check bool) "roughly paced" true
    (List.length !sent >= 5 && List.length !sent <= 7)

let test_source_slow_start_doubles () =
  let engine = Sim.Engine.create () in
  let src, _ = make_source ~collect:no_feedback engine in
  Net.Source.start src;
  Alcotest.(check bool) "starts in slow-start" true (Net.Source.phase src = Net.Source.Slow_start);
  check_float "initial rate" 1. (Net.Source.rate src);
  Sim.Engine.run_until engine 1.05;
  check_float "doubled once" 2. (Net.Source.rate src);
  Sim.Engine.run_until engine 3.05;
  check_float "doubled thrice" 8. (Net.Source.rate src)

let test_source_slow_start_threshold_exit () =
  let engine = Sim.Engine.create () in
  let src, _ = make_source ~collect:no_feedback engine in
  Net.Source.start src;
  (* 1 -> 2 -> 4 -> 8 -> 16 -> 32 -> (64 > 32: halve, exit). *)
  Sim.Engine.run_until engine 5.95;
  check_float "still doubling" 32. (Net.Source.rate src);
  Alcotest.(check bool) "still slow-start" true
    (Net.Source.phase src = Net.Source.Slow_start);
  Sim.Engine.run_until engine 6.05;
  Alcotest.(check bool) "exited" true (Net.Source.phase src = Net.Source.Linear);
  (* An adaptation epoch also ends at exactly t = 6, adding alpha. *)
  check_float "halved back (plus one epoch tick)" 33. (Net.Source.rate src)

let test_source_congestion_exits_slow_start () =
  let engine = Sim.Engine.create () in
  let src, _ = make_source ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 2.5;
  check_float "rate before" 4. (Net.Source.rate src);
  Net.Source.signal_congestion src;
  Alcotest.(check bool) "linear now" true (Net.Source.phase src = Net.Source.Linear);
  check_float "halved" 2. (Net.Source.rate src);
  (* No further doubling. *)
  Sim.Engine.run_until engine 6.;
  Alcotest.(check bool) "rate grew linearly" true (Net.Source.rate src < 32.)

let test_source_linear_increase () =
  let engine = Sim.Engine.create () in
  let params =
    { Net.Source.default_params with Net.Source.initial_rate = 40.; ss_thresh = 32. }
  in
  let src, _ = make_source ~params ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 2.01;
  (* 4 epochs of 0.5 s -> +4. *)
  check_float "alpha per epoch" 44. (Net.Source.rate src)

let test_source_decrease_on_feedback () =
  let engine = Sim.Engine.create () in
  let pending = ref 0 in
  let collect () =
    let m = !pending in
    pending := 0;
    m
  in
  let params =
    { Net.Source.default_params with Net.Source.initial_rate = 40.; ss_thresh = 32. }
  in
  let sent = ref [] in
  let src =
    Net.Source.create ~engine ~params
      ~emit:(fun ~now ~rate:_ -> sent := now :: !sent)
      ~collect ()
  in
  Net.Source.start src;
  ignore (Sim.Engine.schedule engine ~delay:0.4 (fun () -> pending := 5));
  Sim.Engine.run_until engine 0.55;
  (* One epoch with m = 5: 40 - 5*beta = 35. *)
  check_float "beta decrease" 35. (Net.Source.rate src)

let test_source_floor_clamps_decrease () =
  let engine = Sim.Engine.create () in
  let pending = ref 0 in
  let collect () =
    let m = !pending in
    pending := 0;
    m
  in
  let params =
    {
      Net.Source.default_params with
      Net.Source.initial_rate = 40.;
      ss_thresh = 32.;
      floor = 30.;
    }
  in
  let src =
    Net.Source.create ~engine ~params ~emit:(fun ~now:_ ~rate:_ -> ()) ~collect ()
  in
  Net.Source.start src;
  ignore (Sim.Engine.schedule engine ~delay:0.4 (fun () -> pending := 100));
  Sim.Engine.run_until engine 0.55;
  check_float "clamped to contract floor" 30. (Net.Source.rate src)

let test_source_restart_resets () =
  let engine = Sim.Engine.create () in
  let src, _ = make_source ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 4.1;
  Net.Source.stop src;
  Alcotest.(check bool) "stopped" false (Net.Source.running src);
  Net.Source.start src;
  check_float "rate reset" 1. (Net.Source.rate src);
  Alcotest.(check bool) "slow-start again" true
    (Net.Source.phase src = Net.Source.Slow_start)

let test_source_stop_stops_emitting () =
  let engine = Sim.Engine.create () in
  let src, sent = make_source ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 2.;
  Net.Source.stop src;
  let count = List.length !sent in
  Sim.Engine.run_until engine 10.;
  Alcotest.(check int) "no more sends" count (List.length !sent)

let test_source_emitted_counts_across_restarts () =
  let engine = Sim.Engine.create () in
  let src, _ = make_source ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 2.;
  Net.Source.stop src;
  let first_life = Net.Source.emitted src in
  Net.Source.start src;
  Sim.Engine.run_until engine 4.;
  Alcotest.(check bool) "keeps counting" true (Net.Source.emitted src > first_life)

(* Feedback-silence recovery (robustness extension): after
   [silence_epochs] feedback-free linear epochs the additive probe
   turns multiplicative, and any feedback snaps it back to additive. *)
let test_source_silence_recovery () =
  let engine = Sim.Engine.create () in
  let params =
    {
      Net.Source.default_params with
      Net.Source.initial_rate = 40.;
      ss_thresh = 32.;
      silence_epochs = 2;
      restore = 2.;
    }
  in
  let m = ref 0 in
  let src, _ = make_source ~params ~collect:(fun () -> let v = !m in m := 0; v) engine in
  Net.Source.start src;
  (* Epochs at 0.5/1.0/1.5/2.0 s, all silent: 40 -> +1 -> 41 (silent=1),
     then doubling once the streak reaches 2: 82, 164, 328. *)
  Sim.Engine.run_until engine 2.01;
  check_float "multiplicative restoration" 328. (Net.Source.rate src);
  (* Feedback ends the silence: beta decrease now, additive probe after. *)
  m := 1;
  Sim.Engine.run_until engine 2.51;
  check_float "feedback throttles" 327. (Net.Source.rate src);
  Sim.Engine.run_until engine 3.01;
  check_float "streak reset, additive again" 328. (Net.Source.rate src)

let test_source_rejects_bad_recovery_params () =
  let engine = Sim.Engine.create () in
  let mk params () =
    ignore
      (Net.Source.create ~engine ~params
         ~emit:(fun ~now:_ ~rate:_ -> ())
         ~collect:no_feedback ())
  in
  Alcotest.check_raises "negative silence_epochs"
    (Invalid_argument "Source.create: silence_epochs must be non-negative")
    (mk { Net.Source.default_params with Net.Source.silence_epochs = -1 });
  Alcotest.check_raises "restore <= 1"
    (Invalid_argument "Source.create: restore must be a finite factor > 1")
    (mk { Net.Source.default_params with Net.Source.silence_epochs = 3; restore = 1. });
  Alcotest.check_raises "nan restore"
    (Invalid_argument "Source.create: restore must be a finite factor > 1")
    (mk
       { Net.Source.default_params with Net.Source.silence_epochs = 3; restore = Float.nan })

(* One regression per validated boundary: non-positive (or non-finite)
   rates and periods must raise instead of silently producing a nan
   pacing schedule. *)
let test_source_rejects_bad_params () =
  let engine = Sim.Engine.create () in
  let rejects descr msg params =
    Alcotest.check_raises descr (Invalid_argument ("Source.create: " ^ msg))
      (fun () ->
        ignore
          (Net.Source.create ~engine ~params
             ~emit:(fun ~now:_ ~rate:_ -> ())
             ~collect:no_feedback ()))
  in
  let d = Net.Source.default_params in
  rejects "zero initial_rate" "initial_rate must be positive"
    { d with Net.Source.initial_rate = 0. };
  rejects "nan initial_rate" "initial_rate must be positive"
    { d with Net.Source.initial_rate = Float.nan };
  rejects "negative epoch" "epoch must be positive"
    { d with Net.Source.epoch = -0.5 };
  rejects "nan epoch" "epoch must be positive"
    { d with Net.Source.epoch = Float.nan };
  rejects "zero alpha" "alpha must be positive" { d with Net.Source.alpha = 0. };
  rejects "negative beta" "beta must be positive"
    { d with Net.Source.beta = -1. };
  rejects "zero ss_thresh" "ss_thresh must be positive"
    { d with Net.Source.ss_thresh = 0. };
  rejects "infinite ss_period" "ss_period must be positive"
    { d with Net.Source.ss_period = Float.infinity };
  rejects "negative min_rate" "min_rate must be non-negative"
    { d with Net.Source.min_rate = -0.5 };
  rejects "negative floor" "floor must be non-negative"
    { d with Net.Source.floor = -1. };
  rejects "nan floor" "floor must be non-negative"
    { d with Net.Source.floor = Float.nan }

let test_source_rejects_bad_offset () =
  let engine = Sim.Engine.create () in
  Alcotest.check_raises "offset >= epoch"
    (Invalid_argument "Source.create: epoch_offset out of [0, epoch)") (fun () ->
      ignore
        (Net.Source.create ~engine ~epoch_offset:1.
           ~params:Net.Source.default_params
           ~emit:(fun ~now:_ ~rate:_ -> ())
           ~collect:no_feedback ()))

let test_source_epoch_offset_shifts_adaptation () =
  let engine = Sim.Engine.create () in
  let params =
    { Net.Source.default_params with Net.Source.initial_rate = 40.; ss_thresh = 32. }
  in
  let src, _ = make_source ~params ~epoch_offset:0.25 ~collect:no_feedback engine in
  Net.Source.start src;
  Sim.Engine.run_until engine 0.6;
  (* Epoch boundary at 0.75, not 0.5: rate unchanged so far. *)
  check_float "no tick yet" 40. (Net.Source.rate src);
  Sim.Engine.run_until engine 0.8;
  check_float "tick at 0.75" 41. (Net.Source.rate src)

(* ------------------------------------------------------------------ *)
(* Invariant auditing *)

(* A qdisc whose bookkeeping lies: it claims [Enqueued] without growing
   the queue and hands out packets it never stored. *)
let lying_qdisc () =
  {
    Net.Qdisc.enqueue = (fun _ -> Net.Qdisc.Enqueued);
    dequeue = (fun () -> Some (mk_packet ()));
    length = (fun () -> 0);
    bytes = (fun () -> 0);
    kind = "lying";
  }

let expect_violation what f =
  match f () with
  | exception Sim.Invariant.Violation msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s names the broken property (%s)" what msg)
      true
      (String.length msg > 0)
  | _ -> Alcotest.fail (what ^ ": expected Sim.Invariant.Violation")

let test_qdisc_invariants_catch_lies () =
  let q = Net.Qdisc.with_invariants (lying_qdisc ()) in
  expect_violation "phantom enqueue" (fun () -> q.Net.Qdisc.enqueue (mk_packet ()));
  expect_violation "phantom dequeue" (fun () -> q.Net.Qdisc.dequeue ())

let test_qdisc_invariants_pass_honest_queue () =
  (* A real droptail under the auditor behaves identically. *)
  let q = Net.Qdisc.with_invariants (Net.Qdisc.droptail ~capacity:2) in
  Alcotest.(check bool) "enqueue ok" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:1 ()) = Net.Qdisc.Enqueued);
  Alcotest.(check bool) "enqueue ok" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:2 ()) = Net.Qdisc.Enqueued);
  Alcotest.(check bool) "overflow dropped" true
    (q.Net.Qdisc.enqueue (mk_packet ~id:3 ()) = Net.Qdisc.Dropped);
  Alcotest.(check int) "two queued" 2 (q.Net.Qdisc.length ());
  Alcotest.(check bool) "fifo out" true
    (match q.Net.Qdisc.dequeue () with Some p -> p.Net.Packet.id = 1 | None -> false)

let test_link_conservation_audited () =
  (* Push a checked link through service, queueing and overflow; the
     conservation audit (arrivals = departures + drops + queued +
     in-service) runs at every stable point and stays silent. *)
  let before = Sim.Invariant.checks_run () in
  let engine, _, _, b, link = simple_net ~capacity:2 () in
  Net.Node.set_sink b ~flow:1 (fun _ -> ());
  for i = 1 to 8 do
    Net.Link.send link (mk_packet ~id:i ())
  done;
  Sim.Engine.run engine;
  Alcotest.(check int) "accounting closes" link.Net.Link.arrivals
    (link.Net.Link.departures + link.Net.Link.drops);
  Alcotest.(check bool) "auditing ran" true (Sim.Invariant.checks_run () > before)

(* Audit every runtime invariant (Sim.Invariant) in all suites. *)
let () = Sim.Invariant.set_default true

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "defaults" `Quick test_packet_defaults;
          Alcotest.test_case "marker" `Quick test_packet_marker;
        ] );
      ( "droptail",
        [
          Alcotest.test_case "fifo" `Quick test_droptail_fifo;
          Alcotest.test_case "capacity" `Quick test_droptail_capacity;
          Alcotest.test_case "bytes" `Quick test_droptail_bytes;
          Alcotest.test_case "bad capacity" `Quick test_droptail_rejects_bad_capacity;
          qt prop_fifo_matches_stdlib_queue;
        ] );
      ( "red",
        [
          Alcotest.test_case "accepts below min" `Quick test_red_accepts_below_min;
          Alcotest.test_case "drops above max" `Quick test_red_drops_above_max;
          Alcotest.test_case "hard limit" `Quick test_red_hard_limit;
          Alcotest.test_case "idle decay" `Quick test_red_idle_decay;
        ] );
      ( "fred",
        [
          Alcotest.test_case "bounds hog flow" `Quick test_fred_bounds_hog_flow;
          Alcotest.test_case "forgets inactive flows" `Quick
            test_fred_forgets_inactive_flows;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery timing" `Quick test_link_delivery_timing;
          Alcotest.test_case "serialization" `Quick test_link_serializes;
          Alcotest.test_case "overflow drops" `Quick test_link_queue_overflow_drops;
          Alcotest.test_case "hook filter" `Quick test_link_hook_filter_drop;
          Alcotest.test_case "queue change hook" `Quick test_link_queue_change_hook;
          Alcotest.test_case "capacity pps" `Quick test_link_capacity_pps;
          Alcotest.test_case "bad args" `Quick test_link_rejects_bad_args;
          Alcotest.test_case "down purges and recovers" `Quick
            test_link_down_purges_and_recovers;
          Alcotest.test_case "send while down" `Quick test_link_send_while_down_drops;
          Alcotest.test_case "reset purges but stays up" `Quick
            test_link_reset_purges_but_stays_up;
          Alcotest.test_case "fault hook strip/lose" `Quick
            test_link_fault_hook_strip_and_lose;
        ] );
      ( "topology",
        [
          Alcotest.test_case "route and sink" `Quick test_node_routes_and_sinks;
          Alcotest.test_case "unknown flow" `Quick test_node_unknown_flow_fails;
          Alcotest.test_case "duplicate node" `Quick test_topology_duplicate_node;
          Alcotest.test_case "duplicate link" `Quick test_topology_duplicate_link;
          Alcotest.test_case "path helpers" `Quick test_topology_path_helpers;
          Alcotest.test_case "flow validation" `Quick test_flow_validation;
          Alcotest.test_case "upstream delay" `Quick test_flow_upstream_delay;
        ] );
      ( "drr",
        [
          Alcotest.test_case "weighted service" `Quick test_drr_weighted_service;
          Alcotest.test_case "fifo within flow" `Quick test_drr_fifo_within_flow;
          Alcotest.test_case "per-flow capacity" `Quick test_drr_per_flow_capacity;
          Alcotest.test_case "fractional weight" `Quick test_drr_fractional_weight;
          Alcotest.test_case "validation" `Quick test_drr_validation;
        ] );
      ( "probe",
        [
          Alcotest.test_case "throughput and queue" `Quick
            test_probe_tracks_throughput_and_queue;
          Alcotest.test_case "drops and detach" `Quick test_probe_counts_drops;
          Alcotest.test_case "validation" `Quick test_probe_validation;
        ] );
      ( "classful",
        [
          Alcotest.test_case "priority order" `Quick test_classful_priority_order;
          Alcotest.test_case "wrr proportions" `Quick test_classful_wrr_proportions;
          Alcotest.test_case "aggregate length" `Quick test_classful_aggregate_length;
          Alcotest.test_case "per-class capacity" `Quick test_classful_per_class_capacity;
          Alcotest.test_case "wrr skips empty" `Quick test_classful_wrr_skips_empty_classes;
          Alcotest.test_case "validation" `Quick test_classful_validation;
        ] );
      ( "routing",
        [
          Alcotest.test_case "min delay" `Quick test_routing_picks_min_delay;
          Alcotest.test_case "trivial and unreachable" `Quick
            test_routing_trivial_and_unreachable;
          Alcotest.test_case "hop tiebreak" `Quick test_routing_hop_tiebreak;
          Alcotest.test_case "paths_from consistent" `Quick
            test_routing_paths_from_consistent;
        ] );
      ( "source",
        [
          Alcotest.test_case "paces at rate" `Quick test_source_paces_at_rate;
          Alcotest.test_case "slow-start doubles" `Quick test_source_slow_start_doubles;
          Alcotest.test_case "ss-thresh exit" `Quick test_source_slow_start_threshold_exit;
          Alcotest.test_case "congestion exits ss" `Quick
            test_source_congestion_exits_slow_start;
          Alcotest.test_case "linear increase" `Quick test_source_linear_increase;
          Alcotest.test_case "beta decrease" `Quick test_source_decrease_on_feedback;
          Alcotest.test_case "floor clamp" `Quick test_source_floor_clamps_decrease;
          Alcotest.test_case "restart resets" `Quick test_source_restart_resets;
          Alcotest.test_case "stop stops" `Quick test_source_stop_stops_emitting;
          Alcotest.test_case "emitted counter" `Quick
            test_source_emitted_counts_across_restarts;
          Alcotest.test_case "silence recovery" `Quick test_source_silence_recovery;
          Alcotest.test_case "bad recovery params" `Quick
            test_source_rejects_bad_recovery_params;
          Alcotest.test_case "bad params" `Quick test_source_rejects_bad_params;
          Alcotest.test_case "bad offset" `Quick test_source_rejects_bad_offset;
          Alcotest.test_case "epoch offset" `Quick test_source_epoch_offset_shifts_adaptation;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "qdisc catches lies" `Quick test_qdisc_invariants_catch_lies;
          Alcotest.test_case "qdisc passes honest queue" `Quick
            test_qdisc_invariants_pass_honest_queue;
          Alcotest.test_case "link conservation audited" `Quick
            test_link_conservation_audited;
        ] );
    ]
