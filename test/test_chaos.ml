(* Tests for the deterministic fault-injection layer: plan validation,
   injector wiring, and the chaos battery's determinism guarantees
   (serial = pooled, passive plan = no plan, replay from seeds). *)

let check_float = Alcotest.(check (float 0.))

(* ------------------------------------------------------------------ *)
(* Faultplan validation *)

let test_faultplan_rejects_bad_probabilities () =
  Alcotest.check_raises "loss > 1"
    (Invalid_argument "Faultplan.bernoulli: probability 2 outside [0, 1]") (fun () ->
      ignore (Sim.Faultplan.link_fault ~loss:(Sim.Faultplan.Bernoulli 2.) "L"));
  Alcotest.check_raises "nan feedback loss"
    (Invalid_argument "Faultplan.link_fault.feedback_loss: probability nan outside [0, 1]")
    (fun () -> ignore (Sim.Faultplan.link_fault ~feedback_loss:Float.nan "L"))

let test_faultplan_rejects_overlapping_flaps () =
  Alcotest.check_raises "down after up"
    (Invalid_argument "Faultplan.flap: up_at 5 must follow down_at 5") (fun () ->
      ignore (Sim.Faultplan.flap ~down_at:5. ~up_at:5.));
  Alcotest.check_raises "overlap"
    (Invalid_argument
       "Faultplan.link_fault: flaps overlap on L (down at 2 before up at 3)")
    (fun () ->
      ignore
        (Sim.Faultplan.link_fault
           ~flaps:
             [
               Sim.Faultplan.flap ~down_at:1. ~up_at:3.;
               Sim.Faultplan.flap ~down_at:2. ~up_at:4.;
             ]
           "L"))

let test_faultplan_flap_train () =
  let flaps = Sim.Faultplan.flap_train ~first:10. ~period:20. ~down_for:2. ~count:3 in
  Alcotest.(check int) "three flaps" 3 (List.length flaps);
  List.iteri
    (fun i f ->
      check_float "down_at" (10. +. (20. *. float_of_int i)) f.Sim.Faultplan.down_at;
      check_float "up_at" (12. +. (20. *. float_of_int i)) f.Sim.Faultplan.up_at)
    flaps

let test_faultplan_rejects_duplicate_links () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument
       "Faultplan.make: duplicate link fault for L (merge the specs; each link \
        owns one RNG substream)") (fun () ->
      ignore
        (Sim.Faultplan.make ~label:"x" ~seed:1
           ~link_faults:
             [ Sim.Faultplan.link_fault "L"; Sim.Faultplan.link_fault "L" ]
           ()))

let test_faultplan_passive () =
  Alcotest.(check bool) "none is passive" true (Sim.Faultplan.is_passive Sim.Faultplan.none);
  let active =
    Sim.Faultplan.make ~label:"x" ~seed:1
      ~resets:[ Sim.Faultplan.reset ~at:1. (Sim.Faultplan.Edge_agent 1) ]
      ()
  in
  Alcotest.(check bool) "resets are active" false (Sim.Faultplan.is_passive active)

(* ------------------------------------------------------------------ *)
(* Injector wiring *)

let small_network () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.topology1 ~engine
      ~flow_ids:(List.init 4 (fun i -> i + 1))
      ~weights:(fun _ -> 1.) ()
  in
  (engine, network)

let test_fault_apply_unknown_link () =
  let _, network = small_network () in
  let plan =
    Sim.Faultplan.make ~label:"x" ~seed:1
      ~link_faults:[ Sim.Faultplan.link_fault ~feedback_loss:0.5 "no-such-link" ]
      ()
  in
  Alcotest.check_raises "unknown link"
    (Invalid_argument "Fault.apply: unknown link no-such-link") (fun () ->
      ignore (Net.Fault.apply ~topology:network.Workload.Network.topology plan))

let test_fault_apply_rejects_doubly_matched_link () =
  let _, network = small_network () in
  let name = (List.hd network.Workload.Network.core_links).Net.Link.name in
  let plan =
    Sim.Faultplan.make ~label:"x" ~seed:1
      ~link_faults:
        [
          Sim.Faultplan.link_fault ~feedback_loss:0.5 "*";
          Sim.Faultplan.link_fault ~feedback_loss:0.5 name;
        ]
      ()
  in
  Alcotest.check_raises "wildcard + exact overlap"
    (Invalid_argument
       ("Fault.apply: link " ^ name ^ " matched by two fault specs (merge them)"))
    (fun () -> ignore (Net.Fault.apply ~topology:network.Workload.Network.topology plan))

let test_resets_require_corelite () =
  let _, network = small_network () in
  let plan =
    Sim.Faultplan.make ~label:"x" ~seed:1
      ~resets:[ Sim.Faultplan.reset ~at:5. (Sim.Faultplan.Core_router "C1->C2") ]
      ()
  in
  Alcotest.check_raises "csfq cannot reset routers"
    (Invalid_argument "Runner.run: router resets require the Corelite scheme")
    (fun () ->
      ignore
        (Workload.Runner.run ~scheme:(Workload.Runner.Csfq Csfq.Params.default)
           ~network ~fault:plan
           ~schedule:[ (0., Workload.Runner.Start 1) ]
           ~duration:1. ()))

let test_reset_unknown_targets_rejected () =
  let run resets =
    let _, network = small_network () in
    let plan = Sim.Faultplan.make ~label:"x" ~seed:1 ~resets () in
    ignore
      (Workload.Runner.run
         ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
         ~network ~fault:plan
         ~schedule:[ (0., Workload.Runner.Start 1) ]
         ~duration:1. ())
  in
  Alcotest.check_raises "unknown core"
    (Invalid_argument "Deployment.schedule_resets: no core on link bogus") (fun () ->
      run [ Sim.Faultplan.reset ~at:0.5 (Sim.Faultplan.Core_router "bogus") ]);
  Alcotest.check_raises "unknown agent"
    (Invalid_argument "Deployment.schedule_resets: no agent for flow 99") (fun () ->
      run [ Sim.Faultplan.reset ~at:0.5 (Sim.Faultplan.Edge_agent 99) ])

(* ------------------------------------------------------------------ *)
(* Determinism guarantees *)

let corelite_run ?fault () =
  let _, network = small_network () in
  let schedule = List.init 4 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  Workload.Runner.run
    ~scheme:(Workload.Runner.Corelite Workload.Chaos.recovery_params)
    ~network ?fault ~schedule ~duration:20. ()

let fingerprint (r : Workload.Runner.result) =
  let series =
    List.concat_map
      (fun (flow, ts) ->
        Array.to_list
          (Array.map
             (fun (t, v) -> Printf.sprintf "%d:%.17g:%.17g" flow t v)
             (Sim.Timeseries.to_array ts)))
      r.Workload.Runner.goodput_series
  in
  String.concat ";"
    (Printf.sprintf "drops=%d fb=%d" r.Workload.Runner.core_drops
       r.Workload.Runner.feedback_markers
    :: series)

(* A passive plan must leave the run byte-identical to no plan at all:
   the injector draws nothing, installs nothing, schedules nothing. *)
let test_passive_plan_is_free () =
  let bare = fingerprint (corelite_run ()) in
  let passive =
    fingerprint
      (corelite_run ~fault:(Sim.Faultplan.make ~label:"passive" ~seed:7 ()) ())
  in
  Alcotest.(check string) "byte-identical" bare passive

(* Same plan, same seeds -> byte-identical faulted run (replay); a
   different fault seed perturbs it (the faults are actually live). *)
let test_faulted_run_replays_from_seed () =
  let faulted seed =
    let plan =
      Sim.Faultplan.make ~label:"replay" ~seed
        ~link_faults:
          [
            Sim.Faultplan.link_fault ~loss:(Sim.Faultplan.Bernoulli 0.1)
              ~target:Sim.Faultplan.Markers_only ~feedback_loss:0.1 "*";
          ]
        ()
    in
    fingerprint (corelite_run ~fault:plan ())
  in
  Alcotest.(check string) "same seed replays" (faulted 1) (faulted 1);
  Alcotest.(check bool) "different seed diverges" true (faulted 1 <> faulted 2)

(* The battery's own currency: pooled execution must produce CSV bytes
   equal to serial execution. One group is enough for a unit test; the
   chaos bench asserts it over the whole battery. *)
let test_battery_serial_equals_pooled () =
  let groups = Workload.Chaos.jobs ~quick:true () in
  let name, jobs = List.nth groups 2 (* link flaps: the cheapest group *) in
  Alcotest.(check string) ("group " ^ name)
    (Workload.Chaos.csv_of_points (List.map (fun j -> j.Workload.Pool.run ()) jobs))
    (Workload.Chaos.csv_of_points (Workload.Pool.map ~domains:2 jobs))

(* ------------------------------------------------------------------ *)
(* Chaos + churn composition *)

(* A fault plan applied to a churn scenario must replay byte-
   identically: the injector is installed before the first arrival is
   scheduled, the plan's draws descend from (fault_seed, label) and the
   workload's from (seed, label), never interleaved. The cmp currency
   is the battery CSV, same as the churn bench. *)
let test_churn_faults_replay () =
  let csv fault_seed =
    Workload.Churn.csv_of_points
      [
        Workload.Churn.run_point ~quick:true ~fault_seed
          ~scheme:Workload.Churn.Corelite ~variant:Workload.Churn.Faulty ();
      ]
  in
  Alcotest.(check string) "same fault seed replays" (csv 271828) (csv 271828);
  Alcotest.(check bool) "different fault seed diverges" true
    (csv 271828 <> csv 1)

let test_churn_serial_equals_pooled () =
  let jobs () =
    List.map
      (fun scheme ->
        Workload.Churn.point_job ~quick:true ~scheme
          ~variant:Workload.Churn.Faulty ())
      [ Workload.Churn.Csfq; Workload.Churn.Drr ]
  in
  Alcotest.(check string) "churn+faults points"
    (Workload.Churn.csv_of_points
       (List.map (fun j -> j.Workload.Pool.run ()) (jobs ())))
    (Workload.Churn.csv_of_points (Workload.Pool.map ~domains:2 (jobs ())))

let () =
  Alcotest.run "chaos"
    [
      ( "faultplan",
        [
          Alcotest.test_case "bad probabilities" `Quick
            test_faultplan_rejects_bad_probabilities;
          Alcotest.test_case "overlapping flaps" `Quick
            test_faultplan_rejects_overlapping_flaps;
          Alcotest.test_case "flap train" `Quick test_faultplan_flap_train;
          Alcotest.test_case "duplicate links" `Quick
            test_faultplan_rejects_duplicate_links;
          Alcotest.test_case "passive" `Quick test_faultplan_passive;
        ] );
      ( "injector",
        [
          Alcotest.test_case "unknown link" `Quick test_fault_apply_unknown_link;
          Alcotest.test_case "doubly matched link" `Quick
            test_fault_apply_rejects_doubly_matched_link;
          Alcotest.test_case "resets need corelite" `Quick test_resets_require_corelite;
          Alcotest.test_case "unknown reset targets" `Quick
            test_reset_unknown_targets_rejected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "passive plan is free" `Quick test_passive_plan_is_free;
          Alcotest.test_case "replay from seed" `Quick
            test_faulted_run_replays_from_seed;
          Alcotest.test_case "serial = pooled" `Slow test_battery_serial_equals_pooled;
        ] );
      ( "churn composition",
        [
          Alcotest.test_case "churn+faults replays from seed" `Slow
            test_churn_faults_replay;
          Alcotest.test_case "churn+faults serial = pooled" `Slow
            test_churn_serial_equals_pooled;
        ] );
    ]
