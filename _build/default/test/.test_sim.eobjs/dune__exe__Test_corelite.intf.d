test/test_corelite.mli:
