test/test_tcp.ml: Alcotest Corelite Csfq Float List Net Printf Sim Workload
