test/test_integration.ml: Alcotest Corelite Csfq Fairness Float Gen List Net Option Printf QCheck QCheck_alcotest Sim Workload
