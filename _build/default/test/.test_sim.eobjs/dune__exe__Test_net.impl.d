test/test_net.ml: Alcotest Array Float List Net Printf Sim String
