test/test_workload.ml: Alcotest Array Corelite Csfq Filename Float Format List Net Printf QCheck QCheck_alcotest Sim String Sys Workload
