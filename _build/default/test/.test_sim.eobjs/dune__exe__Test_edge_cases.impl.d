test/test_edge_cases.ml: Alcotest Corelite Csfq Fairness List Net Option Sim Workload
