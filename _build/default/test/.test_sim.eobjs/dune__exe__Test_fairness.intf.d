test/test_fairness.mli:
