test/test_deployment.mli:
