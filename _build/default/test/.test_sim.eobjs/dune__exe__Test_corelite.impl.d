test/test_corelite.ml: Alcotest Corelite Float List Net Option Printf QCheck QCheck_alcotest Sim Workload
