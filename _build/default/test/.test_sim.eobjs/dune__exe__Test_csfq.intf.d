test/test_csfq.mli:
