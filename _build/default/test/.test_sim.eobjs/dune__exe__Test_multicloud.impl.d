test/test_multicloud.ml: Alcotest Corelite Float List Printf Sim Workload
