test/test_deployment.ml: Alcotest Corelite Csfq Filename List Net Printf Sim Sys Workload
