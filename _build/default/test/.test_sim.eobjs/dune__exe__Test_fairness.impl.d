test/test_fairness.ml: Alcotest Fairness Float Fun Hashtbl List Option Printf QCheck QCheck_alcotest Sim Workload
