test/test_multicloud.mli:
