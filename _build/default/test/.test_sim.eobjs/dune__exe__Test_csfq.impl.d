test/test_csfq.ml: Alcotest Csfq List Net Option Sim Workload
