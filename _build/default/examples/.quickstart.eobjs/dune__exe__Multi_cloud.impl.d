examples/multi_cloud.ml: Corelite Hashtbl List Option Printf Sim Workload
