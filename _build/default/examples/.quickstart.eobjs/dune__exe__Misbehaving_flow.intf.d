examples/misbehaving_flow.mli:
