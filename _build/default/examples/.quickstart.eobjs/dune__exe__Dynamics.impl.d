examples/dynamics.ml: Corelite List Net Printf Sim Workload
