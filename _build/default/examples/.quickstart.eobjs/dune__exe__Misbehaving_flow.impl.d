examples/misbehaving_flow.ml: Corelite Csfq List Printf Sim Workload
