examples/rate_contracts.mli:
