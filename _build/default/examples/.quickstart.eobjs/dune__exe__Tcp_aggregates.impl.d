examples/tcp_aggregates.ml: Hashtbl List Net Option Printf Sim Workload
