examples/quickstart.ml: Corelite List Net Printf Sim Workload
