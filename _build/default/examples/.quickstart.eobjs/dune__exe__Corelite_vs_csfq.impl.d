examples/corelite_vs_csfq.ml: Corelite Csfq Fairness List Printf Sim Workload
