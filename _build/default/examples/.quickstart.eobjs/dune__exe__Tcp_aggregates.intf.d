examples/tcp_aggregates.mli:
