examples/analysis_triangle.ml: Corelite Fairness Float List Printf Sim Workload
