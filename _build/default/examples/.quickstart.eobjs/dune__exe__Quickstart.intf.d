examples/quickstart.mli:
