examples/analysis_triangle.mli:
