examples/corelite_vs_csfq.mli:
