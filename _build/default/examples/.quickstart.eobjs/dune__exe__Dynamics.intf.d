examples/dynamics.mli:
