examples/rate_contracts.ml: Corelite Fairness List Net Option Printf Sim Workload
