(* Policing a misbehaving (unresponsive) flow.

   Flow 1 is a firehose that ignores all congestion signals and blasts
   at 450 pkt/s into a 500 pkt/s bottleneck shared with two adaptive
   flows (fair share ~166.7 pkt/s each). Under weighted CSFQ the core's
   probabilistic dropping polices the firehose's goodput toward its
   share. Under Corelite the stateless selector aims *all* marker
   feedback at the flow whose normalized rate exceeds the running
   average, so the compliant flows are never throttled below their
   shares — but actual enforcement of the deaf flow belongs to its
   ingress edge shaper ("drop packets from ill behaved flows at the
   edges of the network"), absent here by construction.

   Run with: dune exec examples/misbehaving_flow.exe *)

let duration = 120.

let run scheme ~corelite_markers =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 3 in
  let blaster =
    Workload.Blaster.attach ~network ~flow:1 ~rate:450. ~corelite_markers ()
  in
  let result =
    Workload.Runner.run ~scheme ~network
      ~schedule:[ (0., Workload.Runner.Start 2); (0., Workload.Runner.Start 3) ]
      ~duration ()
  in
  (result, blaster)

let report name (result, blaster) =
  Printf.printf "\n== %s ==\n" name;
  Printf.printf "firehose offered rate        : 450 pkt/s\n";
  Printf.printf "firehose goodput             : %.1f pkt/s (%.0f%% survives)\n"
    (float_of_int (Workload.Blaster.delivered blaster) /. duration)
    (100. *. Workload.Blaster.survival blaster);
  List.iter
    (fun flow ->
      Printf.printf "adaptive flow %d allowed rate : %.1f pkt/s\n" flow
        (Workload.Runner.mean_rate result ~flow ~from:90. ~until:duration))
    [ 2; 3 ];
  Printf.printf "core drops                   : %d\n" result.Workload.Runner.core_drops

let () =
  report "weighted CSFQ (drops police the firehose)"
    (run (Workload.Runner.Csfq Csfq.Params.default) ~corelite_markers:false);
  report "Corelite (selective feedback shields compliant flows)"
    (run (Workload.Runner.Corelite Corelite.Params.default) ~corelite_markers:true);
  report "plain DropTail (no protection at all)"
    (run (Workload.Runner.Plain Csfq.Params.default) ~corelite_markers:false);
  Printf.printf
    "\nCSFQ polices the firehose's goodput in the core; Corelite keeps\n\
     the compliant flows near their shares and leaves enforcement of\n\
     the misbehaving flow to its (here absent) ingress edge shaper;\n\
     plain DropTail lets the firehose starve everyone.\n"
