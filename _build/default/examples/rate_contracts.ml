(* Minimum rate contracts (the paper's extension hook).

   Flow 1 holds a 200 pkt/s contract on a 500 pkt/s bottleneck shared
   with three best-effort flows of the same weight. The expected
   allocation is floor + weighted share of the residual:
   flow 1 = 200 + 75 = 275, the others 75 each. Markers advertise only
   the contended part of the rate, so the reserved traffic never
   attracts selective feedback.

   Run with: dune exec examples/rate_contracts.exe *)

let () =
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 4 in
  let schedule = List.init 4 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  let floors = [ (1, 200.) ] in
  let result =
    Workload.Runner.run
      ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~floors ~schedule ~duration:150. ()
  in
  (* The max-min solver understands floors, so the reference comes from
     the same machinery. *)
  let demands =
    List.map
      (fun flow ->
        let id = flow.Net.Flow.id in
        Fairness.Maxmin.demand
          ~floor:(Option.value ~default:0. (List.assoc_opt id floors))
          ~flow:id ~weight:flow.Net.Flow.weight
          ~links:
            (List.map
               (fun l -> l.Net.Link.id)
               (Net.Flow.links flow network.Workload.Network.topology))
          ())
      network.Workload.Network.flows
  in
  let reference =
    Fairness.Maxmin.solve ~capacities:(Workload.Network.link_capacities network)
      ~demands
  in
  Printf.printf "flow  contract  measured  expected\n";
  List.iter
    (fun flow ->
      let id = flow.Net.Flow.id in
      Printf.printf "%4d  %8.0f  %8.1f  %8.1f\n" id
        (Option.value ~default:0. (List.assoc_opt id floors))
        (Workload.Runner.mean_rate result ~flow:id ~from:120. ~until:150.)
        (List.assoc id reference))
    network.Workload.Network.flows;
  Printf.printf "\ncore drops: %d\n" result.Workload.Runner.core_drops
