(* TCP micro-flows inside shaped edge-to-edge aggregates.

   Two aggregates share one 4 Mbps bottleneck with rate weights 1 and 2;
   each carries three TCP bulk transfers submitted by end hosts at the
   ingress edge. Corelite allocates the aggregates 167 and 333 pkt/s;
   inside each aggregate the edge's round-robin shaper splits the rate
   evenly across the TCP connections — per-flow weighted fairness for
   traffic that is itself closed-loop.

   Run with: dune exec examples/tcp_aggregates.exe *)

let duration = 400.

let steady_from = 300.

let () =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 2
  in
  let tcp = Workload.Tcp_workload.build ~network ~micro_flows:(fun _ -> 3) () in
  Workload.Tcp_workload.start tcp;
  (* Snapshot deliveries at the start of the steady window; report the
     goodput over [steady_from, duration] (the aggregate rate ramps
     +2 pkt/s per second from a cold start, so the early run is all
     climb). *)
  let snapshot = Hashtbl.create 8 in
  ignore
    (Sim.Engine.schedule_at engine ~time:steady_from (fun () ->
         List.iter
           (fun flow ->
             for micro = 1 to 3 do
               Hashtbl.replace snapshot (flow, micro)
                 (Workload.Tcp_workload.goodput tcp ~flow ~micro)
             done)
           [ 1; 2 ]));
  Sim.Engine.run_until engine duration;
  Workload.Tcp_workload.stop tcp;
  let window = duration -. steady_from in
  let steady_goodput ~flow ~micro =
    let total = Workload.Tcp_workload.goodput tcp ~flow ~micro in
    let before = Option.value ~default:0 (Hashtbl.find_opt snapshot (flow, micro)) in
    float_of_int (total - before) /. window
  in

  let reference = Workload.Network.expected_rates network ~active:[ 1; 2 ] in
  Printf.printf "aggregate  weight  goodput (pkt/s)  corelite share\n";
  List.iter
    (fun flow ->
      let goodput =
        steady_goodput ~flow ~micro:1 +. steady_goodput ~flow ~micro:2
        +. steady_goodput ~flow ~micro:3
      in
      Printf.printf "%9d  %6.0f  %15.1f  %14.1f\n" flow
        (Workload.Network.flow network flow).Net.Flow.weight goodput
        (List.assoc flow reference))
    [ 1; 2 ];
  Printf.printf "\nper-connection goodput inside each aggregate (pkt/s):\n";
  List.iter
    (fun flow ->
      Printf.printf "  aggregate %d:" flow;
      for micro = 1 to 3 do
        Printf.printf "  tcp%d=%.1f" micro (steady_goodput ~flow ~micro)
      done;
      print_newline ())
    [ 1; 2 ];
  Printf.printf "\nweighted fairness of aggregates (Jain): %.4f\n"
    (Workload.Tcp_workload.jain tcp);
  Printf.printf "TCP retransmissions: %d, edge-queue drops: %d\n"
    (Workload.Tcp_workload.total_retransmits tcp)
    (Workload.Tcp_workload.total_edge_drops tcp)
