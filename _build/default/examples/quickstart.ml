(* Quickstart: three flows with weights 1, 2 and 3 share one 4 Mbps
   bottleneck under Corelite. Weighted max-min fairness predicts
   83.3 / 166.7 / 250 packets per second; the run prints the measured
   rates next to that reference.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A simulation engine and a network: one bottleneck link C1->C2
        with per-flow edge routers around it. *)
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in

  (* 2. Run Corelite with the paper's default parameters: every flow
        starts at t = 0 and the simulation lasts 180 virtual seconds. *)
  let schedule = List.init 3 (fun i -> (0., Workload.Runner.Start (i + 1))) in
  let result =
    Workload.Runner.run
      ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~schedule ~duration:180. ()
  in

  (* 3. Compare steady-state rates against the weighted max-min
        reference computed by the fairness solver. *)
  let reference = Workload.Network.expected_rates network ~active:[ 1; 2; 3 ] in
  Printf.printf "flow  weight  measured (pkt/s)  weighted max-min\n";
  List.iter
    (fun flow ->
      let id = flow.Net.Flow.id in
      Printf.printf "%4d  %6.0f  %16.1f  %16.1f\n" id flow.Net.Flow.weight
        (Workload.Runner.mean_rate result ~flow:id ~from:150. ~until:180.)
        (List.assoc id reference))
    network.Workload.Network.flows;
  Printf.printf "\npackets dropped in the core: %d (Corelite throttles before loss)\n"
    result.Workload.Runner.core_drops;
  Printf.printf "fairness (Jain index on normalized rates): %.4f\n"
    (Workload.Runner.jain result ~from:150. ~until:180.)
