(* Chaining two network clouds (the paper's inter-domain future work).

   Three flows cross cloud A and then cloud B, each cloud running its
   own independent Corelite control loop. In cloud A the flows hold
   weights 1:2:3 of a 500 pkt/s bottleneck (~83/167/250); in cloud B
   they compete with equal weights against a purely local flow 4
   (equal share 125 each). End to end a flow can only receive the
   minimum of its per-cloud allocations.

   Two hand-off policies are compared:
   - oblivious: each cloud optimizes alone; cloud A keeps pushing its
     larger shares into the boundary buffer and the excess is dropped;
   - backpressure: a full hand-off buffer feeds back to cloud A's edge
     exactly like core marker feedback, so A stops overdriving flows
     that B grants less — and A's freed capacity is redistributed. The
     allocation approaches the global max-min (125 pkt/s for every
     flow) with two orders of magnitude fewer boundary drops.

   Run with: dune exec examples/multi_cloud.exe *)

let duration = 500.

let window = 150.

let run ~backpressure =
  let engine = Sim.Engine.create () in
  (* One engine, two clouds; flows 1-3 exist in both, flow 4 only in B. *)
  let cloud_a =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in
  let cloud_b = Workload.Network.single_bottleneck ~engine ~weights:(fun _ -> 1.) 4 in
  let chain = Workload.Multi_cloud.build ~backpressure ~cloud_a ~cloud_b () in
  Workload.Multi_cloud.start chain;
  let snapshot = Hashtbl.create 4 in
  ignore
    (Sim.Engine.schedule_at engine ~time:(duration -. window) (fun () ->
         for flow = 1 to 3 do
           Hashtbl.replace snapshot flow (Workload.Multi_cloud.delivered chain ~flow)
         done));
  Sim.Engine.run_until engine duration;
  Workload.Multi_cloud.stop chain;

  Printf.printf "\n== hand-off policy: %s ==\n"
    (if backpressure then "backpressure" else "oblivious");
  let share_a = Workload.Network.expected_rates cloud_a ~active:[ 1; 2; 3 ] in
  let share_b = Workload.Network.expected_rates cloud_b ~active:[ 1; 2; 3; 4 ] in
  Printf.printf "flow  cloud A share  cloud B share  end-to-end  boundary drops\n";
  for flow = 1 to 3 do
    let steady =
      float_of_int
        (Workload.Multi_cloud.delivered chain ~flow
        - Option.value ~default:0 (Hashtbl.find_opt snapshot flow))
      /. window
    in
    Printf.printf "%4d  %13.1f  %13.1f  %10.1f  %14d\n" flow (List.assoc flow share_a)
      (List.assoc flow share_b) steady
      (Workload.Multi_cloud.handoff_drops chain ~flow)
  done;
  Printf.printf "flow 4 (local to B) allowed rate: %.1f\n"
    (Corelite.Edge.rate (Workload.Multi_cloud.local_agent chain ~flow:4))

let () =
  run ~backpressure:false;
  run ~backpressure:true;
  Printf.printf
    "\nGlobal max-min across both clouds would give every flow 125 pkt/s;\n\
     backpressure approaches it without any shared inter-domain state.\n"
