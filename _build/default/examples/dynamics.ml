(* Network dynamics on the paper's Topology 1 (Figure 3 scenario,
   compressed): 20 flows with weights from Section 4.1; flows 1, 9,
   10, 11 and 16 join late and leave early. The run prints the measured
   per-flow rate in each phase against the paper's expected values
   (33.33 and 25 pkt/s per unit weight).

   Run with: dune exec examples/dynamics.exe *)

let () =
  let late = [ 1; 9; 10; 11; 16 ] in
  let all = List.init 20 (fun i -> i + 1) in
  let early = List.filter (fun i -> not (List.mem i late)) all in

  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.topology1 ~engine ~weights:Workload.Figures.weights_s41 ()
  in
  (* Compressed timeline of Figure 3: phases of 100 s instead of 250 s. *)
  let schedule =
    List.map (fun i -> (0., Workload.Runner.Start i)) early
    @ List.map (fun i -> (100., Workload.Runner.Start i)) late
    @ List.map (fun i -> (200., Workload.Runner.Stop i)) late
  in
  let result =
    Workload.Runner.run
      ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network ~schedule ~duration:300. ()
  in

  let show label ~from ~until ~active =
    let reference = Workload.Network.expected_rates network ~active in
    Printf.printf "\n== %s ==\n" label;
    Printf.printf "flow  weight  measured  expected\n";
    List.iter
      (fun id ->
        let flow = Workload.Network.flow network id in
        Printf.printf "%4d  %6.0f  %8.1f  %8.1f\n" id flow.Net.Flow.weight
          (Workload.Runner.mean_rate result ~flow:id ~from ~until)
          (List.assoc id reference))
      active;
    Printf.printf "Jain index: %.4f\n"
      (Workload.Runner.jain ~flows:active result ~from ~until)
  in
  show "phase 1: 15 flows (expect 33.3 pkt/s per unit weight)" ~from:60. ~until:100.
    ~active:early;
  show "phase 2: 20 flows (expect 25 pkt/s per unit weight)" ~from:160. ~until:200.
    ~active:all;
  show "phase 3: the 15 survivors reclaim their shares" ~from:260. ~until:300.
    ~active:early;
  Printf.printf "\ncore drops over the whole run: %d\n" result.Workload.Runner.core_drops
