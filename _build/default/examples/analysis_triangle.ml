(* The validation triangle: analysis vs simulation vs exact reference.

   The paper claims Corelite converges to weighted max-min fairness "as
   we show through both simulations and analysis". This example puts
   the three layers of this repository side by side on one scenario
   (weights 1:2:3 over a 500 pkt/s bottleneck):

   - the exact weighted max-min allocation (water-filling solver);
   - the fluid ODE model of the control loop (the "analysis");
   - the packet-level simulation (the "simulations").

   It also prints the fluid trajectory so the LIMD ramp and sawtooth
   are visible without a plotting tool.

   Run with: dune exec examples/analysis_triangle.exe *)

let () =
  let capacities = [ (0, 500.) ] in
  let ids = [ 1; 2; 3 ] in
  let weight i = float_of_int i in

  (* Exact reference. *)
  let reference =
    Fairness.Maxmin.solve ~capacities
      ~demands:
        (List.map
           (fun i -> Fairness.Maxmin.demand ~flow:i ~weight:(weight i) ~links:[ 0 ] ())
           ids)
  in

  (* Fluid analysis. *)
  let fluid_flows =
    List.map (fun i -> { Fairness.Fluid.id = i; weight = weight i; links = [ 0 ] }) ids
  in
  let fluid =
    Fairness.Fluid.simulate ~capacities ~flows:fluid_flows ~sample:10. ~duration:400. ()
  in

  (* Packet simulation. *)
  let engine = Sim.Engine.create () in
  let network = Workload.Network.single_bottleneck ~engine ~weights:weight 3 in
  let packet =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network
      ~schedule:(List.map (fun i -> (0., Workload.Runner.Start i)) ids)
      ~duration:400. ()
  in

  Printf.printf "flow  weight  max-min  fluid model  packet sim\n";
  List.iter
    (fun i ->
      Printf.printf "%4d  %6.0f  %7.1f  %11.1f  %10.1f\n" i (weight i)
        (List.assoc i reference)
        (List.assoc i fluid.Fairness.Fluid.final)
        (Workload.Runner.mean_rate packet ~flow:i ~from:350. ~until:400.))
    ids;

  Printf.printf "\nfluid trajectory of flow 3 (every 50 s):\n";
  Sim.Timeseries.iter (List.assoc 3 fluid.Fairness.Fluid.series) (fun t v ->
      if Float.rem t 50. < 9.99 then Printf.printf "  t=%5.0f  b3=%6.1f\n" t v)
