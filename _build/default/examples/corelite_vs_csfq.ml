(* Corelite vs weighted CSFQ on the paper's startup scenario
   (Figures 5 and 6): ten flows with weights ceil(i/2) start at the
   same instant on Topology 1. The example contrasts packet losses and
   convergence to the weighted-fair allocation.

   Run with: dune exec examples/corelite_vs_csfq.exe *)

let ids = List.init 10 (fun i -> i + 1)

let run scheme =
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.topology1 ~engine ~flow_ids:ids
      ~weights:Workload.Figures.weights_s42 ()
  in
  let schedule = List.map (fun i -> (0., Workload.Runner.Start i)) ids in
  Workload.Runner.run ~scheme ~network ~schedule ~duration:80. ()

let convergence result =
  let reference =
    Workload.Network.expected_rates result.Workload.Runner.network ~active:ids
  in
  let series =
    List.map
      (fun id ->
        ( Sim.Timeseries.smooth (List.assoc id result.Workload.Runner.rate_series)
            ~window:5.,
          List.assoc id reference ))
      ids
  in
  Fairness.Metrics.convergence_time ~tolerance:0.2 ~hold:5. series

let report result =
  Printf.printf "\n== %s ==\n" result.Workload.Runner.scheme;
  let reference =
    Workload.Network.expected_rates result.Workload.Runner.network ~active:ids
  in
  Printf.printf "flow  weight  steady rate  fair share\n";
  List.iter
    (fun id ->
      Printf.printf "%4d  %6.0f  %11.1f  %10.1f\n" id
        (Workload.Figures.weights_s42 id)
        (Workload.Runner.mean_rate result ~flow:id ~from:50. ~until:80.)
        (List.assoc id reference))
    ids;
  Printf.printf "packets lost in the core : %d\n" result.Workload.Runner.core_drops;
  Printf.printf "feedback markers sent    : %d\n" result.Workload.Runner.feedback_markers;
  (match convergence result with
  | Some t -> Printf.printf "converged to fair shares : %.1f s after start\n" t
  | None -> Printf.printf "converged to fair shares : not within the run\n");
  Printf.printf "Jain index [50,80] s     : %.4f\n"
    (Workload.Runner.jain result ~from:50. ~until:80.)

let () =
  let corelite = run (Workload.Runner.Corelite Corelite.Params.default) in
  let csfq = run (Workload.Runner.Csfq Csfq.Params.default) in
  report corelite;
  report csfq;
  Printf.printf
    "\nThe paper's Figures 5/6 story: both schemes are weighted-fair in\n\
     steady state, but Corelite converges faster and without the packet\n\
     losses CSFQ incurs while its fair-share estimate settles.\n"
