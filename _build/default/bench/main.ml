(* Benchmark and reproduction harness.

   Part 1 regenerates every table/figure of the paper's evaluation:
   - Figures 3-10 (phase summaries: measured vs weighted max-min,
     Jain index, drops, convergence) — the rows behind each plot;
   - the Section 4.1 expected-rate table;
   - the Section 4.4 sensitivity sweeps and the ablations from
     DESIGN.md.

   Part 2 is a Bechamel microbenchmark suite over the simulator's hot
   paths plus one end-to-end test per scheme (cost of one simulated
   second of a figure workload). *)

open Bechamel
open Bechamel.Toolkit

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Part 1: paper reproduction *)

let reproduce_figures () =
  hr "Figures 3-10: measured vs weighted max-min reference";
  List.iter
    (fun spec ->
      let result = Workload.Figures.run spec in
      let summary = Workload.Figures.summarize spec result in
      Workload.Figures.pp_summary Format.std_formatter summary)
    (Workload.Figures.all ())

let reproduce_expected_rate_table () =
  hr "Section 4.1 expected-rate table (paper's hand calculation)";
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.topology1 ~engine ~weights:Workload.Figures.weights_s41 ()
  in
  let all = List.init 20 (fun i -> i + 1) in
  let absent = [ 1; 9; 10; 11; 16 ] in
  let fifteen = List.filter (fun i -> not (List.mem i absent)) all in
  let show label active =
    let rates = Workload.Network.expected_rates network ~active in
    let by_weight = Hashtbl.create 4 in
    List.iter
      (fun id ->
        let w = Workload.Figures.weights_s41 id in
        Hashtbl.replace by_weight w (List.assoc id rates))
      active;
    Printf.printf "%-28s" label;
    List.iter
      (fun w ->
        match Hashtbl.find_opt by_weight w with
        | Some r -> Printf.printf "  w=%.0f: %6.2f" w r
        | None -> ())
      [ 1.; 2.; 3. ];
    print_newline ()
  in
  Printf.printf "(rates in pkt/s; paper: 33.33 and 25 per unit weight)\n";
  show "15 flows (t in [0,250))" fifteen;
  show "20 flows (t in [250,500))" all

let reproduce_tcp_extension () =
  hr "Extension: TCP micro-flows in shaped aggregates (Section 4.4 ongoing work)";
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 2
  in
  let tcp = Workload.Tcp_workload.build ~network ~micro_flows:(fun _ -> 3) () in
  Workload.Tcp_workload.start tcp;
  let snapshot = Hashtbl.create 8 in
  ignore
    (Sim.Engine.schedule_at engine ~time:300. (fun () ->
         List.iter
           (fun (flow, g) -> Hashtbl.replace snapshot flow g)
           (Workload.Tcp_workload.aggregate_goodputs tcp)));
  Sim.Engine.run_until engine 400.;
  Workload.Tcp_workload.stop tcp;
  let reference = Workload.Network.expected_rates network ~active:[ 1; 2 ] in
  Printf.printf "aggregate  weight  steady goodput  corelite share\n";
  List.iter
    (fun (flow, total) ->
      let before = Option.value ~default:0 (Hashtbl.find_opt snapshot flow) in
      Printf.printf "%9d  %6.0f  %14.1f  %14.1f\n" flow
        (Workload.Network.flow network flow).Net.Flow.weight
        (float_of_int (total - before) /. 100.)
        (List.assoc flow reference))
    (Workload.Tcp_workload.aggregate_goodputs tcp);
  Printf.printf "TCP retransmits: %d  edge drops: %d\n"
    (Workload.Tcp_workload.total_retransmits tcp)
    (Workload.Tcp_workload.total_edge_drops tcp)

let reproduce_analysis () =
  hr "Analysis vs simulation (fluid ODE model vs packet-level run vs max-min)";
  (* Three flows, weights 1:2:3, one 500 pkt/s bottleneck. *)
  let capacities = [ (0, 500.) ] in
  let fluid_flows =
    List.map
      (fun i -> { Fairness.Fluid.id = i; weight = float_of_int i; links = [ 0 ] })
      [ 1; 2; 3 ]
  in
  let fluid =
    Fairness.Fluid.simulate ~capacities ~flows:fluid_flows ~duration:400. ()
  in
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in
  let packet =
    Workload.Runner.run ~scheme:(Workload.Runner.Corelite Corelite.Params.default)
      ~network
      ~schedule:(List.init 3 (fun i -> (0., Workload.Runner.Start (i + 1))))
      ~duration:400. ()
  in
  let reference =
    Fairness.Maxmin.solve ~capacities
      ~demands:
        (List.map
           (fun i ->
             Fairness.Maxmin.demand ~flow:i ~weight:(float_of_int i) ~links:[ 0 ] ())
           [ 1; 2; 3 ])
  in
  Printf.printf "flow  weight  fluid model  packet sim  max-min\n";
  List.iter
    (fun i ->
      Printf.printf "%4d  %6d  %11.1f  %10.1f  %7.1f\n" i i
        (List.assoc i fluid.Fairness.Fluid.final)
        (Workload.Runner.mean_rate packet ~flow:i ~from:350. ~until:400.)
        (List.assoc i reference))
    [ 1; 2; 3 ]

let reproduce_policing () =
  hr "Policing an unresponsive flow (firehose 450 pkt/s + 2 adaptive, fair share 166.7)";
  let run label scheme ~core_qdisc ~corelite_markers =
    let engine = Sim.Engine.create () in
    let core_qdisc = Option.map (fun f -> f engine) core_qdisc in
    let network =
      Workload.Network.single_bottleneck ~engine ?core_qdisc ~weights:(fun _ -> 1.) 3
    in
    let blaster =
      Workload.Blaster.attach ~network ~flow:1 ~rate:450. ~corelite_markers ()
    in
    let result =
      Workload.Runner.run ~scheme ~network
        ~schedule:[ (0., Workload.Runner.Start 2); (0., Workload.Runner.Start 3) ]
        ~duration:120. ()
    in
    let goodput flow =
      Option.value ~default:0.
        (Sim.Timeseries.window_mean
           (List.assoc flow result.Workload.Runner.goodput_series)
           ~from:90. ~until:120.)
    in
    Printf.printf
      "%-16s firehose %.0f pkt/s (%.0f%% survives)  adaptive %.0f / %.0f pkt/s\n"
      label
      (float_of_int (Workload.Blaster.delivered blaster) /. 120.)
      (100. *. Workload.Blaster.survival blaster)
      (goodput 2) (goodput 3)
  in
  run "csfq" (Workload.Runner.Csfq Csfq.Params.default) ~core_qdisc:None
    ~corelite_markers:false;
  run "corelite" (Workload.Runner.Corelite Corelite.Params.default) ~core_qdisc:None
    ~corelite_markers:true;
  run "plain+droptail" (Workload.Runner.Plain Csfq.Params.default) ~core_qdisc:None
    ~corelite_markers:false;
  run "plain+drr"
    (Workload.Runner.Plain Csfq.Params.default)
    ~core_qdisc:
      (Some
         (fun _engine () -> Net.Qdisc.drr ~weight:(fun _ -> 1.) ~capacity:20 ()))
    ~corelite_markers:false

let run_csfq_smoothed () =
  (* Same, with the fair-share estimation window widened to the RTT
     scale so TCP bursts do not read as persistent congestion. *)
  let engine = Sim.Engine.create () in
  let network =
    Workload.Network.single_bottleneck ~engine ~weights:(fun i -> float_of_int i) 3
  in
  let csfq_params = { Csfq.Params.default with Csfq.Params.k_link = 0.5 } in
  let tcp = Workload.Tcp_direct.build ~csfq_params ~attach_csfq:true ~network () in
  Workload.Tcp_direct.start tcp;
  Sim.Engine.run_until engine 300.;
  Workload.Tcp_direct.stop tcp;
  Printf.printf "%-16s goodput" "csfq k=500ms";
  List.iter
    (fun (flow, g) -> Printf.printf "  tcp%d=%.0f" flow (float_of_int g /. 300.))
    (Workload.Tcp_direct.goodputs tcp);
  Printf.printf "  weighted jain=%.3f retx=%d\n" (Workload.Tcp_direct.jain tcp)
    (Workload.Tcp_direct.total_retransmits tcp)

let reproduce_tcp_direct () =
  hr "Raw TCP over each core discipline (weights 1:2:3, 300 s goodput)";
  let run label ~core_qdisc ~attach_csfq =
    let engine = Sim.Engine.create () in
    let core_qdisc = Option.map (fun f -> f engine) core_qdisc in
    let network =
      Workload.Network.single_bottleneck ~engine ?core_qdisc
        ~weights:(fun i -> float_of_int i)
        3
    in
    let tcp = Workload.Tcp_direct.build ~attach_csfq ~network () in
    Workload.Tcp_direct.start tcp;
    Sim.Engine.run_until engine 300.;
    Workload.Tcp_direct.stop tcp;
    Printf.printf "%-16s goodput" label;
    List.iter
      (fun (flow, g) -> Printf.printf "  tcp%d=%.0f" flow (float_of_int g /. 300.))
      (Workload.Tcp_direct.goodputs tcp);
    Printf.printf "  weighted jain=%.3f retx=%d\n" (Workload.Tcp_direct.jain tcp)
      (Workload.Tcp_direct.total_retransmits tcp)
  in
  run "droptail" ~core_qdisc:None ~attach_csfq:false;
  run "drr(weighted)"
    ~core_qdisc:
      (Some
         (fun _engine () ->
           Net.Qdisc.drr ~weight:(fun flow -> float_of_int flow) ~capacity:20 ()))
    ~attach_csfq:false;
  run "weighted csfq" ~core_qdisc:None ~attach_csfq:true;
  run_csfq_smoothed ()

let reproduce_replication () =
  hr "Seed replication (Figure 5/6 headline numbers over 5 seeds)";
  let seeds = [ 1; 2; 3; 4; 5 ] in
  List.iter
    (fun (spec : Workload.Figures.spec) ->
      let stats = Workload.Replication.replicate_figure ~seeds spec in
      Format.printf "%-6s [%-8s] jain %a@." spec.Workload.Figures.id
        (Workload.Runner.scheme_name spec.Workload.Figures.scheme)
        Workload.Replication.pp_stats stats.Workload.Replication.jain;
      Format.printf "                 drops %a@." Workload.Replication.pp_stats
        stats.Workload.Replication.drops;
      Format.printf "                 conv  %a@." Workload.Replication.pp_stats
        stats.Workload.Replication.convergence)
    [ Workload.Figures.fig5 (); Workload.Figures.fig6 () ]

let reproduce_sweeps () =
  hr "Section 4.4 sensitivity + ablations (Figure 5 workload)";
  List.iter
    (fun named ->
      Workload.Sweeps.pp_points Format.std_formatter named;
      Format.print_newline ())
    (Workload.Sweeps.all ())

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks *)

let bench_event_queue =
  Test.make ~name:"event_queue: 1k add+pop"
    (Staged.stage (fun () ->
         let q = Sim.Event_queue.create () in
         for i = 0 to 999 do
           Sim.Event_queue.add q ~key:(float_of_int ((i * 7919) mod 997)) ~seq:i i
         done;
         while not (Sim.Event_queue.is_empty q) do
           ignore (Sim.Event_queue.pop q)
         done))

let bench_engine =
  Test.make ~name:"engine: 1k timer cascade"
    (Staged.stage (fun () ->
         let e = Sim.Engine.create () in
         let rec chain n () =
           if n > 0 then ignore (Sim.Engine.schedule e ~delay:0.001 (chain (n - 1)))
         in
         chain 1000 ();
         Sim.Engine.run e))

let bench_rng =
  Test.make ~name:"rng: 1k bounded ints"
    (Staged.stage
       (let r = Sim.Rng.create 1 in
        fun () ->
          for _ = 1 to 1000 do
            ignore (Sim.Rng.int r 500)
          done))

let bench_cache_selector =
  Test.make ~name:"corelite: cache observe+select"
    (Staged.stage
       (let c = Corelite.Cache_selector.create ~capacity:512 ~rng:(Sim.Rng.create 2) in
        let m = { Net.Packet.edge_id = 1; flow_id = 1; normalized_rate = 25. } in
        fun () ->
          for _ = 1 to 100 do
            Corelite.Cache_selector.observe c m
          done;
          ignore (Corelite.Cache_selector.select c ~fn:5.)))

let bench_stateless_selector =
  Test.make ~name:"corelite: stateless observe x100"
    (Staged.stage
       (let s =
          Corelite.Stateless_selector.create ~rav_gain:0.02 ~wav_gain:0.25 ~pw_cap:1.
            ~rng:(Sim.Rng.create 3)
        in
        let m = { Net.Packet.edge_id = 1; flow_id = 1; normalized_rate = 25. } in
        Corelite.Stateless_selector.on_epoch s ~fn:5.;
        fun () ->
          for _ = 1 to 100 do
            ignore (Corelite.Stateless_selector.observe s m)
          done))

let bench_csfq_estimator =
  Test.make ~name:"csfq: rate estimator x100"
    (Staged.stage
       (let e = Csfq.Rate_estimator.create ~k:0.1 in
        let now = ref 0. in
        fun () ->
          for _ = 1 to 100 do
            now := !now +. 0.002;
            ignore (Csfq.Rate_estimator.update e ~now:!now ~amount:1.)
          done))

let bench_droptail =
  Test.make ~name:"qdisc: droptail enqueue+dequeue x100"
    (Staged.stage
       (let q = Net.Qdisc.droptail ~capacity:200 in
        let pkt = Net.Packet.make ~id:1 ~flow:1 ~created:0. () in
        fun () ->
          for _ = 1 to 100 do
            ignore (q.Net.Qdisc.enqueue pkt)
          done;
          for _ = 1 to 100 do
            ignore (q.Net.Qdisc.dequeue ())
          done))

let bench_drr =
  Test.make ~name:"qdisc: drr 4 flows x100"
    (Staged.stage
       (let q = Net.Qdisc.drr ~weight:(fun f -> float_of_int f) ~capacity:200 () in
        fun () ->
          for i = 1 to 100 do
            let pkt = Net.Packet.make ~id:i ~flow:(1 + (i mod 4)) ~created:0. () in
            ignore (q.Net.Qdisc.enqueue pkt)
          done;
          for _ = 1 to 100 do
            ignore (q.Net.Qdisc.dequeue ())
          done))

let bench_routing =
  Test.make ~name:"routing: dijkstra on topology1"
    (Staged.stage
       (let engine = Sim.Engine.create () in
        let network =
          Workload.Network.topology1 ~engine ~weights:(fun _ -> 1.) ()
        in
        let topology = network.Workload.Network.topology in
        let nodes = Net.Topology.nodes topology in
        let src = List.hd nodes in
        let dst = List.nth nodes (List.length nodes - 1) in
        fun () -> ignore (Net.Routing.shortest_path topology ~src ~dst)))

let bench_fluid =
  Test.make ~name:"fairness: fluid model 10 flows x10 s"
    (Staged.stage (fun () ->
         let flows =
           List.init 10 (fun i ->
               {
                 Fairness.Fluid.id = i;
                 weight = Workload.Figures.weights_s42 (i + 1);
                 links = [ 0 ];
               })
         in
         ignore
           (Fairness.Fluid.simulate ~capacities:[ (0, 500.) ] ~flows ~duration:10. ())))

let bench_maxmin =
  Test.make ~name:"fairness: maxmin topology1 (20 flows)"
    (Staged.stage
       (let engine = Sim.Engine.create () in
        let network =
          Workload.Network.topology1 ~engine ~weights:Workload.Figures.weights_s41 ()
        in
        let active = List.init 20 (fun i -> i + 1) in
        fun () -> ignore (Workload.Network.expected_rates network ~active)))

(* One simulated second of a figure workload: the end-to-end cost of
   that scenario in the simulator. *)
let bench_figure spec =
  Test.make ~name:(Printf.sprintf "simulate 1 s of %s" spec.Workload.Figures.id)
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let network = spec.Workload.Figures.make_network ~engine in
         ignore
           (Workload.Runner.run ~scheme:spec.Workload.Figures.scheme ~network
              ~schedule:spec.Workload.Figures.schedule ~duration:1. ())))

let microbenchmarks () =
  let tests =
    Test.make_grouped ~name:"corelite"
      ([
         bench_event_queue;
         bench_engine;
         bench_rng;
         bench_cache_selector;
         bench_stateless_selector;
         bench_csfq_estimator;
         bench_droptail;
         bench_drr;
         bench_routing;
         bench_fluid;
         bench_maxmin;
       ]
      @ List.map bench_figure
          [ Workload.Figures.fig3 (); Workload.Figures.fig5 (); Workload.Figures.fig6 () ])
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

let print_results results =
  hr "Microbenchmarks (ns per run, OLS on monotonic clock)";
  Hashtbl.iter
    (fun measure by_test ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_test []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.iter (fun (name, ols) ->
               match Analyze.OLS.estimates ols with
               | Some (estimate :: _) ->
                 Printf.printf "%-44s %14.0f ns/run\n" name estimate
               | Some [] | None -> Printf.printf "%-44s (no estimate)\n" name))
    results

let () =
  reproduce_figures ();
  reproduce_expected_rate_table ();
  reproduce_sweeps ();
  reproduce_analysis ();
  reproduce_policing ();
  reproduce_tcp_direct ();
  reproduce_replication ();
  reproduce_tcp_extension ();
  print_results (microbenchmarks ())
