(** Weighted max-min fair allocation (water-filling).

    Reference solver for the service model of the paper (Section 2.1):
    an allocation vector [b] is weighted max-min fair iff increasing any
    [b(i)] forces decreasing some [b(j)] with
    [b(j)/w(j) <= b(i)/w(i)]. Used to compute the "expected rates" the
    evaluation compares simulation output against. *)

type demand = {
  flow : int;
  weight : float;
  links : int list;  (** ids of the links the flow traverses *)
  floor : float;  (** contracted minimum rate; [0.] when none *)
}

val demand : ?floor:float -> flow:int -> weight:float -> links:int list -> unit -> demand

(** [solve ~capacities ~demands] returns the weighted max-min rate of
    every demand, in the same order as [demands]. [capacities] maps link
    id to capacity (any rate unit; output is in the same unit).

    Floors implement the minimum-rate-contract extension: each flow is
    first granted its floor, and the remaining capacity is shared
    weighted max-min. Floors that oversubscribe a link raise
    [Invalid_argument] (admission control must reject such contracts).

    @raise Invalid_argument on unknown link ids, non-positive
    capacities, or oversubscribed floors. *)
val solve : capacities:(int * float) list -> demands:demand list -> (int * float) list

(** Per-unit-weight share of the single bottleneck [capacity] split
    among [weights] — the paper's hand-calculation helper
    (e.g. 500 pkt/s over total weight 15 = 33.33). *)
val single_link_share : capacity:float -> weights:float list -> float
