(** Fairness and convergence metrics for evaluation runs. *)

(** Jain's fairness index of the normalized rates [x_i / w_i]:
    [(sum z)^2 / (n * sum z^2)]. 1.0 means perfectly weighted-fair.
    Returns 1.0 for an empty input.
    @raise Invalid_argument if lengths differ or a weight is not
    positive. *)
val jain_index : rates:float array -> weights:float array -> float

(** Mean relative error of [measured] against [expected], ignoring
    entries whose expected value is zero. *)
val mean_relative_error : measured:float array -> expected:float array -> float

(** [converged ~tolerance ~measured ~expected] is true when every
    measured rate is within the relative [tolerance] of its expected
    value. *)
val converged : tolerance:float -> measured:float array -> expected:float array -> bool

(** [convergence_time ~tolerance ~hold series_with_expected] scans
    per-flow time series (all sampled on the same time grid) and returns
    the earliest sample time from which every flow stays within
    [tolerance] of its expected rate for at least [hold] seconds
    continuously. [None] if that never happens. *)
val convergence_time :
  tolerance:float ->
  hold:float ->
  (Sim.Timeseries.t * float) list ->
  float option

(** Total weighted-fair throughput utilization of a link: sum of rates
    over capacity. *)
val utilization : rates:float array -> capacity:float -> float
