lib/fairness/maxmin.mli:
