lib/fairness/metrics.mli: Sim
