lib/fairness/metrics.ml: Array Float List Sim
