lib/fairness/fluid.mli: Sim
