lib/fairness/maxmin.ml: Float Hashtbl List Option Printf
