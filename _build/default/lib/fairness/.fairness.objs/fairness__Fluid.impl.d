lib/fairness/fluid.ml: Array Float Hashtbl List Option Printf Sim
