lib/fairness/fairness.ml: Fluid Maxmin Metrics
