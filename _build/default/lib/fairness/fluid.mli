(** Fluid (analytical) model of Corelite's rate adaptation.

    The paper argues convergence "through both simulations and
    analysis"; this module is the analysis side: a deterministic ODE
    abstraction of the closed loop, integrated with Euler steps.

    State: the allowed rates [b_i(t)]. Per step:

    - every link with load above capacity requests a total rate
      reduction equal to its excess, split among the flows whose
      normalized rate is at or above the link's marker-weighted mean
      (the stateless selector's eligibility rule), proportionally to
      their normalized rates (the marker frequencies);
    - each flow applies the maximum request over its links (the
      bottleneck rule) during the next epoch, or probes upward by
      [alpha] per epoch when nothing was requested.

    Fixed points of these dynamics are exactly the weighted max-min
    allocations, so trajectories can be checked against {!Maxmin} and
    against the packet simulation — the three layers validate each
    other. *)

type flow = { id : int; weight : float; links : int list }

type result = {
  series : (int * Sim.Timeseries.t) list;  (** per flow: [b_i(t)] *)
  final : (int * float) list;  (** rates at the end of the run *)
}

(** [simulate ~capacities ~flows ~duration ()] integrates the fluid
    model. [initial] gives starting rates (default [alpha] each);
    [alpha] is the probe increment per [epoch] (defaults 1 pkt/s per
    0.5 s); [dt] the Euler step (default [epoch/10]); [sample] the
    series sampling period (default 1).
    @raise Invalid_argument on empty systems, unknown links, or
    non-positive steps. *)
val simulate :
  capacities:(int * float) list ->
  flows:flow list ->
  ?initial:(int * float) list ->
  ?alpha:float ->
  ?epoch:float ->
  ?dt:float ->
  ?sample:float ->
  duration:float ->
  unit ->
  result
