type flow = { id : int; weight : float; links : int list }

type result = {
  series : (int * Sim.Timeseries.t) list;
  final : (int * float) list;
}

let simulate ~capacities ~flows ?initial ?(alpha = 1.) ?(epoch = 0.5) ?dt ?(sample = 1.)
    ~duration () =
  if flows = [] then invalid_arg "Fluid.simulate: no flows";
  if epoch <= 0. then invalid_arg "Fluid.simulate: epoch must be positive";
  let dt = match dt with Some dt -> dt | None -> epoch /. 10. in
  if dt <= 0. then invalid_arg "Fluid.simulate: dt must be positive";
  let capacity : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (id, c) -> Hashtbl.replace capacity id c) capacities;
  List.iter
    (fun flow ->
      List.iter
        (fun link ->
          if not (Hashtbl.mem capacity link) then
            invalid_arg (Printf.sprintf "Fluid.simulate: unknown link %d" link))
        flow.links)
    flows;
  let n = List.length flows in
  let flows = Array.of_list flows in
  let rates =
    Array.map
      (fun flow ->
        match initial with
        | Some init -> Option.value ~default:alpha (List.assoc_opt flow.id init)
        | None -> alpha)
      flows
  in
  let series =
    Array.map (fun flow -> Sim.Timeseries.create ~name:(string_of_int flow.id) ()) flows
  in
  let links = List.map fst capacities in
  let steps = int_of_float (Float.round (duration /. dt)) in
  let next_sample = ref sample in
  for step = 1 to steps do
    let t = float_of_int step *. dt in
    (* Per-link reduction requests under the selective-feedback rule. *)
    let request = Array.make n 0. in
    List.iter
      (fun link ->
        let c = Hashtbl.find capacity link in
        let on_link i = List.mem link flows.(i).links in
        let load = ref 0. in
        for i = 0 to n - 1 do
          if on_link i then load := !load +. rates.(i)
        done;
        let excess = !load -. c in
        if excess > 0. then begin
          (* Marker-weighted mean normalized rate: markers arrive in
             proportion to rn, so the running average rav weights each
             flow's rn by itself. *)
          let sum_rn = ref 0. and sum_rn2 = ref 0. in
          for i = 0 to n - 1 do
            if on_link i then begin
              let rn = rates.(i) /. flows.(i).weight in
              sum_rn := !sum_rn +. rn;
              sum_rn2 := !sum_rn2 +. (rn *. rn)
            end
          done;
          let rav = if !sum_rn > 0. then !sum_rn2 /. !sum_rn else 0. in
          (* Tolerate the continuum edge case where every flow sits
             exactly at rav: eligibility at >= rav keeps the system
             controllable. *)
          let eligible_rn = ref 0. in
          for i = 0 to n - 1 do
            if on_link i && rates.(i) /. flows.(i).weight >= rav -. 1e-12 then
              eligible_rn := !eligible_rn +. (rates.(i) /. flows.(i).weight)
          done;
          if !eligible_rn > 0. then
            for i = 0 to n - 1 do
              if on_link i then begin
                let rn = rates.(i) /. flows.(i).weight in
                if rn >= rav -. 1e-12 then
                  request.(i) <-
                    Float.max request.(i) (excess *. rn /. !eligible_rn)
              end
            done
        end)
      links;
    for i = 0 to n - 1 do
      let derivative =
        if request.(i) > 0. then -.request.(i) /. epoch else alpha /. epoch
      in
      rates.(i) <- Float.max 0. (rates.(i) +. (derivative *. dt))
    done;
    if t +. 1e-9 >= !next_sample then begin
      next_sample := !next_sample +. sample;
      Array.iteri (fun i _flow -> Sim.Timeseries.add series.(i) t rates.(i)) flows
    end
  done;
  {
    series = Array.to_list (Array.mapi (fun i flow -> (flow.id, series.(i))) flows);
    final = Array.to_list (Array.mapi (fun i flow -> (flow.id, rates.(i))) flows);
  }
