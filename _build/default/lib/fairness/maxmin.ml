type demand = { flow : int; weight : float; links : int list; floor : float }

let demand ?(floor = 0.) ~flow ~weight ~links () =
  if weight <= 0. then invalid_arg "Maxmin.demand: weight must be positive";
  if floor < 0. then invalid_arg "Maxmin.demand: negative floor";
  if links = [] then invalid_arg "Maxmin.demand: flow traverses no link";
  { flow; weight; links; floor }

let epsilon = 1e-9

let solve ~capacities ~demands =
  let capacity : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (id, c) ->
      if c <= 0. then invalid_arg "Maxmin.solve: non-positive capacity";
      Hashtbl.replace capacity id c)
    capacities;
  let remaining = Hashtbl.copy capacity in
  let check_link id =
    if not (Hashtbl.mem capacity id) then
      invalid_arg (Printf.sprintf "Maxmin.solve: unknown link %d" id)
  in
  List.iter (fun d -> List.iter check_link d.links) demands;
  (* Grant contracted floors first; they must be admissible. *)
  let take_on_path d amount =
    List.iter
      (fun id ->
        let c = Hashtbl.find remaining id -. amount in
        Hashtbl.replace remaining id c)
      d.links
  in
  List.iter (fun d -> take_on_path d d.floor) demands;
  Hashtbl.iter
    (fun id c ->
      if c < -.epsilon then
        invalid_arg (Printf.sprintf "Maxmin.solve: floors oversubscribe link %d" id))
    remaining;
  (* Water-filling on the residual capacity. *)
  let alloc : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let active = ref demands in
  while !active <> [] do
    (* Per-unit-weight share every link could still give its active flows. *)
    let weight_on : (int, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun d ->
        List.iter
          (fun id ->
            let w = Option.value ~default:0. (Hashtbl.find_opt weight_on id) in
            Hashtbl.replace weight_on id (w +. d.weight))
          d.links)
      !active;
    let bottleneck_share =
      Hashtbl.fold
        (fun id w acc ->
          if w <= 0. then acc
          else begin
            let share = Float.max 0. (Hashtbl.find remaining id) /. w in
            match acc with
            | None -> Some share
            | Some best -> Some (Float.min best share)
          end)
        weight_on None
    in
    let share = match bottleneck_share with Some s -> s | None -> assert false in
    (* Freeze every flow crossing a link that saturates at this level. *)
    let saturated id =
      let w = Option.value ~default:0. (Hashtbl.find_opt weight_on id) in
      w > 0. && Float.max 0. (Hashtbl.find remaining id) /. w <= share +. epsilon
    in
    let frozen, still_active =
      List.partition (fun d -> List.exists saturated d.links) !active
    in
    (* At least the bottleneck link's flows freeze, so this terminates. *)
    assert (frozen <> []);
    List.iter
      (fun d ->
        let rate = d.weight *. share in
        Hashtbl.replace alloc d.flow (d.floor +. rate);
        take_on_path d rate)
      frozen;
    active := still_active
  done;
  List.map (fun d -> (d.flow, Hashtbl.find alloc d.flow)) demands

let single_link_share ~capacity ~weights =
  let total = List.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Maxmin.single_link_share: no weight";
  capacity /. total
