(** A Reno-style TCP bulk sender and receiver over the simulator.

    The paper lists "agents like TCP which involve interaction between
    the edge router and the end host" as ongoing work; this module
    provides that substrate so TCP micro-flows can be carried inside a
    shaped edge-to-edge aggregate (see {!Corelite.Aggregate}).

    The sender implements the classic loop: slow-start to [ssthresh],
    congestion avoidance (+1 MSS per RTT), fast retransmit on three
    duplicate ACKs with window halving, and a coarse exponential-backoff
    retransmission timeout that resets the window to one segment. SRTT
    and RTTVAR follow Jacobson/Karels with Karn's rule (no samples from
    retransmitted segments).

    Segments are {!Packet.t} values whose [id] is the segment sequence
    number (in packets, starting at 1). The receiver returns cumulative
    ACKs through a caller-supplied channel (in the evaluation: the
    reverse-path propagation delay). *)

type params = {
  initial_cwnd : float;  (** packets *)
  initial_ssthresh : float;  (** packets *)
  max_cwnd : float;  (** cap on the window, packets *)
  rto_min : float;  (** seconds *)
  rto_max : float;  (** seconds *)
  dupack_threshold : int;  (** 3 in Reno *)
}

val default_params : params

(** {1 Sender} *)

module Sender : sig
  type t

  (** [create ~engine ~params ~flow ~micro ~transmit ()] builds a
      stopped sender. [transmit] injects a segment into the network
      (e.g. submits it to an aggregate's ingress queue). *)
  val create :
    engine:Sim.Engine.t ->
    ?params:params ->
    flow:int ->
    micro:int ->
    transmit:(Packet.t -> unit) ->
    unit ->
    t

  (** Start sending an unbounded bulk transfer. *)
  val start : t -> unit

  val stop : t -> unit

  (** Deliver a cumulative ACK (highest in-order sequence received). *)
  val ack : t -> int -> unit

  val cwnd : t -> float

  val ssthresh : t -> float

  (** Segments handed to [transmit], including retransmissions. *)
  val transmitted : t -> int

  val retransmits : t -> int

  val timeouts : t -> int

  (** Highest cumulatively acknowledged sequence. *)
  val acked : t -> int

  (** Smoothed RTT estimate, seconds ([0.] before the first sample). *)
  val srtt : t -> float
end

(** {1 Receiver} *)

module Receiver : sig
  type t

  (** [create ~send_ack] — [send_ack] carries the cumulative ACK back
      to the sender (the caller adds the return-path delay). *)
  val create : send_ack:(int -> unit) -> t

  (** Process an arriving data segment; emits one ACK per segment
      (duplicate ACKs for out-of-order arrivals). *)
  val receive : t -> Packet.t -> unit

  (** Segments delivered in order so far (the goodput counter). *)
  val delivered : t -> int
end
