(** Network nodes (edge routers, core routers).

    Forwarding is per-flow static routing: every node on a flow's path
    holds a route entry mapping the flow id to an output link, and the
    egress node holds a sink callback that consumes delivered packets.
    Core routers never consult per-flow QoS state — the route table is
    the standard forwarding function the paper assumes. *)

type kind = Edge | Core

type t = {
  id : int;
  name : string;
  kind : kind;
  routes : (int, Link.t) Hashtbl.t;  (** flow id -> output link *)
  sinks : (int, Packet.t -> unit) Hashtbl.t;  (** flow id -> egress consumer *)
}

val create : id:int -> name:string -> kind:kind -> t

val set_route : t -> flow:int -> Link.t -> unit

val set_sink : t -> flow:int -> (Packet.t -> unit) -> unit

(** Forward a packet: route entry if present, else sink entry.
    @raise Failure if the node knows nothing about the packet's flow. *)
val receive : t -> Packet.t -> unit

val is_edge : t -> bool
