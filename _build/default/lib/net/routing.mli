(** Shortest-path routing over a topology.

    Flow paths in the evaluation scenarios are explicit (the paper's
    Topology 1 pins each flow's route); this module computes paths for
    generated topologies: Dijkstra over the directed link graph,
    minimizing total propagation delay with hop count as tie-breaker. *)

(** [shortest_path topology ~src ~dst] is the minimum-delay node path
    from [src] to [dst] (inclusive), or [None] if [dst] is
    unreachable. *)
val shortest_path : Topology.t -> src:Node.t -> dst:Node.t -> Node.t list option

(** All-destinations variant: one Dijkstra run from [src]; the returned
    function maps a destination node to its path. Cheaper when routing
    many flows out of the same edge. *)
val paths_from : Topology.t -> src:Node.t -> Node.t -> Node.t list option
