(** Edge-to-edge flows.

    A flow is the paper's unit of service: it enters the cloud at an
    ingress edge router, follows a fixed path of nodes, and leaves at an
    egress edge router. Its [weight] is the rate weight of the flow's
    rate class. *)

type t = { id : int; weight : float; path : Node.t list }

val make : id:int -> weight:float -> path:Node.t list -> t
(** @raise Invalid_argument on a non-positive weight or a path shorter
    than two nodes. *)

val ingress : t -> Node.t

val egress : t -> Node.t

(** Links the flow traverses, in path order. *)
val links : t -> Topology.t -> Link.t list

(** Propagation delay from [link]'s upstream node back to the flow's
    ingress edge, assuming symmetric links: the sum of delays of the
    path links upstream of [link]. [None] if the flow does not traverse
    [link]. Used to time control-plane feedback and loss indications. *)
val upstream_delay : t -> Topology.t -> Link.t -> float option
