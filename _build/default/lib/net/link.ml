type verdict = Pass | Drop

type drop_reason = Filtered | Queue_full

type hooks = {
  on_arrival : Packet.t -> verdict;
  on_queue_change : int -> unit;
}

type t = {
  id : int;
  name : string;
  src : int;
  dst : int;
  bandwidth : float;
  delay : float;
  qdisc : Qdisc.t;
  engine : Sim.Engine.t;
  mutable busy : bool;
  mutable hooks : hooks option;
  mutable on_drop : (drop_reason -> Packet.t -> unit) option;
  mutable deliver : Packet.t -> unit;
  mutable arrivals : int;
  mutable departures : int;
  mutable drops : int;
  mutable bytes_sent : int;
}

let create ~engine ~id ~name ~src ~dst ~bandwidth ~delay ~qdisc =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  {
    id;
    name;
    src;
    dst;
    bandwidth;
    delay;
    qdisc;
    engine;
    busy = false;
    hooks = None;
    on_drop = None;
    deliver = (fun _ -> failwith ("Link " ^ name ^ ": deliver not wired"));
    arrivals = 0;
    departures = 0;
    drops = 0;
    bytes_sent = 0;
  }

let capacity_pps t = t.bandwidth /. float_of_int (8 * Packet.default_size)

let queue_length t = t.qdisc.Qdisc.length ()

let notify_queue_change t =
  match t.hooks with
  | Some h -> h.on_queue_change (queue_length t)
  | None -> ()

let drop t reason pkt =
  t.drops <- t.drops + 1;
  match t.on_drop with Some f -> f reason pkt | None -> ()

let rec start_transmission t =
  match t.qdisc.Qdisc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
    t.busy <- true;
    notify_queue_change t;
    let tx_time = float_of_int (8 * pkt.Packet.size) /. t.bandwidth in
    let on_tx_done () =
      t.departures <- t.departures + 1;
      t.bytes_sent <- t.bytes_sent + pkt.Packet.size;
      let arrive () = t.deliver pkt in
      ignore (Sim.Engine.schedule t.engine ~delay:t.delay arrive);
      start_transmission t
    in
    ignore (Sim.Engine.schedule t.engine ~delay:tx_time on_tx_done)

let send t pkt =
  t.arrivals <- t.arrivals + 1;
  let verdict = match t.hooks with Some h -> h.on_arrival pkt | None -> Pass in
  match verdict with
  | Drop -> drop t Filtered pkt
  | Pass -> (
    match t.qdisc.Qdisc.enqueue pkt with
    | Qdisc.Dropped -> drop t Queue_full pkt
    | Qdisc.Enqueued ->
      notify_queue_change t;
      if not t.busy then start_transmission t)
