(** Link probes: periodic time series of a link's queue occupancy,
    throughput and loss — the observability behind "incipient
    congestion" plots (queue hovering near the threshold under
    Corelite vs slamming into the buffer limit under loss-driven
    schemes).

    Probes read only the link's public counters; they never install
    hooks, so they coexist with any scheme's core logic. *)

type t

(** [attach ~engine ~period link] starts sampling. The first sample is
    taken at [period]. @raise Invalid_argument if [period <= 0]. *)
val attach : engine:Sim.Engine.t -> period:float -> Link.t -> t

(** Queue length (packets waiting) at each sample instant. *)
val queue_series : t -> Sim.Timeseries.t

(** Departures per second over each sample period. *)
val throughput_series : t -> Sim.Timeseries.t

(** Drops per second over each sample period. *)
val drop_series : t -> Sim.Timeseries.t

(** Mean link utilization (throughput over capacity) across the probe's
    lifetime so far; [0.] before the first sample. *)
val mean_utilization : t -> float

(** Largest queue length seen at a sample instant. *)
val peak_queue : t -> int

(** Stop sampling (series remain readable). *)
val detach : t -> unit
