type t = { id : int; weight : float; path : Node.t list }

let make ~id ~weight ~path =
  if weight <= 0. then invalid_arg "Flow.make: weight must be positive";
  if List.length path < 2 then invalid_arg "Flow.make: path needs >= 2 nodes";
  { id; weight; path }

let ingress t = List.hd t.path

let egress t =
  match List.rev t.path with
  | last :: _ -> last
  | [] -> assert false

let links t topology = Topology.path_links topology t.path

let upstream_delay t topology link =
  let rec walk acc = function
    | hop :: rest ->
      if hop.Link.id = link.Link.id then Some acc
      else walk (acc +. hop.Link.delay) rest
    | [] -> None
  in
  walk 0. (links t topology)
