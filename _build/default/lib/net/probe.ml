type t = {
  link : Link.t;
  period : float;
  queue : Sim.Timeseries.t;
  throughput : Sim.Timeseries.t;
  drops : Sim.Timeseries.t;
  mutable last_departures : int;
  mutable last_drops : int;
  mutable total_departures : int;
  mutable samples : int;
  mutable peak_queue : int;
  mutable timer : Sim.Engine.handle option;
}

let sample t engine () =
  let now = Sim.Engine.now engine in
  let qlen = Link.queue_length t.link in
  Sim.Timeseries.add t.queue now (float_of_int qlen);
  if qlen > t.peak_queue then t.peak_queue <- qlen;
  let departures = t.link.Link.departures in
  Sim.Timeseries.add t.throughput now
    (float_of_int (departures - t.last_departures) /. t.period);
  t.total_departures <- departures;
  t.last_departures <- departures;
  let dropped = t.link.Link.drops in
  Sim.Timeseries.add t.drops now (float_of_int (dropped - t.last_drops) /. t.period);
  t.last_drops <- dropped;
  t.samples <- t.samples + 1

let attach ~engine ~period link =
  if period <= 0. then invalid_arg "Probe.attach: period must be positive";
  let name kind = Printf.sprintf "%s-%s" link.Link.name kind in
  let t =
    {
      link;
      period;
      queue = Sim.Timeseries.create ~name:(name "queue") ();
      throughput = Sim.Timeseries.create ~name:(name "throughput") ();
      drops = Sim.Timeseries.create ~name:(name "drops") ();
      last_departures = link.Link.departures;
      last_drops = link.Link.drops;
      total_departures = link.Link.departures;
      samples = 0;
      peak_queue = 0;
      timer = None;
    }
  in
  t.timer <- Some (Sim.Engine.every engine ~period (sample t engine));
  t

let queue_series t = t.queue

let throughput_series t = t.throughput

let drop_series t = t.drops

let mean_utilization t =
  if t.samples = 0 then 0.
  else begin
    let elapsed = float_of_int t.samples *. t.period in
    float_of_int t.total_departures /. elapsed /. Link.capacity_pps t.link
  end

let peak_queue t = t.peak_queue

let detach t =
  match t.timer with
  | Some handle ->
    Sim.Engine.cancel handle;
    t.timer <- None
  | None -> ()
