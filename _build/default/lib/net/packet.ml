type marker = { edge_id : int; flow_id : int; normalized_rate : float }

type t = {
  id : int;
  flow : int;
  micro : int;
  size : int;
  created : float;
  mutable marker : marker option;
  mutable label : float;
}

let default_size = 1000

let make ~id ~flow ?(micro = 0) ?(size = default_size) ?marker ~created () =
  { id; flow; micro; size; created; marker; label = -1. }

let has_marker t = Option.is_some t.marker
