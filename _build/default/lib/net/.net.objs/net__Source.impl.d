lib/net/source.ml: Float Sim
