lib/net/packet.ml: Option
