lib/net/link.ml: Packet Qdisc Sim
