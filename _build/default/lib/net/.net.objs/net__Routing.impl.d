lib/net/routing.ml: Hashtbl Link List Node Option Sim Topology
