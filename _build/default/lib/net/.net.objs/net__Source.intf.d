lib/net/source.mli: Sim
