lib/net/net.ml: Flow Link Node Onoff Packet Probe Qdisc Routing Source Tcp Topology
