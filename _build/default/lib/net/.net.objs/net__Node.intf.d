lib/net/node.mli: Hashtbl Link Packet
