lib/net/link.mli: Packet Qdisc Sim
