lib/net/probe.ml: Link Printf Sim
