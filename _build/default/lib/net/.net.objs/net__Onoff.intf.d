lib/net/onoff.mli: Sim
