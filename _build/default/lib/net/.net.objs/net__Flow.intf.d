lib/net/flow.mli: Link Node Topology
