lib/net/topology.mli: Link Node Packet Qdisc Sim
