lib/net/probe.mli: Link Sim
