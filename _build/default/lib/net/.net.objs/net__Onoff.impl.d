lib/net/onoff.ml: Sim
