lib/net/qdisc.ml: Array Float Hashtbl Option Packet Queue Sim Stdlib
