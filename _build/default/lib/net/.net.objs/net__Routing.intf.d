lib/net/routing.mli: Node Topology
