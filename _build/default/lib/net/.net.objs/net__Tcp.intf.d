lib/net/tcp.mli: Packet Sim
