lib/net/tcp.ml: Float Hashtbl Packet Sim
