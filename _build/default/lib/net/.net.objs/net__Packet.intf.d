lib/net/packet.mli:
