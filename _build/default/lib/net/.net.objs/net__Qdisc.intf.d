lib/net/qdisc.mli: Packet Sim
