lib/net/topology.ml: Hashtbl Link List Node Printf Sim
