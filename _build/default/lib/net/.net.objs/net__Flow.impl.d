lib/net/flow.ml: Link List Node Topology
