(* Dijkstra on (delay, hops) lexicographic cost over the directed link
   graph. Node count in our scenarios is small (tens), so the simple
   priority handling below is plenty. *)

let adjacency topology =
  let adj : (int, (Node.t * float) list) Hashtbl.t = Hashtbl.create 32 in
  let node_by_id : (int, Node.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun node -> Hashtbl.replace node_by_id node.Node.id node)
    (Topology.nodes topology);
  List.iter
    (fun link ->
      match Hashtbl.find_opt node_by_id link.Link.dst with
      | Some dst ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt adj link.Link.src) in
        Hashtbl.replace adj link.Link.src ((dst, link.Link.delay) :: existing)
      | None -> ())
    (Topology.links topology);
  adj

let paths_from topology ~src =
  let adj = adjacency topology in
  (* cost = (delay, hops); predecessor map rebuilt into paths on demand. *)
  let dist : (int, float * int) Hashtbl.t = Hashtbl.create 32 in
  let pred : (int, Node.t) Hashtbl.t = Hashtbl.create 32 in
  let visited : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  (* The event queue doubles as a priority queue: key = delay, and the
     FIFO tie-break on [seq] = hops gives the lexicographic order. *)
  let frontier = Sim.Event_queue.create () in
  let push node (delay, hops) =
    Hashtbl.replace dist node.Node.id (delay, hops);
    Sim.Event_queue.add frontier ~key:delay ~seq:hops node
  in
  push src (0., 0);
  let rec settle () =
    match Sim.Event_queue.pop frontier with
    | None -> ()
    | Some (_, _, node) ->
      if not (Hashtbl.mem visited node.Node.id) then begin
        Hashtbl.replace visited node.Node.id ();
        let delay, hops = Hashtbl.find dist node.Node.id in
        List.iter
          (fun (next, link_delay) ->
            let candidate = (delay +. link_delay, hops + 1) in
            let better =
              match Hashtbl.find_opt dist next.Node.id with
              | None -> true
              | Some current -> candidate < current
            in
            if better && not (Hashtbl.mem visited next.Node.id) then begin
              Hashtbl.replace pred next.Node.id node;
              push next candidate
            end)
          (Option.value ~default:[] (Hashtbl.find_opt adj node.Node.id))
      end;
      settle ()
  in
  settle ();
  fun dst ->
    if dst.Node.id = src.Node.id then Some [ src ]
    else if not (Hashtbl.mem dist dst.Node.id) then None
    else begin
      let rec walk acc node =
        if node.Node.id = src.Node.id then node :: acc
        else walk (node :: acc) (Hashtbl.find pred node.Node.id)
      in
      Some (walk [] dst)
    end

let shortest_path topology ~src ~dst = paths_from topology ~src dst
