lib/corelite/congestion.mli:
