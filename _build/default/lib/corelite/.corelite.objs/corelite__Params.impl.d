lib/corelite/params.ml: Congestion Float Net Stdlib
