lib/corelite/edge.ml: Float Hashtbl Logs Net Option Params Sim Stdlib
