lib/corelite/stateless_selector.mli: Net Sim
