lib/corelite/params.mli: Congestion Net
