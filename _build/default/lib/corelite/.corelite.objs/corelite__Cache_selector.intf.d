lib/corelite/cache_selector.mli: Net Sim
