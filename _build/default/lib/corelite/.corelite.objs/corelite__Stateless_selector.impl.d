lib/corelite/stateless_selector.ml: Float Net Sim
