lib/corelite/core.ml: Cache_selector Congestion List Logs Net Params Sim Stateless_selector
