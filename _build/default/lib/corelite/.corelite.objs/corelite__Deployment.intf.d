lib/corelite/deployment.mli: Core Edge Hashtbl Net Params Sim
