lib/corelite/aggregate.ml: Edge Hashtbl Net Queue
