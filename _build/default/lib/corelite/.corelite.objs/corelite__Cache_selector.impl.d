lib/corelite/cache_selector.ml: Array List Net Sim
