lib/corelite/core.mli: Net Params Sim
