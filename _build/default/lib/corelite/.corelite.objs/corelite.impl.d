lib/corelite/corelite.ml: Aggregate Cache_selector Congestion Core Deployment Edge Params Stateless_selector
