lib/corelite/aggregate.mli: Edge Net Params
