lib/corelite/congestion.ml: Float Sim
