lib/corelite/deployment.ml: Core Edge Hashtbl List Net Option Params Printf Sim
