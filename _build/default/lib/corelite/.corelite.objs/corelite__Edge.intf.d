lib/corelite/edge.mli: Net Params
