(** Marker-cache feedback selection (paper Section 2).

    The cache is a circular queue holding the most recent markers that
    traversed the link. Because edges inject markers at the flow's
    normalized rate, a flow's share of cache entries is proportional to
    [bg/w], so drawing uniformly at random yields weighted fair
    feedback without inspecting marker contents. *)

type t

val create : capacity:int -> rng:Sim.Rng.t -> t

(** Record a marker passing through the link (overwrites the oldest
    entry when full). *)
val observe : t -> Net.Packet.marker -> unit

(** [select t ~fn] draws markers for one congested epoch: [floor fn]
    draws plus one more with probability [frac fn], each uniform over
    the cache (with replacement). Returns [[]] when the cache is
    empty. *)
val select : t -> fn:float -> Net.Packet.marker list

(** Markers currently cached. *)
val occupancy : t -> int
