(** Corelite configuration.

    Defaults are the paper's Section 4 settings: [K1 = 1], [beta = 1],
    1 KB packets, 40-packet queues, congestion threshold 8 packets,
    100 ms core epoch. Constants the paper leaves unspecified
    (the cubic coefficient, cache size, EWMA gains) have sensitivity benches. *)

(** Core-router marker selection mechanism. *)
type selector =
  | Cache  (** Section 2: circular marker cache, uniform random feedback *)
  | Stateless
      (** Section 3.2: running-average selective feedback without any
          marker cache (the truly flow-stateless variant) *)

type t = {
  k1 : float;  (** marker spacing: one marker every [K1 * w] data packets *)
  core_epoch : float;  (** congestion-detection period, seconds *)
  qthresh : float;  (** incipient-congestion threshold, packets *)
  estimator : Congestion.spec;  (** congestion budget function (paper: M/M/1 + cubic) *)
  selector : selector;
  cache_size : int;  (** marker cache capacity (Cache selector) *)
  rav_gain : float;  (** EWMA gain of the running normalized-rate average *)
  wav_gain : float;  (** EWMA gain of the markers-per-epoch average *)
  pw_cap : float;
      (** upper bound on the stateless selection probability [pw];
          values above 1 allow multiple feedback copies per marker when
          the budget [Fn] exceeds the marker arrival rate *)
  source : Net.Source.params;  (** edge rate-adaptation settings *)
}

val default : t

(** [marker_spacing t ~weight] is [Nw], the number of data packets
    between markers for a flow of the given weight (at least 1). *)
val marker_spacing : t -> weight:float -> int
