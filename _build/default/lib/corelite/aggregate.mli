(** Edge-to-edge aggregates of end-to-end micro-flows.

    The paper defines a "flow" as an edge-to-edge aggregate that "can
    potentially comprise of several end to end micro flows" and leaves
    "aggregation of flows at the edge router" as ongoing work. This
    module implements that layer: end hosts submit packets of their
    micro-flows to the ingress edge; the edge buffers them in
    per-micro-flow queues, shapes the aggregate at the Corelite allowed
    rate [bg(f)] serving the queues in round-robin (so micro-flows
    share the aggregate's rate fairly), and drops excess traffic at the
    edge ("drop packets from ill behaved flows at the edges of the
    network"). Marker injection and rate adaptation are the ordinary
    {!Edge} mechanisms. At the egress, delivered packets are handed to
    a per-micro-flow consumer (e.g. a {!Net.Tcp.Receiver}). *)

type t

(** [create ~params ~topology ~flow ()] builds a stopped aggregate.
    [queue_capacity] bounds each micro-flow's ingress queue (default
    32 packets). *)
val create :
  params:Params.t ->
  topology:Net.Topology.t ->
  flow:Net.Flow.t ->
  ?floor:float ->
  ?epoch_offset:float ->
  ?queue_capacity:int ->
  unit ->
  t

(** The underlying adaptive edge agent (rate, counters, feedback). *)
val edge : t -> Edge.t

val start : t -> unit

val stop : t -> unit

(** Submit a micro-flow packet at the ingress edge. Returns [false]
    (and drops the packet) when that micro-flow's queue is full. The
    packet's [micro] field identifies its queue. *)
val submit : t -> Net.Packet.t -> bool

(** Register the egress consumer for one micro-flow. *)
val set_consumer : t -> micro:int -> (Net.Packet.t -> unit) -> unit

(** Packets dropped at the ingress queues (edge policing). *)
val edge_drops : t -> int

(** Packets currently buffered at the ingress across all micro-flows. *)
val backlog : t -> int

(** Packets delivered to unregistered micro-flows (should stay 0). *)
val undeliverable : t -> int
