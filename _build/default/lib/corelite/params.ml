type selector = Cache | Stateless

type t = {
  k1 : float;
  core_epoch : float;
  qthresh : float;
  estimator : Congestion.spec;
  selector : selector;
  cache_size : int;
  rav_gain : float;
  wav_gain : float;
  pw_cap : float;
  source : Net.Source.params;
}

let default =
  {
    k1 = 1.;
    core_epoch = 0.1;
    qthresh = 8.;
    estimator = Congestion.Mm1_cubic 0.005;
    selector = Stateless;
    cache_size = 512;
    rav_gain = 0.02;
    wav_gain = 0.25;
    pw_cap = 1.;
    source = Net.Source.default_params;
  }

let marker_spacing t ~weight =
  if weight <= 0. then invalid_arg "Params.marker_spacing: weight must be positive";
  Stdlib.max 1 (int_of_float (Float.round (t.k1 *. weight)))
